package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func valid() *Signature {
	return &Signature{
		Name:               "k",
		Instructions:       1e9,
		FPFraction:         0.3,
		MemFraction:        0.35,
		BranchFraction:     0.1,
		BranchMissRate:     0.02,
		ILP:                2.5,
		Footprint:          64 * units.MiB,
		Alpha:              0.5,
		StreamFraction:     0.2,
		RemoteFraction:     0.05,
		DialectSensitivity: 1,
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Signature){
		func(s *Signature) { s.Name = "" },
		func(s *Signature) { s.Instructions = 0 },
		func(s *Signature) { s.MemFraction = 0 },
		func(s *Signature) { s.FPFraction = 0.8; s.MemFraction = 0.3 },
		func(s *Signature) { s.BranchMissRate = 0.9 },
		func(s *Signature) { s.ILP = 0.1 },
		func(s *Signature) { s.Footprint = 0 },
		func(s *Signature) { s.Alpha = 0 },
		func(s *Signature) { s.Alpha = 1.5 },
		func(s *Signature) { s.StreamFraction = -0.1 },
		func(s *Signature) { s.RemoteFraction = 2 },
		func(s *Signature) { s.DialectSensitivity = 5 },
	}
	for i, mutate := range cases {
		s := valid()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid signature accepted", i)
		}
	}
}

func TestCoverageEndpoints(t *testing.T) {
	s := valid()
	if s.Coverage(0) != 0 {
		t.Error("zero capacity must cover nothing")
	}
	if s.Coverage(s.Footprint) != 1 {
		t.Error("capacity == footprint must cover everything")
	}
	if s.Coverage(2*s.Footprint) != 1 {
		t.Error("excess capacity must clamp to 1")
	}
	half := s.Coverage(s.Footprint / 2)
	want := HotFraction + (1-HotFraction)*math.Pow(0.5, s.Alpha)
	if math.Abs(half-want) > 1e-12 {
		t.Errorf("half-footprint coverage = %v, want %v", half, want)
	}
	if tiny := s.Coverage(1); tiny < HotFraction-1e-9 {
		t.Errorf("tiny cache must still capture the hot set, got %v", tiny)
	}
}

// Property: coverage is monotone non-decreasing in capacity and in [0,1].
func TestCoverageMonotoneProperty(t *testing.T) {
	s := valid()
	f := func(a, b uint32) bool {
		ca, cb := units.Bytes(a), units.Bytes(b)
		if ca > cb {
			ca, cb = cb, ca
		}
		va, vb := s.Coverage(ca), s.Coverage(cb)
		return va <= vb && va >= 0 && vb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledWork(t *testing.T) {
	s := valid()
	h := s.ScaledWork(0.5)
	if h.Instructions != s.Instructions/2 {
		t.Error("ScaledWork must scale instructions")
	}
	if h.Footprint != s.Footprint || h.FPFraction != s.FPFraction {
		t.Error("ScaledWork must not touch behaviour")
	}
	if s.Instructions != 1e9 {
		t.Error("ScaledWork must not mutate the receiver")
	}
}

func TestPartitioned(t *testing.T) {
	s := valid()
	p := s.Partitioned(16)
	if p.Instructions != s.Instructions/16 {
		t.Error("per-rank instructions wrong")
	}
	if p.Footprint != s.Footprint/16 {
		t.Error("per-rank footprint wrong")
	}
	if p.Name != s.Name {
		t.Error("partitioning must preserve identity")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("partitioned signature invalid: %v", err)
	}
}

func TestPartitionedFloorsFootprint(t *testing.T) {
	s := valid()
	s.Footprint = 4
	p := s.Partitioned(1000)
	if p.Footprint < 1 {
		t.Error("footprint must never reach zero")
	}
}

func TestPartitionedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partitioned(0) must panic")
		}
	}()
	valid().Partitioned(0)
}

func TestMergeWeighting(t *testing.T) {
	a, b := valid(), valid()
	a.Name, b.Name = "a", "b"
	a.Instructions, b.Instructions = 3e9, 1e9
	a.FPFraction, b.FPFraction = 0.4, 0.0
	b.MemFraction = 0.2
	b.Footprint = 128 * units.MiB
	m := Merge("ab", a, b)
	if m.Instructions != 4e9 {
		t.Errorf("merged instructions = %v", m.Instructions)
	}
	if math.Abs(m.FPFraction-0.3) > 1e-12 {
		t.Errorf("merged FP fraction = %v, want 0.3", m.FPFraction)
	}
	if m.Footprint != 128*units.MiB {
		t.Error("merged footprint must be the max")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged signature invalid: %v", err)
	}
}

// Property: merging a signature with itself preserves all per-instruction
// behaviour.
func TestMergeIdempotentProperty(t *testing.T) {
	f := func(scale uint8) bool {
		s := valid()
		s.Instructions = float64(scale%100+1) * 1e6
		m := Merge("m", s, s)
		return m.Instructions == 2*s.Instructions &&
			math.Abs(m.FPFraction-s.FPFraction) < 1e-12 &&
			math.Abs(m.ILP-s.ILP) < 1e-12 &&
			m.Footprint == s.Footprint
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge() must panic with no parts")
		}
	}()
	Merge("x")
}
