// Package workload defines compute-kernel signatures: the abstract dynamic
// behaviour of a piece of computation, independent of any machine. A
// signature is what the hardware-counter simulator (internal/hpm) "executes"
// on a machine model to produce counters and compute time.
//
// The same vocabulary describes both sides of SWAPP's compute projection:
// the SPEC CPU2006 surrogate benchmarks (internal/spec) and the NAS
// Multi-Zone compute kernels (internal/nas) are all Signatures, which is
// what makes surrogate matching meaningful — an application and its
// surrogate genuinely share behaviour, not just numbers.
package workload

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Signature is the machine-independent description of a compute kernel's
// dynamic behaviour.
type Signature struct {
	// Name keys the deterministic idiosyncrasy stream; two kernels with
	// the same name behave identically everywhere.
	Name string

	// Instructions is the dynamic instruction count of the kernel
	// (baseline ISA; real machines see a dialect-adjusted count).
	Instructions float64

	// Instruction mix, as fractions of dynamic instructions.
	FPFraction     float64 // floating-point operations
	MemFraction    float64 // loads + stores
	BranchFraction float64 // branches
	BranchMissRate float64 // mispredictions per branch

	// ILP is the instruction-level parallelism the kernel exposes to an
	// ideal machine (completions per cycle ceiling from dependences).
	ILP float64

	// Footprint is the kernel's resident data footprint; Alpha shapes the
	// working-set curve: a cache of capacity C captures
	// (C/Footprint)^Alpha of the reuse traffic. Small Alpha means a hot
	// core that caches well; Alpha near 1 means flat, cache-hostile
	// access.
	Footprint units.Bytes
	Alpha     float64

	// StreamFraction is the share of memory accesses that stream through
	// the cache (no reuse): they always come from memory but prefetch
	// well.
	StreamFraction float64

	// RemoteFraction is the share of memory-level traffic served by a
	// remote NUMA domain on multi-socket nodes.
	RemoteFraction float64

	// DialectSensitivity scales how strongly the kernel's dynamic
	// instruction count and response shift across ISAs/compilers
	// (1 = typical).
	DialectSensitivity float64
}

// Validate reports the first structurally invalid field, or nil.
func (s *Signature) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: signature needs a name")
	case s.Instructions <= 0:
		return fmt.Errorf("workload %s: non-positive instruction count", s.Name)
	case s.FPFraction < 0 || s.MemFraction <= 0 || s.BranchFraction < 0:
		return fmt.Errorf("workload %s: bad instruction mix", s.Name)
	case s.FPFraction+s.MemFraction+s.BranchFraction > 1:
		return fmt.Errorf("workload %s: instruction mix exceeds 1", s.Name)
	case s.BranchMissRate < 0 || s.BranchMissRate > 0.5:
		return fmt.Errorf("workload %s: implausible branch miss rate", s.Name)
	case s.ILP < 0.5 || s.ILP > 8:
		return fmt.Errorf("workload %s: ILP out of range", s.Name)
	case s.Footprint <= 0:
		return fmt.Errorf("workload %s: non-positive footprint", s.Name)
	case s.Alpha <= 0 || s.Alpha > 1:
		return fmt.Errorf("workload %s: alpha must be in (0,1]", s.Name)
	case s.StreamFraction < 0 || s.StreamFraction > 1:
		return fmt.Errorf("workload %s: stream fraction out of range", s.Name)
	case s.RemoteFraction < 0 || s.RemoteFraction > 1:
		return fmt.Errorf("workload %s: remote fraction out of range", s.Name)
	case s.DialectSensitivity < 0 || s.DialectSensitivity > 3:
		return fmt.Errorf("workload %s: dialect sensitivity out of range", s.Name)
	}
	return nil
}

// HotFraction is the share of reuse accesses that hit a small hot set
// (stack, loop-carried scalars, hot structures) and are captured by any
// real cache. Data-cache hit rates below ~85 % are rare even for
// pointer-chasing codes; the working-set curve only governs the remaining
// capacity-sensitive traffic.
const HotFraction = 0.92

// Coverage returns the fraction of reuse traffic a cache of the given
// capacity captures: the hot set plus (C/Footprint)^Alpha of the
// capacity-sensitive remainder, clamped to [0,1].
func (s *Signature) Coverage(capacity units.Bytes) float64 {
	if capacity <= 0 {
		return 0
	}
	if capacity >= s.Footprint {
		return 1
	}
	tail := math.Pow(float64(capacity)/float64(s.Footprint), s.Alpha)
	return HotFraction + (1-HotFraction)*tail
}

// StreamCoverage is the capacity curve for the streaming portion of the
// accesses: streamed arrays have no hot subset — a cache only helps once it
// holds the arrays themselves — so the raw (C/Footprint)^Alpha tail applies
// without the hot-set floor.
func (s *Signature) StreamCoverage(capacity units.Bytes) float64 {
	if capacity <= 0 {
		return 0
	}
	if capacity >= s.Footprint {
		return 1
	}
	return math.Pow(float64(capacity)/float64(s.Footprint), s.Alpha)
}

// ScaledWork returns a copy with the instruction count multiplied by f,
// leaving the per-instruction behaviour unchanged. Used to express "the
// same kernel over a smaller sub-domain".
func (s *Signature) ScaledWork(f float64) *Signature {
	c := *s
	c.Instructions *= f
	return &c
}

// Partitioned returns the per-rank signature of this kernel under strong
// scaling across ranks: each rank executes 1/ranks of the instructions over
// 1/ranks of the footprint. The name is preserved — it is the same
// computation, so it must keep the same idiosyncratic personality.
func (s *Signature) Partitioned(ranks int) *Signature {
	if ranks < 1 {
		panic("workload: Partitioned needs ranks >= 1")
	}
	c := *s
	c.Instructions /= float64(ranks)
	c.Footprint = s.Footprint / units.Bytes(ranks)
	if c.Footprint < 1 {
		c.Footprint = 1
	}
	return &c
}

// Merge combines several signatures executed back-to-back into one
// aggregate signature named name, with instruction-weighted mixes and the
// largest footprint. It models a multi-kernel phase as a single observable
// unit, the granularity at which hardware counters are collected.
func Merge(name string, parts ...*Signature) *Signature {
	if len(parts) == 0 {
		panic("workload: Merge needs at least one part")
	}
	out := &Signature{Name: name}
	var totalInstr float64
	for _, p := range parts {
		totalInstr += p.Instructions
	}
	if totalInstr <= 0 {
		panic("workload: Merge with zero total instructions")
	}
	out.Instructions = totalInstr
	for _, p := range parts {
		w := p.Instructions / totalInstr
		out.FPFraction += w * p.FPFraction
		out.MemFraction += w * p.MemFraction
		out.BranchFraction += w * p.BranchFraction
		out.BranchMissRate += w * p.BranchMissRate
		out.ILP += w * p.ILP
		out.Alpha += w * p.Alpha
		out.StreamFraction += w * p.StreamFraction
		out.RemoteFraction += w * p.RemoteFraction
		out.DialectSensitivity += w * p.DialectSensitivity
		if p.Footprint > out.Footprint {
			out.Footprint = p.Footprint
		}
	}
	return out
}
