package des

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSingleProcessAdvance(t *testing.T) {
	k := NewKernel()
	var end float64
	k.Spawn("p", func(p *Proc) {
		p.Advance(1.5)
		p.Advance(2.5)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 4.0 {
		t.Errorf("end time = %v, want 4", end)
	}
	if k.Now() != 4.0 {
		t.Errorf("kernel time = %v, want 4", k.Now())
	}
}

func TestNegativeAdvanceClamps(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Advance(-5)
		if p.Now() != 0 {
			t.Errorf("negative advance moved time to %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	trace := func() string {
		k := NewKernel()
		var sb strings.Builder
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("p%d", i)
			step := float64(i + 1)
			k.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Advance(step)
					fmt.Fprintf(&sb, "%s@%v ", p.Name(), p.Now())
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := trace()
	for i := 0; i < 10; i++ {
		if got := trace(); got != first {
			t.Fatalf("nondeterministic interleaving:\n%s\nvs\n%s", first, got)
		}
	}
	// Spot-check ordering: at t=2 p1's event was scheduled (at t=0)
	// before p0's second (at t=1), so FIFO tie-break runs p1 first.
	if !strings.HasPrefix(first, "p0@1 p1@2 p0@2 ") {
		t.Errorf("unexpected order: %s", first)
	}
}

func TestSignalWakesWaiter(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("data")
	var woke float64
	k.Spawn("consumer", func(p *Proc) {
		p.WaitSignal(s)
		woke = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Advance(3)
		s.Fire()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Errorf("consumer woke at %v, want 3", woke)
	}
}

func TestWaitOnFiredSignalReturnsImmediately(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("done")
	k.Spawn("p", func(p *Proc) {
		s.Fire()
		before := p.Now()
		p.WaitSignal(s)
		if p.Now() != before {
			t.Error("waiting on a fired signal must not advance time")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("go")
	var woken int32
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.WaitSignal(s)
			atomic.AddInt32(&woken, 1)
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Advance(1)
		s.Fire()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestDoubleFireIsNoop(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("s")
	k.Spawn("p", func(p *Proc) {
		s.Fire()
		s.Fire()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Fired() {
		t.Error("signal must report fired")
	}
}

func TestScheduledEventFiresSignal(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("timer")
	var woke float64
	k.Spawn("p", func(p *Proc) {
		p.Kernel().Schedule(2.5, func() { s.Fire() })
		p.WaitSignal(s)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 2.5 {
		t.Errorf("woke at %v, want 2.5", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal("never")
	k.Spawn("stuck", func(p *Proc) {
		p.WaitSignal(s)
	})
	err := k.Run()
	if err == nil {
		t.Fatal("deadlock must be reported")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "never") {
		t.Errorf("deadlock report should name the process and its wait: %v", err)
	}
}

func TestPanicInProcessSurfaces(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		p.Advance(1)
		panic("boom")
	})
	k.Spawn("bystander", func(p *Proc) {
		p.WaitSignal(p.Kernel().NewSignal("forever"))
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("process panic must surface, got %v", err)
	}
}

func TestManyProcessesManyEvents(t *testing.T) {
	k := NewKernel()
	const n = 200
	var total float64
	for i := 0; i < n; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Advance(0.001)
			}
			total += p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-n*0.05) > 1e-9 {
		t.Errorf("total = %v, want %v", total, n*0.05)
	}
}

func TestPingPongViaSignals(t *testing.T) {
	// Two processes alternating: a classic token pass with timing.
	k := NewKernel()
	const rounds = 10
	toB := make([]*Signal, rounds)
	toA := make([]*Signal, rounds)
	for i := range toB {
		toB[i] = k.NewSignal(fmt.Sprintf("toB%d", i))
		toA[i] = k.NewSignal(fmt.Sprintf("toA%d", i))
	}
	var endA, endB float64
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Advance(0.5)
			toB[i].Fire()
			p.WaitSignal(toA[i])
		}
		endA = p.Now()
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.WaitSignal(toB[i])
			p.Advance(0.5)
			toA[i].Fire()
		}
		endB = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if endA != rounds || endB != rounds {
		t.Errorf("ends = %v, %v; want %v", endA, endB, float64(rounds))
	}
}

// Property: the kernel clock equals the max of all process end times, for
// arbitrary per-process step counts.
func TestClockIsMaxOfProcesses(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) == 0 || len(steps) > 20 {
			return true
		}
		k := NewKernel()
		var max float64
		for i, s := range steps {
			n := int(s%20) + 1
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < n; j++ {
					p.Advance(0.25)
				}
			})
			if end := 0.25 * float64(n); end > max {
				max = end
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		return math.Abs(k.Now()-max) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunWithNoProcesses(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatalf("empty kernel must run cleanly: %v", err)
	}
	if k.Now() != 0 {
		t.Error("empty run must stay at t=0")
	}
}

func TestZeroAdvanceYieldsButKeepsTime(t *testing.T) {
	k := NewKernel()
	order := ""
	k.Spawn("a", func(p *Proc) {
		p.Advance(0)
		order += "a"
	})
	k.Spawn("b", func(p *Proc) {
		order += "b"
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a yields on its zero advance, letting b (spawned later but not
	// yielding) run its body first.
	if order != "ba" {
		t.Errorf("order = %q, want ba", order)
	}
	if k.Now() != 0 {
		t.Error("zero advances must not move the clock")
	}
}
