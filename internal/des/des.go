// Package des is a process-oriented discrete-event simulation kernel: the
// substrate under the MPI simulator. Each simulated process (an MPI rank)
// is a goroutine that advances a shared virtual clock by blocking on the
// kernel; the kernel runs exactly one goroutine at a time and orders all
// wakeups by (virtual time, sequence), so simulations are fully
// deterministic regardless of Go's scheduler.
//
// The programming model is the classic coroutine style: a process calls
// Advance to burn virtual time (compute), and WaitSignal to block until
// another process or a scheduled event fires a Signal (communication). The
// kernel detects global deadlock — an empty event queue with processes
// still blocked — and reports who was stuck.
package des

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// event is a scheduled callback.
type event struct {
	at  units.Seconds
	seq uint64 // tie-break: FIFO within equal timestamps
	fn  func()
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Kernel owns the virtual clock, the event queue and the processes.
type Kernel struct {
	now    units.Seconds
	seq    uint64
	events eventQueue
	procs  []*Proc
	live   int
	failed error
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() units.Seconds { return k.now }

// Schedule runs fn in kernel context at now+delay. Negative delays are
// clamped to zero. fn must not block; it may fire signals and schedule
// further events.
func (k *Kernel) Schedule(delay units.Seconds, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	heap.Push(&k.events, &event{at: k.now + delay, seq: k.seq, fn: fn})
}

// Proc is the handle a simulated process uses to interact with the kernel.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	state  procState
	resume chan bool // true = run, false = abort
	yield  chan struct{}
	waitOn string // what the process is blocked on, for deadlock reports
}

// ID returns the process index in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the process's spawn name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() units.Seconds { return p.k.now }

// Kernel returns the owning kernel (for scheduling timed events).
func (p *Proc) Kernel() *Kernel { return p.k }

// errAborted is the panic payload used to unwind abandoned processes.
type errAborted struct{}

// block parks the process until the kernel resumes it.
func (p *Proc) block(reason string) {
	p.state = stateBlocked
	p.waitOn = reason
	p.yield <- struct{}{}
	if run := <-p.resume; !run {
		panic(errAborted{})
	}
	p.state = stateRunning
	p.waitOn = ""
}

// Advance burns dt of virtual time as local work (compute). Negative dt is
// clamped to zero; a zero advance still yields, giving same-time events a
// chance to run in deterministic order.
func (p *Proc) Advance(dt units.Seconds) {
	if dt < 0 {
		dt = 0
	}
	self := p
	p.k.Schedule(dt, func() { self.k.wake(self) })
	p.block(fmt.Sprintf("advance(%s)", units.FormatSeconds(dt)))
}

// WaitSignal blocks until s fires. If s already fired it returns
// immediately without yielding.
func (p *Proc) WaitSignal(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.block("signal:" + s.name)
}

// wake marks p runnable and transfers control to it until it blocks again.
// Must be called from kernel context.
func (k *Kernel) wake(p *Proc) {
	if p.state == stateDone {
		return
	}
	p.resume <- true
	<-p.yield
}

// Signal is a one-shot broadcast: processes wait on it, someone fires it.
// Once fired it stays fired.
type Signal struct {
	k       *Kernel
	name    string
	fired   bool
	waiters []*Proc
}

// NewSignal creates a named, unfired signal owned by the kernel.
func (k *Kernel) NewSignal(name string) *Signal {
	return &Signal{k: k, name: name}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and schedules every waiter to resume at the
// current virtual time (in wait order). Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		w := w
		s.k.Schedule(0, func() { s.k.wake(w) })
	}
	s.waiters = nil
}

// Spawn registers a process to start at virtual time zero. It must be
// called before Run.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		state:  stateReady,
		resume: make(chan bool),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errAborted); !ok {
					// A real bug in simulation code: surface it.
					k.failed = fmt.Errorf("des: process %s panicked: %v", p.name, r)
				}
			}
			p.state = stateDone
			k.live--
			// Final handshake: whoever resumed us (wake or
			// abandonBlocked) is waiting on this yield.
			p.yield <- struct{}{}
		}()
		if run := <-p.resume; !run {
			panic(errAborted{})
		}
		p.state = stateRunning
		fn(p)
	}()
	// First resume event at t=0, in spawn order.
	k.Schedule(0, func() { k.wake(p) })
	return p
}

// Run drives the simulation until every process finishes. It returns an
// error on deadlock (blocked processes with an empty event queue) or if a
// process panicked.
func (k *Kernel) Run() error {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		if e.at < k.now {
			return fmt.Errorf("des: time went backwards: %v < %v", e.at, k.now)
		}
		k.now = e.at
		e.fn()
		if k.failed != nil {
			k.abandonBlocked()
			return k.failed
		}
	}
	if k.live > 0 {
		stuck := k.blockedReport()
		k.abandonBlocked()
		return fmt.Errorf("des: deadlock at t=%s with %d blocked processes:\n%s",
			units.FormatSeconds(k.now), k.live, stuck)
	}
	return nil
}

// blockedReport lists still-blocked processes and what they wait on.
func (k *Kernel) blockedReport() string {
	var lines []string
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			lines = append(lines, fmt.Sprintf("  %s: waiting on %s", p.name, p.waitOn))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// abandonBlocked unwinds every parked goroutine so Run leaks nothing.
func (k *Kernel) abandonBlocked() {
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			p.resume <- false // triggers errAborted panic in the process
			<-p.yield
		}
	}
}
