// Package des is a process-oriented discrete-event simulation kernel: the
// substrate under the MPI simulator. Each simulated process (an MPI rank)
// is a goroutine that advances a shared virtual clock by blocking on the
// kernel; the kernel runs exactly one goroutine at a time and orders all
// wakeups by (virtual time, sequence), so simulations are fully
// deterministic regardless of Go's scheduler.
//
// The programming model is the classic coroutine style: a process calls
// Advance to burn virtual time (compute), and WaitSignal to block until
// another process or a scheduled event fires a Signal (communication). The
// kernel detects global deadlock — an empty event queue with processes
// still blocked — and reports who was stuck.
//
// The kernel is a hot path: one NAS characterisation or IMB sweep pushes
// tens of millions of events through it, so the event loop is built not to
// allocate. Events are values in a hand-rolled binary heap (no
// container/heap interface boxing, no per-event pointers), the two
// dominant event kinds — wake a process, fire a signal — are encoded as
// struct fields instead of closures, signals are carved out of
// kernel-owned slabs with lazily formatted names, and a process's blocked
// reason is kept as typed fields that are only rendered if a deadlock
// report actually needs them.
package des

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// event is a scheduled occurrence. Exactly one of proc, sig and fn is set:
// wake proc, fire sig, or run the generic callback. The split keeps the
// two hot kinds closure-free — a wake or a fire is two words copied into
// the heap, not a heap-allocated func value.
type event struct {
	at   units.Seconds
	seq  uint64 // tie-break: FIFO within equal timestamps
	proc *Proc
	sig  *Signal
	fn   func()
}

// before orders events by (at, seq); seq is unique, so this is total.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// waitKind is why a blocked process is parked, kept as data so the hot
// path never formats a reason string; see Proc.waitReason.
type waitKind int

const (
	waitStart waitKind = iota
	waitAdvance
	waitSignal
)

// sigSlabSize is how many signals one kernel-owned slab holds.
const sigSlabSize = 256

// Kernel owns the virtual clock, the event queue and the processes.
type Kernel struct {
	now    units.Seconds
	seq    uint64
	events []event // binary min-heap on (at, seq)
	procs  []*Proc
	live   int
	failed error
	slab   []Signal // signal arena: NewSignal carves from here
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() units.Seconds { return k.now }

// push inserts an event into the heap.
func (k *Kernel) push(e event) {
	k.seq++
	e.seq = k.seq
	q := append(k.events, e)
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q[i].before(&q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	k.events = q
}

// pop removes and returns the earliest event.
func (k *Kernel) pop() event {
	q := k.events
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // clear pointers for the GC
	q = q[:n]
	for i := 0; ; {
		m := i
		if l := 2*i + 1; l < n && q[l].before(&q[m]) {
			m = l
		}
		if r := 2*i + 2; r < n && q[r].before(&q[m]) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	k.events = q
	return top
}

// Schedule runs fn in kernel context at now+delay. Negative delays are
// clamped to zero. fn must not block; it may fire signals and schedule
// further events.
func (k *Kernel) Schedule(delay units.Seconds, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.push(event{at: k.now + delay, fn: fn})
}

// FireAt fires s at now+delay (clamped to now), without allocating a
// callback: the closure-free fast path for message-arrival events.
func (k *Kernel) FireAt(s *Signal, delay units.Seconds) {
	if delay < 0 {
		delay = 0
	}
	k.push(event{at: k.now + delay, sig: s})
}

// scheduleWake wakes p at now+delay without allocating a callback.
func (k *Kernel) scheduleWake(delay units.Seconds, p *Proc) {
	if delay < 0 {
		delay = 0
	}
	k.push(event{at: k.now + delay, proc: p})
}

// Proc is the handle a simulated process uses to interact with the kernel.
type Proc struct {
	k      *Kernel
	id     int
	kind   string
	nameID int // -1: kind IS the full name; else rendered as kind+nameID
	state  procState
	resume chan bool // true = run, false = abort
	yield  chan struct{}

	// Blocked-reason data, rendered only by deadlock reports.
	waitKind waitKind
	waitDt   units.Seconds
	waitSig  *Signal
}

// ID returns the process index in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the process's spawn name, formatting it on first use.
func (p *Proc) Name() string {
	if p.nameID < 0 {
		return p.kind
	}
	return fmt.Sprintf("%s%d", p.kind, p.nameID)
}

// Now returns the current virtual time.
func (p *Proc) Now() units.Seconds { return p.k.now }

// Kernel returns the owning kernel (for scheduling timed events).
func (p *Proc) Kernel() *Kernel { return p.k }

// waitReason renders what the process is blocked on, for deadlock reports.
func (p *Proc) waitReason() string {
	switch p.waitKind {
	case waitAdvance:
		return fmt.Sprintf("advance(%s)", units.FormatSeconds(p.waitDt))
	case waitSignal:
		return "signal:" + p.waitSig.Name()
	default:
		return "start"
	}
}

// errAborted is the panic payload used to unwind abandoned processes.
type errAborted struct{}

// block parks the process until the kernel resumes it.
func (p *Proc) block(kind waitKind, dt units.Seconds, sig *Signal) {
	p.state = stateBlocked
	p.waitKind, p.waitDt, p.waitSig = kind, dt, sig
	p.yield <- struct{}{}
	if run := <-p.resume; !run {
		panic(errAborted{})
	}
	p.state = stateRunning
	p.waitSig = nil
}

// Advance burns dt of virtual time as local work (compute). Negative dt is
// clamped to zero; a zero advance still yields, giving same-time events a
// chance to run in deterministic order.
func (p *Proc) Advance(dt units.Seconds) {
	if dt < 0 {
		dt = 0
	}
	p.k.scheduleWake(dt, p)
	p.block(waitAdvance, dt, nil)
}

// WaitSignal blocks until s fires. If s already fired it returns
// immediately without yielding.
func (p *Proc) WaitSignal(s *Signal) {
	if s.fired {
		return
	}
	s.addWaiter(p)
	p.block(waitSignal, 0, s)
}

// wake marks p runnable and transfers control to it until it blocks again.
// Must be called from kernel context.
func (k *Kernel) wake(p *Proc) {
	if p.state == stateDone {
		return
	}
	p.resume <- true
	<-p.yield
}

// Signal is a one-shot broadcast: processes wait on it, someone fires it.
// Once fired it stays fired.
//
// Signals are carved from kernel-owned slabs and named lazily: simulation
// code mints millions of them, and almost none ever shows its name.
type Signal struct {
	k     *Kernel
	kind  string
	id    int // -1: kind IS the full name; else rendered as kind#id
	fired bool

	// Waiter storage: the single-waiter case (every point-to-point
	// request) stays inline; collectives overflow into the slice.
	w0   *Proc
	more []*Proc
}

// NewSignal creates a named, unfired signal owned by the kernel.
func (k *Kernel) NewSignal(name string) *Signal { return k.newSignal(name, -1) }

// NewSignalKind creates an unfired signal lazily named kind#id: the
// allocation-free spelling of NewSignal(fmt.Sprintf("%s#%d", kind, id)).
func (k *Kernel) NewSignalKind(kind string, id int) *Signal { return k.newSignal(kind, id) }

// newSignal carves a signal from the kernel's slab.
func (k *Kernel) newSignal(kind string, id int) *Signal {
	if len(k.slab) == 0 {
		k.slab = make([]Signal, sigSlabSize)
	}
	s := &k.slab[0]
	k.slab = k.slab[1:]
	s.k, s.kind, s.id = k, kind, id
	return s
}

// Name returns the signal's name, formatting it on first use.
func (s *Signal) Name() string {
	if s.id < 0 {
		return s.kind
	}
	return fmt.Sprintf("%s#%d", s.kind, s.id)
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// addWaiter registers p to be woken when the signal fires.
func (s *Signal) addWaiter(p *Proc) {
	if s.w0 == nil && len(s.more) == 0 {
		s.w0 = p
		return
	}
	s.more = append(s.more, p)
}

// Fire marks the signal fired and schedules every waiter to resume at the
// current virtual time (in wait order). Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	if s.w0 != nil {
		s.k.scheduleWake(0, s.w0)
		s.w0 = nil
	}
	for _, w := range s.more {
		s.k.scheduleWake(0, w)
	}
	s.more = nil
}

// Spawn registers a process to start at virtual time zero. It must be
// called before Run.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	return k.spawn(name, -1, fn)
}

// SpawnKind is Spawn with a lazily formatted name kind+id — the
// allocation-free spelling of Spawn(fmt.Sprintf("%s%d", kind, id), fn)
// for simulations that mint processes by the million.
func (k *Kernel) SpawnKind(kind string, id int, fn func(*Proc)) *Proc {
	return k.spawn(kind, id, fn)
}

func (k *Kernel) spawn(kind string, nameID int, fn func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		kind:   kind,
		nameID: nameID,
		state:  stateReady,
		resume: make(chan bool),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errAborted); !ok {
					// A real bug in simulation code: surface it.
					k.failed = fmt.Errorf("des: process %s panicked: %v", p.Name(), r)
				}
			}
			p.state = stateDone
			k.live--
			// Final handshake: whoever resumed us (wake or
			// abandonBlocked) is waiting on this yield.
			p.yield <- struct{}{}
		}()
		if run := <-p.resume; !run {
			panic(errAborted{})
		}
		p.state = stateRunning
		fn(p)
	}()
	// First resume event at t=0, in spawn order.
	k.scheduleWake(0, p)
	return p
}

// Run drives the simulation until every process finishes. It returns an
// error on deadlock (blocked processes with an empty event queue) or if a
// process panicked.
func (k *Kernel) Run() error {
	for len(k.events) > 0 {
		e := k.pop()
		if e.at < k.now {
			return fmt.Errorf("des: time went backwards: %v < %v", e.at, k.now)
		}
		k.now = e.at
		switch {
		case e.proc != nil:
			k.wake(e.proc)
		case e.sig != nil:
			e.sig.Fire()
		default:
			e.fn()
		}
		if k.failed != nil {
			k.abandonBlocked()
			return k.failed
		}
	}
	if k.live > 0 {
		stuck := k.blockedReport()
		k.abandonBlocked()
		return fmt.Errorf("des: deadlock at t=%s with %d blocked processes:\n%s",
			units.FormatSeconds(k.now), k.live, stuck)
	}
	return nil
}

// blockedReport lists still-blocked processes and what they wait on.
func (k *Kernel) blockedReport() string {
	var lines []string
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			lines = append(lines, fmt.Sprintf("  %s: waiting on %s", p.Name(), p.waitReason()))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// abandonBlocked unwinds every parked goroutine so Run leaks nothing.
func (k *Kernel) abandonBlocked() {
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			p.resume <- false // triggers errAborted panic in the process
			<-p.yield
		}
	}
}
