package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsFree(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled after Disarm")
	}
	if err := Fire("anything"); err != nil {
		t.Errorf("disarmed Fire = %v", err)
	}
	if ShouldDrop("anything") {
		t.Error("disarmed ShouldDrop = true")
	}
}

func TestArmEmptySpecIsNoop(t *testing.T) {
	Disarm()
	if err := Arm("  "); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("empty spec must leave the package disarmed")
	}
}

func TestArmParseErrors(t *testing.T) {
	defer Disarm()
	for _, spec := range []string{
		"nomode",              // missing =
		"p=",                  // empty mode
		"=panic",              // empty point
		"p=explode",           // unknown mode
		"p=panic:arg",         // panic takes no argument
		"p=delay:nonsense",    // bad duration
		"p=delay:-5ms",        // negative delay
		"p=panic#0",           // count must be >= 1
		"p=panic#x",           // non-numeric count
		"ok=panic,bad=explde", // second entry bad
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted, want error", spec)
		}
	}
}

func TestPanicMode(t *testing.T) {
	defer Disarm()
	if err := Arm("ga.eval=panic#1"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Error("armed panic point did not panic")
			} else if !strings.Contains(v.(string), "ga.eval") {
				t.Errorf("panic value %q does not name the point", v)
			}
		}()
		Fire("ga.eval")
	}()
	// #1: the second pass is clean.
	if err := Fire("ga.eval"); err != nil {
		t.Errorf("exhausted point fired again: %v", err)
	}
	// Unarmed points never fire.
	if err := Fire("other.point"); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer Disarm()
	if err := Arm("server.eval=error"); err != nil {
		t.Fatal(err)
	}
	err := Fire("server.eval")
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != "server.eval" {
		t.Fatalf("Fire = %v, want *InjectedError at server.eval", err)
	}
	// Unlimited: keeps firing.
	if Fire("server.eval") == nil {
		t.Error("unlimited point stopped firing")
	}
}

func TestDelayMode(t *testing.T) {
	defer Disarm()
	if err := Arm("core.project=delay:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Fire("core.project"); err != nil {
		t.Fatalf("delay mode returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delay fired after %v, want >= 30ms", d)
	}
}

func TestDropMode(t *testing.T) {
	defer Disarm()
	if err := Arm("core.spec.target=drop#2"); err != nil {
		t.Fatal(err)
	}
	// Fire never triggers drop plans.
	if err := Fire("core.spec.target"); err != nil {
		t.Errorf("Fire on a drop plan = %v", err)
	}
	if !ShouldDrop("core.spec.target") || !ShouldDrop("core.spec.target") {
		t.Error("drop#2 must trigger twice")
	}
	if ShouldDrop("core.spec.target") {
		t.Error("drop#2 triggered a third time")
	}
}

func TestMultiPointSpecAndPoints(t *testing.T) {
	defer Disarm()
	if err := Arm("b=panic#1; a=error , c=delay:1ms"); err != nil {
		t.Fatal(err)
	}
	got := Points()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Points() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Points() = %v, want %v", got, want)
		}
	}
}

func TestCountedFiringIsRaceFree(t *testing.T) {
	defer Disarm()
	if err := Arm("hot=error#100"); err != nil {
		t.Fatal(err)
	}
	var fired int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Fire("hot") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 100 {
		t.Errorf("counted point fired %d times under contention, want exactly 100", fired)
	}
}

func TestRearmReplaces(t *testing.T) {
	defer Disarm()
	if err := Arm("a=error"); err != nil {
		t.Fatal(err)
	}
	if err := Arm("b=error"); err != nil {
		t.Fatal(err)
	}
	if Fire("a") != nil {
		t.Error("re-arming must drop previously armed points")
	}
	if Fire("b") == nil {
		t.Error("newly armed point must fire")
	}
}
