// Package faultinject provides named fault-injection points for chaos
// testing the projection engine and the swappd service. Production code
// threads Fire/ShouldDrop calls through its interesting seams (persist
// loading, pipeline stages, GA scoring, server handlers); a test or an
// operator arms specific points with a spec string and the next passes
// through those points misbehave on purpose.
//
// Disabled cost: a single atomic load per call. The package ships armed
// in no binaries by default — swappd arms it only from an explicit
// -faults flag or the SWAPP_FAULTS environment variable.
//
// Spec grammar (comma- or semicolon-separated):
//
//	point=mode[:arg][#count]
//
//	ga.eval=panic#1                    panic on the first pass only
//	server.eval=error                  fail every pass with an injected error
//	core.project=delay:150ms           sleep 150ms per pass
//	core.spec.target=drop#1            caller-interpreted data corruption
//
// Modes:
//
//	panic        Fire panics with a recognizable "faultinject:" value
//	error        Fire returns an *InjectedError
//	delay:DUR    Fire sleeps DUR, then returns nil
//	drop         Fire returns nil; ShouldDrop reports true (the call site
//	             degrades its data — drops a row, truncates a grid, …)
//	shortwrite:N FireIO reports a partial-write fault: the call site must
//	             write only the first N bytes, then fail (a torn frame —
//	             what a crash mid-write leaves behind)
//	enospc       FireIO reports a disk-full fault: the call site fails
//	             without writing anything
//	corrupt      FireIO reports a bit-flip fault: the call site writes the
//	             full payload with one bit flipped (silent media
//	             corruption — the write "succeeds")
//
// The I/O modes fire only through FireIO — Fire ignores them without
// consuming their count, so a WAL write path can call Fire (classic
// faults) and FireIO (I/O shapes) back-to-back on the same point.
//
// A trailing #N fires the fault on the first N passes through the point,
// then the point behaves normally; omitted means every pass. Armed points
// that production code never visits are harmless.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is one injection behaviour.
type Mode string

const (
	ModePanic Mode = "panic"
	ModeError Mode = "error"
	ModeDelay Mode = "delay"
	ModeDrop  Mode = "drop"
	// I/O-shaped modes, reported through FireIO.
	ModeShortWrite Mode = "shortwrite"
	ModeENOSPC     Mode = "enospc"
	ModeCorrupt    Mode = "corrupt"
)

// isIO reports whether a mode fires through FireIO rather than Fire.
func isIO(m Mode) bool {
	return m == ModeShortWrite || m == ModeENOSPC || m == ModeCorrupt
}

// InjectedError marks an error as deliberately injected, so chaos tests
// can assert it surfaced (and real error handling can ignore that it is
// synthetic — it travels like any other failure).
type InjectedError struct {
	Point string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s", e.Point)
}

// plan is one armed point.
type plan struct {
	mode  Mode
	delay time.Duration
	// n is the shortwrite byte budget.
	n int
	// remaining is the number of passes left to fire on; negative means
	// unlimited.
	remaining atomic.Int64
}

// take consumes one firing, reporting whether this pass fires.
func (p *plan) take() bool {
	for {
		r := p.remaining.Load()
		if r < 0 {
			return true
		}
		if r == 0 {
			return false
		}
		if p.remaining.CompareAndSwap(r, r-1) {
			return true
		}
	}
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	plans   map[string]*plan
)

// Arm parses spec and arms its points, replacing any previous arming. An
// empty spec is a no-op (the package stays disarmed).
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	next := map[string]*plan{}
	for _, field := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		point, rhs, ok := strings.Cut(field, "=")
		if !ok || point == "" || rhs == "" {
			return fmt.Errorf("faultinject: bad entry %q (want point=mode[:arg][#count])", field)
		}
		rhs, countStr, hasCount := cutLast(rhs, '#')
		p := &plan{}
		p.remaining.Store(-1)
		if hasCount {
			n, err := strconv.Atoi(countStr)
			if err != nil || n < 1 {
				return fmt.Errorf("faultinject: bad count in %q", field)
			}
			p.remaining.Store(int64(n))
		}
		modeStr, arg, _ := strings.Cut(rhs, ":")
		switch Mode(modeStr) {
		case ModePanic, ModeError, ModeDrop, ModeENOSPC, ModeCorrupt:
			if arg != "" {
				return fmt.Errorf("faultinject: mode %s takes no argument (%q)", modeStr, field)
			}
			p.mode = Mode(modeStr)
		case ModeDelay:
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return fmt.Errorf("faultinject: bad delay in %q", field)
			}
			p.mode = ModeDelay
			p.delay = d
		case ModeShortWrite:
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return fmt.Errorf("faultinject: bad shortwrite byte count in %q", field)
			}
			p.mode = ModeShortWrite
			p.n = n
		default:
			return fmt.Errorf("faultinject: unknown mode %q in %q", modeStr, field)
		}
		next[point] = p
	}
	mu.Lock()
	plans = next
	mu.Unlock()
	enabled.Store(len(next) > 0)
	return nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s string, sep byte) (before, after string, found bool) {
	if i := strings.LastIndexByte(s, sep); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}

// Disarm removes every armed point.
func Disarm() {
	mu.Lock()
	plans = nil
	mu.Unlock()
	enabled.Store(false)
}

// Enabled reports whether any point is armed.
func Enabled() bool { return enabled.Load() }

// Points lists the armed point names, sorted (for operator logs).
func Points() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(plans))
	for p := range plans {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// lookup fetches the armed plan for a point.
func lookup(point string) *plan {
	mu.Lock()
	defer mu.Unlock()
	return plans[point]
}

// Fire is the panic/error/delay injection point. With nothing armed it
// costs one atomic load and returns nil. With point armed it panics,
// returns an *InjectedError, or sleeps according to the plan; drop mode
// does nothing here (see ShouldDrop).
func Fire(point string) error {
	if !enabled.Load() {
		return nil
	}
	p := lookup(point)
	if p == nil || p.mode == ModeDrop || isIO(p.mode) || !p.take() {
		return nil
	}
	switch p.mode {
	case ModePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", point))
	case ModeDelay:
		time.Sleep(p.delay)
		return nil
	default:
		return &InjectedError{Point: point}
	}
}

// IOFault describes one injected I/O misbehaviour returned by FireIO.
// The call site interprets it: ModeShortWrite means "persist only the
// first N payload bytes, then fail the write", ModeENOSPC means "fail
// without persisting anything", ModeCorrupt means "persist the full
// payload with a bit flipped and report success".
type IOFault struct {
	Point string
	Mode  Mode
	// N is the shortwrite byte budget (bytes that reach the disk before
	// the cord is pulled).
	N int
}

func (f *IOFault) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s", f.Mode, f.Point)
}

// FireIO is the injection point for I/O-shaped faults (shortwrite,
// enospc, corrupt). With nothing armed it costs one atomic load and
// returns nil; classic modes armed on the same point are ignored here
// without consuming their count (they belong to Fire).
func FireIO(point string) *IOFault {
	if !enabled.Load() {
		return nil
	}
	p := lookup(point)
	if p == nil || !isIO(p.mode) || !p.take() {
		return nil
	}
	return &IOFault{Point: point, Mode: p.mode, N: p.n}
}

// ShouldDrop is the data-corruption injection point: it reports whether
// the call site should degrade its data (drop a row, truncate a grid).
// Only a plan armed with mode drop triggers it.
func ShouldDrop(point string) bool {
	if !enabled.Load() {
		return false
	}
	p := lookup(point)
	return p != nil && p.mode == ModeDrop && p.take()
}
