package faultinject

import (
	"strings"
	"testing"
)

func TestArmIOModes(t *testing.T) {
	defer Disarm()
	cases := []struct {
		spec string
		ok   bool
	}{
		{"wal.append=shortwrite:7", true},
		{"wal.append=shortwrite:0", true},
		{"wal.append=shortwrite:7#2", true},
		{"wal.append=enospc", true},
		{"wal.append=corrupt#1", true},
		{"wal.append=shortwrite", false},    // missing byte count
		{"wal.append=shortwrite:-1", false}, // negative budget
		{"wal.append=shortwrite:x", false},  // non-numeric
		{"wal.append=enospc:1", false},      // takes no argument
		{"wal.append=corrupt:bit", false},   // takes no argument
	}
	for _, tc := range cases {
		err := Arm(tc.spec)
		if tc.ok && err != nil {
			t.Errorf("Arm(%q) = %v, want nil", tc.spec, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Arm(%q) accepted", tc.spec)
		}
		Disarm()
	}
}

func TestFireIOShapes(t *testing.T) {
	defer Disarm()
	if err := Arm("a=shortwrite:13;b=enospc;c=corrupt"); err != nil {
		t.Fatal(err)
	}
	f := FireIO("a")
	if f == nil || f.Mode != ModeShortWrite || f.N != 13 {
		t.Fatalf("FireIO(a) = %+v, want shortwrite N=13", f)
	}
	if !strings.Contains(f.Error(), "shortwrite") || !strings.Contains(f.Error(), "a") {
		t.Errorf("IOFault error %q lacks mode/point", f.Error())
	}
	if f := FireIO("b"); f == nil || f.Mode != ModeENOSPC {
		t.Fatalf("FireIO(b) = %+v, want enospc", f)
	}
	if f := FireIO("c"); f == nil || f.Mode != ModeCorrupt {
		t.Fatalf("FireIO(c) = %+v, want corrupt", f)
	}
	if f := FireIO("unarmed"); f != nil {
		t.Errorf("FireIO on unarmed point = %+v", f)
	}
}

// TestFireIgnoresIOModes pins the dual-dispatch contract: an I/O mode
// never fires through Fire, and Fire does not consume its count — a
// call site probing both injectors sees exactly the armed number of
// I/O faults.
func TestFireIgnoresIOModes(t *testing.T) {
	defer Disarm()
	if err := Arm("p=shortwrite:4#1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Fire("p"); err != nil {
			t.Fatalf("Fire consumed an I/O fault: %v", err)
		}
	}
	if f := FireIO("p"); f == nil {
		t.Fatal("budgeted I/O fault was consumed by Fire")
	}
	if f := FireIO("p"); f != nil {
		t.Fatalf("fault fired past its #1 budget: %+v", f)
	}
}

// TestFireIOIgnoresClassicModes: the mirror contract — FireIO passes
// classic modes through untouched for Fire.
func TestFireIOIgnoresClassicModes(t *testing.T) {
	defer Disarm()
	if err := Arm("p=error#1"); err != nil {
		t.Fatal(err)
	}
	if f := FireIO("p"); f != nil {
		t.Fatalf("FireIO fired a classic mode: %+v", f)
	}
	if err := Fire("p"); err == nil {
		t.Fatal("Fire budget was consumed by FireIO")
	}
}
