package persist

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/hpm"
	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/quality"
	"repro/internal/spec"
	"repro/internal/units"
)

// This file holds the lenient decoders behind degraded-mode projections
// (DESIGN.md §11). The strict Unmarshal* functions reject any corruption;
// these salvage what they can — dropping the corrupt rows, keeping the
// first of duplicates, substituting the ST counters for an absent SMT
// column — and return a quality.Defect per repair so the projection's
// Quality block can report exactly what was worked around. Damage that
// leaves nothing usable (unparseable JSON, an empty suite, a broken size
// grid) is still a hard error: there is no projection to degrade to.

// UnmarshalIMBLenient decodes an IMB table, salvaging partial data.
func UnmarshalIMBLenient(data []byte) (*imb.Table, []quality.Defect, error) {
	if err := faultinject.Fire("persist.unmarshal.imb"); err != nil {
		return nil, nil, err
	}
	var defects []quality.Defect
	add := func(code quality.Code, sev quality.Severity, format string, args ...any) {
		defects = append(defects, quality.Defect{
			Code: code, Component: quality.Data, Severity: sev,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	var j imbTableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, nil, fmt.Errorf("persist: bad IMB table: %w", err)
	}
	if j.Machine == "" || j.Ranks < 2 || len(j.Sizes) == 0 {
		return nil, nil, fmt.Errorf("persist: incomplete IMB table (machine %q, %d ranks, %d sizes)",
			j.Machine, j.Ranks, len(j.Sizes))
	}
	prev := units.Bytes(0)
	for i, s := range j.Sizes {
		if s <= prev {
			return nil, nil, fmt.Errorf("persist: IMB size grid entry %d: sizes must be positive and strictly increasing (%d after %d)",
				i, s, prev)
		}
		prev = s
	}
	if len(j.Sizes) == 1 {
		add(quality.IMBSinglePointGrid, quality.Major,
			"%s/%d IMB grid has a single size (%s): every off-size lookup is a constant extrapolation",
			j.Machine, j.Ranks, units.FormatBytes(j.Sizes[0]))
	}

	t := &imb.Table{
		Machine: j.Machine,
		Ranks:   j.Ranks,
		Sizes:   j.Sizes,
		PerOp:   map[mpi.Routine]map[units.Bytes]units.Seconds{},
		NBIntra: imb.NBFit{InFlight: map[units.Bytes]units.Seconds{}},
		NBInter: imb.NBFit{InFlight: map[units.Bytes]units.Seconds{}},
	}
	loadFit := func(what string, f nbFitJSON) imb.NBFit {
		if err := checkNBFit(what, f); err != nil {
			add(quality.CorruptEntry, quality.Minor,
				"%s/%d %s fit dropped: %v", j.Machine, j.Ranks, what, err)
			return imb.NBFit{InFlight: map[units.Bytes]units.Seconds{}}
		}
		return imb.NBFit{Overhead: f.Overhead, InFlight: mapOf(f.InFlight)}
	}
	t.NBIntra = loadFit("nb_intra", j.NBIntra)
	t.NBInter = loadFit("nb_inter", j.NBInter)

	for _, rs := range j.PerOp {
		switch {
		case rs.Routine == "":
			add(quality.CorruptEntry, quality.Major, "%s/%d per_op entry without a routine name dropped", j.Machine, j.Ranks)
			continue
		case len(rs.Samples) == 0:
			add(quality.MissingIMBRoutine, quality.Major,
				"%s has no samples in the %s/%d IMB table", rs.Routine, j.Machine, j.Ranks)
			continue
		}
		if _, dup := t.PerOp[rs.Routine]; dup {
			add(quality.DuplicateEntry, quality.Minor,
				"duplicate %s entry in the %s/%d IMB table: first kept", rs.Routine, j.Machine, j.Ranks)
			continue
		}
		m := map[units.Bytes]units.Seconds{}
		prev := units.Bytes(-1)
		dropped := 0
		for _, e := range rs.Samples {
			if e.Bytes < 0 || e.Bytes <= prev ||
				math.IsNaN(e.Seconds) || math.IsInf(e.Seconds, 0) || e.Seconds < 0 {
				dropped++
				continue
			}
			m[e.Bytes] = e.Seconds
			prev = e.Bytes
		}
		if dropped > 0 {
			add(quality.CorruptEntry, quality.Major,
				"%d corrupt %s sample(s) dropped from the %s/%d IMB table", dropped, rs.Routine, j.Machine, j.Ranks)
		}
		if len(m) == 0 {
			add(quality.MissingIMBRoutine, quality.Major,
				"%s has no usable samples in the %s/%d IMB table", rs.Routine, j.Machine, j.Ranks)
			continue
		}
		t.PerOp[rs.Routine] = m
	}
	return t, defects, nil
}

// UnmarshalSpecLenient decodes a SPEC result set, salvaging partial data.
func UnmarshalSpecLenient(data []byte) (machine string, results map[string]spec.Result, defects []quality.Defect, err error) {
	if err := faultinject.Fire("persist.unmarshal.spec"); err != nil {
		return "", nil, nil, err
	}
	add := func(code quality.Code, sev quality.Severity, format string, args ...any) {
		defects = append(defects, quality.Defect{
			Code: code, Component: quality.Data, Severity: sev,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	var j specSuiteJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return "", nil, nil, fmt.Errorf("persist: bad SPEC results: %w", err)
	}
	if j.Machine == "" || len(j.Results) == 0 {
		return "", nil, nil, fmt.Errorf("persist: incomplete SPEC results")
	}
	results = make(map[string]spec.Result, len(j.Results))
	for _, r := range j.Results {
		if r.Bench == "" {
			add(quality.CorruptEntry, quality.Major, "SPEC result without a name dropped (%s)", j.Machine)
			continue
		}
		if _, dup := results[r.Bench]; dup {
			add(quality.DuplicateEntry, quality.Minor,
				"duplicate SPEC result for %s on %s: first kept", r.Bench, j.Machine)
			continue
		}
		if err := checkCounters(r.Bench+".st", &r.ST); err != nil {
			add(quality.CorruptEntry, quality.Major,
				"%s dropped from the %s SPEC results: %v", r.Bench, j.Machine, err)
			continue
		}
		smt := r.SMT
		switch {
		case checkCounters(r.Bench+".smt", &r.SMT) != nil:
			add(quality.MissingCounterGroup, quality.Minor,
				"%s on %s: corrupt SMT counters, ST substituted (hyperthreading scaling degrades to 1x)", r.Bench, j.Machine)
			smt = r.ST
		case zeroCounters(&r.SMT) && !zeroCounters(&r.ST):
			add(quality.MissingCounterGroup, quality.Minor,
				"%s on %s: SMT counter group absent, ST substituted (hyperthreading scaling degrades to 1x)", r.Bench, j.Machine)
			smt = r.ST
		}
		results[r.Bench] = spec.Result{Bench: r.Bench, Machine: r.Machine, ST: r.ST, SMT: smt}
	}
	if len(results) == 0 {
		return "", nil, nil, fmt.Errorf("persist: no usable SPEC results for %s (%d corrupt rows)", j.Machine, len(j.Results))
	}
	return j.Machine, results, defects, nil
}

// zeroCounters reports an all-zero observation — the shape of a counter
// group the collector never populated.
func zeroCounters(c *hpm.Counters) bool {
	for _, v := range append(c.Vector(), c.Instructions, c.CPI, c.Runtime) {
		if v != 0 {
			return false
		}
	}
	return true
}
