package persist

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/spec"
	"repro/internal/units"
)

func TestIMBRoundTrip(t *testing.T) {
	orig, err := imb.Run(arch.MustGet(arch.Hydra), 8, units.Pow2Sizes(64, 16*units.KiB))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalIMB(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalIMB(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Machine != orig.Machine || back.Ranks != orig.Ranks {
		t.Fatal("labels lost")
	}
	// Every consumable quantity must survive exactly.
	for rt, sizes := range orig.PerOp {
		for size, v := range sizes {
			if back.PerOp[rt][size] != v {
				t.Fatalf("%s@%d: %v != %v", rt, size, back.PerOp[rt][size], v)
			}
		}
	}
	for _, size := range orig.Sizes {
		if back.InFlightIntra(size) != orig.InFlightIntra(size) ||
			back.InFlightInter(size) != orig.InFlightInter(size) {
			t.Fatalf("Eq. 1 fits lost at %d B", size)
		}
	}
	if back.NBOverhead() != orig.NBOverhead() {
		t.Fatal("overhead lost")
	}
	// Interpolation behaves identically on the decoded table.
	a, _ := orig.Time(mpi.RoutineSendrecv, 1500)
	b, _ := back.Time(mpi.RoutineSendrecv, 1500)
	if a != b {
		t.Fatalf("interpolation diverges: %v vs %v", a, b)
	}
}

func TestIMBDeterministicEncoding(t *testing.T) {
	tab, err := imb.Run(arch.MustGet(arch.Hydra), 4, units.Pow2Sizes(64, 1024))
	if err != nil {
		t.Fatal(err)
	}
	a, err := MarshalIMB(tab)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalIMB(tab)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("encoding must be byte-stable (sorted maps)")
	}
}

func TestIMBUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalIMB([]byte("{")); err == nil {
		t.Error("syntax error must fail")
	}
	if _, err := UnmarshalIMB([]byte(`{"machine":"","ranks":0}`)); err == nil {
		t.Error("incomplete table must fail")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	results, err := spec.RunSuite(arch.MustGet(arch.Power6), true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSpec(arch.Power6, results)
	if err != nil {
		t.Fatal(err)
	}
	machine, back, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if machine != arch.Power6 || len(back) != len(results) {
		t.Fatalf("suite lost: %s, %d results", machine, len(back))
	}
	for name, r := range results {
		br := back[name]
		if br.ST != r.ST || br.SMT != r.SMT {
			t.Fatalf("%s: counters lost", name)
		}
	}
	// The encoding lists benchmarks in suite order.
	if !strings.Contains(string(data), "400.perlbench") {
		t.Error("missing pool member in encoding")
	}
	first := strings.Index(string(data), "400.perlbench")
	last := strings.Index(string(data), "482.sphinx3")
	if first < 0 || last < 0 || first > last {
		t.Error("suite order not preserved in encoding")
	}
}

func TestSpecUnmarshalRejectsGarbage(t *testing.T) {
	if _, _, err := UnmarshalSpec([]byte("[]")); err == nil {
		t.Error("wrong shape must fail")
	}
	if _, _, err := UnmarshalSpec([]byte(`{"machine":"x","results":[{"bench":""}]}`)); err == nil {
		t.Error("nameless result must fail")
	}
}
