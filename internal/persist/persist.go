// Package persist serializes the artifacts SWAPP exchanges between sites:
// IMB parameter tables and SPEC results ("published benchmark data" for a
// target machine one cannot access) and application MPI profiles. The paper
// assumes exactly this workflow — projections are made from *published*
// target data — so the wire format is part of the system.
//
// The format is plain JSON, stable across runs (maps are serialized as
// sorted arrays), and round-trips exactly for the quantities the
// projection consumes.
package persist

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/hpm"
	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/spec"
	"repro/internal/units"
)

// --- IMB tables -------------------------------------------------------------

// sizeEntry is one (size, seconds) sample.
type sizeEntry struct {
	Bytes   units.Bytes   `json:"bytes"`
	Seconds units.Seconds `json:"seconds"`
}

// routineSamples is one routine's sweep.
type routineSamples struct {
	Routine mpi.Routine `json:"routine"`
	Samples []sizeEntry `json:"samples"`
}

// nbFitJSON mirrors imb.NBFit.
type nbFitJSON struct {
	Overhead units.Seconds `json:"overhead"`
	InFlight []sizeEntry   `json:"in_flight"`
}

// imbTableJSON is the stable wire form of an imb.Table.
type imbTableJSON struct {
	Machine string           `json:"machine"`
	Ranks   int              `json:"ranks"`
	Sizes   []units.Bytes    `json:"sizes"`
	PerOp   []routineSamples `json:"per_op"`
	NBIntra nbFitJSON        `json:"nb_intra"`
	NBInter nbFitJSON        `json:"nb_inter"`
}

// sortedSamples converts a size-keyed map to a sorted sample list.
func sortedSamples(m map[units.Bytes]units.Seconds) []sizeEntry {
	out := make([]sizeEntry, 0, len(m))
	for b, s := range m {
		out = append(out, sizeEntry{Bytes: b, Seconds: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes < out[j].Bytes })
	return out
}

// mapOf inverts sortedSamples.
func mapOf(es []sizeEntry) map[units.Bytes]units.Seconds {
	m := make(map[units.Bytes]units.Seconds, len(es))
	for _, e := range es {
		m[e.Bytes] = e.Seconds
	}
	return m
}

// MarshalIMB encodes an IMB table as deterministic JSON.
func MarshalIMB(t *imb.Table) ([]byte, error) {
	j := imbTableJSON{
		Machine: t.Machine,
		Ranks:   t.Ranks,
		Sizes:   t.Sizes,
		NBIntra: nbFitJSON{Overhead: t.NBIntra.Overhead, InFlight: sortedSamples(t.NBIntra.InFlight)},
		NBInter: nbFitJSON{Overhead: t.NBInter.Overhead, InFlight: sortedSamples(t.NBInter.InFlight)},
	}
	for _, rt := range t.Routines() {
		j.PerOp = append(j.PerOp, routineSamples{Routine: rt, Samples: sortedSamples(t.PerOp[rt])})
	}
	return json.MarshalIndent(j, "", "  ")
}

// checkSamples validates one sweep: sizes non-negative (MPI_Barrier has no
// message size and is recorded at 0 bytes) and strictly increasing, seconds
// finite and non-negative. The ordering matters — downstream interpolation
// binary-searches the sorted sample list, and duplicates would silently
// collapse when rebuilt into a map.
func checkSamples(what string, es []sizeEntry) error {
	prev := units.Bytes(-1)
	for i, e := range es {
		if e.Bytes < 0 || e.Bytes <= prev {
			return fmt.Errorf("persist: %s: sample %d: sizes must be non-negative and strictly increasing (%d after %d)",
				what, i, e.Bytes, prev)
		}
		if math.IsNaN(e.Seconds) || math.IsInf(e.Seconds, 0) || e.Seconds < 0 {
			return fmt.Errorf("persist: %s: sample %d (%d bytes): bad seconds %v", what, i, e.Bytes, e.Seconds)
		}
		prev = e.Bytes
	}
	return nil
}

// checkNBFit validates a non-blocking fit: finite non-negative overhead and
// a well-formed in-flight sweep.
func checkNBFit(what string, f nbFitJSON) error {
	if math.IsNaN(f.Overhead) || math.IsInf(f.Overhead, 0) || f.Overhead < 0 {
		return fmt.Errorf("persist: %s: bad overhead %v", what, f.Overhead)
	}
	return checkSamples(what+".in_flight", f.InFlight)
}

// UnmarshalIMB decodes and validates an IMB table. Beyond syntactic JSON
// errors it rejects semantic corruption that would otherwise load silently
// and poison projections: non-monotone or non-positive size grids, negative
// or non-finite seconds, and duplicate routine entries.
func UnmarshalIMB(data []byte) (*imb.Table, error) {
	var j imbTableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("persist: bad IMB table: %w", err)
	}
	if j.Machine == "" || j.Ranks < 2 || len(j.Sizes) == 0 {
		return nil, fmt.Errorf("persist: incomplete IMB table (machine %q, %d ranks, %d sizes)",
			j.Machine, j.Ranks, len(j.Sizes))
	}
	prev := units.Bytes(0)
	for i, s := range j.Sizes {
		if s <= prev {
			return nil, fmt.Errorf("persist: IMB size grid entry %d: sizes must be positive and strictly increasing (%d after %d)",
				i, s, prev)
		}
		prev = s
	}
	if err := checkNBFit("nb_intra", j.NBIntra); err != nil {
		return nil, err
	}
	if err := checkNBFit("nb_inter", j.NBInter); err != nil {
		return nil, err
	}
	t := &imb.Table{
		Machine: j.Machine,
		Ranks:   j.Ranks,
		Sizes:   j.Sizes,
		PerOp:   map[mpi.Routine]map[units.Bytes]units.Seconds{},
		NBIntra: imb.NBFit{Overhead: j.NBIntra.Overhead, InFlight: mapOf(j.NBIntra.InFlight)},
		NBInter: imb.NBFit{Overhead: j.NBInter.Overhead, InFlight: mapOf(j.NBInter.InFlight)},
	}
	for _, rs := range j.PerOp {
		if rs.Routine == "" {
			return nil, fmt.Errorf("persist: IMB per_op entry without a routine name")
		}
		if _, dup := t.PerOp[rs.Routine]; dup {
			return nil, fmt.Errorf("persist: duplicate IMB per_op entry for %s", rs.Routine)
		}
		if err := checkSamples("per_op."+string(rs.Routine), rs.Samples); err != nil {
			return nil, err
		}
		t.PerOp[rs.Routine] = mapOf(rs.Samples)
	}
	return t, nil
}

// --- SPEC results --------------------------------------------------------------

// specResultJSON is the wire form of one benchmark observation.
type specResultJSON struct {
	Bench   string       `json:"bench"`
	Machine string       `json:"machine"`
	ST      hpm.Counters `json:"st"`
	SMT     hpm.Counters `json:"smt"`
}

// specSuiteJSON is a whole suite's results on one machine.
type specSuiteJSON struct {
	Machine string           `json:"machine"`
	Results []specResultJSON `json:"results"`
}

// MarshalSpec encodes a SPEC result set as deterministic JSON (suite
// order).
func MarshalSpec(machine string, results map[string]spec.Result) ([]byte, error) {
	j := specSuiteJSON{Machine: machine}
	for _, name := range spec.SortedNames(results) {
		r := results[name]
		j.Results = append(j.Results, specResultJSON{
			Bench: r.Bench, Machine: r.Machine, ST: r.ST, SMT: r.SMT,
		})
	}
	return json.MarshalIndent(j, "", "  ")
}

// checkCounters validates one counter observation: every metric of the
// canonical vector plus the derived totals must be finite and non-negative
// (counter rates cannot be negative; NaN/Inf would silently corrupt the
// metric-group ranking downstream).
func checkCounters(what string, c *hpm.Counters) error {
	vals := append(c.Vector(), c.Instructions, c.CPI, c.Runtime)
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("persist: %s: bad counter value %v (index %d)", what, v, i)
		}
	}
	return nil
}

// UnmarshalSpec decodes and validates a SPEC result set, rejecting
// duplicate benchmark entries and non-finite or negative counter values.
func UnmarshalSpec(data []byte) (machine string, results map[string]spec.Result, err error) {
	var j specSuiteJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return "", nil, fmt.Errorf("persist: bad SPEC results: %w", err)
	}
	if j.Machine == "" || len(j.Results) == 0 {
		return "", nil, fmt.Errorf("persist: incomplete SPEC results")
	}
	results = make(map[string]spec.Result, len(j.Results))
	for _, r := range j.Results {
		if r.Bench == "" {
			return "", nil, fmt.Errorf("persist: SPEC result without a name")
		}
		if _, dup := results[r.Bench]; dup {
			return "", nil, fmt.Errorf("persist: duplicate SPEC result for %s", r.Bench)
		}
		if err := checkCounters(r.Bench+".st", &r.ST); err != nil {
			return "", nil, err
		}
		if err := checkCounters(r.Bench+".smt", &r.SMT); err != nil {
			return "", nil, err
		}
		results[r.Bench] = spec.Result{Bench: r.Bench, Machine: r.Machine, ST: r.ST, SMT: r.SMT}
	}
	return j.Machine, results, nil
}
