package persist

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hpm"
	"repro/internal/quality"
	"repro/internal/spec"
)

// newIMBFixture is a minimal valid IMB table document tests mutate.
func newIMBFixture() map[string]any {
	return map[string]any{
		"machine": "hydra",
		"ranks":   4,
		"sizes":   []int{1024, 4096},
		"per_op": []map[string]any{
			{"routine": "MPI_Bcast", "samples": []map[string]any{
				{"bytes": 1024, "seconds": 1e-4},
				{"bytes": 4096, "seconds": 2e-4},
			}},
		},
		"nb_intra": map[string]any{"overhead": 1e-6, "in_flight": []map[string]any{{"bytes": 1024, "seconds": 1e-5}}},
		"nb_inter": map[string]any{"overhead": 2e-6, "in_flight": []map[string]any{{"bytes": 1024, "seconds": 2e-5}}},
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func codesOf(ds []quality.Defect) map[quality.Code]int {
	out := map[quality.Code]int{}
	for _, d := range ds {
		out[d.Code]++
	}
	return out
}

func TestIMBLenientCleanHasNoDefects(t *testing.T) {
	tab, ds, err := UnmarshalIMBLenient(mustJSON(t, newIMBFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("clean table produced defects: %v", ds)
	}
	if got, _ := tab.Time("MPI_Bcast", 1024); got != 1e-4 {
		t.Errorf("sample lost: %v", got)
	}
}

func TestIMBLenientEmptyRoutine(t *testing.T) {
	fix := newIMBFixture()
	fix["per_op"] = append(fix["per_op"].([]map[string]any),
		map[string]any{"routine": "MPI_Allreduce", "samples": []map[string]any{}})
	tab, ds, err := UnmarshalIMBLenient(mustJSON(t, fix))
	if err != nil {
		t.Fatalf("empty routine must degrade, not fail: %v", err)
	}
	if _, ok := tab.PerOp["MPI_Allreduce"]; ok {
		t.Error("empty routine loaded as an entry")
	}
	if codesOf(ds)[quality.MissingIMBRoutine] != 1 {
		t.Errorf("defects = %v, want one MissingIMBRoutine", ds)
	}
	// The strict decoder accepts an empty sweep too, but the lenient one
	// must keep the rest of the table intact alongside the defect.
	if _, err := tab.Time("MPI_Bcast", 1024); err != nil {
		t.Errorf("healthy routine lost: %v", err)
	}
}

func TestIMBLenientCorruptSamplesDropped(t *testing.T) {
	fix := newIMBFixture()
	fix["per_op"] = []map[string]any{
		{"routine": "MPI_Bcast", "samples": []map[string]any{
			{"bytes": 1024, "seconds": 1e-4},
			{"bytes": 2048, "seconds": -5.0}, // negative: corrupt
			{"bytes": 4096, "seconds": 2e-4},
		}},
	}
	tab, ds, err := UnmarshalIMBLenient(mustJSON(t, fix))
	if err != nil {
		t.Fatalf("corrupt sample must degrade, not fail: %v", err)
	}
	if _, ok := tab.PerOp["MPI_Bcast"][2048]; ok {
		t.Error("corrupt sample survived")
	}
	if _, ok := tab.PerOp["MPI_Bcast"][4096]; !ok {
		t.Error("valid sample after the corrupt one lost")
	}
	if codesOf(ds)[quality.CorruptEntry] != 1 {
		t.Errorf("defects = %v, want one CorruptEntry", ds)
	}
	// Strict path still rejects the same bytes — leniency is opt-in.
	if _, err := UnmarshalIMB(mustJSON(t, fix)); err == nil {
		t.Error("strict decoder accepted corrupt samples")
	}
}

func TestIMBLenientDuplicateKeepsFirst(t *testing.T) {
	fix := newIMBFixture()
	fix["per_op"] = append(fix["per_op"].([]map[string]any),
		map[string]any{"routine": "MPI_Bcast", "samples": []map[string]any{
			{"bytes": 1024, "seconds": 9.9},
		}})
	tab, ds, err := UnmarshalIMBLenient(mustJSON(t, fix))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.PerOp["MPI_Bcast"][1024]; got != 1e-4 {
		t.Errorf("duplicate overwrote the first entry: %v", got)
	}
	if codesOf(ds)[quality.DuplicateEntry] != 1 {
		t.Errorf("defects = %v, want one DuplicateEntry", ds)
	}
}

func TestIMBLenientSinglePointGrid(t *testing.T) {
	fix := newIMBFixture()
	fix["sizes"] = []int{1024}
	fix["per_op"] = []map[string]any{
		{"routine": "MPI_Bcast", "samples": []map[string]any{{"bytes": 1024, "seconds": 1e-4}}},
	}
	_, ds, err := UnmarshalIMBLenient(mustJSON(t, fix))
	if err != nil {
		t.Fatalf("single-point grid must degrade, not fail: %v", err)
	}
	if codesOf(ds)[quality.IMBSinglePointGrid] != 1 {
		t.Errorf("defects = %v, want one IMBSinglePointGrid", ds)
	}
}

func TestIMBLenientStillRejectsStructuralDamage(t *testing.T) {
	for name, data := range map[string]string{
		"not json":     "{",
		"no machine":   `{"ranks":4,"sizes":[64]}`,
		"broken grid":  `{"machine":"m","ranks":4,"sizes":[64,32]}`,
		"single ranks": `{"machine":"m","ranks":1,"sizes":[64]}`,
	} {
		if _, _, err := UnmarshalIMBLenient([]byte(data)); err == nil {
			t.Errorf("%s: accepted, want hard error", name)
		}
	}
}

// specFixture builds a valid two-benchmark suite document.
func specFixture() map[string]any {
	good := func(bench string) map[string]any {
		c := hpm.Counters{Instructions: 1e9, CPI: 1.2, Runtime: 10}
		return map[string]any{"bench": bench, "machine": "hydra", "st": c, "smt": c}
	}
	return map[string]any{
		"machine": "hydra",
		"results": []map[string]any{good("410.bwaves"), good("437.leslie3d")},
	}
}

func TestSpecLenientCleanHasNoDefects(t *testing.T) {
	machine, results, ds, err := UnmarshalSpecLenient(mustJSON(t, specFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if machine != "hydra" || len(results) != 2 || len(ds) != 0 {
		t.Errorf("machine=%q results=%d defects=%v", machine, len(results), ds)
	}
}

func TestSpecLenientCorruptRowDropped(t *testing.T) {
	fix := specFixture()
	fix["results"] = append(fix["results"].([]map[string]any), map[string]any{
		"bench": "470.lbm", "machine": "hydra",
		"st":  map[string]any{"instructions": -1.0},
		"smt": map[string]any{},
	})
	_, results, ds, err := UnmarshalSpecLenient(mustJSON(t, fix))
	if err != nil {
		t.Fatalf("corrupt row must degrade, not fail: %v", err)
	}
	if _, ok := results["470.lbm"]; ok {
		t.Error("corrupt row loaded")
	}
	if len(results) != 2 {
		t.Errorf("healthy rows lost: %d", len(results))
	}
	if codesOf(ds)[quality.CorruptEntry] != 1 {
		t.Errorf("defects = %v, want one CorruptEntry", ds)
	}
	if _, _, err := UnmarshalSpec(mustJSON(t, fix)); err == nil {
		t.Error("strict decoder accepted the corrupt row")
	}
}

func TestSpecLenientZeroSMTSubstituted(t *testing.T) {
	fix := specFixture()
	rows := fix["results"].([]map[string]any)
	rows[0]["smt"] = hpm.Counters{} // collector never filled the SMT group
	machine, results, ds, err := UnmarshalSpecLenient(mustJSON(t, fix))
	if err != nil {
		t.Fatal(err)
	}
	_ = machine
	r := results["410.bwaves"]
	if r.SMT != r.ST {
		t.Errorf("SMT not substituted with ST: %+v vs %+v", r.SMT, r.ST)
	}
	if codesOf(ds)[quality.MissingCounterGroup] != 1 {
		t.Errorf("defects = %v, want one MissingCounterGroup", ds)
	}
}

func TestSpecLenientDuplicateKeepsFirst(t *testing.T) {
	fix := specFixture()
	rows := fix["results"].([]map[string]any)
	dup := map[string]any{"bench": "410.bwaves", "machine": "hydra",
		"st": hpm.Counters{Instructions: 5, CPI: 5, Runtime: 5}, "smt": hpm.Counters{Instructions: 5, CPI: 5, Runtime: 5}}
	fix["results"] = append(rows, dup)
	_, results, ds, err := UnmarshalSpecLenient(mustJSON(t, fix))
	if err != nil {
		t.Fatal(err)
	}
	if results["410.bwaves"].ST.Runtime == 5 {
		t.Error("duplicate overwrote the first entry")
	}
	if codesOf(ds)[quality.DuplicateEntry] != 1 {
		t.Errorf("defects = %v, want one DuplicateEntry", ds)
	}
}

func TestSpecLenientAllRowsCorruptIsHardError(t *testing.T) {
	fix := specFixture()
	fix["results"] = []map[string]any{{
		"bench": "410.bwaves", "machine": "hydra",
		"st": map[string]any{"instructions": -1.0}, "smt": map[string]any{},
	}}
	if _, _, _, err := UnmarshalSpecLenient(mustJSON(t, fix)); err == nil {
		t.Error("suite with zero usable rows accepted")
	}
}

func TestLenientFaultPoints(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("persist.unmarshal.imb=error,persist.unmarshal.spec=error"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalIMBLenient(mustJSON(t, newIMBFixture())); err == nil {
		t.Error("persist.unmarshal.imb point did not fire")
	}
	if _, _, _, err := UnmarshalSpecLenient(mustJSON(t, specFixture())); err == nil {
		t.Error("persist.unmarshal.spec point did not fire")
	}
}

// TestLenientRoundTripMatchesStrict pins that on clean data the lenient
// decoders produce exactly what the strict ones do — leniency must not
// perturb healthy loads.
func TestLenientRoundTripMatchesStrict(t *testing.T) {
	data := mustJSON(t, newIMBFixture())
	strict, err := UnmarshalIMB(data)
	if err != nil {
		t.Fatal(err)
	}
	lenient, ds, err := UnmarshalIMBLenient(data)
	if err != nil || len(ds) != 0 {
		t.Fatalf("lenient clean load: %v / %v", err, ds)
	}
	sb, _ := MarshalIMB(strict)
	lb, _ := MarshalIMB(lenient)
	if string(sb) != string(lb) {
		t.Error("lenient decode diverges from strict on clean data")
	}

	sdata := mustJSON(t, specFixture())
	smach, sres, err := UnmarshalSpec(sdata)
	if err != nil {
		t.Fatal(err)
	}
	lmach, lres, ds, err := UnmarshalSpecLenient(sdata)
	if err != nil || len(ds) != 0 {
		t.Fatalf("lenient clean load: %v / %v", err, ds)
	}
	if smach != lmach || len(sres) != len(lres) {
		t.Error("lenient SPEC decode diverges from strict on clean data")
	}
	var _ = spec.SortedNames
	sj, _ := MarshalSpec(smach, sres)
	lj, _ := MarshalSpec(lmach, lres)
	if string(sj) != string(lj) {
		t.Error("lenient SPEC decode diverges from strict on clean data")
	}
	if !strings.Contains(string(sj), "410.bwaves") {
		t.Error("fixture lost its benchmarks")
	}
}
