package persist

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/imb"
	"repro/internal/spec"
	"repro/internal/units"
)

// seedIMB produces a real marshalled table for the fuzz corpus.
func seedIMB(tb testing.TB) []byte {
	tb.Helper()
	t, err := imb.Run(arch.MustGet(arch.Hydra), 4, units.Pow2Sizes(64, 4*units.KiB))
	if err != nil {
		tb.Fatal(err)
	}
	data, err := MarshalIMB(t)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzUnmarshalIMB asserts the decoder's contract on arbitrary input: it
// either rejects the bytes or returns a table whose invariants hold and
// which re-marshals stably (marshal∘unmarshal is idempotent after one
// normalising round trip).
func FuzzUnmarshalIMB(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add(seedIMB(f))
	// Corruption the decoder must catch, not load.
	f.Add([]byte(`{"machine":"m","ranks":4,"sizes":[8,4]}`))
	f.Add([]byte(`{"machine":"m","ranks":4,"sizes":[-1]}`))
	f.Add([]byte(`{"machine":"m","ranks":4,"sizes":[4],"per_op":[{"routine":"MPI_Bcast","samples":[{"bytes":4,"seconds":-1}]}]}`))
	f.Add([]byte(`{"machine":"m","ranks":4,"sizes":[4],"per_op":[{"routine":"MPI_Bcast","samples":[]},{"routine":"MPI_Bcast","samples":[]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := UnmarshalIMB(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted tables must satisfy the documented invariants.
		if tab.Machine == "" || tab.Ranks < 2 || len(tab.Sizes) == 0 {
			t.Fatalf("accepted incomplete table: %+v", tab)
		}
		prev := units.Bytes(0)
		for _, s := range tab.Sizes {
			if s <= prev {
				t.Fatalf("accepted non-monotone size grid: %v", tab.Sizes)
			}
			prev = s
		}
		for rt, samples := range tab.PerOp {
			for size, sec := range samples {
				if size < 0 || sec < 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
					t.Fatalf("accepted bad sample %s@%d: %v", rt, size, sec)
				}
			}
		}
		for _, fit := range []imb.NBFit{tab.NBIntra, tab.NBInter} {
			if fit.Overhead < 0 || math.IsNaN(fit.Overhead) || math.IsInf(fit.Overhead, 0) {
				t.Fatalf("accepted bad NB overhead: %v", fit.Overhead)
			}
		}
		// Round trip: an accepted table re-encodes, re-decodes, and the
		// second encoding is byte-identical (canonical form is a fixpoint).
		enc1, err := MarshalIMB(tab)
		if err != nil {
			t.Fatalf("re-marshal of accepted table failed: %v", err)
		}
		tab2, err := UnmarshalIMB(enc1)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v\n%s", err, enc1)
		}
		enc2, err := MarshalIMB(tab2)
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}

// seedSpec produces a real marshalled SPEC suite for the fuzz corpus.
func seedSpec(tb testing.TB) []byte {
	tb.Helper()
	res, err := spec.RunSuite(arch.MustGet(arch.Hydra), false)
	if err != nil {
		tb.Fatal(err)
	}
	data, err := MarshalSpec(arch.Hydra, res)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzUnmarshalSpec is the same contract for the SPEC decoder.
func FuzzUnmarshalSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Add(seedSpec(f))
	f.Add([]byte(`{"machine":"m","results":[{"bench":"a"},{"bench":"a"}]}`))
	f.Add([]byte(`{"machine":"m","results":[{"bench":"a","st":{"CPICompletion":-1}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		machine, res, err := UnmarshalSpec(data)
		if err != nil {
			return
		}
		if machine == "" || len(res) == 0 {
			t.Fatalf("accepted incomplete suite: %q, %d results", machine, len(res))
		}
		for name, r := range res {
			if name == "" || r.Bench != name {
				t.Fatalf("result key %q does not match bench %q", name, r.Bench)
			}
			for _, c := range []float64{r.ST.CPICompletion, r.SMT.CPICompletion, r.ST.Runtime, r.SMT.Runtime} {
				if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
					t.Fatalf("accepted bad counter value %v in %s", c, name)
				}
			}
		}
		enc1, err := MarshalSpec(machine, res)
		if err != nil {
			t.Fatalf("re-marshal of accepted suite failed: %v", err)
		}
		m2, res2, err := UnmarshalSpec(enc1)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v\n%s", err, enc1)
		}
		enc2, err := MarshalSpec(m2, res2)
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
