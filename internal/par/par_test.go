package par

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestGroupRunsAll(t *testing.T) {
	var g Group
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", n.Load())
	}
}

func TestGroupFirstError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	g.Go(func() error { return nil })
	g.Go(func() error { return boom })
	g.Go(func() error { return errors.New("later") })
	if err := g.Wait(); err == nil {
		t.Fatal("error dropped")
	}
}

func TestGroupLimit(t *testing.T) {
	var g Group
	g.SetLimit(2)
	var cur, max atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			mu.Lock()
			if c > max.Load() {
				max.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if max.Load() > 2 {
		t.Errorf("concurrency %d exceeded limit 2", max.Load())
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 137
		seen := make([]atomic.Int64, n)
		if err := ForEach(workers, n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 64, func(i int) error {
			if i == 13 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachWWorkerSlots(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 64
		slots := workers
		if slots > n {
			slots = n
		}
		var perSlot = make([]atomic.Int64, slots)
		var covered = make([]atomic.Int64, n)
		if err := ForEachW(workers, n, func(w, i int) error {
			if w < 0 || w >= slots {
				t.Errorf("workers=%d: slot %d out of range [0,%d)", workers, w, slots)
			}
			perSlot[w].Add(1)
			covered[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var total int64
		for i := range perSlot {
			total += perSlot[i].Load()
		}
		if total != int64(n) {
			t.Errorf("workers=%d: slots ran %d items, want %d", workers, total, n)
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, covered[i].Load())
			}
		}
	}
}

func TestForEachWSerialIsSlotZero(t *testing.T) {
	if err := ForEachW(1, 10, func(w, i int) error {
		if w != 0 {
			t.Errorf("serial path reported slot %d at index %d", w, i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSerialStopsEarly(t *testing.T) {
	var ran int
	_ = ForEach(1, 100, func(i int) error {
		ran++
		if i == 5 {
			return errors.New("stop")
		}
		return nil
	})
	if ran != 6 {
		t.Errorf("serial path ran %d items after error, want 6", ran)
	}
}
