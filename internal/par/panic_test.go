package par

import (
	"errors"
	"strings"
	"testing"
)

// TestForEachPanicBecomesError proves panic isolation on both execution
// paths: a panicking task surfaces as a *PanicError carrying the panic
// value and a stack trace, instead of crashing the process from a pool
// goroutine.
func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 8, func(i int) error {
			if i == 3 {
				panic("boom at 3")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "boom at 3" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: stack not captured", workers)
		}
		if !strings.Contains(pe.Error(), "boom at 3") {
			t.Errorf("workers=%d: Error() = %q", workers, pe.Error())
		}
	}
}

// TestGroupPanicBecomesError covers the Group path used by the pipeline's
// fan-out: one panicking task yields a *PanicError from Wait while the
// other tasks complete.
func TestGroupPanicBecomesError(t *testing.T) {
	var g Group
	g.SetLimit(2)
	done := make([]bool, 4)
	for i := 0; i < 4; i++ {
		i := i
		g.Go(func() error {
			if i == 1 {
				panic(errors.New("task 1 died"))
			}
			done[i] = true
			return nil
		})
	}
	err := g.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v, want *PanicError", err)
	}
	for _, i := range []int{0, 2, 3} {
		if !done[i] {
			t.Errorf("task %d did not complete after sibling panic", i)
		}
	}
}

// TestPanicErrorKeepsRealErrors pins that ordinary errors still travel
// unwrapped: panic conversion must not intercept the error path.
func TestPanicErrorKeepsRealErrors(t *testing.T) {
	sentinel := errors.New("plain failure")
	err := ForEach(4, 8, func(i int) error {
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the plain sentinel", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Error("plain error must not be wrapped as PanicError")
	}
}
