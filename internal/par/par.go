// Package par provides the small, dependency-free concurrency primitives
// the evaluation engine is built on: an errgroup-style Group with a
// concurrency limit and first-error propagation, and a bounded-worker
// ForEach for index-addressed fan-out.
//
// The engine's determinism contract (see DESIGN.md, "Parallelism &
// determinism") is that concurrency never touches random-number streams or
// floating-point accumulation order: work items are generated and combined
// serially in a fixed order, and only the pure, independently-keyed
// evaluations in between run on the pool. par therefore only ever executes
// caller-supplied closures; it never reorders results — callers index into
// pre-sized slices.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into an error: par never lets a
// panicking task kill the process from an anonymous goroutine. Value is
// the recovered panic value and Stack the worker's stack at recovery
// time, so the crash site survives the trip across the pool boundary.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// protect runs f, converting a panic into a *PanicError.
func protect(f func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return f()
}

// Workers resolves a worker-count knob: n when positive, otherwise
// runtime.GOMAXPROCS(0). By convention across the repository, 1 selects
// the legacy serial path.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Group runs tasks on goroutines and waits for them, propagating the first
// error. The zero value is ready to use and imposes no concurrency limit;
// call SetLimit before the first Go to bound it. It is a stdlib-only
// stand-in for golang.org/x/sync/errgroup.
type Group struct {
	wg   sync.WaitGroup
	sem  chan struct{}
	once sync.Once
	err  error
}

// SetLimit bounds the number of concurrently running tasks to n (n <= 0
// removes the limit). It must not be called after Go.
func (g *Group) SetLimit(n int) {
	if n <= 0 {
		g.sem = nil
		return
	}
	g.sem = make(chan struct{}, n)
}

// Go schedules f on its own goroutine, blocking first if the concurrency
// limit is reached. The first non-nil error wins; later errors are dropped.
// A panicking task is recovered into a *PanicError instead of crashing the
// process from the pool goroutine.
func (g *Group) Go(f func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer func() {
			if g.sem != nil {
				<-g.sem
			}
			g.wg.Done()
		}()
		if err := protect(f); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every task scheduled with Go has returned, then
// reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the first error. workers <= 1 (or n == 1) runs inline on the
// calling goroutine — the legacy serial path, with no goroutine overhead
// and early exit on error. In the concurrent path an error stops workers
// from taking new indices, but indices already in flight complete. A panic
// in fn becomes a *PanicError on both paths, so a caller sees the same
// failure shape at every worker count.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachW(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachW is ForEach with the executing worker's pool slot passed to fn —
// the hook observability layers use to attribute spans to workers. Slots
// number 0..min(workers,n)-1; the inline serial path is slot 0. Which slot
// runs which index is scheduling-dependent; everything else about the
// contract matches ForEach.
func ForEachW(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			i := i
			if err := protect(func() error { return fn(0, i) }); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		once  sync.Once
		first error
		stop  atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := protect(func() error { return fn(w, i) }); err != nil {
					once.Do(func() { first = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
