package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/faultinject"
	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/quality"
	"repro/internal/spec"
	"repro/internal/units"
)

// defectCodes extracts the codes of a report for membership checks.
func defectCodes(r *quality.Report) map[quality.Code]bool {
	out := map[quality.Code]bool{}
	for _, d := range r.Defects() {
		out[d.Code] = true
	}
	return out
}

// TestDroppedRoutineBecomesWait proves the unpriceable-routine fallback: a
// profiled routine absent from the IMB tables no longer fails the
// projection; its elapsed is treated as pure WaitTime and a major
// DroppedMPIRoutine defect is recorded.
func TestDroppedRoutineBecomesWait(t *testing.T) {
	const ranks = 4
	const elapsed = 2e-3
	p := synthPipeline(ranks, 1e-4, 5e-5) // tables price Bcast only
	app := synthApp(mpi.RoutineAllreduce, ranks, elapsed)

	rec := quality.NewReport()
	const computeRatio = 0.5
	comm, err := p.projectComm(nil, app, ranks, computeRatio, rec)
	if err != nil {
		t.Fatalf("unpriceable routine must degrade, not fail: %v", err)
	}
	if len(comm.Routines) != 1 {
		t.Fatalf("got %d routine projections, want 1", len(comm.Routines))
	}
	rp := comm.Routines[0]
	if rp.BaseTransfer != 0 || rp.TargetTransfer != 0 {
		t.Errorf("dropped routine must carry zero transfer, got %+v", rp)
	}
	if rp.BaseWait != elapsed {
		t.Errorf("dropped routine wait = %v, want full elapsed %v", rp.BaseWait, elapsed)
	}
	if want := elapsed * comm.WaitScale; math.Abs(rp.TargetWait-want) > 1e-15 {
		t.Errorf("target wait = %v, want elapsed x WaitScale = %v", rp.TargetWait, want)
	}
	codes := defectCodes(rec)
	if !codes[quality.DroppedMPIRoutine] {
		t.Errorf("missing DroppedMPIRoutine defect, got %v", rec.Defects())
	}
	if g := rec.ComponentGrade(quality.Comm); g != quality.GradeC {
		t.Errorf("comm grade = %s, want C (major fallback)", g)
	}
}

// TestGridGapRecordsDefect proves truncated IMB grids degrade instead of
// failing: lookups over the missing tail extrapolate from the surviving
// samples and record an IMBGridGap defect.
func TestGridGapRecordsDefect(t *testing.T) {
	const ranks = 4
	p := synthPipeline(ranks, 1e-4, 5e-5)
	// Knock out the target sample at the profiled 1 KiB size; the declared
	// grid keeps it, so the lookup bridges to the surviving 4 KiB sample.
	delete(p.IMBTarget[ranks].PerOp[mpi.RoutineBcast], 1024)
	app := synthApp(mpi.RoutineBcast, ranks, 1e-3)

	rec := quality.NewReport()
	comm, err := p.projectComm(nil, app, ranks, 1, rec)
	if err != nil {
		t.Fatalf("grid gap must degrade, not fail: %v", err)
	}
	if !defectCodes(rec)[quality.IMBGridGap] {
		t.Errorf("missing IMBGridGap defect, got %v", rec.Defects())
	}
	if comm.TargetTotal() < 0 {
		t.Errorf("degraded projection went negative: %v", comm.TargetTotal())
	}
}

// TestWaitScaleDefault proves a broken compute ratio falls back to
// WaitScale = 1 with a defect instead of propagating NaN.
func TestWaitScaleDefault(t *testing.T) {
	const ranks = 4
	p := synthPipeline(ranks, 1e-4, 5e-5)
	app := synthApp(mpi.RoutineBcast, ranks, 1e-3)
	for _, ratio := range []float64{math.NaN(), math.Inf(1), 0, -2} {
		rec := quality.NewReport()
		comm, err := p.projectComm(nil, app, ranks, ratio, rec)
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		if comm.WaitScale != 1 {
			t.Errorf("ratio %v: WaitScale = %v, want 1", ratio, comm.WaitScale)
		}
		if !defectCodes(rec)[quality.WaitScaleDefault] {
			t.Errorf("ratio %v: missing WaitScaleDefault defect", ratio)
		}
	}
}

// TestAnalyzeDataSpecIntersection pins the pool-shrink defect: base
// benchmarks absent on the target are recorded, minor while at least 75%
// of the pool survives and major below that.
func TestAnalyzeDataSpecIntersection(t *testing.T) {
	mk := func(names ...string) map[string]spec.Result {
		out := map[string]spec.Result{}
		for _, n := range names {
			out[n] = spec.Result{}
		}
		return out
	}
	p := &Pipeline{
		SpecBase:   mk("a", "b", "c", "d"),
		SpecTarget: mk("a", "b", "c"),
	}
	ds := p.analyzeData(nil)
	if len(ds) != 1 || ds[0].Code != quality.MissingSpecBench || ds[0].Severity != quality.Minor {
		t.Errorf("1 of 4 missing: defects = %v, want one minor MissingSpecBench", ds)
	}
	if !strings.Contains(ds[0].Detail, "1/4") {
		t.Errorf("detail %q does not report the shrink", ds[0].Detail)
	}

	p.SpecTarget = mk("a", "b")
	ds = p.analyzeData(nil)
	if len(ds) != 1 || ds[0].Severity != quality.Major {
		t.Errorf("2 of 4 missing: defects = %v, want one major MissingSpecBench", ds)
	}

	// Clean data records nothing at all.
	p.SpecTarget = p.SpecBase
	if ds := p.analyzeData(nil); len(ds) != 0 {
		t.Errorf("clean pool recorded %v", ds)
	}
}

// TestAnalyzeDataIMBCountMismatch pins the one-sided core count defect.
func TestAnalyzeDataIMBCountMismatch(t *testing.T) {
	p := &Pipeline{
		IMBBase:   map[int]*imb.Table{4: synthTable("base", 4, 1), 8: synthTable("base", 8, 1)},
		IMBTarget: map[int]*imb.Table{4: synthTable("tgt", 4, 1)},
	}
	ds := p.analyzeData(nil)
	if len(ds) != 1 || ds[0].Code != quality.MissingIMBCount {
		t.Fatalf("defects = %v, want one MissingIMBCount", ds)
	}
	if !strings.Contains(ds[0].Detail, "8 ranks") {
		t.Errorf("detail %q does not name the missing count", ds[0].Detail)
	}
}

// TestPipelineDataSkipsRuns proves Options.Data substitutes supplied
// benchmark data without running the suites, carrying loader defects into
// the pipeline ledger.
func TestPipelineDataSkipsRuns(t *testing.T) {
	base := arch.MustGet(arch.Hydra)
	tgt := arch.MustGet(arch.Power6)
	loaderDefect := quality.Defect{
		Code: quality.IMBSinglePointGrid, Component: quality.Data,
		Severity: quality.Major, Detail: "fixture",
	}
	data := &PipelineData{
		SpecBase:   map[string]spec.Result{"x": {}, "y": {}},
		SpecTarget: map[string]spec.Result{"x": {}, "y": {}},
		IMBBase:    map[int]*imb.Table{4: synthTable(base.Name, 4, 1e-4)},
		IMBTarget:  map[int]*imb.Table{4: synthTable(tgt.Name, 4, 5e-5)},
		Defects:    []quality.Defect{loaderDefect},
	}
	p, err := NewPipelineOpts(base, tgt, []int{4}, Options{Data: data})
	if err != nil {
		t.Fatal(err)
	}
	// Supplied data used verbatim: the real SPEC suite has 29 benchmarks,
	// the fake one 2 — if the suite had run, the map would be replaced.
	if len(p.SpecBase) != 2 || len(p.SpecTarget) != 2 {
		t.Errorf("supplied SPEC data not used: %d/%d benchmarks", len(p.SpecBase), len(p.SpecTarget))
	}
	if p.IMBBase[4] != data.IMBBase[4] {
		t.Error("supplied IMB table not used")
	}
	found := false
	for _, d := range p.Defects {
		if d == loaderDefect {
			found = true
		}
	}
	if !found {
		t.Errorf("loader defect not inherited: %v", p.Defects)
	}
}

// TestInjectedSpecDrop proves the core.spec.target drop point shrinks the
// target pool on a copy and the defect surfaces in the ledger.
func TestInjectedSpecDrop(t *testing.T) {
	defer faultinject.Disarm()
	base := arch.MustGet(arch.Hydra)
	tgt := arch.MustGet(arch.Power6)
	full := map[string]spec.Result{"a": {}, "b": {}, "c": {}, "d": {}}
	if err := faultinject.Arm("core.spec.target=drop#1"); err != nil {
		t.Fatal(err)
	}
	data := &PipelineData{
		SpecBase:   full,
		SpecTarget: full,
		IMBBase:    map[int]*imb.Table{4: synthTable(base.Name, 4, 1e-4)},
		IMBTarget:  map[int]*imb.Table{4: synthTable(tgt.Name, 4, 5e-5)},
	}
	p, err := NewPipelineOpts(base, tgt, []int{4}, Options{Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SpecTarget) != 3 {
		t.Errorf("drop left %d target benchmarks, want 3", len(p.SpecTarget))
	}
	if len(full) != 4 {
		t.Error("injected drop mutated the caller's map")
	}
	codes := map[quality.Code]bool{}
	for _, d := range p.Defects {
		codes[d.Code] = true
	}
	if !codes[quality.MissingSpecBench] {
		t.Errorf("dropped benchmark not recorded: %v", p.Defects)
	}
}

// TestGridGapHelpers pins the imb coverage helpers the defect recording is
// built on (full-grid lookups never gap; truncated grids gap above the
// cut; TruncatedAbove never mutates the original).
func TestGridGapHelpers(t *testing.T) {
	tb := synthTable("m", 4, 1e-4) // Bcast at sizes 1024 and 4096
	if tb.CoverageGap(mpi.RoutineBcast, 2048) {
		t.Error("fully covered grid must never gap (interior)")
	}
	if tb.CoverageGap(mpi.RoutineBcast, 1<<30) {
		t.Error("fully covered grid must never gap (clamped above)")
	}
	cut := tb.TruncatedAbove(1024)
	if !cut.CoverageGap(mpi.RoutineBcast, 2048) {
		t.Error("truncated grid must gap above the cut")
	}
	if cut.CoverageGap(mpi.RoutineBcast, 1024) {
		t.Error("exactly-covered size must not gap")
	}
	if _, ok := tb.PerOp[mpi.RoutineBcast][units.Bytes(4096)]; !ok {
		t.Error("TruncatedAbove mutated the source table")
	}
	if tb.CoverageGap(mpi.RoutineSendrecv, 1024) {
		t.Error("absent routine is a missing-routine case, not a grid gap")
	}
}
