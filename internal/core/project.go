package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/stats"
	"repro/internal/units"
)

// Projection is the full SWAPP output (§3.3): the application's projected
// performance on the target machine at core count Ck, decomposed the way
// the paper's figures report it.
type Projection struct {
	App    string
	Target string
	Ck     int

	// Compute component (Eq. 7): per-task compute time, γ-scaled.
	Compute *ComputeProjection
	Gamma   float64
	// ComputeTime = Compute.TargetTime × Gamma.
	ComputeTime units.Seconds

	// Communication component (Eq. 6).
	Comm     *CommProjection
	CommTime units.Seconds

	// ACSM diagnostics.
	ACSM        *ACSM
	HyperScaled bool

	// Total is the combined projection (§3.3 step 3).
	Total units.Seconds

	// Quality is the data-fidelity ledger: the defects encountered and the
	// documented fallbacks substituted while producing this projection.
	// Always non-nil from Project*; Empty() on the full-fidelity path.
	Quality *quality.Report
}

// Project produces the full application projection at core count ck. When
// ck is one of the profiled counts, the characterisation at ck is used
// directly (γ = 1); otherwise the CCSM scales compute from the nearest
// profiled count, the ACSM flags cache-footprint transitions in between,
// and the communication component is extrapolated across the profiled
// counts' projections (the MPI scaling model).
func (p *Pipeline) Project(app *AppModel, ck int) (*Projection, error) {
	return p.project(context.Background(), p.Obs, app, ck)
}

// ProjectCtx is Project under a context: the compute projection (per GA
// ensemble member) and each per-count communication projection check ctx
// before starting, so an expired deadline aborts at the next stage boundary
// with ctx.Err().
func (p *Pipeline) ProjectCtx(ctx context.Context, app *AppModel, ck int) (*Projection, error) {
	return p.project(ctx, p.Obs, app, ck)
}

// project is the implementation; its span — and those of the compute and
// communication sub-projections — nest under parent.
func (p *Pipeline) project(ctx context.Context, parent *obs.Scope, app *AppModel, ck int) (*Projection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := parent.Child(fmt.Sprintf("core.project.%s@%d", app.Name(), ck))
	defer sp.End()
	if err := faultinject.Fire("core.project"); err != nil {
		return nil, err
	}
	ci := app.nearestCount(ck)

	// The quality report travels through every stage of this projection;
	// data defects found at pipeline assembly are inherited first.
	rec := quality.NewReport()
	rec.AddAll(p.Defects)

	comp, err := p.projectComputeCtx(ctx, sp, app, ci, ComputeOptions{}, rec)
	if err != nil {
		return nil, err
	}
	ccsm, err := FitCCSM(app)
	if err != nil {
		return nil, err
	}
	acsm := FitACSM(app)

	gamma := ccsm.Gamma(ci, ck)
	proj := &Projection{
		App:         app.Name(),
		Target:      p.Target.Name,
		Ck:          ck,
		Compute:     comp,
		Gamma:       gamma,
		ComputeTime: comp.TargetTime * gamma,
		ACSM:        acsm,
		HyperScaled: acsm.HyperScalesBetween(ci, ck),
		Quality:     rec,
	}

	if _, profiled := app.Profiles[ck]; profiled {
		comm, err := p.projectComm(sp, app, ck, comp.SpeedupRatio(), rec)
		if err != nil {
			return nil, err
		}
		proj.Comm = comm
		proj.CommTime = comm.TargetTotal()
	} else {
		// MPI communication scaling model: project at every profiled
		// count and fit the per-task total against core count.
		var xs, ys []float64
		var last *CommProjection
		for _, c := range app.Counts {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			comm, err := p.projectComm(sp, app, c, comp.SpeedupRatio(), rec)
			if err != nil {
				return nil, err
			}
			total := comm.TargetTotal()
			if total > 0 {
				xs = append(xs, float64(c))
				ys = append(ys, total)
			}
			last = comm
		}
		proj.Comm = last
		if len(xs) >= 2 {
			k, pw, err := stats.PowerFit(xs, ys)
			if err == nil {
				proj.CommTime = k * math.Pow(float64(ck), pw)
			} else {
				proj.CommTime = last.TargetTotal()
			}
		} else if last != nil {
			proj.CommTime = last.TargetTotal()
		}
	}

	proj.Total = proj.ComputeTime + proj.CommTime
	sp.Count("core.projections", 1)
	sp.Observe("core.projected_total_seconds", proj.Total)
	sp.Observe("core.projected_compute_seconds", proj.ComputeTime)
	sp.Observe("core.projected_comm_seconds", proj.CommTime)
	return proj, nil
}

// Validation compares a projection against the measured run on the target
// machine — the §4 experiment. Signed percent errors: positive means the
// projection was above the measurement (the paper reports 54 % of
// projections above actual).
type Validation struct {
	Proj *Projection

	MeasuredTotal   units.Seconds
	MeasuredCompute units.Seconds
	MeasuredComm    units.Seconds
	MeasuredByClass map[mpi.Class]units.Seconds

	// Signed percent errors.
	ErrCombined float64
	ErrCompute  float64
	ErrComm     float64
	ErrByClass  map[mpi.Class]float64
}

// AbsErrCombined is the |%| error of the combined projection — the
// headline quantity of Figures 3–9.
func (v *Validation) AbsErrCombined() float64 { return math.Abs(v.ErrCombined) }

// pctErr is the signed percent error of projected vs measured.
func pctErr(projected, measured units.Seconds) float64 {
	if measured == 0 {
		if projected == 0 {
			return 0
		}
		return 100
	}
	return 100 * (projected - measured) / measured
}

// Validate projects the application at ck and runs it for real on the
// target machine (the step SWAPP's users cannot do — this is the
// reproduction's ground truth), returning both sides with errors.
func (p *Pipeline) Validate(app *AppModel, ck int) (*Validation, error) {
	return p.ValidateCtx(context.Background(), app, ck)
}

// ValidateCtx is Validate under a context: the projection honours ctx at
// its stage boundaries and the measured target run is skipped if ctx has
// already expired.
func (p *Pipeline) ValidateCtx(ctx context.Context, app *AppModel, ck int) (*Validation, error) {
	sp := p.Obs.Child(fmt.Sprintf("core.validate.%s@%d", app.Name(), ck))
	defer sp.End()
	proj, err := p.project(ctx, sp, app, ck)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ms := sp.Child("measured-run." + p.Target.Name)
	res, err := nas.Run(nas.Config{Bench: app.Bench, Class: app.Class, Ranks: ck}, p.Target)
	ms.End()
	if err != nil {
		return nil, fmt.Errorf("core: measured run on %s: %w", p.Target.Name, err)
	}
	mp := res.Profile
	ranks := units.Seconds(mp.Ranks())

	v := &Validation{
		Proj:            proj,
		MeasuredTotal:   res.Makespan,
		MeasuredCompute: mp.MeanCompute(),
		MeasuredComm:    mp.MeanComm(),
		MeasuredByClass: map[mpi.Class]units.Seconds{},
		ErrByClass:      map[mpi.Class]float64{},
	}
	for cls, el := range mp.ClassElapsed() {
		v.MeasuredByClass[cls] = el / ranks
	}
	v.ErrCombined = pctErr(proj.Total, v.MeasuredTotal)
	v.ErrCompute = pctErr(proj.ComputeTime, v.MeasuredCompute)
	v.ErrComm = pctErr(proj.CommTime, v.MeasuredComm)
	projByClass := proj.Comm.TargetByClass()
	for _, cls := range []mpi.Class{mpi.ClassP2PNB, mpi.ClassP2PB, mpi.ClassCollective} {
		meas, okM := v.MeasuredByClass[cls]
		projT, okP := projByClass[cls]
		if !okM && !okP {
			continue
		}
		v.ErrByClass[cls] = pctErr(projT, meas)
	}
	return v, nil
}
