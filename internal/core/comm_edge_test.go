package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/mpiprof"
	"repro/internal/nas"
	"repro/internal/units"
)

// synthTable builds a minimal hand-made IMB table pricing Bcast at v
// seconds per call at every grid size.
func synthTable(machine string, ranks int, v units.Seconds) *imb.Table {
	sizes := []units.Bytes{1024, 4096}
	perOp := map[units.Bytes]units.Seconds{}
	for _, s := range sizes {
		perOp[s] = v
	}
	return &imb.Table{
		Machine: machine,
		Ranks:   ranks,
		Sizes:   sizes,
		PerOp:   map[mpi.Routine]map[units.Bytes]units.Seconds{mpi.RoutineBcast: perOp},
	}
}

// synthProfile builds a job profile of `ranks` identical tasks, each with
// one call of routine rt at 1 KiB costing elapsed seconds.
func synthProfile(rt mpi.Routine, ranks int, elapsed units.Seconds) *mpiprof.Profile {
	tasks := make([]*mpiprof.TaskProfile, ranks)
	for i := range tasks {
		tasks[i] = &mpiprof.TaskProfile{
			Rank: i,
			Comm: elapsed,
			Routines: map[mpi.Routine]*mpiprof.RoutineProfile{
				rt: {
					Routine: rt,
					Calls:   1,
					Elapsed: elapsed,
					Sizes: map[units.Bytes]*mpiprof.SizeEntry{
						1024: {Bytes: 1024, Calls: 1, Messages: 1, Elapsed: elapsed},
					},
				},
			},
		}
	}
	return &mpiprof.Profile{App: "synthetic", Machine: "synthetic", Makespan: elapsed, Tasks: tasks}
}

// synthPipeline wires hand-made IMB tables into a pipeline without running
// any benchmark, for exercising projectComm's numeric edges in isolation.
func synthPipeline(ranks int, baseOp, tgtOp units.Seconds) *Pipeline {
	return &Pipeline{
		Base:      arch.MustGet(arch.Hydra),
		Target:    arch.MustGet(arch.Power6),
		IMBBase:   map[int]*imb.Table{ranks: synthTable(arch.Hydra, ranks, baseOp)},
		IMBTarget: map[int]*imb.Table{ranks: synthTable(arch.Power6, ranks, tgtOp)},
	}
}

func synthApp(rt mpi.Routine, ranks int, elapsed units.Seconds) *AppModel {
	return &AppModel{
		Bench:    nas.BT,
		Class:    nas.ClassC,
		Counts:   []int{ranks},
		Profiles: map[int]*mpiprof.Profile{ranks: synthProfile(rt, ranks, elapsed)},
		Counters: map[int]*CounterPair{ranks: {Ranks: ranks}},
	}
}

// TestProjectCommWaitClamp covers the Eq. 4 clamp branch: when the
// IMB-predicted transfer exceeds the profiled elapsed (the benchmark's
// contention level overestimates the application's), the transfer is capped
// at the elapsed and the residual WaitTime is exactly zero — never
// negative.
func TestProjectCommWaitClamp(t *testing.T) {
	const ranks = 4
	const elapsed = 1e-3 // profiled: 1 ms per task
	// IMB prices a single Bcast at a full second — 1000x the profile.
	p := synthPipeline(ranks, 1.0, 0.5)
	app := synthApp(mpi.RoutineBcast, ranks, elapsed)

	comm, err := p.ProjectComm(app, ranks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(comm.Routines) != 1 {
		t.Fatalf("want 1 routine projection, got %d", len(comm.Routines))
	}
	rp := comm.Routines[0]
	if rp.BaseTransfer != elapsed {
		t.Errorf("transfer must clamp to elapsed: got %v, want %v", rp.BaseTransfer, elapsed)
	}
	if rp.BaseWait != 0 {
		t.Errorf("clamped transfer must leave BaseWait == 0, got %v", rp.BaseWait)
	}
	// Eq. 4 still decomposes exactly after the clamp.
	if rp.BaseElapsed != rp.BaseTransfer+rp.BaseWait {
		t.Errorf("Eq. 4 broken after clamp: %v != %v + %v", rp.BaseElapsed, rp.BaseTransfer, rp.BaseWait)
	}
	// Eq. 5: the target transfer scales the clamped transfer by the
	// machines' benchmark ratio (0.5/1.0), and zero wait stays zero.
	if want := elapsed * 0.5; math.Abs(rp.TargetTransfer-want) > 1e-15 {
		t.Errorf("target transfer = %v, want %v", rp.TargetTransfer, want)
	}
	if rp.TargetWait != 0 {
		t.Errorf("zero base wait must project to zero, got %v", rp.TargetWait)
	}
}

// TestProjectCommWaitScaleNoTransfer covers the commRatio fallback: a
// profile whose routines map to zero benchmark transfer (posting-only
// non-blocking calls with zero elapsed) leaves baseTransferSum == 0, and
// the wait-scale blend must fall back to commRatio = 1 instead of dividing
// by zero.
func TestProjectCommWaitScaleNoTransfer(t *testing.T) {
	const ranks = 4
	p := synthPipeline(ranks, 1.0, 0.5)
	app := synthApp(mpi.RoutineIsend, ranks, 0) // posting cost 0 → zero transfer

	const computeRatio = 2.0
	comm, err := p.ProjectComm(app, ranks, computeRatio)
	if err != nil {
		t.Fatal(err)
	}
	// WaitScale = 0.8·computeRatio + 0.2·1 with the neutral commRatio.
	want := waitBlend*computeRatio + (1 - waitBlend)
	if math.Abs(comm.WaitScale-want) > 1e-12 {
		t.Errorf("WaitScale = %v, want %v (neutral commRatio)", comm.WaitScale, want)
	}
	if math.IsNaN(comm.WaitScale) || math.IsInf(comm.WaitScale, 0) {
		t.Fatalf("WaitScale not finite: %v", comm.WaitScale)
	}
	for _, rp := range comm.Routines {
		if rp.TargetWait != 0 || rp.TargetTransfer != 0 {
			t.Errorf("zero-elapsed routine must project to zero, got %+v", rp)
		}
	}
}

// TestByClassDecompositions pins TargetByClass/BaseByClass against the
// routine-level sums they aggregate.
func TestByClassDecompositions(t *testing.T) {
	const ranks = 4
	p := synthPipeline(ranks, 1e-4, 5e-5)
	app := synthApp(mpi.RoutineBcast, ranks, 1e-3)
	comm, err := p.ProjectComm(app, ranks, 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt := comm.TargetByClass()
	base := comm.BaseByClass()
	var tgtSum, baseSum units.Seconds
	for _, cls := range []mpi.Class{mpi.ClassP2PNB, mpi.ClassP2PB, mpi.ClassCollective} {
		tgtSum += tgt[cls]
		baseSum += base[cls]
	}
	if math.Abs(tgtSum-comm.TargetTotal()) > 1e-15 {
		t.Errorf("TargetByClass sums to %v, want %v", tgtSum, comm.TargetTotal())
	}
	if math.Abs(baseSum-comm.BaseTotal()) > 1e-15 {
		t.Errorf("BaseByClass sums to %v, want %v", baseSum, comm.BaseTotal())
	}
	if base[mpi.ClassCollective] != comm.Routines[0].BaseElapsed {
		t.Errorf("BaseByClass[collective] = %v, want %v", base[mpi.ClassCollective], comm.Routines[0].BaseElapsed)
	}
}

// TestCtxCancellation verifies the context-aware entry points abort
// promptly with ctx.Err() at stage boundaries instead of completing the
// full evaluation.
func TestCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	base := arch.MustGet(arch.Hydra)
	tgt := arch.MustGet(arch.Power6)
	if _, err := NewPipelineCtx(ctx, base, tgt, []int{4}, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("NewPipelineCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Synthetic pipeline+app: no benchmark work needed to reach the checks.
	p := synthPipeline(4, 1e-4, 5e-5)
	app := synthApp(mpi.RoutineBcast, 4, 1e-3)
	if _, err := p.CharacterizeAppCtx(ctx, nas.LU, nas.ClassC, []int{4}); !errors.Is(err, context.Canceled) {
		t.Errorf("CharacterizeAppCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := p.ProjectCtx(ctx, app, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("ProjectCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := p.ValidateCtx(ctx, app, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("ValidateCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}
}
