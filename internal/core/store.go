package core

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/imb"
	"repro/internal/mpiprof"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/spec"
)

// Store is the layered artifact cache behind a shared projection service:
// content-addressed stores for the pipeline's reusable intermediates, each
// shared across every request whose key matches, regardless of what else
// the requests differ in.
//
// The layers mirror the pipeline's real reuse structure (the paper's whole
// premise is that benchmark characterisations are reusable artifacts):
//
//	characterisation  per (machine, suite[, core count]): the SPEC CPU2006
//	                  result set and the per-count IMB tables — shared by
//	                  every request naming the machine on either side
//	profile           per (base machine, app, class, ranks): one MPI
//	                  profile + hardware-counter observation — shared by
//	                  every request for the app on that base, whatever the
//	                  target machine or requested core count
//	surrogate         per (base, app, class, target, char count, warm):
//	                  the finished §2.3 compute projection with its GA
//	                  by-products — shared by requests differing only in
//	                  the projected core count Ck
//
// Every artifact is a pure function of its key (the substrate is a
// deterministic simulation and measurement noise is key-seeded), so a
// projection assembled from stored artifacts is byte-identical to one
// computed from scratch. Values are immutable once published and safe to
// share: the pipeline copies before any mutation (see applyInjectedDrops).
//
// Each layer is an LRU with singleflight fill: concurrent requests for a
// missing key elect one leader whose fill runs detached from any request
// context, so an aborted request cannot poison or cancel a fill that
// other requests are waiting on. Hits, misses, and sizes are published
// per layer through the configured obs scope (and from there expvar).
//
// A Store is optional everywhere: nil disables all layers. The pipeline
// also bypasses it while fault injection is armed or when the request
// supplied external benchmark data — degraded artifacts must never be
// published under the clean content-addressed keys.
type Store struct {
	chars     *layer
	profiles  *layer
	surrogate *layer

	// artifacts is the replication vault: rendered result bytes pushed by
	// ring peers, keyed and checksummed so a double push is a no-op.
	artifacts *artifactVault

	// warmIdx indexes the surrogate layer's keys by (base, app, target)
	// group for the GA warm-start's nearest-neighbour seed lookup.
	warmIdx warmIndex
}

// StoreConfig parameterises NewStore. The zero value is usable.
type StoreConfig struct {
	// CharacterisationCap, ProfileCap and SurrogateCap bound the layers,
	// in entries (defaults 64, 512, 512). A SPEC entry is one suite run,
	// an IMB entry one per-count table, a profile entry one (app, ranks)
	// observation, a surrogate entry one finished compute projection.
	CharacterisationCap int
	ProfileCap          int
	SurrogateCap        int
	// ArtifactCap bounds the replication vault, in entries (default 1024).
	// A vault entry is one rendered result body replicated from a ring peer.
	ArtifactCap int
	// Obs receives the per-layer counters and size gauges
	// (<prefix>.characterisation_hits / _misses / _size, likewise for
	// profile and surrogate). nil disables metrics, not the store.
	Obs *obs.Scope
	// MetricPrefix overrides the default "core.store" metric prefix —
	// swappd mounts the store under its own "server.cache" namespace so
	// the serving dashboards see one family of cache counters.
	MetricPrefix string
}

// NewStore builds an empty layered store.
func NewStore(cfg StoreConfig) *Store {
	if cfg.CharacterisationCap <= 0 {
		cfg.CharacterisationCap = 64
	}
	if cfg.ProfileCap <= 0 {
		cfg.ProfileCap = 512
	}
	if cfg.SurrogateCap <= 0 {
		cfg.SurrogateCap = 512
	}
	if cfg.ArtifactCap <= 0 {
		cfg.ArtifactCap = 1024
	}
	prefix := cfg.MetricPrefix
	if prefix == "" {
		prefix = "core.store"
	}
	s := &Store{
		chars:     newLayer(prefix+".characterisation", cfg.CharacterisationCap, cfg.Obs),
		profiles:  newLayer(prefix+".profile", cfg.ProfileCap, cfg.Obs),
		surrogate: newLayer(prefix+".surrogate", cfg.SurrogateCap, cfg.Obs),
		artifacts: newArtifactVault(prefix+".artifact", cfg.ArtifactCap, cfg.Obs),
	}
	s.surrogate.onEvict = s.warmIdx.remove
	return s
}

// Sizes reports the current entry count per layer (diagnostics, tests).
func (s *Store) Sizes() (chars, profiles, surrogates int) {
	return s.chars.len(), s.profiles.len(), s.surrogate.len()
}

// Layer keys quote every variable-length component, so no two distinct
// normalised inputs can collapse onto one key (e.g. machine "a|b" with
// suite "c" vs machine "a" with suite "b|c").

func specKey(m *arch.Machine) string {
	return fmt.Sprintf("spec|%q", m.Name)
}

func imbKey(m *arch.Machine, count int) string {
	return fmt.Sprintf("imb|%q|%d", m.Name, count)
}

func profileKey(base *arch.Machine, b nas.Benchmark, c nas.Class, ranks int) string {
	return fmt.Sprintf("profile|%q|%q|%c|%d", base.Name, string(b), c, ranks)
}

func surrogateKey(base, app, target string, ci int, warm bool) string {
	return fmt.Sprintf("surrogate|%q|%q|%q|%d|%t", base, app, target, ci, warm)
}

// specSuite resolves one machine's SPEC CPU2006 result set through the
// characterisation layer.
func (s *Store) specSuite(ctx context.Context, m *arch.Machine, fill func() (map[string]spec.Result, error)) (map[string]spec.Result, error) {
	v, err := s.chars.getOrFill(ctx, specKey(m), func() (any, error) { return fill() })
	if err != nil {
		return nil, err
	}
	return v.(map[string]spec.Result), nil
}

// imbTable resolves one (machine, core count) IMB table through the
// characterisation layer.
func (s *Store) imbTable(ctx context.Context, m *arch.Machine, count int, fill func() (*imb.Table, error)) (*imb.Table, error) {
	v, err := s.chars.getOrFill(ctx, imbKey(m, count), func() (any, error) { return fill() })
	if err != nil {
		return nil, err
	}
	return v.(*imb.Table), nil
}

// CharacterisationFill resolves an externally keyed artifact through the
// characterisation layer: LRU hit, singleflight join, or a leader fill
// detached from ctx, counted on the layer's existing hit/miss counters.
// It is the grouped-fill hook for the batch endpoint — K requests sharing
// a (base, target) group resolve the group's shared work through one key,
// so the per-layer counters prove the amortisation. Keys live in their own
// "ext|" namespace and can never collide with the pipeline's spec|/imb|
// artifacts.
func (s *Store) CharacterisationFill(ctx context.Context, key string, fill func() (any, error)) (any, error) {
	return s.chars.getOrFill(ctx, fmt.Sprintf("ext|%q", key), fill)
}

// ProfileArtifact is one profile-layer entry: the application's base-machine
// MPI profile and hardware-counter observation at one core count.
type ProfileArtifact struct {
	Profile  *mpiprof.Profile
	Counters *CounterPair
}

// profileAt resolves one (base, app, class, ranks) observation through the
// profile layer.
func (s *Store) profileAt(ctx context.Context, base *arch.Machine, b nas.Benchmark, c nas.Class, ranks int, fill func() (*ProfileArtifact, error)) (*ProfileArtifact, error) {
	v, err := s.profiles.getOrFill(ctx, profileKey(base, b, c, ranks), func() (any, error) { return fill() })
	if err != nil {
		return nil, err
	}
	return v.(*ProfileArtifact), nil
}

// surrogateEntry is one surrogate-layer entry: the finished compute
// projection, the quality defects its computation recorded (replayed into
// every projection served from the entry, keeping served output identical
// to computed output), and the GA ensemble's best genomes — the seed
// material for warm-starting neighbouring searches.
type surrogateEntry struct {
	cp      *ComputeProjection
	defects []quality.Defect
	genomes [][]float64
}

// surrogateAt resolves one finished compute projection through the
// surrogate layer, registering filled entries in the warm-start index.
func (s *Store) surrogateAt(ctx context.Context, base, app, target string, ci int, warm bool, fill func() (*surrogateEntry, error)) (*surrogateEntry, error) {
	key := surrogateKey(base, app, target, ci, warm)
	v, err := s.surrogate.getOrFill(ctx, key, func() (any, error) {
		e, err := fill()
		if err != nil {
			return nil, err
		}
		s.warmIdx.add(base, app, target, ci, key, e.genomes)
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*surrogateEntry), nil
}

// NearestSurrogateSeeds returns the GA genomes of the cached surrogate
// whose characterisation count is closest to ci for the (base, app,
// target) group, preferring the smaller count on ties. ok is false when
// the group has no cached entries at a different count (an exact-count
// entry is served whole by the surrogate layer, not re-searched).
func (s *Store) NearestSurrogateSeeds(base, app, target string, ci int) (genomes [][]float64, fromCi int, ok bool) {
	return s.warmIdx.nearest(base, app, target, ci)
}

// warmIndex maps (base, app, target) groups to the characterisation counts
// with cached surrogates, mirroring the surrogate layer (entries leave the
// index when the LRU evicts them).
type warmIndex struct {
	mu     sync.Mutex
	groups map[string]map[int]warmSeed // group key → ci → seeds
}

type warmSeed struct {
	layerKey string
	genomes  [][]float64
}

func warmGroupKey(base, app, target string) string {
	return fmt.Sprintf("%q|%q|%q", base, app, target)
}

func (w *warmIndex) add(base, app, target string, ci int, layerKey string, genomes [][]float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.groups == nil {
		w.groups = map[string]map[int]warmSeed{}
	}
	g := w.groups[warmGroupKey(base, app, target)]
	if g == nil {
		g = map[int]warmSeed{}
		w.groups[warmGroupKey(base, app, target)] = g
	}
	g[ci] = warmSeed{layerKey: layerKey, genomes: genomes}
}

// remove drops the index entry backing an evicted surrogate-layer key.
func (w *warmIndex) remove(layerKey string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for gk, g := range w.groups {
		for ci, seed := range g {
			if seed.layerKey == layerKey {
				delete(g, ci)
				if len(g) == 0 {
					delete(w.groups, gk)
				}
				return
			}
		}
	}
}

func (w *warmIndex) nearest(base, app, target string, ci int) ([][]float64, int, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	g := w.groups[warmGroupKey(base, app, target)]
	if len(g) == 0 {
		return nil, 0, false
	}
	cis := make([]int, 0, len(g))
	for c := range g {
		if c != ci {
			cis = append(cis, c)
		}
	}
	if len(cis) == 0 {
		return nil, 0, false
	}
	sort.Ints(cis)
	best := cis[0]
	for _, c := range cis[1:] {
		if abs(c-ci) < abs(best-ci) {
			best = c
		}
	}
	return g[best].genomes, best, true
}

// layer is one LRU + singleflight store. Values are opaque and immutable
// once published.
type layer struct {
	name string
	obs  *obs.Scope
	// onEvict, when set, observes evicted keys (under the layer lock:
	// callbacks must not call back into the layer).
	onEvict func(key string)

	mu       sync.Mutex
	max      int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // element value is *layerEntry
	inflight map[string]*layerFill
}

type layerEntry struct {
	key string
	val any
}

// layerFill is one in-flight fill, shared by every concurrent request for
// its key. done closes exactly once, after val/err are set.
type layerFill struct {
	done chan struct{}
	val  any
	err  error
}

func newLayer(name string, max int, scope *obs.Scope) *layer {
	return &layer{
		name:     name,
		obs:      scope,
		max:      max,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*layerFill{},
	}
}

// getOrFill returns the value for key, serving the LRU, joining an
// in-flight fill, or electing this caller the leader. The leader's fill
// runs in its own goroutine, detached from ctx: the waiter below may give
// up at its deadline, but the shared fill runs to completion so every
// other request still gets the artifact. Failed fills are not cached.
func (l *layer) getOrFill(ctx context.Context, key string, fill func() (any, error)) (any, error) {
	l.mu.Lock()
	if el, ok := l.entries[key]; ok {
		l.ll.MoveToFront(el)
		v := el.Value.(*layerEntry).val
		l.mu.Unlock()
		l.obs.Count(l.name+"_hits", 1)
		return v, nil
	}
	if f, ok := l.inflight[key]; ok {
		l.mu.Unlock()
		l.obs.Count(l.name+"_hits", 1)
		return f.wait(ctx)
	}
	f := &layerFill{done: make(chan struct{})}
	l.inflight[key] = f
	l.mu.Unlock()
	l.obs.Count(l.name+"_misses", 1)

	go func() {
		v, err := fill()
		l.mu.Lock()
		f.val, f.err = v, err
		delete(l.inflight, key)
		if err == nil {
			if el, ok := l.entries[key]; ok {
				l.ll.MoveToFront(el)
				el.Value.(*layerEntry).val = v
			} else {
				l.entries[key] = l.ll.PushFront(&layerEntry{key: key, val: v})
				for l.ll.Len() > l.max {
					oldest := l.ll.Back()
					l.ll.Remove(oldest)
					ev := oldest.Value.(*layerEntry).key
					delete(l.entries, ev)
					if l.onEvict != nil {
						l.onEvict(ev)
					}
				}
			}
		}
		size := l.ll.Len()
		l.mu.Unlock()
		l.obs.Gauge(l.name+"_size", float64(size))
		close(f.done)
	}()
	return f.wait(ctx)
}

// wait blocks for the fill under the caller's context.
func (f *layerFill) wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *layer) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// DebugKeys lists a layer's resident keys (tests). layerName is one of
// "characterisation", "profile", "surrogate".
func (s *Store) DebugKeys(layerName string) []string {
	var l *layer
	switch {
	case strings.HasSuffix(s.chars.name, "."+layerName):
		l = s.chars
	case strings.HasSuffix(s.profiles.name, "."+layerName):
		l = s.profiles
	case strings.HasSuffix(s.surrogate.name, "."+layerName):
		l = s.surrogate
	default:
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.entries))
	for k := range l.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Artifact is one replication-vault entry exported for transfer: the vault
// key, the hex sha256 of Body, and the rendered result bytes themselves.
// Replicating rendered bytes (not decoded Go objects) is what keeps the
// byte-identity invariant trivially true on the serving path: the successor
// writes exactly what the dead owner would have written.
type Artifact struct {
	Key  string `json:"key"`
	Sum  string `json:"sum"`
	Body []byte `json:"body"`
}

// PutArtifact stores body under key in the replication vault. The vault is
// content-addressed: a re-push of the same key with the same bytes is a
// no-op counted as <prefix>.artifact_dups — neither the size gauge nor the
// LRU order moves, which is what makes the owner's push retry-safe. A key
// colliding with different bytes (possible only across incompatible
// builds) overwrites and is counted as artifact_conflicts. Returns whether
// the put changed the vault.
func (s *Store) PutArtifact(key string, body []byte) bool {
	if s == nil {
		return false
	}
	return s.artifacts.put(key, body)
}

// GetArtifact returns the vault bytes for key. The returned slice is the
// stored one and must be treated as immutable.
func (s *Store) GetArtifact(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	return s.artifacts.get(key)
}

// ExportArtifacts snapshots the whole vault, oldest first, for transfer to
// another replica (the drain path ships it alongside job checkpoints).
func (s *Store) ExportArtifacts() []Artifact {
	if s == nil {
		return nil
	}
	return s.artifacts.export()
}

// ImportArtifact verifies sumHex against the body and stores it; a
// mismatch is rejected (counted as artifact_rejects) so a corrupted
// transfer can never poison the serving path. Returns whether the import
// changed the vault.
func (s *Store) ImportArtifact(a Artifact) (bool, error) {
	if s == nil {
		return false, nil
	}
	return s.artifacts.importOne(a)
}

// ArtifactCount reports the vault's entry count (diagnostics, tests).
func (s *Store) ArtifactCount() int {
	if s == nil {
		return 0
	}
	return s.artifacts.len()
}

// artifactVault is the content-addressed byte store behind peer
// replication: an LRU of (key, sha256, body) entries. Unlike the layers it
// has no fill machinery — entries arrive whole over the wire.
type artifactVault struct {
	name string
	obs  *obs.Scope

	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // element value is *vaultEntry
}

type vaultEntry struct {
	key  string
	sum  [sha256.Size]byte
	body []byte
}

func newArtifactVault(name string, max int, scope *obs.Scope) *artifactVault {
	return &artifactVault{
		name:    name,
		obs:     scope,
		max:     max,
		ll:      list.New(),
		entries: map[string]*list.Element{},
	}
}

func (v *artifactVault) put(key string, body []byte) bool {
	sum := sha256.Sum256(body)
	v.mu.Lock()
	if el, ok := v.entries[key]; ok {
		e := el.Value.(*vaultEntry)
		if e.sum == sum {
			v.mu.Unlock()
			v.obs.Count(v.name+"_dups", 1)
			return false
		}
		e.sum, e.body = sum, append([]byte(nil), body...)
		v.ll.MoveToFront(el)
		v.mu.Unlock()
		v.obs.Count(v.name+"_conflicts", 1)
		return true
	}
	v.entries[key] = v.ll.PushFront(&vaultEntry{key: key, sum: sum, body: append([]byte(nil), body...)})
	for v.ll.Len() > v.max {
		oldest := v.ll.Back()
		v.ll.Remove(oldest)
		delete(v.entries, oldest.Value.(*vaultEntry).key)
	}
	size := v.ll.Len()
	v.mu.Unlock()
	v.obs.Count(v.name+"_stores", 1)
	v.obs.Gauge(v.name+"_size", float64(size))
	return true
}

func (v *artifactVault) get(key string) ([]byte, bool) {
	v.mu.Lock()
	el, ok := v.entries[key]
	if !ok {
		v.mu.Unlock()
		v.obs.Count(v.name+"_misses", 1)
		return nil, false
	}
	v.ll.MoveToFront(el)
	body := el.Value.(*vaultEntry).body
	v.mu.Unlock()
	v.obs.Count(v.name+"_hits", 1)
	return body, true
}

func (v *artifactVault) export() []Artifact {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Artifact, 0, v.ll.Len())
	for el := v.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*vaultEntry)
		out = append(out, Artifact{Key: e.key, Sum: hex.EncodeToString(e.sum[:]), Body: e.body})
	}
	return out
}

func (v *artifactVault) importOne(a Artifact) (bool, error) {
	sum := sha256.Sum256(a.Body)
	if a.Sum != "" && a.Sum != hex.EncodeToString(sum[:]) {
		v.obs.Count(v.name+"_rejects", 1)
		return false, fmt.Errorf("artifact %q checksum mismatch", a.Key)
	}
	return v.put(a.Key, a.Body), nil
}

func (v *artifactVault) len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.ll.Len()
}
