package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// referenceFitness is the closure-based objective the EvalKernel replaced,
// kept verbatim as the byte-identity oracle.
func referenceFitness(pool [][]float64, appVec, weights []float64, memberPenalty float64) func(genome []float64) float64 {
	combo := make([]float64, len(appVec))
	return func(genome []float64) float64 {
		var wsum float64
		for _, w := range genome {
			wsum += w
		}
		if wsum <= 0 {
			return math.Inf(1)
		}
		for j := range combo {
			combo[j] = 0
		}
		var member float64
		for k, w := range genome {
			if w == 0 {
				continue
			}
			f := w / wsum
			for j := range combo {
				combo[j] += f * pool[k][j]
			}
			member += f * stats.WeightedDistance(pool[k], appVec, weights)
		}
		return stats.WeightedDistance(combo, appVec, weights) + memberPenalty*member
	}
}

// TestEvalKernelMatchesReference fuzzes random pools and genomes and
// asserts the kernel's objective is bitwise-equal to the replaced closure
// — the property that keeps every projection byte-identical at fixed
// seeds.
func TestEvalKernelMatchesReference(t *testing.T) {
	src := rng.New("kernel-fuzz")
	for trial := 0; trial < 50; trial++ {
		benches := 2 + src.Intn(40)
		metrics := 1 + src.Intn(40) // includes dims not divisible by the 4-wide block
		pool := make([][]float64, benches)
		for k := range pool {
			row := make([]float64, metrics)
			for j := range row {
				row[j] = src.Normal(0, 2)
			}
			pool[k] = row
		}
		appVec := make([]float64, metrics)
		weights := make([]float64, metrics)
		for j := range appVec {
			appVec[j] = src.Normal(0, 2)
			weights[j] = src.Float64()
		}
		ref := referenceFitness(pool, appVec, weights, 1.0)
		kern := NewEvalKernel(pool, appVec, weights, 1.0)
		scratch := kern.NewScratch()

		for g := 0; g < 200; g++ {
			genome := make([]float64, benches)
			switch g % 4 {
			case 0: // dense
				for j := range genome {
					genome[j] = src.Float64()
				}
			case 1: // sparse, like the GA's MaxActive genomes
				for _, idx := range src.Perm(benches)[:1+src.Intn(benches)] {
					genome[idx] = src.Float64() * 2
				}
			case 2: // all zero — the wsum <= 0 guard
			case 3: // single member
				genome[src.Intn(benches)] = src.Float64()
			}
			want := ref(genome)
			got := kern.Objective(genome, scratch)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("trial %d genome %d (%d benches × %d metrics): kernel %v (%#x) != reference %v (%#x)",
					trial, g, benches, metrics, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestEvalKernelScratchIndependence: calls through different scratch rows
// must not interact, and a reused scratch must not leak state between
// calls.
func TestEvalKernelScratchIndependence(t *testing.T) {
	src := rng.New("kernel-scratch")
	pool := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	app := []float64{1, 1, 1}
	weights := []float64{0.2, 0.3, 0.5}
	kern := NewEvalKernel(pool, app, weights, 1.0)
	ref := referenceFitness(pool, app, weights, 1.0)

	g1 := []float64{0.5, 0, 0.5}
	g2 := []float64{0, src.Float64(), 0}
	s1, s2 := kern.NewScratch(), kern.NewScratch()
	a := kern.Objective(g1, s1)
	b := kern.Objective(g2, s2)
	a2 := kern.Objective(g1, s1) // reuse after a different call on s2
	if math.Float64bits(a) != math.Float64bits(a2) {
		t.Fatalf("scratch reuse changed the objective: %v then %v", a, a2)
	}
	if math.Float64bits(a) != math.Float64bits(ref(g1)) || math.Float64bits(b) != math.Float64bits(ref(g2)) {
		t.Fatalf("kernel disagrees with reference: %v/%v vs %v/%v", a, b, ref(g1), ref(g2))
	}
}
