package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/obs"
)

// vaultCounter reads one obs counter, defaulting to 0.
func vaultCounter(scope *obs.Scope, name string) int64 {
	v, _ := scope.Metrics().Counter(name)
	return v
}

// TestArtifactVaultDupPushIsNoOp is the replication-idempotency contract: a
// re-push of resident bytes changes nothing — not the vault size, not the
// store counter, and not the LRU order (a dup must not refresh an entry's
// recency, or retried pushes would distort eviction).
func TestArtifactVaultDupPushIsNoOp(t *testing.T) {
	scope := obs.New("test")
	s := NewStore(StoreConfig{ArtifactCap: 2, Obs: scope})
	body := []byte(`{"result":1}` + "\n")

	if !s.PutArtifact("a", body) {
		t.Fatal("first put reported no change")
	}
	if s.PutArtifact("a", body) {
		t.Error("duplicate put reported a change")
	}
	if n := s.ArtifactCount(); n != 1 {
		t.Errorf("vault holds %d entries after a dup push, want 1", n)
	}
	if n := vaultCounter(scope, "core.store.artifact_stores"); n != 1 {
		t.Errorf("artifact_stores = %d, want 1", n)
	}
	if n := vaultCounter(scope, "core.store.artifact_dups"); n != 1 {
		t.Errorf("artifact_dups = %d, want 1", n)
	}

	// LRU order: after put(a), put(b), a is oldest. A dup push of a must NOT
	// move it to the front, so the next insertion beyond cap still evicts a.
	s.PutArtifact("b", []byte("bb"))
	s.PutArtifact("a", body) // dup — no recency refresh
	s.PutArtifact("c", []byte("cc"))
	if _, ok := s.GetArtifact("a"); ok {
		t.Error("dup push refreshed LRU recency: oldest entry survived eviction")
	}
	for _, key := range []string{"b", "c"} {
		if _, ok := s.GetArtifact(key); !ok {
			t.Errorf("entry %q missing after eviction round", key)
		}
	}
}

// TestArtifactVaultConflictOverwrites covers the same-key-different-bytes
// case (possible only across incompatible builds): the newer bytes win and
// the event is counted distinctly from stores and dups.
func TestArtifactVaultConflictOverwrites(t *testing.T) {
	scope := obs.New("test")
	s := NewStore(StoreConfig{Obs: scope})
	s.PutArtifact("k", []byte("old"))
	if !s.PutArtifact("k", []byte("new")) {
		t.Fatal("conflicting put reported no change")
	}
	got, ok := s.GetArtifact("k")
	if !ok || !bytes.Equal(got, []byte("new")) {
		t.Errorf("GetArtifact after conflict = %q, %t; want \"new\", true", got, ok)
	}
	if n := s.ArtifactCount(); n != 1 {
		t.Errorf("vault holds %d entries, want 1", n)
	}
	if n := vaultCounter(scope, "core.store.artifact_conflicts"); n != 1 {
		t.Errorf("artifact_conflicts = %d, want 1", n)
	}
}

// TestArtifactExportImportRoundtrip ships a vault to a fresh store the way
// the drain path would: export oldest-first, import with checksums intact,
// and land byte-identical entries.
func TestArtifactExportImportRoundtrip(t *testing.T) {
	src := NewStore(StoreConfig{})
	bodies := map[string][]byte{
		"first":  []byte(`{"a":1}` + "\n"),
		"second": []byte(`{"b":2}` + "\n"),
		"third":  []byte(`{"c":3}` + "\n"),
	}
	for _, key := range []string{"first", "second", "third"} {
		src.PutArtifact(key, bodies[key])
	}
	arts := src.ExportArtifacts()
	if len(arts) != 3 {
		t.Fatalf("exported %d artifacts, want 3", len(arts))
	}
	if arts[0].Key != "first" {
		t.Errorf("export order starts at %q, want oldest entry \"first\"", arts[0].Key)
	}
	dst := NewStore(StoreConfig{})
	for _, a := range arts {
		if want := sha256.Sum256(a.Body); a.Sum != hex.EncodeToString(want[:]) {
			t.Fatalf("export produced a bad checksum for %q", a.Key)
		}
		stored, err := dst.ImportArtifact(a)
		if err != nil || !stored {
			t.Fatalf("importing %q: stored=%t err=%v", a.Key, stored, err)
		}
	}
	for key, want := range bodies {
		got, ok := dst.GetArtifact(key)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("imported %q = %q, %t; want %q", key, got, ok, want)
		}
	}
}

// TestArtifactImportChecksumReject proves a corrupted transfer cannot land:
// the mismatch is an error, counted, and the vault stays empty. An empty
// sum skips verification (trusted local transfers).
func TestArtifactImportChecksumReject(t *testing.T) {
	scope := obs.New("test")
	s := NewStore(StoreConfig{Obs: scope})
	bad := Artifact{Key: "k", Sum: hex.EncodeToString(make([]byte, sha256.Size)), Body: []byte("payload")}
	stored, err := s.ImportArtifact(bad)
	if err == nil || stored {
		t.Fatalf("corrupted import: stored=%t err=%v, want rejection", stored, err)
	}
	if n := s.ArtifactCount(); n != 0 {
		t.Errorf("vault holds %d entries after a rejected import, want 0", n)
	}
	if n := vaultCounter(scope, "core.store.artifact_rejects"); n != 1 {
		t.Errorf("artifact_rejects = %d, want 1", n)
	}
	if stored, err := s.ImportArtifact(Artifact{Key: "k", Body: []byte("payload")}); err != nil || !stored {
		t.Errorf("unchecked import: stored=%t err=%v, want acceptance", stored, err)
	}
}

// TestArtifactNilStore pins the nil-safety contract: a server running with
// the layered cache disabled has no store, and every vault accessor must
// degrade to "absent" rather than panic.
func TestArtifactNilStore(t *testing.T) {
	var s *Store
	if s.PutArtifact("k", []byte("x")) {
		t.Error("nil store accepted a put")
	}
	if _, ok := s.GetArtifact("k"); ok {
		t.Error("nil store returned an artifact")
	}
	if got := s.ExportArtifacts(); got != nil {
		t.Errorf("nil store exported %d artifacts", len(got))
	}
	if stored, err := s.ImportArtifact(Artifact{Key: "k", Body: []byte("x")}); stored || err != nil {
		t.Errorf("nil store import: stored=%t err=%v", stored, err)
	}
	if n := s.ArtifactCount(); n != 0 {
		t.Errorf("nil store counts %d artifacts", n)
	}
}
