package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/nas"
	"repro/internal/spec"
)

// TestLayerSingleflightConcurrentFill proves the singleflight contract
// under -race: any number of concurrent requests for one missing key run
// the fill exactly once and all observe its value.
func TestLayerSingleflightConcurrentFill(t *testing.T) {
	l := newLayer("test.characterisation", 8, nil)
	var fills atomic.Int64
	const goroutines = 32
	results := make([]any, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = l.getOrFill(context.Background(), "k", func() (any, error) {
				fills.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return "artifact", nil
			})
		}(i)
	}
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times, want 1", n)
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != "artifact" {
			t.Errorf("goroutine %d got %v", i, results[i])
		}
	}
	if l.len() != 1 {
		t.Errorf("layer holds %d entries, want 1", l.len())
	}
}

// TestLayerConcurrentEviction hammers a small layer with overlapping keys
// from many goroutines — fills, hits, and evictions interleaving — and
// checks the LRU bound holds and every lookup still returns the value
// filled for its own key. Run under -race this also proves the locking.
func TestLayerConcurrentEviction(t *testing.T) {
	const cap = 4
	l := newLayer("test.profile", cap, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12) // 12 keys > cap forces eviction
				want := "v:" + key
				v, err := l.getOrFill(context.Background(), key, func() (any, error) {
					return want, nil
				})
				if err != nil {
					t.Errorf("getOrFill(%s): %v", key, err)
					return
				}
				if v != want {
					t.Errorf("getOrFill(%s) = %v, want %v", key, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.len(); n > cap {
		t.Errorf("layer holds %d entries, cap is %d", n, cap)
	}
}

// TestLayerFailedFillNotCached proves an erroring fill leaves no entry
// behind — the next request retries instead of serving a poisoned value.
func TestLayerFailedFillNotCached(t *testing.T) {
	l := newLayer("test.surrogate", 8, nil)
	wantErr := fmt.Errorf("boom")
	if _, err := l.getOrFill(context.Background(), "k", func() (any, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if l.len() != 0 {
		t.Fatalf("failed fill was cached (%d entries)", l.len())
	}
	v, err := l.getOrFill(context.Background(), "k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after failed fill = %v, %v", v, err)
	}
}

// TestLayerFillDetachedFromCaller proves a fill outlives the request that
// started it: the leader's context expires, the leader gets ctx.Err(),
// but the artifact still lands in the layer for the next request — which
// must not re-run the fill.
func TestLayerFillDetachedFromCaller(t *testing.T) {
	l := newLayer("test.characterisation", 8, nil)
	var fills atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the caller has already given up
	started := make(chan struct{})
	if _, err := l.getOrFill(ctx, "k", func() (any, error) {
		close(started)
		fills.Add(1)
		time.Sleep(10 * time.Millisecond)
		return "late artifact", nil
	}); err != context.Canceled {
		t.Fatalf("cancelled leader got %v, want context.Canceled", err)
	}
	<-started
	// The detached fill completes on its own schedule.
	deadline := time.Now().Add(5 * time.Second)
	for l.len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detached fill never published its artifact")
		}
		time.Sleep(time.Millisecond)
	}
	v, err := l.getOrFill(context.Background(), "k", func() (any, error) {
		t.Error("fill re-ran for a published key")
		return nil, nil
	})
	if err != nil || v != "late artifact" {
		t.Fatalf("post-abandon lookup = %v, %v", v, err)
	}
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times, want 1", n)
	}
}

// TestLayerKeysCollisionFree proves distinct normalised inputs can never
// share a layer key: every variable-length component is quoted, so the
// classic concatenation collision — ("a|b", "c") vs ("a", "b|c") — and
// quote-smuggling names stay distinct.
func TestLayerKeysCollisionFree(t *testing.T) {
	m := func(name string) *arch.Machine { return &arch.Machine{Name: name} }
	keys := []string{
		specKey(m(`a|b`)),
		specKey(m(`a`)),
		specKey(m(`a"|"b`)),
		imbKey(m(`a|b`), 16),
		imbKey(m(`a`), 16),
		imbKey(m(`a`), 1),
		imbKey(m(`a|1`), 6), // would collide with ("a", 16) if unquoted
		profileKey(m(`a|b`), nas.Benchmark("c"), 'C', 16),
		profileKey(m(`a`), nas.Benchmark("b|c"), 'C', 16),
		profileKey(m(`a`), nas.Benchmark(`b"|"c`), 'C', 16),
		surrogateKey(`a|b`, `c`, `d`, 16, false),
		surrogateKey(`a`, `b|c`, `d`, 16, false),
		surrogateKey(`a`, `b`, `c|d`, 16, false),
		surrogateKey(`a`, `b`, `d`, 16, false),
		surrogateKey(`a`, `b`, `d`, 16, true),
		surrogateKey(`a`, `b`, `d`, 1, false),
	}
	seen := map[string]int{}
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			t.Errorf("keys %d and %d collide: %s", j, i, k)
		}
		seen[k] = i
	}
}

// TestStoreGroupedFillConcurrentEvictionChaos hammers the grouped-fill
// path the batch endpoint rides: many goroutines resolving overlapping
// external group keys through CharacterisationFill while other goroutines
// churn a tiny surrogate layer through fill + eviction (pruning the warm
// index underneath). Under -race this proves the locking; the assertions
// prove each group key still fills exactly once and every caller observes
// its own group's artifact.
func TestStoreGroupedFillConcurrentEvictionChaos(t *testing.T) {
	s := NewStore(StoreConfig{SurrogateCap: 2})
	const groups = 4
	var fills [groups]atomic.Int64
	var wg sync.WaitGroup
	// Batch-style concurrent grouped fills: 8 goroutines × 32 lookups over
	// 4 group keys.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				grp := (g + i) % groups
				key := fmt.Sprintf("%q|%q", "base", fmt.Sprintf("target-%d", grp))
				want := "group:" + key
				v, err := s.CharacterisationFill(context.Background(), key, func() (any, error) {
					fills[grp].Add(1)
					time.Sleep(time.Millisecond) // widen the race window
					return want, nil
				})
				if err != nil {
					t.Errorf("CharacterisationFill(%s): %v", key, err)
					return
				}
				if v != want {
					t.Errorf("CharacterisationFill(%s) = %v, want %v", key, v, want)
					return
				}
			}
		}(g)
	}
	// Concurrent surrogate churn: fills beyond the cap force evictions and
	// warm-index pruning while the grouped fills run.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for ci := 1; ci <= 16; ci++ {
				_, err := s.surrogateAt(context.Background(), "base", "app", fmt.Sprintf("tgt-%d", g), ci, false,
					func() (*surrogateEntry, error) {
						return &surrogateEntry{genomes: [][]float64{{float64(ci)}}}, nil
					})
				if err != nil {
					t.Errorf("surrogateAt: %v", err)
					return
				}
				s.NearestSurrogateSeeds("base", "app", fmt.Sprintf("tgt-%d", g), ci+1)
			}
		}(g)
	}
	wg.Wait()
	for grp := range fills {
		if n := fills[grp].Load(); n != 1 {
			t.Errorf("group %d filled %d times, want 1 (amortisation broken)", grp, n)
		}
	}
	chars, _, surrogates := s.Sizes()
	if chars != groups {
		t.Errorf("characterisation layer holds %d entries, want %d", chars, groups)
	}
	if surrogates > 2 {
		t.Errorf("surrogate layer holds %d entries, cap is 2", surrogates)
	}
}

// TestCharacterisationFillKeyNamespace proves external group keys live in
// their own namespace: a hostile external key can never collide with the
// pipeline's spec|/imb| artifacts, and distinct external keys stay
// distinct.
func TestCharacterisationFillKeyNamespace(t *testing.T) {
	s := NewStore(StoreConfig{})
	m := &arch.Machine{Name: "hydra"}
	// Seed the layer with a real spec artifact, then attack its key.
	if _, err := s.specSuite(context.Background(), m, func() (map[string]spec.Result, error) {
		return map[string]spec.Result{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	hostile := []string{specKey(m), imbKey(m, 16), `ext|"x"`}
	for _, key := range hostile {
		filled := false
		v, err := s.CharacterisationFill(context.Background(), key, func() (any, error) {
			filled = true
			return "external:" + key, nil
		})
		if err != nil {
			t.Fatalf("CharacterisationFill(%q): %v", key, err)
		}
		if !filled {
			t.Errorf("external key %q hit a pipeline artifact (namespace breached)", key)
		}
		if v != "external:"+key {
			t.Errorf("external key %q returned %v", key, v)
		}
	}
}

// TestStoreEvictionPrunesWarmIndex proves the warm-start index mirrors the
// surrogate layer: when the LRU evicts an entry, its seeds leave the index
// too, so warm-starts never resurrect genomes the store no longer holds.
func TestStoreEvictionPrunesWarmIndex(t *testing.T) {
	s := NewStore(StoreConfig{SurrogateCap: 2})
	fill := func(ci int) func() (*surrogateEntry, error) {
		return func() (*surrogateEntry, error) {
			return &surrogateEntry{genomes: [][]float64{{float64(ci)}}}, nil
		}
	}
	for _, ci := range []int{3, 4, 5} { // cap 2: filling ci=5 evicts ci=3
		if _, err := s.surrogateAt(context.Background(), "base", "app", "tgt", ci, false, fill(ci)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, n := s.Sizes(); n != 2 {
		t.Fatalf("surrogate layer holds %d entries, want 2", n)
	}
	genomes, fromCi, ok := s.NearestSurrogateSeeds("base", "app", "tgt", 3)
	if !ok {
		t.Fatal("no seeds for a group with resident entries")
	}
	if fromCi == 3 {
		t.Fatalf("warm index served the evicted ci=3 entry")
	}
	if fromCi != 4 || genomes[0][0] != 4 {
		t.Errorf("nearest to 3 = ci %d (genome %v), want resident ci 4", fromCi, genomes)
	}
	// An exact-count match is excluded: the surrogate layer serves it whole.
	if _, fromCi, ok := s.NearestSurrogateSeeds("base", "app", "tgt", 4); !ok || fromCi != 5 {
		t.Errorf("nearest to 4 = ci %d ok=%v, want the other resident entry ci 5", fromCi, ok)
	}
}
