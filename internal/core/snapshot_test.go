package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
)

// snapStore builds a store whose characterisation layer is filled the way
// a serving process fills it: by constructing a real pipeline through it.
// Returns the store and the pipeline (for byte-identity comparisons).
func snapStore(t *testing.T, scope *obs.Scope) (*Store, *Pipeline) {
	t.Helper()
	st := NewStore(StoreConfig{Obs: scope})
	p, err := NewPipelineOpts(arch.MustGet(arch.Hydra), arch.MustGet(arch.Power6), []int{4, 8}, Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return st, p
}

// cloneSnap deep-copies a snapshot through its own wire form, which also
// proves the spill survives the JSON round trip the on-disk vault uses.
func cloneSnap(t *testing.T, snap *StoreSnapshot) *StoreSnapshot {
	t.Helper()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	out := &StoreSnapshot{}
	if err := json.Unmarshal(blob, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func sortedStrings(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// TestStoreSnapshotRoundTrip is the vault-spill half of the durability
// contract: export the characterisation layer and the replication vault,
// ship them through the JSON wire form, import into a fresh store, and the
// fresh store serves bit-identical benchmark data — so a pipeline built
// over the spill equals one built by running the benchmarks.
func TestStoreSnapshotRoundTrip(t *testing.T) {
	src, p1 := snapStore(t, nil)
	src.PutArtifact("result|proj-1", []byte(`{"rendered":true}`+"\n"))

	snap := src.ExportSnapshot()
	if snap.Version != SnapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", snap.Version, SnapshotVersion)
	}
	// SPEC on two machines + IMB per (machine, count) pair.
	if want := 2 + 2*2; len(snap.Chars) != want {
		keys := make([]string, len(snap.Chars))
		for i, c := range snap.Chars {
			keys[i] = c.Key
		}
		t.Fatalf("exported %d characterisation entries (%v), want %d", len(snap.Chars), keys, want)
	}
	if len(snap.Artifacts) != 1 {
		t.Fatalf("exported %d artifacts, want 1", len(snap.Artifacts))
	}

	dst := NewStore(StoreConfig{})
	stored, rejected := dst.ImportSnapshot(cloneSnap(t, snap))
	if stored != len(snap.Chars)+1 || rejected != 0 {
		t.Fatalf("import: stored=%d rejected=%d, want %d and 0", stored, rejected, len(snap.Chars)+1)
	}
	if got, want := sortedStrings(dst.DebugKeys("characterisation")), sortedStrings(src.DebugKeys("characterisation")); !reflect.DeepEqual(got, want) {
		t.Fatalf("imported keys %v, want %v", got, want)
	}
	if body, ok := dst.GetArtifact("result|proj-1"); !ok || !bytes.Equal(body, []byte(`{"rendered":true}`+"\n")) {
		t.Fatalf("vault entry after import = %q, %t", body, ok)
	}

	// A pipeline over the imported store must resolve every
	// characterisation from the spill and land bit-identical tables.
	p2, err := NewPipelineOpts(arch.MustGet(arch.Hydra), arch.MustGet(arch.Power6), []int{4, 8}, Options{Store: dst})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p2.SpecBase, p1.SpecBase) || !reflect.DeepEqual(p2.SpecTarget, p1.SpecTarget) {
		t.Error("SPEC data through the spill diverged from the fresh run")
	}
	for _, c := range []int{4, 8} {
		if !reflect.DeepEqual(p2.IMBBase[c], p1.IMBBase[c]) || !reflect.DeepEqual(p2.IMBTarget[c], p1.IMBTarget[c]) {
			t.Errorf("IMB tables at %d ranks through the spill diverged", c)
		}
	}
	// Re-importing into a populated store is a no-op for the chars layer:
	// live entries win over the spill, nothing is rejected.
	if _, rejected := dst.ImportSnapshot(cloneSnap(t, snap)); rejected != 0 {
		t.Errorf("re-import rejected %d entries, want 0", rejected)
	}
	if got := len(dst.DebugKeys("characterisation")); got != len(snap.Chars) {
		t.Errorf("re-import grew the chars layer to %d entries", got)
	}
}

// TestStoreSnapshotRejectsCorruptEntries pins the import gate: a flipped
// body byte, a key that doesn't match the payload's content, or an unknown
// schema version must never load — rejected and counted, exactly like a
// corrupt /v1/replicate push.
func TestStoreSnapshotRejectsCorruptEntries(t *testing.T) {
	src, _ := snapStore(t, nil)
	src.PutArtifact("result|proj-1", []byte(`{"rendered":true}`+"\n"))
	pristine := src.ExportSnapshot()
	specIdx := -1
	for i, c := range pristine.Chars {
		if strings.HasPrefix(c.Key, "spec|") {
			specIdx = i
			break
		}
	}
	if specIdx < 0 {
		t.Fatal("no spec| entry in the export")
	}

	t.Run("flipped-body", func(t *testing.T) {
		snap := cloneSnap(t, pristine)
		snap.Chars[specIdx].Body[len(snap.Chars[specIdx].Body)/2] ^= 0x01
		scope := obs.New("test")
		dst := NewStore(StoreConfig{Obs: scope})
		stored, rejected := dst.ImportSnapshot(snap)
		if rejected != 1 || stored != len(snap.Chars)-1+1 {
			t.Errorf("stored=%d rejected=%d, want one rejection", stored, rejected)
		}
		if n := vaultCounter(scope, "core.store.characterisation_rejects"); n != 1 {
			t.Errorf("characterisation_rejects = %d, want 1", n)
		}
	})

	t.Run("key-mismatch", func(t *testing.T) {
		snap := cloneSnap(t, pristine)
		// Valid checksum, valid payload — but recorded under a key whose
		// content-derived form doesn't match. Must not publish.
		snap.Chars[specIdx].Key = `spec|"NotThatMachine"`
		dst := NewStore(StoreConfig{})
		_, rejected := dst.ImportSnapshot(snap)
		if rejected != 1 {
			t.Errorf("rejected=%d, want 1", rejected)
		}
		for _, k := range dst.DebugKeys("characterisation") {
			if k == `spec|"NotThatMachine"` {
				t.Error("mismatched key was published")
			}
		}
	})

	t.Run("corrupt-artifact", func(t *testing.T) {
		snap := cloneSnap(t, pristine)
		snap.Artifacts[0].Body = append(snap.Artifacts[0].Body, '!')
		dst := NewStore(StoreConfig{})
		_, rejected := dst.ImportSnapshot(snap)
		if rejected != 1 {
			t.Errorf("rejected=%d, want 1", rejected)
		}
		if n := dst.ArtifactCount(); n != 0 {
			t.Errorf("vault holds %d entries after a rejected artifact, want 0", n)
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		snap := cloneSnap(t, pristine)
		snap.Version = SnapshotVersion + 1
		dst := NewStore(StoreConfig{})
		stored, rejected := dst.ImportSnapshot(snap)
		if stored != 0 || rejected != 0 {
			t.Errorf("foreign version imported: stored=%d rejected=%d", stored, rejected)
		}
	})

	t.Run("nil-safety", func(t *testing.T) {
		var nilStore *Store
		if snap := nilStore.ExportSnapshot(); snap == nil || snap.Version != SnapshotVersion || len(snap.Chars) != 0 {
			t.Errorf("nil store export = %+v", nilStore.ExportSnapshot())
		}
		if stored, rejected := nilStore.ImportSnapshot(pristine); stored != 0 || rejected != 0 {
			t.Error("nil store accepted an import")
		}
		dst := NewStore(StoreConfig{})
		if stored, rejected := dst.ImportSnapshot(nil); stored != 0 || rejected != 0 {
			t.Error("nil snapshot imported")
		}
	})
}
