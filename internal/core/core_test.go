package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/mpiprof"
	"repro/internal/nas"
	"repro/internal/quality"
)

// Shared pipeline fixtures: building one costs a few seconds (SPEC suites
// on two machines + IMB sweeps), so tests share them.
var (
	pipeOnce  sync.Once
	pipeP6    *Pipeline
	pipeBG    *Pipeline
	pipeErr   error
	appLUOnce sync.Once
	appLU     *AppModel
	appLUErr  error
)

func sharedPipes(t *testing.T) (*Pipeline, *Pipeline) {
	t.Helper()
	pipeOnce.Do(func() {
		base := arch.MustGet(arch.Hydra)
		pipeP6, pipeErr = NewPipeline(base, arch.MustGet(arch.Power6), []int{4, 8, 16})
		if pipeErr != nil {
			return
		}
		pipeBG, pipeErr = NewPipeline(base, arch.MustGet(arch.BlueGene), []int{4, 8, 16})
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipeP6, pipeBG
}

func sharedLU(t *testing.T) *AppModel {
	t.Helper()
	p, _ := sharedPipes(t)
	appLUOnce.Do(func() {
		appLU, appLUErr = p.CharacterizeApp(nas.LU, nas.ClassC, []int{4, 8, 16})
	})
	if appLUErr != nil {
		t.Fatal(appLUErr)
	}
	return appLU
}

func TestNewPipelineGathersData(t *testing.T) {
	p, _ := sharedPipes(t)
	if len(p.SpecBase) != 29 || len(p.SpecTarget) != 29 {
		t.Fatalf("SPEC data incomplete: %d base, %d target", len(p.SpecBase), len(p.SpecTarget))
	}
	for _, c := range []int{4, 8, 16} {
		if p.IMBBase[c] == nil || p.IMBTarget[c] == nil {
			t.Errorf("IMB tables missing at %d ranks", c)
		}
	}
	// An unprepared core count falls back to the nearest shared count and
	// records an IMBCountFallback defect on the report.
	rec := quality.NewReport()
	bt, tt, err := p.imbAt(999, rec)
	if err != nil {
		t.Fatalf("imbAt(999) with fallback counts: %v", err)
	}
	if bt == nil || tt == nil || bt.Ranks != 16 || tt.Ranks != 16 {
		t.Errorf("imbAt(999) must substitute the nearest count (16), got base=%+v target=%+v", bt, tt)
	}
	if rec.Empty() {
		t.Error("count fallback must record a quality defect")
	}
	// With no shared count at all, the fallback has nothing to offer.
	empty := &Pipeline{IMBBase: map[int]*imb.Table{}, IMBTarget: map[int]*imb.Table{}}
	if _, _, err := empty.imbAt(4, nil); err == nil {
		t.Error("imbAt on an empty pipeline must error")
	}
}

func TestCharacterizeApp(t *testing.T) {
	app := sharedLU(t)
	if app.Name() != "LU-MZ.C" {
		t.Errorf("app name = %q", app.Name())
	}
	for _, c := range []int{4, 8, 16} {
		if app.Profiles[c] == nil {
			t.Fatalf("missing profile at %d", c)
		}
		cp := app.Counters[c]
		if cp == nil || cp.ST.Runtime <= 0 {
			t.Fatalf("missing counters at %d", c)
		}
		if len(cp.CharacterVector()) != 26 {
			t.Fatalf("character vector length %d", len(cp.CharacterVector()))
		}
	}
	// Strong scaling: per-task compute shrinks with core count.
	if app.baseComputeAt(16) >= app.baseComputeAt(4) {
		t.Error("per-task compute must shrink under strong scaling")
	}
	if app.nearestCount(12) != 8 && app.nearestCount(12) != 16 {
		t.Errorf("nearestCount(12) = %d", app.nearestCount(12))
	}
	if app.nearestCount(16) != 16 {
		t.Error("exact count must be preferred")
	}
}

func TestProjectCompute(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)
	cp, err := p.ProjectCompute(app, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Surrogate) == 0 || len(cp.Surrogate) > surrogateMaxSize {
		t.Fatalf("surrogate size %d out of bounds", len(cp.Surrogate))
	}
	var wsum float64
	for _, term := range cp.Surrogate {
		if term.Weight <= 0 {
			t.Errorf("non-positive coefficient for %s", term.Bench)
		}
		if _, ok := p.SpecBase[term.Bench]; !ok {
			t.Errorf("surrogate member %s not in the pool", term.Bench)
		}
		wsum += term.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("coefficients must sum to 1, got %v", wsum)
	}
	if cp.TargetTime <= 0 || cp.BaseTime <= 0 {
		t.Error("projection must be positive")
	}
	// POWER6 at 4.7 GHz should run LU's compute faster per task than the
	// 1.9 GHz base — the ratio must at least be well under 1.5.
	if cp.SpeedupRatio() > 1.5 {
		t.Errorf("implausible P6 ratio %v", cp.SpeedupRatio())
	}
	// Ranking covers each group exactly once.
	seen := map[int]bool{}
	for _, g := range cp.Ranking {
		if g < 1 || g > 6 || seen[g] {
			t.Fatalf("bad ranking %v", cp.Ranking)
		}
		seen[g] = true
	}
	if _, err := p.ProjectCompute(app, 999); err == nil {
		t.Error("unknown count must error")
	}
}

func TestProjectComputeDeterministic(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)
	a, err := p.ProjectCompute(app, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ProjectCompute(app, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.TargetTime != b.TargetTime || a.Fitness != b.Fitness {
		t.Error("compute projection must be deterministic")
	}
}

func TestCCSM(t *testing.T) {
	app := sharedLU(t)
	m, err := FitCCSM(app)
	if err != nil {
		t.Fatal(err)
	}
	// Strong scaling: negative exponent near -1.
	if m.P >= 0 || m.P < -1.5 {
		t.Errorf("CCSM exponent %v implausible", m.P)
	}
	if g := m.Gamma(16, 16); g != 1 {
		t.Errorf("Gamma(16,16) = %v", g)
	}
	// Halving core count should roughly double per-task time.
	g := m.Gamma(16, 8)
	if g < 1.5 || g > 2.5 {
		t.Errorf("Gamma(16,8) = %v, want ≈2", g)
	}
	if m.TimeAt(8) <= m.TimeAt(16) {
		t.Error("per-task time must grow at lower counts")
	}
}

func TestACSM(t *testing.T) {
	app := sharedLU(t)
	a := FitACSM(app)
	// Whatever the trend, the result must be well-formed.
	if a.Valid && a.Ch <= 0 {
		t.Errorf("valid ACSM with non-positive Ch %v", a.Ch)
	}
	if a.HyperScalesBetween(4, 4) {
		t.Error("empty interval cannot contain Ch")
	}
	// An explicitly descending synthetic model finds the crossing.
	synthetic := &AppModel{Counts: []int{4, 8, 16}, Counters: map[int]*CounterPair{}}
	for i, c := range synthetic.Counts {
		cp := &CounterPair{Ranks: c}
		cp.ST.DataFromL3 = 0.03 - 0.01*float64(i) // hits 0 at the next doubling
		synthetic.Counters[c] = cp
	}
	sa := FitACSM(synthetic)
	if !sa.Valid {
		t.Fatal("descending trend must fit")
	}
	if sa.Ch < 16 || sa.Ch > 64 {
		t.Errorf("Ch = %v, want in (16, 64)", sa.Ch)
	}
	if !sa.HyperScalesBetween(16, 128) {
		t.Error("Ch must lie between 16 and 128")
	}
}

func TestACSMAllZero(t *testing.T) {
	synthetic := &AppModel{Counts: []int{4, 8}, Counters: map[int]*CounterPair{
		4: {Ranks: 4}, 8: {Ranks: 8},
	}}
	a := FitACSM(synthetic)
	if !a.Valid || a.Ch != 4 {
		t.Errorf("already-contained footprint should give Ch = first count, got %+v", a)
	}
}

func TestProjectComm(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)
	comm, err := p.ProjectComm(app, 16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if comm.WaitScale <= 0 {
		t.Errorf("wait scale %v", comm.WaitScale)
	}
	if comm.TargetTotal() <= 0 || comm.BaseTotal() <= 0 {
		t.Error("communication projection must be positive")
	}
	seen := map[mpi.Routine]bool{}
	for _, rp := range comm.Routines {
		if seen[rp.Routine] {
			t.Errorf("duplicate routine %s", rp.Routine)
		}
		seen[rp.Routine] = true
		// Eq. 4: base elapsed = transfer + wait, exactly, after capping.
		if math.Abs(rp.BaseElapsed-(rp.BaseTransfer+rp.BaseWait)) > 1e-12 {
			t.Errorf("%s: Eq. 4 decomposition broken", rp.Routine)
		}
		if rp.BaseWait < 0 || rp.TargetTransfer < 0 || rp.TargetWait < 0 {
			t.Errorf("%s: negative component", rp.Routine)
		}
		if rp.TargetElapsed() != rp.TargetTransfer+rp.TargetWait {
			t.Errorf("%s: Eq. 5 broken", rp.Routine)
		}
	}
	// The boundary exchange must be present.
	if !seen[mpi.RoutineWaitall] || !seen[mpi.RoutineIsend] {
		t.Error("P2P-NB routines missing from the projection")
	}
	byClass := comm.TargetByClass()
	var sum float64
	for _, v := range byClass {
		sum += v
	}
	if math.Abs(sum-comm.TargetTotal()) > 1e-12 {
		t.Error("class decomposition must sum to the total")
	}
	if _, err := p.ProjectComm(app, 999, 0.5); err == nil {
		t.Error("unknown count must error")
	}
}

func TestWaitScaleBlend(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)
	slow, err := p.ProjectComm(app, 16, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := p.ProjectComm(app, 16, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if slow.WaitScale <= fast.WaitScale {
		t.Error("a slower target must scale WaitTime up relative to a faster one")
	}
}

func TestProjectCombined(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)
	proj, err := p.Project(app, 16)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Ck != 16 || proj.App != "LU-MZ.C" || proj.Target != arch.Power6 {
		t.Error("projection labels wrong")
	}
	if proj.Gamma != 1 {
		t.Errorf("profiled count must give γ = 1, got %v", proj.Gamma)
	}
	if math.Abs(proj.Total-(proj.ComputeTime+proj.CommTime)) > 1e-12 {
		t.Error("combined projection must be the sum of the components")
	}
}

func TestProjectUnprofiledCountUsesCCSM(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)
	proj, err := p.Project(app, 12) // not profiled: between 8 and 16
	if err != nil {
		t.Fatal(err)
	}
	if proj.Gamma == 1 {
		t.Error("unprofiled count must engage the CCSM γ")
	}
	// Sanity: per-task compute at 12 ranks sits between the 8- and
	// 16-rank projections.
	at8, err := p.Project(app, 8)
	if err != nil {
		t.Fatal(err)
	}
	at16, err := p.Project(app, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(proj.ComputeTime < at8.ComputeTime && proj.ComputeTime > at16.ComputeTime) {
		t.Errorf("compute at 12 (%v) must sit between 8 (%v) and 16 (%v)",
			proj.ComputeTime, at8.ComputeTime, at16.ComputeTime)
	}
}

func TestValidateProducesErrors(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)
	v, err := p.Validate(app, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v.MeasuredTotal <= 0 || v.MeasuredCompute <= 0 || v.MeasuredComm <= 0 {
		t.Fatal("measured side incomplete")
	}
	if v.AbsErrCombined() != math.Abs(v.ErrCombined) {
		t.Error("AbsErrCombined broken")
	}
	// The reproduction's whole point: projecting LU onto POWER6 must land
	// within the paper's error regime (they report ≤15 %; allow slack).
	if v.AbsErrCombined() > 25 {
		t.Errorf("LU-MZ on POWER6 projects at %.1f%% error; expected the paper's regime", v.AbsErrCombined())
	}
	if _, ok := v.ErrByClass[mpi.ClassP2PNB]; !ok {
		t.Error("per-class errors missing")
	}
}

func TestPctErr(t *testing.T) {
	if pctErr(110, 100) != 10 || pctErr(90, 100) != -10 {
		t.Error("pctErr wrong")
	}
	if pctErr(0, 0) != 0 {
		t.Error("0/0 must be 0")
	}
	if pctErr(5, 0) != 100 {
		t.Error("nonzero/0 convention broken")
	}
}

func TestSplitX(t *testing.T) {
	// 50 calls, 400 messages at offset 1 (same node for cpn≥2) and 200 at
	// offset 16.
	se := &mpiprof.SizeEntry{Calls: 50, Messages: 600, Offsets: map[int]int{1: 400, 16: 200}}
	xi, xe := splitX(se, 16)
	// offset1: frac 15/16 intra; offset16: 0 intra.
	wantIntra := (400.0 * 15 / 16) / 50 / 2
	wantInter := (400.0*1/16 + 200) / 50 / 2
	if math.Abs(xi-wantIntra) > 1e-9 || math.Abs(xe-wantInter) > 1e-9 {
		t.Errorf("splitX = (%v,%v), want (%v,%v)", xi, xe, wantIntra, wantInter)
	}
	// Wider nodes absorb the offset-16 traffic.
	xi32, xe32 := splitX(se, 32)
	if xi32 <= xi || xe32 >= xe {
		t.Error("wider nodes must increase the intra share")
	}
	// No pattern: assume everything inter.
	bare := &mpiprof.SizeEntry{Calls: 10, Messages: 40}
	xi0, xe0 := splitX(bare, 16)
	if xi0 != 0 || xe0 != 2 {
		t.Errorf("bare entry splitX = (%v,%v), want (0,2)", xi0, xe0)
	}
}

func TestIntraFraction(t *testing.T) {
	cases := []struct {
		off, cpn int
		want     float64
	}{
		{0, 16, 1}, {16, 16, 0}, {8, 16, 0.5}, {1, 16, 15.0 / 16}, {20, 16, 0},
	}
	for _, c := range cases {
		if got := intraFraction(c.off, c.cpn); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("intraFraction(%d,%d) = %v, want %v", c.off, c.cpn, got, c.want)
		}
	}
}

func TestGroupContributionsNormalised(t *testing.T) {
	app := sharedLU(t)
	g := groupContributions(&app.Counters[16].ST, nil)
	var sum float64
	for _, v := range g {
		if v < 0 {
			t.Errorf("negative contribution %v", g)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("contributions must normalise, got %v", sum)
	}
}

func TestCorrelation(t *testing.T) {
	if c := correlation([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", c)
	}
	if c := correlation([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", c)
	}
	if c := correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); c != 0 {
		t.Errorf("degenerate correlation = %v", c)
	}
}

func TestParallelPipelineMatchesSerial(t *testing.T) {
	// The whole evaluation engine's contract: every characterisation is a
	// pure function of its (machine, workload) key, so the fan-out in
	// NewPipelineOpts, CharacterizeApp and the GA ensemble must yield
	// byte-identical data whatever the worker count.
	base := arch.MustGet(arch.Hydra)
	tgt := arch.MustGet(arch.Power6)
	counts := []int{4, 8, 16}

	serial, err := NewPipelineOpts(base, tgt, counts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPipelineOpts(base, tgt, counts, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.SpecBase, parallel.SpecBase) {
		t.Error("SPEC base tables differ between serial and parallel gathering")
	}
	if !reflect.DeepEqual(serial.SpecTarget, parallel.SpecTarget) {
		t.Error("SPEC target tables differ between serial and parallel gathering")
	}
	if !reflect.DeepEqual(serial.IMBBase, parallel.IMBBase) {
		t.Error("IMB base tables differ between serial and parallel gathering")
	}
	if !reflect.DeepEqual(serial.IMBTarget, parallel.IMBTarget) {
		t.Error("IMB target tables differ between serial and parallel gathering")
	}

	appS, err := serial.CharacterizeApp(nas.LU, nas.ClassC, counts)
	if err != nil {
		t.Fatal(err)
	}
	appP, err := parallel.CharacterizeApp(nas.LU, nas.ClassC, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(appS.Counters, appP.Counters) {
		t.Error("app counters differ between serial and parallel characterisation")
	}
	if !reflect.DeepEqual(appS.Profiles, appP.Profiles) {
		t.Error("app profiles differ between serial and parallel characterisation")
	}

	cpS, err := serial.ProjectCompute(appS, 16)
	if err != nil {
		t.Fatal(err)
	}
	cpP, err := parallel.ProjectCompute(appP, 16)
	if err != nil {
		t.Fatal(err)
	}
	if cpS.TargetTime != cpP.TargetTime || cpS.Fitness != cpP.Fitness {
		t.Errorf("compute projection differs: serial (%v, %v) vs parallel (%v, %v)",
			cpS.TargetTime, cpS.Fitness, cpP.TargetTime, cpP.Fitness)
	}
	if !reflect.DeepEqual(cpS.Surrogate, cpP.Surrogate) {
		t.Errorf("surrogates differ: %v vs %v", cpS.Surrogate, cpP.Surrogate)
	}
}

func TestNewPipelineDedupesCounts(t *testing.T) {
	base := arch.MustGet(arch.Hydra)
	tgt := arch.MustGet(arch.BlueGene)
	p, err := NewPipelineOpts(base, tgt, []int{8, 4, 8, 4}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.IMBBase) != 2 || len(p.IMBTarget) != 2 {
		t.Errorf("duplicate rank counts not deduped: %d/%d tables", len(p.IMBBase), len(p.IMBTarget))
	}
}
