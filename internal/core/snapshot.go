package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/imb"
	"repro/internal/persist"
	"repro/internal/spec"
)

// StoreSnapshot is the on-disk spill of the store's transferable layers:
// the replication vault (rendered result bytes) and the characterisation
// layer (SPEC result sets and IMB tables in their persist wire form).
// Profiles and surrogates are deliberately absent — they are cheap to
// recompute relative to characterisation, and their in-memory values
// carry live pointers that have no stable wire form.
//
// Every entry carries its own sha256, verified on import exactly like
// /v1/replicate verifies pushed artifacts: a corrupt or tampered entry
// is rejected and counted, never loaded.
type StoreSnapshot struct {
	Version   int            `json:"version"`
	Artifacts []Artifact     `json:"artifacts"`
	Chars     []CharArtifact `json:"chars"`
}

// SnapshotVersion is the current StoreSnapshot schema version. Imports
// of other versions are rejected whole (a snapshot is a cache spill, not
// a migration source).
const SnapshotVersion = 1

// CharArtifact is one characterisation-layer entry in transferable form:
// the layer key, the hex sha256 of Body, and the persist-marshalled
// payload (MarshalSpec for spec| keys, MarshalIMB for imb| keys).
type CharArtifact struct {
	Key  string `json:"key"`
	Sum  string `json:"sum"`
	Body []byte `json:"body"`
}

// ExportSnapshot captures the vault and the characterisation layer.
// External ("ext|") characterisation entries are skipped: their values
// are opaque to the store and have no wire form. Entries that fail to
// marshal are skipped rather than failing the whole export — a spill is
// best-effort by design.
func (s *Store) ExportSnapshot() *StoreSnapshot {
	if s == nil {
		return &StoreSnapshot{Version: SnapshotVersion}
	}
	snap := &StoreSnapshot{Version: SnapshotVersion, Artifacts: s.ExportArtifacts()}
	for _, key := range s.DebugKeys("characterisation") {
		s.chars.mu.Lock()
		el, ok := s.chars.entries[key]
		var val any
		if ok {
			val = el.Value.(*layerEntry).val
		}
		s.chars.mu.Unlock()
		if !ok {
			continue
		}
		var body []byte
		var err error
		switch v := val.(type) {
		case map[string]spec.Result:
			machine := machineOfSpecKey(key)
			body, err = persist.MarshalSpec(machine, v)
		case *imb.Table:
			body, err = persist.MarshalIMB(v)
		default:
			continue // ext| entries: opaque, not spillable
		}
		if err != nil {
			continue
		}
		sum := sha256.Sum256(body)
		snap.Chars = append(snap.Chars, CharArtifact{Key: key, Sum: hex.EncodeToString(sum[:]), Body: body})
	}
	return snap
}

// machineOfSpecKey recovers the machine name from a spec| layer key.
func machineOfSpecKey(key string) string {
	var m string
	if _, err := fmt.Sscanf(key, "spec|%q", &m); err == nil {
		return m
	}
	return ""
}

// ImportSnapshot loads a snapshot into the store. Every entry is
// verified — checksum first, then the payload is parsed by the persist
// validators and its content-derived key must equal the recorded key, so
// a snapshot can never publish data under a key it doesn't match.
// Returns how many entries were stored and how many rejected; rejections
// are counted on the vault's _rejects counter (artifacts) or the
// characterisation layer's <prefix>.characterisation_rejects.
func (s *Store) ImportSnapshot(snap *StoreSnapshot) (stored, rejected int) {
	if s == nil || snap == nil {
		return 0, 0
	}
	if snap.Version != SnapshotVersion {
		return 0, 0
	}
	for _, a := range snap.Artifacts {
		if _, err := s.ImportArtifact(a); err != nil {
			rejected++
			continue
		}
		stored++
	}
	for _, c := range snap.Chars {
		if s.importChar(c) {
			stored++
		} else {
			rejected++
			s.chars.obs.Count(s.chars.name+"_rejects", 1)
		}
	}
	return stored, rejected
}

// importChar verifies and loads one characterisation entry.
func (s *Store) importChar(c CharArtifact) bool {
	sum := sha256.Sum256(c.Body)
	if c.Sum != hex.EncodeToString(sum[:]) {
		return false
	}
	var val any
	var wantKey string
	switch {
	case strings.HasPrefix(c.Key, "spec|"):
		machine, results, err := persist.UnmarshalSpec(c.Body)
		if err != nil {
			return false
		}
		val, wantKey = results, fmt.Sprintf("spec|%q", machine)
	case strings.HasPrefix(c.Key, "imb|"):
		t, err := persist.UnmarshalIMB(c.Body)
		if err != nil {
			return false
		}
		val, wantKey = t, fmt.Sprintf("imb|%q|%d", t.Machine, t.Ranks)
	default:
		return false
	}
	if c.Key != wantKey {
		return false
	}
	s.chars.putIfAbsent(c.Key, val)
	return true
}

// putIfAbsent publishes a value directly into the layer (the snapshot
// import path — there is no fill to run). An existing entry wins: live
// data is never overwritten by a spill.
func (l *layer) putIfAbsent(key string, val any) {
	l.mu.Lock()
	if _, ok := l.entries[key]; ok {
		l.mu.Unlock()
		return
	}
	l.entries[key] = l.ll.PushFront(&layerEntry{key: key, val: val})
	for l.ll.Len() > l.max {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		ev := oldest.Value.(*layerEntry).key
		delete(l.entries, ev)
		if l.onEvict != nil {
			l.onEvict(ev)
		}
	}
	size := l.ll.Len()
	l.mu.Unlock()
	l.obs.Gauge(l.name+"_size", float64(size))
}
