package core

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// benchKernelFixture builds a kernel at the production shape: the SPEC
// pool (~29 benchmarks) over the 26×2-entry character vector, and a cycle
// of sparse MaxActive-style genomes.
func benchKernelFixture(benches, metrics int) (*EvalKernel, [][]float64) {
	src := rng.New(fmt.Sprintf("bench-kernel-%dx%d", benches, metrics))
	pool := make([][]float64, benches)
	for k := range pool {
		row := make([]float64, metrics)
		for j := range row {
			row[j] = src.Float64() * 3
		}
		pool[k] = row
	}
	app := make([]float64, metrics)
	weights := make([]float64, metrics)
	for j := range app {
		app[j] = src.Float64() * 3
		weights[j] = src.Float64()
	}
	genomes := make([][]float64, 64)
	for i := range genomes {
		g := make([]float64, benches)
		for _, idx := range src.Perm(benches)[:1+src.Intn(5)] {
			g[idx] = src.Float64()
		}
		genomes[i] = g
	}
	return NewEvalKernel(pool, app, weights, 1.0), genomes
}

// BenchmarkKernel is the per-genome objective: one EvalKernel.Objective
// call on a surrogate-search-shaped problem. Gated by bench_gate.sh via
// BENCH_kernel.json — allocs/op must stay 0.
func BenchmarkKernel(b *testing.B) {
	kern, genomes := benchKernelFixture(29, 52)
	scratch := kern.NewScratch()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += kern.Objective(genomes[i%len(genomes)], scratch)
	}
	_ = sink
}
