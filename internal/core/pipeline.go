// Package core implements SWAPP — Surrogate-based Workload Application
// Performance Projection — the paper's contribution. It projects the
// runtime of an HPC application onto a target machine using only:
//
//   - the application's profile on a base machine (MPI profile + hardware
//     counters at a few core counts), and
//   - benchmark data (SPEC CPU2006, IMB + multi-Sendrecv) on both the base
//     and target machines.
//
// The target machine is never given the application. The pipeline projects
// the compute component (§2.3: metric groups → ranking → base→target rank
// adjustment → GA surrogate search → Eq. 2) and the communication component
// (§2.4: MPI model × Eq. 3 target parameters, WaitTime extraction and
// scaling) separately, scales them with the CCSM and ACSM models (§3), and
// combines them (Eq. 6/7) into the full application projection.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/faultinject"
	"repro/internal/ga"
	"repro/internal/hpm"
	"repro/internal/imb"
	"repro/internal/mpiprof"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/quality"
	"repro/internal/spec"
	"repro/internal/units"
)

// Pipeline holds the benchmark data SWAPP is allowed to use for one
// (base, target) machine pair: everything here is either measured on the
// base machine or is "published benchmark data" for the target.
//
// A Pipeline is immutable after construction and safe for concurrent use.
type Pipeline struct {
	Base   *arch.Machine
	Target *arch.Machine

	// Workers bounds the pipeline's internal fan-out (benchmark
	// characterisation, GA ensemble): 0 means runtime.GOMAXPROCS(0),
	// 1 the serial path. Results are identical for every value.
	Workers int

	// Obs, when non-nil, receives spans and metrics for every stage run
	// through this pipeline (construction, characterisation, projection).
	// Observability never alters results (see internal/obs).
	Obs *obs.Scope

	// SPEC CPU2006: counters + runtimes on the base, runtimes on the
	// target (the paper uses published target numbers).
	SpecBase   map[string]spec.Result
	SpecTarget map[string]spec.Result

	// IMB + multi-Sendrecv parameter tables per core count (Eq. 3).
	IMBBase   map[int]*imb.Table
	IMBTarget map[int]*imb.Table

	// Defects records data problems found while assembling the benchmark
	// data (pool mismatches, count gaps, loader fallbacks). Every
	// projection through this pipeline inherits them into its Quality
	// report; empty for data gathered by running the benchmarks in-process.
	Defects []quality.Defect

	// store, when non-nil, is the layered artifact cache characterisation,
	// profiling, and the surrogate search resolve through (see Store). nil
	// when the request disabled it, supplied external Data, or — checked
	// again at each use — while fault injection is armed.
	store *Store
	// warmStart opts the surrogate search into seeding from the store's
	// nearest cached surrogate (see Options.WarmStart).
	warmStart bool
	// onGAProgress taps the surrogate search's per-generation progress
	// (see Options.OnGAProgress).
	onGAProgress func(member, gen int, best float64, genome []float64)
	// resumeSeeds, when non-empty, seed the surrogate search directly —
	// the async-job checkpoint-resume path (see Options.SurrogateSeeds).
	resumeSeeds [][]float64
	// onGACheckpoint taps the surrogate search's full per-generation
	// evolution state (see Options.OnGACheckpoint).
	onGACheckpoint func(member int, cp *ga.Checkpoint)
	// resumeCheckpoints, when non-empty, restore the surrogate search's
	// ensemble members mid-evolution (see Options.SurrogateCheckpoints).
	resumeCheckpoints []*ga.Checkpoint
}

// storeFor returns the layer store to use right now: nil while fault
// injection is armed, so chaos runs can neither read clean artifacts into
// a corrupted evaluation nor publish corrupted artifacts under clean keys.
func (p *Pipeline) storeFor() *Store {
	if p.store == nil || faultinject.Enabled() {
		return nil
	}
	return p.store
}

// PipelineData supplies pre-measured benchmark data to NewPipeline instead
// of running the suites in-process — the paper's actual workflow, where
// target-machine numbers are published tables, not local runs. Any nil
// field (or missing IMB count) is still gathered by running the benchmark;
// provided parts are used as-is, so degraded external data flows through
// with its Defects rather than failing the build.
type PipelineData struct {
	SpecBase   map[string]spec.Result
	SpecTarget map[string]spec.Result
	IMBBase    map[int]*imb.Table
	IMBTarget  map[int]*imb.Table

	// Defects carries the loader's findings (see persist's lenient
	// decoders) into the pipeline's quality ledger.
	Defects []quality.Defect
}

// Options tunes pipeline construction. The zero value is the default.
type Options struct {
	// Workers bounds the concurrency of benchmark characterisation and
	// of later projections through this pipeline: 0 means
	// runtime.GOMAXPROCS(0), 1 the legacy serial path.
	Workers int
	// Obs, when non-nil, instruments the pipeline (spans + metrics). nil —
	// the default — is the zero-cost disabled layer.
	Obs *obs.Scope
	// Data, when non-nil, supplies pre-measured benchmark data; see
	// PipelineData.
	Data *PipelineData
	// Store, when non-nil, is a layered artifact cache shared across
	// pipelines (and therefore requests): machine characterisations,
	// application profiles, and finished compute surrogates are resolved
	// through it instead of recomputed. Every stored artifact is a pure
	// function of its key, so projections are byte-identical with or
	// without a store. Ignored when Data supplies external benchmark data
	// or while fault injection is armed — degraded inputs must never
	// populate the clean content-addressed keys.
	Store *Store
	// WarmStart opts the GA surrogate search into seeding its initial
	// population from the Store's nearest cached surrogate for the same
	// (base, app, target). Unlike the store itself this CAN change the
	// projected numbers (the search explores from a different generation
	// 0), so it is off by default and recorded in the projection's
	// Quality report when it fires. Requires Store.
	WarmStart bool
	// OnGAProgress, when non-nil, observes the surrogate search: it is
	// called once per evolved GA generation per ensemble member with the
	// member index, generation, running best fitness, and a clone of the
	// running best genome (safe to retain — it is the checkpoint material
	// for resumable async jobs). Strictly passive: projections are
	// byte-identical with the callback set or nil. Members run
	// concurrently, so the callback must be safe for concurrent calls.
	OnGAProgress func(member, gen int, best float64, genome []float64)
	// SurrogateSeeds, when non-empty, seed every surrogate search's
	// initial GA population directly — the async-job checkpoint-resume
	// path, where a failed search restarts from its last per-generation
	// checkpoint instead of from scratch. Like WarmStart this CAN change
	// the projected numbers, so resumed searches bypass the Store's clean
	// content-addressed keys and record a GAResume defect in the Quality
	// report.
	SurrogateSeeds [][]float64
	// OnGACheckpoint, when non-nil, receives each ensemble member's FULL
	// evolution state after every evolved generation (see ga.Checkpoint) —
	// the durability tap for crash-recoverable jobs, where OnGAProgress's
	// best-genome snapshots are not enough to continue a search exactly.
	// Strictly passive and byte-identical with the callback set or nil;
	// members run concurrently, so it must be safe for concurrent calls.
	OnGACheckpoint func(member int, cp *ga.Checkpoint)
	// SurrogateCheckpoints, when non-empty, restore the surrogate
	// search's ensemble members from checkpoints captured by
	// OnGACheckpoint (indexed by member; nil members start cold). Unlike
	// SurrogateSeeds this is the EXACT resume path: the continued search
	// reproduces the uninterrupted run bit for bit, so it records no
	// quality defect — but it still computes fresh rather than reading
	// the surrogate layer, since its per-member state replaces the cached
	// artifact wholesale. Takes precedence over SurrogateSeeds. Only
	// meaningful for searches that were started cold (a warm-started
	// member's stall cutoff is not reconstructed).
	SurrogateCheckpoints []*ga.Checkpoint
}

// NewPipeline gathers benchmark data for a machine pair at the given job
// core counts. This is the expensive, application-independent setup the
// paper assumes done once per machine pair.
func NewPipeline(base, target *arch.Machine, rankCounts []int) (*Pipeline, error) {
	return NewPipelineOpts(base, target, rankCounts, Options{})
}

// NewPipelineOpts is NewPipeline with explicit options. The independent
// characterisations — SPEC on the base, SPEC on the target, and the IMB
// sweep per (machine, core count) — run concurrently on a bounded pool
// with first-error propagation; every run is a pure function of its
// (machine, workload) key, so the gathered tables are identical to the
// serial path's.
func NewPipelineOpts(base, target *arch.Machine, rankCounts []int, opts Options) (*Pipeline, error) {
	return NewPipelineCtx(context.Background(), base, target, rankCounts, opts)
}

// NewPipelineCtx is NewPipelineOpts under a context: construction checks
// ctx at every stage boundary (each SPEC suite and each per-count IMB
// sweep), so a cancelled or deadline-expired context aborts the gather
// promptly with ctx.Err() instead of finishing minutes of dead work. This
// is the entry point long-running services use to honour per-request
// deadlines.
func NewPipelineCtx(ctx context.Context, base, target *arch.Machine, rankCounts []int, opts Options) (*Pipeline, error) {
	if err := faultinject.Fire("core.pipeline"); err != nil {
		return nil, err
	}
	p := &Pipeline{
		Base:              base,
		Target:            target,
		Workers:           opts.Workers,
		Obs:               opts.Obs,
		IMBBase:           map[int]*imb.Table{},
		IMBTarget:         map[int]*imb.Table{},
		store:             opts.Store,
		warmStart:         opts.WarmStart,
		onGAProgress:      opts.OnGAProgress,
		resumeSeeds:       opts.SurrogateSeeds,
		onGACheckpoint:    opts.OnGACheckpoint,
		resumeCheckpoints: opts.SurrogateCheckpoints,
	}
	if opts.Data != nil {
		// External data bypasses the store for this pipeline's whole
		// lifetime: partially-supplied or degraded inputs must neither
		// poison the shared layers nor be silently completed from them.
		p.store = nil
	}
	st := p.storeFor()
	var dataDefects []quality.Defect
	if d := opts.Data; d != nil {
		p.SpecBase = d.SpecBase
		p.SpecTarget = d.SpecTarget
		for c, t := range d.IMBBase {
			p.IMBBase[c] = t
		}
		for c, t := range d.IMBTarget {
			p.IMBTarget[c] = t
		}
		dataDefects = d.Defects
	}
	counts := uniqueSorted(rankCounts)

	sp := opts.Obs.Child(fmt.Sprintf("core.pipeline.%s->%s", base.Name, target.Name))
	defer sp.End()

	var g par.Group
	g.SetLimit(par.Workers(opts.Workers))
	// Base-side SPEC runs carry measurement noise (we ran them); the
	// target numbers are published averages — modelled as noisy too.
	// Parts already supplied via Options.Data are not re-run.
	if p.SpecBase == nil {
		g.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			c := sp.Child("spec." + base.Name)
			defer c.End()
			var err error
			if p.SpecBase, err = gatherSpec(ctx, st, base); err != nil {
				return fmt.Errorf("core: SPEC on base: %w", err)
			}
			return nil
		})
	}
	if p.SpecTarget == nil {
		g.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			c := sp.Child("spec." + target.Name)
			defer c.End()
			var err error
			if p.SpecTarget, err = gatherSpec(ctx, st, target); err != nil {
				return fmt.Errorf("core: SPEC on target: %w", err)
			}
			return nil
		})
	}
	imbBase := make([]*imb.Table, len(counts))
	imbTarget := make([]*imb.Table, len(counts))
	for i, c := range counts {
		i, c := i, c
		if p.IMBBase[c] == nil {
			g.Go(func() error {
				if err := ctx.Err(); err != nil {
					return err
				}
				s := sp.Child(fmt.Sprintf("imb.%s.%d", base.Name, c))
				defer s.End()
				tb, err := gatherIMB(ctx, st, base, c)
				if err != nil {
					return fmt.Errorf("core: IMB on base at %d ranks: %w", c, err)
				}
				imbBase[i] = tb
				return nil
			})
		}
		if p.IMBTarget[c] == nil {
			g.Go(func() error {
				if err := ctx.Err(); err != nil {
					return err
				}
				s := sp.Child(fmt.Sprintf("imb.%s.%d", target.Name, c))
				defer s.End()
				tt, err := gatherIMB(ctx, st, target, c)
				if err != nil {
					return fmt.Errorf("core: IMB on target at %d: %w", c, err)
				}
				imbTarget[i] = tt
				return nil
			})
		}
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for i, c := range counts {
		if imbBase[i] != nil {
			p.IMBBase[c] = imbBase[i]
		}
		if imbTarget[i] != nil {
			p.IMBTarget[c] = imbTarget[i]
		}
	}
	p.applyInjectedDrops()
	p.Defects = p.analyzeData(dataDefects)
	return p, nil
}

// gatherSpec runs (or resolves through the characterisation layer) one
// machine's SPEC CPU2006 suite. The suite is a pure function of the
// machine (measurement noise is key-seeded), so a stored result set is
// bit-identical to a fresh run's.
func gatherSpec(ctx context.Context, st *Store, m *arch.Machine) (map[string]spec.Result, error) {
	if st == nil {
		return spec.RunSuite(m, true)
	}
	return st.specSuite(ctx, m, func() (map[string]spec.Result, error) {
		return spec.RunSuite(m, true)
	})
}

// gatherIMB runs (or resolves through the characterisation layer) one
// machine's IMB sweep at a core count.
func gatherIMB(ctx context.Context, st *Store, m *arch.Machine, count int) (*imb.Table, error) {
	if st == nil {
		return imb.Run(m, count, nil)
	}
	return st.imbTable(ctx, m, count, func() (*imb.Table, error) {
		return imb.Run(m, count, nil)
	})
}

// applyInjectedDrops corrupts the gathered target-side data when the
// corresponding faultinject points are armed: chaos tests use these to
// prove the degraded-mode fallbacks on real pipelines without hand-built
// fixtures. Copies are mutated, never the gathered tables.
func (p *Pipeline) applyInjectedDrops() {
	if !faultinject.Enabled() {
		return
	}
	if faultinject.ShouldDrop("core.spec.target") && len(p.SpecTarget) > 0 {
		names := spec.SortedNames(p.SpecTarget)
		cp := make(map[string]spec.Result, len(p.SpecTarget))
		for k, v := range p.SpecTarget {
			cp[k] = v
		}
		delete(cp, names[0])
		p.SpecTarget = cp
	}
	if faultinject.ShouldDrop("core.imb.target") && len(p.IMBTarget) > 0 {
		cp := make(map[int]*imb.Table, len(p.IMBTarget))
		for c, t := range p.IMBTarget {
			cp[c] = t.TruncatedAbove(64 * units.KiB)
		}
		p.IMBTarget = cp
	}
}

// analyzeData inspects the assembled benchmark data for structural
// problems the projections will have to work around, merging them with the
// loader-reported defects. On cleanly gathered data it returns exactly
// dataDefects (nil in-process), keeping the full-fidelity path untouched.
func (p *Pipeline) analyzeData(dataDefects []quality.Defect) []quality.Defect {
	ds := append([]quality.Defect(nil), dataDefects...)

	// SPEC pool intersection: the surrogate search can only use benchmarks
	// measured on both machines.
	baseNames := spec.SortedNames(p.SpecBase)
	var missing []string
	for _, n := range baseNames {
		if _, ok := p.SpecTarget[n]; !ok {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		sev := quality.Minor
		if remaining := len(baseNames) - len(missing); remaining*4 < len(baseNames)*3 {
			// More than a quarter of the pool gone: the search space itself
			// is substantially poorer.
			sev = quality.Major
		}
		shown := missing
		if len(shown) > 3 {
			shown = shown[:3]
		}
		ds = append(ds, quality.Defect{
			Code: quality.MissingSpecBench, Component: quality.Data, Severity: sev,
			Detail: fmt.Sprintf("%d/%d base-pool benchmarks absent on target (%s); surrogate pool shrunk to the intersection",
				len(missing), len(baseNames), strings.Join(shown, ", ")),
		})
	}

	// IMB core counts present on one side only.
	for _, c := range sortedCounts(p.IMBBase) {
		if p.IMBTarget[c] == nil {
			ds = append(ds, quality.Defect{
				Code: quality.MissingIMBCount, Component: quality.Data, Severity: quality.Minor,
				Detail: fmt.Sprintf("target has no IMB tables at %d ranks; lookups fall back to the nearest shared count", c),
			})
		}
	}
	for _, c := range sortedCounts(p.IMBTarget) {
		if p.IMBBase[c] == nil {
			ds = append(ds, quality.Defect{
				Code: quality.MissingIMBCount, Component: quality.Data, Severity: quality.Minor,
				Detail: fmt.Sprintf("base has no IMB tables at %d ranks; lookups fall back to the nearest shared count", c),
			})
		}
	}
	return ds
}

// sortedCounts lists an IMB table map's core counts ascending.
func sortedCounts(m map[int]*imb.Table) []int {
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// uniqueSorted returns the distinct values of xs in ascending order.
func uniqueSorted(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// imbAt fetches a machine-pair's IMB tables for a core count. When the
// pipeline was not prepared for that count it substitutes the nearest
// count both machines hold — recording an IMBCountFallback defect on rec —
// and errors only when no shared count exists at all.
func (p *Pipeline) imbAt(c int, rec *quality.Report) (baseT, targetT *imb.Table, err error) {
	baseT, ok1 := p.IMBBase[c]
	targetT, ok2 := p.IMBTarget[c]
	if ok1 && ok2 {
		return baseT, targetT, nil
	}
	var shared []int
	for cc, t := range p.IMBBase {
		if t != nil && p.IMBTarget[cc] != nil {
			shared = append(shared, cc)
		}
	}
	if len(shared) == 0 {
		return nil, nil, fmt.Errorf("core: pipeline has no IMB tables for %d ranks", c)
	}
	sort.Ints(shared)
	best := shared[0]
	for _, cc := range shared {
		if abs(cc-c) < abs(best-c) {
			best = cc
		}
	}
	rec.Add(quality.Defect{
		Code: quality.IMBCountFallback, Component: quality.Comm, Severity: quality.Major,
		Detail: fmt.Sprintf("no IMB tables at %d ranks; substituted the tables at %d ranks", c, best),
	})
	return p.IMBBase[best], p.IMBTarget[best], nil
}

// CounterPair is one application characterisation observation: ST and SMT
// hardware-counter runs at one core count on the base machine.
type CounterPair struct {
	Ranks int
	ST    hpm.Counters
	SMT   hpm.Counters
}

// CharacterVector concatenates the ST and SMT metric vectors, matching
// spec.Result.CharacterVector's layout.
func (cp *CounterPair) CharacterVector() []float64 {
	return append(cp.ST.Vector(), cp.SMT.Vector()...)
}

// AppModel is everything SWAPP knows about an application: base-machine
// MPI profiles and hardware counters at several core counts. It never
// contains target-machine measurements.
type AppModel struct {
	Bench nas.Benchmark
	Class nas.Class

	// Counts are the base-machine core counts profiled, ascending.
	Counts []int
	// Profiles holds the base MPI profile per core count (§2.2).
	Profiles map[int]*mpiprof.Profile
	// Counters holds the ST+SMT counter observations per core count.
	Counters map[int]*CounterPair
}

// Name is the workload identity.
func (a *AppModel) Name() string { return fmt.Sprintf("%s.%s", a.Bench, a.Class) }

// CharacterizeApp runs the application on the base machine at each core
// count, collecting MPI profiles and (noisy) hardware counters — the §2
// measurement phase. counts nil defaults to the paper's sweep for the
// benchmark.
func (p *Pipeline) CharacterizeApp(b nas.Benchmark, c nas.Class, counts []int) (*AppModel, error) {
	return p.CharacterizeAppCtx(context.Background(), b, c, counts)
}

// CharacterizeAppCtx is CharacterizeApp under a context: each per-count
// profiling run checks ctx before starting, so cancellation aborts the
// sweep at the next stage boundary.
func (p *Pipeline) CharacterizeAppCtx(ctx context.Context, b nas.Benchmark, c nas.Class, counts []int) (*AppModel, error) {
	if counts == nil {
		counts = nas.PaperRankCounts(b)
	}
	app := &AppModel{
		Bench:    b,
		Class:    c,
		Counts:   append([]int(nil), counts...),
		Profiles: map[int]*mpiprof.Profile{},
		Counters: map[int]*CounterPair{},
	}
	sort.Ints(app.Counts)
	sp := p.Obs.Child("core.characterize." + app.Name())
	defer sp.End()
	if err := faultinject.Fire("core.characterize"); err != nil {
		return nil, err
	}
	// Each core count's profile + counter runs are independent pure
	// functions of (machine, workload, ranks) keys; fan them out and
	// collect by index — or resolve them through the profile layer, where
	// a request that shares this app and base machine with any prior one
	// finds the observations already made. The worker slot lands on the
	// span, so a trace shows how well the pool was utilised.
	st := p.storeFor()
	profiles := make([]*mpiprof.Profile, len(app.Counts))
	pairs := make([]*CounterPair, len(app.Counts))
	err := par.ForEachW(par.Workers(p.Workers), len(app.Counts), func(w, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ranks := app.Counts[i]
		s := sp.ChildW(fmt.Sprintf("profile.%d", ranks), w)
		defer s.End()
		art, err := p.profileArtifact(ctx, st, b, c, ranks)
		if err != nil {
			return err
		}
		profiles[i] = art.Profile
		pairs[i] = art.Counters
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, ranks := range app.Counts {
		app.Profiles[ranks] = profiles[i]
		app.Counters[ranks] = pairs[i]
	}
	return app, nil
}

// profileArtifact makes (or resolves through the profile layer) one
// (app, class, ranks) observation on the base machine: the MPI profile
// plus the ST/SMT counter pair. Both are pure functions of the key, so a
// stored artifact is identical to a fresh measurement.
func (p *Pipeline) profileArtifact(ctx context.Context, st *Store, b nas.Benchmark, c nas.Class, ranks int) (*ProfileArtifact, error) {
	fill := func() (*ProfileArtifact, error) {
		inst, err := nas.New(nas.Config{Bench: b, Class: c, Ranks: ranks})
		if err != nil {
			return nil, err
		}
		res, err := inst.Run(p.Base)
		if err != nil {
			return nil, fmt.Errorf("core: base profile at %d ranks: %w", ranks, err)
		}
		cp, err := p.measureCounters(inst, ranks)
		if err != nil {
			return nil, err
		}
		return &ProfileArtifact{Profile: res.Profile, Counters: cp}, nil
	}
	if st == nil {
		return fill()
	}
	return st.profileAt(ctx, p.Base, b, c, ranks, fill)
}

// measureCounters collects the ST and SMT hardware-counter observations of
// the application's per-rank compute kernel at one core count.
func (p *Pipeline) measureCounters(inst *nas.Instance, ranks int) (*CounterPair, error) {
	sig := inst.MeanRankSignature()
	active := p.Base.CoresPerNode
	if ranks < active {
		active = ranks
	}
	key := fmt.Sprintf("app-ci=%d", ranks)
	st, err := hpm.Run(sig, hpm.Config{
		Machine: p.Base, Mode: hpm.ST,
		ActiveTasksPerNode: active,
		MeasureNoise:       true, NoiseKey: key + "|st",
	})
	if err != nil {
		return nil, fmt.Errorf("core: counters at %d ranks: %w", ranks, err)
	}
	smtCfg := hpm.Config{
		Machine: p.Base, Mode: hpm.SMT,
		ActiveTasksPerNode: active * p.Base.Proc.SMTWays,
		MeasureNoise:       true, NoiseKey: key + "|smt",
	}
	if p.Base.Proc.SMTWays <= 1 {
		smtCfg.Mode = hpm.ST
		smtCfg.ActiveTasksPerNode = active
	}
	smt, err := hpm.Run(sig, smtCfg)
	if err != nil {
		return nil, fmt.Errorf("core: SMT counters at %d ranks: %w", ranks, err)
	}
	return &CounterPair{Ranks: ranks, ST: st, SMT: smt}, nil
}

// nearestCount returns the profiled core count closest to ck (ties toward
// the smaller), preferring an exact match.
func (a *AppModel) nearestCount(ck int) int {
	best := a.Counts[0]
	for _, c := range a.Counts {
		if abs(c-ck) < abs(best-ck) {
			best = c
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// computeTimes returns (counts, per-rank mean compute seconds) pairs from
// the base profiles — the CCSM input.
func (a *AppModel) computeTimes() (xs, ys []float64) {
	for _, c := range a.Counts {
		xs = append(xs, float64(c))
		ys = append(ys, a.Profiles[c].MeanCompute())
	}
	return
}

// baseComputeAt is the profiled per-rank mean compute time at a core count.
func (a *AppModel) baseComputeAt(c int) units.Seconds {
	return a.Profiles[c].MeanCompute()
}
