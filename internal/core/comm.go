package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/mpiprof"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/units"
)

// RoutineProjection is the §2.4 per-routine output: transfer and wait time
// on the target per Eq. 5/6, per task.
type RoutineProjection struct {
	Routine mpi.Routine
	Class   mpi.Class

	Calls float64 // per-task calls

	// Base-side decomposition (Eq. 4): profiled elapsed split into the
	// IMB-predicted transfer and the residual WaitTime.
	BaseElapsed  units.Seconds
	BaseTransfer units.Seconds
	BaseWait     units.Seconds

	// Target-side projection (Eq. 5).
	TargetTransfer units.Seconds
	TargetWait     units.Seconds
}

// TargetElapsed is the Eq. 5 total for the routine.
func (rp *RoutineProjection) TargetElapsed() units.Seconds {
	return rp.TargetTransfer + rp.TargetWait
}

// CommProjection is the communication component's projection at one core
// count: per-task times.
type CommProjection struct {
	Ranks    int
	Routines []*RoutineProjection

	// WaitScale is the factor applied to base WaitTime (§2.4 step 3):
	// a blend of the compute and communication base→target ratios.
	WaitScale float64
}

// TargetTotal is the projected per-task communication time.
func (c *CommProjection) TargetTotal() units.Seconds {
	var s units.Seconds
	for _, r := range c.Routines {
		s += r.TargetElapsed()
	}
	return s
}

// BaseTotal is the profiled per-task communication time.
func (c *CommProjection) BaseTotal() units.Seconds {
	var s units.Seconds
	for _, r := range c.Routines {
		s += r.BaseElapsed
	}
	return s
}

// TargetByClass sums projected per-task time per routine class. The result
// is a map: consumers that render or accumulate floats from it must iterate
// in a fixed class order (see report.ClassOrder), never in map order.
func (c *CommProjection) TargetByClass() map[mpi.Class]units.Seconds {
	out := map[mpi.Class]units.Seconds{}
	for _, r := range c.Routines {
		out[r.Class] += r.TargetElapsed()
	}
	return out
}

// BaseByClass sums profiled per-task time per routine class — the base-side
// counterpart of TargetByClass, with the same fixed-iteration-order caveat.
func (c *CommProjection) BaseByClass() map[mpi.Class]units.Seconds {
	out := map[mpi.Class]units.Seconds{}
	for _, r := range c.Routines {
		out[r.Class] += r.BaseElapsed
	}
	return out
}

// waitBlend weights the compute ratio vs the transfer ratio when scaling
// WaitTime to the target. WaitTime is primarily load-imbalance idle time,
// which tracks compute speed; the residual tracks message timing.
const waitBlend = 0.8

// ProjectComm runs the §2.4 communication projection for the application
// at core count ck, using the base profile at ck and the IMB tables of
// both machines. computeRatio is the surrogate-projected target/base
// compute-time ratio, needed for the WaitTime scaling factor.
func (p *Pipeline) ProjectComm(app *AppModel, ck int, computeRatio float64) (*CommProjection, error) {
	return p.projectComm(p.Obs, app, ck, computeRatio, nil)
}

// projectComm is the implementation, with its span attached under parent.
// Degraded-mode fallbacks — unpriceable routines, grid-gap extrapolation,
// count substitution, a missing compute ratio — are recorded on rec
// (nil-safe).
func (p *Pipeline) projectComm(parent *obs.Scope, app *AppModel, ck int, computeRatio float64, rec *quality.Report) (*CommProjection, error) {
	sp := parent.Child(fmt.Sprintf("core.comm.%s@%d", app.Name(), ck))
	defer sp.End()
	prof, ok := app.Profiles[ck]
	if !ok {
		return nil, fmt.Errorf("core: no base profile at %d ranks for %s", ck, app.Name())
	}
	baseT, targetT, err := p.imbAt(ck, rec)
	if err != nil {
		return nil, err
	}

	ranks := float64(prof.Ranks())
	out := &CommProjection{Ranks: ck}

	// First pass: per-routine transfer mapping, to compute the overall
	// communication ratio for the wait-scale blend.
	var baseTransferSum, targetTransferSum units.Seconds
	type row struct {
		rt    mpi.Routine
		agg   *mpiprof.RoutineProfile
		baseT units.Seconds // per-task transfer on base
		tgtT  units.Seconds // per-task transfer on target
	}
	var rows []row
	for _, rt := range prof.Routines() {
		agg := prof.RoutineAggregate(rt)
		bt, tt := mapRoutineTransfer(rt, agg, baseT, targetT,
			p.Base.CoresPerNode, p.Target.CoresPerNode, rec)
		rows = append(rows, row{rt: rt, agg: agg, baseT: bt / ranks, tgtT: tt / ranks})
		baseTransferSum += bt / ranks
		targetTransferSum += tt / ranks
	}
	commRatio := 1.0
	if baseTransferSum > 0 {
		commRatio = targetTransferSum / baseTransferSum
	}
	if math.IsNaN(computeRatio) || math.IsInf(computeRatio, 0) || computeRatio <= 0 {
		// No usable compute ratio to blend with (a degraded compute
		// projection): carry base WaitTime over unscaled.
		rec.Add(quality.Defect{
			Code: quality.WaitScaleDefault, Component: quality.Comm, Severity: quality.Minor,
			Detail: fmt.Sprintf("no usable compute ratio (%v) for the wait-scale blend; WaitScale defaulted to 1", computeRatio),
		})
		out.WaitScale = 1
	} else {
		out.WaitScale = waitBlend*computeRatio + (1-waitBlend)*commRatio
	}

	// Second pass: Eq. 4 wait extraction and Eq. 5 target assembly. The
	// transfer portion of the profiled elapsed maps to the target by the
	// two machines' benchmark *ratio* rather than the absolute benchmark
	// estimate: the IMB pattern's contention level differs from the
	// application's, but the bias is common to both machines and cancels
	// in the ratio.
	for _, r := range rows {
		elapsed := r.agg.Elapsed / ranks
		transfer := r.baseT
		if transfer > elapsed {
			transfer = elapsed
		}
		wait := elapsed - transfer
		ratio := 1.0
		if r.baseT > 0 {
			ratio = r.tgtT / r.baseT
		}
		rp := &RoutineProjection{
			Routine:        r.rt,
			Class:          mpi.ClassOf(r.rt),
			Calls:          float64(r.agg.Calls) / ranks,
			BaseElapsed:    elapsed,
			BaseTransfer:   transfer,
			BaseWait:       wait,
			TargetTransfer: transfer * ratio,
			TargetWait:     wait * out.WaitScale,
		}
		out.Routines = append(out.Routines, rp)
	}
	sort.Slice(out.Routines, func(a, b int) bool {
		return out.Routines[a].Routine < out.Routines[b].Routine
	})
	// Per-routine communication seconds: histograms accumulate across the
	// projection's core counts, so a -metrics dump shows where projected
	// communication time concentrates.
	if sp.Enabled() {
		for _, rp := range out.Routines {
			sp.Observe("core.comm.target_seconds."+string(rp.Routine), rp.TargetElapsed())
			sp.Observe("core.comm.base_seconds."+string(rp.Routine), rp.BaseElapsed)
		}
		sp.Count("core.comm_projections", 1)
	}
	return out, nil
}

// intraFraction estimates, for dense placement of ranks onto nodes of
// width cpn, the probability that a peer at wrapped ring distance off
// shares the sender's node.
func intraFraction(off, cpn int) float64 {
	if off <= 0 {
		return 1
	}
	if off >= cpn {
		return 0
	}
	return 1 - float64(off)/float64(cpn)
}

// splitX converts a Waitall size entry's peer-offset histogram into the
// Eq. 1 (xIntra, xInter) per-call succession counts under a machine's node
// width. A succession is an Isend+Irecv pair, so request counts halve.
func splitX(se *mpiprof.SizeEntry, cpn int) (xIntra, xInter float64) {
	if se.Calls == 0 {
		return 0, 0
	}
	// Sorted iteration: the float accumulation order must not depend on
	// map iteration order, or the projection wobbles in the last ULP from
	// run to run.
	offs := make([]int, 0, len(se.Offsets))
	for off := range se.Offsets {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	var intra, inter float64
	for _, off := range offs {
		n := se.Offsets[off]
		f := intraFraction(off, cpn)
		intra += f * float64(n)
		inter += (1 - f) * float64(n)
	}
	if intra == 0 && inter == 0 {
		// No pattern recorded: assume everything crosses nodes.
		inter = float64(se.Messages)
	}
	calls := float64(se.Calls)
	return intra / calls / 2, inter / calls / 2
}

// mapRoutineTransfer maps one profiled routine's aggregate onto IMB
// parameters for both machines (Eq. 3), returning the aggregate transfer
// seconds across all tasks. The paper's correspondence:
//
//   - MPI_Waitall with x requests of mean size S ≡ multi-Sendrecv with
//     x/2 successions: T = overhead + Σ x·T_inFlight(S) per Eq. 1, with
//     the successions split into intra-node and inter-node parts using
//     the profiled peer-offset pattern and each machine's node width
//     (IMB's intra/inter cluster modes);
//   - MPI_Isend/MPI_Irecv are posting overhead only, mapped by the two
//     machines' fitted overhead ratio;
//   - blocking p2p and collectives map directly onto the matching IMB
//     benchmark at the profiled message size.
//
// A routine missing from either table cannot be priced. Instead of
// failing the whole projection, it returns zero transfer — the caller's
// Eq. 4 then treats the routine's entire elapsed as WaitTime, scaled by
// the wait-scale factor — and records a DroppedMPIRoutine defect on rec.
// Size-grid gaps bridged by extrapolation are recorded as IMBGridGap.
func mapRoutineTransfer(rt mpi.Routine, agg *mpiprof.RoutineProfile, baseT, targetT *imb.Table, baseCPN, targetCPN int, rec *quality.Report) (base, target units.Seconds) {
	gapCheck := func(size units.Bytes, nb bool) {
		var gap bool
		var side string
		switch {
		case nb && baseT.NBGap(size):
			gap, side = true, baseT.Machine
		case nb && targetT.NBGap(size):
			gap, side = true, targetT.Machine
		case !nb && baseT.CoverageGap(rt, size):
			gap, side = true, baseT.Machine
		case !nb && targetT.CoverageGap(rt, size):
			gap, side = true, targetT.Machine
		}
		if gap {
			rec.Add(quality.Defect{
				Code: quality.IMBGridGap, Component: quality.Comm, Severity: quality.Minor,
				Detail: fmt.Sprintf("%s lookup at %s extrapolated across a hole in the %s IMB size grid",
					rt, units.FormatBytes(size), side),
			})
		}
	}
	switch rt {
	case mpi.RoutineWaitall:
		for _, size := range agg.SortedSizes() {
			se := agg.Sizes[size]
			bi, be := splitX(se, baseCPN)
			ti, te := splitX(se, targetCPN)
			gapCheck(size, true)
			base += units.Seconds(se.Calls) * baseT.TransferNB(size, bi, be)
			target += units.Seconds(se.Calls) * targetT.TransferNB(size, ti, te)
		}
		return base, target

	case mpi.RoutineIsend, mpi.RoutineIrecv:
		// Posting cost: scale the profiled elapsed by the machines'
		// fitted library-overhead ratio.
		ratio := 1.0
		if baseT.NBOverhead() > 0 && targetT.NBOverhead() > 0 {
			ratio = targetT.NBOverhead() / baseT.NBOverhead()
		}
		return agg.Elapsed, agg.Elapsed * ratio

	case mpi.RoutineBarrier:
		if baseT.PerOp[mpi.RoutineBarrier] == nil || targetT.PerOp[mpi.RoutineBarrier] == nil {
			rec.Add(quality.Defect{
				Code: quality.DroppedMPIRoutine, Component: quality.Comm, Severity: quality.Major,
				Detail: "MPI_Barrier not measured in the IMB tables; its elapsed treated as pure WaitTime",
			})
			return 0, 0
		}
		base = units.Seconds(agg.Calls) * baseT.BarrierTime()
		target = units.Seconds(agg.Calls) * targetT.BarrierTime()
		return base, target

	default:
		// Direct Eq. 3 lookup per message size.
		imbRoutine := rt
		if rt == mpi.RoutineSend || rt == mpi.RoutineRecv {
			imbRoutine = rt // PingPong table entries exist under Send/Recv
		}
		for _, size := range agg.SortedSizes() {
			se := agg.Sizes[size]
			bt, errB := baseT.Time(imbRoutine, size)
			tt, errT := targetT.Time(imbRoutine, size)
			if errB != nil || errT != nil {
				side := baseT.Machine
				if errB == nil {
					side = targetT.Machine
				}
				rec.Add(quality.Defect{
					Code: quality.DroppedMPIRoutine, Component: quality.Comm, Severity: quality.Major,
					Detail: fmt.Sprintf("%s not in the %s IMB table; its elapsed treated as pure WaitTime", rt, side),
				})
				return 0, 0
			}
			gapCheck(size, false)
			base += units.Seconds(se.Calls) * bt
			target += units.Seconds(se.Calls) * tt
		}
		return base, target
	}
}
