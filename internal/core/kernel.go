package core

import (
	"math"

	"repro/internal/stats"
)

// EvalKernel is the GA surrogate search's objective, compiled once per
// search into flat structure-of-arrays matrices. The fitness closure it
// replaces renormalised the pool rows' contribution per genome and
// recomputed each member's weighted distance to the app on every call —
// ~10⁴ times per ensemble member. The kernel hoists everything that does
// not depend on the genome:
//
//   - pool: the normalised benchmark character vectors, flattened row-major
//     into one contiguous []float64 (row k is benchmark k, stride = metric
//     count) so the per-genome pass is blocked dense arithmetic with no
//     pointer chasing;
//   - memberDist: each benchmark's weighted distance to the app vector,
//     precomputed with the exact stats.WeightedDistance accumulation the
//     closure used, so the member-similarity term is a dot product;
//   - app, weights: the normalised app vector and expanded metric weights.
//
// The per-genome objective is then: one pass over the genome for the
// weight sum, one blocked accumulation of the weighted pool mix into a
// caller-owned scratch row, and one streaming weighted distance of that
// mix to the app. Every floating-point accumulation keeps the original
// evaluation order — k ascending outer, j ascending inner, single
// accumulator for the distance — so projections are byte-identical to the
// pre-kernel path at fixed seeds (pinned by TestEvalKernelMatchesReference).
//
// The kernel is immutable after construction and safe to share across
// concurrent ensemble members; only the scratch row is per-caller.
type EvalKernel struct {
	metrics int       // metric dimensions per row (n)
	benches int       // pool rows (k)
	pool    []float64 // benches×metrics, row-major, normalised
	app     []float64 // metrics
	weights []float64 // metrics

	// memberDist[k] = WeightedDistance(pool row k, app, weights).
	memberDist []float64

	memberPenalty float64
}

// NewEvalKernel compiles the normalised pool, app vector and metric
// weights into an evaluation kernel. The rows of pool must all have
// len(app) entries.
func NewEvalKernel(pool [][]float64, app, weights []float64, memberPenalty float64) *EvalKernel {
	n := len(app)
	e := &EvalKernel{
		metrics:       n,
		benches:       len(pool),
		pool:          make([]float64, len(pool)*n),
		app:           append([]float64(nil), app...),
		weights:       append([]float64(nil), weights...),
		memberDist:    make([]float64, len(pool)),
		memberPenalty: memberPenalty,
	}
	for k, row := range pool {
		copy(e.pool[k*n:(k+1)*n], row)
		e.memberDist[k] = stats.WeightedDistance(row, app, weights)
	}
	return e
}

// Benches returns the pool size (the genome length the kernel expects).
func (e *EvalKernel) Benches() int { return e.benches }

// NewScratch returns a combo row sized for Objective. Each concurrent
// caller needs its own; it carries no state between calls.
func (e *EvalKernel) NewScratch() []float64 { return make([]float64, e.metrics) }

// Objective scores one genome. combo must come from NewScratch (or be any
// []float64 of the kernel's metric count); it is overwritten. The result
// is bitwise-equal to the original closure-based fitness for the same
// genome.
func (e *EvalKernel) Objective(genome, combo []float64) float64 {
	var wsum float64
	for _, w := range genome {
		wsum += w
	}
	if wsum <= 0 {
		return math.Inf(1)
	}
	combo = combo[:e.metrics]
	for j := range combo {
		combo[j] = 0
	}
	var member float64
	for k, w := range genome {
		if w == 0 {
			continue
		}
		f := w / wsum
		row := e.pool[k*e.metrics : (k+1)*e.metrics : (k+1)*e.metrics]
		// Blocked accumulation: each combo[j] is its own accumulator, so
		// unrolling across j changes no addition order. The row reslice
		// pins len(row) == len(combo) for the compiler's bounds checks.
		j := 0
		for ; j+4 <= len(row) && j+4 <= len(combo); j += 4 {
			combo[j] += f * row[j]
			combo[j+1] += f * row[j+1]
			combo[j+2] += f * row[j+2]
			combo[j+3] += f * row[j+3]
		}
		for ; j < len(row) && j < len(combo); j++ {
			combo[j] += f * row[j]
		}
		member += f * e.memberDist[k]
	}
	// Streaming weighted distance of the mix to the app: a single
	// accumulator in j order, exactly as stats.WeightedDistance computes
	// it — blocking this sum would change the bytes.
	var d float64
	app, weights := e.app, e.weights
	for j := range combo {
		diff := combo[j] - app[j]
		d += weights[j] * diff * diff
	}
	return math.Sqrt(d) + e.memberPenalty*member
}
