package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/ga"
	"repro/internal/hpm"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/quality"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/units"
)

// SurrogateTerm is one benchmark in the selected surrogate, with its Eq. 2
// coefficient (normalised so coefficients sum to 1 over the surrogate).
type SurrogateTerm struct {
	Bench  string
	Weight float64
}

// ComputeProjection is the §2.3 output: the surrogate and the projected
// per-task compute time on the target at the characterisation core count.
type ComputeProjection struct {
	// Surrogate is the GA-selected benchmark group, heaviest first.
	Surrogate []SurrogateTerm
	// Fitness is the surrogate's weighted metric distance to the app.
	Fitness float64

	// CharCount is the base core count the characterisation used (Ci*).
	CharCount int
	// BaseTime is the profiled per-task compute time at CharCount.
	BaseTime units.Seconds
	// TargetTime is the projected per-task compute time at CharCount.
	TargetTime units.Seconds

	// GroupWeights are the adjusted metric-group weights (G1..G6), as
	// used in the similarity metric; exposed for reporting.
	GroupWeights [6]float64
	// Ranking is the metric groups (1..6) in descending weight order.
	Ranking [6]int
}

// SpeedupRatio is the surrogate-implied target/base compute-time ratio.
func (cp *ComputeProjection) SpeedupRatio() float64 {
	if cp.BaseTime == 0 {
		return 1
	}
	return cp.TargetTime / cp.BaseTime
}

// surrogateMaxSize caps how many benchmarks a surrogate may combine.
const surrogateMaxSize = 5

// groupContributions relates each metric group to the application's
// runtime on the base machine (§2.3 steps 2–3): the share of base-machine
// cycles (or pressure) each group explains.
func groupContributions(c *hpm.Counters, base *spec.Result) [6]float64 {
	var g [6]float64
	if c.CPI <= 0 {
		return g
	}
	g[0] = c.CPICompletion / c.CPI       // G1 completion
	g[1] = c.CPIStallTotal / c.CPI       // G2 stalls
	g[2] = math.Min(1, c.FPPerInstr*2.5) // G3 FP pressure
	g[3] = c.CPIStallTrans / c.CPI * 4   // G4 translation
	// The paper singles out G5 (data-cache reloads) as "of significant
	// importance" to behaviour matching; emphasise it accordingly.
	g[4] = 2 * c.CPIStallMem / c.CPI   // G5 cache reloads
	g[5] = math.Min(1, c.MemBWGBs/4.0) // G6 bandwidth pressure
	_ = base
	// Normalise to a distribution.
	var sum float64
	for _, v := range g {
		sum += v
	}
	if sum > 0 {
		for i := range g {
			g[i] /= sum
		}
	}
	return g
}

// metricScales returns per-dimension normalisation factors for the
// 26-entry character vector, from the benchmark pool's spread on the base
// machine: each dimension is divided by the pool's mean magnitude so that
// distances compare like with like.
func metricScales(specBase map[string]spec.Result) []float64 {
	n := 2 * hpm.NumMetrics
	scales := make([]float64, n)
	var count float64
	// Sorted iteration: float accumulation order must be stable for the
	// pipeline to be deterministic.
	for _, name := range spec.SortedNames(specBase) {
		r := specBase[name]
		v := r.CharacterVector()
		for i := 0; i < n; i++ {
			scales[i] += math.Abs(v[i])
		}
		count++
	}
	for i := range scales {
		scales[i] /= count
		if scales[i] < 1e-9 {
			scales[i] = 1e-9
		}
	}
	return scales
}

// normalize divides a character vector by the pool scales.
func normalize(v, scales []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] / scales[i]
	}
	return out
}

// adjustWeightsToTarget implements §2.3 step 4: the base-machine group
// ranking is adjusted using benchmark behaviour on both machines. For each
// metric dimension we correlate the pool's (normalised) base-machine metric
// with the pool's base→target log-speedup; dimensions that explain how the
// target diverges from the base gain weight.
func adjustWeightsToTarget(groupW [6]float64, specBase, specTarget map[string]spec.Result, scales []float64) [6]float64 {
	n := 2 * hpm.NumMetrics
	names := spec.SortedNames(specBase)
	// Assemble metric matrix and speedup vector over the pool.
	var speedups []float64
	metric := make([][]float64, 0, len(names))
	for _, name := range names {
		rb := specBase[name]
		rt, ok := specTarget[name]
		if !ok {
			continue
		}
		cv := rb.CharacterVector()
		metric = append(metric, normalize(cv, scales))
		speedups = append(speedups, math.Log(rt.ST.Runtime/rb.ST.Runtime))
	}
	// Per-dimension |correlation| with log speedup.
	corr := make([]float64, n)
	for j := 0; j < n; j++ {
		col := make([]float64, len(metric))
		for i := range metric {
			col[i] = metric[i][j]
		}
		corr[j] = math.Abs(correlation(col, speedups))
	}
	// Average correlations per group (ST and SMT halves share groups).
	var adj [6]float64
	var cnt [6]int
	for j := 0; j < n; j++ {
		grp := hpm.MetricGroupOf(j%hpm.NumMetrics) - 1
		adj[grp] += corr[j]
		cnt[grp]++
	}
	var out [6]float64
	var sum float64
	for gi := range out {
		mean := adj[gi] / float64(cnt[gi])
		out[gi] = groupW[gi] * (0.35 + mean)
		sum += out[gi]
	}
	if sum > 0 {
		for gi := range out {
			out[gi] /= sum
		}
	}
	return out
}

// correlation is the Pearson correlation of two equal-length samples (0 on
// degenerate input).
func correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := stats.Mean(a), stats.Mean(b)
	var saa, sbb, sab float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		saa += da * da
		sbb += db * db
		sab += da * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// metricWeights expands group weights into the 26-dimension weight vector
// used by the similarity metric.
func metricWeights(groupW [6]float64) []float64 {
	n := 2 * hpm.NumMetrics
	w := make([]float64, n)
	var perGroup [6]int
	for j := 0; j < hpm.NumMetrics; j++ {
		perGroup[hpm.MetricGroupOf(j)-1]++
	}
	for j := 0; j < n; j++ {
		grp := hpm.MetricGroupOf(j%hpm.NumMetrics) - 1
		w[j] = groupW[grp] / float64(2*perGroup[grp])
	}
	return w
}

// rankingOf orders groups 1..6 by descending weight.
func rankingOf(groupW [6]float64) [6]int {
	idx := []int{0, 1, 2, 3, 4, 5}
	sort.Slice(idx, func(a, b int) bool {
		if groupW[idx[a]] != groupW[idx[b]] {
			return groupW[idx[a]] > groupW[idx[b]]
		}
		return idx[a] < idx[b]
	})
	var out [6]int
	for i, g := range idx {
		out[i] = g + 1
	}
	return out
}

// ComputeOptions turns off individual steps of the §2.3 pipeline, for the
// ablation benchmarks. The zero value is the full method.
type ComputeOptions struct {
	// SkipRankAdjustment disables step 4 (the base→target adjustment of
	// the metric-group ranking).
	SkipRankAdjustment bool
	// UseNNLS replaces the GA surrogate search (step 5) with a dense
	// non-negative least-squares fit over the whole pool.
	UseNNLS bool
}

// ProjectCompute runs the §2.3 compute projection for the application
// characterised at core count ci (which must be one of the profiled
// counts).
func (p *Pipeline) ProjectCompute(app *AppModel, ci int) (*ComputeProjection, error) {
	return p.ProjectComputeOpts(app, ci, ComputeOptions{})
}

// ProjectComputeOpts is ProjectCompute with ablation switches.
func (p *Pipeline) ProjectComputeOpts(app *AppModel, ci int, opts ComputeOptions) (*ComputeProjection, error) {
	return p.projectComputeCtx(context.Background(), p.Obs, app, ci, opts, nil)
}

// projectComputeCtx is the store-aware entry to the §2.3 compute
// projection: with a layer store and the default options it resolves the
// whole finished projection through the surrogate layer — one entry per
// (base, app, target, characterisation count, warm flag), shared by every
// request that differs only in the projected core count — and otherwise
// computes fresh. Degraded-mode fallbacks (pool intersection, GA
// quarantine, warm start) are recorded on rec (nil-safe); entries replay
// the defects recorded when they were filled, so a served projection is
// indistinguishable from a computed one.
func (p *Pipeline) projectComputeCtx(ctx context.Context, parent *obs.Scope, app *AppModel, ci int, opts ComputeOptions, rec *quality.Report) (*ComputeProjection, error) {
	// An exact checkpoint resume continues each ensemble member's
	// evolution mid-stream and reproduces the uninterrupted computation
	// bit for bit, so — unlike seed resume below — it records no defect.
	// It still computes fresh: its per-member state replaces the cached
	// surrogate artifact wholesale, so reading or publishing the clean
	// content-addressed entries would be wrong in both directions.
	if len(p.resumeCheckpoints) > 0 {
		proj, _, err := p.computeSurrogate(ctx, parent, app, ci, opts, rec, nil, p.resumeCheckpoints)
		return proj, err
	}
	// A resumed search starts from externally supplied checkpoint genomes,
	// which — like any seeding — can change the projected numbers, so it
	// must neither read nor publish the clean content-addressed surrogate
	// entries. It computes fresh and carries a GAResume defect instead.
	if len(p.resumeSeeds) > 0 {
		rec.Add(quality.Defect{
			Code: quality.GAResume, Component: quality.Compute, Severity: quality.Minor,
			Detail: fmt.Sprintf("surrogate search resumed from %d checkpoint genomes", len(p.resumeSeeds)),
		})
		proj, _, err := p.computeSurrogate(ctx, parent, app, ci, opts, rec, p.resumeSeeds, nil)
		return proj, err
	}
	st := p.storeFor()
	if st == nil || opts != (ComputeOptions{}) {
		proj, _, err := p.computeSurrogate(ctx, parent, app, ci, opts, rec, nil, nil)
		return proj, err
	}
	var seeds [][]float64
	var seedCi int
	if p.warmStart {
		seeds, seedCi, _ = st.NearestSurrogateSeeds(p.Base.Name, app.Name(), p.Target.Name, ci)
	}
	e, err := st.surrogateAt(ctx, p.Base.Name, app.Name(), p.Target.Name, ci, p.warmStart, func() (*surrogateEntry, error) {
		// The fill is shared and detached: it runs under the pipeline's
		// own scope and an unbounded context, so the filling request's
		// deadline or span lifetime cannot truncate an artifact other
		// requests will reuse.
		sub := quality.NewReport()
		if len(seeds) > 0 {
			sub.Add(quality.Defect{
				Code: quality.GAWarmStart, Component: quality.Compute, Severity: quality.Minor,
				Detail: fmt.Sprintf("surrogate search warm-started from the cached surrogate at %d ranks", seedCi),
			})
		}
		proj, genomes, err := p.computeSurrogate(context.Background(), p.Obs, app, ci, opts, sub, seeds, nil)
		if err != nil {
			return nil, err
		}
		return &surrogateEntry{cp: proj, defects: sub.Defects(), genomes: genomes}, nil
	})
	if err != nil {
		return nil, err
	}
	rec.AddAll(e.defects)
	return e.cp, nil
}

// computeSurrogate is the §2.3 implementation, with its span attached
// under parent (p.Obs for direct calls, the enclosing projection's span
// when called from project). ctx is checked before each GA ensemble
// member, the expensive stage of the compute projection. seeds, when
// non-empty, warm-start each ensemble member's initial population. The
// second return value is the ensemble's usable best genomes, in member
// order — the warm-start seed material for neighbouring searches. cps,
// when non-nil, carries per-member exact-resume checkpoints (indexed by
// ensemble member; nil members start cold).
func (p *Pipeline) computeSurrogate(ctx context.Context, parent *obs.Scope, app *AppModel, ci int, opts ComputeOptions, rec *quality.Report, seeds [][]float64, cps []*ga.Checkpoint) (*ComputeProjection, [][]float64, error) {
	cp, ok := app.Counters[ci]
	if !ok {
		return nil, nil, fmt.Errorf("core: no counters at %d ranks for %s", ci, app.Name())
	}
	scales := metricScales(p.SpecBase)

	// Steps 2–3: relate metrics to runtime, rank the groups.
	groupW := groupContributions(&cp.ST, nil)
	// Step 4: adjust the ranking to the target.
	if !opts.SkipRankAdjustment {
		groupW = adjustWeightsToTarget(groupW, p.SpecBase, p.SpecTarget, scales)
	}
	weights := metricWeights(groupW)

	appVec := normalize(cp.CharacterVector(), scales)

	// Step 5: GA surrogate search over the pool. The pool is the
	// intersection of the two machines' benchmark sets: a base-only
	// benchmark has no target runtime and cannot contribute to the ratio.
	// On complete data the intersection IS the base pool, so this is the
	// identity there; a shrunk pool was already recorded as a
	// MissingSpecBench defect when the pipeline analysed its data.
	var names []string
	for _, name := range spec.SortedNames(p.SpecBase) {
		if _, ok := p.SpecTarget[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		return nil, nil, fmt.Errorf("core: surrogate pool too small: base and target share %d benchmarks", len(names))
	}
	pool := make([][]float64, len(names))
	for i, name := range names {
		rb := p.SpecBase[name]
		pool[i] = normalize(rb.CharacterVector(), scales)
	}
	// Fitness: the weighted mix must match the app's behaviour, and —
	// because performance ratios do not mix linearly the way metrics do —
	// each member must itself behave like the app (the paper's surrogate
	// is "benchmarks that have similar behavior as the HPC application",
	// not an arbitrary combination that cancels to the right average).
	// The objective is compiled once into an EvalKernel (see kernel.go)
	// shared read-only by the whole ensemble; each member hands the GA a
	// per-slot scratch row so concurrent evaluators never share state.
	const memberPenalty = 1.0
	kern := NewEvalKernel(pool, appVec, weights, memberPenalty)
	if opts.UseNNLS {
		proj, err := p.nnlsProjection(app, ci, pool, appVec, weights, groupW, names)
		return proj, nil, err
	}

	// The GA is stochastic; an ensemble of independent runs stabilises
	// the projected ratio. The best-fitness genome is reported as the
	// surrogate; the ratio is the fitness-weighted ensemble mean. The
	// members are independently seeded, so they run concurrently on the
	// pipeline's pool; their results are combined serially in member
	// order, keeping the floating-point accumulation — and therefore the
	// projection — identical to the serial path.
	sp := parent.Child(fmt.Sprintf("core.compute.%s@%d", app.Name(), ci))
	defer sp.End()
	const ensemble = 3
	// A warm-started member may stop once its best has stalled this many
	// generations: the seeded population starts near a converged optimum,
	// so the full generation budget is mostly dead work. Cold runs always
	// use the full budget — early stopping there would change the bytes
	// of every existing projection.
	const warmStallGenerations = 25
	members := make([]*ga.Result, ensemble)
	err := par.ForEachW(par.Workers(p.Workers), ensemble, func(w, e int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ms := sp.ChildW(fmt.Sprintf("ga.member.%d", e), w)
		defer ms.End()
		// The ensemble is already fanned out; keep each member's own
		// evaluation serial to avoid oversubscription.
		const gaWorkers = 1
		// One scratch row per GA evaluation slot: the kernel itself is
		// shared read-only across the ensemble.
		scratch := make([][]float64, gaWorkers)
		for s := range scratch {
			scratch[s] = kern.NewScratch()
		}
		cfg := ga.Config{
			GenomeLen: len(names),
			MaxActive: surrogateMaxSize,
			Seed:      fmt.Sprintf("surrogate|%s|%s|%d|%d", app.Name(), p.Target.Name, ci, e),
			FitnessW: func(slot int, genome []float64) float64 {
				return kern.Objective(genome, scratch[slot])
			},
			Workers: gaWorkers,
			Obs:     ms,
		}
		if len(seeds) > 0 {
			cfg.Seeds = seeds
			cfg.StallGenerations = warmStallGenerations
		}
		if e < len(cps) && cps[e] != nil {
			cfg.Resume = cps[e]
		}
		if p.onGAProgress != nil {
			member := e
			cfg.OnGeneration = func(gen int, best float64, genome []float64) {
				p.onGAProgress(member, gen, best, genome)
			}
		}
		if p.onGACheckpoint != nil {
			member := e
			cfg.OnCheckpoint = func(cp *ga.Checkpoint) {
				p.onGACheckpoint(member, cp)
			}
		}
		res, err := ga.Run(cfg)
		if err != nil {
			return err
		}
		members[e] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var bestGenome []float64
	bestFitness := math.Inf(1)
	var ratioSum, ratioWeight float64
	var quarantined, unusable int
	var bestGenomes [][]float64
	for _, res := range members {
		quarantined += res.Quarantined
		// A member whose whole population was quarantined (every fitness
		// +Inf) has no meaningful surrogate: skip it rather than poison the
		// ensemble mean with NaN.
		if math.IsInf(res.BestFitness, 1) || math.IsNaN(res.BestFitness) {
			unusable++
			continue
		}
		var wsum, baseMix, targetMix float64
		for _, w := range res.Best {
			wsum += w
		}
		for k, w := range res.Best {
			if w == 0 {
				continue
			}
			f := w / wsum
			name := names[k]
			baseMix += f * p.SpecBase[name].ST.Runtime
			targetMix += f * p.SpecTarget[name].ST.Runtime
		}
		if wsum <= 0 || baseMix <= 0 {
			unusable++
			continue
		}
		bestGenomes = append(bestGenomes, res.Best)
		rw := 1 / (res.BestFitness + 1e-6)
		ratioSum += rw * targetMix / baseMix
		ratioWeight += rw
		if res.BestFitness < bestFitness {
			bestFitness = res.BestFitness
			bestGenome = res.Best
		}
	}
	if ratioWeight <= 0 {
		return nil, nil, fmt.Errorf("core: surrogate search failed: all %d GA ensemble members quarantined", ensemble)
	}
	if quarantined > 0 {
		sev := quality.Minor
		if unusable > 0 {
			sev = quality.Major
		}
		rec.Add(quality.Defect{
			Code: quality.GAQuarantine, Component: quality.Compute, Severity: sev,
			Detail: fmt.Sprintf("%d fitness evaluations quarantined (worst score substituted); %d/%d ensemble members usable",
				quarantined, ensemble-unusable, ensemble),
		})
	}

	// Normalise the best genome's coefficients for reporting (Eq. 2 with
	// the app's base time as the scale).
	var wsum float64
	for _, w := range bestGenome {
		wsum += w
	}
	var terms []SurrogateTerm
	for k, w := range bestGenome {
		if w == 0 {
			continue
		}
		terms = append(terms, SurrogateTerm{Bench: names[k], Weight: w / wsum})
	}
	sort.Slice(terms, func(a, b int) bool {
		if terms[a].Weight != terms[b].Weight {
			return terms[a].Weight > terms[b].Weight
		}
		return terms[a].Bench < terms[b].Bench
	})
	baseTime := app.baseComputeAt(ci)
	proj := &ComputeProjection{
		Surrogate:    terms,
		Fitness:      bestFitness,
		CharCount:    ci,
		BaseTime:     baseTime,
		TargetTime:   baseTime * ratioSum / ratioWeight,
		GroupWeights: groupW,
		Ranking:      rankingOf(groupW),
	}
	sp.Count("core.compute_projections", 1)
	sp.Observe("core.compute_ratio", proj.SpeedupRatio())
	return proj, bestGenomes, nil
}

// CCSM — Compute Component Strong Scaling Model (§3.2): a power-law fit of
// per-task compute time against core count.
type CCSM struct {
	K, P float64 // time(C) = K · C^P
}

// FitCCSM fits the scaling model from the app's base profiles.
func FitCCSM(app *AppModel) (*CCSM, error) {
	xs, ys := app.computeTimes()
	if len(xs) < 2 {
		// A single observation cannot be fitted; assume ideal strong
		// scaling, which is exact for a fixed-work-per-rank split.
		return &CCSM{K: ys[0] * xs[0], P: -1}, nil
	}
	k, pw, err := stats.PowerFit(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("core: CCSM fit: %w", err)
	}
	return &CCSM{K: k, P: pw}, nil
}

// Gamma is the §3.2 scaling factor from core count from → to.
func (m *CCSM) Gamma(from, to int) float64 {
	if from == to {
		return 1
	}
	return math.Pow(float64(to)/float64(from), m.P)
}

// TimeAt evaluates the fitted per-task compute time at a core count.
func (m *CCSM) TimeAt(c int) units.Seconds {
	return m.K * math.Pow(float64(c), m.P)
}

// ACSM — Application Cache Strong Scaling Model (§3.1): extrapolates the
// G5 data-from-L3 metric (m5,2) against log2(core count) to find the core
// count Ch at which the working set drops out of L3 — the hyper-scaling
// point.
type ACSM struct {
	// Ch is the hyper-scaling core count; +Inf when the trend never
	// reaches zero in range.
	Ch float64
	// Valid reports whether a descending trend was found.
	Valid bool
}

// FitACSM extrapolates m5,2 (data from L3 per instruction) over the
// profiled core counts.
func FitACSM(app *AppModel) *ACSM {
	var xs, ys []float64
	for _, c := range app.Counts {
		cp := app.Counters[c]
		xs = append(xs, math.Log2(float64(c)))
		ys = append(ys, cp.ST.DataFromL3)
	}
	// Already contained: the footprint fits below L3 everywhere.
	allZero := true
	for _, y := range ys {
		if y > 1e-9 {
			allZero = false
		}
	}
	if allZero {
		return &ACSM{Ch: float64(app.Counts[0]), Valid: true}
	}
	x0, err := stats.ZeroCrossing(xs, ys)
	if err != nil {
		return &ACSM{Ch: math.Inf(1), Valid: false}
	}
	return &ACSM{Ch: math.Pow(2, x0), Valid: true}
}

// HyperScalesBetween reports whether the cache footprint transition falls
// strictly between two core counts — the regime where the CCSM power law
// is unreliable (§3.3 step 2).
func (a *ACSM) HyperScalesBetween(from, to int) bool {
	if !a.Valid || math.IsInf(a.Ch, 1) {
		return false
	}
	lo, hi := float64(from), float64(to)
	if lo > hi {
		lo, hi = hi, lo
	}
	return a.Ch > lo && a.Ch < hi
}

// MemberDistance is a diagnostic: one benchmark's weighted metric distance
// to an application characterisation, with its base→target runtime ratio.
type MemberDistance struct {
	Bench string
	Dist  float64
	Ratio float64
}

// DebugMemberDistances exposes the surrogate search's view of the pool for
// diagnostics and reporting: each benchmark's distance to the app at the
// given characterisation count, under the adjusted metric weighting.
func DebugMemberDistances(p *Pipeline, app *AppModel, ci int) []MemberDistance {
	cp := app.Counters[ci]
	scales := metricScales(p.SpecBase)
	groupW := groupContributions(&cp.ST, nil)
	groupW = adjustWeightsToTarget(groupW, p.SpecBase, p.SpecTarget, scales)
	weights := metricWeights(groupW)
	appVec := normalize(cp.CharacterVector(), scales)
	var out []MemberDistance
	for _, name := range spec.SortedNames(p.SpecBase) {
		rb := p.SpecBase[name]
		rt, ok := p.SpecTarget[name]
		if !ok {
			continue // base-only benchmark: no target ratio to report
		}
		v := normalize(rb.CharacterVector(), scales)
		out = append(out, MemberDistance{
			Bench: name,
			Dist:  stats.WeightedDistance(v, appVec, weights),
			Ratio: rt.ST.Runtime / rb.ST.Runtime,
		})
	}
	return out
}

// nnlsProjection is the GA ablation baseline: a dense non-negative
// least-squares fit of the app's weighted metric vector over the whole
// pool, with no sparsity and no member-similarity pressure.
func (p *Pipeline) nnlsProjection(app *AppModel, ci int, pool [][]float64, appVec, weights []float64, groupW [6]float64, names []string) (*ComputeProjection, error) {
	// Row-weighted design matrix: rows are metric dimensions, columns
	// benchmarks.
	rows := len(appVec)
	A := make([][]float64, rows)
	b := make([]float64, rows)
	for j := 0; j < rows; j++ {
		w := math.Sqrt(weights[j])
		A[j] = make([]float64, len(pool))
		for k := range pool {
			A[j][k] = w * pool[k][j]
		}
		b[j] = w * appVec[j]
	}
	x, err := stats.NNLS(A, b, 20000)
	if err != nil {
		return nil, err
	}
	var wsum float64
	for _, v := range x {
		wsum += v
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("core: NNLS found no support")
	}
	var baseMix, targetMix float64
	var terms []SurrogateTerm
	for k, v := range x {
		if v <= 1e-9 {
			continue
		}
		f := v / wsum
		baseMix += f * p.SpecBase[names[k]].ST.Runtime
		targetMix += f * p.SpecTarget[names[k]].ST.Runtime
		terms = append(terms, SurrogateTerm{Bench: names[k], Weight: f})
	}
	sort.Slice(terms, func(a, b int) bool {
		if terms[a].Weight != terms[b].Weight {
			return terms[a].Weight > terms[b].Weight
		}
		return terms[a].Bench < terms[b].Bench
	})
	baseTime := app.baseComputeAt(ci)
	return &ComputeProjection{
		Surrogate:    terms,
		Fitness:      stats.Residual(A, x, b),
		CharCount:    ci,
		BaseTime:     baseTime,
		TargetTime:   baseTime * targetMix / baseMix,
		GroupWeights: groupW,
		Ranking:      rankingOf(groupW),
	}, nil
}
