package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ga"
	"repro/internal/quality"
)

// checkpointTap collects the surrogate search's full per-member checkpoint
// streams. Ensemble members run concurrently, so the callback locks.
type checkpointTap struct {
	mu  sync.Mutex
	all map[int][]*ga.Checkpoint
}

func newCheckpointTap() *checkpointTap {
	return &checkpointTap{all: map[int][]*ga.Checkpoint{}}
}

func (c *checkpointTap) fn(member int, cp *ga.Checkpoint) {
	c.mu.Lock()
	c.all[member] = append(c.all[member], cp)
	c.mu.Unlock()
}

// pick returns one checkpoint per member, choosing the stream index with
// sel (given the member's stream length). The result is indexed by member,
// the shape SurrogateCheckpoints expects.
func (c *checkpointTap) pick(t *testing.T, sel func(n int) int) []*ga.Checkpoint {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.all) == 0 {
		t.Fatal("checkpoint tap saw no checkpoints")
	}
	maxMember := 0
	for m := range c.all {
		if m > maxMember {
			maxMember = m
		}
	}
	cps := make([]*ga.Checkpoint, maxMember+1)
	for m, stream := range c.all {
		cps[m] = stream[sel(len(stream))]
	}
	return cps
}

// TestCheckpointResumeProjectionByteIdentical is the projection-level half
// of the crash-recovery contract: tapping OnGACheckpoint changes nothing,
// and resuming the surrogate search from any captured generation — first,
// middle, or last — reproduces the uninterrupted projection bit for bit.
func TestCheckpointResumeProjectionByteIdentical(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)

	ref, err := p.ProjectCompute(app, 8)
	if err != nil {
		t.Fatal(err)
	}

	tap := newCheckpointTap()
	tapped := *p
	tapped.onGACheckpoint = tap.fn
	got, err := tapped.ProjectCompute(app, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("checkpoint tap is not passive:\n got %+v\nwant %+v", got, ref)
	}

	cases := []struct {
		name string
		sel  func(n int) int
	}{
		{"first-gen", func(n int) int { return 0 }},
		{"mid-run", func(n int) int { return n / 2 }},
		{"final-gen", func(n int) int { return n - 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resumed := *p
			resumed.resumeCheckpoints = tap.pick(t, tc.sel)
			rgot, err := resumed.ProjectCompute(app, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rgot, ref) {
				t.Errorf("resumed projection diverged from the uninterrupted run:\n got %+v\nwant %+v", rgot, ref)
			}
		})
	}

	// Partial resume: only member 1 restores from its checkpoint, the rest
	// of the ensemble starts cold — still bit-identical, since a cold start
	// and a gen-0-less resume walk the same RNG stream per member.
	partial := tap.pick(t, func(n int) int { return n / 2 })
	for m := range partial {
		if m != 1 {
			partial[m] = nil
		}
	}
	resumed := *p
	resumed.resumeCheckpoints = partial
	pgot, err := resumed.ProjectCompute(app, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pgot, ref) {
		t.Errorf("partially resumed projection diverged:\n got %+v\nwant %+v", pgot, ref)
	}
}

// TestCheckpointResumeQualityContract separates the two resume paths:
// exact checkpoint resume records no quality defect (it reproduces the
// uninterrupted computation), while the legacy seed resume still carries
// its GAResume marker — and checkpoints take precedence when both are set.
func TestCheckpointResumeQualityContract(t *testing.T) {
	p, _ := sharedPipes(t)
	app := sharedLU(t)

	tap := newCheckpointTap()
	tapped := *p
	tapped.onGACheckpoint = tap.fn
	ref, err := tapped.ProjectCompute(app, 8)
	if err != nil {
		t.Fatal(err)
	}
	cps := tap.pick(t, func(n int) int { return n / 2 })

	hasResume := func(rec *quality.Report) bool {
		for _, d := range rec.Defects() {
			if d.Code == quality.GAResume {
				return true
			}
		}
		return false
	}

	rec := quality.NewReport()
	resumed := *p
	resumed.resumeCheckpoints = cps
	if _, err := resumed.projectComputeCtx(context.Background(), nil, app, 8, ComputeOptions{}, rec); err != nil {
		t.Fatal(err)
	}
	if hasResume(rec) {
		t.Error("exact checkpoint resume recorded a GAResume defect; it must not")
	}

	rec = quality.NewReport()
	seeded := *p
	seeded.resumeSeeds = [][]float64{append([]float64(nil), cps[0].Best...)}
	if _, err := seeded.projectComputeCtx(context.Background(), nil, app, 8, ComputeOptions{}, rec); err != nil {
		t.Fatal(err)
	}
	if !hasResume(rec) {
		t.Error("seed resume must record a GAResume defect")
	}

	// Precedence: with both set, the exact path wins — no defect, and the
	// result matches the uninterrupted run.
	rec = quality.NewReport()
	both := *p
	both.resumeCheckpoints = cps
	both.resumeSeeds = [][]float64{append([]float64(nil), cps[0].Best...)}
	proj, err := both.projectComputeCtx(context.Background(), nil, app, 8, ComputeOptions{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if hasResume(rec) {
		t.Error("checkpoints must take precedence over seeds, without a defect")
	}
	if !reflect.DeepEqual(proj, ref) {
		t.Errorf("precedence path diverged from the uninterrupted run:\n got %+v\nwant %+v", proj, ref)
	}
}
