package imb

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/mpi"
	"repro/internal/units"
)

// smallSizes keeps unit-test sweeps fast.
func smallSizes() []units.Bytes { return units.Pow2Sizes(16, 64*units.KiB) }

func runTable(t *testing.T, machine string, ranks int) *Table {
	t.Helper()
	tab, err := Run(arch.MustGet(machine), ranks, smallSizes())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRunProducesAllRoutines(t *testing.T) {
	tab := runTable(t, arch.Hydra, 8)
	want := []mpi.Routine{
		mpi.RoutineSend, mpi.RoutineRecv, mpi.RoutineSendrecv,
		mpi.RoutineBcast, mpi.RoutineReduce, mpi.RoutineAllreduce,
		mpi.RoutineAllgather, mpi.RoutineAlltoall, mpi.RoutineBarrier,
	}
	for _, rt := range want {
		if _, ok := tab.PerOp[rt]; !ok {
			t.Errorf("routine %s missing from table", rt)
		}
	}
	for _, size := range smallSizes() {
		if v := tab.PerOp[mpi.RoutineBcast][size]; v <= 0 {
			t.Errorf("bcast at %d B: non-positive time %v", size, v)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(arch.MustGet(arch.Hydra), 1, nil); err == nil {
		t.Error("1 rank must fail")
	}
	if _, err := Run(arch.MustGet(arch.Power6), 4096, nil); err == nil {
		t.Error("oversubscription must fail")
	}
}

func TestTimesGrowWithSize(t *testing.T) {
	tab := runTable(t, arch.Westmere, 12)
	for _, rt := range []mpi.Routine{mpi.RoutineSendrecv, mpi.RoutineAllreduce, mpi.RoutineAlltoall} {
		small := tab.PerOp[rt][16]
		big := tab.PerOp[rt][64*units.KiB]
		if big <= small {
			t.Errorf("%s: time must grow with size (%v vs %v)", rt, small, big)
		}
	}
}

func TestEq1FitSane(t *testing.T) {
	tab := runTable(t, arch.Power6, 8) // 8 ranks on a 32-core node: single node
	if tab.NBOverhead() < 0 {
		t.Errorf("negative overhead %v", tab.NBOverhead())
	}
	// In-flight time must grow with size and always be positive.
	prev := units.Seconds(0)
	for _, size := range smallSizes() {
		inf := tab.NBIntra.InFlight[size]
		if inf <= 0 {
			t.Fatalf("intra in-flight at %dB = %v", size, inf)
		}
		if inf < prev*(1-1e-9) {
			t.Errorf("in-flight shrank with size at %dB: %v < %v", size, inf, prev)
		}
		prev = inf
		// Single-node job: the inter fit falls back to the intra fit.
		if tab.NBInter.InFlight[size] != inf {
			t.Errorf("single-node job must reuse the intra fit at %dB", size)
		}
	}
	// TransferNB must be monotone in the succession counts.
	if tab.TransferNB(4096, 4, 0) <= tab.TransferNB(4096, 1, 0) {
		t.Error("Eq. 1 must grow with in-flight count")
	}
}

func TestEq1IntraVsInter(t *testing.T) {
	// On a genuinely multi-node job, cross-node successions must cost
	// more per message than same-node ones at large sizes.
	tab := runTable(t, arch.BlueGene, 16) // 4 nodes of 4
	size := units.Bytes(64 * units.KiB)
	if tab.InFlightInter(size) <= tab.InFlightIntra(size) {
		t.Errorf("inter in-flight %v should exceed intra %v",
			tab.InFlightInter(size), tab.InFlightIntra(size))
	}
}

func TestInterpolationBetweenGridPoints(t *testing.T) {
	tab := runTable(t, arch.Hydra, 8)
	lo, _ := tab.Time(mpi.RoutineSendrecv, 1024)
	mid, _ := tab.Time(mpi.RoutineSendrecv, 1500)
	hi, _ := tab.Time(mpi.RoutineSendrecv, 2048)
	const eps = 1e-9 // relative float tolerance
	if mid < lo*(1-eps) || hi < mid*(1-eps) {
		t.Errorf("interpolation not monotone: %v %v %v", lo, mid, hi)
	}
	if _, err := tab.Time(mpi.Routine("MPI_Nope"), 64); err == nil {
		t.Error("unknown routine must error")
	}
}

func TestBarrierTime(t *testing.T) {
	tab := runTable(t, arch.Hydra, 16)
	if tab.BarrierTime() <= 0 {
		t.Error("barrier time missing")
	}
}

func TestCollectivesScaleWithRanks(t *testing.T) {
	small := runTable(t, arch.Hydra, 4)
	big := runTable(t, arch.Hydra, 64)
	s := small.PerOp[mpi.RoutineAllreduce][4*units.KiB]
	b := big.PerOp[mpi.RoutineAllreduce][4*units.KiB]
	if b <= s {
		t.Errorf("allreduce must cost more at 64 ranks: %v vs %v", s, b)
	}
}

func TestBlueGeneCollectivesFlat(t *testing.T) {
	small := runTable(t, arch.BlueGene, 16)
	big := runTable(t, arch.BlueGene, 256)
	s := small.PerOp[mpi.RoutineBcast][4*units.KiB]
	b := big.PerOp[mpi.RoutineBcast][4*units.KiB]
	if b > 2*s {
		t.Errorf("BG/P tree bcast should be near-flat in ranks: 16→%v 256→%v", s, b)
	}
}

func TestDeterministicTables(t *testing.T) {
	a := runTable(t, arch.Westmere, 12)
	b := runTable(t, arch.Westmere, 12)
	for rt, sizes := range a.PerOp {
		for size, v := range sizes {
			if b.PerOp[rt][size] != v {
				t.Fatalf("nondeterministic measurement: %s@%dB %v vs %v", rt, size, v, b.PerOp[rt][size])
			}
		}
	}
	if a.NBOverhead() != b.NBOverhead() {
		t.Error("nondeterministic Eq. 1 fit")
	}
}

func TestPairPartner(t *testing.T) {
	cases := []struct{ id, ranks, want int }{
		{0, 8, 4}, {4, 8, 0}, {3, 8, 7},
		{0, 2, 1}, {1, 2, 0},
		{6, 7, -1}, // 7 ranks: half=3, pairs cover 0..5, rank 6 sits out
		{5, 7, 2},
		{0, 1, -1},
	}
	for _, c := range cases {
		if got := pairDistant(c.id, c.ranks); got != c.want {
			t.Errorf("pairDistant(%d,%d) = %d, want %d", c.id, c.ranks, got, c.want)
		}
	}
	// Pairing is symmetric where defined.
	for ranks := 2; ranks <= 9; ranks++ {
		for id := 0; id < ranks; id++ {
			p := pairDistant(id, ranks)
			if p >= 0 && pairDistant(p, ranks) != id {
				t.Errorf("pairing not symmetric at id=%d ranks=%d", id, ranks)
			}
		}
	}
}

func TestFasterNetworkFasterTable(t *testing.T) {
	// Westmere's QDR InfiniBand beats Hydra's Federation on latency and
	// bandwidth; its point-to-point table entries should be faster.
	hy := runTable(t, arch.Hydra, 32)
	wm := runTable(t, arch.Westmere, 32)
	hyT, _ := hy.Time(mpi.RoutineSendrecv, 64*units.KiB)
	wmT, _ := wm.Time(mpi.RoutineSendrecv, 64*units.KiB)
	if wmT >= hyT {
		t.Errorf("QDR should beat Federation: %v vs %v", wmT, hyT)
	}
}

func TestPingPingAndExchangeMeasured(t *testing.T) {
	tab := runTable(t, arch.Hydra, 8)
	for _, rt := range []mpi.Routine{PingPing, Exchange} {
		for _, size := range smallSizes() {
			v := tab.PerOp[rt][size]
			if v <= 0 {
				t.Fatalf("%s at %dB: non-positive time %v", rt, size, v)
			}
		}
	}
	// Exchange moves four messages per op vs PingPing's two; at large
	// sizes it must cost more.
	big := smallSizes()[len(smallSizes())-1]
	if tab.PerOp[Exchange][big] <= tab.PerOp[PingPing][big] {
		t.Errorf("Exchange (%v) should cost more than PingPing (%v) at %d B",
			tab.PerOp[Exchange][big], tab.PerOp[PingPing][big], big)
	}
	// And both are non-blocking patterns: dearer than half a PingPong.
	if tab.PerOp[PingPing][big] <= tab.PerOp[mpi.RoutineSend][big] {
		t.Errorf("PingPing should cost at least a one-way send")
	}
}

// TestInterpSizeSkipsNonPositive is the regression test for the 1e-12
// substitution bug: a single zero (or negative) sample used to be replaced
// by 1e-12 before the log-log fit, bending the interpolated curve through
// an absurd point and poisoning every query near it. Non-positive samples
// must instead be skipped, so interpolation bridges their neighbours.
func TestInterpSizeSkipsNonPositive(t *testing.T) {
	grid := []units.Bytes{1024, 2048, 4096}
	m := map[units.Bytes]units.Seconds{
		1024: 1e-5,
		2048: 0, // corrupt sample: must be ignored, not clamped to 1e-12
		4096: 4e-5,
	}
	// Exactly on the corrupt grid point: with the bug this returned 1e-12;
	// now it log-log interpolates between the healthy neighbours, landing
	// geometrically between them.
	got := interpSize(grid, m, 2048)
	if got < 1e-5 || got > 4e-5 {
		t.Errorf("interpSize at corrupt point = %v, want within [1e-5, 4e-5]", got)
	}
	// Near the corrupt point the curve must stay monotone over the healthy
	// bracket rather than diving toward the placeholder.
	lo := interpSize(grid, m, 1500)
	hi := interpSize(grid, m, 3000)
	if !(lo >= 1e-5 && lo <= got && got <= hi && hi <= 4e-5) {
		t.Errorf("interpolation not monotone across corrupt sample: %v %v %v", lo, got, hi)
	}
	// Negative samples are equally skipped.
	m[2048] = -3
	if again := interpSize(grid, m, 2048); again != got {
		t.Errorf("negative sample handled differently from zero: %v vs %v", again, got)
	}
	// All samples corrupt: nothing to fit, return 0.
	all := map[units.Bytes]units.Seconds{1024: 0, 2048: -1}
	if v := interpSize(grid, all, 2048); v != 0 {
		t.Errorf("all-non-positive table should yield 0, got %v", v)
	}
}
