// Package imb implements the Intel MPI Benchmarks suite of the paper —
// PingPong, PingPing, Sendrecv, Exchange and the collective benchmarks —
// plus the paper's custom multi-Sendrecv benchmark (§2.2), on top of the
// discrete-event MPI simulator.
//
// Its product is the Eq. 3 target-machine parameter table
//
//	P_Cj(m_i, S_k)
//
// — the time of MPI routine m_i at message size S_k and core count C_j —
// which SWAPP's communication projection maps application profiles onto.
// multi-Sendrecv additionally parameterises the non-blocking path per
// Eq. 1: issuing x successions of Isend/Irecv followed by a Waitall and
// fitting T(x) = T_LibraryOverhead + x·T_inFlight over x.
package imb

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/units"
)

// DefaultSizes is the power-of-two message grid the suite sweeps, 4 B to
// 1 MiB.
func DefaultSizes() []units.Bytes { return units.Pow2Sizes(4, 1*units.MiB) }

// Synthetic routine labels for IMB patterns that have no single MPI
// routine name. They appear as PerOp table keys alongside the real
// routines.
const (
	// PingPing is the simultaneous bidirectional point-to-point pattern.
	PingPing mpi.Routine = "IMB_PingPing"
	// Exchange is the two-neighbour halo pattern.
	Exchange mpi.Routine = "IMB_Exchange"
)

// iterations per (benchmark, size) measurement. The simulator is
// deterministic, so a handful suffices to average out pipeline fill.
const iterations = 4

// multiXs are the in-flight depths multi-Sendrecv sweeps for the Eq. 1 fit.
var multiXs = []int{1, 2, 4, 8}

// NBFit is one Eq. 1 parameterisation of the non-blocking
// Isend/Irecv/Waitall path, fitted from multi-Sendrecv:
// T(x, S) = Overhead + x·InFlight[S].
type NBFit struct {
	Overhead units.Seconds
	InFlight map[units.Bytes]units.Seconds
}

// Table is the benchmark output for one (machine, core count): the Eq. 3
// parameters plus the Eq. 1 non-blocking decomposition. Following IMB's
// cluster detection, the non-blocking path is parameterised twice: for
// pairs sharing a node (intra) and pairs on different nodes (inter).
type Table struct {
	Machine string
	Ranks   int
	Sizes   []units.Bytes

	// PerOp[routine][size] is the measured per-operation time.
	PerOp map[mpi.Routine]map[units.Bytes]units.Seconds

	// NBIntra and NBInter are the Eq. 1 fits for same-node and
	// cross-node partners. On single-node jobs both hold the intra fit.
	NBIntra NBFit
	NBInter NBFit
}

// Time looks up (log-log interpolating over the size grid) the per-op time
// of a routine at an arbitrary message size.
func (t *Table) Time(routine mpi.Routine, size units.Bytes) (units.Seconds, error) {
	m, ok := t.PerOp[routine]
	if !ok {
		return 0, fmt.Errorf("imb: routine %s not measured on %s/%d", routine, t.Machine, t.Ranks)
	}
	return interpSize(t.Sizes, m, size), nil
}

// InFlightIntra interpolates the intra-node Eq. 1 per-message in-flight
// time at a size.
func (t *Table) InFlightIntra(size units.Bytes) units.Seconds {
	return interpSize(t.Sizes, t.NBIntra.InFlight, size)
}

// InFlightInter interpolates the inter-node Eq. 1 per-message in-flight
// time at a size.
func (t *Table) InFlightInter(size units.Bytes) units.Seconds {
	return interpSize(t.Sizes, t.NBInter.InFlight, size)
}

// NBOverhead is the per-call software overhead of the non-blocking path
// (Eq. 1's T_LibraryOverhead) — a software cost, taken from the intra fit.
func (t *Table) NBOverhead() units.Seconds { return t.NBIntra.Overhead }

// TransferNB prices a non-blocking exchange per Eq. 1, with xIntra
// same-node and xInter cross-node message successions of the given size.
func (t *Table) TransferNB(size units.Bytes, xIntra, xInter float64) units.Seconds {
	return t.NBOverhead() + xIntra*t.InFlightIntra(size) + xInter*t.InFlightInter(size)
}

// interpSize log-log interpolates a size-keyed table. Non-positive samples
// are skipped rather than substituted: log-log needs positive values, and a
// placeholder like 1e-12 would bend the fitted curve through an absurd
// point, poisoning every query between the zero sample's neighbours. The
// persist decoders already reject non-positive timings on load, but tables
// built directly by Run (or by hand in tests) bypass that validation.
func interpSize(grid []units.Bytes, m map[units.Bytes]units.Seconds, size units.Bytes) units.Seconds {
	xs := make([]float64, 0, len(grid))
	ys := make([]float64, 0, len(grid))
	for _, s := range grid {
		v, ok := m[s]
		if !ok || v <= 0 {
			continue
		}
		xs = append(xs, float64(s))
		ys = append(ys, v)
	}
	if len(xs) == 0 {
		return 0
	}
	if size < 1 {
		size = 1
	}
	return stats.LogLogInterp(xs, ys, float64(size))
}

// gridGap reports whether a lookup at size in the size-keyed table m had
// to bridge a hole in the declared grid. With every declared size covered
// by a positive sample the answer is always false — the clean path —
// including queries outside the grid range, which clamp to the edge sample
// by design. With holes, a query is degraded when either declared
// bracketing neighbour (or the relevant edge) is uncovered, because the
// interpolation then stretched over missing measurements.
func gridGap(grid []units.Bytes, m map[units.Bytes]units.Seconds, size units.Bytes) bool {
	if len(grid) == 0 || len(m) == 0 {
		return false
	}
	covered := make([]bool, len(grid))
	all := true
	any := false
	for i, s := range grid {
		if v, ok := m[s]; ok && v > 0 {
			covered[i] = true
			any = true
		} else {
			all = false
		}
	}
	if all {
		return false
	}
	if !any {
		return true
	}
	if size <= grid[0] {
		return !covered[0]
	}
	if size >= grid[len(grid)-1] {
		return !covered[len(grid)-1]
	}
	// sort.Search finds the smallest declared size >= size.
	hi := sort.Search(len(grid), func(i int) bool { return grid[i] >= size })
	if grid[hi] == size {
		return !covered[hi]
	}
	return !covered[hi-1] || !covered[hi]
}

// CoverageGap reports whether a Time lookup for routine at size had to
// extrapolate across a hole in the declared size grid (a degraded answer
// worth a quality defect). A routine absent from the table is not a grid
// gap — that is a missing-routine defect, recorded elsewhere. Routines
// measured off-grid (Barrier, at size 0) never report gaps.
func (t *Table) CoverageGap(routine mpi.Routine, size units.Bytes) bool {
	m, ok := t.PerOp[routine]
	if !ok {
		return false
	}
	if routine == mpi.RoutineBarrier {
		return false
	}
	return gridGap(t.Sizes, m, size)
}

// NBGap reports whether the Eq. 1 non-blocking in-flight lookups at size
// bridge a hole in either the intra- or inter-node fit's size grid.
func (t *Table) NBGap(size units.Bytes) bool {
	return gridGap(t.Sizes, t.NBIntra.InFlight, size) || gridGap(t.Sizes, t.NBInter.InFlight, size)
}

// TruncatedAbove returns a deep copy of the table with every sample at a
// message size strictly greater than max removed, while keeping the
// declared Sizes grid intact — the shape of a sweep that was cut short,
// used by fault injection and partial-data tests. Lookups above max then
// clamp to the largest surviving sample and CoverageGap reports them.
func (t *Table) TruncatedAbove(max units.Bytes) *Table {
	cp := &Table{
		Machine: t.Machine,
		Ranks:   t.Ranks,
		Sizes:   append([]units.Bytes(nil), t.Sizes...),
		PerOp:   map[mpi.Routine]map[units.Bytes]units.Seconds{},
		NBIntra: NBFit{Overhead: t.NBIntra.Overhead, InFlight: map[units.Bytes]units.Seconds{}},
		NBInter: NBFit{Overhead: t.NBInter.Overhead, InFlight: map[units.Bytes]units.Seconds{}},
	}
	for rt, m := range t.PerOp {
		nm := map[units.Bytes]units.Seconds{}
		for s, v := range m {
			if s <= max {
				nm[s] = v
			}
		}
		cp.PerOp[rt] = nm
	}
	for s, v := range t.NBIntra.InFlight {
		if s <= max {
			cp.NBIntra.InFlight[s] = v
		}
	}
	for s, v := range t.NBInter.InFlight {
		if s <= max {
			cp.NBInter.InFlight[s] = v
		}
	}
	return cp
}

// Routines lists the measured routines in deterministic order.
func (t *Table) Routines() []mpi.Routine {
	out := make([]mpi.Routine, 0, len(t.PerOp))
	for rt := range t.PerOp {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Run executes the full suite on machine m with the given rank count and
// size grid (nil for DefaultSizes) and returns the parameter table.
func Run(m *arch.Machine, ranks int, sizes []units.Bytes) (*Table, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("imb: need at least 2 ranks, got %d", ranks)
	}
	if sizes == nil {
		sizes = DefaultSizes()
	}
	t := &Table{
		Machine: m.Name,
		Ranks:   ranks,
		Sizes:   sizes,
		PerOp:   map[mpi.Routine]map[units.Bytes]units.Seconds{},
		NBIntra: NBFit{InFlight: map[units.Bytes]units.Seconds{}},
		NBInter: NBFit{InFlight: map[units.Bytes]units.Seconds{}},
	}
	multiNode := m.NodesFor(ranks) > 1

	put := func(rt mpi.Routine, size units.Bytes, v units.Seconds) {
		if t.PerOp[rt] == nil {
			t.PerOp[rt] = map[units.Bytes]units.Seconds{}
		}
		t.PerOp[rt][size] = v
	}

	for _, size := range sizes {
		size := size
		// --- blocking point-to-point: PingPong (half round trip). ---
		pp, err := measure(m, ranks, func(r *mpi.Rank) {
			partner := pairDistant(r.ID(), ranks)
			if partner < 0 {
				return
			}
			for i := 0; i < iterations; i++ {
				if r.ID() < partner {
					r.Send(partner, size, i)
					r.Recv(partner, size, i)
				} else {
					r.Recv(partner, size, i)
					r.Send(partner, size, i)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		put(mpi.RoutineSend, size, pp/(2*iterations))
		put(mpi.RoutineRecv, size, pp/(2*iterations))

		// --- PingPing: both partners send simultaneously. ---
		pping, err := measure(m, ranks, func(r *mpi.Rank) {
			partner := pairDistant(r.ID(), ranks)
			if partner < 0 {
				return
			}
			for i := 0; i < iterations; i++ {
				s := r.Isend(partner, size, i)
				v := r.Irecv(partner, size, i)
				r.Waitall(s, v)
			}
		})
		if err != nil {
			return nil, err
		}
		put(PingPing, size, pping/iterations)

		// --- Exchange: both ring neighbours, IMB's halo pattern. ---
		exch, err := measure(m, ranks, func(r *mpi.Rank) {
			next := (r.ID() + 1) % r.Size()
			prev := (r.ID() + r.Size() - 1) % r.Size()
			for i := 0; i < iterations; i++ {
				a := r.Irecv(prev, size, i)
				b := r.Irecv(next, size, 100000+i)
				c := r.Isend(next, size, i)
				d := r.Isend(prev, size, 100000+i)
				r.Waitall(a, b, c, d)
			}
		})
		if err != nil {
			return nil, err
		}
		put(Exchange, size, exch/iterations)

		// --- Sendrecv ring. ---
		sr, err := measure(m, ranks, func(r *mpi.Rank) {
			next := (r.ID() + 1) % r.Size()
			prev := (r.ID() + r.Size() - 1) % r.Size()
			for i := 0; i < iterations; i++ {
				r.Sendrecv(next, size, prev, size, i)
			}
		})
		if err != nil {
			return nil, err
		}
		put(mpi.RoutineSendrecv, size, sr/iterations)

		// --- collectives. ---
		colls := []struct {
			rt mpi.Routine
			op func(r *mpi.Rank)
		}{
			{mpi.RoutineBcast, func(r *mpi.Rank) { r.Bcast(0, size) }},
			{mpi.RoutineReduce, func(r *mpi.Rank) { r.Reduce(0, size) }},
			{mpi.RoutineAllreduce, func(r *mpi.Rank) { r.Allreduce(size) }},
			{mpi.RoutineAllgather, func(r *mpi.Rank) { r.Allgather(size) }},
			{mpi.RoutineAlltoall, func(r *mpi.Rank) { r.Alltoall(size) }},
		}
		for _, c := range colls {
			c := c
			el, err := measure(m, ranks, func(r *mpi.Rank) {
				for i := 0; i < iterations; i++ {
					c.op(r)
				}
			})
			if err != nil {
				return nil, err
			}
			put(c.rt, size, el/iterations)
		}

		// --- multi-Sendrecv: x in-flight Isend/Irecv pairs + Waitall,
		// measured for same-node pairs and (when the job spans nodes)
		// cross-node pairs — IMB's intra/inter cluster modes. ---
		a, b, err := multiSendrecvFit(m, ranks, size, pairAdjacent)
		if err != nil {
			return nil, fmt.Errorf("imb: multi-Sendrecv intra fit at %d B: %w", size, err)
		}
		t.NBIntra.Overhead = a
		t.NBIntra.InFlight[size] = b
		if multiNode {
			a, b, err = multiSendrecvFit(m, ranks, size, pairDistant)
			if err != nil {
				return nil, fmt.Errorf("imb: multi-Sendrecv inter fit at %d B: %w", size, err)
			}
		}
		t.NBInter.Overhead = a
		t.NBInter.InFlight[size] = b
	}

	// --- Barrier (size-independent). ---
	bar, err := measure(m, ranks, func(r *mpi.Rank) {
		for i := 0; i < iterations; i++ {
			r.Barrier()
		}
	})
	if err != nil {
		return nil, err
	}
	put(mpi.RoutineBarrier, 0, bar/iterations)

	return t, nil
}

// pairDistant pairs rank i with i±half (IMB's cross-cluster pattern: on a
// multi-node job the partners land on different nodes). Odd trailing ranks
// sit out.
func pairDistant(id, ranks int) int {
	half := ranks / 2
	if half == 0 {
		return -1
	}
	if id < half {
		return id + half
	}
	if id < 2*half {
		return id - half
	}
	return -1
}

// pairAdjacent pairs even rank i with i+1 (same node whenever a node holds
// at least two ranks): IMB's intra-cluster pattern.
func pairAdjacent(id, ranks int) int {
	if id%2 == 0 {
		if id+1 < ranks {
			return id + 1
		}
		return -1
	}
	return id - 1
}

// multiSendrecvFit measures the multi-Sendrecv benchmark over the x sweep
// with the given pairing and returns the Eq. 1 (overhead, in-flight) fit.
func multiSendrecvFit(m *arch.Machine, ranks int, size units.Bytes, pairing func(id, ranks int) int) (a, b units.Seconds, err error) {
	var xTimes []float64
	for _, x := range multiXs {
		x := x
		el, err := measure(m, ranks, func(r *mpi.Rank) {
			partner := pairing(r.ID(), ranks)
			if partner < 0 {
				return
			}
			for i := 0; i < iterations; i++ {
				reqs := make([]*mpi.Request, 0, 2*x)
				for j := 0; j < x; j++ {
					reqs = append(reqs, r.Isend(partner, size, i*x+j))
					reqs = append(reqs, r.Irecv(partner, size, i*x+j))
				}
				r.Waitall(reqs...)
			}
		})
		if err != nil {
			return 0, 0, err
		}
		xTimes = append(xTimes, el/iterations)
	}
	xs := make([]float64, len(multiXs))
	for i, x := range multiXs {
		xs[i] = float64(x)
	}
	a, b, err = stats.LinearFit(xs, xTimes)
	if err != nil {
		return 0, 0, err
	}
	if a < 0 {
		a = 0
	}
	if b <= 0 {
		b = xTimes[0] // degenerate fit: fall back to the x=1 time
	}
	return a, b, nil
}

// measure runs program on a fresh world and returns the makespan.
func measure(m *arch.Machine, ranks int, program func(r *mpi.Rank)) (units.Seconds, error) {
	w, err := mpi.NewWorld(m, ranks)
	if err != nil {
		return 0, err
	}
	return w.Run(program)
}

// BarrierTime is a convenience accessor for the size-independent barrier
// measurement.
func (t *Table) BarrierTime() units.Seconds {
	if m, ok := t.PerOp[mpi.RoutineBarrier]; ok {
		return m[0]
	}
	return 0
}
