package ga

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// sameResult asserts bit-exact agreement on the resumable parts of a
// Result: Best, BestFitness, History, Generations. (Evaluations/CacheHits
// are per-process bookkeeping and legitimately differ across a resume.)
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Generations != want.Generations {
		t.Errorf("%s: Generations = %d, want %d", label, got.Generations, want.Generations)
	}
	if math.Float64bits(got.BestFitness) != math.Float64bits(want.BestFitness) {
		t.Errorf("%s: BestFitness = %v, want %v", label, got.BestFitness, want.BestFitness)
	}
	if len(got.Best) != len(want.Best) {
		t.Fatalf("%s: Best length %d, want %d", label, len(got.Best), len(want.Best))
	}
	for i := range want.Best {
		if math.Float64bits(got.Best[i]) != math.Float64bits(want.Best[i]) {
			t.Errorf("%s: Best[%d] = %v, want %v", label, i, got.Best[i], want.Best[i])
		}
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: History length %d, want %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		if math.Float64bits(got.History[i]) != math.Float64bits(want.History[i]) {
			t.Errorf("%s: History[%d] = %v, want %v", label, i, got.History[i], want.History[i])
		}
	}
}

func checkpointConfig() Config {
	return Config{
		GenomeLen:   12,
		MaxActive:   4,
		PopSize:     24,
		Generations: 30,
		Seed:        "checkpoint",
		Fitness:     sphere([]float64{0.4, 0, 0.9, 0, 0, 0.2, 0, 0, 0, 0.7, 0, 0}),
	}
}

// TestCheckpointResumeExact is the contract at the heart of crash
// recovery: resuming from ANY captured checkpoint — first, middle, or
// last generation — reproduces the uninterrupted run's result
// bit-for-bit, at every worker count.
func TestCheckpointResumeExact(t *testing.T) {
	var cps []*Checkpoint
	cfg := checkpointConfig()
	cfg.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != want.Generations {
		t.Fatalf("captured %d checkpoints, ran %d generations", len(cps), want.Generations)
	}
	for _, gen := range []int{0, len(cps) / 2, len(cps) - 1} {
		cp := cps[gen]
		if cp.Gen != gen {
			t.Fatalf("checkpoint %d records Gen %d", gen, cp.Gen)
		}
		for _, workers := range []int{1, 4} {
			rcfg := checkpointConfig()
			rcfg.Resume = cp
			rcfg.Workers = workers
			got, err := Run(rcfg)
			if err != nil {
				t.Fatalf("resume from gen %d (workers %d): %v", gen, workers, err)
			}
			sameResult(t, "resume@"+string(rune('0'+gen%10)), got, want)
		}
	}
}

// TestCheckpointJSONRoundTrip pins the durability format: a checkpoint
// that travelled through encoding/json resumes as exactly as the live
// object — float64 values survive the text round-trip bit-for-bit.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	var cps []*Checkpoint
	cfg := checkpointConfig()
	cfg.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cps[len(cps)/3])
	if err != nil {
		t.Fatal(err)
	}
	decoded := new(Checkpoint)
	if err := json.Unmarshal(raw, decoded); err != nil {
		t.Fatal(err)
	}
	rcfg := checkpointConfig()
	rcfg.Resume = decoded
	got, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "json round-trip", got, want)
}

// TestCheckpointPassive proves the tap is free of side effects: a run
// observed by OnCheckpoint is bit-identical to an unobserved one, and
// mutating a captured checkpoint afterwards cannot reach into the live
// population.
func TestCheckpointPassive(t *testing.T) {
	plain, err := Run(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := checkpointConfig()
	cfg.OnCheckpoint = func(cp *Checkpoint) {
		// Vandalise everything the callback is handed; a non-cloned
		// implementation would corrupt the evolution.
		for i := range cp.Pop {
			for j := range cp.Pop[i] {
				cp.Pop[i][j] = math.NaN()
			}
		}
		for i := range cp.Best {
			cp.Best[i] = -1
		}
		for i := range cp.History {
			cp.History[i] = 0
		}
	}
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "observed vs plain", observed, plain)
}

// TestCheckpointResumeStall covers the early-stop interplay: a stalled
// run's own final checkpoint resumes to the identical finished result
// (no extra generations), and a mid-run checkpoint resumes through the
// stall cutoff to the same early stop.
func TestCheckpointResumeStall(t *testing.T) {
	var cps []*Checkpoint
	cfg := checkpointConfig()
	cfg.Generations = 200
	cfg.StallGenerations = 8
	cfg.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Generations >= 200 {
		t.Fatalf("stall cutoff never fired (%d generations)", want.Generations)
	}
	for _, gen := range []int{1, len(cps) - 1} {
		rcfg := checkpointConfig()
		rcfg.Generations = 200
		rcfg.StallGenerations = 8
		rcfg.Resume = cps[gen]
		got, err := Run(rcfg)
		if err != nil {
			t.Fatalf("resume from gen %d: %v", gen, err)
		}
		sameResult(t, "stalled resume", got, want)
	}
}

// TestCheckpointResumePrecedence: Resume wins over Seeds — the
// warm-start injection must not disturb an exact resume.
func TestCheckpointResumePrecedence(t *testing.T) {
	var cps []*Checkpoint
	cfg := checkpointConfig()
	cfg.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := checkpointConfig()
	rcfg.Resume = cps[len(cps)/2]
	rcfg.Seeds = [][]float64{{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}}
	got, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resume with seeds present", got, want)
}

// TestCheckpointValidate rejects checkpoints whose shape cannot have
// come from the configured run.
func TestCheckpointValidate(t *testing.T) {
	var cps []*Checkpoint
	cfg := checkpointConfig()
	cfg.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	good := cps[3]
	cases := []struct {
		name    string
		mutate  func(cp *Checkpoint)
		wantSub string
	}{
		{"population size", func(cp *Checkpoint) { cp.Pop = cp.Pop[:len(cp.Pop)-1] }, "population"},
		{"genome length", func(cp *Checkpoint) { cp.Pop[2] = cp.Pop[2][:5] }, "genome 2"},
		{"best length", func(cp *Checkpoint) { cp.Best = cp.Best[:3] }, "best genome"},
		{"negative gen", func(cp *Checkpoint) { cp.Gen = -1 }, "generation"},
		{"gen past end", func(cp *Checkpoint) { cp.Gen = 30 }, "generation"},
		{"history shape", func(cp *Checkpoint) { cp.History = cp.History[:1] }, "history"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Deep-enough copy: each case mutates its own view.
			cp := *good
			cp.Pop = append([][]float64(nil), good.Pop...)
			cp.Best = append([]float64(nil), good.Best...)
			cp.History = append([]float64(nil), good.History...)
			tc.mutate(&cp)
			rcfg := checkpointConfig()
			rcfg.Resume = &cp
			_, err := Run(rcfg)
			if err == nil {
				t.Fatal("malformed checkpoint accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
