package ga

import (
	"math"
	"testing"
	"testing/quick"
)

func sphere(target []float64) func([]float64) float64 {
	return func(g []float64) float64 {
		var s float64
		for i := range g {
			d := g[i] - target[i]
			s += d * d
		}
		return s
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{GenomeLen: 4, Seed: "s", Fitness: sphere([]float64{0, 0, 0, 0})}
	cases := []func(*Config){
		func(c *Config) { c.GenomeLen = 0 },
		func(c *Config) { c.Fitness = nil },
		func(c *Config) { c.Seed = "" },
		func(c *Config) { c.PopSize = 2 },
		func(c *Config) { c.PopSize = 8; c.Elites = 8 },
	}
	for i, mutate := range cases {
		c := base
		mutate(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMinimizesSphere(t *testing.T) {
	target := []float64{0.3, 0.7, 0.1, 0.9, 0.5}
	res, err := Run(Config{
		GenomeLen: 5, Seed: "sphere", Generations: 200,
		Fitness: sphere(target),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 0.01 {
		t.Errorf("GA failed to approach target: fitness %v, best %v", res.BestFitness, res.Best)
	}
}

func TestSparseRecovery(t *testing.T) {
	// Fitness rewards matching a 3-sparse combination out of 20 genes —
	// the surrogate-selection shape.
	truthIdx := []int{3, 11, 17}
	truthW := []float64{0.5, 1.2, 0.3}
	fitness := func(g []float64) float64 {
		var s float64
		for i, v := range g {
			want := 0.0
			for k, ti := range truthIdx {
				if i == ti {
					want = truthW[k]
				}
			}
			d := v - want
			s += d * d
		}
		return s
	}
	res, err := Run(Config{
		GenomeLen: 20, MaxActive: 4, Seed: "sparse",
		Generations: 300, PopSize: 96,
		Fitness: fitness,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 0.05 {
		t.Errorf("sparse recovery fitness %v", res.BestFitness)
	}
	// Sparsity must be respected.
	active := 0
	for _, v := range res.Best {
		if v > 0 {
			active++
		}
	}
	if active > 4 {
		t.Errorf("sparsity cap violated: %d active genes", active)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{GenomeLen: 6, Seed: "det", Generations: 40,
		Fitness: sphere([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6})}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness {
		t.Fatal("same seed must give identical results")
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same seed must give identical genomes")
		}
	}
	cfg.Seed = "other"
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Best {
		if a.Best[i] != c.Best[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should explore differently")
	}
}

func TestHistoryMonotone(t *testing.T) {
	res, err := Run(Config{GenomeLen: 8, Seed: "hist", Generations: 60,
		Fitness: sphere(make([]float64, 8))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 61 {
		t.Fatalf("history length %d, want 61", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best fitness regressed at generation %d", i)
		}
	}
}

func TestGenomesStayNonNegative(t *testing.T) {
	res, err := Run(Config{GenomeLen: 10, MaxActive: 5, Seed: "nn", Generations: 50,
		Fitness: func(g []float64) float64 {
			for _, v := range g {
				if v < 0 {
					t.Fatal("negative gene passed to fitness")
				}
			}
			return sphere(make([]float64, 10))(g)
		}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Best {
		if v < 0 {
			t.Fatal("negative gene in result")
		}
	}
}

func TestEvaluationBudget(t *testing.T) {
	res, err := Run(Config{GenomeLen: 4, Seed: "budget", PopSize: 16, Generations: 10, Elites: 2,
		Fitness: sphere(make([]float64, 4))})
	if err != nil {
		t.Fatal(err)
	}
	// At most the initial 16 + 10 generations × (16-2 fresh children):
	// elites are never re-scored, and memoization may shave off children
	// that duplicate an already-scored genome.
	max := 16 + 10*14
	if res.Evaluations > max || res.Evaluations < 16 {
		t.Errorf("evaluations = %d, want within [16, %d]", res.Evaluations, max)
	}
}

func TestMemoizationSkipsDuplicates(t *testing.T) {
	// With crossover and mutation both disabled, every child is a byte
	// copy of a previous individual: only the initial population is ever
	// scored, however many generations run.
	calls := 0
	res, err := Run(Config{
		GenomeLen: 4, Seed: "memo", PopSize: 16, Generations: 25,
		CrossoverRate: Rate(0), MutationRate: Rate(0),
		Fitness: func(g []float64) float64 {
			calls++
			return sphere(make([]float64, 4))(g)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 16 {
		t.Errorf("evaluations = %d, want <= 16 (duplicates must hit the memo cache)", res.Evaluations)
	}
	if calls != res.Evaluations {
		t.Errorf("fitness called %d times but Evaluations = %d", calls, res.Evaluations)
	}
}

func TestExplicitZeroRates(t *testing.T) {
	// MutationRate 0 with crossover forced on: children only ever blend
	// parent genes, so no gene can exceed the initial maximum.
	target := []float64{0.5, 0.5, 0.5, 0.5}
	res, err := Run(Config{
		GenomeLen: 4, Seed: "zero-mut", Generations: 30,
		CrossoverRate: Rate(1), MutationRate: Rate(0),
		Fitness: sphere(target),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Best {
		if v < 0 || v >= 1 {
			t.Errorf("blend-only evolution left gene %v outside [0, 1)", v)
		}
	}

	// Both rates 0: pure selection over the initial population — the best
	// genome must be one of the initial individuals, so the history can
	// never improve past entry 0.
	res, err = Run(Config{
		GenomeLen: 6, Seed: "frozen", Generations: 20,
		CrossoverRate: Rate(0), MutationRate: Rate(0),
		Fitness: sphere(make([]float64, 6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range res.History {
		if h != res.History[0] {
			t.Fatalf("no-variation run improved at generation %d: %v -> %v", i, res.History[0], h)
		}
	}
}

func TestRateValidation(t *testing.T) {
	base := Config{GenomeLen: 4, Seed: "s", Fitness: sphere(make([]float64, 4))}
	for _, bad := range []*float64{Rate(-0.1), Rate(1.5), Rate(math.NaN())} {
		c := base
		c.MutationRate = bad
		if _, err := Run(c); err == nil {
			t.Errorf("MutationRate %v accepted", *bad)
		}
		c = base
		c.CrossoverRate = bad
		if _, err := Run(c); err == nil {
			t.Errorf("CrossoverRate %v accepted", *bad)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The determinism contract: Workers must not change anything — Best,
	// BestFitness, History and Evaluations are byte-identical because
	// genomes are generated serially and scored via a dedup+memo batch.
	for _, seed := range []string{"par-a", "par-b", "par-c", "par-d"} {
		base := Config{
			GenomeLen: 12, MaxActive: 5, Seed: seed,
			PopSize: 32, Generations: 40,
			Fitness: sphere([]float64{0.1, 0, 0.3, 0, 0.5, 0, 0.7, 0, 0.2, 0, 0.4, 0}),
		}
		serial := base
		serial.Workers = 1
		want, err := Run(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			cfg := base
			cfg.Workers = workers
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.BestFitness != want.BestFitness {
				t.Fatalf("seed %q workers %d: BestFitness %v != serial %v",
					seed, workers, got.BestFitness, want.BestFitness)
			}
			if got.Evaluations != want.Evaluations {
				t.Fatalf("seed %q workers %d: Evaluations %d != serial %d",
					seed, workers, got.Evaluations, want.Evaluations)
			}
			for i := range want.Best {
				if got.Best[i] != want.Best[i] {
					t.Fatalf("seed %q workers %d: Best[%d] differs", seed, workers, i)
				}
			}
			if len(got.History) != len(want.History) {
				t.Fatalf("seed %q workers %d: history length differs", seed, workers)
			}
			for i := range want.History {
				if got.History[i] != want.History[i] {
					t.Fatalf("seed %q workers %d: History[%d] %v != %v",
						seed, workers, i, got.History[i], want.History[i])
				}
			}
		}
	}
}

// Property: enforceSparsity never leaves more than the cap active and never
// creates negatives.
func TestEnforceSparsityProperty(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		g := make([]float64, len(raw))
		for i, r := range raw {
			g[i] = float64(r) / 64
		}
		cap := int(capRaw%8) + 1
		enforceSparsity(g, cap)
		active := 0
		for _, v := range g {
			if v < 0 {
				return false
			}
			if v > 0 {
				active++
			}
		}
		return active <= cap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparsityKeepsLargestGenes(t *testing.T) {
	g := []float64{0.9, 0.1, 0.5, 0, 0.7, 0.2}
	enforceSparsity(g, 3)
	want := []float64{0.9, 0, 0.5, 0, 0.7, 0}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("enforceSparsity = %v, want %v", g, want)
		}
	}
}
