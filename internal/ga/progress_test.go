package ga

import (
	"math"
	"testing"
)

// TestOnGenerationPassive pins the progress tap's contract: the callback
// fires once per evolved generation with the running best, the reported
// fitness matches History, the delivered genome is a clone (mutating it
// cannot corrupt the search), and the run's result is byte-identical to
// the same configuration without the callback.
func TestOnGenerationPassive(t *testing.T) {
	base := Config{
		GenomeLen: 10, MaxActive: 3,
		PopSize: 32, Generations: 30,
		Seed:    "progress-det",
		Fitness: sphere([]float64{0.4, 0, 0.1, 0, 0, 0, 0.8, 0, 0, 0}),
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	type obsGen struct {
		gen    int
		best   float64
		genome []float64
	}
	var seen []obsGen
	tapped := base
	tapped.OnGeneration = func(gen int, best float64, genome []float64) {
		seen = append(seen, obsGen{gen, best, genome})
		for i := range genome {
			genome[i] = -1 // a clone: vandalising it must not touch the run
		}
	}
	res, err := Run(tapped)
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(res.BestFitness) != math.Float64bits(ref.BestFitness) {
		t.Errorf("best fitness with tap %v != without %v", res.BestFitness, ref.BestFitness)
	}
	for i := range ref.Best {
		if math.Float64bits(res.Best[i]) != math.Float64bits(ref.Best[i]) {
			t.Errorf("gene %d = %v with tap, %v without", i, res.Best[i], ref.Best[i])
		}
	}
	if len(seen) != res.Generations {
		t.Fatalf("callback fired %d times, ran %d generations", len(seen), res.Generations)
	}
	for i, o := range seen {
		if o.gen != i {
			t.Errorf("callback %d reported generation %d", i, o.gen)
		}
		// History[0] is the initial population; generation g lands at g+1.
		if math.Float64bits(o.best) != math.Float64bits(res.History[i+1]) {
			t.Errorf("generation %d reported best %v, History has %v", i, o.best, res.History[i+1])
		}
	}
	last := seen[len(seen)-1]
	if math.Float64bits(last.best) != math.Float64bits(res.BestFitness) {
		t.Errorf("final callback best %v != result %v", last.best, res.BestFitness)
	}
}

// TestOnGenerationSeesStallCutoff proves the tap observes exactly the
// generations a stall-stopped run evolves — the per-generation snapshot
// count a resumable job records matches Result.Generations even when
// StallGenerations ends the run early.
func TestOnGenerationSeesStallCutoff(t *testing.T) {
	calls := 0
	res, err := Run(Config{
		GenomeLen: 8, MaxActive: 3,
		PopSize: 16, Generations: 200,
		Seed:             "progress-stall",
		Fitness:          func(g []float64) float64 { return 0 }, // flat: stalls immediately
		StallGenerations: 5,
		OnGeneration:     func(gen int, best float64, genome []float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations >= 200 {
		t.Fatalf("stall cutoff did not fire (%d generations)", res.Generations)
	}
	if calls != res.Generations {
		t.Errorf("callback fired %d times, run evolved %d generations", calls, res.Generations)
	}
}
