// Package ga is the genetic algorithm behind SWAPP's surrogate selection
// (§2.3 step 5, citing Holland's classic GA): it searches for the "best"
// group of benchmarks and their coefficients, encoded as a sparse
// non-negative weight vector over the benchmark pool.
//
// The implementation is a plain generational GA — tournament selection,
// blend crossover, Gaussian mutation with activate/deactivate moves for
// sparsity control, and elitism — fully deterministic under a string seed.
//
// Fitness evaluation is the hot path and is embarrassingly parallel, so Run
// scores each generation on a bounded worker pool (Config.Workers). The
// result is byte-identical to the serial path: every candidate genome is
// generated serially from the seeded RNG first, and only then scored
// concurrently, so the RNG stream — and therefore the evolution — never
// depends on scheduling. A 64-bit hash memo (collision-checked against the
// genome's float bits) ensures duplicate genomes (e.g. children that
// escaped both crossover and mutation) are never re-scored, and keeps
// Result.Evaluations independent of the worker count.
package ga

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
)

// Config parameterises a run. Fitness is minimised.
type Config struct {
	// GenomeLen is the number of genes (benchmark pool size).
	GenomeLen int
	// MaxActive caps the number of nonzero genes (surrogate sparsity);
	// 0 means unlimited.
	MaxActive int
	// PopSize is the population size (default 64).
	PopSize int
	// Generations to evolve (default 120).
	Generations int
	// Elites survive unchanged each generation (default 2).
	Elites int
	// TournamentK is the selection tournament size (default 3).
	TournamentK int
	// CrossoverRate is the probability of blending two parents. nil means
	// the default 0.9; use Rate(0) to disable crossover entirely (a plain
	// 0 cannot express that — the zero value selects the default).
	CrossoverRate *float64
	// MutationRate is the per-gene perturbation probability. nil means
	// the default 0.15; use Rate(0) to disable mutation entirely.
	MutationRate *float64
	// Seed makes the run reproducible; required.
	Seed string
	// Seeds, when non-empty, are injected into the initial population in
	// place of its first random genomes (cloned, clamped to GenomeLen and
	// non-negative, sparsity-enforced) — the warm-start path, biasing
	// generation 0 toward a region a neighbouring search already found
	// good. The RNG stream is untouched: the random initial population is
	// generated exactly as without seeds and then overwritten, so a run
	// with Seeds nil is byte-identical to one before this field existed,
	// and a seeded run is deterministic in (Seed, Seeds) at every worker
	// count.
	Seeds [][]float64
	// StallGenerations, when positive, stops the evolution early once the
	// best fitness has not improved for that many consecutive
	// generations — the warm-start path's convergence cutoff, where the
	// seeded population is expected to converge in a fraction of the
	// generation budget. 0 — the default — runs all Generations.
	StallGenerations int
	// OnCheckpoint, when non-nil, receives the complete evolution state
	// after every evolved generation (after OnGeneration): population,
	// RNG position, running best, stall counter, history — everything a
	// later Run needs to continue this run mid-stream. The checkpoint is
	// fully cloned and safe to retain or serialise. Strictly passive:
	// the evolution is byte-identical with the callback set or nil. This
	// is the durability tap for crash-recoverable searches; unlike the
	// Seeds warm-start path, resuming from a Checkpoint reproduces the
	// uninterrupted run's result exactly.
	OnCheckpoint func(cp *Checkpoint)
	// Resume, when non-nil, restores a run from a Checkpoint captured by
	// an identically configured earlier run: initial-population
	// generation is skipped, the RNG continues from the recorded
	// position, and evolution proceeds from the next generation. The
	// resumed Result (Best, BestFitness, History, Generations) is
	// bit-identical to what the uninterrupted run would have returned —
	// fitnesses are re-derived from the pure fitness function, never
	// trusted from the checkpoint. Takes precedence over Seeds. A
	// checkpoint whose shape disagrees with the config (population size,
	// genome length, generation bounds) is rejected with an error.
	Resume *Checkpoint
	// Fitness scores a genome; lower is better. Genomes are always
	// non-negative. Exactly one of Fitness and FitnessW is required. It
	// must be a pure function of the genome and safe for concurrent calls
	// when Workers != 1.
	Fitness func(genome []float64) float64
	// FitnessW is Fitness with the evaluation slot passed in: slot
	// identifies which of the pool's workers is calling, numbered
	// 0..par.Workers(Workers)-1 (always 0 when Workers is 1). It lets an
	// objective with per-call scratch — like core's EvalKernel — keep one
	// scratch arena per slot instead of locking or allocating. The same
	// purity and concurrency-safety rules as Fitness apply; the slot must
	// not influence the returned score.
	FitnessW func(slot int, genome []float64) float64
	// Workers bounds the fitness-evaluation pool: 0 (the default) means
	// runtime.GOMAXPROCS(0), 1 selects the legacy serial path. The
	// result is identical for every value.
	Workers int
	// OnGeneration, when non-nil, observes the run: it is called once per
	// evolved generation — after the generation's children are scored —
	// with the generation index, the running best fitness, and a clone of
	// the running best genome (safe to retain). It is called from Run's
	// own goroutine, strictly passive: the evolution is byte-identical
	// with the callback set or nil. This is the progress/checkpoint tap
	// for async job streaming and resumable searches.
	OnGeneration func(gen int, best float64, bestGenome []float64)
	// Obs, when non-nil, receives a "ga.run" span and the run's metrics
	// (ga.evaluations, ga.cache_hits, ga.generations, ga.best_fitness,
	// ga.generation_seconds). Observability never alters the evolution:
	// the result is byte-identical with Obs set or nil.
	Obs *obs.Scope
}

// Rate wraps a rate value for Config.CrossoverRate / Config.MutationRate,
// making an explicit zero distinguishable from "unset, use the default".
func Rate(v float64) *float64 { return &v }

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.GenomeLen <= 0 {
		return c, fmt.Errorf("ga: GenomeLen must be positive")
	}
	if c.Fitness == nil && c.FitnessW == nil {
		return c, fmt.Errorf("ga: Fitness (or FitnessW) is required")
	}
	if c.Fitness != nil && c.FitnessW != nil {
		return c, fmt.Errorf("ga: Fitness and FitnessW are mutually exclusive")
	}
	if c.Seed == "" {
		return c, fmt.Errorf("ga: Seed is required for reproducibility")
	}
	if c.PopSize == 0 {
		c.PopSize = 64
	}
	if c.Generations == 0 {
		c.Generations = 120
	}
	if c.Elites == 0 {
		c.Elites = 2
	}
	if c.TournamentK == 0 {
		c.TournamentK = 3
	}
	if c.CrossoverRate == nil {
		c.CrossoverRate = Rate(0.9)
	}
	if c.MutationRate == nil {
		c.MutationRate = Rate(0.15)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"CrossoverRate", *c.CrossoverRate}, {"MutationRate", *c.MutationRate}} {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return c, fmt.Errorf("ga: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.PopSize < 4 || c.Elites >= c.PopSize || c.TournamentK < 1 {
		return c, fmt.Errorf("ga: degenerate population configuration")
	}
	return c, nil
}

// Result is the outcome of a run.
type Result struct {
	// Best is the fittest genome found.
	Best []float64
	// BestFitness is its score.
	BestFitness float64
	// History records the best score per generation (including the
	// initial population as entry 0).
	History []float64
	// Evaluations counts distinct fitness calls. Memoization makes it
	// independent of Workers: a genome already scored — in this or any
	// earlier generation — costs nothing.
	Evaluations int
	// CacheHits counts genome scores served by the memo instead of a
	// fitness call (duplicates within a batch count as hits).
	// Evaluations + CacheHits is the total number of scores requested.
	CacheHits int
	// Quarantined counts fitness evaluations that panicked (or were
	// fault-injected to fail) and were scored +Inf — the worst possible
	// fitness under minimisation — instead of killing the run. The
	// offending genome stays in the population but cannot win selection.
	Quarantined int
	// Generations is the number of generations actually evolved —
	// Config.Generations unless StallGenerations cut the run short.
	Generations int
}

// Checkpoint is the complete evolution state at one generation boundary —
// everything Run needs to continue the search exactly where it stopped.
// Fitnesses are deliberately absent: they are a pure function of the
// genomes and are re-derived on resume, so a tampered or stale checkpoint
// can reposition a search but never inject wrong scores.
//
// The JSON form is the wire/disk format used by the durability layer (the
// swappd job journal). encoding/json renders float64 values in their
// shortest exactly-round-tripping form, so a decoded checkpoint resumes
// bit-identically.
type Checkpoint struct {
	// Gen is the 0-based index of the last evolved generation this state
	// reflects; a resumed run continues at Gen+1.
	Gen int `json:"gen"`
	// RNG is the seeded source's position after Gen's draws (see
	// rng.Source.State).
	RNG uint64 `json:"rng"`
	// Pop is the full population, in order — order is load-bearing:
	// elite tie-breaking is positional.
	Pop [][]float64 `json:"pop"`
	// Best / BestFitness are the running best genome and score.
	Best        []float64 `json:"best"`
	BestFitness float64   `json:"best_fitness"`
	// Stalled is the consecutive-non-improving-generation counter feeding
	// StallGenerations.
	Stalled int `json:"stalled"`
	// History is Result.History up to and including Gen.
	History []float64 `json:"history"`
}

// validate rejects a checkpoint whose shape cannot have come from a run
// with this (defaulted) config.
func (cp *Checkpoint) validate(cfg Config) error {
	if len(cp.Pop) != cfg.PopSize {
		return fmt.Errorf("ga: resume checkpoint population %d does not match PopSize %d", len(cp.Pop), cfg.PopSize)
	}
	for i, g := range cp.Pop {
		if len(g) != cfg.GenomeLen {
			return fmt.Errorf("ga: resume checkpoint genome %d has length %d, want %d", i, len(g), cfg.GenomeLen)
		}
	}
	if len(cp.Best) != cfg.GenomeLen {
		return fmt.Errorf("ga: resume checkpoint best genome has length %d, want %d", len(cp.Best), cfg.GenomeLen)
	}
	if cp.Gen < 0 || cp.Gen >= cfg.Generations {
		return fmt.Errorf("ga: resume checkpoint generation %d outside [0, %d)", cp.Gen, cfg.Generations)
	}
	// History holds the initial population's entry plus one per evolved
	// generation.
	if len(cp.History) != cp.Gen+2 {
		return fmt.Errorf("ga: resume checkpoint history has %d entries, want %d", len(cp.History), cp.Gen+2)
	}
	return nil
}

// checkpointOf clones the running state into a retainable Checkpoint.
func checkpointOf(gen int, rngState uint64, pop []individual, best individual, stalled int, history []float64) *Checkpoint {
	cp := &Checkpoint{
		Gen:         gen,
		RNG:         rngState,
		Pop:         make([][]float64, len(pop)),
		Best:        clone(best.genome),
		BestFitness: best.fitness,
		Stalled:     stalled,
		History:     append([]float64(nil), history...),
	}
	for i := range pop {
		cp.Pop[i] = clone(pop[i].genome)
	}
	return cp
}

// individual pairs a genome with its cached score.
type individual struct {
	genome  []float64
	fitness float64
}

// evaluator scores genome batches on a worker pool with memoization. It is
// used from a single goroutine; only the fitness calls it issues run
// concurrently.
//
// The memo is a 64-bit hash index: a genome hashes to a bucket head in
// index, buckets chain through memoEntry.next, and every probe is
// collision-checked against the stored genome's float bits — a hash
// collision costs one extra comparison, never a wrong score. Scored
// genomes live in one flat slab (entry i's genome at i×genomeLen), so the
// memo's steady-state cost is appends to three flat slices; no string
// keys are ever materialised. The batch scratch (jobs, idx, out) is
// reused across generations.
type evaluator struct {
	fn        func(slot int, g []float64) float64
	workers   int
	genomeLen int
	// hash maps a genome to its memo bucket. Overridable (before first
	// use) so tests can force collisions; the default is genomeHash.
	hash        func([]float64) uint64
	evals       int
	hits        int
	quarantined atomic.Int64
	obs         *obs.Scope

	index   map[uint64]int32
	entries []memoEntry
	slab    []float64

	jobs []int32 // entry indices awaiting a fitness call this batch
	idx  []int32 // per-input entry index, recorded at dispatch
	out  []float64
}

// memoEntry is one scored (or being-scored) genome. Its genome lives in
// the evaluator slab at the entry's own index.
type memoEntry struct {
	fitness float64
	next    int32 // next entry in the same hash bucket, -1 ends the chain
}

// genomeHash is the default memo hash: word-at-a-time FNV-1a over the
// genome's float bits. Dispersion only has to separate chain neighbours —
// every lookup is verified against the full genome anyway.
func genomeHash(g []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range g {
		h ^= math.Float64bits(v)
		h *= prime64
	}
	return h
}

// genomeOf returns entry i's genome slice in the slab.
func (e *evaluator) genomeOf(i int32) []float64 {
	return e.slab[int(i)*e.genomeLen : (int(i)+1)*e.genomeLen]
}

// lookup returns the memo entry index holding g, or -1. Bit-exact
// comparison: the memo distinguishes genomes exactly as the old byte-key
// did.
func (e *evaluator) lookup(h uint64, g []float64) int32 {
	head, ok := e.index[h]
	if !ok {
		return -1
	}
	for i := head; i >= 0; i = e.entries[i].next {
		stored := e.genomeOf(i)
		match := true
		for j := range g {
			if math.Float64bits(stored[j]) != math.Float64bits(g[j]) {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// insert adds g to the memo (fitness still unset) and returns its entry
// index.
func (e *evaluator) insert(h uint64, g []float64) int32 {
	i := int32(len(e.entries))
	next := int32(-1)
	if head, ok := e.index[h]; ok {
		next = head
	}
	e.entries = append(e.entries, memoEntry{next: next})
	e.slab = append(e.slab, g...)
	e.index[h] = i
	return i
}

// safeScore scores one genome, quarantining failures: a panicking fitness
// function (or an armed "ga.eval" fault) yields +Inf — the worst score
// under minimisation — so one bad chromosome cannot kill the whole search.
// The quarantine score is memoized like any other, keeping the evolution
// deterministic at every worker count.
func (e *evaluator) safeScore(slot int, g []float64) (f float64) {
	defer func() {
		if v := recover(); v != nil {
			e.quarantined.Add(1)
			f = math.Inf(1)
		}
	}()
	if err := faultinject.Fire("ga.eval"); err != nil {
		e.quarantined.Add(1)
		return math.Inf(1)
	}
	return e.fn(slot, g)
}

// scoreAll returns the fitness of each genome. Each input is hashed and
// probed exactly once: unseen genomes enter the memo immediately (so
// in-batch duplicates dedupe against the same entry), their entry indices
// are recorded as the batch's jobs, scored concurrently on the pool, and
// read back by the per-input indices recorded at dispatch — no second key
// pass. The returned slice is the evaluator's reusable scratch: it is
// valid until the next scoreAll call.
func (e *evaluator) scoreAll(genomes [][]float64) []float64 {
	e.jobs = e.jobs[:0]
	if cap(e.idx) < len(genomes) {
		e.idx = make([]int32, len(genomes))
	}
	idx := e.idx[:len(genomes)]
	for i, g := range genomes {
		h := e.hash(g)
		ei := e.lookup(h, g)
		if ei < 0 {
			ei = e.insert(h, g)
			e.jobs = append(e.jobs, ei)
		}
		idx[i] = ei
	}
	jobs := e.jobs
	e.evals += len(jobs)
	e.hits += len(genomes) - len(jobs)
	// Batch-level counters only: the per-evaluation hot path stays
	// untouched, so the disabled layer costs two nil checks per batch.
	e.obs.Count("ga.evaluations", int64(len(jobs)))
	e.obs.Count("ga.cache_hits", int64(len(genomes)-len(jobs)))
	// par.ForEachW runs inline (slot 0) when workers <= 1 — the legacy
	// serial path. Workers write disjoint entries; the entries slice is
	// not resized while they run. The guard keeps a fully memoized batch
	// allocation-free: the closure literal itself would otherwise escape.
	if len(jobs) > 0 {
		_ = par.ForEachW(e.workers, len(jobs), func(w, i int) error {
			e.entries[jobs[i]].fitness = e.safeScore(w, e.genomeOf(jobs[i]))
			return nil
		})
	}
	if cap(e.out) < len(genomes) {
		e.out = make([]float64, len(genomes))
	}
	out := e.out[:len(genomes)]
	for i, ei := range idx {
		out[i] = e.entries[ei].fitness
	}
	return out
}

// Run evolves a population and returns the best genome found.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sp := cfg.Obs.Child("ga.run")
	defer sp.End()

	src := rng.New("ga|" + cfg.Seed)
	res := &Result{}
	var sparsityScratch []gene
	fn := cfg.FitnessW
	if fn == nil {
		plain := cfg.Fitness
		fn = func(_ int, g []float64) float64 { return plain(g) }
	}
	ev := &evaluator{
		fn:        fn,
		workers:   par.Workers(cfg.Workers),
		genomeLen: cfg.GenomeLen,
		hash:      genomeHash,
		index:     make(map[uint64]int32, cfg.PopSize*2),
		obs:       sp,
	}

	// Genomes live in two flat ping-pong arenas: each generation's
	// population is carved out of one arena while its parents occupy the
	// other, so a whole run's populations cost two allocations instead of
	// PopSize×Generations. Anything that outlives a generation — the
	// running best, the returned Result — is cloned out of the arenas.
	var arenas [2][]float64
	arenas[0] = make([]float64, cfg.PopSize*cfg.GenomeLen)
	arenas[1] = make([]float64, cfg.PopSize*cfg.GenomeLen)
	carve := func(arena int, i int) []float64 {
		g := arenas[arena][i*cfg.GenomeLen : (i+1)*cfg.GenomeLen]
		for j := range g {
			g[j] = 0
		}
		return g
	}
	cur := 0

	genomes := make([][]float64, cfg.PopSize)
	pop := make([]individual, cfg.PopSize)
	var best individual
	stalled := 0
	startGen := 0
	if cp := cfg.Resume; cp != nil {
		// Exact resume: the checkpointed population is copied into the
		// arena in order (elite tie-breaking is positional) and re-scored —
		// fitness is pure, so the scores, and the memo later generations
		// dedupe against, are re-derived rather than trusted from disk.
		// The RNG continues from the recorded position, so every later
		// tournament, crossover, and mutation draw matches the
		// uninterrupted run's.
		if err := cp.validate(cfg); err != nil {
			return nil, err
		}
		src = rng.Restore(cp.RNG)
		for i := range genomes {
			g := carve(cur, i)
			copy(g, cp.Pop[i])
			genomes[i] = g
		}
		fits := ev.scoreAll(genomes)
		for i := range pop {
			pop[i] = individual{genome: genomes[i], fitness: fits[i]}
		}
		best = individual{genome: clone(cp.Best)}
		best.fitness = ev.scoreAll([][]float64{best.genome})[0]
		stalled = cp.Stalled
		res.History = append(res.History, cp.History...)
		res.Generations = cp.Gen + 1
		startGen = cp.Gen + 1
	} else {
		// Initial population: sparse random genomes, generated serially
		// from the seeded RNG, then scored as one batch.
		for i := range genomes {
			g := carve(cur, i)
			active := cfg.MaxActive
			if active <= 0 || active > cfg.GenomeLen {
				active = cfg.GenomeLen
			}
			// Activate a random subset with random weights.
			n := 1 + src.Intn(active)
			for _, idx := range src.Perm(cfg.GenomeLen)[:n] {
				g[idx] = src.Float64()
			}
			genomes[i] = g
		}
		// Warm start: overwrite the first random genomes with the injected
		// seeds — after the random generation above, so the RNG stream (and
		// therefore every later tournament, crossover, and mutation draw) is
		// identical with and without seeds.
		for i, s := range cfg.Seeds {
			if i >= len(genomes) {
				break
			}
			g := genomes[i]
			for j := range g {
				g[j] = 0
			}
			for j := 0; j < len(s) && j < len(g); j++ {
				if s[j] > 0 && !math.IsInf(s[j], 1) && !math.IsNaN(s[j]) {
					g[j] = s[j]
				}
			}
			sparsityScratch = enforceSparsityScratch(g, cfg.MaxActive, sparsityScratch[:0])
		}
		fits := ev.scoreAll(genomes)
		for i := range pop {
			pop[i] = individual{genome: genomes[i], fitness: fits[i]}
		}

		// The running best is cloned out of the arena: its slot will be
		// overwritten two generations later.
		b0 := bestOf(pop)
		best = individual{genome: clone(b0.genome), fitness: b0.fitness}
		res.History = append(res.History, best.fitness)
	}

	next := make([]individual, 0, cfg.PopSize)
	children := make([][]float64, 0, cfg.PopSize)
	obsOn := sp.Enabled()
	for gen := startGen; gen < cfg.Generations; gen++ {
		// The stall cutoff sits at the loop top so that resuming from a
		// final (already-stalled) checkpoint reproduces the finished run
		// instead of evolving past its end; for an uninterrupted run this
		// is the same break the previous bottom-of-loop check performed.
		if cfg.StallGenerations > 0 && stalled >= cfg.StallGenerations {
			break
		}
		var genStart time.Time
		if obsOn {
			genStart = time.Now()
		}
		res.Generations = gen + 1
		nextArena := 1 - cur
		next = next[:0]
		// Elitism: copy the best unchanged — their fitness travels with
		// them, so elites are never re-scored.
		for _, e := range topK(pop, cfg.Elites) {
			g := carve(nextArena, len(next))
			copy(g, e.genome)
			next = append(next, individual{genome: g, fitness: e.fitness})
		}
		// Generate every child serially first (the RNG stream must not
		// depend on evaluation scheduling), then score them as a batch.
		children = children[:0]
		for len(next)+len(children) < cfg.PopSize {
			a := tournament(pop, cfg.TournamentK, src)
			b := tournament(pop, cfg.TournamentK, src)
			child := carve(nextArena, len(next)+len(children))
			copy(child, a.genome)
			if src.Float64() < *cfg.CrossoverRate {
				blend(child, b.genome, src)
			}
			mutate(child, cfg, src)
			sparsityScratch = enforceSparsityScratch(child, cfg.MaxActive, sparsityScratch[:0])
			children = append(children, child)
		}
		for i, f := range ev.scoreAll(children) {
			next = append(next, individual{genome: children[i], fitness: f})
		}
		pop, next = next, pop
		cur = nextArena
		if b := bestOf(pop); b.fitness < best.fitness {
			best = individual{genome: clone(b.genome), fitness: b.fitness}
			stalled = 0
		} else {
			stalled++
		}
		res.History = append(res.History, best.fitness)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, best.fitness, clone(best.genome))
		}
		if cfg.OnCheckpoint != nil {
			cfg.OnCheckpoint(checkpointOf(gen, src.State(), pop, best, stalled, res.History))
		}
		if obsOn {
			// Per-generation stats: wall time and running best, both
			// order-independent aggregates.
			sp.Count("ga.generations", 1)
			sp.Observe("ga.generation_seconds", time.Since(genStart).Seconds())
			sp.Observe("ga.generation_best", best.fitness)
		}
	}
	res.Best = best.genome
	res.BestFitness = best.fitness
	res.Evaluations = ev.evals
	res.CacheHits = ev.hits
	res.Quarantined = int(ev.quarantined.Load())
	if res.Quarantined > 0 {
		sp.Count("ga.quarantined", int64(res.Quarantined))
	}
	sp.Observe("ga.best_fitness", res.BestFitness)
	return res, nil
}

// clone copies a genome.
func clone(g []float64) []float64 { return append([]float64(nil), g...) }

// bestOf returns the fittest individual.
func bestOf(pop []individual) individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fitness < best.fitness {
			best = ind
		}
	}
	return best
}

// topK returns the k fittest individuals in ascending (fitness, index)
// order. Exact fitness ties are common — elitism and children that escape
// both crossover and mutation fill the population with duplicates — so the
// tie-break on position is part of the function's contract: the replaced
// selection sort broke ties by its own swap history, which was
// deterministic but not meaningful.
func topK(pop []individual, k int) []individual {
	if k > len(pop) {
		k = len(pop)
	}
	if k == 0 {
		return nil
	}
	// worse orders individuals by (fitness, index): a is worse than b when
	// it would be evicted first from the elite set.
	worse := func(a, b int) bool {
		if pop[a].fitness != pop[b].fitness {
			return pop[a].fitness > pop[b].fitness
		}
		return a > b
	}
	// Bounded max-heap of the k best seen so far: O(n log k) against the
	// old O(n·k) selection scan, and no sort.Slice interface overhead.
	heap := make([]int, 0, k)
	down := func(i int) {
		for {
			m := i
			if l := 2*i + 1; l < len(heap) && worse(heap[l], heap[m]) {
				m = l
			}
			if r := 2*i + 2; r < len(heap) && worse(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := range pop {
		if len(heap) < k {
			heap = append(heap, i)
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if !worse(heap[c], heap[p]) {
					break
				}
				heap[c], heap[p] = heap[p], heap[c]
				c = p
			}
		} else if worse(heap[0], i) {
			heap[0] = i
			down(0)
		}
	}
	// Pop worst-first to fill the result in ascending (fitness, index)
	// order — exactly what a full sort-and-truncate would return.
	out := make([]individual, len(heap))
	for n := len(heap) - 1; n >= 0; n-- {
		out[n] = pop[heap[0]]
		heap[0] = heap[n]
		heap = heap[:n]
		down(0)
	}
	return out
}

// tournament picks the best of k random individuals.
func tournament(pop []individual, k int, src *rng.Source) individual {
	best := pop[src.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[src.Intn(len(pop))]
		if c.fitness < best.fitness {
			best = c
		}
	}
	return best
}

// blend mixes parent b into child gene-wise with random weights.
func blend(child, b []float64, src *rng.Source) {
	for i := range child {
		if src.Float64() < 0.5 {
			f := src.Float64()
			child[i] = child[i]*(1-f) + b[i]*f
		}
	}
}

// mutate perturbs genes: Gaussian scaling of active genes, plus occasional
// activation of dormant ones and deactivation of active ones.
func mutate(g []float64, cfg Config, src *rng.Source) {
	for i := range g {
		if src.Float64() >= *cfg.MutationRate {
			continue
		}
		switch {
		case g[i] == 0:
			g[i] = src.Float64() * 0.5 // activate
		case src.Float64() < 0.2:
			g[i] = 0 // deactivate
		default:
			g[i] *= math.Exp(src.Normal(0, 0.3))
			if g[i] < 1e-6 {
				g[i] = 0
			}
		}
	}
}

// gene pairs a nonzero gene value with its index, for sparsity sorting.
type gene struct {
	v float64
	i int
}

// enforceSparsity keeps only the maxActive largest genes: one sort of the
// nonzero entries (value ascending, index breaking ties) and the overflow
// is zeroed smallest-first — the same survivors as the repeated
// minimum-scan this replaces, in O(n log n) instead of O(n·overflow).
func enforceSparsity(g []float64, maxActive int) {
	enforceSparsityScratch(g, maxActive, nil)
}

// enforceSparsityScratch is enforceSparsity with a caller-owned scratch
// buffer, so the per-child nonzero list costs nothing on the GA's hot
// path. It returns the (possibly grown) scratch for reuse.
func enforceSparsityScratch(g []float64, maxActive int, scratch []gene) []gene {
	if maxActive <= 0 {
		return scratch
	}
	nz := scratch[:0]
	for i, v := range g {
		if v > 0 {
			nz = append(nz, gene{v, i})
		}
	}
	if len(nz) <= maxActive {
		return nz
	}
	// Insertion sort on (value, index): the comparator is a total order,
	// so the result is the unique sorted permutation — identical to any
	// correct sort — and the nonzero list is tiny (bounded by the genome
	// length, typically a handful over MaxActive), where insertion sort
	// beats sort.Slice and skips its per-call reflection allocations.
	for i := 1; i < len(nz); i++ {
		x := nz[i]
		j := i - 1
		for j >= 0 && (nz[j].v > x.v || (nz[j].v == x.v && nz[j].i > x.i)) {
			nz[j+1] = nz[j]
			j--
		}
		nz[j+1] = x
	}
	for _, z := range nz[:len(nz)-maxActive] {
		g[z.i] = 0
	}
	return nz
}
