// Package ga is the genetic algorithm behind SWAPP's surrogate selection
// (§2.3 step 5, citing Holland's classic GA): it searches for the "best"
// group of benchmarks and their coefficients, encoded as a sparse
// non-negative weight vector over the benchmark pool.
//
// The implementation is a plain generational GA — tournament selection,
// blend crossover, Gaussian mutation with activate/deactivate moves for
// sparsity control, and elitism — fully deterministic under a string seed.
package ga

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Config parameterises a run. Fitness is minimised.
type Config struct {
	// GenomeLen is the number of genes (benchmark pool size).
	GenomeLen int
	// MaxActive caps the number of nonzero genes (surrogate sparsity);
	// 0 means unlimited.
	MaxActive int
	// PopSize is the population size (default 64).
	PopSize int
	// Generations to evolve (default 120).
	Generations int
	// Elites survive unchanged each generation (default 2).
	Elites int
	// TournamentK is the selection tournament size (default 3).
	TournamentK int
	// CrossoverRate is the probability of blending two parents
	// (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-gene perturbation probability
	// (default 0.15).
	MutationRate float64
	// Seed makes the run reproducible; required.
	Seed string
	// Fitness scores a genome; lower is better. Genomes are always
	// non-negative. Required.
	Fitness func(genome []float64) float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.GenomeLen <= 0 {
		return c, fmt.Errorf("ga: GenomeLen must be positive")
	}
	if c.Fitness == nil {
		return c, fmt.Errorf("ga: Fitness is required")
	}
	if c.Seed == "" {
		return c, fmt.Errorf("ga: Seed is required for reproducibility")
	}
	if c.PopSize == 0 {
		c.PopSize = 64
	}
	if c.Generations == 0 {
		c.Generations = 120
	}
	if c.Elites == 0 {
		c.Elites = 2
	}
	if c.TournamentK == 0 {
		c.TournamentK = 3
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = 0.9
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.15
	}
	if c.PopSize < 4 || c.Elites >= c.PopSize || c.TournamentK < 1 {
		return c, fmt.Errorf("ga: degenerate population configuration")
	}
	return c, nil
}

// Result is the outcome of a run.
type Result struct {
	// Best is the fittest genome found.
	Best []float64
	// BestFitness is its score.
	BestFitness float64
	// History records the best score per generation (including the
	// initial population as entry 0).
	History []float64
	// Evaluations counts fitness calls.
	Evaluations int
}

// individual pairs a genome with its cached score.
type individual struct {
	genome  []float64
	fitness float64
}

// Run evolves a population and returns the best genome found.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := rng.New("ga|" + cfg.Seed)
	res := &Result{}

	eval := func(g []float64) float64 {
		res.Evaluations++
		return cfg.Fitness(g)
	}

	// Initial population: sparse random genomes.
	pop := make([]individual, cfg.PopSize)
	for i := range pop {
		g := make([]float64, cfg.GenomeLen)
		active := cfg.MaxActive
		if active <= 0 || active > cfg.GenomeLen {
			active = cfg.GenomeLen
		}
		// Activate a random subset with random weights.
		n := 1 + src.Intn(active)
		for _, idx := range src.Perm(cfg.GenomeLen)[:n] {
			g[idx] = src.Float64()
		}
		pop[i] = individual{genome: g, fitness: eval(g)}
	}

	best := bestOf(pop)
	res.History = append(res.History, best.fitness)

	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]individual, 0, cfg.PopSize)
		// Elitism: copy the best unchanged.
		for _, e := range topK(pop, cfg.Elites) {
			next = append(next, individual{genome: clone(e.genome), fitness: e.fitness})
		}
		for len(next) < cfg.PopSize {
			a := tournament(pop, cfg.TournamentK, src)
			b := tournament(pop, cfg.TournamentK, src)
			child := clone(a.genome)
			if src.Float64() < cfg.CrossoverRate {
				blend(child, b.genome, src)
			}
			mutate(child, cfg, src)
			enforceSparsity(child, cfg.MaxActive)
			next = append(next, individual{genome: child, fitness: eval(child)})
		}
		pop = next
		if b := bestOf(pop); b.fitness < best.fitness {
			best = individual{genome: clone(b.genome), fitness: b.fitness}
		}
		res.History = append(res.History, best.fitness)
	}
	res.Best = best.genome
	res.BestFitness = best.fitness
	return res, nil
}

// clone copies a genome.
func clone(g []float64) []float64 { return append([]float64(nil), g...) }

// bestOf returns the fittest individual.
func bestOf(pop []individual) individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fitness < best.fitness {
			best = ind
		}
	}
	return best
}

// topK returns the k fittest individuals (k small; selection sort).
func topK(pop []individual, k int) []individual {
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		m := i
		for j := i + 1; j < len(idx); j++ {
			if pop[idx[j]].fitness < pop[idx[m]].fitness {
				m = j
			}
		}
		idx[i], idx[m] = idx[m], idx[i]
	}
	out := make([]individual, 0, k)
	for i := 0; i < k && i < len(idx); i++ {
		out = append(out, pop[idx[i]])
	}
	return out
}

// tournament picks the best of k random individuals.
func tournament(pop []individual, k int, src *rng.Source) individual {
	best := pop[src.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[src.Intn(len(pop))]
		if c.fitness < best.fitness {
			best = c
		}
	}
	return best
}

// blend mixes parent b into child gene-wise with random weights.
func blend(child, b []float64, src *rng.Source) {
	for i := range child {
		if src.Float64() < 0.5 {
			f := src.Float64()
			child[i] = child[i]*(1-f) + b[i]*f
		}
	}
}

// mutate perturbs genes: Gaussian scaling of active genes, plus occasional
// activation of dormant ones and deactivation of active ones.
func mutate(g []float64, cfg Config, src *rng.Source) {
	for i := range g {
		if src.Float64() >= cfg.MutationRate {
			continue
		}
		switch {
		case g[i] == 0:
			g[i] = src.Float64() * 0.5 // activate
		case src.Float64() < 0.2:
			g[i] = 0 // deactivate
		default:
			g[i] *= math.Exp(src.Normal(0, 0.3))
			if g[i] < 1e-6 {
				g[i] = 0
			}
		}
	}
}

// enforceSparsity keeps only the maxActive largest genes.
func enforceSparsity(g []float64, maxActive int) {
	if maxActive <= 0 {
		return
	}
	active := 0
	for _, v := range g {
		if v > 0 {
			active++
		}
	}
	for active > maxActive {
		// Zero the smallest nonzero gene.
		minIdx := -1
		for i, v := range g {
			if v > 0 && (minIdx < 0 || v < g[minIdx]) {
				minIdx = i
			}
		}
		g[minIdx] = 0
		active--
	}
}
