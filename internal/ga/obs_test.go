package ga

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestObsMetricsMatchResult pins the acceptance contract: the observability
// counters report exactly what Result reports — ga.evaluations equals
// Result.Evaluations, ga.cache_hits equals Result.CacheHits, and
// ga.generations equals the configured generation count.
func TestObsMetricsMatchResult(t *testing.T) {
	for _, workers := range []int{1, 8} {
		root := obs.New("test")
		res, err := Run(Config{
			GenomeLen: 8, MaxActive: 3,
			PopSize: 16, Generations: 25,
			Seed:    "obs-metrics",
			Fitness: sphere([]float64{0.5, 0, 0.25, 0, 0.75, 0, 0, 0.1}),
			Workers: workers,
			Obs:     root,
		})
		if err != nil {
			t.Fatal(err)
		}
		root.End()
		m := root.Metrics()
		if v, ok := m.Counter("ga.evaluations"); !ok || v != int64(res.Evaluations) {
			t.Errorf("workers=%d: ga.evaluations = %d, Result.Evaluations = %d", workers, v, res.Evaluations)
		}
		if v, ok := m.Counter("ga.cache_hits"); !ok || v != int64(res.CacheHits) {
			t.Errorf("workers=%d: ga.cache_hits = %d, Result.CacheHits = %d", workers, v, res.CacheHits)
		}
		if v, ok := m.Counter("ga.generations"); !ok || v != 25 {
			t.Errorf("workers=%d: ga.generations = %d, want 25", workers, v)
		}
		// Evaluations + CacheHits is every score the run requested: the
		// initial population plus one batch per generation.
		if res.Evaluations+res.CacheHits != 16+25*(16-2) {
			t.Errorf("workers=%d: evaluations %d + hits %d != total scores %d",
				workers, res.Evaluations, res.CacheHits, 16+25*(16-2))
		}
		// The final best must appear in the histogram exactly once.
		h, ok := m.Histogram("ga.best_fitness")
		if !ok || h.Count != 1 || h.Min != res.BestFitness || h.Max != res.BestFitness {
			t.Errorf("workers=%d: ga.best_fitness histogram %+v, want single %v", workers, h, res.BestFitness)
		}
		// The trace must contain the ga.run span, closed within the root.
		tr := root.Trace()
		if len(tr.Spans) != 1 || tr.Spans[0].Name != "ga.run" {
			t.Fatalf("workers=%d: trace spans = %+v", workers, tr.Spans)
		}
	}
}

// TestObsDoesNotPerturbRun pins the determinism contract at the GA level:
// identical seeds give identical results with observability on or off.
func TestObsDoesNotPerturbRun(t *testing.T) {
	cfg := Config{
		GenomeLen: 10, MaxActive: 4,
		PopSize: 24, Generations: 40,
		Seed:    "obs-determinism",
		Fitness: sphere([]float64{0.1, 0.9, 0, 0, 0.4, 0, 0.6, 0, 0, 0.2}),
	}
	for _, workers := range []int{1, 8} {
		plain := cfg
		plain.Workers = workers
		a, err := Run(plain)
		if err != nil {
			t.Fatal(err)
		}
		observed := cfg
		observed.Workers = workers
		observed.Obs = obs.New("obs-on")
		b, err := Run(observed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d: observability changed the run:\noff: %+v\non:  %+v", workers, a, b)
		}
	}
}
