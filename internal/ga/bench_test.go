package ga

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/rng"
)

// naiveEnforceSparsity is the O(n·overflow) loop the sort-based
// enforceSparsity replaced: repeatedly scan for the smallest nonzero gene
// and zero it. Kept as the micro-benchmark baseline and as an oracle for
// TestEnforceSparsityMatchesNaive.
func naiveEnforceSparsity(g []float64, maxActive int) {
	if maxActive <= 0 {
		return
	}
	active := 0
	for _, v := range g {
		if v > 0 {
			active++
		}
	}
	for active > maxActive {
		minIdx := -1
		for i, v := range g {
			if v > 0 && (minIdx < 0 || v < g[minIdx]) {
				minIdx = i
			}
		}
		g[minIdx] = 0
		active--
	}
}

// naiveTopK is the replaced O(n·k) selection sort, fitness-only ordering.
func naiveTopK(pop []individual, k int) []individual {
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		m := i
		for j := i + 1; j < len(idx); j++ {
			if pop[idx[j]].fitness < pop[idx[m]].fitness {
				m = j
			}
		}
		idx[i], idx[m] = idx[m], idx[i]
	}
	out := make([]individual, 0, k)
	for i := 0; i < k && i < len(idx); i++ {
		out = append(out, pop[idx[i]])
	}
	return out
}

func TestEnforceSparsityMatchesNaive(t *testing.T) {
	src := rng.New("sparsity-oracle")
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(40)
		g := make([]float64, n)
		for i := range g {
			if src.Float64() < 0.7 {
				g[i] = src.Float64()
			}
		}
		cap := 1 + src.Intn(8)
		a := append([]float64(nil), g...)
		b := append([]float64(nil), g...)
		enforceSparsity(a, cap)
		naiveEnforceSparsity(b, cap)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d cap %d: divergence at %d:\n got %v\nwant %v", trial, cap, i, a, b)
			}
		}
	}
}

func TestTopKMatchesNaiveFitnessSet(t *testing.T) {
	// Tie-breaking differs (topK is position-stable, the selection sort
	// was not), so compare the multiset of fitness values, which both must
	// agree on, plus topK's own ordering guarantee.
	src := rng.New("topk-oracle")
	for trial := 0; trial < 100; trial++ {
		n := 4 + src.Intn(60)
		pop := make([]individual, n)
		for i := range pop {
			// Coarse fitness values to force ties.
			pop[i] = individual{fitness: float64(src.Intn(8))}
		}
		k := 1 + src.Intn(n)
		a := topK(pop, k)
		b := naiveTopK(pop, k)
		for i := range a {
			if a[i].fitness != b[i].fitness {
				t.Fatalf("trial %d k=%d: fitness[%d] %v != naive %v", trial, k, i, a[i].fitness, b[i].fitness)
			}
			if i > 0 && a[i].fitness < a[i-1].fitness {
				t.Fatalf("trial %d: topK output not sorted", trial)
			}
		}
	}
}

// sparseGenome builds a dense-ish random genome of length n.
func sparseGenome(n int, key string) []float64 {
	src := rng.New(key)
	g := make([]float64, n)
	for i := range g {
		if src.Float64() < 0.8 {
			g[i] = src.Float64()
		}
	}
	return g
}

func benchSparsity(b *testing.B, n int, fn func([]float64, int)) {
	g := sparseGenome(n, fmt.Sprintf("bench-sparsity-%d", n))
	buf := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, g)
		fn(buf, 5)
	}
}

func BenchmarkEnforceSparsity_n64(b *testing.B)      { benchSparsity(b, 64, enforceSparsity) }
func BenchmarkEnforceSparsityNaive_n64(b *testing.B) { benchSparsity(b, 64, naiveEnforceSparsity) }
func BenchmarkEnforceSparsity_n1024(b *testing.B)    { benchSparsity(b, 1024, enforceSparsity) }
func BenchmarkEnforceSparsityNaive_n1024(b *testing.B) {
	benchSparsity(b, 1024, naiveEnforceSparsity)
}

func benchTopK(b *testing.B, n, k int, fn func([]individual, int) []individual) {
	src := rng.New(fmt.Sprintf("bench-topk-%d", n))
	pop := make([]individual, n)
	for i := range pop {
		pop[i] = individual{fitness: src.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(pop, k)
	}
}

func BenchmarkTopK_n1024k32(b *testing.B)      { benchTopK(b, 1024, 32, topK) }
func BenchmarkTopKNaive_n1024k32(b *testing.B) { benchTopK(b, 1024, 32, naiveTopK) }

// heavyFitness emulates the surrogate-search fitness shape at a cost large
// enough for the worker pool to matter: a weighted distance over a pool of
// metric vectors.
func heavyFitness(poolSize, dims int) func([]float64) float64 {
	pool := make([][]float64, poolSize)
	for k := range pool {
		pool[k] = sparseGenome(dims, fmt.Sprintf("pool-%d", k))
	}
	return func(g []float64) float64 {
		var s float64
		for k, w := range g {
			if w == 0 {
				continue
			}
			for _, v := range pool[k%poolSize] {
				d := w - v
				s += d * d * math.Sqrt(1+d*d)
			}
		}
		return s
	}
}

func benchGA(b *testing.B, workers int) {
	cfg := Config{
		GenomeLen: 29, MaxActive: 5,
		PopSize: 64, Generations: 30,
		Seed:    "bench-ga",
		Fitness: heavyFitness(29, 512),
		Workers: workers,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSerial(b *testing.B)   { benchGA(b, 1) }
func BenchmarkRunParallel(b *testing.B) { benchGA(b, 0) }

// BenchmarkRunSpeedup times the serial and pooled paths back to back and
// reports the wall-clock ratio (>= ~1 on one core, approaching the core
// count as GOMAXPROCS grows).
func BenchmarkRunSpeedup(b *testing.B) {
	// At GOMAXPROCS=1 the pooled path has no second scheduler thread, so
	// the ratio is goroutine overhead, not speedup — skip rather than
	// record a meaningless ~1x into baselines.
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("speedup ratio is meaningless at GOMAXPROCS=1 (the pooled path cannot parallelise); rerun with GOMAXPROCS>=2")
	}
	cfg := Config{
		GenomeLen: 29, MaxActive: 5,
		PopSize: 64, Generations: 30,
		Seed:    "bench-ga-speedup",
		Fitness: heavyFitness(29, 512),
	}
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cfg
		s.Workers = 1
		t0 := time.Now()
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(t0)
		p := cfg
		p.Workers = 0
		t1 := time.Now()
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(t1)
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

// benchScoreAllBatches pre-generates sparse genome batches at the
// generation shape (PopSize−Elites children of GenomeLen 29).
func benchScoreAllBatches(nBatches, batch, genomeLen int) [][][]float64 {
	src := rng.New("bench-scoreall")
	out := make([][][]float64, nBatches)
	for bi := range out {
		gs := make([][]float64, batch)
		for i := range gs {
			g := make([]float64, genomeLen)
			for _, idx := range src.Perm(genomeLen)[:1+src.Intn(5)] {
				g[idx] = src.Float64()
			}
			gs[i] = g
		}
		out[bi] = gs
	}
	return out
}

// cheapFitness stands in for the EvalKernel objective: a few flops, no
// allocations — so the benchmark measures scoreAll's own overhead (hash,
// memo, dispatch, readback), not the objective.
func cheapFitness(g []float64) float64 {
	var s float64
	for i, v := range g {
		s += v * float64(i+1)
	}
	return s
}

// BenchmarkScoreAll measures one evaluator batch. "miss" scores fresh
// genomes (hash + insert + fitness dispatch + index readback); "hit"
// rescores a fully memoized batch (pure probe + readback). Both are gated
// by bench_gate.sh via BENCH_kernel.json; the hit path must stay
// allocation-free and the miss path's allocs are the memo inserts alone.
func BenchmarkScoreAll(b *testing.B) {
	const genomeLen = 29
	b.Run("miss", func(b *testing.B) {
		batches := benchScoreAllBatches(512, 62, genomeLen)
		ev := newBenchEvaluator(genomeLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%len(batches) == 0 {
				// Fresh memo each sweep so every batch keeps missing.
				ev = newBenchEvaluator(genomeLen)
			}
			ev.scoreAll(batches[i%len(batches)])
		}
	})
	b.Run("hit", func(b *testing.B) {
		batches := benchScoreAllBatches(16, 62, genomeLen)
		ev := newBenchEvaluator(genomeLen)
		for _, gs := range batches {
			ev.scoreAll(gs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.scoreAll(batches[i%len(batches)])
		}
	})
}

func newBenchEvaluator(genomeLen int) *evaluator {
	return &evaluator{
		fn:        func(_ int, g []float64) float64 { return cheapFitness(g) },
		workers:   1,
		genomeLen: genomeLen,
		hash:      genomeHash,
		index:     make(map[uint64]int32, 256),
	}
}
