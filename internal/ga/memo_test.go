package ga

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// newTestEvaluator builds an evaluator the way Run does, minus the config
// plumbing.
func newTestEvaluator(genomeLen int, fn func([]float64) float64) *evaluator {
	return &evaluator{
		fn:        func(_ int, g []float64) float64 { return fn(g) },
		workers:   1,
		genomeLen: genomeLen,
		hash:      genomeHash,
		index:     map[uint64]int32{},
	}
}

// sum is a fitness whose value identifies the genome, so a memo mixup is
// visible in the returned score.
func sum(g []float64) float64 {
	var s float64
	for i, v := range g {
		s += v * float64(i+1)
	}
	return s
}

// TestMemoCollisionStillScoresCorrectly forces every genome into the same
// hash bucket and checks that the collision chain still attributes each
// fitness to the right genome — the memo's correctness must come from the
// bit-exact genome comparison, never from hash uniqueness.
func TestMemoCollisionStillScoresCorrectly(t *testing.T) {
	const genomeLen = 6
	ev := newTestEvaluator(genomeLen, sum)
	ev.hash = func([]float64) uint64 { return 0xdead } // everyone collides

	src := rng.New("memo-collision")
	var genomes [][]float64
	for i := 0; i < 40; i++ {
		g := make([]float64, genomeLen)
		for j := range g {
			if src.Float64() < 0.6 {
				g[j] = src.Float64()
			}
		}
		genomes = append(genomes, g)
	}
	// Batch 1: all new. Include an in-batch duplicate of genome 0.
	batch := append(append([][]float64{}, genomes...), genomes[0])
	out := ev.scoreAll(batch)
	for i, g := range batch {
		if want := sum(g); out[i] != want {
			t.Fatalf("colliding batch: genome %d scored %v, want %v", i, out[i], want)
		}
	}
	if ev.evals != len(genomes) {
		t.Errorf("evals = %d, want %d (duplicate must dedupe inside the colliding bucket)", ev.evals, len(genomes))
	}
	if ev.hits != 1 {
		t.Errorf("hits = %d, want 1", ev.hits)
	}

	// Batch 2: all seen — every score must come from the chain, walked to
	// the right entry.
	calls := 0
	ev.fn = func(_ int, g []float64) float64 { calls++; return sum(g) }
	out = ev.scoreAll(genomes)
	for i, g := range genomes {
		if want := sum(g); out[i] != want {
			t.Fatalf("memo readback: genome %d scored %v, want %v", i, out[i], want)
		}
	}
	if calls != 0 {
		t.Errorf("fitness called %d times on fully memoized batch, want 0", calls)
	}
}

// TestMemoCollidingPairDistinct pins the minimal collision case: two
// different genomes with an identical hash get distinct entries and
// distinct scores.
func TestMemoCollidingPairDistinct(t *testing.T) {
	ev := newTestEvaluator(2, sum)
	ev.hash = func([]float64) uint64 { return 7 }
	a := []float64{1, 0}
	b := []float64{0, 1}
	out := ev.scoreAll([][]float64{a, b, a, b})
	if out[0] != sum(a) || out[1] != sum(b) || out[2] != sum(a) || out[3] != sum(b) {
		t.Fatalf("colliding pair scores %v, want [%v %v %v %v]", out, sum(a), sum(b), sum(a), sum(b))
	}
	if ev.evals != 2 || ev.hits != 2 {
		t.Errorf("evals=%d hits=%d, want 2 and 2", ev.evals, ev.hits)
	}
	if len(ev.entries) != 2 {
		t.Errorf("entries = %d, want 2", len(ev.entries))
	}
}

// TestMemoMatchesByBitsNotValue checks the memo distinguishes genomes the
// way the old byte-string key did: by float bit patterns.
func TestMemoMatchesByBitsNotValue(t *testing.T) {
	ev := newTestEvaluator(1, func(g []float64) float64 { return g[0] * 3 })
	a := []float64{0.5}
	c := []float64{0.25}
	out := ev.scoreAll([][]float64{a, c, a})
	if out[0] != 1.5 || out[1] != 0.75 || out[2] != 1.5 {
		t.Fatalf("scores %v", out)
	}
	if ev.evals != 2 || ev.hits != 1 {
		t.Errorf("evals=%d hits=%d, want 2 and 1", ev.evals, ev.hits)
	}
}

// TestFitnessWEquivalence: routing the same objective through FitnessW
// (slot-aware) must reproduce the Fitness path byte for byte, at every
// worker count, with slots staying in range.
func TestFitnessWEquivalence(t *testing.T) {
	obj := sphere([]float64{0.3, 0, 0.7, 0, 0.1, 0.9})
	base := Config{
		GenomeLen: 6, MaxActive: 3, Seed: "fitnessw", PopSize: 16, Generations: 30,
		Fitness: obj,
	}
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Fitness = nil
		cfg.Workers = workers
		maxSlot := workers
		cfg.FitnessW = func(slot int, g []float64) float64 {
			if slot < 0 || slot >= maxSlot {
				t.Errorf("slot %d outside [0,%d)", slot, maxSlot)
			}
			return obj(g)
		}
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.BestFitness) != math.Float64bits(want.BestFitness) {
			t.Errorf("workers=%d: FitnessW best %v != Fitness best %v", workers, got.BestFitness, want.BestFitness)
		}
		if got.Evaluations != want.Evaluations {
			t.Errorf("workers=%d: evaluations %d != %d", workers, got.Evaluations, want.Evaluations)
		}
	}
}

// TestFitnessExclusive: setting both objectives is a config error.
func TestFitnessExclusive(t *testing.T) {
	_, err := Run(Config{
		GenomeLen: 2, Seed: "s",
		Fitness:  func(g []float64) float64 { return 0 },
		FitnessW: func(_ int, g []float64) float64 { return 0 },
	})
	if err == nil {
		t.Fatal("Run accepted both Fitness and FitnessW")
	}
}
