package ga

import (
	"math"
	"testing"

	"repro/internal/faultinject"
)

// quarantineConfig is a small run whose fitness panics on genomes
// activating gene 0 — a deterministic subset of the population.
func quarantineConfig(workers int) Config {
	return Config{
		GenomeLen:   6,
		MaxActive:   3,
		PopSize:     16,
		Generations: 10,
		Seed:        "quarantine-test",
		Workers:     workers,
		Fitness: func(g []float64) float64 {
			if g[0] > 0 {
				panic("poisoned gene 0")
			}
			var s float64
			for _, v := range g {
				s += (v - 0.25) * (v - 0.25)
			}
			return s
		},
	}
}

// TestQuarantineSurvivesPanickingFitness proves one bad chromosome cannot
// kill the search: panicking evaluations score +Inf, the run completes,
// and the winner avoids the poisoned region.
func TestQuarantineSurvivesPanickingFitness(t *testing.T) {
	res, err := Run(quarantineConfig(1))
	if err != nil {
		t.Fatalf("run with panicking fitness failed: %v", err)
	}
	if res.Quarantined == 0 {
		t.Fatal("no evaluations quarantined; the poison never triggered")
	}
	if math.IsInf(res.BestFitness, 1) {
		t.Fatal("best fitness is +Inf: quarantine won selection")
	}
	if res.Best[0] > 0 {
		t.Errorf("winner activates the poisoned gene: %v", res.Best)
	}
}

// TestQuarantineDeterministicAcrossWorkers pins that quarantine scoring is
// memoized like any other score: serial and concurrent runs evolve
// identically, panics included.
func TestQuarantineDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Run(quarantineConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(quarantineConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.BestFitness != parallel.BestFitness {
		t.Errorf("best fitness differs: serial %v, 8 workers %v", serial.BestFitness, parallel.BestFitness)
	}
	if len(serial.Best) != len(parallel.Best) {
		t.Fatal("genome lengths differ")
	}
	for i := range serial.Best {
		if serial.Best[i] != parallel.Best[i] {
			t.Fatalf("best genome differs at gene %d: %v vs %v", i, serial.Best, parallel.Best)
		}
	}
	if serial.Quarantined != parallel.Quarantined {
		t.Errorf("quarantine count differs: serial %d, 8 workers %d", serial.Quarantined, parallel.Quarantined)
	}
}

// TestFaultInjectedEvalQuarantines proves the ga.eval injection point
// quarantines instead of failing the run.
func TestFaultInjectedEvalQuarantines(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("ga.eval=panic#1"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		GenomeLen:   4,
		PopSize:     8,
		Generations: 3,
		Seed:        "faultinject-test",
		Fitness: func(g []float64) float64 {
			var s float64
			for _, v := range g {
				s += v
			}
			return s
		},
	})
	if err != nil {
		t.Fatalf("run with injected panic failed: %v", err)
	}
	if res.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1 (panic#1)", res.Quarantined)
	}
	if math.IsInf(res.BestFitness, 1) {
		t.Error("quarantined score won the run")
	}
}
