package ga

import (
	"math"
	"testing"
)

// warmCfg is a seeded configuration exercising every warm-start feature:
// injected seeds, the early-stop stall window, and sparsity enforcement on
// the seeds themselves.
func warmCfg(workers int) Config {
	return Config{
		GenomeLen: 12, MaxActive: 4,
		PopSize: 48, Generations: 80,
		Seed:    "warm-det",
		Workers: workers,
		Fitness: sphere([]float64{0.3, 0, 0.7, 0, 0, 0.2, 0, 0, 0, 0.5, 0, 0}),
		Seeds: [][]float64{
			{0.31, 0, 0.69, 0, 0, 0.21, 0, 0, 0, 0.49, 0, 0},
			{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, // sparsity-violating: must be clamped
		},
		StallGenerations: 15,
	}
}

// TestWarmStartDeterministicAcrossWorkers proves a warm-started search at
// a fixed seed is byte-identical at any worker count: same best genome
// (bitwise), same fitness, same generation count, same history — the same
// contract the cold path has, extended to seeded populations.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Run(warmCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Run(warmCfg(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Float64bits(res.BestFitness) != math.Float64bits(ref.BestFitness) {
			t.Errorf("workers=%d: best fitness %v != serial %v", workers, res.BestFitness, ref.BestFitness)
		}
		if res.Generations != ref.Generations {
			t.Errorf("workers=%d: ran %d generations, serial ran %d", workers, res.Generations, ref.Generations)
		}
		if len(res.Best) != len(ref.Best) {
			t.Fatalf("workers=%d: genome length %d != %d", workers, len(res.Best), len(ref.Best))
		}
		for i := range ref.Best {
			if math.Float64bits(res.Best[i]) != math.Float64bits(ref.Best[i]) {
				t.Errorf("workers=%d: gene %d = %v, serial %v", workers, i, res.Best[i], ref.Best[i])
			}
		}
		if len(res.History) != len(ref.History) {
			t.Fatalf("workers=%d: history length %d != %d", workers, len(res.History), len(ref.History))
		}
		for i := range ref.History {
			if math.Float64bits(res.History[i]) != math.Float64bits(ref.History[i]) {
				t.Errorf("workers=%d: history[%d] = %v, serial %v", workers, i, res.History[i], ref.History[i])
			}
		}
	}
}

// TestSeedsNilIdenticalToUnseeded pins the warm-start opt-in contract: a
// nil (or empty) Seeds slice leaves the search byte-identical to a config
// that never heard of seeding, because the initial population is generated
// from the RNG stream first and only then overwritten by seeds.
func TestSeedsNilIdenticalToUnseeded(t *testing.T) {
	base := Config{
		GenomeLen: 10, MaxActive: 3,
		PopSize: 32, Generations: 40,
		Seed:    "nil-seeds",
		Fitness: sphere([]float64{0.4, 0, 0.1, 0, 0, 0, 0.8, 0, 0, 0}),
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"nil":   base,
		"empty": func() Config { c := base; c.Seeds = [][]float64{}; return c }(),
	} {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Float64bits(res.BestFitness) != math.Float64bits(ref.BestFitness) {
			t.Errorf("%s seeds: best fitness %v != unseeded %v", name, res.BestFitness, ref.BestFitness)
		}
		for i := range ref.Best {
			if math.Float64bits(res.Best[i]) != math.Float64bits(ref.Best[i]) {
				t.Errorf("%s seeds: gene %d = %v, unseeded %v", name, i, res.Best[i], ref.Best[i])
			}
		}
	}
}

// TestSeedsRespectSparsity proves injected seeds pass through the same
// MaxActive clamp as generated genomes: a dense seed cannot smuggle more
// active genes into the population than the configuration allows.
func TestSeedsRespectSparsity(t *testing.T) {
	dense := make([]float64, 12)
	for i := range dense {
		dense[i] = 0.5
	}
	res, err := Run(Config{
		GenomeLen: 12, MaxActive: 3,
		PopSize: 16, Generations: 5,
		Seed:    "dense-seed",
		Fitness: func(g []float64) float64 { return 0 }, // flat: elites keep the seed
		Seeds:   [][]float64{dense},
	})
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, v := range res.Best {
		if v > 0 {
			active++
		}
	}
	if active > 3 {
		t.Errorf("best genome has %d active genes, MaxActive is 3", active)
	}
}
