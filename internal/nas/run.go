package nas

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/hpm"
	"repro/internal/mpi"
	"repro/internal/mpiprof"
	"repro/internal/rng"
	"repro/internal/units"
)

// RunResult is one full execution of a benchmark instance on a machine:
// the MPI profile (what the paper's profiler records) and the makespan
// (the "measured" runtime SWAPP's projections are validated against).
type RunResult struct {
	Config   Config
	Machine  string
	Profile  *mpiprof.Profile
	Makespan units.Seconds
}

// Run executes the instance on machine m through the discrete-event
// simulator with the MPI profiler attached: per-rank compute times come
// from the hardware-counter model, boundary exchanges and collectives run
// through the MPI layer.
func (inst *Instance) Run(m *arch.Machine) (*RunResult, error) {
	return inst.run(m, true)
}

// RunBare is Run without the profiling observer — the baseline for
// measuring the profiler's host-side overhead (the paper's §5 claim).
func (inst *Instance) RunBare(m *arch.Machine) (units.Seconds, error) {
	res, err := inst.run(m, false)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

func (inst *Instance) run(m *arch.Machine, profiled bool) (*RunResult, error) {
	ranks := inst.Cfg.Ranks
	threads := inst.Cfg.ThreadsPerRank()
	if ranks*threads > m.TotalCores {
		return nil, fmt.Errorf("nas: %s needs %d cores; %s has %d",
			inst.Cfg, ranks*threads, m.Name, m.TotalCores)
	}

	// Per-rank per-step compute time on this machine. Each rank's zones
	// are worked by `threads` OpenMP threads on its cores (one process
	// per core in the paper's pure-MPI configuration); every hardware
	// thread contends for node bandwidth.
	active := m.CoresPerNode
	if busy := ranks * threads; busy < active {
		active = busy
	}
	stepTime := make([]units.Seconds, ranks)
	for r := 0; r < ranks; r++ {
		sig := inst.rankStepSignature(r)
		if threads > 1 {
			sig = inst.threadSignature(sig, threads)
		}
		c, err := hpm.Run(sig, hpm.Config{
			Machine:            m,
			Mode:               hpm.ST,
			ActiveTasksPerNode: active,
		})
		if err != nil {
			return nil, fmt.Errorf("nas: compute model for rank %d: %w", r, err)
		}
		stepTime[r] = c.Runtime
		if threads > 1 {
			// OpenMP runtime overhead per step (fork/join, barriers).
			stepTime[r] *= 1 + inst.Spec.OMPOverhead*float64(threads-1)
		}
	}

	world, err := mpi.NewWorldHybrid(m, ranks, threads)
	if err != nil {
		return nil, err
	}
	var prof *mpiprof.Profiler
	if profiled {
		prof = mpiprof.New(ranks)
		world.SetObserver(prof)
	}

	spec := inst.Spec
	jitter := m.OSJitterSigma
	makespan, err := world.Run(func(r *mpi.Rank) {
		id := r.ID()
		// Per-rank OS-noise stream: every timestep's compute wiggles a
		// little, turning boundary synchronization into WaitTime.
		noise := rng.New(fmt.Sprintf("osjitter|%s|%s|%d", inst.Cfg, m.Name, id))
		// Initialization: parameter broadcast from rank 0.
		for i := 0; i < 3; i++ {
			r.Bcast(0, 24)
		}
		for step := 0; step < spec.Steps; step++ {
			// Boundary exchange: post receives, fire sends, wait.
			reqs := make([]*mpi.Request, 0, len(inst.recvs[id])+len(inst.sends[id]))
			for _, fm := range inst.recvs[id] {
				reqs = append(reqs, r.Irecv(fm.peer, fm.bytes, fm.tag))
			}
			for _, fm := range inst.sends[id] {
				reqs = append(reqs, r.Isend(fm.peer, fm.bytes, fm.tag))
			}
			r.Waitall(reqs...)
			// Zone solves, with OS jitter.
			dt := stepTime[id]
			if jitter > 0 {
				f := 1 + noise.Normal(0, jitter)
				if f < 0.5 {
					f = 0.5
				}
				dt *= f
			}
			r.Compute(dt)
			// Periodic convergence check.
			if (step+1)%spec.CheckEvery == 0 {
				r.Reduce(0, 40)
			}
		}
		// Verification: residual norms to rank 0, verdict broadcast back.
		r.Reduce(0, 40)
		r.Bcast(0, 8)
	})
	if err != nil {
		return nil, fmt.Errorf("nas: %s on %s: %w", inst.Cfg, m.Name, err)
	}
	res := &RunResult{
		Config:   inst.Cfg,
		Machine:  m.Name,
		Makespan: makespan,
	}
	if profiled {
		res.Profile = prof.Profile(inst.Cfg.String(), m.Name, makespan)
	}
	return res, nil
}

// Run is a convenience wrapper: lay out and execute cfg on machine m.
func Run(cfg Config, m *arch.Machine) (*RunResult, error) {
	inst, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return inst.Run(m)
}
