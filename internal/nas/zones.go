package nas

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
	"repro/internal/workload"
)

// Zone is one partition of the aggregate grid: its position in the zone
// grid and its interior extent.
type Zone struct {
	I, J       int // zone-grid coordinates
	NX, NY, NZ int // interior points
}

// Points is the zone's grid point count.
func (z Zone) Points() float64 { return float64(z.NX) * float64(z.NY) * float64(z.NZ) }

// faceMsg is one boundary-exchange message endpoint: a directed zone face
// crossing a rank boundary.
type faceMsg struct {
	peer  int         // the other rank
	bytes units.Bytes // ghost-layer payload
	tag   int         // unique per directed face
}

// Instance is a fully laid-out benchmark run: zones, ownership, per-rank
// work and exchange lists.
type Instance struct {
	Cfg  Config
	Spec *Spec

	Zones []Zone
	Owner []int // zone index → rank

	rankInstrStep []float64     // per-rank instructions per timestep
	rankFoot      []units.Bytes // per-rank resident footprint
	sends         [][]faceMsg   // per-rank outgoing faces
	recvs         [][]faceMsg   // per-rank incoming faces
}

// New lays out a benchmark instance: zone geometry, load balancing and
// exchange lists.
func New(cfg Config) (*Instance, error) {
	spec, err := SpecFor(cfg.Bench, cfg.Class)
	if err != nil {
		return nil, err
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("nas: %s needs at least 1 rank", cfg)
	}
	if cfg.Threads < 0 {
		return nil, fmt.Errorf("nas: %s has negative thread count", cfg)
	}
	if cfg.Ranks > spec.Zones() {
		return nil, fmt.Errorf("nas: %s has only %d zones; cannot use %d ranks",
			cfg.Name(), spec.Zones(), cfg.Ranks)
	}
	inst := &Instance{Cfg: cfg, Spec: spec}
	inst.buildZones()
	inst.balance()
	inst.buildExchanges()
	return inst, nil
}

// geometricSpans splits total into n integer spans following a geometric
// progression with overall ratio r (last/first), each at least 2.
func geometricSpans(total, n int, ratio float64) []int {
	weights := make([]float64, n)
	growth := 1.0
	if n > 1 && ratio > 1 {
		growth = math.Pow(ratio, 1/float64(n-1))
	}
	w := 1.0
	var sum float64
	for i := range weights {
		weights[i] = w
		sum += w
		w *= growth
	}
	spans := make([]int, n)
	used := 0
	for i := range spans {
		spans[i] = int(math.Round(weights[i] / sum * float64(total)))
		if spans[i] < 2 {
			spans[i] = 2
		}
		used += spans[i]
	}
	// Fix rounding drift on the largest span.
	spans[n-1] += total - used
	if spans[n-1] < 2 {
		spans[n-1] = 2
	}
	return spans
}

// buildZones lays out the zone grid with the spec's size progression.
func (inst *Instance) buildZones() {
	s := inst.Spec
	axisRatio := math.Sqrt(s.ZoneRatio) // area ratio splits across x and y
	xs := geometricSpans(s.GridX, s.ZonesX, axisRatio)
	ys := geometricSpans(s.GridY, s.ZonesY, axisRatio)
	inst.Zones = make([]Zone, 0, s.Zones())
	for j := 0; j < s.ZonesY; j++ {
		for i := 0; i < s.ZonesX; i++ {
			inst.Zones = append(inst.Zones, Zone{I: i, J: j, NX: xs[i], NY: ys[j], NZ: s.GridZ})
		}
	}
}

// balance assigns zones to ranks: largest-first greedy bin packing on zone
// work, the spirit of NPB-MZ's load balancer. Ties break deterministically
// on rank index.
func (inst *Instance) balance() {
	n := len(inst.Zones)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		za, zb := inst.Zones[order[a]], inst.Zones[order[b]]
		if za.Points() != zb.Points() {
			return za.Points() > zb.Points()
		}
		return order[a] < order[b]
	})
	load := make([]float64, inst.Cfg.Ranks)
	inst.Owner = make([]int, n)
	for _, zi := range order {
		best := 0
		for r := 1; r < len(load); r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		inst.Owner[zi] = best
		load[best] += inst.Zones[zi].Points()
	}
	inst.rankInstrStep = make([]float64, inst.Cfg.Ranks)
	inst.rankFoot = make([]units.Bytes, inst.Cfg.Ranks)
	for zi, z := range inst.Zones {
		r := inst.Owner[zi]
		inst.rankInstrStep[r] += z.Points() * inst.Spec.InstrPerPoint
		inst.rankFoot[r] += units.Bytes(z.Points() * inst.Spec.BytesPerPoint)
	}
}

// zoneAt maps zone-grid coordinates (periodic) to the zone index.
func (inst *Instance) zoneAt(i, j int) int {
	s := inst.Spec
	i = ((i % s.ZonesX) + s.ZonesX) % s.ZonesX
	j = ((j % s.ZonesY) + s.ZonesY) % s.ZonesY
	return j*s.ZonesX + i
}

// buildExchanges derives the per-rank send/recv lists: one message per
// directed zone face whose neighbour lives on another rank.
func (inst *Instance) buildExchanges() {
	s := inst.Spec
	inst.sends = make([][]faceMsg, inst.Cfg.Ranks)
	inst.recvs = make([][]faceMsg, inst.Cfg.Ranks)
	wordBytes := units.Bytes(s.GhostVars * s.WordBytes)

	for zi, z := range inst.Zones {
		dirs := []struct {
			di, dj int
			area   float64 // boundary points
		}{
			{+1, 0, float64(z.NY * z.NZ)}, // east
			{-1, 0, float64(z.NY * z.NZ)}, // west
			{0, +1, float64(z.NX * z.NZ)}, // north
			{0, -1, float64(z.NX * z.NZ)}, // south
		}
		for d, dir := range dirs {
			ni := inst.zoneAt(z.I+dir.di, z.J+dir.dj)
			if ni == zi {
				continue // degenerate periodic self-neighbour
			}
			src, dst := inst.Owner[zi], inst.Owner[ni]
			if src == dst {
				continue // local copy, no MPI
			}
			bytes := units.Bytes(dir.area) * wordBytes
			tag := zi*4 + d
			inst.sends[src] = append(inst.sends[src], faceMsg{peer: dst, bytes: bytes, tag: tag})
			inst.recvs[dst] = append(inst.recvs[dst], faceMsg{peer: src, bytes: bytes, tag: tag})
		}
	}
}

// RankWork returns rank r's per-timestep instruction count.
func (inst *Instance) RankWork(r int) float64 { return inst.rankInstrStep[r] }

// Imbalance is the max/mean ratio of per-rank work: 1 is perfect balance.
func (inst *Instance) Imbalance() float64 {
	var max, sum float64
	for _, w := range inst.rankInstrStep {
		if w > max {
			max = w
		}
		sum += w
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(inst.rankInstrStep)))
}

// MessagesPerStep is the total MPI message count per timestep.
func (inst *Instance) MessagesPerStep() int {
	var n int
	for _, s := range inst.sends {
		n += len(s)
	}
	return n
}

// rankStepSignature is the compute kernel one rank executes each timestep.
func (inst *Instance) rankStepSignature(rank int) *workload.Signature {
	s := inst.Spec
	instr := inst.rankInstrStep[rank]
	if instr <= 0 {
		instr = 1 // a rank may own no zones at extreme imbalance
	}
	foot := inst.rankFoot[rank]
	if foot < 1 {
		foot = 1
	}
	return &workload.Signature{
		Name:               inst.Cfg.Name(),
		Instructions:       instr,
		FPFraction:         s.FPFraction,
		MemFraction:        s.MemFraction,
		BranchFraction:     s.BranchFraction,
		BranchMissRate:     s.BranchMissRate,
		ILP:                s.ILP,
		Footprint:          foot,
		Alpha:              s.Alpha,
		StreamFraction:     s.StreamFraction,
		RemoteFraction:     0.05,
		DialectSensitivity: 1,
	}
}

// MeanRankSignature is the whole-run average per-rank compute signature —
// the unit the compute projection characterises with hardware counters.
func (inst *Instance) MeanRankSignature() *workload.Signature {
	s := inst.Spec
	sig := inst.rankStepSignature(0) // shape fields
	sig.Instructions = s.Points() * s.InstrPerPoint * float64(s.Steps) / float64(inst.Cfg.Ranks)
	sig.Footprint = units.Bytes(s.Points() * s.BytesPerPoint / float64(inst.Cfg.Ranks))
	if sig.Footprint < 1 {
		sig.Footprint = 1
	}
	return sig
}

// threadSignature derives the kernel one OpenMP thread of a hybrid rank
// executes: the parallel share of the instructions split T ways (plus the
// serial share replicated on the master — Amdahl), over 1/T of the rank's
// footprint. The critical path is the master thread's, so the rank's step
// time is this signature's runtime.
func (inst *Instance) threadSignature(rankSig *workload.Signature, threads int) *workload.Signature {
	s := inst.Spec
	c := *rankSig
	serial := s.SerialFraction
	c.Instructions = rankSig.Instructions * (serial + (1-serial)/float64(threads))
	c.Footprint = rankSig.Footprint / units.Bytes(threads)
	if c.Footprint < 1 {
		c.Footprint = 1
	}
	return &c
}
