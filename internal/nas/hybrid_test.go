package nas

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// The hybrid MPI/OpenMP mode is the paper's stated future work ("extend
// this work to hybrid MPI/OpenMP HPC applications"), implemented here as
// an extension: each rank owns Threads cores, its zones are worked by an
// OpenMP team (Amdahl serial share + per-thread runtime overhead), and
// fewer ranks share each node and NIC.

func TestHybridConfigString(t *testing.T) {
	c := Config{Bench: BT, Class: ClassC, Ranks: 32, Threads: 4}
	if c.String() != "BT-MZ.C×32×4T" {
		t.Errorf("String = %q", c.String())
	}
	if c.ThreadsPerRank() != 4 {
		t.Error("ThreadsPerRank broken")
	}
	pure := Config{Bench: BT, Class: ClassC, Ranks: 32}
	if pure.ThreadsPerRank() != 1 || strings.HasSuffix(pure.String(), "T") {
		t.Error("zero threads must mean pure MPI")
	}
}

func TestHybridValidation(t *testing.T) {
	if _, err := New(Config{Bench: BT, Class: ClassC, Ranks: 16, Threads: -1}); err == nil {
		t.Error("negative threads must fail")
	}
	// 128 ranks × 4 threads = 512 cores > POWER6's 128.
	inst, err := New(Config{Bench: BT, Class: ClassC, Ranks: 128, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(arch.MustGet(arch.Power6)); err == nil {
		t.Error("oversubscribed hybrid job must fail")
	}
	// Threads exceeding a node must fail at the MPI layer.
	inst2, _ := New(Config{Bench: BT, Class: ClassC, Ranks: 4, Threads: 32})
	if _, err := inst2.Run(arch.MustGet(arch.Hydra)); err == nil {
		t.Error("threads beyond a node must fail")
	}
}

func TestHybridSpeedsUpPerRankCompute(t *testing.T) {
	base := arch.MustGet(arch.Hydra)
	pure, err := Run(Config{Bench: LU, Class: ClassC, Ranks: 16}, base)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Run(Config{Bench: LU, Class: ClassC, Ranks: 16, Threads: 4}, base)
	if err != nil {
		t.Fatal(err)
	}
	// Same ranks, 4 threads each: the hybrid run must be substantially
	// faster overall — 3–4× from the threads, possibly superlinear when
	// the per-thread working set drops into L3 (cache hyper-scaling),
	// bounded by Amdahl + OpenMP overhead on the low side.
	speedup := pure.Makespan / hybrid.Makespan
	if speedup < 2 || speedup > 6.5 {
		t.Errorf("4-thread speedup ×%.2f, want in [2, 6.5]", speedup)
	}
}

func TestHybridReducesCommunicationShare(t *testing.T) {
	// The hybrid promise: at the same total core count, fewer/larger
	// ranks mean fewer messages and less wait — the communication share
	// must not grow.
	base := arch.MustGet(arch.Hydra)
	pure, err := Run(Config{Bench: BT, Class: ClassC, Ranks: 128}, base)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Run(Config{Bench: BT, Class: ClassC, Ranks: 32, Threads: 4}, base)
	if err != nil {
		t.Fatal(err)
	}
	pureComm := pure.Profile.CommFraction()
	hybridComm := hybrid.Profile.CommFraction()
	if hybridComm >= pureComm {
		t.Errorf("hybrid comm share %.1f%% should undercut pure MPI's %.1f%% at 128 cores",
			100*hybridComm, 100*pureComm)
	}
	// And BT-MZ at 32 ranks balances its 20:1 zones far better than at
	// 128, so the hybrid should be outright faster too.
	if hybrid.Makespan >= pure.Makespan {
		t.Errorf("hybrid 32×4 (%.2fs) should beat pure 128×1 (%.2fs) on BT-MZ",
			hybrid.Makespan, pure.Makespan)
	}
}

func TestHybridAmdahlCeiling(t *testing.T) {
	// Speedup from threads must respect the serial fraction: with
	// s = 3 %, 8 threads cap at 1/(0.03+0.97/8) ≈ 6.5×.
	base := arch.MustGet(arch.Hydra)
	spec, _ := SpecFor(LU, ClassC)
	inst1, _ := New(Config{Bench: LU, Class: ClassC, Ranks: 2})
	inst8, _ := New(Config{Bench: LU, Class: ClassC, Ranks: 2, Threads: 8})
	r1, err := inst1.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := inst8.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	c1 := r1.Profile.MeanCompute()
	c8 := r8.Profile.MeanCompute()
	speedup := c1 / c8
	amdahl := 1 / (spec.SerialFraction + (1-spec.SerialFraction)/8)
	if speedup > amdahl*1.15 {
		t.Errorf("thread speedup ×%.2f exceeds the Amdahl ceiling ×%.2f", speedup, amdahl)
	}
	if speedup < 2 {
		t.Errorf("thread speedup ×%.2f implausibly low", speedup)
	}
}

func TestHybridNodePlacement(t *testing.T) {
	// 32 ranks × 4 threads on Hydra (16 cores/node) = 4 ranks per node,
	// 8 nodes. Rank 0 and rank 3 share a node; rank 0 and rank 4 do not.
	inst, err := New(Config{Bench: SP, Class: ClassC, Ranks: 32, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Run(arch.MustGet(arch.Hydra))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("hybrid run produced no time")
	}
}
