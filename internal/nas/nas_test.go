package nas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/mpi"
)

func TestSpecFor(t *testing.T) {
	for _, b := range Benchmarks() {
		for _, c := range Classes() {
			s, err := SpecFor(b, c)
			if err != nil {
				t.Fatalf("%s.%s: %v", b, c, err)
			}
			if s.Zones() <= 0 || s.Points() <= 0 || s.Steps <= 0 {
				t.Errorf("%s.%s: degenerate spec", b, c)
			}
		}
	}
	if _, err := SpecFor(BT, Class('A')); err == nil {
		t.Error("class A is not validated in the paper; must error")
	}
	if _, err := SpecFor(Benchmark("FT-MZ"), ClassC); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestZoneCounts(t *testing.T) {
	cases := []struct {
		b     Benchmark
		c     Class
		zones int
	}{
		{BT, ClassC, 256}, {BT, ClassD, 1024},
		{SP, ClassC, 256}, {SP, ClassD, 1024},
		{LU, ClassC, 16}, {LU, ClassD, 16},
	}
	for _, tc := range cases {
		if got := MaxRanks(tc.b, tc.c); got != tc.zones {
			t.Errorf("%s.%s zones = %d, want %d", tc.b, tc.c, got, tc.zones)
		}
	}
}

func TestPaperRankCounts(t *testing.T) {
	if got := PaperRankCounts(LU); len(got) != 1 || got[0] != 16 {
		t.Errorf("LU-MZ runs at 16 ranks only, got %v", got)
	}
	if got := PaperRankCounts(BT); len(got) != 4 || got[3] != 128 {
		t.Errorf("BT-MZ rank sweep = %v", got)
	}
}

func TestZoneLayoutCoversGrid(t *testing.T) {
	for _, b := range Benchmarks() {
		inst, err := New(Config{Bench: b, Class: ClassC, Ranks: 16})
		if err != nil {
			t.Fatal(err)
		}
		s := inst.Spec
		// Sum of zone widths along each axis row must equal the grid.
		var xTotal int
		for i := 0; i < s.ZonesX; i++ {
			xTotal += inst.Zones[inst.zoneAt(i, 0)].NX
		}
		if xTotal != s.GridX {
			t.Errorf("%s: x spans sum to %d, want %d", b, xTotal, s.GridX)
		}
		var yTotal int
		for j := 0; j < s.ZonesY; j++ {
			yTotal += inst.Zones[inst.zoneAt(0, j)].NY
		}
		if yTotal != s.GridY {
			t.Errorf("%s: y spans sum to %d, want %d", b, yTotal, s.GridY)
		}
		// Total points must be conserved.
		var pts float64
		for _, z := range inst.Zones {
			pts += z.Points()
		}
		if math.Abs(pts-s.Points()) > 1e-6 {
			t.Errorf("%s: zones cover %v points, grid has %v", b, pts, s.Points())
		}
	}
}

func TestBTZoneRatio(t *testing.T) {
	inst, err := New(Config{Bench: BT, Class: ClassC, Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), 0.0
	for _, z := range inst.Zones {
		a := float64(z.NX * z.NY)
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	ratio := max / min
	if ratio < 10 || ratio > 40 {
		t.Errorf("BT-MZ zone area ratio = %v, want ≈20", ratio)
	}
	// SP zones are equal (within integer rounding).
	sp, _ := New(Config{Bench: SP, Class: ClassC, Ranks: 16})
	min, max = math.Inf(1), 0.0
	for _, z := range sp.Zones {
		a := float64(z.NX * z.NY)
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if max/min > 1.2 {
		t.Errorf("SP-MZ zones should be near-equal, ratio %v", max/min)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Bench: LU, Class: ClassC, Ranks: 32}); err == nil {
		t.Error("LU-MZ cannot exceed 16 ranks")
	}
	if _, err := New(Config{Bench: BT, Class: ClassC, Ranks: 0}); err == nil {
		t.Error("zero ranks must fail")
	}
}

// Property: ownership covers all ranks and every zone has an owner.
func TestBalanceCoversAllRanks(t *testing.T) {
	f := func(rSeed uint8) bool {
		ranks := []int{16, 32, 64, 128}[rSeed%4]
		inst, err := New(Config{Bench: BT, Class: ClassC, Ranks: ranks})
		if err != nil {
			return false
		}
		seen := make([]bool, ranks)
		for _, o := range inst.Owner {
			if o < 0 || o >= ranks {
				return false
			}
			seen[o] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestImbalanceShape(t *testing.T) {
	// BT-MZ: balance is good at 16 ranks (16 zones each to mix sizes)
	// and collapses at 128 ranks (2 zones each, 20:1 spread) — the
	// mechanism behind Table 1's exploding communication share.
	bt16, _ := New(Config{Bench: BT, Class: ClassC, Ranks: 16})
	bt128, _ := New(Config{Bench: BT, Class: ClassC, Ranks: 128})
	if bt16.Imbalance() > 1.1 {
		t.Errorf("BT-MZ@16 should balance well, got %v", bt16.Imbalance())
	}
	if bt128.Imbalance() < 1.5 {
		t.Errorf("BT-MZ@128 should be badly imbalanced, got %v", bt128.Imbalance())
	}
	// Class D at 128 ranks balances better than class C (8 zones each).
	btD128, _ := New(Config{Bench: BT, Class: ClassD, Ranks: 128})
	if btD128.Imbalance() >= bt128.Imbalance() {
		t.Errorf("class D should balance better at 128: D=%v C=%v",
			btD128.Imbalance(), bt128.Imbalance())
	}
	// SP-MZ stays balanced everywhere.
	sp128, _ := New(Config{Bench: SP, Class: ClassC, Ranks: 128})
	if sp128.Imbalance() > 1.1 {
		t.Errorf("SP-MZ@128 should stay balanced, got %v", sp128.Imbalance())
	}
}

func TestExchangeSymmetry(t *testing.T) {
	inst, err := New(Config{Bench: SP, Class: ClassC, Ranks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Every send must have exactly one matching recv (peer, bytes, tag).
	type key struct {
		from, to, tag int
		bytes         int64
	}
	sends := map[key]int{}
	for r, list := range inst.sends {
		for _, fm := range list {
			sends[key{r, fm.peer, fm.tag, int64(fm.bytes)}]++
		}
	}
	recvs := map[key]int{}
	for r, list := range inst.recvs {
		for _, fm := range list {
			recvs[key{fm.peer, r, fm.tag, int64(fm.bytes)}]++
		}
	}
	if len(sends) != len(recvs) {
		t.Fatalf("sends %d vs recvs %d", len(sends), len(recvs))
	}
	for k, n := range sends {
		if recvs[k] != n {
			t.Fatalf("unmatched exchange %+v", k)
		}
	}
	// No rank sends to itself.
	for r, list := range inst.sends {
		for _, fm := range list {
			if fm.peer == r {
				t.Fatalf("rank %d sends to itself", r)
			}
		}
	}
}

func TestSignatures(t *testing.T) {
	inst, err := New(Config{Bench: BT, Class: ClassC, Ranks: 64})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 64; r += 13 {
		if err := inst.rankStepSignature(r).Validate(); err != nil {
			t.Errorf("rank %d signature: %v", r, err)
		}
	}
	mean := inst.MeanRankSignature()
	if err := mean.Validate(); err != nil {
		t.Fatal(err)
	}
	if mean.Name != "BT-MZ.C" {
		t.Errorf("signature name = %q", mean.Name)
	}
	// Strong scaling: footprint per rank shrinks with more ranks.
	inst128, _ := New(Config{Bench: BT, Class: ClassC, Ranks: 128})
	if inst128.MeanRankSignature().Footprint >= mean.Footprint {
		t.Error("per-rank footprint must shrink under strong scaling")
	}
}

func TestRunSmall(t *testing.T) {
	res, err := Run(Config{Bench: LU, Class: ClassC, Ranks: 16}, arch.MustGet(arch.Hydra))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	pf := res.Profile
	if pf.Ranks() != 16 {
		t.Fatalf("profile ranks = %d", pf.Ranks())
	}
	// The paper's Table 1: LU-MZ class C communicates ~1.4 % on the base
	// machine at 16 tasks. Accept a generous band around it.
	cf := 100 * pf.CommFraction()
	if cf < 0.2 || cf > 8 {
		t.Errorf("LU-MZ.C comm%% = %v, paper says ≈1.4", cf)
	}
	// P2P-NB must dominate communication; collectives must be tiny.
	ce := pf.ClassElapsed()
	if ce[mpi.ClassP2PNB] <= ce[mpi.ClassCollective] {
		t.Error("boundary exchange must dominate collectives")
	}
	if ce[mpi.ClassP2PB] != 0 {
		t.Error("NAS-MZ issues no blocking point-to-point")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Bench: LU, Class: ClassC, Ranks: 16}
	a, err := Run(cfg, arch.MustGet(arch.Westmere))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, arch.MustGet(arch.Westmere))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestRunValidation(t *testing.T) {
	inst, _ := New(Config{Bench: BT, Class: ClassC, Ranks: 256})
	if _, err := inst.Run(arch.MustGet(arch.Power6)); err == nil {
		t.Error("256 ranks cannot fit POWER6's 128 cores")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Bench: BT, Class: ClassD, Ranks: 64}
	if c.String() != "BT-MZ.D×64" {
		t.Errorf("String = %q", c.String())
	}
	if c.Name() != "BT-MZ.D" {
		t.Errorf("Name = %q", c.Name())
	}
}
