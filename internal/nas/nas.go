// Package nas implements the NAS Multi-Zone benchmarks — BT-MZ, SP-MZ and
// LU-MZ, classes C and D — as simulated workloads: the applications the
// paper projects (§4).
//
// The Multi-Zone benchmarks partition an aggregate 3-D grid into zones;
// each timestep every zone computes (ADI/SSOR sweeps in the originals) and
// exchanges boundary values with its four neighbours over the periodic
// zone grid. Zones are assigned to MPI ranks by a load balancer. The three
// benchmarks differ exactly where it matters for SWAPP:
//
//   - BT-MZ sizes its zones in a geometric progression (largest:smallest ≈
//     20:1), so at high rank counts bin-packing cannot balance the load and
//     WaitTime dominates communication — the paper's Table 1 shows its
//     communication share exploding from 3.2 % at 16 tasks to ~60 % at 128.
//   - SP-MZ uses equal zones: communication is genuine transfer time,
//     growing moderately under strong scaling (4.8 → 16 %).
//   - LU-MZ has only 16 zones, capping it at 16 ranks (the paper reports a
//     single bar per system), with ~1.4 % communication.
//
// Compute is modelled per rank as a workload.Signature (executed by
// internal/hpm on the machine model); communication runs through the
// discrete-event MPI simulator with one Isend/Irecv per zone face per step
// and a Waitall — the pattern the paper equates to its multi-Sendrecv
// benchmark — plus the small Bcast/Reduce traffic of initialization and
// convergence checks.
package nas

import (
	"fmt"
)

// Benchmark names a NAS Multi-Zone benchmark.
type Benchmark string

// The three Multi-Zone benchmarks.
const (
	BT Benchmark = "BT-MZ"
	SP Benchmark = "SP-MZ"
	LU Benchmark = "LU-MZ"
)

// Benchmarks lists all three in the paper's order.
func Benchmarks() []Benchmark { return []Benchmark{BT, LU, SP} }

// Class is the NPB problem class.
type Class byte

// Problem classes used in the paper's validation.
const (
	ClassC Class = 'C'
	ClassD Class = 'D'
)

// Classes lists the validated problem classes.
func Classes() []Class { return []Class{ClassC, ClassD} }

// String implements fmt.Stringer.
func (c Class) String() string { return string(c) }

// Config selects one benchmark instance.
type Config struct {
	Bench Benchmark
	Class Class
	Ranks int
	// Threads is the OpenMP thread count per MPI rank (0 or 1 = pure
	// MPI, the paper's validated configuration; >1 is the hybrid
	// MPI/OpenMP mode the paper names as future work).
	Threads int
}

// ThreadsPerRank normalises Threads (0 means 1).
func (c Config) ThreadsPerRank() int {
	if c.Threads < 1 {
		return 1
	}
	return c.Threads
}

// String implements fmt.Stringer.
func (c Config) String() string {
	if c.ThreadsPerRank() > 1 {
		return fmt.Sprintf("%s.%s×%d×%dT", c.Bench, c.Class, c.Ranks, c.ThreadsPerRank())
	}
	return fmt.Sprintf("%s.%s×%d", c.Bench, c.Class, c.Ranks)
}

// Name is the workload identity: benchmark + class (the same computation
// regardless of rank count, which is what makes its idiosyncratic machine
// response consistent across scales).
func (c Config) Name() string { return fmt.Sprintf("%s.%s", c.Bench, c.Class) }

// Spec is the resolved problem geometry and kernel character of a
// (benchmark, class) pair.
type Spec struct {
	ZonesX, ZonesY int // zone grid
	GridX, GridY   int // aggregate horizontal grid
	GridZ          int // vertical extent (all zones full height)
	Steps          int // timesteps simulated

	// ZoneRatio is the largest:smallest zone area ratio (1 = equal).
	ZoneRatio float64

	// Kernel character per grid point per timestep.
	InstrPerPoint float64
	BytesPerPoint float64 // resident footprint per point

	// Signature shape (see workload.Signature).
	FPFraction, MemFraction, BranchFraction, BranchMissRate float64
	ILP, Alpha, StreamFraction                              float64

	// Communication shape.
	GhostVars int // variables exchanged per boundary point
	WordBytes int

	// Convergence check cadence (steps between Reduce calls).
	CheckEvery int

	// SerialFraction is the share of per-step compute that does not
	// parallelise across OpenMP threads (Amdahl term of the hybrid
	// extension).
	SerialFraction float64
	// OMPOverhead is the per-extra-thread relative cost of the OpenMP
	// runtime (fork/join, barriers) per step.
	OMPOverhead float64
}

// Zones is the total zone count.
func (s *Spec) Zones() int { return s.ZonesX * s.ZonesY }

// Points is the total grid point count.
func (s *Spec) Points() float64 { return float64(s.GridX) * float64(s.GridY) * float64(s.GridZ) }

// The timestep counts are scaled down ~4× from the originals (200–500) to
// keep discrete-event simulation affordable; per-step behaviour — the
// compute/communication ratio and message mix SWAPP consumes — is
// unchanged. Documented in DESIGN.md.
const (
	stepsC = 50
	stepsD = 60
)

// SpecFor resolves the problem geometry for a (benchmark, class) pair,
// following the NPB-MZ problem definitions.
func SpecFor(b Benchmark, c Class) (*Spec, error) {
	s := &Spec{GhostVars: 10, WordBytes: 8, CheckEvery: 25} // 5 variables × 2-deep ghost slab
	switch c {
	case ClassC:
		s.GridX, s.GridY, s.GridZ, s.Steps = 480, 320, 28, stepsC
	case ClassD:
		s.GridX, s.GridY, s.GridZ, s.Steps = 1632, 1216, 34, stepsD
	default:
		return nil, fmt.Errorf("nas: unsupported class %q (only C and D)", c)
	}
	switch b {
	case BT:
		// Uneven zones: 16×16 (C) / 32×32 (D), ~20:1 area spread.
		if c == ClassC {
			s.ZonesX, s.ZonesY = 16, 16
		} else {
			s.ZonesX, s.ZonesY = 32, 32
		}
		s.ZoneRatio = 20
		s.InstrPerPoint = 3800
		s.FPFraction, s.MemFraction = 0.32, 0.38
		s.BranchFraction, s.BranchMissRate = 0.04, 0.008
		s.ILP, s.Alpha, s.StreamFraction = 2.6, 0.90, 0.45
	case SP:
		if c == ClassC {
			s.ZonesX, s.ZonesY = 16, 16
		} else {
			s.ZonesX, s.ZonesY = 32, 32
		}
		s.ZoneRatio = 1
		s.InstrPerPoint = 1600
		s.FPFraction, s.MemFraction = 0.30, 0.40
		s.BranchFraction, s.BranchMissRate = 0.04, 0.006
		s.ILP, s.Alpha, s.StreamFraction = 2.4, 0.92, 0.50
	case LU:
		s.ZonesX, s.ZonesY = 4, 4
		s.ZoneRatio = 1
		s.InstrPerPoint = 2500
		s.FPFraction, s.MemFraction = 0.31, 0.39
		s.BranchFraction, s.BranchMissRate = 0.05, 0.010
		s.ILP, s.Alpha, s.StreamFraction = 2.0, 0.88, 0.40
	default:
		return nil, fmt.Errorf("nas: unknown benchmark %q", b)
	}
	s.BytesPerPoint = 296 // ≈7 arrays × 5 variables × 8 B + metadata
	s.SerialFraction = 0.03
	s.OMPOverhead = 0.01
	return s, nil
}

// MaxRanks is the largest MPI rank count a (benchmark, class) instance
// supports: one zone per rank.
func MaxRanks(b Benchmark, c Class) int {
	s, err := SpecFor(b, c)
	if err != nil {
		return 0
	}
	return s.Zones()
}

// PaperRankCounts returns the rank counts the paper evaluates for a
// benchmark: {16, 32, 64, 128} for BT/SP, {16} for LU (16 zones).
func PaperRankCounts(b Benchmark) []int {
	if b == LU {
		return []int{16}
	}
	return []int{16, 32, 64, 128}
}
