package mpi

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/units"
)

// world builds a test world, failing the test on error.
func world(t *testing.T, machine string, size int) *World {
	t.Helper()
	w, err := NewWorld(arch.MustGet(machine), size)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(arch.MustGet(arch.Power6), 0); err == nil {
		t.Error("size 0 must fail")
	}
	if _, err := NewWorld(arch.MustGet(arch.Power6), 129); err == nil {
		t.Error("oversubscription must fail (P6 has 128 cores)")
	}
	if _, err := NewWorld(arch.MustGet(arch.Power6), 128); err != nil {
		t.Errorf("full machine must be allowed: %v", err)
	}
}

func TestBlockingPingPong(t *testing.T) {
	w := world(t, arch.Hydra, 2)
	makespan, err := w.Run(func(r *Rank) {
		const size = 1024
		for i := 0; i < 10; i++ {
			if r.ID() == 0 {
				r.Send(1, size, i)
				r.Recv(1, size, 1000+i)
			} else {
				r.Recv(0, size, i)
				r.Send(0, size, 1000+i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20 messages, each at least latency + overhead; ranks 0,1 share a
	// node on Hydra, so intra-node parameters apply.
	net := arch.MustGet(arch.Hydra).Net
	minPer := (net.IntraLatencyUS + net.LibOverheadUS) * 1e-6
	if makespan < 20*minPer {
		t.Errorf("ping-pong makespan %v below physical floor %v", makespan, 20*minPer)
	}
	if makespan > 1e-2 {
		t.Errorf("ping-pong makespan %v implausibly long", makespan)
	}
}

func TestInterNodeSlowerThanIntra(t *testing.T) {
	run := func(dst int) units.Seconds {
		w := world(t, arch.Hydra, 32)
		ms, err := w.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				for i := 0; i < 50; i++ {
					r.Send(dst, 4096, i)
				}
			case dst:
				for i := 0; i < 50; i++ {
					r.Recv(0, 4096, i)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	if intra, inter := run(1), run(16); intra >= inter {
		t.Errorf("intra %v should beat inter %v", intra, inter)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	w := world(t, arch.Power6, 4)
	var mu sync.Mutex
	ends := map[int]units.Seconds{}
	_, err := w.Run(func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		s := r.Isend(next, 8192, 7)
		v := r.Irecv(prev, 8192, 7)
		r.Waitall(s, v)
		mu.Lock()
		ends[r.ID()] = r.Now()
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, end := range ends {
		if end <= 0 {
			t.Errorf("rank %d finished at %v", id, end)
		}
	}
}

func TestMultipleInFlightSerialise(t *testing.T) {
	// Eq. 1: x messages in flight cost ≈ lib + x·T_inFlight, so doubling
	// x should add roughly x extra serialization times, not be free.
	elapsed := func(x int) units.Seconds {
		w := world(t, arch.Westmere, 24)
		var wait units.Seconds
		_, err := w.Run(func(r *Rank) {
			const size = 256 * units.KiB
			switch r.ID() {
			case 0:
				reqs := make([]*Request, 0, 2*x)
				for i := 0; i < x; i++ {
					reqs = append(reqs, r.Isend(12, size, i))
					reqs = append(reqs, r.Irecv(12, size, 100+i))
				}
				start := r.Now()
				r.Waitall(reqs...)
				wait = r.Now() - start
			case 12:
				reqs := make([]*Request, 0, 2*x)
				for i := 0; i < x; i++ {
					reqs = append(reqs, r.Irecv(0, size, i))
					reqs = append(reqs, r.Isend(0, size, 100+i))
				}
				r.Waitall(reqs...)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return wait
	}
	one, four := elapsed(1), elapsed(4)
	if four < 2.5*one {
		t.Errorf("4 in-flight messages should serialize: x=1 %v, x=4 %v", one, four)
	}
	if four > 8*one {
		t.Errorf("serialization overshoot: x=1 %v, x=4 %v", one, four)
	}
}

func TestRendezvousWaitsForReceiver(t *testing.T) {
	// A large (rendezvous) message cannot fly before the recv posts: the
	// sender's wait must include the receiver's late arrival.
	const size = 512 * units.KiB // ≫ every machine's eager threshold
	lateRecv := func(delay units.Seconds) units.Seconds {
		w := world(t, arch.Power6, 2)
		var senderDone units.Seconds
		_, err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				req := r.Isend(1, size, 0)
				r.Waitall(req)
				senderDone = r.Now()
			} else {
				r.Compute(delay)
				r.Recv(0, size, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return senderDone
	}
	early, late := lateRecv(0), lateRecv(0.5)
	if late < 0.5 {
		t.Errorf("rendezvous send completed at %v before the receiver posted", late)
	}
	if early >= 0.4 {
		t.Errorf("prompt receiver should complete quickly, got %v", early)
	}
}

func TestEagerDoesNotWaitForReceiver(t *testing.T) {
	const size = 512 // well under every eager threshold
	w := world(t, arch.Power6, 2)
	var senderDone units.Seconds
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			req := r.Isend(1, size, 0)
			r.Waitall(req)
			senderDone = r.Now()
		} else {
			r.Compute(1.0)
			r.Recv(0, size, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone >= 0.5 {
		t.Errorf("eager send must complete without the receiver, got %v", senderDone)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two same-tag messages must match in post order; the simulation
	// completing without deadlock and with both sizes received checks
	// the queues.
	w := world(t, arch.Hydra, 2)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			a := r.Isend(1, 100, 5)
			b := r.Isend(1, 200, 5)
			r.Waitall(a, b)
		} else {
			a := r.Irecv(0, 100, 5)
			b := r.Irecv(0, 200, 5)
			r.Waitall(a, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSynchronize(t *testing.T) {
	w := world(t, arch.Hydra, 16)
	var mu sync.Mutex
	var exits []units.Seconds
	_, err := w.Run(func(r *Rank) {
		// Rank i computes i ms before the barrier: everyone must leave
		// at (or after) the slowest arrival.
		r.Compute(units.Seconds(r.ID()) * 1e-3)
		r.Barrier()
		mu.Lock()
		exits = append(exits, r.Now())
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exits {
		if e < 15e-3 {
			t.Errorf("a rank left the barrier at %v, before the slowest arrival", e)
		}
	}
	first := exits[0]
	for _, e := range exits {
		if math.Abs(e-first) > 1e-12 {
			t.Errorf("ranks left the barrier at different times: %v vs %v", e, first)
		}
	}
}

func TestCollectiveCostGrowsWithSize(t *testing.T) {
	run := func(size units.Bytes) units.Seconds {
		w := world(t, arch.Westmere, 32)
		ms, err := w.Run(func(r *Rank) {
			for i := 0; i < 10; i++ {
				r.Allreduce(size)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	if small, big := run(8), run(1*units.MiB); small >= big {
		t.Errorf("allreduce cost must grow with size: %v vs %v", small, big)
	}
}

func TestCollectiveMismatchPanics(t *testing.T) {
	w := world(t, arch.Hydra, 2)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Barrier()
		} else {
			r.Allreduce(8)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "collective mismatch") {
		t.Fatalf("mismatched collectives must fail loudly, got %v", err)
	}
}

func TestBcastCheaperOnBlueGeneTree(t *testing.T) {
	// The same 64-rank broadcast, relative to point-to-point cost, is far
	// cheaper on BG/P's collective tree than a binomial tree would be.
	msOn := func(machine string) units.Seconds {
		w := world(t, machine, 64)
		ms, err := w.Run(func(r *Rank) {
			for i := 0; i < 20; i++ {
				r.Bcast(0, 4096)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	bg := msOn(arch.BlueGene)
	hy := msOn(arch.Hydra)
	// BG/P's p2p latency is comparable to Hydra's, but its tree bcast
	// avoids the log(p) stages: it should not be slower despite the much
	// slower links.
	if bg > hy {
		t.Errorf("BG/P tree bcast %v should beat Hydra binomial %v", bg, hy)
	}
}

func TestDeadlockReported(t *testing.T) {
	w := world(t, arch.Hydra, 2)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 64, 0) // nobody sends
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unmatched recv must deadlock, got %v", err)
	}
}

func TestObserverSeesTraffic(t *testing.T) {
	w := world(t, arch.Hydra, 4)
	obs := &recordingObserver{}
	w.SetObserver(obs)
	_, err := w.Run(func(r *Rank) {
		r.Compute(0.001)
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		s := r.Isend(next, 2048, 0)
		v := r.Irecv(prev, 2048, 0)
		r.Waitall(s, v)
		r.Allreduce(64)
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.compute != 4 {
		t.Errorf("observer saw %d compute events, want 4", obs.compute)
	}
	want := map[Routine]int{
		RoutineIsend: 4, RoutineIrecv: 4, RoutineWaitall: 4, RoutineAllreduce: 4,
	}
	for rt, n := range want {
		if obs.routines[rt] != n {
			t.Errorf("observer saw %d %s events, want %d", obs.routines[rt], rt, n)
		}
	}
	if obs.waitallBytes != 2048 {
		t.Errorf("Waitall mean bytes = %d, want 2048", obs.waitallBytes)
	}
	if obs.waitallCount != 2 {
		t.Errorf("Waitall request count = %d, want 2", obs.waitallCount)
	}
}

// recordingObserver counts events for the observer test.
type recordingObserver struct {
	mu           sync.Mutex
	compute      int
	routines     map[Routine]int
	waitallBytes units.Bytes
	waitallCount int
}

func (o *recordingObserver) OnCompute(rank int, dt units.Seconds) {
	o.mu.Lock()
	o.compute++
	o.mu.Unlock()
}

func (o *recordingObserver) OnRoutine(rank int, ev RoutineEvent) {
	o.mu.Lock()
	if o.routines == nil {
		o.routines = map[Routine]int{}
	}
	o.routines[ev.Routine]++
	if ev.Routine == RoutineWaitall {
		o.waitallBytes = ev.Bytes
		o.waitallCount = ev.Count
	}
	o.mu.Unlock()
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() units.Seconds {
		w := world(t, arch.Westmere, 48)
		ms, err := w.Run(func(r *Rank) {
			for step := 0; step < 5; step++ {
				r.Compute(units.Seconds(r.ID()%7) * 1e-4)
				next := (r.ID() + 1) % r.Size()
				prev := (r.ID() + r.Size() - 1) % r.Size()
				s := r.Isend(next, 16*units.KiB, step)
				v := r.Irecv(prev, 16*units.KiB, step)
				r.Waitall(s, v)
				if step%2 == 0 {
					r.Allreduce(8)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic makespan: %v vs %v", got, first)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Routine]Class{
		RoutineIsend:     ClassP2PNB,
		RoutineIrecv:     ClassP2PNB,
		RoutineWaitall:   ClassP2PNB,
		RoutineSend:      ClassP2PB,
		RoutineSendrecv:  ClassP2PB,
		RoutineBcast:     ClassCollective,
		RoutineAllreduce: ClassCollective,
		RoutineBarrier:   ClassCollective,
	}
	for rt, want := range cases {
		if got := ClassOf(rt); got != want {
			t.Errorf("ClassOf(%s) = %s, want %s", rt, got, want)
		}
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := world(t, arch.Hydra, 8)
	_, err := w.Run(func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		for i := 0; i < 5; i++ {
			r.Sendrecv(next, 4096, prev, 4096, i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRankPanicsSurface(t *testing.T) {
	w := world(t, arch.Hydra, 2)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Isend(5, 64, 0) // invalid destination
		}
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("invalid rank must surface as an error, got %v", err)
	}
}
