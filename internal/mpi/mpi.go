// Package mpi is a discrete-event MPI simulator: rank processes run as
// coroutines on the des kernel, exchange messages priced by netmodel, and
// synchronize through collectives. It stands in for the IBM Parallel
// Environment MPI the paper profiles.
//
// Semantics implemented:
//
//   - Non-blocking point-to-point (Isend/Irecv/Waitall) with tag matching
//     in post order, eager and rendezvous protocols, and per-rank NIC
//     serialization — so several in-flight messages cost
//     lib + x·T_inFlight, the paper's Eq. 1 with x > 1.
//   - Blocking point-to-point (Send/Recv/Sendrecv) built on the same
//     machinery.
//   - Collectives (Bcast/Reduce/Allreduce/Allgather/Alltoall/Barrier)
//     with synchronizing semantics: all ranks enter, the operation costs
//     netmodel's algorithm price from the last arrival, all leave
//     together. This is why blocking collectives show near-zero WaitTime
//     in profiles, matching the paper's observation.
//
// An Observer hook receives every compute advance and routine completion;
// internal/mpiprof builds the paper's MPI profile from it.
package mpi

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/des"
	"repro/internal/netmodel"
	"repro/internal/units"
)

// Routine names the MPI calls the simulator supports, using the paper's
// vocabulary.
type Routine string

// Supported routines.
const (
	RoutineIsend     Routine = "MPI_Isend"
	RoutineIrecv     Routine = "MPI_Irecv"
	RoutineWaitall   Routine = "MPI_Waitall"
	RoutineSend      Routine = "MPI_Send"
	RoutineRecv      Routine = "MPI_Recv"
	RoutineSendrecv  Routine = "MPI_Sendrecv"
	RoutineBcast     Routine = "MPI_Bcast"
	RoutineReduce    Routine = "MPI_Reduce"
	RoutineAllreduce Routine = "MPI_Allreduce"
	RoutineAllgather Routine = "MPI_Allgather"
	RoutineAlltoall  Routine = "MPI_Alltoall"
	RoutineBarrier   Routine = "MPI_Barrier"
)

// Class buckets routines the way the paper's figures do.
type Class string

// Routine classes (the paper's figure legend).
const (
	ClassP2PNB      Class = "P2P-NB"      // non-blocking point-to-point
	ClassP2PB       Class = "P2P-B"       // blocking point-to-point
	ClassCollective Class = "COLLECTIVES" // collectives
)

// ClassOf maps a routine to its class.
func ClassOf(r Routine) Class {
	switch r {
	case RoutineIsend, RoutineIrecv, RoutineWaitall:
		return ClassP2PNB
	case RoutineSend, RoutineRecv, RoutineSendrecv:
		return ClassP2PB
	default:
		return ClassCollective
	}
}

// RoutineEvent is one completed MPI call, as reported to an Observer.
type RoutineEvent struct {
	Routine Routine
	// Bytes is the per-message size (for Waitall: the mean size of the
	// requests waited on).
	Bytes units.Bytes
	// Count is how many messages the call involved (1 except Waitall).
	Count int
	// Elapsed is the caller's wall time inside the routine.
	Elapsed units.Seconds
	// Peers are the remote ranks of the messages involved (point-to-point
	// only). The profile uses them to model the communication pattern —
	// which peer distances the application talks to — so a projection can
	// split intra-node from inter-node traffic under any node geometry.
	// The slice is backed by per-rank scratch: it is valid only for the
	// duration of the OnRoutine call and must not be retained.
	Peers []int
}

// Observer receives simulation activity; implementations must be cheap and
// must not block. Event slices (RoutineEvent.Peers) are reused between
// calls and must not be retained past the callback.
type Observer interface {
	// OnCompute reports dt of application compute on a rank.
	OnCompute(rank int, dt units.Seconds)
	// OnRoutine reports a completed MPI call on a rank.
	OnRoutine(rank int, ev RoutineEvent)
}

// matchKey identifies a point-to-point matching queue.
type matchKey struct {
	src, dst, tag int
}

// pendingSend is a posted-but-unmatched send.
type pendingSend struct {
	size    units.Bytes
	post    units.Seconds // sender ready time (after overhead)
	arrival units.Seconds // eager only: when the payload lands at dst
	eager   bool
	req     *Request
	srcRank int
	dstRank int
}

// pendingRecv is a posted-but-unmatched receive.
type pendingRecv struct {
	post units.Seconds
	req  *Request
}

// sendQueue is a FIFO of unmatched sends for one matchKey. Pops advance a
// head index instead of reslicing, and a drained queue rewinds to reuse its
// backing array. Benchmark loops mint a fresh tag (hence a fresh matchKey)
// per message, so drained queues are recycled through a World freelist
// rather than left under their key — the map churns keys but the queue
// structs and their backing arrays are reused, and the steady state of a
// million-message loop allocates nothing.
type sendQueue struct {
	items []*pendingSend
	head  int
}

func (q *sendQueue) push(ps *pendingSend) { q.items = append(q.items, ps) }

func (q *sendQueue) pop() *pendingSend {
	if q.head == len(q.items) {
		return nil
	}
	ps := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return ps
}

// recvQueue is sendQueue for unmatched receives.
type recvQueue struct {
	items []*pendingRecv
	head  int
}

func (q *recvQueue) push(rq *pendingRecv) { q.items = append(q.items, rq) }

func (q *recvQueue) pop() *pendingRecv {
	if q.head == len(q.items) {
		return nil
	}
	rq := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return rq
}

// Request is a non-blocking operation handle.
type Request struct {
	done   *des.Signal
	size   units.Bytes
	peer   int
	isSend bool
}

// collOp tracks one in-progress collective.
type collOp struct {
	routine Routine
	size    units.Bytes
	arrived int
	last    units.Seconds
	done    *des.Signal
}

// World is one simulated MPI job on one machine.
type World struct {
	Machine *arch.Machine
	Model   *netmodel.Model

	kernel *des.Kernel
	size   int

	// NICs belong to nodes, not ranks: every rank on a node shares its
	// adapters, so inter-node traffic serializes per node — the dominant
	// contention effect when 16 tasks share one HPS/InfiniBand adapter.
	// Intra-node (shared-memory) messages bypass the NIC.
	txFree  []units.Seconds // per-node NIC injection availability
	rxFree  []units.Seconds // per-node NIC reception availability
	shmFree []units.Seconds // per-node shared-memory transport availability

	sends map[matchKey]*sendQueue
	recvs map[matchKey]*recvQueue

	colls   map[int]*collOp // collective sequence → state
	signals int             // unique signal naming

	// Slab arenas for the per-message bookkeeping records. A simulated
	// job mints one Request and one pending record per message — tens of
	// millions per characterisation — so they are carved out of chunked
	// arenas instead of allocated individually: one allocation per
	// arenaChunk records, all released together when the World dies.
	reqSlab  []Request
	sendSlab []pendingSend
	recvSlab []pendingRecv

	// Freelists of drained match queues (see sendQueue).
	sendQFree []*sendQueue
	recvQFree []*recvQueue

	obs Observer
}

// arenaChunk is how many records one arena slab holds.
const arenaChunk = 128

// peerScratchSeed is the per-rank starting capacity (in peers) of the
// scratch slice backing RoutineEvent.Peers; Waitall grows it only when a
// single call waits on more requests than this.
const peerScratchSeed = 32

// newRequest carves a Request from the world's arena.
func (w *World) newRequest() *Request {
	if len(w.reqSlab) == 0 {
		w.reqSlab = make([]Request, arenaChunk)
	}
	r := &w.reqSlab[0]
	w.reqSlab = w.reqSlab[1:]
	return r
}

// newPendingSend carves a pendingSend from the world's arena.
func (w *World) newPendingSend() *pendingSend {
	if len(w.sendSlab) == 0 {
		w.sendSlab = make([]pendingSend, arenaChunk)
	}
	p := &w.sendSlab[0]
	w.sendSlab = w.sendSlab[1:]
	return p
}

// newPendingRecv carves a pendingRecv from the world's arena.
func (w *World) newPendingRecv() *pendingRecv {
	if len(w.recvSlab) == 0 {
		w.recvSlab = make([]pendingRecv, arenaChunk)
	}
	p := &w.recvSlab[0]
	w.recvSlab = w.recvSlab[1:]
	return p
}

// NewWorld creates a job of size ranks on machine m with one task per
// core, densely packed onto nodes.
func NewWorld(m *arch.Machine, size int) (*World, error) {
	return NewWorldHybrid(m, size, 1)
}

// NewWorldHybrid creates a hybrid MPI/OpenMP job: every rank owns
// threadsPerRank cores, so fewer ranks share each node (and its NIC).
// This implements the paper's stated future-work direction.
func NewWorldHybrid(m *arch.Machine, size, threadsPerRank int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", size)
	}
	if threadsPerRank < 1 {
		return nil, fmt.Errorf("mpi: threads per rank %d < 1", threadsPerRank)
	}
	if threadsPerRank > m.CoresPerNode {
		return nil, fmt.Errorf("mpi: %d threads exceed %s's %d cores per node",
			threadsPerRank, m.Name, m.CoresPerNode)
	}
	if size*threadsPerRank > m.TotalCores {
		return nil, fmt.Errorf("mpi: %d ranks × %d threads exceed %s's %d cores",
			size, threadsPerRank, m.Name, m.TotalCores)
	}
	model := netmodel.NewPlaced(m, m.CoresPerNode/threadsPerRank)
	nodes := (size + model.RanksPerNode - 1) / model.RanksPerNode
	return &World{
		Machine: m,
		Model:   model,
		kernel:  des.NewKernel(),
		size:    size,
		txFree:  make([]units.Seconds, nodes),
		rxFree:  make([]units.Seconds, nodes),
		shmFree: make([]units.Seconds, nodes),
		sends:   map[matchKey]*sendQueue{},
		recvs:   map[matchKey]*recvQueue{},
		colls:   map[int]*collOp{},
	}, nil
}

// SetObserver installs the profiling hook. Must be called before Run.
func (w *World) SetObserver(o Observer) { w.obs = o }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes program on every rank and drives the simulation to
// completion, returning the job's makespan (the virtual time when the last
// rank finishes).
func (w *World) Run(program func(r *Rank)) (units.Seconds, error) {
	// One allocation for all rank handles and one for all their peer
	// scratches; process names render lazily via SpawnKind.
	ranks := make([]Rank, w.size)
	peerSlab := make([]int, w.size*peerScratchSeed)
	for i := 0; i < w.size; i++ {
		rank := &ranks[i]
		rank.w = w
		rank.id = i
		rank.peerScratch = peerSlab[i*peerScratchSeed : i*peerScratchSeed : (i+1)*peerScratchSeed]
		w.kernel.SpawnKind("rank", i, func(p *des.Proc) {
			rank.proc = p
			program(rank)
		})
	}
	if err := w.kernel.Run(); err != nil {
		return 0, err
	}
	return w.kernel.Now(), nil
}

// newSignal mints a uniquely named signal. The name is formatted lazily
// by the kernel — only deadlock reports ever render it.
func (w *World) newSignal(kind string) *des.Signal {
	w.signals++
	return w.kernel.NewSignalKind(kind, w.signals)
}

// Rank is the per-process MPI handle.
type Rank struct {
	w    *World
	id   int
	proc *des.Proc

	collSeq int

	// peerScratch backs RoutineEvent.Peers for this rank's observer
	// events; observers may not retain it (see Observer).
	peerScratch []int
}

// ID returns this rank's index.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// Now returns the current virtual time.
func (r *Rank) Now() units.Seconds { return r.proc.Now() }

// Compute burns dt of application compute time.
func (r *Rank) Compute(dt units.Seconds) {
	if dt < 0 {
		dt = 0
	}
	r.proc.Advance(dt)
	if r.w.obs != nil {
		r.w.obs.OnCompute(r.id, dt)
	}
}

// report sends a routine event to the observer, if any.
func (r *Rank) report(rt Routine, bytes units.Bytes, count int, elapsed units.Seconds) {
	if r.w.obs != nil {
		r.w.obs.OnRoutine(r.id, RoutineEvent{Routine: rt, Bytes: bytes, Count: count, Elapsed: elapsed})
	}
}

// reportP2P is report with the peer rank attached. The peers slice is the
// rank's scratch — valid only inside the observer call.
func (r *Rank) reportP2P(rt Routine, bytes units.Bytes, count int, elapsed units.Seconds, peer int) {
	if r.w.obs != nil {
		r.peerScratch = append(r.peerScratch[:0], peer)
		r.w.obs.OnRoutine(r.id, RoutineEvent{Routine: rt, Bytes: bytes, Count: count, Elapsed: elapsed, Peers: r.peerScratch})
	}
}

// --- point-to-point ------------------------------------------------------

// launchTransfer prices and schedules the wire movement of a matched (or
// eager) message, returning its arrival time at the destination. ready is
// when the payload may start injecting (sender ready; for rendezvous also
// after the handshake). Inter-node messages serialize on the shared
// per-node NICs at both ends; intra-node messages go through shared
// memory and contend only with themselves.
func (w *World) launchTransfer(src, dst int, size units.Bytes, ready units.Seconds) (arrival, injected units.Seconds) {
	cost := w.Model.P2P(src, dst, size)
	if w.Model.Intra(src, dst) {
		// Shared-memory transport: the node's memory bus is one
		// resource; concurrent intra-node copies serialize on it.
		node := w.Model.NodeOf(src)
		start := ready
		if w.shmFree[node] > start {
			start = w.shmFree[node]
		}
		injected = start + cost.Serialize
		w.shmFree[node] = injected
		return injected + cost.Latency, injected
	}
	srcNode, dstNode := w.Model.NodeOf(src), w.Model.NodeOf(dst)
	txStart := ready
	if w.txFree[srcNode] > txStart {
		txStart = w.txFree[srcNode]
	}
	txEnd := txStart + cost.Serialize
	w.txFree[srcNode] = txEnd
	arrival = txEnd + cost.Latency
	if w.rxFree[dstNode] > arrival {
		arrival = w.rxFree[dstNode]
	}
	w.rxFree[dstNode] = arrival + cost.Serialize
	return arrival, txEnd
}

// fireAt fires sig at absolute virtual time t (or immediately if past).
func (w *World) fireAt(sig *des.Signal, t units.Seconds) {
	w.kernel.FireAt(sig, t-w.kernel.Now())
}

// Isend posts a non-blocking send of size bytes to dst with tag and
// returns its request.
func (r *Rank) Isend(dst int, size units.Bytes, tag int) *Request {
	return r.isend(dst, size, tag, true)
}

// isend implements Isend; report=false suppresses the observer event when
// the call runs inside a blocking wrapper that reports under its own name.
func (r *Rank) isend(dst int, size units.Bytes, tag int, report bool) *Request {
	if dst < 0 || dst >= r.w.size {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dst))
	}
	w := r.w
	start := r.Now()
	cost := w.Model.P2P(r.id, dst, size)
	r.proc.Advance(cost.LibOverhead)
	req := w.newRequest()
	*req = Request{done: w.newSignal("send"), size: size, peer: dst, isSend: true}

	key := matchKey{src: r.id, dst: dst, tag: tag}
	if cost.Rendezvous {
		ps := w.newPendingSend()
		*ps = pendingSend{size: size, post: r.Now(), eager: false, req: req, srcRank: r.id, dstRank: dst}
		if rq := w.popRecv(key); rq != nil {
			w.completeRendezvous(ps, rq, key)
		} else {
			w.pushSend(key, ps)
		}
	} else {
		// Eager: the payload flies now; the send completes once the
		// NIC has swallowed it (independent of the receiver).
		arrival, injected := w.launchTransfer(r.id, dst, size, r.Now())
		w.fireAt(req.done, injected)
		if rq := w.popRecv(key); rq != nil {
			w.fireAt(rq.req.done, arrival)
		} else {
			ps := w.newPendingSend()
			*ps = pendingSend{size: size, post: r.Now(), arrival: arrival, eager: true, req: req, srcRank: r.id, dstRank: dst}
			w.pushSend(key, ps)
		}
	}
	if report {
		r.reportP2P(RoutineIsend, size, 1, r.Now()-start, dst)
	}
	return req
}

// Irecv posts a non-blocking receive of size bytes from src with tag.
func (r *Rank) Irecv(src int, size units.Bytes, tag int) *Request {
	return r.irecv(src, size, tag, true)
}

// irecv implements Irecv; see isend for the report flag.
func (r *Rank) irecv(src int, size units.Bytes, tag int, report bool) *Request {
	if src < 0 || src >= r.w.size {
		panic(fmt.Sprintf("mpi: Irecv from invalid rank %d", src))
	}
	w := r.w
	start := r.Now()
	cost := w.Model.P2P(src, r.id, size)
	r.proc.Advance(cost.LibOverhead)
	req := w.newRequest()
	*req = Request{done: w.newSignal("recv"), size: size, peer: src}

	key := matchKey{src: src, dst: r.id, tag: tag}
	if ps := w.popSend(key); ps != nil {
		if ps.eager {
			done := ps.arrival
			if t := r.Now(); t > done {
				done = t
			}
			w.fireAt(req.done, done)
		} else {
			matched := pendingRecv{post: r.Now(), req: req}
			w.completeRendezvous(ps, &matched, key)
		}
	} else {
		rq := w.newPendingRecv()
		*rq = pendingRecv{post: r.Now(), req: req}
		w.pushRecv(key, rq)
	}
	if report {
		r.reportP2P(RoutineIrecv, size, 1, r.Now()-start, src)
	}
	return req
}

// completeRendezvous schedules the handshake + transfer for a matched
// rendezvous pair and fires both requests at arrival.
func (w *World) completeRendezvous(ps *pendingSend, rq *pendingRecv, key matchKey) {
	cost := w.Model.P2P(key.src, key.dst, ps.size)
	both := ps.post
	if rq.post > both {
		both = rq.post
	}
	ready := both + cost.Handshake
	arrival, _ := w.launchTransfer(key.src, key.dst, ps.size, ready)
	w.fireAt(ps.req.done, arrival)
	w.fireAt(rq.req.done, arrival)
}

// pushSend enqueues an unmatched send for key.
func (w *World) pushSend(key matchKey, ps *pendingSend) {
	q := w.sends[key]
	if q == nil {
		if n := len(w.sendQFree); n > 0 {
			q = w.sendQFree[n-1]
			w.sendQFree = w.sendQFree[:n-1]
		} else {
			q = &sendQueue{items: make([]*pendingSend, 0, 4)}
		}
		w.sends[key] = q
	}
	q.push(ps)
}

// pushRecv enqueues an unmatched recv for key.
func (w *World) pushRecv(key matchKey, rq *pendingRecv) {
	q := w.recvs[key]
	if q == nil {
		if n := len(w.recvQFree); n > 0 {
			q = w.recvQFree[n-1]
			w.recvQFree = w.recvQFree[:n-1]
		} else {
			q = &recvQueue{items: make([]*pendingRecv, 0, 4)}
		}
		w.recvs[key] = q
	}
	q.push(rq)
}

// popSend removes and returns the oldest unmatched send for key, or nil.
// A drained queue goes back on the freelist and its key is released.
func (w *World) popSend(key matchKey) *pendingSend {
	q := w.sends[key]
	if q == nil {
		return nil
	}
	ps := q.pop()
	if ps != nil && len(q.items) == 0 {
		delete(w.sends, key)
		w.sendQFree = append(w.sendQFree, q)
	}
	return ps
}

// popRecv removes and returns the oldest unmatched recv for key, or nil.
func (w *World) popRecv(key matchKey) *pendingRecv {
	q := w.recvs[key]
	if q == nil {
		return nil
	}
	rq := q.pop()
	if rq != nil && len(q.items) == 0 {
		delete(w.recvs, key)
		w.recvQFree = append(w.recvQFree, q)
	}
	return rq
}

// Waitall blocks until every request completes.
func (r *Rank) Waitall(reqs ...*Request) {
	start := r.Now()
	var bytes units.Bytes
	peers := r.peerScratch[:0]
	for _, rq := range reqs {
		r.proc.WaitSignal(rq.done)
		bytes += rq.size
		peers = append(peers, rq.peer)
	}
	r.peerScratch = peers
	mean := units.Bytes(0)
	if len(reqs) > 0 {
		mean = bytes / units.Bytes(len(reqs))
	}
	if r.w.obs != nil {
		r.w.obs.OnRoutine(r.id, RoutineEvent{Routine: RoutineWaitall, Bytes: mean, Count: len(reqs), Elapsed: r.Now() - start, Peers: peers})
	}
}

// Wait blocks until one request completes (Waitall of one, reported the
// same way).
func (r *Rank) Wait(rq *Request) { r.Waitall(rq) }

// Send is a blocking standard-mode send.
func (r *Rank) Send(dst int, size units.Bytes, tag int) {
	start := r.Now()
	req := r.isend(dst, size, tag, false)
	r.proc.WaitSignal(req.done)
	r.reportP2P(RoutineSend, size, 1, r.Now()-start, dst)
}

// Recv is a blocking receive.
func (r *Rank) Recv(src int, size units.Bytes, tag int) {
	start := r.Now()
	req := r.irecv(src, size, tag, false)
	r.proc.WaitSignal(req.done)
	r.reportP2P(RoutineRecv, size, 1, r.Now()-start, src)
}

// Sendrecv is a combined blocking exchange.
func (r *Rank) Sendrecv(dst int, sendSize units.Bytes, src int, recvSize units.Bytes, tag int) {
	start := r.Now()
	sreq := r.isend(dst, sendSize, tag, false)
	rreq := r.irecv(src, recvSize, tag, false)
	r.proc.WaitSignal(sreq.done)
	r.proc.WaitSignal(rreq.done)
	if r.w.obs != nil {
		r.peerScratch = append(r.peerScratch[:0], dst, src)
		r.w.obs.OnRoutine(r.id, RoutineEvent{Routine: RoutineSendrecv, Bytes: sendSize, Count: 2, Elapsed: r.Now() - start, Peers: r.peerScratch})
	}
}

// --- collectives ----------------------------------------------------------

// collective implements the synchronizing collective template: enter, wait
// for everyone, pay the algorithm cost from the last arrival, leave
// together.
func (r *Rank) collective(rt Routine, size units.Bytes, cost units.Seconds) {
	w := r.w
	start := r.Now()
	seq := r.collSeq
	r.collSeq++

	op, ok := w.colls[seq]
	if !ok {
		op = &collOp{routine: rt, size: size, done: w.newSignal("coll")}
		w.colls[seq] = op
	}
	if op.routine != rt {
		panic(fmt.Sprintf("mpi: collective mismatch at seq %d: rank %d called %s, others %s",
			seq, r.id, rt, op.routine))
	}
	op.arrived++
	if t := r.Now(); t > op.last {
		op.last = t
	}
	if op.arrived == w.size {
		finish := op.last + cost
		delete(w.colls, seq)
		w.fireAt(op.done, finish)
	}
	r.proc.WaitSignal(op.done)
	r.report(rt, size, 1, r.Now()-start)
}

// Bcast broadcasts size bytes from root to all ranks.
func (r *Rank) Bcast(root int, size units.Bytes) {
	_ = root // synchronizing model: root identity does not change the cost
	r.collective(RoutineBcast, size, r.w.Model.Bcast(size, r.w.size))
}

// Reduce combines size bytes from all ranks at root.
func (r *Rank) Reduce(root int, size units.Bytes) {
	_ = root
	r.collective(RoutineReduce, size, r.w.Model.Reduce(size, r.w.size))
}

// Allreduce combines and redistributes size bytes.
func (r *Rank) Allreduce(size units.Bytes) {
	r.collective(RoutineAllreduce, size, r.w.Model.Allreduce(size, r.w.size))
}

// Allgather gathers size bytes from every rank to all ranks.
func (r *Rank) Allgather(size units.Bytes) {
	r.collective(RoutineAllgather, size, r.w.Model.Allgather(size, r.w.size))
}

// Alltoall exchanges size bytes between every rank pair.
func (r *Rank) Alltoall(size units.Bytes) {
	r.collective(RoutineAlltoall, size, r.w.Model.Alltoall(size, r.w.size))
}

// Barrier synchronizes all ranks.
func (r *Rank) Barrier() {
	r.collective(RoutineBarrier, 0, r.w.Model.Barrier(r.w.size))
}
