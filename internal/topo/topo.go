// Package topo models interconnect topologies at the granularity SWAPP's
// communication substrate needs: given two node indices, how many network
// hops separate them, and what the network's diameter and average distance
// look like. Three families cover Table 2: switched fat-trees (InfiniBand),
// the HPS Federation multistage switch (Hydra), and BlueGene/P's 3-D torus.
package topo

import (
	"fmt"

	"repro/internal/arch"
)

// Topology answers distance queries over node indices [0, Nodes).
type Topology interface {
	// Name identifies the topology instance.
	Name() string
	// Nodes is the number of endpoints.
	Nodes() int
	// Hops returns the switch/router hops between two nodes. Zero for
	// a node to itself.
	Hops(a, b int) int
	// Diameter is the maximum hop count between any node pair.
	Diameter() int
}

// AverageHops estimates the mean hop distance over the first n nodes of t
// (a job's placement), by exact enumeration for small n and striding for
// large.
func AverageHops(t Topology, n int) float64 {
	if n > t.Nodes() {
		n = t.Nodes()
	}
	if n <= 1 {
		return 0
	}
	stride := 1
	if n > 64 {
		stride = n / 64
	}
	var sum float64
	var count int
	for a := 0; a < n; a += stride {
		for b := 0; b < n; b += stride {
			if a == b {
				continue
			}
			sum += float64(t.Hops(a, b))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// FatTree is a two-level switched network: nodes hang off leaf switches of
// the given radix; leaves connect through a spine. Same-leaf traffic takes
// 1 hop (through the leaf switch), cross-leaf traffic 3 (leaf–spine–leaf).
type FatTree struct {
	name      string
	nodes     int
	leafRadix int
}

// NewFatTree builds a fat-tree over nodes endpoints with leafRadix nodes
// per leaf switch.
func NewFatTree(name string, nodes, leafRadix int) *FatTree {
	if nodes <= 0 || leafRadix <= 0 {
		panic("topo: bad fat-tree shape")
	}
	return &FatTree{name: name, nodes: nodes, leafRadix: leafRadix}
}

// Name implements Topology.
func (f *FatTree) Name() string { return f.name }

// Nodes implements Topology.
func (f *FatTree) Nodes() int { return f.nodes }

// Hops implements Topology.
func (f *FatTree) Hops(a, b int) int {
	if a == b {
		return 0
	}
	if a/f.leafRadix == b/f.leafRadix {
		return 1
	}
	return 3
}

// Diameter implements Topology.
func (f *FatTree) Diameter() int {
	if f.nodes <= f.leafRadix {
		return 1
	}
	return 3
}

// Torus3D is a 3-dimensional torus with wraparound links; hop distance is
// the wrapped Manhattan distance. Node i maps to coordinates in row-major
// (x fastest) order.
type Torus3D struct {
	name string
	dims [3]int
}

// NewTorus3D builds an X×Y×Z torus.
func NewTorus3D(name string, dims [3]int) *Torus3D {
	if dims[0] <= 0 || dims[1] <= 0 || dims[2] <= 0 {
		panic("topo: bad torus dims")
	}
	return &Torus3D{name: name, dims: dims}
}

// Name implements Topology.
func (t *Torus3D) Name() string { return t.name }

// Nodes implements Topology.
func (t *Torus3D) Nodes() int { return t.dims[0] * t.dims[1] * t.dims[2] }

// Coords returns the (x, y, z) position of node i.
func (t *Torus3D) Coords(i int) (x, y, z int) {
	x = i % t.dims[0]
	y = (i / t.dims[0]) % t.dims[1]
	z = i / (t.dims[0] * t.dims[1])
	return
}

// wrapDist is the ring distance between coordinates on an axis of length n.
func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Hops implements Topology.
func (t *Torus3D) Hops(a, b int) int {
	ax, ay, az := t.Coords(a)
	bx, by, bz := t.Coords(b)
	return wrapDist(ax, bx, t.dims[0]) + wrapDist(ay, by, t.dims[1]) + wrapDist(az, bz, t.dims[2])
}

// Diameter implements Topology.
func (t *Torus3D) Diameter() int {
	return t.dims[0]/2 + t.dims[1]/2 + t.dims[2]/2
}

// TreeDepth returns the depth of a balanced binary combining tree over n
// nodes — the cost shape of BlueGene/P's dedicated collective network.
func TreeDepth(n int) int {
	if n <= 1 {
		return 0
	}
	d := 0
	for c := 1; c < n; c *= 2 {
		d++
	}
	return d
}

// For constructs the topology of a machine's interconnect.
func For(m *arch.Machine) Topology {
	switch m.Net.Kind {
	case arch.TopoTorus3D:
		return NewTorus3D(m.Net.Name, m.Net.TorusDims)
	case arch.TopoFatTree:
		// Leaf radix ~ a 24-port switch half used for nodes.
		return NewFatTree(m.Net.Name, m.Nodes(), 12)
	case arch.TopoFederation:
		// HPS: 16-way node groups through the multistage switch.
		return NewFatTree(m.Net.Name, m.Nodes(), 16)
	default:
		panic(fmt.Sprintf("topo: unknown interconnect kind %q", m.Net.Kind))
	}
}
