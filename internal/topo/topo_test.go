package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestFatTreeHops(t *testing.T) {
	f := NewFatTree("ib", 48, 12)
	if f.Hops(0, 0) != 0 {
		t.Error("self distance must be 0")
	}
	if f.Hops(0, 11) != 1 {
		t.Error("same leaf must be 1 hop")
	}
	if f.Hops(0, 12) != 3 {
		t.Error("cross leaf must be 3 hops")
	}
	if f.Diameter() != 3 {
		t.Error("two-level diameter is 3")
	}
	small := NewFatTree("ib", 8, 12)
	if small.Diameter() != 1 {
		t.Error("single-leaf system diameter is 1")
	}
}

func TestTorusCoordsRoundTrip(t *testing.T) {
	tor := NewTorus3D("torus", [3]int{4, 3, 2})
	seen := map[[3]int]bool{}
	for i := 0; i < tor.Nodes(); i++ {
		x, y, z := tor.Coords(i)
		if x < 0 || x >= 4 || y < 0 || y >= 3 || z < 0 || z >= 2 {
			t.Fatalf("node %d: coords (%d,%d,%d) out of range", i, x, y, z)
		}
		key := [3]int{x, y, z}
		if seen[key] {
			t.Fatalf("duplicate coords %v", key)
		}
		seen[key] = true
	}
	if len(seen) != 24 {
		t.Errorf("coords cover %d cells, want 24", len(seen))
	}
}

func TestTorusWraparound(t *testing.T) {
	tor := NewTorus3D("torus", [3]int{8, 8, 16})
	// Nodes 0 and 7 on the x axis are 1 hop apart via wraparound.
	if got := tor.Hops(0, 7); got != 1 {
		t.Errorf("wrap distance = %d, want 1", got)
	}
	if got := tor.Hops(0, 4); got != 4 {
		t.Errorf("half-ring distance = %d, want 4", got)
	}
	if tor.Diameter() != 4+4+8 {
		t.Errorf("diameter = %d, want 16", tor.Diameter())
	}
}

// Properties: symmetry, identity, triangle inequality, diameter bound.
func TestTorusMetricProperties(t *testing.T) {
	tor := NewTorus3D("torus", [3]int{8, 8, 16})
	n := tor.Nodes()
	f := func(a, b, c uint16) bool {
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		dxy, dyx := tor.Hops(x, y), tor.Hops(y, x)
		if dxy != dyx {
			return false
		}
		if tor.Hops(x, x) != 0 {
			return false
		}
		if dxy > tor.Diameter() {
			return false
		}
		return tor.Hops(x, z) <= dxy+tor.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFatTreeMetricProperties(t *testing.T) {
	ft := NewFatTree("ib", 64, 12)
	f := func(a, b uint16) bool {
		x, y := int(a)%64, int(b)%64
		if ft.Hops(x, y) != ft.Hops(y, x) {
			return false
		}
		return ft.Hops(x, x) == 0 && ft.Hops(x, y) <= ft.Diameter()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ n, d int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := TreeDepth(c.n); got != c.d {
			t.Errorf("TreeDepth(%d) = %d, want %d", c.n, got, c.d)
		}
	}
}

func TestAverageHops(t *testing.T) {
	ft := NewFatTree("ib", 24, 12)
	// Within one leaf: everything is 1 hop.
	if avg := AverageHops(ft, 12); avg != 1 {
		t.Errorf("single-leaf average = %v, want 1", avg)
	}
	full := AverageHops(ft, 24)
	if full <= 1 || full >= 3 {
		t.Errorf("two-leaf average = %v, want in (1,3)", full)
	}
	if AverageHops(ft, 1) != 0 {
		t.Error("single node has no distance")
	}
	// Requesting more nodes than exist clamps.
	if AverageHops(ft, 100) != full {
		t.Error("clamp to topology size broken")
	}
}

func TestForBuildsFromMachines(t *testing.T) {
	for _, m := range arch.All() {
		tp := For(m)
		if tp.Nodes() < m.Nodes() {
			t.Errorf("%s: topology smaller than machine (%d < %d)", m.Name, tp.Nodes(), m.Nodes())
		}
		switch m.Name {
		case arch.BlueGene:
			if _, ok := tp.(*Torus3D); !ok {
				t.Errorf("BG/P should be a torus, got %T", tp)
			}
		default:
			if _, ok := tp.(*FatTree); !ok {
				t.Errorf("%s should be switched, got %T", m.Name, tp)
			}
		}
	}
}

func TestNewPanicsOnBadShapes(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFatTree("x", 0, 12) },
		func() { NewFatTree("x", 12, 0) },
		func() { NewTorus3D("x", [3]int{0, 1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad shape must panic")
				}
			}()
			fn()
		}()
	}
}
