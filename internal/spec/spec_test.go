package spec

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/hpm"
)

func TestSuiteComposition(t *testing.T) {
	var cint, cfp int
	seen := map[string]bool{}
	for _, b := range Suite() {
		if seen[b.Name()] {
			t.Errorf("duplicate benchmark %s", b.Name())
		}
		seen[b.Name()] = true
		switch b.Group {
		case CINT:
			cint++
			if b.Sig.FPFraction != 0 {
				t.Errorf("%s: integer benchmark with FP work", b.Name())
			}
		case CFP:
			cfp++
			if b.Sig.FPFraction <= 0.1 {
				t.Errorf("%s: FP benchmark with trivial FP mix", b.Name())
			}
		default:
			t.Errorf("%s: unknown group %q", b.Name(), b.Group)
		}
	}
	if cint != 12 || cfp != 17 {
		t.Errorf("suite = %d CINT + %d CFP, want 12 + 17", cint, cfp)
	}
}

func TestAllSignaturesValid(t *testing.T) {
	for _, b := range Suite() {
		if err := b.Sig.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name(), err)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if b.Group != CINT {
		t.Error("mcf is CINT")
	}
	if _, err := ByName("999.nope"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestNamesOrdered(t *testing.T) {
	names := Names()
	if len(names) != 29 {
		t.Fatalf("len(Names) = %d", len(names))
	}
	if names[0] != "400.perlbench" || names[len(names)-1] != "482.sphinx3" {
		t.Errorf("suite ordering broken: %v … %v", names[0], names[len(names)-1])
	}
}

func TestRunBenchmark(t *testing.T) {
	m := arch.MustGet(arch.Hydra)
	b, _ := ByName("470.lbm")
	r, err := RunBenchmark(b, m, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Runtime() <= 0 {
		t.Error("non-positive runtime")
	}
	if r.SMT.Runtime <= r.ST.Runtime {
		t.Error("an SMT thread sharing a core must be slower than ST")
	}
	cv := r.CharacterVector()
	if len(cv) != 2*hpm.NumMetrics {
		t.Errorf("character vector length %d, want %d", len(cv), 2*hpm.NumMetrics)
	}
}

func TestRunBenchmarkNoSMTMachine(t *testing.T) {
	m := arch.MustGet(arch.BlueGene) // SMTWays == 1
	b, _ := ByName("453.povray")
	r, err := RunBenchmark(b, m, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.SMT != r.ST {
		t.Error("machines without SMT must reuse the ST observation")
	}
}

func TestRunSuiteCoversPool(t *testing.T) {
	m := arch.MustGet(arch.Hydra)
	res, err := RunSuite(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 29 {
		t.Fatalf("suite results = %d", len(res))
	}
	for name, r := range res {
		if r.Bench != name || r.Machine != arch.Hydra {
			t.Errorf("%s: mislabeled result", name)
		}
	}
}

func TestSuiteSpansBehaviourSpace(t *testing.T) {
	// The GA needs diversity: the pool must contain both clearly
	// compute-bound and clearly memory-bound members on the base machine.
	m := arch.MustGet(arch.Hydra)
	res, err := RunSuite(m, false)
	if err != nil {
		t.Fatal(err)
	}
	var minStallShare, maxStallShare = 1.0, 0.0
	for _, r := range res {
		share := r.ST.CPIStallTotal / r.ST.CPI
		if share < minStallShare {
			minStallShare = share
		}
		if share > maxStallShare {
			maxStallShare = share
		}
	}
	if minStallShare > 0.35 {
		t.Errorf("no compute-bound member: min stall share %v", minStallShare)
	}
	if maxStallShare < 0.6 {
		t.Errorf("no memory-bound member: max stall share %v", maxStallShare)
	}
}

func TestRelativeBehaviourAcrossPool(t *testing.T) {
	m := arch.MustGet(arch.Hydra)
	mcf, _ := ByName("429.mcf")
	povray, _ := ByName("453.povray")
	rm, err := RunBenchmark(mcf, m, false, "")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RunBenchmark(povray, m, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if rm.ST.CPI <= rp.ST.CPI {
		t.Error("mcf (pointer-chasing) must have much higher CPI than povray")
	}
	if rm.ST.DataFromLocal <= rp.ST.DataFromLocal {
		t.Error("mcf must reload from memory far more than povray")
	}
}

func TestSortedNames(t *testing.T) {
	m := arch.MustGet(arch.Hydra)
	res, err := RunSuite(m, false)
	if err != nil {
		t.Fatal(err)
	}
	names := SortedNames(res)
	if len(names) != 29 || names[0] != "400.perlbench" {
		t.Errorf("SortedNames broken: %v", names[:3])
	}
	for i, n := range Names() {
		if names[i] != n {
			t.Fatalf("order diverges at %d: %s vs %s", i, names[i], n)
		}
	}
}

func TestThroughputRuntimesPlausible(t *testing.T) {
	// SPEC ref runs take minutes to hours, not microseconds or days, on
	// every machine model (BG/P's 850 MHz embedded core sits at the slow
	// end).
	for _, name := range arch.Names() {
		m := arch.MustGet(name)
		res, err := RunSuite(m, false)
		if err != nil {
			t.Fatal(err)
		}
		for bn, r := range res {
			if r.Runtime() < 30 || r.Runtime() > 86400 {
				t.Errorf("%s on %s: implausible runtime %.3gs", bn, name, r.Runtime())
			}
			if math.IsNaN(r.Runtime()) {
				t.Errorf("%s on %s: NaN runtime", bn, name)
			}
		}
	}
}

func TestNameFormat(t *testing.T) {
	for _, n := range Names() {
		if !strings.Contains(n, ".") {
			t.Errorf("benchmark %q missing SPEC number prefix", n)
		}
	}
}
