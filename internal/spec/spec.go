// Package spec models the SPEC CPU2006 benchmark suite — the surrogate pool
// SWAPP's compute projection draws from (§2.1). The real suite is
// proprietary; this substitution gives each of the 29 benchmarks (12 CINT +
// 17 CFP) a synthetic workload signature whose instruction mix, working set
// and locality reflect the published characterisations of the originals:
// mcf and omnetpp are pointer-chasing and latency-bound, libquantum and lbm
// stream at memory bandwidth, povray and gamess live in cache, and so on.
//
// What matters for SWAPP is not any single benchmark's absolute time but
// that the pool spans the behaviour space: the genetic algorithm must be
// able to find a weighted subset that behaves like a given application. The
// suite is run in throughput mode (one instance per core, the paper's §4
// convention for relating serial benchmarks to parallel ranks).
package spec

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/hpm"
	"repro/internal/units"
	"repro/internal/workload"
)

// SuiteGroup labels the two CPU2006 sub-suites.
type SuiteGroup string

// Sub-suites.
const (
	CINT SuiteGroup = "CINT2006"
	CFP  SuiteGroup = "CFP2006"
)

// Benchmark is one SPEC CPU2006 component: a signature plus its sub-suite.
type Benchmark struct {
	Sig   workload.Signature
	Group SuiteGroup
}

// Name returns the benchmark's SPEC name (e.g. "429.mcf").
func (b *Benchmark) Name() string { return b.Sig.Name }

// sig is a compact constructor for benchmark signatures. instr is in units
// of 1e12 dynamic instructions; fp/mem/br are mix fractions; ws is the
// working set; alpha/stream/dialect as in workload.Signature.
func sig(name string, instr, fp, mem, br, brMiss, ilp float64, ws units.Bytes, alpha, stream, dialect float64) workload.Signature {
	return workload.Signature{
		Name:               name,
		Instructions:       instr * 1e12,
		FPFraction:         fp,
		MemFraction:        mem,
		BranchFraction:     br,
		BranchMissRate:     brMiss,
		ILP:                ilp,
		Footprint:          ws,
		Alpha:              alpha,
		StreamFraction:     stream,
		RemoteFraction:     0.04,
		DialectSensitivity: dialect,
	}
}

// suite is the full CPU2006 pool, in SPEC numbering order.
var suite = []*Benchmark{
	// ---- CINT2006 ------------------------------------------------------
	{sig("400.perlbench", 1.2, 0.00, 0.38, 0.21, 0.050, 1.9, 60*units.MiB, 0.30, 0.02, 1.6), CINT},
	{sig("401.bzip2", 1.4, 0.00, 0.34, 0.15, 0.060, 1.7, 8*units.MiB, 0.45, 0.10, 1.1), CINT},
	{sig("403.gcc", 1.0, 0.00, 0.40, 0.20, 0.055, 1.6, 80*units.MiB, 0.40, 0.05, 1.7), CINT},
	{sig("429.mcf", 0.4, 0.00, 0.45, 0.17, 0.065, 1.1, 860*units.MiB, 0.85, 0.05, 1.0), CINT},
	{sig("445.gobmk", 1.1, 0.00, 0.33, 0.19, 0.085, 1.5, 28*units.MiB, 0.35, 0.02, 1.4), CINT},
	{sig("456.hmmer", 1.9, 0.00, 0.42, 0.08, 0.015, 2.8, 24*units.MiB, 0.25, 0.08, 0.9), CINT},
	{sig("458.sjeng", 1.3, 0.00, 0.29, 0.20, 0.090, 1.6, 170*units.MiB, 0.30, 0.02, 1.3), CINT},
	{sig("462.libquantum", 1.6, 0.00, 0.36, 0.13, 0.010, 2.4, 96*units.MiB, 0.95, 0.85, 0.8), CINT},
	{sig("464.h264ref", 2.2, 0.00, 0.41, 0.09, 0.025, 2.6, 26*units.MiB, 0.30, 0.12, 1.2), CINT},
	{sig("471.omnetpp", 0.7, 0.00, 0.43, 0.18, 0.045, 1.2, 150*units.MiB, 0.75, 0.04, 1.3), CINT},
	{sig("473.astar", 0.9, 0.00, 0.40, 0.16, 0.055, 1.3, 180*units.MiB, 0.65, 0.04, 1.1), CINT},
	{sig("483.xalancbmk", 0.9, 0.00, 0.42, 0.22, 0.040, 1.4, 190*units.MiB, 0.60, 0.04, 1.6), CINT},
	// ---- CFP2006 -------------------------------------------------------
	{sig("410.bwaves", 1.8, 0.36, 0.40, 0.03, 0.005, 2.9, 880*units.MiB, 0.90, 0.65, 0.9), CFP},
	{sig("416.gamess", 2.4, 0.30, 0.36, 0.07, 0.012, 2.7, 12*units.MiB, 0.25, 0.03, 1.2), CFP},
	{sig("433.milc", 1.0, 0.28, 0.42, 0.04, 0.006, 2.0, 680*units.MiB, 0.88, 0.55, 0.9), CFP},
	{sig("434.zeusmp", 1.5, 0.32, 0.38, 0.05, 0.008, 2.4, 510*units.MiB, 0.70, 0.40, 1.0), CFP},
	{sig("435.gromacs", 2.0, 0.34, 0.34, 0.06, 0.010, 2.9, 14*units.MiB, 0.30, 0.06, 1.1), CFP},
	{sig("436.cactusADM", 1.3, 0.38, 0.41, 0.02, 0.004, 2.2, 640*units.MiB, 0.80, 0.50, 0.9), CFP},
	{sig("437.leslie3d", 1.4, 0.35, 0.42, 0.03, 0.005, 2.3, 130*units.MiB, 0.78, 0.55, 0.9), CFP},
	{sig("444.namd", 2.3, 0.33, 0.33, 0.05, 0.009, 3.0, 46*units.MiB, 0.35, 0.05, 1.0), CFP},
	{sig("447.dealII", 1.5, 0.26, 0.40, 0.09, 0.020, 2.1, 120*units.MiB, 0.55, 0.12, 1.3), CFP},
	{sig("450.soplex", 0.8, 0.22, 0.44, 0.10, 0.030, 1.5, 430*units.MiB, 0.72, 0.15, 1.2), CFP},
	{sig("453.povray", 1.9, 0.28, 0.35, 0.12, 0.030, 2.4, 1*units.MiB, 0.20, 0.01, 1.3), CFP},
	{sig("454.calculix", 1.8, 0.30, 0.37, 0.06, 0.012, 2.5, 80*units.MiB, 0.50, 0.18, 1.1), CFP},
	{sig("459.GemsFDTD", 1.2, 0.34, 0.43, 0.03, 0.004, 2.2, 800*units.MiB, 0.85, 0.60, 0.9), CFP},
	{sig("465.tonto", 1.9, 0.31, 0.36, 0.08, 0.015, 2.5, 40*units.MiB, 0.35, 0.05, 1.2), CFP},
	{sig("470.lbm", 1.1, 0.37, 0.42, 0.01, 0.002, 2.6, 400*units.MiB, 0.92, 0.80, 0.8), CFP},
	{sig("481.wrf", 1.7, 0.30, 0.38, 0.06, 0.011, 2.3, 680*units.MiB, 0.60, 0.35, 1.1), CFP},
	{sig("482.sphinx3", 1.3, 0.25, 0.41, 0.08, 0.018, 1.9, 180*units.MiB, 0.68, 0.25, 1.1), CFP},
}

// Suite returns the full 29-benchmark CPU2006 pool in SPEC numbering order.
// The returned slice is shared; callers must not mutate it.
func Suite() []*Benchmark { return suite }

// Names returns all benchmark names in suite order.
func Names() []string {
	out := make([]string, len(suite))
	for i, b := range suite {
		out[i] = b.Name()
	}
	return out
}

// ByName finds a benchmark by its SPEC name.
func ByName(name string) (*Benchmark, error) {
	for _, b := range suite {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("spec: unknown benchmark %q", name)
}

// Result is one benchmark observation on one machine: ST and SMT throughput
// runs with their counters (the paper collects both modes, §4).
type Result struct {
	Bench   string
	Machine string

	ST  hpm.Counters
	SMT hpm.Counters
}

// Runtime returns the ST throughput-mode runtime, the score SWAPP's Eq. 2
// consumes.
func (r *Result) Runtime() units.Seconds { return r.ST.Runtime }

// CharacterVector concatenates the ST and SMT metric vectors — the
// behaviour coordinates used for surrogate matching. The paper motivates
// the two modes as observing the benchmark under different cache/bandwidth
// pressure.
func (r *Result) CharacterVector() []float64 {
	return append(r.ST.Vector(), r.SMT.Vector()...)
}

// RunBenchmark executes one benchmark on a machine in throughput mode
// (every core busy with an instance). With noise set, counters carry
// measurement jitter keyed by noiseKey.
func RunBenchmark(b *Benchmark, m *arch.Machine, noise bool, noiseKey string) (Result, error) {
	st, err := hpm.Run(&b.Sig, hpm.Config{
		Machine: m, Mode: hpm.ST,
		ActiveTasksPerNode: m.CoresPerNode,
		MeasureNoise:       noise, NoiseKey: noiseKey + "|st",
	})
	if err != nil {
		return Result{}, fmt.Errorf("spec: %s on %s: %w", b.Name(), m.Name, err)
	}
	smtCfg := hpm.Config{
		Machine: m, Mode: hpm.SMT,
		ActiveTasksPerNode: m.CoresPerNode * m.Proc.SMTWays,
		MeasureNoise:       noise, NoiseKey: noiseKey + "|smt",
	}
	if m.Proc.SMTWays <= 1 {
		// No SMT on this machine: reuse the ST observation so the
		// character vector stays fixed-width.
		smtCfg.Mode = hpm.ST
		smtCfg.ActiveTasksPerNode = m.CoresPerNode
	}
	smt, err := hpm.Run(&b.Sig, smtCfg)
	if err != nil {
		return Result{}, fmt.Errorf("spec: %s on %s (SMT): %w", b.Name(), m.Name, err)
	}
	return Result{Bench: b.Name(), Machine: m.Name, ST: st, SMT: smt}, nil
}

// RunSuite runs the whole pool on a machine, returning results keyed by
// benchmark name. This stands in for "published SPEC data for the target".
func RunSuite(m *arch.Machine, noise bool) (map[string]Result, error) {
	out := make(map[string]Result, len(suite))
	for _, b := range suite {
		r, err := RunBenchmark(b, m, noise, "suite")
		if err != nil {
			return nil, err
		}
		out[b.Name()] = r
	}
	return out, nil
}

// SortedNames returns the keys of a result map in suite order (unknown names
// sorted last alphabetically), for deterministic iteration.
func SortedNames(results map[string]Result) []string {
	order := make(map[string]int, len(suite))
	for i, b := range suite {
		order[b.Name()] = i
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}
