// Package figures regenerates every table and figure of the paper's
// evaluation (§4): Table 1 (benchmark communication characteristics on the
// base machine), Table 2 (system configurations), Figures 3–9 (percent
// projection error per component, per benchmark, per target system) and
// the summary statistics (per-system average error and standard deviation,
// share of over-projections).
//
// A Runner caches the expensive artifacts — benchmark pipelines per
// machine pair, application characterisations, and validations — so that
// one process can assemble all figures without repeating work. It is safe
// for concurrent use: the caches are single-flight (concurrent requests
// for the same artifact share one computation), and AllFigures, Summarize,
// BenchFigure and LUFigure evaluate their validation cells on a shared
// bounded worker pool before assembling the output in the paper's fixed
// order — so the emitted figures and statistics are byte-identical to a
// serial run whatever Workers is set to.
package figures

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stats"
)

// Targets lists the three projection targets in the paper's order.
func Targets() []string {
	return []string{arch.BlueGene, arch.Power6, arch.Westmere}
}

// Cell is one bar group of a figure: the absolute percent error of each
// projected component at one (core count, class).
type Cell struct {
	Ck    int
	Class nas.Class

	// Component |errors| in percent, matching the paper's legend.
	P2PNB       float64 // non-blocking point-to-point
	P2PB        float64 // blocking point-to-point (absent in NAS-MZ: 0)
	Collectives float64
	OverallComm float64
	Computation float64
	Combined    float64

	// Signed combined error, for the over-projection statistic.
	CombinedSigned float64
}

// Figure is one of the paper's Figures 3–9: a benchmark on a target
// system across core counts and classes.
type Figure struct {
	ID     string
	Title  string
	Bench  nas.Benchmark
	Target string
	Cells  []Cell
}

// MeanCombined is the figure's average |combined error|.
func (f *Figure) MeanCombined() float64 {
	var xs []float64
	for _, c := range f.Cells {
		xs = append(xs, c.Combined)
	}
	return stats.Mean(xs)
}

// figureIDs maps (benchmark, target) to the paper's figure numbering.
// LU-MZ shares Figure 6 across all three systems.
var figureIDs = map[nas.Benchmark]map[string]string{
	nas.BT: {arch.BlueGene: "fig3", arch.Power6: "fig4", arch.Westmere: "fig5"},
	nas.LU: {arch.BlueGene: "fig6", arch.Power6: "fig6", arch.Westmere: "fig6"},
	nas.SP: {arch.BlueGene: "fig7", arch.Power6: "fig8", arch.Westmere: "fig9"},
}

// FigureID returns the paper's figure id for a (benchmark, target) pair.
func FigureID(b nas.Benchmark, target string) string { return figureIDs[b][target] }

// lazy is a single-flight cache cell: the first get runs the build
// function once; concurrent and later gets share its outcome.
type lazy[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (l *lazy[T]) get(build func() (T, error)) (T, error) {
	l.once.Do(func() { l.val, l.err = build() })
	return l.val, l.err
}

// cell returns (creating under the lock on first use) the cache cell for a
// key.
func cellFor[T any](mu *sync.Mutex, m map[string]*lazy[T], key string) *lazy[T] {
	mu.Lock()
	defer mu.Unlock()
	e, ok := m[key]
	if !ok {
		e = &lazy[T]{}
		m[key] = e
	}
	return e
}

// Runner executes and caches the full evaluation.
type Runner struct {
	Base string
	// Verbose, if set, receives progress lines. The Runner serialises
	// calls, so the hook need not be safe for concurrent use itself.
	Verbose func(format string, args ...any)
	// Workers bounds the evaluation pool shared by AllFigures, Summarize
	// and the per-figure generators, and the pipelines' internal fan-out:
	// 0 means runtime.GOMAXPROCS(0), 1 the legacy serial path. Output is
	// identical for every value.
	Workers int
	// Obs, when non-nil, instruments the evaluation: per-cell spans and
	// timings (figures.cell_seconds), pipeline and characterisation spans
	// via the underlying core.Pipeline, and the GA's counters. Figures are
	// byte-identical with Obs set or nil.
	Obs *obs.Scope

	mu          sync.Mutex // guards the cache maps
	logMu       sync.Mutex // serialises Verbose calls
	pipelines   map[string]*lazy[*core.Pipeline]
	apps        map[string]*lazy[*core.AppModel]
	validations map[string]*lazy[*core.Validation]
}

// NewRunner creates a Runner projecting from the paper's base machine.
func NewRunner() *Runner {
	return &Runner{
		Base:        arch.Hydra,
		pipelines:   map[string]*lazy[*core.Pipeline]{},
		apps:        map[string]*lazy[*core.AppModel]{},
		validations: map[string]*lazy[*core.Validation]{},
	}
}

// logf emits progress if verbose.
func (r *Runner) logf(format string, args ...any) {
	if r.Verbose != nil {
		r.logMu.Lock()
		defer r.logMu.Unlock()
		r.Verbose(format, args...)
	}
}

// workers resolves the Runner's pool size.
func (r *Runner) workers() int { return par.Workers(r.Workers) }

// pipeline returns (building on first use) the benchmark pipeline for a
// target. Concurrent callers for the same target share one build.
func (r *Runner) pipeline(target string) (*core.Pipeline, error) {
	e := cellFor(&r.mu, r.pipelines, target)
	return e.get(func() (*core.Pipeline, error) {
		base, err := arch.Get(r.Base)
		if err != nil {
			return nil, err
		}
		tgt, err := arch.Get(target)
		if err != nil {
			return nil, err
		}
		r.logf("gathering benchmark data for %s → %s (SPEC + IMB)", r.Base, target)
		// IMB tables at every core count any app profile uses.
		counts := map[int]bool{}
		for _, b := range nas.Benchmarks() {
			for _, c := range charCounts(b) {
				counts[c] = true
			}
		}
		var list []int
		for c := range counts {
			list = append(list, c)
		}
		sort.Ints(list)
		return core.NewPipelineOpts(base, tgt, list, core.Options{Workers: r.Workers, Obs: r.Obs})
	})
}

// charCounts returns the base-machine core counts an app is characterised
// at: the paper's sweep, extended downward for LU-MZ so that the scaling
// models have enough points.
func charCounts(b nas.Benchmark) []int {
	if b == nas.LU {
		return []int{4, 8, 16}
	}
	return nas.PaperRankCounts(b)
}

// app returns (characterising on first use) the AppModel for a benchmark
// and class against a target's pipeline.
func (r *Runner) app(target string, b nas.Benchmark, c nas.Class) (*core.AppModel, error) {
	key := fmt.Sprintf("%s|%s|%c", target, b, c)
	e := cellFor(&r.mu, r.apps, key)
	return e.get(func() (*core.AppModel, error) {
		p, err := r.pipeline(target)
		if err != nil {
			return nil, err
		}
		r.logf("characterising %s.%c on %s", b, c, r.Base)
		return p.CharacterizeApp(b, c, charCounts(b))
	})
}

// Validate returns (computing on first use) the validation of one
// experiment cell.
func (r *Runner) Validate(target string, b nas.Benchmark, c nas.Class, ck int) (*core.Validation, error) {
	key := fmt.Sprintf("%s|%s|%c|%d", target, b, c, ck)
	e := cellFor(&r.mu, r.validations, key)
	return e.get(func() (*core.Validation, error) {
		sp := r.Obs.Child("figures.cell." + key)
		defer sp.End()
		start := time.Now()
		p, err := r.pipeline(target)
		if err != nil {
			return nil, err
		}
		a, err := r.app(target, b, c)
		if err != nil {
			return nil, err
		}
		r.logf("projecting %s.%c@%d onto %s and validating", b, c, ck, target)
		v, err := p.Validate(a, ck)
		if err == nil && sp.Enabled() {
			sp.Count("figures.cells", 1)
			sp.Observe("figures.cell_seconds", time.Since(start).Seconds())
		}
		return v, err
	})
}

// cellKey identifies one experiment cell of the evaluation grid.
type cellKey struct {
	target string
	bench  nas.Benchmark
	class  nas.Class
	ck     int
}

// prewarm evaluates a set of cells on the Runner's shared worker pool,
// stopping at the first error. Afterwards every cell is cached, so callers
// can assemble output serially in any fixed order.
func (r *Runner) prewarm(cells []cellKey) error {
	return par.ForEach(r.workers(), len(cells), func(i int) error {
		k := cells[i]
		_, err := r.Validate(k.target, k.bench, k.class, k.ck)
		return err
	})
}

// benchCells is the evaluation grid of one (benchmark, target) figure.
func benchCells(b nas.Benchmark, target string) []cellKey {
	var cells []cellKey
	for _, ck := range nas.PaperRankCounts(b) {
		for _, class := range nas.Classes() {
			cells = append(cells, cellKey{target, b, class, ck})
		}
	}
	return cells
}

// allCells is the full §4 grid in paper order, deduplicated.
func allCells() []cellKey {
	seen := map[cellKey]bool{}
	var cells []cellKey
	add := func(ks []cellKey) {
		for _, k := range ks {
			if !seen[k] {
				seen[k] = true
				cells = append(cells, k)
			}
		}
	}
	for _, target := range Targets() {
		for _, b := range nas.Benchmarks() {
			add(benchCells(b, target))
		}
	}
	return cells
}

// abs returns |x|.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// cell converts a validation into a figure cell.
func cell(v *core.Validation, ck int, class nas.Class) Cell {
	return Cell{
		Ck:             ck,
		Class:          class,
		P2PNB:          abs(v.ErrByClass[mpi.ClassP2PNB]),
		P2PB:           abs(v.ErrByClass[mpi.ClassP2PB]),
		Collectives:    abs(v.ErrByClass[mpi.ClassCollective]),
		OverallComm:    abs(v.ErrComm),
		Computation:    abs(v.ErrCompute),
		Combined:       abs(v.ErrCombined),
		CombinedSigned: v.ErrCombined,
	}
}

// BenchFigure regenerates the figure for a benchmark on one target:
// Figures 3–5 (BT), 7–9 (SP), or one system's bars of Figure 6 (LU). The
// figure's cells are evaluated on the shared worker pool and assembled in
// the paper's (core count, class) order.
func (r *Runner) BenchFigure(b nas.Benchmark, target string) (*Figure, error) {
	tgt, err := arch.Get(target)
	if err != nil {
		return nil, err
	}
	if err := r.prewarm(benchCells(b, target)); err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     FigureID(b, target),
		Title:  fmt.Sprintf("%s Results on %s", b, tgt.FullName),
		Bench:  b,
		Target: target,
	}
	for _, ck := range nas.PaperRankCounts(b) {
		for _, class := range nas.Classes() {
			v, err := r.Validate(target, b, class, ck)
			if err != nil {
				return nil, err
			}
			f.Cells = append(f.Cells, cell(v, ck, class))
		}
	}
	return f, nil
}

// luCells is Figure 6's grid: LU-MZ at 16 ranks on every target.
func luCells() []cellKey {
	var cells []cellKey
	for _, target := range Targets() {
		for _, class := range nas.Classes() {
			cells = append(cells, cellKey{target, nas.LU, class, 16})
		}
	}
	return cells
}

// LUFigure regenerates Figure 6: LU-MZ across all three systems.
func (r *Runner) LUFigure() (*Figure, error) {
	if err := r.prewarm(luCells()); err != nil {
		return nil, err
	}
	f := &Figure{ID: "fig6", Title: "LU Results on the three systems", Bench: nas.LU}
	for _, target := range Targets() {
		for _, class := range nas.Classes() {
			v, err := r.Validate(target, nas.LU, class, 16)
			if err != nil {
				return nil, err
			}
			c := cell(v, 16, class)
			f.Cells = append(f.Cells, c)
		}
	}
	return f, nil
}

// AllFigures regenerates Figures 3–9 in paper order. The full evaluation
// grid is computed on one shared worker pool first (every cell, across all
// figures), then the figures are assembled serially from the cache.
func (r *Runner) AllFigures() ([]*Figure, error) {
	if err := r.prewarm(allCells()); err != nil {
		return nil, err
	}
	var out []*Figure
	for _, target := range Targets() {
		f, err := r.BenchFigure(nas.BT, target)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	lu, err := r.LUFigure()
	if err != nil {
		return nil, err
	}
	out = append(out, lu)
	for _, target := range Targets() {
		f, err := r.BenchFigure(nas.SP, target)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// SystemSummary is one target's row of the paper's summary statistics.
type SystemSummary struct {
	Target  string
	MeanAbs float64 // average |combined error| %
	StdDev  float64
	MaxAbs  float64
	Cells   int
}

// Summary is the §4 bottom line.
type Summary struct {
	PerSystem []SystemSummary
	// OverallMean is the grand average |combined error|.
	OverallMean float64
	// OverProjectedPct is the share of projections above the measured
	// runtime (the paper reports 54 %).
	OverProjectedPct float64
}

// Summarize computes the paper's summary statistics over every experiment
// cell (all benchmarks, classes, core counts, targets). Cells are
// evaluated on the shared worker pool; the statistics are then accumulated
// in the fixed grid order, so the floating-point results are independent
// of scheduling.
func (r *Runner) Summarize() (*Summary, error) {
	if err := r.prewarm(allCells()); err != nil {
		return nil, err
	}
	s := &Summary{}
	var all []float64
	var over, total int
	for _, target := range Targets() {
		var errs []float64
		for _, b := range nas.Benchmarks() {
			for _, class := range nas.Classes() {
				for _, ck := range nas.PaperRankCounts(b) {
					v, err := r.Validate(target, b, class, ck)
					if err != nil {
						return nil, err
					}
					errs = append(errs, abs(v.ErrCombined))
					all = append(all, abs(v.ErrCombined))
					total++
					if v.ErrCombined > 0 {
						over++
					}
				}
			}
		}
		s.PerSystem = append(s.PerSystem, SystemSummary{
			Target:  target,
			MeanAbs: stats.Mean(errs),
			StdDev:  stats.StdDev(errs),
			MaxAbs:  stats.Max(errs),
			Cells:   len(errs),
		})
	}
	s.OverallMean = stats.Mean(all)
	s.OverProjectedPct = 100 * float64(over) / float64(total)
	return s, nil
}

// Table1Row is one row of the paper's Table 1: a benchmark's communication
// character on the base system between the smallest and largest task
// counts.
type Table1Row struct {
	Bench nas.Benchmark
	Class nas.Class

	// Percent of execution time, at the min and max task counts.
	CommMin, CommMax       float64
	MultiSRMin, MultiSRMax float64 // multi-Sendrecv (P2P-NB) share
	ReduceMin, ReduceMax   float64
	BcastMin, BcastMax     float64
}

// Table1 regenerates the paper's Table 1 on the base machine.
func (r *Runner) Table1() ([]Table1Row, error) {
	base, err := arch.Get(r.Base)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, b := range nas.Benchmarks() {
		for _, class := range nas.Classes() {
			counts := nas.PaperRankCounts(b)
			lo, hi := counts[0], counts[len(counts)-1]
			r.logf("Table 1: profiling %s.%c at %d and %d tasks", b, class, lo, hi)
			row := Table1Row{Bench: b, Class: class}
			for i, ranks := range []int{lo, hi} {
				res, err := nas.Run(nas.Config{Bench: b, Class: class, Ranks: ranks}, base)
				if err != nil {
					return nil, err
				}
				pf := res.Profile
				comm := 100 * pf.CommFraction()
				msr := pf.RoutineShare(mpi.RoutineIsend) +
					pf.RoutineShare(mpi.RoutineIrecv) +
					pf.RoutineShare(mpi.RoutineWaitall)
				red := pf.RoutineShare(mpi.RoutineReduce)
				bc := pf.RoutineShare(mpi.RoutineBcast)
				if i == 0 {
					row.CommMin, row.MultiSRMin, row.ReduceMin, row.BcastMin = comm, msr, red, bc
				} else {
					row.CommMax, row.MultiSRMax, row.ReduceMax, row.BcastMax = comm, msr, red, bc
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
