// Package figures regenerates every table and figure of the paper's
// evaluation (§4): Table 1 (benchmark communication characteristics on the
// base machine), Table 2 (system configurations), Figures 3–9 (percent
// projection error per component, per benchmark, per target system) and
// the summary statistics (per-system average error and standard deviation,
// share of over-projections).
//
// A Runner caches the expensive artifacts — benchmark pipelines per
// machine pair, application characterisations, and validations — so that
// one process can assemble all figures without repeating work.
package figures

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/stats"
)

// Targets lists the three projection targets in the paper's order.
func Targets() []string {
	return []string{arch.BlueGene, arch.Power6, arch.Westmere}
}

// Cell is one bar group of a figure: the absolute percent error of each
// projected component at one (core count, class).
type Cell struct {
	Ck    int
	Class nas.Class

	// Component |errors| in percent, matching the paper's legend.
	P2PNB       float64 // non-blocking point-to-point
	P2PB        float64 // blocking point-to-point (absent in NAS-MZ: 0)
	Collectives float64
	OverallComm float64
	Computation float64
	Combined    float64

	// Signed combined error, for the over-projection statistic.
	CombinedSigned float64
}

// Figure is one of the paper's Figures 3–9: a benchmark on a target
// system across core counts and classes.
type Figure struct {
	ID     string
	Title  string
	Bench  nas.Benchmark
	Target string
	Cells  []Cell
}

// MeanCombined is the figure's average |combined error|.
func (f *Figure) MeanCombined() float64 {
	var xs []float64
	for _, c := range f.Cells {
		xs = append(xs, c.Combined)
	}
	return stats.Mean(xs)
}

// figureIDs maps (benchmark, target) to the paper's figure numbering.
// LU-MZ shares Figure 6 across all three systems.
var figureIDs = map[nas.Benchmark]map[string]string{
	nas.BT: {arch.BlueGene: "fig3", arch.Power6: "fig4", arch.Westmere: "fig5"},
	nas.LU: {arch.BlueGene: "fig6", arch.Power6: "fig6", arch.Westmere: "fig6"},
	nas.SP: {arch.BlueGene: "fig7", arch.Power6: "fig8", arch.Westmere: "fig9"},
}

// FigureID returns the paper's figure id for a (benchmark, target) pair.
func FigureID(b nas.Benchmark, target string) string { return figureIDs[b][target] }

// Runner executes and caches the full evaluation.
type Runner struct {
	Base string
	// Verbose, if set, receives progress lines.
	Verbose func(format string, args ...any)

	pipelines   map[string]*core.Pipeline
	apps        map[string]*core.AppModel
	validations map[string]*core.Validation
}

// NewRunner creates a Runner projecting from the paper's base machine.
func NewRunner() *Runner {
	return &Runner{
		Base:        arch.Hydra,
		pipelines:   map[string]*core.Pipeline{},
		apps:        map[string]*core.AppModel{},
		validations: map[string]*core.Validation{},
	}
}

// logf emits progress if verbose.
func (r *Runner) logf(format string, args ...any) {
	if r.Verbose != nil {
		r.Verbose(format, args...)
	}
}

// pipeline returns (building on first use) the benchmark pipeline for a
// target.
func (r *Runner) pipeline(target string) (*core.Pipeline, error) {
	if p, ok := r.pipelines[target]; ok {
		return p, nil
	}
	base, err := arch.Get(r.Base)
	if err != nil {
		return nil, err
	}
	tgt, err := arch.Get(target)
	if err != nil {
		return nil, err
	}
	r.logf("gathering benchmark data for %s → %s (SPEC + IMB)", r.Base, target)
	// IMB tables at every core count any app profile uses.
	counts := map[int]bool{}
	for _, b := range nas.Benchmarks() {
		for _, c := range charCounts(b) {
			counts[c] = true
		}
	}
	var list []int
	for c := range counts {
		list = append(list, c)
	}
	sort.Ints(list)
	p, err := core.NewPipeline(base, tgt, list)
	if err != nil {
		return nil, err
	}
	r.pipelines[target] = p
	return p, nil
}

// charCounts returns the base-machine core counts an app is characterised
// at: the paper's sweep, extended downward for LU-MZ so that the scaling
// models have enough points.
func charCounts(b nas.Benchmark) []int {
	if b == nas.LU {
		return []int{4, 8, 16}
	}
	return nas.PaperRankCounts(b)
}

// app returns (characterising on first use) the AppModel for a benchmark
// and class against a target's pipeline.
func (r *Runner) app(target string, b nas.Benchmark, c nas.Class) (*core.AppModel, error) {
	key := fmt.Sprintf("%s|%s|%c", target, b, c)
	if a, ok := r.apps[key]; ok {
		return a, nil
	}
	p, err := r.pipeline(target)
	if err != nil {
		return nil, err
	}
	r.logf("characterising %s.%c on %s", b, c, r.Base)
	a, err := p.CharacterizeApp(b, c, charCounts(b))
	if err != nil {
		return nil, err
	}
	r.apps[key] = a
	return a, nil
}

// Validate returns (computing on first use) the validation of one
// experiment cell.
func (r *Runner) Validate(target string, b nas.Benchmark, c nas.Class, ck int) (*core.Validation, error) {
	key := fmt.Sprintf("%s|%s|%c|%d", target, b, c, ck)
	if v, ok := r.validations[key]; ok {
		return v, nil
	}
	p, err := r.pipeline(target)
	if err != nil {
		return nil, err
	}
	a, err := r.app(target, b, c)
	if err != nil {
		return nil, err
	}
	r.logf("projecting %s.%c@%d onto %s and validating", b, c, ck, target)
	v, err := p.Validate(a, ck)
	if err != nil {
		return nil, err
	}
	r.validations[key] = v
	return v, nil
}

// abs returns |x|.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// cell converts a validation into a figure cell.
func cell(v *core.Validation, ck int, class nas.Class) Cell {
	return Cell{
		Ck:             ck,
		Class:          class,
		P2PNB:          abs(v.ErrByClass[mpi.ClassP2PNB]),
		P2PB:           abs(v.ErrByClass[mpi.ClassP2PB]),
		Collectives:    abs(v.ErrByClass[mpi.ClassCollective]),
		OverallComm:    abs(v.ErrComm),
		Computation:    abs(v.ErrCompute),
		Combined:       abs(v.ErrCombined),
		CombinedSigned: v.ErrCombined,
	}
}

// BenchFigure regenerates the figure for a benchmark on one target:
// Figures 3–5 (BT), 7–9 (SP), or one system's bars of Figure 6 (LU).
func (r *Runner) BenchFigure(b nas.Benchmark, target string) (*Figure, error) {
	tgt, err := arch.Get(target)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     FigureID(b, target),
		Title:  fmt.Sprintf("%s Results on %s", b, tgt.FullName),
		Bench:  b,
		Target: target,
	}
	for _, ck := range nas.PaperRankCounts(b) {
		for _, class := range nas.Classes() {
			v, err := r.Validate(target, b, class, ck)
			if err != nil {
				return nil, err
			}
			f.Cells = append(f.Cells, cell(v, ck, class))
		}
	}
	return f, nil
}

// LUFigure regenerates Figure 6: LU-MZ across all three systems.
func (r *Runner) LUFigure() (*Figure, error) {
	f := &Figure{ID: "fig6", Title: "LU Results on the three systems", Bench: nas.LU}
	for _, target := range Targets() {
		for _, class := range nas.Classes() {
			v, err := r.Validate(target, nas.LU, class, 16)
			if err != nil {
				return nil, err
			}
			c := cell(v, 16, class)
			f.Cells = append(f.Cells, c)
		}
	}
	return f, nil
}

// AllFigures regenerates Figures 3–9 in paper order.
func (r *Runner) AllFigures() ([]*Figure, error) {
	var out []*Figure
	for _, target := range Targets() {
		f, err := r.BenchFigure(nas.BT, target)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	lu, err := r.LUFigure()
	if err != nil {
		return nil, err
	}
	out = append(out, lu)
	for _, target := range Targets() {
		f, err := r.BenchFigure(nas.SP, target)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// SystemSummary is one target's row of the paper's summary statistics.
type SystemSummary struct {
	Target  string
	MeanAbs float64 // average |combined error| %
	StdDev  float64
	MaxAbs  float64
	Cells   int
}

// Summary is the §4 bottom line.
type Summary struct {
	PerSystem []SystemSummary
	// OverallMean is the grand average |combined error|.
	OverallMean float64
	// OverProjectedPct is the share of projections above the measured
	// runtime (the paper reports 54 %).
	OverProjectedPct float64
}

// Summarize computes the paper's summary statistics over every experiment
// cell (all benchmarks, classes, core counts, targets).
func (r *Runner) Summarize() (*Summary, error) {
	s := &Summary{}
	var all []float64
	var over, total int
	for _, target := range Targets() {
		var errs []float64
		for _, b := range nas.Benchmarks() {
			for _, class := range nas.Classes() {
				for _, ck := range nas.PaperRankCounts(b) {
					v, err := r.Validate(target, b, class, ck)
					if err != nil {
						return nil, err
					}
					errs = append(errs, abs(v.ErrCombined))
					all = append(all, abs(v.ErrCombined))
					total++
					if v.ErrCombined > 0 {
						over++
					}
				}
			}
		}
		s.PerSystem = append(s.PerSystem, SystemSummary{
			Target:  target,
			MeanAbs: stats.Mean(errs),
			StdDev:  stats.StdDev(errs),
			MaxAbs:  stats.Max(errs),
			Cells:   len(errs),
		})
	}
	s.OverallMean = stats.Mean(all)
	s.OverProjectedPct = 100 * float64(over) / float64(total)
	return s, nil
}

// Table1Row is one row of the paper's Table 1: a benchmark's communication
// character on the base system between the smallest and largest task
// counts.
type Table1Row struct {
	Bench nas.Benchmark
	Class nas.Class

	// Percent of execution time, at the min and max task counts.
	CommMin, CommMax       float64
	MultiSRMin, MultiSRMax float64 // multi-Sendrecv (P2P-NB) share
	ReduceMin, ReduceMax   float64
	BcastMin, BcastMax     float64
}

// Table1 regenerates the paper's Table 1 on the base machine.
func (r *Runner) Table1() ([]Table1Row, error) {
	base, err := arch.Get(r.Base)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, b := range nas.Benchmarks() {
		for _, class := range nas.Classes() {
			counts := nas.PaperRankCounts(b)
			lo, hi := counts[0], counts[len(counts)-1]
			r.logf("Table 1: profiling %s.%c at %d and %d tasks", b, class, lo, hi)
			row := Table1Row{Bench: b, Class: class}
			for i, ranks := range []int{lo, hi} {
				res, err := nas.Run(nas.Config{Bench: b, Class: class, Ranks: ranks}, base)
				if err != nil {
					return nil, err
				}
				pf := res.Profile
				comm := 100 * pf.CommFraction()
				msr := pf.RoutineShare(mpi.RoutineIsend) +
					pf.RoutineShare(mpi.RoutineIrecv) +
					pf.RoutineShare(mpi.RoutineWaitall)
				red := pf.RoutineShare(mpi.RoutineReduce)
				bc := pf.RoutineShare(mpi.RoutineBcast)
				if i == 0 {
					row.CommMin, row.MultiSRMin, row.ReduceMin, row.BcastMin = comm, msr, red, bc
				} else {
					row.CommMax, row.MultiSRMax, row.ReduceMax, row.BcastMax = comm, msr, red, bc
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
