package figures

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/nas"
)

// A single shared runner: each figure piece is expensive.
var (
	tOnce   sync.Once
	tRunner *Runner
)

func runner() *Runner {
	tOnce.Do(func() { tRunner = NewRunner() })
	return tRunner
}

func TestFigureIDMapping(t *testing.T) {
	cases := []struct {
		b      nas.Benchmark
		target string
		want   string
	}{
		{nas.BT, arch.BlueGene, "fig3"},
		{nas.BT, arch.Power6, "fig4"},
		{nas.BT, arch.Westmere, "fig5"},
		{nas.LU, arch.Power6, "fig6"},
		{nas.SP, arch.BlueGene, "fig7"},
		{nas.SP, arch.Power6, "fig8"},
		{nas.SP, arch.Westmere, "fig9"},
	}
	for _, c := range cases {
		if got := FigureID(c.b, c.target); got != c.want {
			t.Errorf("FigureID(%s,%s) = %s, want %s", c.b, c.target, got, c.want)
		}
	}
}

func TestTargetsOrder(t *testing.T) {
	want := []string{arch.BlueGene, arch.Power6, arch.Westmere}
	got := Targets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Targets() = %v", got)
		}
	}
}

func TestLUFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	f, err := runner().LUFigure()
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "fig6" || f.Bench != nas.LU {
		t.Errorf("figure labels wrong: %+v", f)
	}
	// Three systems × two classes.
	if len(f.Cells) != 6 {
		t.Fatalf("LU figure has %d cells, want 6", len(f.Cells))
	}
	for _, c := range f.Cells {
		if c.Ck != 16 {
			t.Errorf("LU runs at 16 ranks, cell says %d", c.Ck)
		}
		if c.P2PB != 0 {
			t.Errorf("NAS-MZ has no blocking p2p, got %v", c.P2PB)
		}
		if c.Combined < 0 || c.Computation < 0 {
			t.Error("errors are absolute values")
		}
	}
	if f.MeanCombined() > 30 {
		t.Errorf("LU mean error %.1f%% outside the paper's regime", f.MeanCombined())
	}
}

func TestValidateCachesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	r := runner()
	a, err := r.Validate(arch.Power6, nas.LU, nas.ClassC, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Validate(arch.Power6, nas.LU, nas.ClassC, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated validations must hit the cache (same pointer)")
	}
}

func TestRunnerParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	// Order-independence: a serial runner and a heavily parallel runner
	// must emit byte-identical figures — cells are evaluated on a pool
	// but assembled in the paper's fixed order, and every underlying
	// measurement is a pure function of its key.
	serial := NewRunner()
	serial.Workers = 1
	parallel := NewRunner()
	parallel.Workers = 8

	fs, err := serial.LUFigure()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := parallel.LUFigure()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, fp) {
		t.Errorf("LU figure differs between serial and parallel runners:\nserial:   %+v\nparallel: %+v", fs, fp)
	}

	// Concurrent external use of one runner: hammer the same grid from
	// many goroutines; the single-flight caches must return the shared
	// instances.
	var wg sync.WaitGroup
	cells := luCells()
	got := make([]*Figure, 4)
	for i := range got {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := parallel.LUFigure()
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = f
		}()
	}
	wg.Wait()
	for i := range got {
		if got[i] == nil || !reflect.DeepEqual(got[i], fp) {
			t.Fatalf("concurrent LUFigure call %d diverged", i)
		}
	}
	for _, k := range cells {
		a, err := parallel.Validate(k.target, k.bench, k.class, k.ck)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Validate(k.target, k.bench, k.class, k.ck)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatal("single-flight cache returned distinct instances")
		}
	}
}

func TestVerboseHook(t *testing.T) {
	r := NewRunner()
	var lines []string
	r.Verbose = func(format string, args ...any) {
		lines = append(lines, format)
	}
	r.logf("hello %s", "world")
	if len(lines) != 1 || !strings.Contains(lines[0], "hello") {
		t.Error("verbose hook not invoked")
	}
}

func TestCharCounts(t *testing.T) {
	if got := charCounts(nas.LU); len(got) != 3 || got[2] != 16 {
		t.Errorf("LU char counts = %v", got)
	}
	if got := charCounts(nas.BT); len(got) != 4 || got[3] != 128 {
		t.Errorf("BT char counts = %v", got)
	}
}
