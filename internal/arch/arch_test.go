package arch

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestRegistryHasTable2Machines(t *testing.T) {
	want := []string{BlueGene, Hydra, Power6, Westmere}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("cray-xt5"); err == nil {
		t.Fatal("unknown machine must error")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on unknown name must panic")
		}
	}()
	MustGet("nope")
}

// Table 2 of the paper, verbatim.
func TestTable2Values(t *testing.T) {
	cases := []struct {
		name         string
		proc         string
		totalCores   int
		coresPerNode int
		memPerCore   float64
	}{
		{Hydra, "POWER5+", 832, 16, 2},
		{Power6, "POWER6", 128, 32, 4},
		{BlueGene, "PowerPC 450", 4096, 4, 1},
		{Westmere, "Xeon X5670", 768, 12, 2},
	}
	for _, c := range cases {
		m := MustGet(c.name)
		if m.Proc.Name != c.proc {
			t.Errorf("%s: proc = %q, want %q", c.name, m.Proc.Name, c.proc)
		}
		if m.TotalCores != c.totalCores {
			t.Errorf("%s: total cores = %d, want %d", c.name, m.TotalCores, c.totalCores)
		}
		if m.CoresPerNode != c.coresPerNode {
			t.Errorf("%s: cores/node = %d, want %d", c.name, m.CoresPerNode, c.coresPerNode)
		}
		if m.MemPerCoreGiB != c.memPerCore {
			t.Errorf("%s: mem/core = %v, want %v", c.name, m.MemPerCoreGiB, c.memPerCore)
		}
	}
}

func TestModelSanity(t *testing.T) {
	for _, m := range All() {
		if m.Proc.ClockGHz <= 0 || m.Proc.IssueWidth <= 0 || m.Proc.BaseCPI <= 0 {
			t.Errorf("%s: nonsense core parameters", m.Name)
		}
		if len(m.Proc.Caches) < 2 {
			t.Errorf("%s: needs at least L1+L2", m.Name)
		}
		var prevLat float64
		for _, c := range m.Proc.Caches {
			if c.Capacity <= 0 || c.LatencyCycles <= prevLat || c.SharedBy < 1 {
				t.Errorf("%s/%s: cache levels must grow in latency and be positive", m.Name, c.Name)
			}
			prevLat = c.LatencyCycles
		}
		memCycles := m.Proc.MemLatencyNs * m.Proc.ClockGHz
		if memCycles <= m.Proc.LastLevel().LatencyCycles {
			t.Errorf("%s: memory must be slower than the last cache level", m.Name)
		}
		if m.TotalCores%m.CoresPerNode != 0 {
			t.Errorf("%s: total cores must be a whole number of nodes", m.Name)
		}
		if m.Net.LatencyUS <= 0 || m.Net.BandwidthGBs <= 0 || m.Net.LibOverheadUS <= 0 {
			t.Errorf("%s: nonsense interconnect parameters", m.Name)
		}
		if m.Net.IntraLatencyUS >= m.Net.LatencyUS {
			t.Errorf("%s: intra-node latency should beat inter-node", m.Name)
		}
	}
}

func TestEffectivePerCore(t *testing.T) {
	c := CacheLevel{Capacity: 8 * units.MiB, SharedBy: 4}
	if c.EffectivePerCore() != 2*units.MiB {
		t.Errorf("EffectivePerCore = %v", c.EffectivePerCore())
	}
	c.SharedBy = 1
	if c.EffectivePerCore() != 8*units.MiB {
		t.Error("unshared cache must report full capacity")
	}
}

func TestNodesFor(t *testing.T) {
	m := MustGet(Hydra) // 16 cores/node
	cases := []struct{ ranks, nodes int }{
		{0, 0}, {1, 1}, {16, 1}, {17, 2}, {128, 8},
	}
	for _, c := range cases {
		if got := m.NodesFor(c.ranks); got != c.nodes {
			t.Errorf("NodesFor(%d) = %d, want %d", c.ranks, got, c.nodes)
		}
	}
	if m.Nodes() != 52 {
		t.Errorf("Hydra Nodes() = %d, want 52", m.Nodes())
	}
}

func TestISADistanceOrdering(t *testing.T) {
	base := MustGet(Hydra)
	p6 := ISADistance(base, MustGet(Power6))
	bg := ISADistance(base, MustGet(BlueGene))
	wm := ISADistance(base, MustGet(Westmere))
	if ISADistance(base, base) != 0 {
		t.Error("self distance must be 0")
	}
	if !(p6 < bg && bg < wm) {
		t.Errorf("want P6 < BG/P < Westmere distance, got %v %v %v", p6, bg, wm)
	}
	// The scale feeds projection error; keep it in the paper's regime.
	if wm > 0.25 || p6 < 0.01 {
		t.Errorf("distance scale out of regime: p6=%v wm=%v", p6, wm)
	}
}

func TestBlueGeneCollectiveTree(t *testing.T) {
	bg := MustGet(BlueGene)
	if !bg.Net.HasCollectiveTree {
		t.Fatal("BG/P must model the collective tree")
	}
	if bg.Net.Kind != TopoTorus3D {
		t.Fatal("BG/P point-to-point network is a 3D torus")
	}
	d := bg.Net.TorusDims
	if d[0]*d[1]*d[2] != bg.Nodes() {
		t.Errorf("torus dims %v do not cover %d nodes", d, bg.Nodes())
	}
	for _, m := range All() {
		if m.Name != BlueGene && m.Net.HasCollectiveTree {
			t.Errorf("%s should not have a collective tree", m.Name)
		}
	}
}

func TestStringMentionsEssentials(t *testing.T) {
	s := MustGet(Westmere).String()
	for _, frag := range []string{"X5670", "768", "InfiniBand"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
