// Package arch defines parametric models of the four systems in the paper's
// Table 2 — the TAMU Hydra POWER5+ base machine and the three projection
// targets (IBM POWER6 575, IBM BlueGene/P, IBM iDataPlex Westmere X5670) —
// plus the vocabulary (processors, cache hierarchies, interconnects) the
// rest of the simulator consumes.
//
// The paper ran on real hardware; this reproduction substitutes analytic
// machine models. A model carries everything the two measurement substrates
// need: the hardware-counter simulator (internal/hpm) reads the processor
// and cache parameters, and the network model (internal/netmodel) reads the
// interconnect parameters. Parameter values are drawn from the published
// specifications of the real machines so cross-machine ratios (clock, cache
// capacity, link latency) are realistic even though absolute times are
// simulated.
package arch

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// ISA identifies an instruction-set family. SWAPP's accuracy depends on it:
// the paper observes that projections onto the POWER6 (same ISA as the
// POWER5+ base) beat projections onto the x86 Westmere.
type ISA string

// Instruction-set families used by the Table 2 machines.
const (
	// ISAPower covers the Power ISA lineage: POWER5+/POWER6 server cores
	// and the PowerPC 450 embedded core in BlueGene/P.
	ISAPower ISA = "power"
	// ISAX86 is Intel Westmere.
	ISAX86 ISA = "x86"
)

// MicroArchClass coarsely groups core designs; together with ISA it drives
// the idiosyncrasy scale (how much of a machine's response SWAPP's surrogate
// transfer cannot capture).
type MicroArchClass string

// Microarchitecture classes.
const (
	ClassServerOoO   MicroArchClass = "server-ooo"   // big out-of-order server core
	ClassServerInOrd MicroArchClass = "server-inord" // in-order server core (POWER6)
	ClassEmbedded    MicroArchClass = "embedded"     // low-power in-order (PPC 450)
)

// CacheLevel describes one level of the data-cache hierarchy.
type CacheLevel struct {
	Name          string      // "L1", "L2", "L3"
	Capacity      units.Bytes // total capacity of one cache instance
	SharedBy      int         // cores sharing that instance
	LatencyCycles float64     // load-to-use latency in core cycles
	LineSize      units.Bytes
}

// EffectivePerCore returns the capacity available to one core when the
// instance is shared equally.
func (c CacheLevel) EffectivePerCore() units.Bytes {
	if c.SharedBy <= 1 {
		return c.Capacity
	}
	return c.Capacity / units.Bytes(c.SharedBy)
}

// Processor models a core family: everything the CPI-stack and cache
// footprint simulation in internal/hpm needs.
type Processor struct {
	Name       string
	ISA        ISA
	Class      MicroArchClass
	ClockGHz   float64
	IssueWidth int     // maximum instructions completed per cycle
	BaseCPI    float64 // completion CPI at infinite cache, perfect ILP
	FPPerCycle float64 // peak FP operations per cycle (FMA counted as 2)

	Caches       []CacheLevel // ordered L1 → last level
	MemLatencyNs float64      // local memory load latency
	RemoteLatNs  float64      // remote-socket/NUMA memory latency
	MemBWGBs     float64      // sustainable memory bandwidth per core, GB/s

	SMTWays int     // hardware threads per core (1 = none)
	SMTGain float64 // core throughput multiplier with all SMT threads busy

	TLBEntries  int // data TLB entries (4K pages)
	ERATEntries int // effective-to-real address translation entries
	SLBEntries  int // segment lookaside buffer entries (POWER) or 0
	PageBytes   units.Bytes
}

// LastLevel returns the last (largest) cache level.
func (p *Processor) LastLevel() CacheLevel { return p.Caches[len(p.Caches)-1] }

// TopologyKind names the interconnect topology family; internal/topo builds
// the concrete graph.
type TopologyKind string

// Interconnect topology families from Table 2.
const (
	TopoFatTree    TopologyKind = "fat-tree"   // InfiniBand clusters
	TopoFederation TopologyKind = "federation" // IBM HPS on Hydra
	TopoTorus3D    TopologyKind = "torus-3d"   // BlueGene/P main network
)

// Interconnect carries the network parameters: a LogGP-style base cost plus
// topology shape. BlueGene/P additionally has the dedicated collective-tree
// network the paper calls out.
type Interconnect struct {
	Name string
	Kind TopologyKind

	// Inter-node point-to-point parameters.
	LatencyUS    float64 // one-way small-message latency between adjacent nodes
	BandwidthGBs float64 // per-link bandwidth
	PerHopUS     float64 // additional latency per topology hop

	// MPI software stack cost (the paper's T_LibraryOverhead in Eq. 1).
	LibOverheadUS float64     // per-call library overhead
	RendezvousB   units.Bytes // eager→rendezvous threshold

	// Intra-node (shared-memory) transport.
	IntraLatencyUS    float64
	IntraBandwidthGBs float64

	// Topology shape.
	TorusDims [3]int // used when Kind == TopoTorus3D

	// HasCollectiveTree marks BG/P's dedicated collective network, which
	// serves Bcast/Reduce/Allreduce at near-constant cost in node count.
	HasCollectiveTree bool
	TreeLatencyUS     float64 // collective-tree injection latency
	TreeBandwidthGBs  float64
	TreePerLevelUS    float64 // per-tree-level latency
}

// Machine is a complete Table 2 system: processor, node shape, scale and
// interconnect.
type Machine struct {
	Name          string // registry key, e.g. "hydra"
	FullName      string // display name, e.g. "TAMU Hydra (IBM POWER5+ 575)"
	Proc          Processor
	CoresPerNode  int
	TotalCores    int
	MemPerCoreGiB float64
	Net           Interconnect

	// OSJitterSigma is the relative per-timestep compute-time jitter from
	// OS noise (daemons, interrupts, memory-placement variance). It is
	// what turns balanced codes' boundary synchronization into WaitTime.
	// BlueGene's compute-node microkernel is famously quiet; commodity
	// Linux clusters are not.
	OSJitterSigma float64
}

// Nodes returns the number of nodes in the system.
func (m *Machine) Nodes() int { return m.TotalCores / m.CoresPerNode }

// NodesFor returns how many nodes a job of ranks tasks occupies when packed
// densely (the paper's task placement: fill each node before the next).
func (m *Machine) NodesFor(ranks int) int {
	if ranks <= 0 {
		return 0
	}
	return (ranks + m.CoresPerNode - 1) / m.CoresPerNode
}

// String implements fmt.Stringer.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %s @%.2fGHz, %d cores (%d/node), %s/core, %s",
		m.FullName, m.Proc.Name, m.Proc.ClockGHz, m.TotalCores, m.CoresPerNode,
		units.FormatBytes(units.Bytes(m.MemPerCoreGiB*float64(units.GiB))), m.Net.Name)
}

// ISADistance quantifies how far machine b's processor is from machine a's,
// as seen by a surrogate-based projection: 0 for the same processor, small
// for same-ISA same-class, growing with class and ISA mismatch. SWAPP's
// observed error ordering (POWER6 < BG/P < Westmere when projecting from a
// POWER5+) follows from this scale — it feeds the idiosyncratic response
// sigma in the measurement substrates.
func ISADistance(a, b *Machine) float64 {
	if a.Proc.Name == b.Proc.Name {
		return 0
	}
	d := 0.020 // different chips always differ some
	if a.Proc.ISA != b.Proc.ISA {
		d += 0.062
	}
	if a.Proc.Class != b.Proc.Class {
		// Graded class distance: an embedded core is further from a
		// server core than the in-order/out-of-order split.
		if a.Proc.Class == ClassEmbedded || b.Proc.Class == ClassEmbedded {
			d += 0.042
		} else {
			d += 0.012
		}
	}
	return d
}

// registry holds the Table 2 machines keyed by short name.
var registry = map[string]*Machine{}

func register(m *Machine) {
	if _, dup := registry[m.Name]; dup {
		panic("arch: duplicate machine " + m.Name)
	}
	registry[m.Name] = m
}

// Get returns the registered machine with the given short name.
func Get(name string) (*Machine, error) {
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("arch: unknown machine %q (known: %v)", name, Names())
	}
	return m, nil
}

// MustGet is Get for static names; it panics on unknown names.
func MustGet(name string) *Machine {
	m, err := Get(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns the registered machine names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// All returns the registered machines sorted by name.
func All() []*Machine {
	var out []*Machine
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Short names of the Table 2 machines.
const (
	Hydra    = "hydra"          // base machine: TAMU Hydra, POWER5+ 575, HPS Federation
	Power6   = "power6-575"     // target: IBM POWER6 575, InfiniBand
	BlueGene = "bgp"            // target: IBM BlueGene/P, 3-D torus + collective tree
	Westmere = "westmere-x5670" // target: IBM iDataPlex, Xeon X5670, InfiniBand
)

func init() {
	// TAMU Hydra — IBM p5-575, POWER5+ 1.9 GHz, 16 cores/node, HPS
	// "Federation" switch. The paper's base machine.
	register(&Machine{
		Name:     Hydra,
		FullName: "TAMU Hydra (IBM POWER5+ 575)",
		Proc: Processor{
			Name:       "POWER5+",
			ISA:        ISAPower,
			Class:      ClassServerOoO,
			ClockGHz:   1.9,
			IssueWidth: 5,
			BaseCPI:    0.58,
			FPPerCycle: 4, // 2 FPUs × FMA
			Caches: []CacheLevel{
				{Name: "L1", Capacity: 32 * units.KiB, SharedBy: 1, LatencyCycles: 2, LineSize: 128},
				{Name: "L2", Capacity: 1920 * units.KiB, SharedBy: 2, LatencyCycles: 13, LineSize: 128},
				{Name: "L3", Capacity: 36 * units.MiB, SharedBy: 2, LatencyCycles: 87, LineSize: 256},
			},
			MemLatencyNs: 110,
			RemoteLatNs:  220,
			MemBWGBs:     3.2,
			SMTWays:      2,
			SMTGain:      1.38,
			TLBEntries:   1024,
			ERATEntries:  128,
			SLBEntries:   64,
			PageBytes:    4 * units.KiB,
		},
		CoresPerNode:  16,
		TotalCores:    832,
		MemPerCoreGiB: 2,
		OSJitterSigma: 0.035,
		Net: Interconnect{
			Name:              "HPS Federation",
			Kind:              TopoFederation,
			LatencyUS:         4.7,
			BandwidthGBs:      1.4,
			PerHopUS:          0.35,
			LibOverheadUS:     2.1,
			RendezvousB:       32 * units.KiB,
			IntraLatencyUS:    0.9,
			IntraBandwidthGBs: 2.0,
		},
	})

	// IBM POWER6 575 — 4.7 GHz in-order POWER6, 32 cores/node, DDR
	// InfiniBand. Same ISA family as the base: the paper's most accurate
	// target.
	register(&Machine{
		Name:     Power6,
		FullName: "IBM POWER6 575 cluster",
		Proc: Processor{
			Name:       "POWER6",
			ISA:        ISAPower,
			Class:      ClassServerInOrd,
			ClockGHz:   4.7,
			IssueWidth: 5,
			BaseCPI:    0.72, // in-order core completes less per cycle at same width
			FPPerCycle: 4,
			Caches: []CacheLevel{
				{Name: "L1", Capacity: 64 * units.KiB, SharedBy: 1, LatencyCycles: 4, LineSize: 128},
				{Name: "L2", Capacity: 4 * units.MiB, SharedBy: 1, LatencyCycles: 24, LineSize: 128},
				{Name: "L3", Capacity: 32 * units.MiB, SharedBy: 2, LatencyCycles: 160, LineSize: 128},
			},
			MemLatencyNs: 100,
			RemoteLatNs:  210,
			MemBWGBs:     5.0,
			SMTWays:      2,
			SMTGain:      1.45,
			TLBEntries:   2048,
			ERATEntries:  128,
			SLBEntries:   64,
			PageBytes:    4 * units.KiB,
		},
		CoresPerNode:  32,
		TotalCores:    128,
		MemPerCoreGiB: 4,
		OSJitterSigma: 0.035,
		Net: Interconnect{
			Name:              "InfiniBand DDR",
			Kind:              TopoFatTree,
			LatencyUS:         2.6,
			BandwidthGBs:      1.5,
			PerHopUS:          0.25,
			LibOverheadUS:     1.5,
			RendezvousB:       32 * units.KiB,
			IntraLatencyUS:    0.7,
			IntraBandwidthGBs: 3.0,
		},
	})

	// IBM BlueGene/P — PowerPC 450 850 MHz, 4 cores/node ("Virtual Node"
	// mode in the paper), 3-D torus for point-to-point plus a dedicated
	// collective-tree network.
	register(&Machine{
		Name:     BlueGene,
		FullName: "IBM BlueGene/P",
		Proc: Processor{
			Name:       "PowerPC 450",
			ISA:        ISAPower,
			Class:      ClassEmbedded,
			ClockGHz:   0.85,
			IssueWidth: 2,
			BaseCPI:    0.95,
			FPPerCycle: 4, // double hummer SIMD FPU
			Caches: []CacheLevel{
				{Name: "L1", Capacity: 32 * units.KiB, SharedBy: 1, LatencyCycles: 3, LineSize: 32},
				{Name: "L2", Capacity: 2 * units.KiB, SharedBy: 1, LatencyCycles: 12, LineSize: 128},
				{Name: "L3", Capacity: 8 * units.MiB, SharedBy: 4, LatencyCycles: 46, LineSize: 128},
			},
			MemLatencyNs: 95,
			RemoteLatNs:  95, // flat memory, no NUMA
			MemBWGBs:     3.4,
			SMTWays:      1,
			SMTGain:      1,
			TLBEntries:   64,
			ERATEntries:  0,
			SLBEntries:   0,
			PageBytes:    4 * units.KiB,
		},
		CoresPerNode:  4,
		TotalCores:    4096,
		MemPerCoreGiB: 1,
		OSJitterSigma: 0.020,
		Net: Interconnect{
			Name:              "3D Torus + Collective Tree",
			Kind:              TopoTorus3D,
			LatencyUS:         2.7,
			BandwidthGBs:      0.425, // per torus link
			PerHopUS:          0.1,
			LibOverheadUS:     1.9,
			RendezvousB:       1200,
			IntraLatencyUS:    0.8,
			IntraBandwidthGBs: 1.5,
			TorusDims:         [3]int{8, 8, 16}, // 1024 nodes
			HasCollectiveTree: true,
			TreeLatencyUS:     1.3,
			TreeBandwidthGBs:  0.85,
			TreePerLevelUS:    0.25,
		},
	})

	// IBM iDataPlex — Intel Xeon X5670 (Westmere-EP) 2.93 GHz, two
	// six-core sockets per node, QDR InfiniBand. Different ISA from the
	// base: the paper's least accurate target.
	register(&Machine{
		Name:     Westmere,
		FullName: "IBM iDataPlex (Intel Xeon X5670)",
		Proc: Processor{
			Name:       "Xeon X5670",
			ISA:        ISAX86,
			Class:      ClassServerOoO,
			ClockGHz:   2.93,
			IssueWidth: 4,
			BaseCPI:    0.52,
			FPPerCycle: 4, // SSE2 packed double
			Caches: []CacheLevel{
				{Name: "L1", Capacity: 32 * units.KiB, SharedBy: 1, LatencyCycles: 4, LineSize: 64},
				{Name: "L2", Capacity: 256 * units.KiB, SharedBy: 1, LatencyCycles: 10, LineSize: 64},
				{Name: "L3", Capacity: 12 * units.MiB, SharedBy: 6, LatencyCycles: 40, LineSize: 64},
			},
			MemLatencyNs: 70,
			RemoteLatNs:  120,
			MemBWGBs:     5.3,
			SMTWays:      2,
			SMTGain:      1.25,
			TLBEntries:   512,
			ERATEntries:  0,
			SLBEntries:   0,
			PageBytes:    4 * units.KiB,
		},
		CoresPerNode:  12,
		TotalCores:    768,
		MemPerCoreGiB: 2,
		OSJitterSigma: 0.050,
		Net: Interconnect{
			Name:              "InfiniBand QDR",
			Kind:              TopoFatTree,
			LatencyUS:         1.6,
			BandwidthGBs:      2.5,
			PerHopUS:          0.2,
			LibOverheadUS:     1.1,
			RendezvousB:       16 * units.KiB,
			IntraLatencyUS:    0.5,
			IntraBandwidthGBs: 4.0,
		},
	})
}
