package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !approx(StdDev(xs), 2, 1e-12) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/short-input conventions broken")
	}
}

func TestMeanAbsMinMaxMedian(t *testing.T) {
	xs := []float64{-3, 1, 2}
	if !approx(MeanAbs(xs), 2, 1e-12) {
		t.Errorf("MeanAbs = %v", MeanAbs(xs))
	}
	if Min(xs) != -3 || Max(xs) != 2 {
		t.Error("Min/Max wrong")
	}
	if Median(xs) != 1 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even-length median wrong")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a, 3, 1e-9) || !approx(b, 2, 1e-9) {
		t.Errorf("LinearFit = (%v,%v), want (3,2)", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must fail")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x must fail")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

// Property: LinearFit recovers any non-degenerate line exactly.
func TestLinearFitRecoversLine(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8)/4, float64(b8)/4
		xs := []float64{1, 3, 5, 11}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*x
		}
		ga, gb, err := LinearFit(xs, ys)
		return err == nil && approx(ga, a, 1e-8) && approx(gb, b, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerFit(t *testing.T) {
	// y = 10 x^-0.9 — a realistic strong-scaling curve.
	xs := []float64{16, 32, 64, 128}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 * math.Pow(x, -0.9)
	}
	k, p, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(k, 10, 1e-6) || !approx(p, -0.9, 1e-9) {
		t.Errorf("PowerFit = (%v,%v)", k, p)
	}
}

func TestPowerFitRejectsNonPositive(t *testing.T) {
	if _, _, err := PowerFit([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("zero y must fail")
	}
	if _, _, err := PowerFit([]float64{-1, 2}, []float64{1, 1}); err == nil {
		t.Error("negative x must fail")
	}
}

func TestZeroCrossing(t *testing.T) {
	// y = 8 - 2x crosses zero at x=4.
	x, err := ZeroCrossing([]float64{0, 1, 2}, []float64{8, 6, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x, 4, 1e-9) {
		t.Errorf("ZeroCrossing = %v, want 4", x)
	}
	if _, err := ZeroCrossing([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("ascending trend must fail")
	}
}

func TestLogLogInterp(t *testing.T) {
	xs := []float64{1, 4, 16}
	ys := []float64{10, 20, 40} // doubling per 4x: y = 10·x^0.5
	if got := LogLogInterp(xs, ys, 2); !approx(got, 10*math.Sqrt2, 1e-9) {
		t.Errorf("interp(2) = %v", got)
	}
	if got := LogLogInterp(xs, ys, 4); got != 20 {
		t.Errorf("exact grid point = %v", got)
	}
	if got := LogLogInterp(xs, ys, 0.5); got != 10 {
		t.Errorf("below-range clamp = %v", got)
	}
	if got := LogLogInterp(xs, ys, 99); got != 40 {
		t.Errorf("above-range clamp = %v", got)
	}
}

// Property: interpolation stays within the bracketing sample values for a
// monotone table.
func TestLogLogInterpBounded(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := []float64{3, 5, 9, 17, 33, 65}
	f := func(q uint16) bool {
		x := 1 + float64(q%320)/10
		v := LogLogInterp(xs, ys, x)
		return v >= ys[0] && v <= ys[len(ys)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !approx(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
}

func TestWeightedDistance(t *testing.T) {
	d := WeightedDistance([]float64{1, 0}, []float64{0, 0}, []float64{4, 9})
	if !approx(d, 2, 1e-12) {
		t.Errorf("WeightedDistance = %v", d)
	}
	// Zero weight kills a coordinate entirely.
	d = WeightedDistance([]float64{1, 100}, []float64{0, 0}, []float64{1, 0})
	if !approx(d, 1, 1e-12) {
		t.Errorf("zero-weight coordinate leaked: %v", d)
	}
}

func TestSolveLinear(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 1, 1e-9) || !approx(x[1], 3, 1e-9) {
		t.Errorf("SolveLinear = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(A, []float64{1, 2}); err == nil {
		t.Error("singular matrix must fail")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	A := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLinear(A, []float64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 9, 1e-12) || !approx(x[1], 7, 1e-12) {
		t.Errorf("pivot solve = %v", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// y = 2a + 3b with an exactly consistent overdetermined system.
	A := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	b := []float64{2, 3, 5, 7}
	x, err := LeastSquares(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-6) || !approx(x[1], 3, 1e-6) {
		t.Errorf("LeastSquares = %v", x)
	}
}

func TestNNLSNonNegative(t *testing.T) {
	// The unconstrained solution would need a negative coefficient.
	A := [][]float64{{1, 1}, {1, 2}, {1, 3}}
	b := []float64{3, 2, 1}
	x, err := NNLS(A, b, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v < 0 {
			t.Fatalf("NNLS produced negative coefficient: %v", x)
		}
	}
	// The constrained optimum must be no worse than the zero vector.
	if Residual(A, x, b) > Norm2(b) {
		t.Errorf("NNLS residual %v worse than trivial %v", Residual(A, x, b), Norm2(b))
	}
}

func TestNNLSRecoversNonNegativeTruth(t *testing.T) {
	A := [][]float64{{1, 0, 1}, {0, 1, 1}, {1, 1, 0}, {2, 0, 1}}
	truth := []float64{0.5, 1.5, 2}
	b := make([]float64, len(A))
	for r := range A {
		for c := range truth {
			b[r] += A[r][c] * truth[c]
		}
	}
	x, err := NNLS(A, b, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for c := range truth {
		if !approx(x[c], truth[c], 1e-3) {
			t.Errorf("NNLS = %v, want %v", x, truth)
			break
		}
	}
}
