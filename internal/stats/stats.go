// Package stats supplies the numerical machinery SWAPP's models lean on:
// descriptive statistics, linear and power-law least squares (for the CCSM
// compute-scaling fit), straight-line extrapolation to a zero crossing (for
// the ACSM cache-footprint model), log–log interpolation (for IMB parameter
// tables), and small dense linear algebra including a non-negative
// least-squares solver used as the GA ablation baseline.
//
// Everything is stdlib-only, deterministic, and sized for the tiny systems
// SWAPP solves (dozens of unknowns at most), so clarity beats asymptotics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanAbs returns the mean of |xs|.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

// Min and Max return the extrema of a non-empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of a non-empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (0 for empty input). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns (a, b).
// It requires at least two points with distinct x.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, errors.New("stats: LinearFit needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: LinearFit has degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// PowerFit fits y ≈ k·x^p via least squares in log–log space and returns
// (k, p). All xs and ys must be strictly positive. This is the CCSM fit:
// compute time versus core count under strong scaling, where p ≈ −1 means
// perfect scaling.
func PowerFit(xs, ys []float64) (k, p float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: PowerFit length mismatch")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, errors.New("stats: PowerFit requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, err
	}
	return math.Exp(a), b, nil
}

// ZeroCrossing fits a line to (xs, ys) and returns the x at which the fitted
// line reaches zero. This backs the ACSM extrapolation: the paper finds the
// core count Ch at which a G5 metric (for example data-from-L3 per
// instruction) extrapolates to zero. An error is returned when the fit is
// degenerate or the line never descends (slope ≥ 0).
func ZeroCrossing(xs, ys []float64) (float64, error) {
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		return 0, err
	}
	if b >= 0 {
		return 0, errors.New("stats: ZeroCrossing needs a descending trend")
	}
	return -a / b, nil
}

// LogLogInterp interpolates the sample pairs (xs, ys) at x in log–log space,
// clamping outside the sample range to the nearest endpoint value. xs must
// be sorted ascending and strictly positive, ys strictly positive. This is
// how IMB timings on a power-of-two message grid are evaluated at the exact
// message sizes an application profile records.
func LogLogInterp(xs, ys []float64, x float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("stats: LogLogInterp needs matching non-empty samples")
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	i := sort.SearchFloat64s(xs, x)
	if xs[i] == x {
		return ys[i]
	}
	x0, x1 := math.Log(xs[i-1]), math.Log(xs[i])
	y0, y1 := math.Log(ys[i-1]), math.Log(ys[i])
	f := (math.Log(x) - x0) / (x1 - x0)
	return math.Exp(y0 + f*(y1-y0))
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// WeightedDistance returns sqrt(Σ w_i (a_i − b_i)²): the rank-weighted
// similarity metric SWAPP uses to compare an application's metric vector
// against a candidate surrogate's.
func WeightedDistance(a, b, w []float64) float64 {
	if len(a) != len(b) || len(a) != len(w) {
		panic("stats: WeightedDistance length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += w[i] * d * d
	}
	return math.Sqrt(s)
}

// SolveLinear solves the dense square system A·x = b by Gaussian elimination
// with partial pivoting. A is row-major, n×n, and is not modified.
func SolveLinear(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, errors.New("stats: SolveLinear dimension mismatch")
	}
	// Working copies.
	m := make([][]float64, n)
	for i := range A {
		if len(A[i]) != n {
			return nil, errors.New("stats: SolveLinear needs a square matrix")
		}
		m[i] = append([]float64(nil), A[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return nil, errors.New("stats: SolveLinear singular matrix")
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ for a tall row-major matrix A (rows ≥
// cols) via the normal equations. Adequate for the well-conditioned,
// low-dimensional fits SWAPP performs.
func LeastSquares(A [][]float64, b []float64) ([]float64, error) {
	rows := len(A)
	if rows == 0 || len(b) != rows {
		return nil, errors.New("stats: LeastSquares dimension mismatch")
	}
	cols := len(A[0])
	if cols == 0 || rows < cols {
		return nil, errors.New("stats: LeastSquares needs rows ≥ cols ≥ 1")
	}
	ata := make([][]float64, cols)
	atb := make([]float64, cols)
	for i := 0; i < cols; i++ {
		ata[i] = make([]float64, cols)
	}
	for r := 0; r < rows; r++ {
		if len(A[r]) != cols {
			return nil, errors.New("stats: LeastSquares ragged matrix")
		}
		for i := 0; i < cols; i++ {
			atb[i] += A[r][i] * b[r]
			for j := i; j < cols; j++ {
				ata[i][j] += A[r][i] * A[r][j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
		ata[i][i] += 1e-12 // tiny ridge for numerical safety
	}
	return SolveLinear(ata, atb)
}

// NNLS solves min ‖A·x − b‖₂ subject to x ≥ 0 by projected gradient descent
// with an adaptive step. It is deliberately simple: SWAPP's ablation bench
// compares the GA surrogate search against this dense non-negative fit.
func NNLS(A [][]float64, b []float64, iters int) ([]float64, error) {
	rows := len(A)
	if rows == 0 || len(b) != rows {
		return nil, errors.New("stats: NNLS dimension mismatch")
	}
	cols := len(A[0])
	x := make([]float64, cols)
	// Lipschitz estimate: ‖A‖_F² bounds the largest eigenvalue of AᵀA.
	var frob float64
	for r := range A {
		if len(A[r]) != cols {
			return nil, errors.New("stats: NNLS ragged matrix")
		}
		for c := range A[r] {
			frob += A[r][c] * A[r][c]
		}
	}
	if frob == 0 {
		return x, nil
	}
	step := 1 / frob
	res := make([]float64, rows)
	grad := make([]float64, cols)
	for it := 0; it < iters; it++ {
		for r := 0; r < rows; r++ {
			res[r] = -b[r]
			for c := 0; c < cols; c++ {
				res[r] += A[r][c] * x[c]
			}
		}
		for c := 0; c < cols; c++ {
			grad[c] = 0
			for r := 0; r < rows; r++ {
				grad[c] += A[r][c] * res[r]
			}
		}
		var moved float64
		for c := 0; c < cols; c++ {
			nx := x[c] - step*grad[c]
			if nx < 0 {
				nx = 0
			}
			moved += math.Abs(nx - x[c])
			x[c] = nx
		}
		if moved < 1e-12 {
			break
		}
	}
	return x, nil
}

// Residual returns ‖A·x − b‖₂.
func Residual(A [][]float64, x, b []float64) float64 {
	var s float64
	for r := range A {
		d := -b[r]
		for c := range x {
			d += A[r][c] * x[c]
		}
		s += d * d
	}
	return math.Sqrt(s)
}
