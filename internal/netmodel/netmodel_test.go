package netmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/units"
)

func model(name string) *Model { return New(arch.MustGet(name)) }

func TestNodeOfDensePacking(t *testing.T) {
	md := model(arch.Hydra) // 16 cores/node
	if md.NodeOf(0) != 0 || md.NodeOf(15) != 0 || md.NodeOf(16) != 1 {
		t.Error("dense packing broken")
	}
	if !md.Intra(3, 12) || md.Intra(15, 16) {
		t.Error("Intra broken")
	}
}

func TestP2PIntraVsInter(t *testing.T) {
	md := model(arch.Power6)
	intra := md.P2P(0, 1, 1024)
	inter := md.P2P(0, 40, 1024) // 32 cores/node → rank 40 is node 1
	if intra.Latency >= inter.Latency {
		t.Error("intra-node latency must beat inter-node")
	}
	if intra.Serialize >= inter.Serialize {
		t.Error("intra-node bandwidth must beat inter-node")
	}
	if intra.LibOverhead != inter.LibOverhead {
		t.Error("library overhead is software; it should not depend on the path")
	}
}

func TestP2PEagerVsRendezvous(t *testing.T) {
	md := model(arch.Westmere) // rendezvous at 16 KiB
	small := md.P2P(0, 20, 1*units.KiB)
	big := md.P2P(0, 20, 64*units.KiB)
	if small.Rendezvous {
		t.Error("1 KiB must be eager")
	}
	if !big.Rendezvous {
		t.Error("64 KiB must rendezvous")
	}
	if big.Handshake <= 0 {
		t.Error("rendezvous messages pay a handshake")
	}
	if big.Total() <= small.Total() {
		t.Error("bigger message must cost more")
	}
}

// Property: P2P cost is monotone in size and every component non-negative.
func TestP2PMonotoneProperty(t *testing.T) {
	md := model(arch.BlueGene)
	f := func(s1, s2 uint32, a, b uint8) bool {
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		src, dst := int(a)%64, int(b)%64
		c1 := md.P2P(src, dst, units.Bytes(s1))
		c2 := md.P2P(src, dst, units.Bytes(s2))
		if c1.LibOverhead < 0 || c1.Latency < 0 || c1.Serialize < 0 {
			return false
		}
		return c1.InFlight() <= c2.InFlight()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusDistanceAffectsLatency(t *testing.T) {
	md := model(arch.BlueGene)    // 4 cores/node, torus 8×8×16
	near := md.P2P(0, 4, 1024)    // node 0 → node 1 (1 hop)
	far := md.P2P(0, 4*4+2, 1024) // node 0 → node 4 (4 hops on x)
	if near.Latency >= far.Latency {
		t.Errorf("torus latency must grow with hops: near=%v far=%v", near.Latency, far.Latency)
	}
}

func TestCollectiveTreeNearConstantInRanks(t *testing.T) {
	bg := model(arch.BlueGene)
	t64 := bg.Bcast(1024, 64)
	t1024 := bg.Bcast(1024, 1024)
	if t1024 > 2*t64 {
		t.Errorf("BG/P tree bcast should be near-constant: 64→%v 1024→%v", t64, t1024)
	}
	// By contrast a switched cluster's bcast grows with log(p).
	p6 := model(arch.Power6)
	if p6.Bcast(1024, 128) <= p6.Bcast(1024, 4) {
		t.Error("binomial bcast must grow with rank count")
	}
}

func TestCollectivesTrivialAtOneRank(t *testing.T) {
	md := model(arch.Hydra)
	if md.Bcast(1024, 1) != 0 || md.Reduce(1024, 1) != 0 ||
		md.Allreduce(1024, 1) != 0 || md.Barrier(1) != 0 ||
		md.Allgather(1024, 1) != 0 || md.Alltoall(1024, 1) != 0 {
		t.Error("single-rank collectives are free")
	}
}

func TestReduceCostsMoreThanBcast(t *testing.T) {
	md := model(arch.Hydra)
	if md.Reduce(64*units.KiB, 64) <= md.Bcast(64*units.KiB, 64) {
		t.Error("reduce adds operator cost over bcast")
	}
}

func TestAllreduceIsReducePlusBcast(t *testing.T) {
	md := model(arch.Westmere)
	r, b, ar := md.Reduce(4096, 96), md.Bcast(4096, 96), md.Allreduce(4096, 96)
	if ar != r+b {
		t.Errorf("allreduce = %v, want reduce %v + bcast %v", ar, r, b)
	}
}

// Property: all collective costs are non-negative and monotone in size.
func TestCollectiveMonotoneProperty(t *testing.T) {
	md := model(arch.Power6)
	f := func(s1, s2 uint16, rr uint8) bool {
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		ranks := int(rr)%128 + 2
		a, b := units.Bytes(s1), units.Bytes(s2)
		checks := []struct{ lo, hi units.Seconds }{
			{md.Bcast(a, ranks), md.Bcast(b, ranks)},
			{md.Reduce(a, ranks), md.Reduce(b, ranks)},
			{md.Allgather(a, ranks), md.Allgather(b, ranks)},
			{md.Alltoall(a, ranks), md.Alltoall(b, ranks)},
		}
		for _, c := range checks {
			if c.lo < 0 || c.lo > c.hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntraNodeCollectiveCheaper(t *testing.T) {
	md := model(arch.Hydra)      // 16 cores/node
	within := md.Bcast(4096, 16) // one node
	across := md.Bcast(4096, 32) // two nodes
	if within >= across {
		t.Errorf("intra-node collective must be cheaper: %v vs %v", within, across)
	}
}

func TestAlltoallCongestionOnTorus(t *testing.T) {
	bg := model(arch.BlueGene)
	p6 := model(arch.Power6)
	// Normalize by each machine's own allgather to isolate the
	// congestion surcharge: the torus pays relatively more for alltoall.
	bgRatio := bg.Alltoall(64*units.KiB, 64) / bg.Allgather(64*units.KiB, 64)
	p6Ratio := p6.Alltoall(64*units.KiB, 64) / p6.Allgather(64*units.KiB, 64)
	if bgRatio <= p6Ratio {
		t.Errorf("torus must suffer relatively more congestion: bg=%v p6=%v", bgRatio, p6Ratio)
	}
}

func TestInFlightAndTotal(t *testing.T) {
	md := model(arch.Hydra)
	c := md.P2P(0, 32, 8*units.KiB)
	if c.InFlight() != c.Latency+c.Serialize {
		t.Error("InFlight definition broken")
	}
	want := c.LibOverhead + c.InFlight()
	if c.Rendezvous {
		want += c.Handshake
	}
	if c.Total() != want {
		t.Error("Total definition broken")
	}
}

func TestHybridPlacement(t *testing.T) {
	m := arch.MustGet(arch.Hydra) // 16 cores/node
	md := NewPlaced(m, 4)         // 4 threads per rank
	if md.RanksPerNode != 4 {
		t.Fatalf("RanksPerNode = %d", md.RanksPerNode)
	}
	if md.NodeOf(3) != 0 || md.NodeOf(4) != 1 {
		t.Error("hybrid NodeOf broken")
	}
	if !md.Intra(0, 3) || md.Intra(3, 4) {
		t.Error("hybrid Intra broken")
	}
	// Clamping.
	if NewPlaced(m, 0).RanksPerNode != 1 {
		t.Error("zero ranks per node must clamp to 1")
	}
	if NewPlaced(m, 99).RanksPerNode != m.CoresPerNode {
		t.Error("excess ranks per node must clamp to cores per node")
	}
	// The same rank count spans more nodes under hybrid placement; once
	// the span crosses a fat-tree leaf (128 ranks → 32 nodes vs 8), the
	// longer average distance makes collectives costlier.
	pure := New(m)
	if md.jobNodes(128) <= pure.jobNodes(128) {
		t.Error("hybrid placement must span more nodes")
	}
	if md.Bcast(4096, 128) <= pure.Bcast(4096, 128) {
		t.Error("hybrid placement spans more nodes; collectives must cost more")
	}
}
