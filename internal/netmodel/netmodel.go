// Package netmodel prices messages on a machine's interconnect. It is the
// cost side of the MPI substrate: the discrete-event MPI layer
// (internal/mpi) asks it what a point-to-point transfer or a collective
// costs, and charges simulated time accordingly.
//
// The point-to-point model follows the paper's Eq. 1 decomposition:
//
//	T_Transfer = T_LibraryOverhead + x·T_inFlight
//
// where the in-flight term is latency (base + per-hop) plus wire
// serialization (size/bandwidth), and x > 1 arises naturally in the MPI
// layer from NIC serialization when multiple non-blocking messages are in
// flight. Collectives are priced with standard algorithm cost models
// (binomial trees, rings) — except on BlueGene/P, whose dedicated
// collective-tree network serves broadcast/reduce at near-constant cost in
// node count, exactly the behaviour the paper's Table 2 calls out.
package netmodel

import (
	"math"

	"repro/internal/arch"
	"repro/internal/topo"
	"repro/internal/units"
)

// Model prices traffic on one machine.
type Model struct {
	M    *arch.Machine
	Topo topo.Topology

	// RanksPerNode is the dense-packing width: CoresPerNode for the
	// paper's one-task-per-core placement, fewer under hybrid
	// MPI/OpenMP (each rank occupies several cores with its threads).
	RanksPerNode int

	avgHops map[int]float64 // node count → average hop distance
}

// New builds the cost model for a machine with one task per core.
func New(m *arch.Machine) *Model {
	return NewPlaced(m, m.CoresPerNode)
}

// NewPlaced builds the cost model with ranksPerNode tasks per node (the
// hybrid MPI/OpenMP placement: ranksPerNode = cores / threads).
func NewPlaced(m *arch.Machine, ranksPerNode int) *Model {
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	if ranksPerNode > m.CoresPerNode {
		ranksPerNode = m.CoresPerNode
	}
	return &Model{M: m, Topo: topo.For(m), RanksPerNode: ranksPerNode, avgHops: map[int]float64{}}
}

// NodeOf maps a rank to its node under dense packing (fill a node before
// the next).
func (md *Model) NodeOf(rank int) int { return rank / md.RanksPerNode }

// Intra reports whether two ranks share a node.
func (md *Model) Intra(src, dst int) bool { return md.NodeOf(src) == md.NodeOf(dst) }

// P2PCost decomposes one message's cost per Eq. 1.
type P2PCost struct {
	// LibOverhead is the per-call MPI software cost, paid on the CPU.
	LibOverhead units.Seconds
	// Latency is the wire propagation component: base + per-hop.
	Latency units.Seconds
	// Serialize is the NIC occupancy: size over link bandwidth. Under
	// concurrent non-blocking messages this term serializes, yielding
	// the paper's x·T_inFlight behaviour.
	Serialize units.Seconds
	// Rendezvous marks messages above the eager threshold; they pay
	// Handshake extra and cannot fly before the receive is posted.
	Rendezvous bool
	Handshake  units.Seconds
}

// InFlight is the network-only transfer time of the message (excluding
// library overhead and any rendezvous stall).
func (c P2PCost) InFlight() units.Seconds { return c.Latency + c.Serialize }

// Total is the full uncontended transfer time of a single message.
func (c P2PCost) Total() units.Seconds {
	t := c.LibOverhead + c.InFlight()
	if c.Rendezvous {
		t += c.Handshake
	}
	return t
}

// P2P prices one message of size bytes from src to dst (rank indices).
func (md *Model) P2P(src, dst int, size units.Bytes) P2PCost {
	net := &md.M.Net
	lib := net.LibOverheadUS * 1e-6
	if md.Intra(src, dst) {
		return P2PCost{
			LibOverhead: lib,
			Latency:     net.IntraLatencyUS * 1e-6,
			Serialize:   float64(size) / (net.IntraBandwidthGBs * 1e9),
			Rendezvous:  size >= net.RendezvousB,
			Handshake:   2 * net.IntraLatencyUS * 1e-6,
		}
	}
	hops := md.Topo.Hops(md.NodeOf(src), md.NodeOf(dst))
	lat := (net.LatencyUS + float64(hops)*net.PerHopUS) * 1e-6
	return P2PCost{
		LibOverhead: lib,
		Latency:     lat,
		Serialize:   float64(size) / (net.BandwidthGBs * 1e9),
		Rendezvous:  size >= net.RendezvousB,
		Handshake:   2 * lat,
	}
}

// jobNodes returns how many nodes a ranks-wide job spans.
func (md *Model) jobNodes(ranks int) int {
	if ranks <= 0 {
		return 0
	}
	return (ranks + md.RanksPerNode - 1) / md.RanksPerNode
}

// alphaBeta returns the effective per-stage latency α (seconds) and
// per-byte time β (seconds/byte) for a collective spanning ranks tasks.
func (md *Model) alphaBeta(ranks int) (alpha, beta float64) {
	net := &md.M.Net
	n := md.jobNodes(ranks)
	if n <= 1 {
		return (net.IntraLatencyUS + net.LibOverheadUS) * 1e-6,
			1 / (net.IntraBandwidthGBs * 1e9)
	}
	avg, ok := md.avgHops[n]
	if !ok {
		avg = topo.AverageHops(md.Topo, n)
		md.avgHops[n] = avg
	}
	alpha = (net.LatencyUS + avg*net.PerHopUS + net.LibOverheadUS) * 1e-6
	beta = 1 / (net.BandwidthGBs * 1e9)
	return
}

// stages is ceil(log2(ranks)): the depth of a binomial tree / butterfly.
func stages(ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(ranks)))
}

// reduceGamma is the per-byte cost of applying a reduction operator on the
// host CPU.
func (md *Model) reduceGamma() float64 {
	// ~8 bytes combined per core cycle.
	return 1 / (md.M.Proc.ClockGHz * 1e9 * 8)
}

// treeCollective prices one traversal of BlueGene/P's dedicated collective
// network.
func (md *Model) treeCollective(size units.Bytes, ranks int) units.Seconds {
	net := &md.M.Net
	depth := topo.TreeDepth(md.jobNodes(ranks))
	return net.TreeLatencyUS*1e-6 +
		float64(depth)*net.TreePerLevelUS*1e-6 +
		float64(size)/(net.TreeBandwidthGBs*1e9)
}

// useTree reports whether the collective tree serves this job (BG/P,
// spanning more than one node).
func (md *Model) useTree(ranks int) bool {
	return md.M.Net.HasCollectiveTree && md.jobNodes(ranks) > 1
}

// Bcast prices a broadcast of size bytes to ranks tasks.
func (md *Model) Bcast(size units.Bytes, ranks int) units.Seconds {
	if ranks <= 1 {
		return 0
	}
	if md.useTree(ranks) {
		return md.treeCollective(size, ranks)
	}
	a, b := md.alphaBeta(ranks)
	return stages(ranks) * (a + float64(size)*b)
}

// Reduce prices a reduction of size bytes across ranks tasks: a combining
// tree plus the operator cost at each stage.
func (md *Model) Reduce(size units.Bytes, ranks int) units.Seconds {
	if ranks <= 1 {
		return 0
	}
	g := md.reduceGamma() * float64(size)
	if md.useTree(ranks) {
		// The tree network combines in the switches; the operator cost
		// is hidden in the per-level latency.
		return md.treeCollective(size, ranks) + g
	}
	a, b := md.alphaBeta(ranks)
	return stages(ranks) * (a + float64(size)*b + g)
}

// Allreduce prices reduce-then-broadcast (or two tree traversals on BG/P).
func (md *Model) Allreduce(size units.Bytes, ranks int) units.Seconds {
	if ranks <= 1 {
		return 0
	}
	return md.Reduce(size, ranks) + md.Bcast(size, ranks)
}

// Barrier prices a zero-byte synchronization.
func (md *Model) Barrier(ranks int) units.Seconds {
	if ranks <= 1 {
		return 0
	}
	if md.useTree(ranks) {
		return md.treeCollective(0, ranks)
	}
	a, _ := md.alphaBeta(ranks)
	return stages(ranks) * a
}

// Allgather prices a ring allgather where every task contributes size
// bytes.
func (md *Model) Allgather(size units.Bytes, ranks int) units.Seconds {
	if ranks <= 1 {
		return 0
	}
	a, b := md.alphaBeta(ranks)
	return float64(ranks-1) * (a + float64(size)*b)
}

// Alltoall prices a personalized exchange of size bytes per pair, with a
// congestion surcharge: all-to-all traffic stresses bisection in a way the
// per-link β does not capture.
func (md *Model) Alltoall(size units.Bytes, ranks int) units.Seconds {
	if ranks <= 1 {
		return 0
	}
	a, b := md.alphaBeta(ranks)
	congestion := 1.0
	if md.jobNodes(ranks) > 1 {
		switch md.M.Net.Kind {
		case arch.TopoTorus3D:
			congestion = 1.9 // low-bisection torus suffers most
		default:
			congestion = 1.3
		}
	}
	return float64(ranks-1) * (a + float64(size)*b*congestion)
}
