// Package rng provides a deterministic, splittable pseudo-random source
// keyed by strings. The simulator uses it for two distinct purposes:
//
//   - idiosyncratic machine response terms — the per-(workload, machine)
//     wiggle that makes projection error emerge from model mismatch rather
//     than being painted on; these must be a pure function of their key so
//     that "running" a workload twice yields identical behaviour, and
//   - measurement noise — counter jitter that shrinks with observation
//     length, reproducing the paper's class-C-vs-D accuracy gap.
//
// Everything is stdlib-only and reproducible across runs and platforms:
// keys are hashed with FNV-1a into the state of a SplitMix64/xoshiro-style
// generator.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a small deterministic PRNG seeded from a string key.
// The zero value is not usable; construct with New.
type Source struct {
	state uint64
}

// New returns a Source whose stream is a pure function of key.
func New(key string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	s := h.Sum64()
	if s == 0 {
		s = 0x9e3779b97f4a7c15 // avoid the degenerate all-zero state
	}
	return &Source{state: s}
}

// Derive returns a new independent Source keyed by the parent key's stream
// position and the child key. Deriving the same child twice from sources at
// the same position yields identical streams.
func (s *Source) Derive(child string) *Source {
	h := fnv.New64a()
	var buf [8]byte
	x := s.state
	for i := range buf {
		buf[i] = byte(x >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(child))
	v := h.Sum64()
	if v == 0 {
		v = 0x9e3779b97f4a7c15
	}
	return &Source{state: v}
}

// State exports the source's current stream position. Together with
// Restore it makes a stream resumable: Restore(s.State()) continues
// exactly where s would have — the checkpoint material for exact
// mid-computation recovery.
func (s *Source) State() uint64 { return s.state }

// Restore returns a Source positioned at a previously exported State().
// Unlike New it performs no key hashing and no zero-state adjustment: the
// argument IS the state, so the restored stream is bit-identical to the
// exporter's continuation.
func Restore(state uint64) *Source { return &Source{state: state} }

// next advances the SplitMix64 state and returns 64 pseudo-random bits.
func (s *Source) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 { return s.next() }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.next() % uint64(n))
}

// Normal returns a draw from N(mean, stddev²) via Box–Muller.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Guard the log against a zero uniform draw.
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormalFactor returns exp(N(0, sigma²)) clipped to [1/limit, limit]:
// a multiplicative wiggle centred on 1, suitable for idiosyncratic machine
// response terms. limit must be > 1.
func (s *Source) LogNormalFactor(sigma, limit float64) float64 {
	if limit <= 1 {
		panic("rng: LogNormalFactor limit must exceed 1")
	}
	f := math.Exp(s.Normal(0, sigma))
	if f > limit {
		return limit
	}
	if f < 1/limit {
		return 1 / limit
	}
	return f
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Idiosyncrasy returns the stable multiplicative response factor for a
// (workload, machine) pair: exp(N(0, sigma²)) clipped to ±3σ equivalents.
// It is a pure function of the two keys and sigma's magnitude class, so the
// same pair always responds identically — machines have personalities, not
// noise.
func Idiosyncrasy(workload, machine string, sigma float64) float64 {
	src := New("idio2|" + workload + "|" + machine)
	return src.LogNormalFactor(sigma, math.Exp(3*sigma))
}
