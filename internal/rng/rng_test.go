package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New("key"), New("key")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same key must give identical streams")
		}
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a, b := New("key1"), New("key2")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct keys collided %d/64 draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New("p")
	c1 := parent.Derive("a")
	c2 := parent.Derive("a")
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("Derive at same position must be reproducible")
	}
	c3 := parent.Derive("b")
	if c1.Uint64() == c3.Uint64() {
		t.Fatal("different children should differ")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New("f")
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

// Property: Float64 is always in [0,1) regardless of key.
func TestFloat64RangeProperty(t *testing.T) {
	f := func(key string) bool {
		s := New(key)
		for i := 0; i < 16; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntn(t *testing.T) {
	s := New("i")
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) over 1000 draws hit only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New("x").Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New("n")
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ≈4", variance)
	}
}

func TestLogNormalFactorBounds(t *testing.T) {
	s := New("ln")
	for i := 0; i < 10000; i++ {
		f := s.LogNormalFactor(0.5, 2)
		if f < 0.5 || f > 2 {
			t.Fatalf("LogNormalFactor out of clip bounds: %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed string, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdiosyncrasyStable(t *testing.T) {
	a := Idiosyncrasy("bt-mz", "power6", 0.1)
	b := Idiosyncrasy("bt-mz", "power6", 0.1)
	if a != b {
		t.Fatal("Idiosyncrasy must be a pure function of its key")
	}
	c := Idiosyncrasy("bt-mz", "westmere", 0.1)
	if a == c {
		t.Fatal("different machines should respond differently")
	}
	if a <= 0 {
		t.Fatalf("factor must be positive, got %v", a)
	}
}

func TestIdiosyncrasyMagnitude(t *testing.T) {
	// With sigma 0.1 the clip keeps factors within exp(±0.3).
	for _, wl := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		f := Idiosyncrasy(wl, "m", 0.1)
		if f < math.Exp(-0.3)-1e-12 || f > math.Exp(0.3)+1e-12 {
			t.Errorf("Idiosyncrasy(%q) = %v outside ±3σ clip", wl, f)
		}
	}
}
