package durable

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/faultinject"
)

// TestChaosWALShortWrite: an injected partial write fails the append,
// leaves a torn frame on disk, and the next Open truncates it away —
// every fully-acknowledged record survives.
func TestChaosWALShortWrite(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, []byte("acked-1"), []byte("acked-2"))
	if err := faultinject.Arm("durable.wal.append=shortwrite:5#1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("torn-record")); err == nil {
		t.Fatal("short write reported success")
	}
	faultinject.Disarm()
	w.Close()
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != 2 || !bytes.Equal(got[0], []byte("acked-1")) || !bytes.Equal(got[1], []byte("acked-2")) {
		t.Fatalf("survivors = %q, want the two acked records", got)
	}
	if w2.Stats().Truncated != 1 {
		t.Errorf("truncated = %d, want 1", w2.Stats().Truncated)
	}
	// The recovered log keeps working.
	appendAll(t, w2, []byte("after-recovery"))
}

// TestChaosWALENOSPC: a full disk fails the append cleanly — nothing is
// written, the error surfaces, and the log stays consistent without even
// needing recovery.
func TestChaosWALENOSPC(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, []byte("before"))
	if err := faultinject.Arm("durable.wal.append=enospc#2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Append([]byte("lost")); err == nil {
			t.Fatal("enospc append reported success")
		}
	}
	faultinject.Disarm()
	appendAll(t, w, []byte("after"))
	w.Close()
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != 2 || !bytes.Equal(got[0], []byte("before")) || !bytes.Equal(got[1], []byte("after")) {
		t.Fatalf("replay = %q, want [before after] with no torn frames", got)
	}
	if st := w2.Stats(); st.Truncated != 0 || st.Corrupt != 0 {
		t.Errorf("enospc left damage behind: %+v", st)
	}
}

// TestChaosWALCorruptWrite: a silently corrupted write is accepted at
// append time (the disk lied) but caught by CRC32C on the next Open —
// the damaged record and everything after it are discarded.
func TestChaosWALCorruptWrite(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, []byte("clean-1"))
	if err := faultinject.Arm("durable.wal.append=corrupt#1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("bit-rotted")); err != nil {
		t.Fatalf("corrupt mode must report success (silent corruption): %v", err)
	}
	faultinject.Disarm()
	appendAll(t, w, []byte("shadowed"))
	w.Close()
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("clean-1")) {
		t.Fatalf("replay = %q, want only clean-1", got)
	}
	st := w2.Stats()
	if st.Corrupt != 1 || st.Truncated != 1 {
		t.Errorf("stats = %+v, want 1 corrupt + 1 truncated", st)
	}
}

// TestChaosWALReplayCorruptInjection: bit flips injected on the replay
// read path are rejected by checksum, counted, and cut the scan — the
// reader can never be handed a record that fails verification.
func TestChaosWALReplayCorruptInjection(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		appendAll(t, w, []byte(fmt.Sprintf("record-%d", i)))
	}
	w.Close()
	// Fire on the third frame scanned at Open.
	if err := faultinject.Arm("durable.wal.replay=corrupt#1"); err != nil {
		t.Fatal(err)
	}
	// Consume the injection budget on frames 1-2 passing clean? No:
	// #1 fires on the first pass — the first frame scanned. The log is
	// cut to zero records.
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	faultinject.Disarm()
	if len(got) != 0 {
		t.Fatalf("replayed %q past an injected flip", got)
	}
	st := w2.Stats()
	if st.Corrupt != 1 || st.Truncated != 1 {
		t.Errorf("stats = %+v, want 1 corrupt + 1 truncated", st)
	}
}

// TestChaosWALSyncFailure: an injected fsync error surfaces to the
// caller instead of being swallowed.
func TestChaosWALSyncFailure(t *testing.T) {
	defer faultinject.Disarm()
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := faultinject.Arm("durable.wal.sync=error#1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err == nil {
		t.Fatal("sync failure did not surface through Append")
	}
}
