package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the scanner/replayer and checks
// two properties:
//
//  1. Hostile input never panics, never errors, never OOMs: Open +
//     Replay treat any byte soup as (valid prefix, torn tail).
//  2. The valid prefix round-trips: replay returns exactly the records
//     of the longest well-formed frame prefix, bit for bit.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// One valid frame ("hi") followed by garbage.
	valid := frameOf([]byte("hi"))
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe))
	// A huge claimed length with no body behind it.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on arbitrary bytes: %v", err)
		}
		var got [][]byte
		if err := w.Replay(func(rec []byte) error {
			got = append(got, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			t.Fatalf("Replay on arbitrary bytes: %v", err)
		}
		want := validRecords(data)
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, valid prefix holds %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
			}
		}
		// The recovered log must accept appends and round-trip them.
		if err := w.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		var last []byte
		n := 0
		if err := w2.Replay(func(rec []byte) error {
			last = append(last[:0], rec...)
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != len(want)+1 || !bytes.Equal(last, []byte("post-recovery")) {
			t.Fatalf("after append: %d records, last %q", n, last)
		}
	})
}

// frameOf builds one well-formed frame around body.
func frameOf(body []byte) []byte {
	frame := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	copy(frame[frameHeader:], body)
	return frame
}

// validRecords is the reference decoder: the records of data's longest
// well-formed frame prefix.
func validRecords(data []byte) [][]byte {
	var recs [][]byte
	for len(data) >= frameHeader {
		length := binary.LittleEndian.Uint32(data[0:4])
		want := binary.LittleEndian.Uint32(data[4:8])
		if length == 0 || length > MaxRecordBytes || int64(len(data)-frameHeader) < int64(length) {
			break
		}
		body := data[frameHeader : frameHeader+int(length)]
		if crc32.Checksum(body, castagnoli) != want {
			break
		}
		recs = append(recs, body)
		data = data[frameHeader+int(length):]
	}
	return recs
}

// TestFuzzSeedCorpusProperties runs the fuzz body over the seed corpus
// in plain `go test` mode, so the properties are exercised in CI even
// without -fuzz.
func TestFuzzSeedCorpusProperties(t *testing.T) {
	one := frameOf([]byte("alpha"))
	two := append(append([]byte(nil), one...), frameOf([]byte("beta"))...)
	cases := [][]byte{
		nil,
		two,
		append(append([]byte(nil), two...), 0x01, 0x02),
		two[:len(two)-3],
	}
	for i, data := range cases {
		want := validRecords(data)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, w := replayAll(t, dir, Options{})
		w.Close()
		if len(got) != len(want) {
			t.Errorf("case %d: %d records, want %d", i, len(got), len(want))
		}
	}
}
