package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendAll writes records and syncs.
func appendAll(t *testing.T, w *WAL, recs ...[]byte) {
	t.Helper()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// replayAll reopens the log at dir and returns every replayed record.
func replayAll(t *testing.T, dir string, opts Options) ([][]byte, *WAL) {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var got [][]byte
	if err := w.Replay(func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, w
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte(`{"type":"submit","id":"job-1"}`), bytes.Repeat([]byte{0}, 1000)}
	appendAll(t, w, want...)
	if got := w.Stats().Records; got != 3 {
		t.Errorf("Records = %d, want 3", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	st := w2.Stats()
	if st.Replayed != 3 || st.Truncated != 0 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 3 replayed and a clean log", st)
	}
}

func TestWALRejectsEmptyAndOversized(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversized record accepted")
	}
}

// TestWALTornTail is the table-driven crash-shape suite: a log cut off
// mid-length, mid-CRC, or mid-body must reopen with exactly the records
// before the tear and one truncation event — never an error, never a
// partial record.
func TestWALTornTail(t *testing.T) {
	// cut is where the third record's frame is severed, as an offset into
	// its own frame (header is 8 bytes).
	cases := []struct {
		name string
		cut  int64
	}{
		{"mid-length", 2},   // inside the length field
		{"mid-crc", 6},      // inside the checksum field
		{"mid-body", 8 + 1}, // one body byte made it to disk
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
			appendAll(t, w, recs...)
			w.Close()
			// Sever the third frame at the case's offset. Frames are
			// 8+5 bytes each here.
			seg := filepath.Join(dir, segName(1))
			frame3 := int64(2 * (frameHeader + 5))
			if err := os.Truncate(seg, frame3+tc.cut); err != nil {
				t.Fatal(err)
			}
			got, w2 := replayAll(t, dir, Options{})
			defer w2.Close()
			if len(got) != 2 {
				t.Fatalf("replayed %d records, want 2", len(got))
			}
			if !bytes.Equal(got[0], recs[0]) || !bytes.Equal(got[1], recs[1]) {
				t.Errorf("surviving records %q, want %q", got, recs[:2])
			}
			st := w2.Stats()
			if st.Truncated != 1 {
				t.Errorf("durable.wal_truncated = %d, want 1", st.Truncated)
			}
			if st.Corrupt != 0 {
				t.Errorf("durable.wal_corrupt = %d, want 0 (a short frame is a tear, not a checksum failure)", st.Corrupt)
			}
			// The log must accept fresh appends after the cut, and the
			// next replay must see old survivors then the new record.
			appendAll(t, w2, []byte("delta"))
			w2.Close()
			got2, w3 := replayAll(t, dir, Options{})
			defer w3.Close()
			if len(got2) != 3 || !bytes.Equal(got2[2], []byte("delta")) {
				t.Fatalf("post-recovery log replayed %q", got2)
			}
		})
	}
}

// TestWALBitFlip: a flipped body bit is caught by CRC32C, rejected, and
// the log is truncated at the damaged frame.
func TestWALBitFlip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, []byte("alpha"), []byte("beta"), []byte("gamma"))
	w.Close()
	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeader+5+frameHeader+2] ^= 0x10 // a bit inside "beta"
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("alpha")) {
		t.Fatalf("replayed %q, want only alpha", got)
	}
	st := w2.Stats()
	if st.Corrupt != 1 || st.Truncated != 1 {
		t.Errorf("stats = %+v, want 1 corrupt + 1 truncated", st)
	}
}

// TestWALZeroFilledTail: a preallocated-then-crashed tail of zero bytes
// must not replay as an endless stream of empty records.
func TestWALZeroFilledTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, []byte("alpha"))
	w.Close()
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
	if w2.Stats().Truncated != 1 {
		t.Errorf("truncated = %d, want 1", w2.Stats().Truncated)
	}
}

// TestWALRotationAndLaterSegmentsDropped: the log rotates at the size
// threshold, replays across segments in order, and a tear in an early
// segment discards every later segment (the chain is broken).
func TestWALRotationAndLaterSegmentsDropped(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 12; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-padding-padding", i))
		want = append(want, rec)
	}
	appendAll(t, w, want...)
	w.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %v", segs)
	}
	got, w2 := replayAll(t, dir, Options{SegmentBytes: 64})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	w2.Close()

	// Damage the second segment's first frame: everything from that
	// frame on — including segments 3+ — is unreachable.
	raw, err := os.ReadFile(filepath.Join(dir, segName(segs[1])))
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeader+2] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, segName(segs[1])), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got2, w3 := replayAll(t, dir, Options{SegmentBytes: 64})
	defer w3.Close()
	inFirst := 0
	for off := int64(0); ; inFirst++ {
		off += frameHeader + int64(len(want[inFirst]))
		if off >= 64 {
			inFirst++
			break
		}
	}
	if len(got2) != inFirst {
		t.Fatalf("replayed %d records after mid-chain damage, want %d (first segment only)", len(got2), inFirst)
	}
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("later segments not dropped: %v", after)
	}
}

func TestWALCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		appendAll(t, w, []byte(fmt.Sprintf("old-record-%02d-padding", i)))
	}
	keep := [][]byte{[]byte("kept-1"), []byte("kept-2")}
	if err := w.Compact(keep); err != nil {
		t.Fatal(err)
	}
	// Post-compact appends land after the kept records.
	appendAll(t, w, []byte("new-after-compact"))
	w.Close()
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != 3 || !bytes.Equal(got[0], keep[0]) || !bytes.Equal(got[1], keep[1]) || !bytes.Equal(got[2], []byte("new-after-compact")) {
		t.Fatalf("post-compact replay = %q", got)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("compact left %v segments, want exactly one", segs)
	}
}

// TestWALSyncBatching: with a long SyncEvery, appends don't fsync each
// time (observable only as "no error" here — the contract test is that
// Sync and Close still force the flush and nothing is lost).
func TestWALSyncBatching(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil { // Close must flush the batch
		t.Fatal(err)
	}
	got, w2 := replayAll(t, dir, Options{})
	defer w2.Close()
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Append([]byte("x")); err == nil {
		t.Error("append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}
