// Package durable is swappd's crash-durability layer: a CRC32C-framed,
// segment-rotated, append-only write-ahead log plus the snapshot helpers
// the server builds on (job journal, artifact-vault spill).
//
// Frame format, little-endian:
//
//	[len uint32][crc uint32][body ...len bytes]
//
// where crc is CRC32C (Castagnoli) over the body. Records are opaque
// bytes to this package. A log is a directory of segment files
// (wal-00000001.seg, wal-00000002.seg, …) appended in order and rotated
// at a size threshold, so compaction and replay never hold more than the
// frame under the cursor in memory.
//
// Torn-tail semantics: Open scans every segment front to back and
// truncates the log at the FIRST bad frame — a short header, a short
// body, a checksum mismatch, an implausible length — discarding that
// frame and everything after it (including later segments, which are
// unreachable once the chain is broken). That is exactly the state a
// kill -9 mid-write leaves behind: the valid prefix is the durable
// truth, the tail never happened. Replay after Open therefore sees only
// verified records.
//
// Durability knobs: SyncEvery batches fsyncs (0 means fsync every
// append); rotation always syncs the finished segment. The package is
// fault-injectable at "durable.wal.append", "durable.wal.sync", and
// "durable.wal.replay" — including the I/O-shaped modes (shortwrite,
// enospc, corrupt) — so chaos tests can prove recovery under partial
// writes, full disks, and bit flips.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

const (
	// frameHeader is the fixed per-record overhead: length + CRC32C.
	frameHeader = 8
	// MaxRecordBytes bounds a single record. A length field above this is
	// treated as corruption, not an allocation request — replay of
	// hostile or damaged bytes must never OOM.
	MaxRecordBytes = 16 << 20
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// it zero.
	DefaultSegmentBytes = 4 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a WAL.
type Options struct {
	// SyncEvery batches fsyncs: an append syncs only if that much time
	// has passed since the last sync. 0 — the default — syncs every
	// append (maximum durability, the safe default).
	SyncEvery time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// reaches this size. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Obs, when non-nil, receives the recovery counters
	// (durable.wal_records, _replayed, _truncated, _corrupt).
	Obs *obs.Scope
}

// Stats are the WAL's lifetime counters, mirrored to Options.Obs under
// durable.wal_*.
type Stats struct {
	// Records appended (and fully written) by this process.
	Records int64
	// Replayed records delivered to Replay callbacks.
	Replayed int64
	// Truncated torn-tail events: Open cut the log at a bad frame.
	Truncated int64
	// Corrupt frames rejected on a checksum mismatch (a subset of the
	// damage Truncated covers; short frames count only as truncation).
	Corrupt int64
}

// WAL is an append-only segmented log. All methods are safe for
// concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // current append segment
	seg      int      // its index
	size     int64    // its current size
	segments []int    // all live segment indices, ascending
	lastSync time.Time
	dirty    bool // unsynced appends pending
	closed   bool

	records   atomic.Int64
	replayed  atomic.Int64
	truncated atomic.Int64
	corrupt   atomic.Int64
}

// segName formats a segment file name.
func segName(i int) string { return fmt.Sprintf("%s%08d%s", segPrefix, i, segSuffix) }

// Open opens (or creates) the log in dir, scans every segment, truncates
// the torn tail if one is found, and positions the log for appending.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create wal dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	if err := w.scan(); err != nil {
		return nil, err
	}
	// Append into the newest segment (creating the first if the log is
	// empty).
	if len(w.segments) == 0 {
		w.segments = []int{1}
	}
	w.seg = w.segments[len(w.segments)-1]
	f, err := os.OpenFile(filepath.Join(dir, segName(w.seg)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open segment: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: seek segment: %w", err)
	}
	w.f, w.size, w.lastSync = f, size, time.Now()
	return w, nil
}

// listSegments returns the live segment indices in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: read wal dir: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		var i int
		if n, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &i); n == 1 && err == nil && name == segName(i) {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scan validates every segment front to back and truncates at the first
// bad frame, deleting any later segments (unreachable once the chain
// breaks).
func (w *WAL) scan() error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for si, seg := range segs {
		valid, reason, err := w.validPrefix(filepath.Join(w.dir, segName(seg)))
		if err != nil {
			return err
		}
		if reason == "" {
			continue
		}
		// Torn tail: cut this segment back to its valid prefix and drop
		// everything after it.
		if err := os.Truncate(filepath.Join(w.dir, segName(seg)), valid); err != nil {
			return fmt.Errorf("durable: truncate torn segment %d: %w", seg, err)
		}
		for _, later := range segs[si+1:] {
			if err := os.Remove(filepath.Join(w.dir, segName(later))); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("durable: drop unreachable segment %d: %w", later, err)
			}
		}
		segs = segs[:si+1]
		w.truncated.Add(1)
		w.opts.Obs.Count("durable.wal_truncated", 1)
		break
	}
	w.segments = segs
	return nil
}

// validPrefix scans one segment file and returns the byte offset of its
// valid frame prefix. reason is "" when the whole file is valid,
// otherwise a short description of the first bad frame (corruption is
// counted here).
func (w *WAL) validPrefix(path string) (valid int64, reason string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", fmt.Errorf("durable: open segment for scan: %w", err)
	}
	defer f.Close()
	var off int64
	var hdr [frameHeader]byte
	var body []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return off, "", nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return off, "short header", nil
			}
			return 0, "", fmt.Errorf("durable: scan segment: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordBytes {
			// A zero length would loop forever on zero-filled tails; an
			// implausible one is damage, not an allocation request.
			return off, "implausible length", nil
		}
		if int(length) > cap(body) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(f, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return off, "short body", nil
			}
			return 0, "", fmt.Errorf("durable: scan segment: %w", err)
		}
		if fault := faultinject.FireIO("durable.wal.replay"); fault != nil && fault.Mode == faultinject.ModeCorrupt && length > 0 {
			body[int(length)/2] ^= 1
		}
		if crc32.Checksum(body, castagnoli) != want {
			w.corrupt.Add(1)
			w.opts.Obs.Count("durable.wal_corrupt", 1)
			return off, "checksum mismatch", nil
		}
		off += frameHeader + int64(length)
	}
}

// Replay streams every record (in append order, across segments) to fn.
// It must only be called on a freshly Opened log, before new appends are
// interleaved with the replay read. fn's slice is only valid for the
// duration of the call.
func (w *WAL) Replay(fn func(rec []byte) error) error {
	w.mu.Lock()
	segs := append([]int(nil), w.segments...)
	w.mu.Unlock()
	if err := faultinject.Fire("durable.wal.replay"); err != nil {
		return err
	}
	var hdr [frameHeader]byte
	var body []byte
	for _, seg := range segs {
		f, err := os.Open(filepath.Join(w.dir, segName(seg)))
		if err != nil {
			return fmt.Errorf("durable: open segment for replay: %w", err)
		}
		for {
			if _, err := io.ReadFull(f, hdr[:]); err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					break
				}
				f.Close()
				return fmt.Errorf("durable: replay: %w", err)
			}
			length := binary.LittleEndian.Uint32(hdr[0:4])
			want := binary.LittleEndian.Uint32(hdr[4:8])
			if length == 0 || length > MaxRecordBytes {
				break // scan already cut here on Open; be defensive anyway
			}
			if int(length) > cap(body) {
				body = make([]byte, length)
			}
			body = body[:length]
			if _, err := io.ReadFull(f, body); err != nil {
				break
			}
			if crc32.Checksum(body, castagnoli) != want {
				// Damage that appeared after Open's scan (or injected):
				// reject the record and stop — the chain is broken.
				w.corrupt.Add(1)
				w.opts.Obs.Count("durable.wal_corrupt", 1)
				break
			}
			w.replayed.Add(1)
			w.opts.Obs.Count("durable.wal_replayed", 1)
			if err := fn(body); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// Append frames and writes one record, honouring the sync policy. The
// record must be non-empty (zero-length frames are indistinguishable
// from a zero-filled torn tail).
func (w *WAL) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("durable: empty record")
	}
	if len(rec) > MaxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds MaxRecordBytes", len(rec))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("durable: wal is closed")
	}
	if err := faultinject.Fire("durable.wal.append"); err != nil {
		return err
	}
	frame := make([]byte, frameHeader+len(rec))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(rec, castagnoli))
	copy(frame[frameHeader:], rec)
	if fault := faultinject.FireIO("durable.wal.append"); fault != nil {
		switch fault.Mode {
		case faultinject.ModeENOSPC:
			return fmt.Errorf("durable: append: %w", fault)
		case faultinject.ModeShortWrite:
			// The crash shape: a prefix of the frame reaches the disk,
			// then the write fails. The torn tail stays in the file for
			// the next Open to truncate.
			n := fault.N
			if n > len(frame) {
				n = len(frame)
			}
			if n > 0 {
				if _, err := w.f.Write(frame[:n]); err != nil {
					return fmt.Errorf("durable: append: %w", err)
				}
				w.size += int64(n)
			}
			return fmt.Errorf("durable: append: %w", fault)
		case faultinject.ModeCorrupt:
			// Silent media corruption: the write "succeeds", one bit
			// lies. Flip inside the body so the checksum catches it.
			frame[frameHeader+len(rec)/2] ^= 1
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	w.size += int64(len(frame))
	w.dirty = true
	w.records.Add(1)
	w.opts.Obs.Count("durable.wal_records", 1)
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if w.opts.SyncEvery <= 0 || time.Since(w.lastSync) >= w.opts.SyncEvery {
		return w.syncLocked()
	}
	return nil
}

// Sync flushes pending appends to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("durable: wal is closed")
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := faultinject.Fire("durable.wal.sync"); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync: %w", err)
	}
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// rotateLocked seals the current segment (fsync + close) and starts the
// next one.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: rotate sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: rotate close: %w", err)
	}
	w.dirty = false
	w.seg++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: rotate open: %w", err)
	}
	w.f, w.size = f, 0
	w.segments = append(w.segments, w.seg)
	syncDir(w.dir)
	return nil
}

// Compact atomically replaces the whole log with the given records: they
// are written to a fresh segment (tmp file, fsync, rename), and only
// then are the old segments deleted. A crash at any point leaves either
// the old log or the new one — never neither.
func (w *WAL) Compact(records [][]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("durable: wal is closed")
	}
	newSeg := w.seg + 1
	path := filepath.Join(w.dir, segName(newSeg))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	var size int64
	for _, rec := range records {
		if len(rec) == 0 || len(rec) > MaxRecordBytes {
			f.Close()
			os.Remove(tmp)
			return errors.New("durable: compact: record size out of range")
		}
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rec, castagnoli))
		if _, err := f.Write(hdr[:]); err == nil {
			_, err = f.Write(rec)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("durable: compact: %w", err)
		}
		size += frameHeader + int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: compact rename: %w", err)
	}
	syncDir(w.dir)
	// The new segment is durable; the old ones are now garbage.
	old := w.segments
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: compact: close old segment: %w", err)
	}
	for _, seg := range old {
		if seg == newSeg {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, segName(seg))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("durable: compact: drop segment %d: %w", seg, err)
		}
	}
	// Reopen the compacted segment for appending.
	nf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: compact reopen: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("durable: compact seek: %w", err)
	}
	w.f, w.seg, w.size, w.dirty = nf, newSeg, size, false
	w.segments = []int{newSeg}
	return nil
}

// Stats returns the lifetime counters.
func (w *WAL) Stats() Stats {
	return Stats{
		Records:   w.records.Load(),
		Replayed:  w.replayed.Load(),
		Truncated: w.truncated.Load(),
		Corrupt:   w.corrupt.Load(),
	}
}

// Close syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := func() error {
		if !w.dirty {
			return nil
		}
		return w.f.Sync()
	}()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir best-effort fsyncs a directory so renames/creates within it
// are durable. Errors are swallowed: some filesystems reject directory
// syncs, and the data files themselves are already synced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
