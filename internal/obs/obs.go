// Package obs is the projection engine's observability layer: hierarchical
// wall-clock spans, named counters/gauges/histograms, and JSON exporters for
// both — stdlib only, with a no-op default.
//
// The design mirrors tracing in a serving stack: instrument once, assert on
// the numbers forever after. A *Scope is one span in a trace tree plus a
// handle on the trace-wide metric registry. The nil *Scope is the disabled
// layer — every method on a nil receiver returns immediately, so the
// instrumented hot paths (GA generations, pipeline fan-out, figure cells)
// cost one nil check when observability is off.
//
// Determinism contract: obs only ever records; nothing the engine computes
// reads an obs value back. Projections and figures are therefore
// byte-identical with tracing enabled or disabled, at any worker count
// (asserted by TestObsDeterminism). Counter and histogram aggregates are
// order-independent (histogram sums may differ in the last ULP across
// schedules); gauges are last-write-wins and are reserved for
// configuration-like values.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Scope is a span under construction: a name, a start/end wall time, an
// optional worker id, child spans, and the shared metric registry. Create a
// root with New, children with Child/ChildW, and close each with End.
//
// A nil *Scope is valid everywhere and does nothing.
type Scope struct {
	reg    *registry
	name   string
	worker int

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	children []*Scope
}

// New starts a root scope (and its trace-wide metric registry).
func New(name string) *Scope {
	return &Scope{reg: newRegistry(), name: name, worker: -1, start: time.Now()}
}

// Enabled reports whether the scope records anything. It is the cheap guard
// for instrumentation that must do work (e.g. read the clock) before it can
// record.
func (s *Scope) Enabled() bool { return s != nil }

// Name returns the span name ("" when disabled).
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child starts a child span. The returned scope shares the registry; close
// it with End.
func (s *Scope) Child(name string) *Scope { return s.ChildW(name, -1) }

// ChildW is Child with a worker id (the pool slot executing the span), for
// fan-out sections where utilisation matters. Use -1 for "not on a pool".
func (s *Scope) ChildW(name string, worker int) *Scope {
	if s == nil {
		return nil
	}
	c := &Scope{reg: s.reg, name: name, worker: worker, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Later Ends are no-ops, so defer sp.End() composes
// with an explicit earlier End.
func (s *Scope) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// --- metrics ---------------------------------------------------------------

// Count adds delta to a named monotonic counter.
func (s *Scope) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.reg.mu.Lock()
	s.reg.counters[name] += delta
	s.reg.mu.Unlock()
}

// Gauge sets a named last-write-wins value. Reserve gauges for
// configuration-like quantities; concurrent writers make the final value
// schedule-dependent.
func (s *Scope) Gauge(name string, v float64) {
	if s == nil {
		return
	}
	s.reg.mu.Lock()
	s.reg.gauges[name] = v
	s.reg.mu.Unlock()
}

// Observe records v into a named histogram (count/sum/min/max).
func (s *Scope) Observe(name string, v float64) {
	if s == nil {
		return
	}
	s.reg.mu.Lock()
	h, ok := s.reg.hists[name]
	if !ok {
		h = &histogram{min: math.Inf(1), max: math.Inf(-1)}
		s.reg.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	s.reg.mu.Unlock()
}

// registry is the trace-wide metric store, shared by every scope in a tree.
type registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

func newRegistry() *registry {
	return &registry{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
	}
}

// histogram is a streaming count/sum/min/max aggregate.
type histogram struct {
	count    int64
	sum, min float64
	max      float64
}

// --- snapshots -------------------------------------------------------------

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram aggregate in a snapshot.
type HistogramValue struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Mean is the histogram's average observation (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Metrics is a point-in-time metric snapshot, each section sorted by name.
type Metrics struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Metrics snapshots the registry. On a disabled scope it returns the zero
// snapshot.
func (s *Scope) Metrics() Metrics {
	var m Metrics
	if s == nil {
		return m
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	for name, v := range s.reg.counters {
		m.Counters = append(m.Counters, CounterValue{Name: name, Value: v})
	}
	for name, v := range s.reg.gauges {
		m.Gauges = append(m.Gauges, GaugeValue{Name: name, Value: v})
	}
	for name, h := range s.reg.hists {
		m.Histograms = append(m.Histograms, HistogramValue{
			Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		})
	}
	sort.Slice(m.Counters, func(i, j int) bool { return m.Counters[i].Name < m.Counters[j].Name })
	sort.Slice(m.Gauges, func(i, j int) bool { return m.Gauges[i].Name < m.Gauges[j].Name })
	sort.Slice(m.Histograms, func(i, j int) bool { return m.Histograms[i].Name < m.Histograms[j].Name })
	return m
}

// Counter looks a counter up by name.
func (m Metrics) Counter(name string) (int64, bool) {
	for _, c := range m.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Histogram looks a histogram up by name.
func (m Metrics) Histogram(name string) (HistogramValue, bool) {
	for _, h := range m.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// WriteText renders the snapshot as aligned plain text, one metric per line.
func (m Metrics) WriteText(w io.Writer) error {
	if len(m.Counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		for _, c := range m.Counters {
			fmt.Fprintf(w, "  %-40s %12d\n", c.Name, c.Value)
		}
	}
	if len(m.Gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		for _, g := range m.Gauges {
			fmt.Fprintf(w, "  %-40s %12g\n", g.Name, g.Value)
		}
	}
	if len(m.Histograms) > 0 {
		fmt.Fprintf(w, "histograms:%47s %12s %12s %12s\n", "count", "mean", "min", "max")
		for _, h := range m.Histograms {
			fmt.Fprintf(w, "  %-40s %12d %12.6g %12.6g %12.6g\n",
				h.Name, h.Count, h.Mean(), h.Min, h.Max)
		}
	}
	return nil
}

// --- trace export ----------------------------------------------------------

// SpanData is one exported span: offsets are microseconds relative to the
// exported root's start, so a trace is self-contained and host-clock free.
type SpanData struct {
	Name string `json:"name"`
	// Worker is the pool slot that executed the span, -1 when the span did
	// not run on a worker pool.
	Worker  int         `json:"worker"`
	StartUS int64       `json:"start_us"`
	DurUS   int64       `json:"dur_us"`
	Spans   []*SpanData `json:"spans,omitempty"`
}

// Trace snapshots the span tree rooted at s. Spans still open are reported
// as ending at the snapshot instant (one instant for the whole export, so a
// live snapshot is internally consistent). Returns nil when disabled.
func (s *Scope) Trace() *SpanData {
	if s == nil {
		return nil
	}
	now := time.Now()
	return s.export(s.start, now)
}

// export converts the subtree, with offsets relative to epoch.
func (s *Scope) export(epoch, now time.Time) *SpanData {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = now
	}
	kids := append([]*Scope(nil), s.children...)
	d := &SpanData{
		Name:    s.name,
		Worker:  s.worker,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
	}
	s.mu.Unlock()
	for _, c := range kids {
		d.Spans = append(d.Spans, c.export(epoch, now))
	}
	return d
}

// TraceJSON is the `-trace` file format: the span tree plus the final
// metric snapshot, in one self-describing document.
type TraceJSON struct {
	Root    *SpanData `json:"root"`
	Metrics Metrics   `json:"metrics"`
}

// WriteTrace writes the TraceJSON document (indented, stable key order).
func (s *Scope) WriteTrace(w io.Writer) error {
	if s == nil {
		return nil
	}
	doc := TraceJSON{Root: s.Trace(), Metrics: s.Metrics()}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
