package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar publication: expvar.Publish
// panics on duplicate names, and tests may start several debug servers.
var expvarOnce sync.Once

// publishExpvar exposes the scope's metric snapshot under the standard
// /debug/vars endpoint as one composite var. Later calls for other scopes
// are no-ops — expvar is process-global, so the first long-running scope
// wins; dedicated /metrics endpoints exist per server.
func publishExpvar(s *Scope) {
	expvarOnce.Do(func() {
		expvar.Publish("swapp.metrics", expvar.Func(func() any { return s.Metrics() }))
	})
}

// DebugHandler serves the long-run debugging surface for a scope:
//
//	/debug/pprof/*  net/http/pprof profiles
//	/debug/vars     expvar (includes swapp.metrics)
//	/metrics        the scope's metric snapshot, plain text
//	/metrics.json   the same snapshot as JSON
//	/trace.json     a live snapshot of the span tree + metrics
func DebugHandler(s *Scope) http.Handler {
	publishExpvar(s)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.Metrics().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Metrics())
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.WriteTrace(w)
	})
	return mux
}

// writeJSON marshals v onto w (indented); errors surface as a 500.
func writeJSON(w http.ResponseWriter, v any) {
	if err := jsonIndent(w, v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// jsonIndent writes v as indented JSON.
func jsonIndent(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ServeDebug starts an HTTP debug server for the scope on addr (host:port;
// :0 picks a free port). It returns the bound address and a stop function.
// Intended for the CLIs' -debug-addr flag on long evaluation runs.
func ServeDebug(addr string, s *Scope) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler(s)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
