package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilScopeIsNoOp(t *testing.T) {
	var s *Scope
	if s.Enabled() {
		t.Fatal("nil scope must report disabled")
	}
	// Every method must be callable on the nil receiver.
	c := s.Child("x")
	if c != nil {
		t.Fatal("child of a disabled scope must stay disabled")
	}
	c.Count("n", 1)
	c.Gauge("g", 1)
	c.Observe("h", 1)
	c.End()
	if s.Trace() != nil {
		t.Fatal("disabled trace must be nil")
	}
	m := s.Metrics()
	if len(m.Counters)+len(m.Gauges)+len(m.Histograms) != 0 {
		t.Fatal("disabled metrics must be empty")
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("disabled WriteTrace must write nothing")
	}
}

func TestSpanHierarchyAndContainment(t *testing.T) {
	root := New("root")
	a := root.Child("a")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.ChildW("b", 3)
	bb := b.Child("b.inner")
	bb.End()
	b.End()
	root.End()

	tr := root.Trace()
	if tr.Name != "root" || len(tr.Spans) != 2 {
		t.Fatalf("unexpected tree: %+v", tr)
	}
	if tr.Spans[1].Worker != 3 || tr.Spans[0].Worker != -1 {
		t.Fatalf("worker ids lost: %+v", tr.Spans)
	}
	if len(tr.Spans[1].Spans) != 1 || tr.Spans[1].Spans[0].Name != "b.inner" {
		t.Fatalf("nesting lost: %+v", tr.Spans[1])
	}
	// Containment: every child interval lies within the root's, and — the
	// spans here being sequential — their durations sum to at most the
	// root's duration.
	var sum int64
	for _, c := range tr.Spans {
		if c.StartUS < tr.StartUS {
			t.Errorf("child %s starts before root", c.Name)
		}
		if c.StartUS+c.DurUS > tr.StartUS+tr.DurUS {
			t.Errorf("child %s ends after root", c.Name)
		}
		sum += c.DurUS
	}
	if sum > tr.DurUS {
		t.Errorf("sequential children sum to %dus > root %dus", sum, tr.DurUS)
	}
}

func TestEndIdempotent(t *testing.T) {
	s := New("x")
	s.End()
	d1 := s.Trace().DurUS
	time.Sleep(2 * time.Millisecond)
	s.End() // must not move the end time
	d2 := s.Trace().DurUS
	if d1 != d2 {
		t.Fatalf("second End moved the span end: %d != %d", d1, d2)
	}
}

func TestOpenSpanExportsConsistently(t *testing.T) {
	root := New("root")
	_ = root.Child("open-child") // never ended
	time.Sleep(time.Millisecond)
	tr := root.Trace() // root also still open
	c := tr.Spans[0]
	if c.DurUS <= 0 {
		t.Fatal("open child must report elapsed time")
	}
	if c.StartUS+c.DurUS > tr.StartUS+tr.DurUS {
		t.Fatal("open child must not extend past the snapshot instant")
	}
}

func TestMetricsAggregation(t *testing.T) {
	s := New("m")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Count("hits", 1)
				s.Observe("lat", 2.0)
			}
		}()
	}
	wg.Wait()
	s.Gauge("workers", 8)

	m := s.Metrics()
	if v, ok := m.Counter("hits"); !ok || v != 800 {
		t.Fatalf("counter hits = %d, want 800", v)
	}
	h, ok := m.Histogram("lat")
	if !ok || h.Count != 800 || h.Min != 2 || h.Max != 2 || h.Mean() != 2 {
		t.Fatalf("histogram lat = %+v", h)
	}
	if len(m.Gauges) != 1 || m.Gauges[0].Name != "workers" || m.Gauges[0].Value != 8 {
		t.Fatalf("gauges = %+v", m.Gauges)
	}

	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counters:", "hits", "800", "gauges:", "histograms:", "lat"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text snapshot missing %q:\n%s", want, buf.String())
		}
	}
}

func TestMetricsSortedAndStable(t *testing.T) {
	s := New("m")
	s.Count("b", 1)
	s.Count("a", 1)
	s.Count("c", 1)
	m := s.Metrics()
	if m.Counters[0].Name != "a" || m.Counters[1].Name != "b" || m.Counters[2].Name != "c" {
		t.Fatalf("counters not sorted: %+v", m.Counters)
	}
}

func TestWriteTraceJSON(t *testing.T) {
	s := New("run")
	c := s.Child("phase")
	c.Count("n", 7)
	c.End()
	s.End()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TraceJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Root == nil || doc.Root.Name != "run" || len(doc.Root.Spans) != 1 {
		t.Fatalf("trace tree lost: %+v", doc.Root)
	}
	if v, ok := doc.Metrics.Counter("n"); !ok || v != 7 {
		t.Fatalf("trace metrics lost: %+v", doc.Metrics)
	}
}

func TestDebugServer(t *testing.T) {
	s := New("srv")
	s.Count("reqs", 3)
	addr, stop, err := ServeDebug("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stop() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "reqs") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(get("/metrics.json")), &m); err != nil {
		t.Errorf("/metrics.json not JSON: %v", err)
	} else if v, _ := m.Counter("reqs"); v != 3 {
		t.Errorf("/metrics.json reqs = %d", v)
	}
	var doc TraceJSON
	if err := json.Unmarshal([]byte(get("/trace.json")), &doc); err != nil {
		t.Errorf("/trace.json not JSON: %v", err)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "swapp.metrics") {
		t.Errorf("/debug/vars missing swapp.metrics:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
