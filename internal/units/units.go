// Package units provides small shared helpers for formatting and
// manipulating the quantities that flow through the simulator: simulated
// time (seconds as float64), byte counts, rates, and the power-of-two
// message-size grids that the IMB-style benchmarks sweep.
package units

import (
	"fmt"
	"math"
	"sort"
)

// Seconds is simulated wall-clock time. All simulator-internal math uses
// float64 seconds; conversion to time.Duration happens only at API edges.
type Seconds = float64

// Bytes is a message or working-set size in bytes.
type Bytes = int64

// Common byte multiples.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// FormatSeconds renders a simulated duration with an SI prefix suited to its
// magnitude (ns/µs/ms/s), keeping three significant digits.
func FormatSeconds(s Seconds) string {
	abs := math.Abs(s)
	switch {
	case s == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.3gns", s*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.3gµs", s*1e6)
	case abs < 1:
		return fmt.Sprintf("%.3gms", s*1e3)
	default:
		return fmt.Sprintf("%.4gs", s)
	}
}

// FormatBytes renders a byte count with a binary prefix (B/KiB/MiB/GiB),
// keeping three significant digits like FormatSeconds. The prefix is chosen
// by magnitude, so negative counts format symmetrically to positive ones.
func FormatBytes(b Bytes) string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs < KiB:
		return fmt.Sprintf("%dB", b)
	case abs < MiB:
		return fmt.Sprintf("%.3gKiB", float64(b)/float64(KiB))
	case abs < GiB:
		return fmt.Sprintf("%.3gMiB", float64(b)/float64(MiB))
	default:
		return fmt.Sprintf("%.3gGiB", float64(b)/float64(GiB))
	}
}

// FormatRate renders a bandwidth in bytes/second with a suitable prefix,
// chosen by magnitude so negative rates keep their natural prefix.
func FormatRate(bytesPerSec float64) string {
	abs := math.Abs(bytesPerSec)
	switch {
	case abs < 1e3:
		return fmt.Sprintf("%.3gB/s", bytesPerSec)
	case abs < 1e6:
		return fmt.Sprintf("%.3gKB/s", bytesPerSec/1e3)
	case abs < 1e9:
		return fmt.Sprintf("%.3gMB/s", bytesPerSec/1e6)
	default:
		return fmt.Sprintf("%.3gGB/s", bytesPerSec/1e9)
	}
}

// Pow2Sizes returns the ascending power-of-two size grid {min, 2min, …, max}
// (inclusive on both ends when max is itself on the grid). It is the sweep
// used by the IMB-style benchmarks. min must be ≥ 1 and ≤ max.
func Pow2Sizes(min, max Bytes) []Bytes {
	if min < 1 || min > max {
		panic(fmt.Sprintf("units: bad Pow2Sizes range [%d,%d]", min, max))
	}
	var out []Bytes
	for s := min; s <= max; s *= 2 {
		out = append(out, s)
		if s > max/2 { // avoid overflow on the doubling
			break
		}
	}
	return out
}

// NearestGridSizes returns the two grid sizes bracketing size for
// interpolation. The grid is expected ascending; an unsorted grid is
// detected (one O(n) scan) and a sorted copy is searched instead, so a
// caller slipping in raw sweep data still gets correct brackets rather
// than whatever a misapplied binary search lands on. If size is below the
// grid both returns are the first entry; above, both are the last.
func NearestGridSizes(grid []Bytes, size Bytes) (lo, hi Bytes) {
	if len(grid) == 0 {
		panic("units: empty grid")
	}
	if !sort.SliceIsSorted(grid, func(i, j int) bool { return grid[i] < grid[j] }) {
		sorted := append([]Bytes(nil), grid...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		grid = sorted
	}
	i := sort.Search(len(grid), func(i int) bool { return grid[i] >= size })
	switch {
	case i == 0:
		return grid[0], grid[0]
	case i == len(grid):
		return grid[len(grid)-1], grid[len(grid)-1]
	case grid[i] == size:
		return grid[i], grid[i]
	default:
		return grid[i-1], grid[i]
	}
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Percent expresses part/whole as a percentage, returning 0 when whole is 0.
func Percent(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}
