package units

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0, "0s"},
		{1.5e-9, "1.5ns"},
		{2.5e-6, "2.5µs"},
		{3.25e-3, "3.25ms"},
		{42.5, "42.5s"},
		// Boundaries land in the coarser unit (the switch is exclusive below).
		{1e-6, "1µs"},
		{1e-3, "1ms"},
		{1, "1s"},
		// Negative durations keep their natural prefix via the abs() switch.
		{-2.5e-6, "-2.5µs"},
		{-42.5, "-42.5s"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestFormatBytes pins the 3-significant-digit clamp: before the fix,
// FormatBytes(1234567) printed the full float64 mantissa
// ("1.1773748397827148MiB"), leaking unbounded precision into reports.
func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1KiB"},
		{4 * MiB, "4MiB"},
		{2 * GiB, "2GiB"},
		// Non-round counts clamp to 3 significant digits.
		{1234567, "1.18MiB"},
		{1536, "1.5KiB"},
		{KiB + 1, "1KiB"},
		{5*GiB + 123*MiB, "5.12GiB"},
		// Exactly-1 boundaries: the first count in each prefix band.
		{KiB - 1, "1023B"},
		{MiB, "1MiB"},
		{GiB, "1GiB"},
		// Negative counts pick the prefix by magnitude, not by sign.
		{-512, "-512B"},
		{-4 * MiB, "-4MiB"},
		{-1234567, "-1.18MiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0B/s"},
		{500, "500B/s"},
		{2e9, "2GB/s"},
		{1234567, "1.23MB/s"},
		// Exactly-1 boundaries promote to the next prefix.
		{1e3, "1KB/s"},
		{1e6, "1MB/s"},
		{1e9, "1GB/s"},
		// Negative rates keep the magnitude's prefix (previously every
		// negative value fell through to the B/s branch).
		{-500, "-500B/s"},
		{-2e9, "-2GB/s"},
		{-1234567, "-1.23MB/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.in); got != c.want {
			t.Errorf("FormatRate(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPow2Sizes(t *testing.T) {
	got := Pow2Sizes(1, 16)
	want := []Bytes{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("Pow2Sizes(1,16) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pow2Sizes(1,16) = %v, want %v", got, want)
		}
	}
}

// TestPow2SizesOverflowGuard pins the behaviour of the doubling loop at the
// top of the int64 range, where a naive s *= 2 would wrap negative and loop
// forever (or panic).
func TestPow2SizesOverflowGuard(t *testing.T) {
	const top = Bytes(1) << 62 // largest power of two representable in int64
	cases := []struct {
		name     string
		min, max Bytes
		want     []Bytes
	}{
		{"min at top power, max at MaxInt64", top, math.MaxInt64, []Bytes{top}},
		{"exact top power", top, top, []Bytes{top}},
		{"one below top power", top - 1, math.MaxInt64, []Bytes{top - 1, 2 * (top - 1)}},
		{"max one below a grid point", 1 << 61, top - 1, []Bytes{1 << 61}},
		{"min is MaxInt64", math.MaxInt64, math.MaxInt64, []Bytes{math.MaxInt64}},
		{"full range stops at top power", 1, math.MaxInt64, Pow2Sizes(1, top)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Pow2Sizes(c.min, c.max)
			if len(got) != len(c.want) {
				t.Fatalf("Pow2Sizes(%d,%d) = %v (len %d), want %v", c.min, c.max, got, len(got), c.want)
			}
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Fatalf("Pow2Sizes(%d,%d)[%d] = %d, want %d", c.min, c.max, i, got[i], c.want[i])
				}
			}
			for _, s := range got {
				if s < c.min || s > c.max {
					t.Fatalf("Pow2Sizes(%d,%d) contains out-of-range %d", c.min, c.max, s)
				}
			}
		})
	}
}

func TestPow2SizesPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for min > max")
		}
	}()
	Pow2Sizes(8, 4)
}

// Property: every returned size is a doubling of the previous, within range.
func TestPow2SizesProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		min := Bytes(a%1024) + 1
		max := min + Bytes(b)
		g := Pow2Sizes(min, max)
		if len(g) == 0 || g[0] != min {
			return false
		}
		for i := 1; i < len(g); i++ {
			if g[i] != 2*g[i-1] || g[i] > max {
				return false
			}
		}
		// The next doubling must exceed max.
		return 2*g[len(g)-1] > max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNearestGridSizes(t *testing.T) {
	grid := []Bytes{1, 2, 4, 8}
	cases := []struct {
		size   Bytes
		lo, hi Bytes
	}{
		{0, 1, 1},
		{1, 1, 1},
		{3, 2, 4},
		{8, 8, 8},
		{100, 8, 8},
	}
	for _, c := range cases {
		lo, hi := NearestGridSizes(grid, c.size)
		if lo != c.lo || hi != c.hi {
			t.Errorf("NearestGridSizes(%d) = (%d,%d), want (%d,%d)", c.size, lo, hi, c.lo, c.hi)
		}
	}
}

// TestNearestGridSizesEdges covers the degenerate grids callers can hand
// in: a single-entry grid (every query collapses to it) and an unsorted
// grid (the lookup must sort defensively rather than binary-search garbage).
func TestNearestGridSizesEdges(t *testing.T) {
	t.Run("one-element grid", func(t *testing.T) {
		grid := []Bytes{64}
		for _, size := range []Bytes{0, 1, 63, 64, 65, math.MaxInt64} {
			lo, hi := NearestGridSizes(grid, size)
			if lo != 64 || hi != 64 {
				t.Errorf("NearestGridSizes([64], %d) = (%d,%d), want (64,64)", size, lo, hi)
			}
		}
	})
	t.Run("unsorted grid", func(t *testing.T) {
		grid := []Bytes{8, 1, 4, 2}
		cases := []struct {
			size   Bytes
			lo, hi Bytes
		}{
			{0, 1, 1},
			{3, 2, 4},
			{4, 4, 4},
			{100, 8, 8},
		}
		for _, c := range cases {
			lo, hi := NearestGridSizes(grid, c.size)
			if lo != c.lo || hi != c.hi {
				t.Errorf("NearestGridSizes(%v, %d) = (%d,%d), want (%d,%d)", grid, c.size, lo, hi, c.lo, c.hi)
			}
		}
		// The caller's slice must not be reordered in place.
		want := []Bytes{8, 1, 4, 2}
		for i := range want {
			if grid[i] != want[i] {
				t.Fatalf("input grid mutated: %v", grid)
			}
		}
	})
}

// Property: the bracket always contains or bounds the query.
func TestNearestGridSizesProperty(t *testing.T) {
	grid := Pow2Sizes(1, 1<<20)
	f := func(q uint32) bool {
		size := Bytes(q % (2 << 20))
		lo, hi := NearestGridSizes(grid, size)
		if lo > hi {
			return false
		}
		i := sort.Search(len(grid), func(i int) bool { return grid[i] >= lo })
		if grid[i] != lo {
			return false
		}
		if size >= grid[0] && size <= grid[len(grid)-1] {
			return lo <= size && size <= hi
		}
		return lo == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Error("Percent(1,4) != 25")
	}
	if Percent(1, 0) != 0 {
		t.Error("Percent with zero whole should be 0")
	}
	if math.IsNaN(Percent(0, 0)) {
		t.Error("Percent(0,0) must not be NaN")
	}
}
