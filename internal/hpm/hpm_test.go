package hpm

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/units"
	"repro/internal/workload"
)

func kernel() *workload.Signature {
	return &workload.Signature{
		Name:               "test-kernel",
		Instructions:       5e9,
		FPFraction:         0.30,
		MemFraction:        0.35,
		BranchFraction:     0.08,
		BranchMissRate:     0.02,
		ILP:                2.2,
		Footprint:          48 * units.MiB,
		Alpha:              0.45,
		StreamFraction:     0.25,
		RemoteFraction:     0.05,
		DialectSensitivity: 1,
	}
}

func run(t *testing.T, sig *workload.Signature, machine string, mode Mode) Counters {
	t.Helper()
	c, err := Run(sig, Config{Machine: arch.MustGet(machine), Mode: mode})
	if err != nil {
		t.Fatalf("Run on %s: %v", machine, err)
	}
	return c
}

func TestRunBasicSanity(t *testing.T) {
	for _, name := range arch.Names() {
		c := run(t, kernel(), name, ST)
		if c.Runtime <= 0 {
			t.Errorf("%s: non-positive runtime", name)
		}
		if c.CPI < c.CPICompletion {
			t.Errorf("%s: total CPI below completion CPI", name)
		}
		if math.Abs(c.CPIStallTotal-(c.CPIStallMem+c.CPIStallBranch+c.CPIStallTrans)) > 1e-12 {
			t.Errorf("%s: stall breakdown does not sum", name)
		}
		for i, v := range c.Vector() {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: metric %s = %v", name, MetricNames()[i], v)
			}
		}
	}
}

func TestVectorLayout(t *testing.T) {
	c := run(t, kernel(), arch.Hydra, ST)
	v := c.Vector()
	if len(v) != NumMetrics || len(MetricNames()) != NumMetrics {
		t.Fatalf("vector length %d, names %d, want %d", len(v), len(MetricNames()), NumMetrics)
	}
	if v[0] != c.CPICompletion || v[4] != c.FPPerInstr || v[12] != c.MemBWGBs {
		t.Error("vector layout does not match MetricNames")
	}
	wantGroups := []int{1, 2, 2, 2, 3, 4, 4, 4, 5, 5, 5, 5, 6}
	for i, g := range wantGroups {
		if MetricGroupOf(i) != g {
			t.Errorf("MetricGroupOf(%d) = %d, want %d", i, MetricGroupOf(i), g)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, kernel(), arch.Westmere, ST)
	b := run(t, kernel(), arch.Westmere, ST)
	if a != b {
		t.Fatal("identical runs must produce identical counters")
	}
	cfg := Config{Machine: arch.MustGet(arch.Westmere), MeasureNoise: true, NoiseKey: "k1"}
	n1, err := Run(kernel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Run(kernel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatal("noise must be deterministic per key")
	}
	cfg.NoiseKey = "k2"
	n3, _ := Run(kernel(), cfg)
	if n1 == n3 {
		t.Fatal("different noise keys must differ")
	}
}

func TestReferenceMachineHasNoIdiosyncrasy(t *testing.T) {
	// On the base machine the model is exact: doubling instructions
	// exactly doubles runtime (no idio factor distortion and CPI is
	// unchanged).
	sig := kernel()
	a := run(t, sig, arch.Hydra, ST)
	sig2 := sig.ScaledWork(2)
	b := run(t, sig2, arch.Hydra, ST)
	if math.Abs(b.Runtime/a.Runtime-2) > 1e-9 {
		t.Errorf("runtime ratio = %v, want exactly 2", b.Runtime/a.Runtime)
	}
}

func TestIdiosyncrasyGrowsWithISADistance(t *testing.T) {
	// Average |response deviation| across many kernels must follow the
	// paper's ordering: POWER6 < BG/P < Westmere.
	devOn := func(machine string) float64 {
		m := arch.MustGet(machine)
		var sum float64
		const n = 120
		for i := 0; i < n; i++ {
			sig := kernel()
			sig.Name = fmt.Sprintf("probe-%d", i)
			withIdio, err := Run(sig, Config{Machine: m})
			if err != nil {
				t.Fatal(err)
			}
			old := IdioScale
			IdioScale = 0
			pure, err := Run(sig, Config{Machine: m})
			IdioScale = old
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(withIdio.Runtime/pure.Runtime - 1)
		}
		return sum / n
	}
	p6, bg, wm := devOn(arch.Power6), devOn(arch.BlueGene), devOn(arch.Westmere)
	// The sigma parameters are strictly ordered (see arch.ISADistance);
	// sampled means over a finite probe set track them loosely: both
	// far-ISA machines must deviate more than POWER6, and Westmere (the
	// largest sigma) must not fall far below BG/P.
	if !(p6 < bg && p6 < wm) {
		t.Errorf("idiosyncrasy ordering broken: p6=%v bg=%v wm=%v", p6, bg, wm)
	}
	if wm < 0.8*bg {
		t.Errorf("Westmere deviation %v implausibly below BG/P %v", wm, bg)
	}
	if devOn(arch.Hydra) != 0 {
		t.Error("base machine must have zero idiosyncrasy")
	}
}

func TestNoiseShrinksWithRuntime(t *testing.T) {
	// Class-D-style long runs must observe counters more precisely than
	// class-C-style short runs.
	spread := func(scale float64) float64 {
		var devs []float64
		for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
			sig := kernel()
			sig.Instructions *= scale
			noisy, err := Run(sig, Config{Machine: arch.MustGet(arch.Hydra), MeasureNoise: true, NoiseKey: key})
			if err != nil {
				t.Fatal(err)
			}
			clean, _ := Run(sig, Config{Machine: arch.MustGet(arch.Hydra)})
			devs = append(devs, math.Abs(noisy.CPIStallMem/clean.CPIStallMem-1))
		}
		var s float64
		for _, d := range devs {
			s += d
		}
		return s / float64(len(devs))
	}
	short := spread(0.02) // ~tens of ms
	long := spread(20)    // ~minutes
	if long >= short {
		t.Errorf("noise must shrink with runtime: short=%v long=%v", short, long)
	}
}

func TestSMTSlowsThreadButHelpsNode(t *testing.T) {
	st := run(t, kernel(), arch.Hydra, ST)
	smt := run(t, kernel(), arch.Hydra, SMT)
	if smt.Runtime <= st.Runtime {
		t.Error("a single SMT thread must be slower than ST")
	}
	p := arch.MustGet(arch.Hydra).Proc
	// Node throughput: SMTWays threads at smt speed vs 1 at st speed.
	if float64(p.SMTWays)/smt.Runtime <= 1/st.Runtime {
		t.Error("SMT must raise core throughput")
	}
}

func TestCacheFootprintScaling(t *testing.T) {
	// Partitioning across more ranks shrinks the footprint. Once the
	// per-rank footprint fits in L3, data-from-L3 falls monotonically and
	// eventually hits zero — the ACSM signal. (Below 16 ranks the 256 MiB
	// footprint is memory-resident and L3 reloads first *grow* as data
	// moves memory→L3; ACSM only uses the decreasing tail.)
	sig := kernel()
	sig.Footprint = 256 * units.MiB
	prev := math.Inf(1)
	for _, ranks := range []int{16, 64, 256, 1024} {
		c := run(t, sig.Partitioned(ranks), arch.Hydra, ST)
		if c.DataFromL3 > prev+1e-12 {
			t.Errorf("DataFromL3 must not grow with ranks (at %d: %v > %v)", ranks, c.DataFromL3, prev)
		}
		prev = c.DataFromL3
	}
	tiny := sig.Partitioned(1 << 16) // footprint ≪ L2
	c := run(t, tiny, arch.Hydra, ST)
	if c.DataFromL3 != 0 || c.DataFromLocal != 0 {
		// Streaming still reaches memory; only the reuse part vanishes.
		if c.DataFromL3 != 0 {
			t.Errorf("tiny footprint must not reload from L3, got %v", c.DataFromL3)
		}
	}
}

func TestMemoryBoundKernelStallsMore(t *testing.T) {
	lean := kernel()
	lean.Footprint = 16 * units.KiB // L1-resident
	fat := kernel()
	fat.Footprint = 2 * units.GiB
	fat.Alpha = 0.9
	cl := run(t, lean, arch.Hydra, ST)
	cf := run(t, fat, arch.Hydra, ST)
	if cf.CPIStallMem <= cl.CPIStallMem {
		t.Error("cache-hostile kernel must stall more")
	}
	if cf.Runtime <= cl.Runtime {
		t.Error("cache-hostile kernel must run longer")
	}
}

func TestBandwidthContention(t *testing.T) {
	sig := kernel()
	sig.Footprint = 4 * units.GiB
	sig.Alpha = 0.95
	sig.StreamFraction = 0.9
	m := arch.MustGet(arch.Westmere)
	alone, err := Run(sig, Config{Machine: m, ActiveTasksPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Run(sig, Config{Machine: m, ActiveTasksPerNode: m.CoresPerNode})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Runtime <= alone.Runtime {
		t.Error("a packed node must slow a bandwidth-bound task")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(kernel(), Config{}); err == nil {
		t.Error("nil machine must error")
	}
	bad := kernel()
	bad.Alpha = 0
	if _, err := Run(bad, Config{Machine: arch.MustGet(arch.Hydra)}); err == nil {
		t.Error("invalid signature must error")
	}
	m := arch.MustGet(arch.BlueGene) // 4 cores, no SMT
	if _, err := Run(kernel(), Config{Machine: m, ActiveTasksPerNode: 9}); err == nil {
		t.Error("oversubscribed node must error")
	}
}

func TestBlueGeneFlatMemoryHasNoRemote(t *testing.T) {
	c := run(t, kernel(), arch.BlueGene, ST)
	if c.DataFromRemote != 0 {
		t.Errorf("BG/P has flat memory; remote reloads = %v", c.DataFromRemote)
	}
	w := run(t, kernel(), arch.Westmere, ST)
	if w.DataFromRemote == 0 {
		t.Error("NUMA machine must show remote reloads")
	}
}

// Property: runtime scales linearly with instruction count on the reference
// machine regardless of the mix.
func TestRuntimeLinearInWork(t *testing.T) {
	f := func(mult uint8) bool {
		k := float64(mult%50) + 1
		sig := kernel()
		a, err := Run(sig, Config{Machine: arch.MustGet(arch.Hydra)})
		if err != nil {
			return false
		}
		b, err := Run(sig.ScaledWork(k), Config{Machine: arch.MustGet(arch.Hydra)})
		if err != nil {
			return false
		}
		return math.Abs(b.Runtime/a.Runtime-k) < 1e-6*k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFasterClockWinsOnCacheResident(t *testing.T) {
	// A tiny-footprint compute kernel should run fastest on the highest
	// effective (clock/CPI) machine — POWER6 at 4.7 GHz beats BG/P at
	// 850 MHz by a wide margin.
	old := IdioScale
	IdioScale = 0
	defer func() { IdioScale = old }()
	sig := kernel()
	sig.Footprint = 16 * units.KiB
	sig.StreamFraction = 0 // truly cache-resident: no streaming traffic
	p6 := run(t, sig, arch.Power6, ST)
	bg := run(t, sig, arch.BlueGene, ST)
	if p6.Runtime >= bg.Runtime/2 {
		t.Errorf("POWER6 %v should be much faster than BG/P %v on compute", p6.Runtime, bg.Runtime)
	}
}
