// Package hpm simulates a hardware performance monitor: it "executes" a
// workload signature on a machine model and reports compute time plus the
// six metric groups the paper builds its compute projection on (§2.1):
//
//	G1 — CPI completion cycles
//	G2 — CPI stall cycles
//	G3 — floating-point instructions
//	G4 — ERAT, SLB and TLB miss rates
//	G5 — data-cache reloads (m5,1 data from L2, m5,2 from L3,
//	     m5,3 from local memory, m5,4 from remote memory, per instruction)
//	G6 — memory bandwidth
//
// It substitutes for IBM's HPMCOUNT on real POWER hardware. Two deliberate
// imperfections make the downstream projection problem honest:
//
//   - Idiosyncratic response: each (workload, machine) pair carries a
//     deterministic multiplicative runtime factor whose spread grows with
//     the machine's architectural distance from the reference (the POWER5+
//     base the signatures are calibrated on). The projection pipeline never
//     sees these factors; they are why its error is nonzero and why it grows
//     in the paper's observed order POWER6 < BG/P < Westmere.
//   - Measurement noise: observed counters jitter with a magnitude that
//     shrinks with runtime, reproducing the paper's finding that the
//     longer-running class D projects more accurately than class C.
package hpm

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// Mode selects the hardware-threading configuration of a run, mirroring the
// paper's use of both ST and SMT metrics to characterise behaviour under
// different resource pressure.
type Mode int

// Threading modes.
const (
	ST  Mode = iota // one thread per core
	SMT             // all hardware threads per core busy
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == SMT {
		return "SMT"
	}
	return "ST"
}

// ReferenceMachine names the machine the workload signatures are calibrated
// on; idiosyncratic response grows with ISA distance from it. It is the
// paper's base system.
const ReferenceMachine = arch.Hydra

// IdioScale globally scales idiosyncratic response. 1.0 lands projection
// errors in the paper's 8–14 % band; 0 gives an oracle substrate (useful in
// tests).
var IdioScale = 1.0

// noiseBase scales measurement noise: sigma = noiseBase/sqrt(runtime).
// Calibrated so that class-C-scale runs (hundreds of seconds) observe
// counters at ~1-2 % jitter while class-D-scale runs (thousands of
// seconds) observe well under 1 % — the paper's accuracy asymmetry.
const noiseBase = 0.30

// maxNoiseSigma caps measurement noise for very short runs.
const maxNoiseSigma = 0.08

// Config selects how a signature is run.
type Config struct {
	Machine *arch.Machine
	Mode    Mode
	// ActiveTasksPerNode is how many tasks share a node (memory-bandwidth
	// contention). Zero means a fully packed node.
	ActiveTasksPerNode int
	// MeasureNoise adds runtime-dependent observation noise to the
	// counters, as a real PMU run would show.
	MeasureNoise bool
	// NoiseKey distinguishes repeated measurements of the same run; it
	// seeds the noise stream.
	NoiseKey string
}

// Counters is one observation: the six metric groups plus derived totals.
type Counters struct {
	Machine string
	Mode    Mode

	// G1 — completion.
	CPICompletion float64

	// G2 — stalls, with its breakdown.
	CPIStallTotal  float64
	CPIStallMem    float64
	CPIStallBranch float64
	CPIStallTrans  float64 // address-translation stalls

	// G3 — floating point.
	FPPerInstr float64

	// G4 — translation miss rates, per thousand instructions.
	ERATMissPerK float64
	SLBMissPerK  float64
	TLBMissPerK  float64

	// G5 — data-cache reloads per instruction (the paper's m5,1..m5,4).
	DataFromL2     float64
	DataFromL3     float64
	DataFromLocal  float64
	DataFromRemote float64

	// G6 — achieved memory bandwidth, GB/s per task.
	MemBWGBs float64

	// Derived totals.
	Instructions float64
	CPI          float64
	Runtime      units.Seconds
}

// NumMetrics is the length of the flattened metric vector.
const NumMetrics = 13

// MetricNames lists the flattened metric vector's entries, in order, grouped
// G1..G6.
func MetricNames() []string {
	return []string{
		"g1.cpi_completion",
		"g2.cpi_stall_mem", "g2.cpi_stall_branch", "g2.cpi_stall_trans",
		"g3.fp_per_instr",
		"g4.erat_miss_per_k", "g4.slb_miss_per_k", "g4.tlb_miss_per_k",
		"g5.data_from_l2", "g5.data_from_l3", "g5.data_from_local", "g5.data_from_remote",
		"g6.mem_bw_gbs",
	}
}

// MetricGroupOf maps a flattened metric index to its group number (1..6).
func MetricGroupOf(i int) int {
	switch {
	case i == 0:
		return 1
	case i <= 3:
		return 2
	case i == 4:
		return 3
	case i <= 7:
		return 4
	case i <= 11:
		return 5
	default:
		return 6
	}
}

// Vector flattens the counters into the canonical 13-metric vector whose
// layout MetricNames describes.
func (c *Counters) Vector() []float64 {
	return []float64{
		c.CPICompletion,
		c.CPIStallMem, c.CPIStallBranch, c.CPIStallTrans,
		c.FPPerInstr,
		c.ERATMissPerK, c.SLBMissPerK, c.TLBMissPerK,
		c.DataFromL2, c.DataFromL3, c.DataFromLocal, c.DataFromRemote,
		c.MemBWGBs,
	}
}

// overlapFor returns the fraction of memory stall a core hides by
// overlapping with execution.
func overlapFor(class arch.MicroArchClass) float64 {
	switch class {
	case arch.ClassServerOoO:
		return 0.62
	case arch.ClassServerInOrd:
		// POWER6's in-order pipeline still overlaps misses well via
		// aggressive hardware prefetch and a deep load-miss queue.
		return 0.45
	default: // embedded
		return 0.22
	}
}

// branchPenaltyFor returns the misprediction penalty in cycles.
func branchPenaltyFor(class arch.MicroArchClass) float64 {
	switch class {
	case arch.ClassServerOoO:
		return 14
	case arch.ClassServerInOrd:
		return 11
	default:
		return 5
	}
}

// streamPrefetchDiscount is the fraction of full memory latency a streaming
// (prefetchable) access exposes: hardware prefetchers hide most of it, so a
// streaming kernel is bandwidth- rather than latency-limited.
const streamPrefetchDiscount = 0.04

// mlpFor returns the memory-level parallelism a core sustains on demand
// misses: out-of-order cores keep several misses in flight (dividing the
// exposed latency), in-order and embedded cores far fewer. Scales with the
// kernel's ILP, since independent work is what lets misses overlap.
func mlpFor(class arch.MicroArchClass, ilp float64) float64 {
	var slope float64
	switch class {
	case arch.ClassServerOoO:
		slope = 0.70
	case arch.ClassServerInOrd:
		slope = 0.45
	default:
		slope = 0.15
	}
	return 1 + slope*(ilp-1)
}

// Memory traffic accounting: a random (reuse-miss) access drags in a cache
// line but shares part of it with neighbouring accesses; a streaming access
// amortises the whole line, costing only its own data.
const (
	randomLineUtilization = 0.6 // fraction of a fetched line that is unique traffic
	streamBytesPerAccess  = 12  // effective bytes per streaming access
)

// Run executes sig on the configured machine and returns the observed
// counters. The result is deterministic in (signature name, machine, mode,
// noise key).
func Run(sig *workload.Signature, cfg Config) (Counters, error) {
	if err := sig.Validate(); err != nil {
		return Counters{}, err
	}
	if cfg.Machine == nil {
		return Counters{}, fmt.Errorf("hpm: nil machine")
	}
	m := cfg.Machine
	p := &m.Proc
	active := cfg.ActiveTasksPerNode
	if active <= 0 {
		active = m.CoresPerNode
	}
	if active > m.CoresPerNode*p.SMTWays {
		return Counters{}, fmt.Errorf("hpm: %d tasks exceed node capacity of %s", active, m.Name)
	}

	c := Counters{Machine: m.Name, Mode: cfg.Mode, Instructions: sig.Instructions}

	// --- G1: completion CPI -------------------------------------------
	ilp := math.Min(sig.ILP, float64(p.IssueWidth))
	cpiCompl := math.Max(p.BaseCPI, 1/ilp)
	if sig.FPFraction > 0 && p.FPPerCycle > 0 {
		cpiCompl = math.Max(cpiCompl, sig.FPFraction/p.FPPerCycle)
	}

	// --- G5: where the data comes from --------------------------------
	// Per-thread effective cache capacity; SMT threads share core caches.
	threadShare := 1
	if cfg.Mode == SMT {
		threadShare = p.SMTWays
	}
	// Placement follows the working-set curves: data that fits in a level
	// is served by it whether the access pattern is reusing or streaming
	// (a "stream" over a cache-resident array hits cache). Reuse traffic
	// enjoys the hot-set floor; streaming traffic follows the raw
	// capacity tail. Cumulative best coverage walking up the hierarchy
	// handles non-monotone capacities (BG/P's tiny L2 below its L1).
	reuse := 1 - sig.StreamFraction
	memAccess := sig.MemFraction
	walk := func(coverage func(units.Bytes) float64) (fromLevel []float64, fromMem float64) {
		covCum := 0.0
		fromLevel = make([]float64, len(p.Caches))
		for i, lvl := range p.Caches {
			eff := lvl.EffectivePerCore() / units.Bytes(threadShare)
			cov := coverage(eff)
			if cov > covCum {
				fromLevel[i] = cov - covCum
				covCum = cov
			}
		}
		return fromLevel, 1 - covCum
	}
	levelR, memR := walk(sig.Coverage)
	levelS, memS := walk(sig.StreamCoverage)
	blend := func(r, st float64) float64 { return reuse*r + sig.StreamFraction*st }

	// L1 hits are part of completion CPI; reloads start at L2.
	if len(p.Caches) > 1 {
		c.DataFromL2 = memAccess * blend(levelR[1], levelS[1])
	}
	if len(p.Caches) > 2 {
		c.DataFromL3 = memAccess * blend(levelR[2], levelS[2])
	}
	fromMem := memAccess * blend(memR, memS)
	remoteFrac := sig.RemoteFraction
	if p.RemoteLatNs <= p.MemLatencyNs {
		remoteFrac = 0 // flat memory (BG/P)
	}
	c.DataFromRemote = fromMem * remoteFrac
	c.DataFromLocal = fromMem - c.DataFromRemote

	// --- G4: translation misses ----------------------------------------
	c.TLBMissPerK = translationMissPerK(sig, p.TLBEntries, p.PageBytes)
	c.ERATMissPerK = translationMissPerK(sig, p.ERATEntries, p.PageBytes) * 1.6
	if p.SLBEntries > 0 {
		segments := float64(sig.Footprint) / float64(256*units.MiB)
		if segments > float64(p.SLBEntries) {
			c.SLBMissPerK = 0.05 * (1 - float64(p.SLBEntries)/segments) * sig.MemFraction * 1000
		}
	}

	// --- G2: stall CPI --------------------------------------------------
	overlap := overlapFor(p.Class)
	memCycles := p.MemLatencyNs * p.ClockGHz
	remCycles := p.RemoteLatNs * p.ClockGHz
	// Reloads at every level: the reusing part overlaps by the core's
	// sustainable miss-level parallelism; the streaming part is hidden by
	// prefetchers down to a small exposed fraction.
	mlp := mlpFor(p.Class, math.Min(sig.ILP, float64(p.IssueWidth)))
	localShare := 1 - remoteFrac
	memBlendCycles := localShare*memCycles + remoteFrac*remCycles
	var reloadStall float64
	if len(p.Caches) > 1 {
		reloadStall += memAccess * p.Caches[1].LatencyCycles *
			(reuse*levelR[1]/mlp + sig.StreamFraction*levelS[1]*streamPrefetchDiscount)
	}
	if len(p.Caches) > 2 {
		reloadStall += memAccess * p.Caches[2].LatencyCycles *
			(reuse*levelR[2]/mlp + sig.StreamFraction*levelS[2]*streamPrefetchDiscount)
	}
	reloadStall += memAccess * memBlendCycles *
		(reuse*memR/mlp + sig.StreamFraction*memS*streamPrefetchDiscount)
	c.CPIStallMem = reloadStall * (1 - overlap)

	c.CPIStallBranch = sig.BranchFraction * sig.BranchMissRate * branchPenaltyFor(p.Class)
	transPenalty := memCycles * 0.8
	c.CPIStallTrans = (c.TLBMissPerK*transPenalty + c.ERATMissPerK*18 + c.SLBMissPerK*60) / 1000

	// --- G6 + bandwidth throttle ----------------------------------------
	line := float64(p.LastLevel().LineSize)
	bytesPerInstr := memAccess * (reuse*memR*line*randomLineUtilization +
		sig.StreamFraction*memS*streamBytesPerAccess)
	cpi := cpiCompl + c.CPIStallMem + c.CPIStallBranch + c.CPIStallTrans
	// Per-task bandwidth share: the node's aggregate sustainable
	// bandwidth is CoresPerNode×MemBWGBs, split across active tasks, but
	// one task can't use more than 4× its fair share.
	supply := p.MemBWGBs * float64(m.CoresPerNode) / float64(active)
	supply = math.Min(supply, 4*p.MemBWGBs)
	demand := bytesPerInstr / cpi * p.ClockGHz // bytes/cycle × GHz = GB/s
	if demand > supply && demand > 0 {
		// The memory-stall component inflates by the oversubscription.
		extra := c.CPIStallMem * (demand/supply - 1)
		c.CPIStallMem += extra
		cpi += extra
		demand = bytesPerInstr / cpi * p.ClockGHz
	}
	c.MemBWGBs = demand

	// --- SMT sharing ------------------------------------------------------
	if cfg.Mode == SMT && p.SMTWays > 1 {
		// All threads busy: core throughput rises by SMTGain, so each of
		// SMTWays threads runs at SMTGain/SMTWays of ST speed.
		cpi *= float64(p.SMTWays) / p.SMTGain
	}

	c.CPICompletion = cpiCompl
	c.FPPerInstr = sig.FPFraction
	c.CPIStallTotal = c.CPIStallMem + c.CPIStallBranch + c.CPIStallTrans
	c.CPI = cpi
	c.Runtime = sig.Instructions * cpi / (p.ClockGHz * 1e9)

	// --- idiosyncratic response -----------------------------------------
	ref := arch.MustGet(ReferenceMachine)
	sigma := IdioScale * arch.ISADistance(ref, m) * sig.DialectSensitivity
	if sigma > 0 {
		c.Runtime *= rng.Idiosyncrasy(sig.Name, p.Name, sigma)
	}

	// --- measurement noise ------------------------------------------------
	if cfg.MeasureNoise {
		applyNoise(&c, sig, cfg)
	}
	return c, nil
}

// translationMissPerK models TLB/ERAT-style translation misses per thousand
// instructions for a translation structure with the given entry count.
func translationMissPerK(sig *workload.Signature, entries int, page units.Bytes) float64 {
	if entries <= 0 {
		return 0
	}
	reach := float64(entries) * float64(page)
	fp := float64(sig.Footprint)
	if fp <= reach {
		return 0
	}
	// Sparse touches beyond reach: a small fraction of memory accesses
	// miss, growing with how far the footprint exceeds the reach.
	excess := 1 - reach/fp
	return sig.MemFraction * excess * 4.0 // per-K scale
}

// applyNoise perturbs observed counters with runtime-dependent jitter.
func applyNoise(c *Counters, sig *workload.Signature, cfg Config) {
	sigma := noiseBase / math.Sqrt(math.Max(c.Runtime, 1e-4))
	if sigma > maxNoiseSigma {
		sigma = maxNoiseSigma
	}
	src := rng.New("hpm-noise|" + sig.Name + "|" + cfg.Machine.Name + "|" + cfg.Mode.String() + "|" + cfg.NoiseKey)
	jitter := func(v float64) float64 {
		if v == 0 {
			return 0
		}
		return v * (1 + src.Normal(0, sigma))
	}
	c.CPICompletion = jitter(c.CPICompletion)
	c.CPIStallMem = jitter(c.CPIStallMem)
	c.CPIStallBranch = jitter(c.CPIStallBranch)
	c.CPIStallTrans = jitter(c.CPIStallTrans)
	c.CPIStallTotal = c.CPIStallMem + c.CPIStallBranch + c.CPIStallTrans
	c.FPPerInstr = jitter(c.FPPerInstr)
	c.ERATMissPerK = jitter(c.ERATMissPerK)
	c.SLBMissPerK = jitter(c.SLBMissPerK)
	c.TLBMissPerK = jitter(c.TLBMissPerK)
	c.DataFromL2 = jitter(c.DataFromL2)
	c.DataFromL3 = jitter(c.DataFromL3)
	c.DataFromLocal = jitter(c.DataFromLocal)
	c.DataFromRemote = jitter(c.DataFromRemote)
	c.MemBWGBs = jitter(c.MemBWGBs)
	// Runtime observation noise is much smaller than counter noise.
	c.Runtime *= 1 + src.Normal(0, sigma/4)
	c.CPI = c.Runtime * cfg.Machine.Proc.ClockGHz * 1e9 / c.Instructions
}
