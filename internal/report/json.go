package report

import (
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/quality"
)

// ProjectionJSON is the machine-readable form of a projection — the
// /v1/project wire format of the swappd service and the JSON twin of the
// Projection text report. Every number is the raw float64 the text report
// formats, so API consumers see exactly the CLI's values.
//
// Determinism contract: field order is fixed by the struct, per-class
// sections are emitted in ClassOrder (never map order), and routines appear
// in the core.CommProjection's sorted routine order, so marshalling the
// same projection twice yields byte-identical documents.
type ProjectionJSON struct {
	App            string  `json:"app"`
	Target         string  `json:"target"`
	Ranks          int     `json:"ranks"`
	TotalSeconds   float64 `json:"total_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	Gamma          float64 `json:"gamma"`
	HyperScaled    bool    `json:"hyper_scaled"`

	Compute    *ComputeJSON    `json:"compute,omitempty"`
	Comm       *CommJSON       `json:"comm,omitempty"`
	Validation *ValidationJSON `json:"validation,omitempty"`

	// Quality is present only when the projection is degraded: a
	// full-fidelity run omits the block entirely, keeping its wire bytes
	// identical to an engine without the quality ledger.
	Quality *QualityJSON `json:"quality,omitempty"`
}

// QualityJSON is the wire form of a degraded projection's quality ledger:
// per-component confidence grades (A = full fidelity, B = minor fallbacks,
// C = a major fallback) and the defect list, sorted deterministically.
type QualityJSON struct {
	Grade        string           `json:"grade"`
	ComputeGrade string           `json:"compute_grade"`
	CommGrade    string           `json:"comm_grade"`
	Defects      []quality.Defect `json:"defects"`
}

// SurrogateTermJSON is one Eq. 2 surrogate member.
type SurrogateTermJSON struct {
	Bench  string  `json:"bench"`
	Weight float64 `json:"weight"`
}

// ComputeJSON is the §2.3 compute component.
type ComputeJSON struct {
	CharCount     int                 `json:"char_count"`
	Fitness       float64             `json:"fitness"`
	BaseSeconds   float64             `json:"base_seconds"`
	TargetSeconds float64             `json:"target_seconds"`
	SpeedupRatio  float64             `json:"speedup_ratio"`
	Ranking       [6]int              `json:"ranking"`
	Surrogate     []SurrogateTermJSON `json:"surrogate"`
}

// RoutineJSON is one per-routine Eq. 4/5 decomposition, per task.
type RoutineJSON struct {
	Routine        string  `json:"routine"`
	Class          string  `json:"class"`
	Calls          float64 `json:"calls"`
	BaseElapsed    float64 `json:"base_elapsed_seconds"`
	BaseTransfer   float64 `json:"base_transfer_seconds"`
	BaseWait       float64 `json:"base_wait_seconds"`
	TargetTransfer float64 `json:"target_transfer_seconds"`
	TargetWait     float64 `json:"target_wait_seconds"`
	TargetElapsed  float64 `json:"target_elapsed_seconds"`
}

// ClassSecondsJSON is one routine class's base/target per-task seconds.
type ClassSecondsJSON struct {
	Class         string  `json:"class"`
	BaseSeconds   float64 `json:"base_seconds"`
	TargetSeconds float64 `json:"target_seconds"`
}

// CommJSON is the §2.4 communication component.
type CommJSON struct {
	Ranks              int                `json:"ranks"`
	WaitScale          float64            `json:"wait_scale"`
	BaseTotalSeconds   float64            `json:"base_total_seconds"`
	TargetTotalSeconds float64            `json:"target_total_seconds"`
	Routines           []RoutineJSON      `json:"routines"`
	ByClass            []ClassSecondsJSON `json:"by_class"`
}

// ClassErrorJSON is one per-class signed validation error.
type ClassErrorJSON struct {
	Class  string  `json:"class"`
	ErrPct float64 `json:"err_pct"`
}

// ValidationJSON is the measured side and its signed percent errors.
type ValidationJSON struct {
	MeasuredTotalSeconds   float64          `json:"measured_total_seconds"`
	MeasuredComputeSeconds float64          `json:"measured_compute_seconds"`
	MeasuredCommSeconds    float64          `json:"measured_comm_seconds"`
	ErrCombinedPct         float64          `json:"err_combined_pct"`
	ErrComputePct          float64          `json:"err_compute_pct"`
	ErrCommPct             float64          `json:"err_comm_pct"`
	ByClass                []ClassErrorJSON `json:"by_class"`
}

// ClassOrder is the fixed rendering order of routine classes, shared by the
// text report and the JSON form: CommProjection's by-class accessors return
// maps, and map iteration order must never reach an output.
var ClassOrder = []mpi.Class{mpi.ClassP2PNB, mpi.ClassP2PB, mpi.ClassCollective}

// NewProjectionJSON converts a projection (and optional validation) into
// its wire form. All per-class maps are iterated in ClassOrder.
func NewProjectionJSON(p *core.Projection, v *core.Validation) *ProjectionJSON {
	out := &ProjectionJSON{
		App:            p.App,
		Target:         p.Target,
		Ranks:          p.Ck,
		TotalSeconds:   p.Total,
		ComputeSeconds: p.ComputeTime,
		CommSeconds:    p.CommTime,
		Gamma:          p.Gamma,
		HyperScaled:    p.HyperScaled,
	}
	if c := p.Compute; c != nil {
		cj := &ComputeJSON{
			CharCount:     c.CharCount,
			Fitness:       c.Fitness,
			BaseSeconds:   c.BaseTime,
			TargetSeconds: c.TargetTime,
			SpeedupRatio:  c.SpeedupRatio(),
			Ranking:       c.Ranking,
		}
		for _, term := range c.Surrogate {
			cj.Surrogate = append(cj.Surrogate, SurrogateTermJSON{Bench: term.Bench, Weight: term.Weight})
		}
		out.Compute = cj
	}
	if c := p.Comm; c != nil {
		cj := &CommJSON{
			Ranks:              c.Ranks,
			WaitScale:          c.WaitScale,
			BaseTotalSeconds:   c.BaseTotal(),
			TargetTotalSeconds: c.TargetTotal(),
		}
		for _, rp := range c.Routines {
			cj.Routines = append(cj.Routines, RoutineJSON{
				Routine:        string(rp.Routine),
				Class:          string(rp.Class),
				Calls:          rp.Calls,
				BaseElapsed:    rp.BaseElapsed,
				BaseTransfer:   rp.BaseTransfer,
				BaseWait:       rp.BaseWait,
				TargetTransfer: rp.TargetTransfer,
				TargetWait:     rp.TargetWait,
				TargetElapsed:  rp.TargetElapsed(),
			})
		}
		base, tgt := c.BaseByClass(), c.TargetByClass()
		for _, cls := range ClassOrder {
			b, okB := base[cls]
			t, okT := tgt[cls]
			if !okB && !okT {
				continue
			}
			cj.ByClass = append(cj.ByClass, ClassSecondsJSON{
				Class: string(cls), BaseSeconds: b, TargetSeconds: t,
			})
		}
		out.Comm = cj
	}
	if v != nil {
		vj := &ValidationJSON{
			MeasuredTotalSeconds:   v.MeasuredTotal,
			MeasuredComputeSeconds: v.MeasuredCompute,
			MeasuredCommSeconds:    v.MeasuredComm,
			ErrCombinedPct:         v.ErrCombined,
			ErrComputePct:          v.ErrCompute,
			ErrCommPct:             v.ErrComm,
		}
		for _, cls := range ClassOrder {
			if e, ok := v.ErrByClass[cls]; ok {
				vj.ByClass = append(vj.ByClass, ClassErrorJSON{Class: string(cls), ErrPct: e})
			}
		}
		out.Validation = vj
	}
	if q := p.Quality; !q.Empty() {
		out.Quality = &QualityJSON{
			Grade:        string(q.Grade()),
			ComputeGrade: string(q.ComponentGrade(quality.Compute)),
			CommGrade:    string(q.ComponentGrade(quality.Comm)),
			Defects:      q.Defects(),
		}
	}
	return out
}

// MarshalProjection renders the wire form with a trailing newline — the
// exact bytes swappd serves, shared with tests that pin API/CLI parity.
// Marshalling goes through the pooled encoder (see MarshalJSONLine) so the
// serving path reuses encode buffers; the bytes are unchanged.
func MarshalProjection(p *core.Projection, v *core.Validation) ([]byte, error) {
	return MarshalJSONLine(NewProjectionJSON(p, v))
}
