package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

// sampleProjection builds a synthetic projection exercising every section
// of the wire form: multiple routines across all three classes, a
// surrogate, and per-class validation errors.
func sampleProjection() (*core.Projection, *core.Validation) {
	comm := &core.CommProjection{
		Ranks:     16,
		WaitScale: 0.9,
		Routines: []*core.RoutineProjection{
			{Routine: mpi.RoutineAllreduce, Class: mpi.ClassCollective, Calls: 3,
				BaseElapsed: 0.4, BaseTransfer: 0.3, BaseWait: 0.1, TargetTransfer: 0.15, TargetWait: 0.09},
			{Routine: mpi.RoutineIsend, Class: mpi.ClassP2PNB, Calls: 10,
				BaseElapsed: 1.0, BaseTransfer: 0.7, BaseWait: 0.3, TargetTransfer: 0.35, TargetWait: 0.27},
			{Routine: mpi.RoutineSendrecv, Class: mpi.ClassP2PB, Calls: 5,
				BaseElapsed: 0.5, BaseTransfer: 0.5, BaseWait: 0, TargetTransfer: 0.25, TargetWait: 0},
			{Routine: mpi.RoutineWaitall, Class: mpi.ClassP2PNB, Calls: 10,
				BaseElapsed: 2.0, BaseTransfer: 1.2, BaseWait: 0.8, TargetTransfer: 0.6, TargetWait: 0.72},
		},
	}
	proj := &core.Projection{
		App:    "BT-MZ.C",
		Target: "power6-575",
		Ck:     16,
		Compute: &core.ComputeProjection{
			Surrogate: []core.SurrogateTerm{
				{Bench: "437.leslie3d", Weight: 0.6},
				{Bench: "410.bwaves", Weight: 0.4},
			},
			Fitness:   0.012,
			CharCount: 16,
			BaseTime:  10, TargetTime: 4,
			Ranking: [6]int{5, 2, 1, 3, 4, 6},
		},
		Gamma:       1,
		ComputeTime: 4,
		Comm:        comm,
		CommTime:    comm.TargetTotal(),
	}
	proj.Total = proj.ComputeTime + proj.CommTime
	v := &core.Validation{
		Proj:            proj,
		MeasuredTotal:   6.9,
		MeasuredCompute: 4.2,
		MeasuredComm:    2.7,
		ErrCombined:     -2.5,
		ErrCompute:      -4.7,
		ErrComm:         1.2,
		ErrByClass: map[mpi.Class]float64{
			mpi.ClassP2PNB:      3.0,
			mpi.ClassP2PB:       -1.0,
			mpi.ClassCollective: 0.5,
		},
	}
	return proj, v
}

func TestProjectionJSONShape(t *testing.T) {
	proj, v := sampleProjection()
	j := NewProjectionJSON(proj, v)

	if j.App != "BT-MZ.C" || j.Target != "power6-575" || j.Ranks != 16 {
		t.Errorf("identity fields wrong: %+v", j)
	}
	if j.TotalSeconds != proj.Total || j.ComputeSeconds != proj.ComputeTime || j.CommSeconds != proj.CommTime {
		t.Error("top-level seconds do not match the projection")
	}
	if j.Compute == nil || j.Compute.SpeedupRatio != 0.4 || len(j.Compute.Surrogate) != 2 {
		t.Errorf("compute section wrong: %+v", j.Compute)
	}
	if j.Comm == nil || len(j.Comm.Routines) != 4 {
		t.Fatalf("comm section wrong: %+v", j.Comm)
	}
	if j.Comm.TargetTotalSeconds != proj.Comm.TargetTotal() || j.Comm.BaseTotalSeconds != proj.Comm.BaseTotal() {
		t.Error("comm totals do not match")
	}
	// Per-class sections appear in the fixed ClassOrder, never map order.
	wantOrder := []string{"P2P-NB", "P2P-B", "COLLECTIVES"}
	if len(j.Comm.ByClass) != 3 {
		t.Fatalf("by_class has %d entries", len(j.Comm.ByClass))
	}
	base, tgt := proj.Comm.BaseByClass(), proj.Comm.TargetByClass()
	for i, cs := range j.Comm.ByClass {
		if cs.Class != wantOrder[i] {
			t.Errorf("by_class[%d] = %s, want %s", i, cs.Class, wantOrder[i])
		}
		cls := mpi.Class(cs.Class)
		if cs.BaseSeconds != base[cls] || cs.TargetSeconds != tgt[cls] {
			t.Errorf("by_class[%s] = (%v,%v), want (%v,%v)", cs.Class, cs.BaseSeconds, cs.TargetSeconds, base[cls], tgt[cls])
		}
	}
	if j.Validation == nil || len(j.Validation.ByClass) != 3 {
		t.Fatalf("validation section wrong: %+v", j.Validation)
	}
	for i, ce := range j.Validation.ByClass {
		if ce.Class != wantOrder[i] {
			t.Errorf("validation by_class[%d] = %s, want %s", i, ce.Class, wantOrder[i])
		}
	}
	// Without a validation the section is omitted entirely.
	bare, err := json.Marshal(NewProjectionJSON(proj, nil))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(bare, []byte("validation")) {
		t.Error("nil validation must omit the validation key")
	}
}

// TestProjectionOutputDeterministic is the map-order determinism pin for
// every by-class consumer: TargetByClass/BaseByClass/ErrByClass return
// maps, and both the text report and the JSON form must iterate them in
// the fixed ClassOrder. Repeated renders must be byte-identical — with map
// iteration this fails probabilistically within a few dozen rounds.
func TestProjectionOutputDeterministic(t *testing.T) {
	proj, v := sampleProjection()
	wantText := Projection(proj, v)
	wantJSON, err := MarshalProjection(proj, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := Projection(proj, v); got != wantText {
			t.Fatalf("text report drifted on render %d:\n%s\nvs\n%s", i, got, wantText)
		}
		gotJSON, err := MarshalProjection(proj, v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("JSON report drifted on render %d:\n%s\nvs\n%s", i, gotJSON, wantJSON)
		}
	}
}
