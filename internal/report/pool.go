package report

import (
	"bytes"
	"encoding/json"
	"sync"
)

// encodeState is one pooled JSON encoder with its backing buffer. The
// encoder is bound to the buffer once; Reset between uses keeps the grown
// capacity, so steady-state marshalling on the serving path stops paying
// encoding/json's internal buffer growth on every response.
type encodeState struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	es := &encodeState{}
	es.enc = json.NewEncoder(&es.buf)
	return es
}}

// MarshalJSONLine renders v as compact JSON with a trailing newline — the
// wire framing every swappd endpoint uses — through a pooled encoder.
// json.Encoder escapes and compacts exactly like json.Marshal, so the
// bytes are identical to json.Marshal(v) + "\n". The returned slice is a
// fresh copy the caller owns.
func MarshalJSONLine(v any) ([]byte, error) {
	es := encPool.Get().(*encodeState)
	es.buf.Reset()
	if err := es.enc.Encode(v); err != nil {
		encPool.Put(es)
		return nil, err
	}
	out := make([]byte, es.buf.Len())
	copy(out, es.buf.Bytes())
	encPool.Put(es)
	return out, nil
}
