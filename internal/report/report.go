// Package report renders the reproduction's tables and figures as text —
// aligned tables for Table 1/Table 2 and the summary, horizontal ASCII bar
// charts for Figures 3–9 — plus CSV emitters for external plotting.
package report

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/quality"
	"repro/internal/units"
)

// Table2 renders the system-configuration table (paper Table 2).
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Base system and the different systems used for validation\n")
	fmt.Fprintf(&b, "%-28s %-12s %6s %7s %9s %-24s\n",
		"Machine", "Processor", "Cores", "C/Node", "Mem/Core", "Interconnect")
	order := []string{arch.Hydra, arch.Power6, arch.BlueGene, arch.Westmere}
	for _, name := range order {
		m := arch.MustGet(name)
		fmt.Fprintf(&b, "%-28s %-12s %6d %7d %8.0fG %-24s\n",
			m.FullName, m.Proc.Name, m.TotalCores, m.CoresPerNode, m.MemPerCoreGiB, m.Net.Name)
	}
	return b.String()
}

// Table1 renders the benchmark-characteristics table (paper Table 1).
func Table1(rows []figures.Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. NAS-MultiZone benchmark characteristics on the base system\n")
	fmt.Fprintf(&b, "%-10s %-5s %16s %18s %14s %14s\n",
		"Benchmark", "Class", "Communication %", "multi-Sendrecv %", "Reduce %", "Bcast %")
	span := func(lo, hi float64) string {
		if lo == hi {
			return fmt.Sprintf("%.2f", lo)
		}
		return fmt.Sprintf("%.2f – %.2f", lo, hi)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-5c %16s %18s %14s %14s\n",
			r.Bench, r.Class,
			span(r.CommMin, r.CommMax),
			span(r.MultiSRMin, r.MultiSRMax),
			span(r.ReduceMin, r.ReduceMax),
			span(r.BcastMin, r.BcastMax))
	}
	return b.String()
}

// barWidth is the character width of a full-scale figure bar.
const barWidth = 40

// bar renders a horizontal bar for value v on a scale of max.
func bar(v, max float64) string {
	if max <= 0 {
		max = 1
	}
	n := int(v / max * barWidth)
	if n > barWidth {
		n = barWidth
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("█", n) + strings.Repeat("·", barWidth-n)
}

// Figure renders one of Figures 3–9 as a grouped ASCII bar chart of percent
// error per component, in the paper's legend order.
func Figure(f *figures.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(f.ID)+2+len(f.Title)))

	// Shared scale across the figure, capped at a sane ceiling so one
	// outlier doesn't flatten everything.
	max := 1.0
	for _, c := range f.Cells {
		for _, v := range []float64{c.P2PNB, c.P2PB, c.Collectives, c.OverallComm, c.Computation, c.Combined} {
			if v > max {
				max = v
			}
		}
	}
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%d/%c\n", c.Ck, c.Class)
		rows := []struct {
			label string
			v     float64
		}{
			{"P2P-NB", c.P2PNB},
			{"P2P-B", c.P2PB},
			{"COLLECTIVES", c.Collectives},
			{"Overall Communication", c.OverallComm},
			{"Computation", c.Computation},
			{"Combined Projection", c.Combined},
		}
		for _, row := range rows {
			fmt.Fprintf(&b, "  %-22s %s %6.2f%%\n", row.label, bar(row.v, max), row.v)
		}
	}
	fmt.Fprintf(&b, "mean |combined error| = %.2f%%\n", f.MeanCombined())
	return b.String()
}

// FigureCSV emits a figure's data as CSV (one row per cell and component).
func FigureCSV(f *figures.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure,bench,target,cores,class,component,abs_error_pct\n")
	for _, c := range f.Cells {
		rows := []struct {
			label string
			v     float64
		}{
			{"p2p_nb", c.P2PNB},
			{"p2p_b", c.P2PB},
			{"collectives", c.Collectives},
			{"overall_comm", c.OverallComm},
			{"computation", c.Computation},
			{"combined", c.Combined},
		}
		for _, row := range rows {
			fmt.Fprintf(&b, "%s,%s,%s,%d,%c,%s,%.4f\n",
				f.ID, f.Bench, f.Target, c.Ck, c.Class, row.label, row.v)
		}
	}
	return b.String()
}

// Summary renders the §4 summary statistics table.
func Summary(s *figures.Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Projection accuracy summary (combined projection, |%% error|)\n")
	fmt.Fprintf(&b, "%-28s %8s %8s %8s %6s\n", "Target system", "mean", "stddev", "max", "cells")
	for _, row := range s.PerSystem {
		m := arch.MustGet(row.Target)
		fmt.Fprintf(&b, "%-28s %7.2f%% %7.2f%% %7.2f%% %6d\n",
			m.FullName, row.MeanAbs, row.StdDev, row.MaxAbs, row.Cells)
	}
	fmt.Fprintf(&b, "overall mean |error| = %.2f%%; %.0f%% of projections above measured\n",
		s.OverallMean, s.OverProjectedPct)
	return b.String()
}

// Duration formats a simulated duration for reports.
func Duration(s units.Seconds) string { return units.FormatSeconds(s) }

// commClassOrder fixes the rendering order of per-class validation errors:
// map iteration order must never reach the output. It aliases the ClassOrder
// shared with the JSON form.
var commClassOrder = ClassOrder

// Projection renders one projection — the cmd/swapp report body. v may be
// nil (no validation); otherwise the signed component errors are appended.
// The output is deterministic: per-class errors print in the paper's fixed
// class order.
func Projection(p *core.Projection, v *core.Validation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s @%d ranks on %s: projected %s (compute %s + communication %s)",
		p.App, p.Ck, p.Target,
		units.FormatSeconds(p.Total), units.FormatSeconds(p.ComputeTime), units.FormatSeconds(p.CommTime))
	if v != nil {
		fmt.Fprintf(&b, "; measured %s (error %+.2f%%)",
			units.FormatSeconds(v.MeasuredTotal), v.ErrCombined)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "\ncompute component:\n")
	fmt.Fprintf(&b, "  characterised at Ci=%d, γ=%.3f (CCSM)\n", p.Compute.CharCount, p.Gamma)
	if p.HyperScaled {
		fmt.Fprintf(&b, "  ACSM: cache-footprint transition at Ch≈%.0f cores (hyper-scaling regime)\n", p.ACSM.Ch)
	}
	fmt.Fprintf(&b, "  metric-group ranking (most significant first): G%d G%d G%d G%d G%d G%d\n",
		p.Compute.Ranking[0], p.Compute.Ranking[1], p.Compute.Ranking[2],
		p.Compute.Ranking[3], p.Compute.Ranking[4], p.Compute.Ranking[5])
	fmt.Fprintf(&b, "  surrogate (Eq. 2):\n")
	for _, term := range p.Compute.Surrogate {
		fmt.Fprintf(&b, "    %-18s w=%.4f\n", term.Bench, term.Weight)
	}
	fmt.Fprintf(&b, "\ncommunication component (Eq. 5/6, per task):\n")
	fmt.Fprintf(&b, "  %-14s %10s %12s %12s %12s\n", "routine", "calls", "T_transfer", "T_wait", "T_elapsed")
	for _, rp := range p.Comm.Routines {
		fmt.Fprintf(&b, "  %-14s %10.1f %12s %12s %12s\n",
			rp.Routine, rp.Calls,
			units.FormatSeconds(rp.TargetTransfer),
			units.FormatSeconds(rp.TargetWait),
			units.FormatSeconds(rp.TargetElapsed()))
	}
	if v != nil {
		fmt.Fprintf(&b, "\nvalidation against the measured run:\n")
		fmt.Fprintf(&b, "  combined    %+7.2f%%\n", v.ErrCombined)
		fmt.Fprintf(&b, "  computation %+7.2f%%\n", v.ErrCompute)
		fmt.Fprintf(&b, "  comm        %+7.2f%%\n", v.ErrComm)
		for _, cls := range commClassOrder {
			if e, ok := v.ErrByClass[cls]; ok {
				fmt.Fprintf(&b, "  %-11s %+7.2f%%\n", cls, e)
			}
		}
	}
	// The quality section appears only on degraded projections: a
	// full-fidelity report stays byte-identical to the pre-ledger output.
	if q := p.Quality; !q.Empty() {
		fmt.Fprintf(&b, "\nquality: grade %s (compute %s, comm %s) — degraded input data:\n",
			q.Grade(), q.ComponentGrade(quality.Compute), q.ComponentGrade(quality.Comm))
		for _, d := range q.Defects() {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	}
	return b.String()
}
