package report

import (
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/nas"
)

func sampleFigure() *figures.Figure {
	return &figures.Figure{
		ID:     "fig4",
		Title:  "BT-MZ Results on IBM POWER6 575 cluster",
		Bench:  nas.BT,
		Target: "power6-575",
		Cells: []figures.Cell{
			{Ck: 16, Class: nas.ClassC, P2PNB: 8.1, Collectives: 2.2,
				OverallComm: 7.5, Computation: 4.4, Combined: 4.9, CombinedSigned: -4.9},
			{Ck: 16, Class: nas.ClassD, P2PNB: 5.0, Collectives: 1.0,
				OverallComm: 4.2, Computation: 2.1, Combined: 2.4, CombinedSigned: 2.4},
		},
	}
}

func TestTable2Renders(t *testing.T) {
	s := Table2()
	for _, frag := range []string{"POWER5+", "POWER6", "PowerPC 450", "Xeon X5670", "832", "4096"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table 2 missing %q", frag)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	rows := []figures.Table1Row{
		{Bench: nas.BT, Class: nas.ClassC, CommMin: 3.2, CommMax: 59.7,
			MultiSRMin: 3.17, MultiSRMax: 59.1, ReduceMin: 0.032, ReduceMax: 0.59},
		{Bench: nas.LU, Class: nas.ClassC, CommMin: 1.4, CommMax: 1.4,
			MultiSRMin: 1.38, MultiSRMax: 1.38, ReduceMin: 0.014, ReduceMax: 0.014},
	}
	s := Table1(rows)
	if !strings.Contains(s, "BT-MZ") || !strings.Contains(s, "3.20 – 59.70") {
		t.Errorf("range rendering broken:\n%s", s)
	}
	// A single-value row renders without a dash.
	if !strings.Contains(s, "1.40") || strings.Contains(s, "1.40 – 1.40") {
		t.Errorf("single-value rendering broken:\n%s", s)
	}
}

func TestFigureRenders(t *testing.T) {
	s := Figure(sampleFigure())
	for _, frag := range []string{
		"FIG4", "16/C", "16/D",
		"P2P-NB", "P2P-B", "COLLECTIVES", "Overall Communication",
		"Computation", "Combined Projection", "mean |combined error|",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("figure rendering missing %q", frag)
		}
	}
	// Bars scale: the largest value (8.1) must render a longer bar than
	// the smallest nonzero (1.0).
	lines := strings.Split(s, "\n")
	countBlocks := func(substr string) int {
		for _, l := range lines {
			if strings.Contains(l, substr) {
				return strings.Count(l, "█")
			}
		}
		return -1
	}
	if countBlocks("8.10%") <= countBlocks("1.00%") {
		t.Error("bar lengths do not reflect values")
	}
}

func TestBarBounds(t *testing.T) {
	if got := bar(0, 10); strings.Contains(got, "█") {
		t.Error("zero value must render an empty bar")
	}
	if got := bar(20, 10); strings.Count(got, "█") != barWidth {
		t.Error("over-scale value must clamp to full width")
	}
	if got := bar(-1, 10); strings.Contains(got, "█") {
		t.Error("negative value must clamp to empty")
	}
	if got := bar(5, 0); len([]rune(got)) != barWidth {
		t.Error("zero max must not break the bar width")
	}
}

func TestFigureCSV(t *testing.T) {
	s := FigureCSV(sampleFigure())
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Header + 2 cells × 6 components.
	if len(lines) != 1+2*6 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "figure,bench,target,cores,class,component") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(s, "fig4,BT-MZ,power6-575,16,C,p2p_nb,8.1000") {
		t.Errorf("CSV row missing:\n%s", s)
	}
}

func TestSummaryRenders(t *testing.T) {
	s := Summary(&figures.Summary{
		PerSystem: []figures.SystemSummary{
			{Target: "power6-575", MeanAbs: 8.58, StdDev: 1.07, MaxAbs: 14.2, Cells: 18},
			{Target: "bgp", MeanAbs: 11.93, StdDev: 1.97, MaxAbs: 14.9, Cells: 18},
		},
		OverallMean:      11.44,
		OverProjectedPct: 54,
	})
	for _, frag := range []string{"POWER6", "8.58", "11.93", "11.44", "54% of projections"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestDuration(t *testing.T) {
	if Duration(1.5) != "1.5s" {
		t.Errorf("Duration = %q", Duration(1.5))
	}
}
