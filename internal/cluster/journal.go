package cluster

import (
	"encoding/json"
	"fmt"

	"repro/internal/durable"
	"repro/internal/ga"
	"repro/internal/obs"
)

// Journal is the job manager's durable lifecycle log: one WAL record per
// submission, per captured GA checkpoint, and per terminal state. A
// restarted replica replays the log, finds every job that was submitted but
// never finished, and resubmits it with its newest per-member checkpoints —
// the kill -9 recovery path.
//
// Journalling is strictly best-effort on the write side: a record that
// cannot be marshalled (a checkpoint carrying an infinite fitness has no
// JSON form) or appended (disk full, injected fault) is dropped and counted
// as jobs.journal_drops rather than failing the job — durability must never
// make the serving path less available. The read side is the opposite:
// Recover trusts nothing beyond what the WAL's checksums admitted.
type Journal struct {
	wal *durable.WAL
	obs *obs.Scope
}

// journalRecord is the WAL body wire form, one JSON object per record.
type journalRecord struct {
	// Type is "submit", "ckpt", or "done".
	Type string `json:"type"`
	ID   string `json:"id"`

	// Submission material (Type "submit").
	Op      string      `json:"op,omitempty"`
	Group   string      `json:"group,omitempty"`
	Payload []byte      `json:"payload,omitempty"`
	Seeds   [][]float64 `json:"seeds,omitempty"`
	// Ckpts carries preloaded checkpoints on submit records (adopted
	// handoffs, compacted recoveries).
	Ckpts []*ga.Checkpoint `json:"ckpts,omitempty"`

	// Checkpoint material (Type "ckpt").
	Member int            `json:"member,omitempty"`
	Ckpt   *ga.Checkpoint `json:"ckpt,omitempty"`

	// Terminal state (Type "done").
	State JobState `json:"state,omitempty"`
}

// OpenJournal opens (or creates) the job journal in dir, recovering any
// torn tail per the WAL's contract. opts.Obs also receives the journal's
// own jobs.journal_drops counter.
func OpenJournal(dir string, opts durable.Options) (*Journal, error) {
	w, err := durable.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Journal{wal: w, obs: opts.Obs}, nil
}

// append marshals and appends one record, best-effort.
func (jl *Journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	body, err := json.Marshal(rec)
	if err == nil {
		err = jl.wal.Append(body)
	}
	if err != nil {
		jl.obs.Count("jobs.journal_drops", 1)
	}
}

// RecordSubmit journals one admitted submission, including any preloaded
// checkpoints (adopted handoffs resume exactly even across a crash).
func (jl *Journal) RecordSubmit(spec JobSpec) {
	jl.append(journalRecord{
		Type: "submit", ID: spec.ID, Op: spec.Op, Group: spec.Group,
		Payload: spec.Payload, Seeds: spec.Seeds, Ckpts: spec.Checkpoints,
	})
}

// RecordCheckpoint journals one member's newest evolution state.
func (jl *Journal) RecordCheckpoint(id string, member int, cp *ga.Checkpoint) {
	jl.append(journalRecord{Type: "ckpt", ID: id, Member: member, Ckpt: cp})
}

// RecordDone journals a job's terminal state; recovery skips the job.
func (jl *Journal) RecordDone(id string, state JobState) {
	jl.append(journalRecord{Type: "done", ID: id, State: state})
}

// Recover replays the journal and returns every job that was submitted but
// never reached a terminal state, in submission order, each with the newest
// journalled checkpoint per member merged in (later records win). Replay is
// idempotent by construction: a duplicate submit of a known ID is ignored,
// a ckpt or done for an unknown ID is ignored, so recovering twice — or
// recovering a log that was itself written by a recovered process — yields
// the same pending set.
func (jl *Journal) Recover() ([]JobSpec, error) {
	if jl == nil {
		return nil, nil
	}
	pending := map[string]*JobSpec{}
	var order []string
	err := jl.wal.Replay(func(body []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(body, &rec); err != nil || rec.ID == "" {
			return nil // an unreadable record is skipped, not fatal
		}
		switch rec.Type {
		case "submit":
			if _, ok := pending[rec.ID]; ok {
				return nil
			}
			pending[rec.ID] = &JobSpec{
				ID: rec.ID, Op: rec.Op, Group: rec.Group,
				Payload: rec.Payload, Seeds: rec.Seeds, Checkpoints: rec.Ckpts,
			}
			order = append(order, rec.ID)
		case "ckpt":
			spec, ok := pending[rec.ID]
			if !ok || rec.Ckpt == nil || rec.Member < 0 {
				return nil
			}
			for len(spec.Checkpoints) <= rec.Member {
				spec.Checkpoints = append(spec.Checkpoints, nil)
			}
			spec.Checkpoints[rec.Member] = rec.Ckpt
		case "done":
			delete(pending, rec.ID)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: journal replay: %w", err)
	}
	out := make([]JobSpec, 0, len(pending))
	for _, id := range order {
		if spec, ok := pending[id]; ok {
			out = append(out, *spec)
		}
	}
	return out, nil
}

// Compact rewrites the journal down to one submit record per still-pending
// job (checkpoints folded in), dropping the finished jobs' history — the
// startup and drain housekeeping that keeps replay time bounded.
func (jl *Journal) Compact(pending []JobSpec) error {
	if jl == nil {
		return nil
	}
	records := make([][]byte, 0, len(pending))
	for _, spec := range pending {
		body, err := json.Marshal(journalRecord{
			Type: "submit", ID: spec.ID, Op: spec.Op, Group: spec.Group,
			Payload: spec.Payload, Seeds: spec.Seeds, Ckpts: spec.Checkpoints,
		})
		if err != nil {
			jl.obs.Count("jobs.journal_drops", 1)
			continue
		}
		records = append(records, body)
	}
	return jl.wal.Compact(records)
}

// Sync forces the batched WAL writes to disk (the drain path's last act).
func (jl *Journal) Sync() error {
	if jl == nil {
		return nil
	}
	return jl.wal.Sync()
}

// Stats exposes the underlying WAL's counters.
func (jl *Journal) Stats() durable.Stats {
	if jl == nil {
		return durable.Stats{}
	}
	return jl.wal.Stats()
}

// Close flushes and closes the journal.
func (jl *Journal) Close() error {
	if jl == nil {
		return nil
	}
	return jl.wal.Close()
}
