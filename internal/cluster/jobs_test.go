package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// drainEvents collects events from a subscription until the channel closes
// or the timeout fires.
func drainEvents(t *testing.T, ch <-chan Event) []Event {
	t.Helper()
	var got []Event
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return got
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("subscription did not close; got %d events so far", len(got))
		}
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job did not finish")
	}
}

func TestJobSubmitProgressResult(t *testing.T) {
	m := NewManager(ManagerConfig{})
	j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		if resume.Seeds != nil || resume.Checkpoints != nil {
			return nil, errors.New("first attempt must not receive resume state")
		}
		for gen := 0; gen < 4; gen++ {
			tap.Progress(Snapshot{Member: 0, Generation: gen, BestFitness: float64(10 - gen), Best: []float64{float64(gen)}})
		}
		return []byte(`{"ok":true}` + "\n"), nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)

	st := j.Status()
	if st.State != JobDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if st.Attempts != 1 || st.Resumed {
		t.Errorf("attempts = %d resumed = %v, want 1 false", st.Attempts, st.Resumed)
	}
	if st.Snapshots != 4 || len(st.Progress) != 4 {
		t.Errorf("snapshots = %d progress = %d, want 4, 4", st.Snapshots, len(st.Progress))
	}
	if st.Progress[3].BestFitness != 7 {
		t.Errorf("last snapshot fitness = %v, want 7", st.Progress[3].BestFitness)
	}
	body, ok := j.Result()
	if !ok || string(body) != `{"ok":true}`+"\n" {
		t.Errorf("Result = %q, %v", body, ok)
	}
	if got, err := m.Get(j.ID); err != nil || got != j {
		t.Errorf("Get(%s) = %v, %v", j.ID, got, err)
	}
	if _, err := m.Get("job-nope"); !errors.Is(err, ErrJobUnknown) {
		t.Errorf("Get(unknown) err = %v, want ErrJobUnknown", err)
	}
}

// A worker panic must become a failed attempt that resumes from the
// checkpoint — the second attempt sees the best genomes the first attempt
// reported before dying.
func TestJobPanicResumesFromCheckpoint(t *testing.T) {
	m := NewManager(ManagerConfig{})
	var attempts int
	var gotSeeds [][]float64
	j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		attempts++
		if attempts == 1 {
			tap.Progress(Snapshot{Member: 1, Generation: 0, BestFitness: 5, Best: []float64{1, 1}})
			tap.Progress(Snapshot{Member: 0, Generation: 0, BestFitness: 9, Best: []float64{0, 0}})
			tap.Progress(Snapshot{Member: 0, Generation: 1, BestFitness: 3, Best: []float64{0, 7}})
			panic("worker blew up")
		}
		gotSeeds = resume.Seeds
		return []byte("resumed"), nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)

	st := j.Status()
	if st.State != JobDone || !st.Resumed || st.Attempts != 2 {
		t.Fatalf("state = %s resumed = %v attempts = %d, want done true 2 (error %q)",
			st.State, st.Resumed, st.Attempts, st.Error)
	}
	// Checkpoint keeps the newest genome per member, in member order.
	want := [][]float64{{0, 7}, {1, 1}}
	if len(gotSeeds) != len(want) {
		t.Fatalf("resume seeds = %v, want %v", gotSeeds, want)
	}
	for i := range want {
		for k := range want[i] {
			if gotSeeds[i][k] != want[i][k] {
				t.Fatalf("resume seeds = %v, want %v", gotSeeds, want)
			}
		}
	}
}

// A job that fails every attempt ends failed after MaxResumes+1 attempts.
func TestJobFailsAfterResumeBudget(t *testing.T) {
	m := NewManager(ManagerConfig{MaxResumes: 2})
	var attempts int
	j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		attempts++
		return nil, fmt.Errorf("attempt %d failed", attempts)
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)
	st := j.Status()
	if st.State != JobFailed || st.Attempts != 3 {
		t.Fatalf("state = %s attempts = %d, want failed 3", st.State, st.Attempts)
	}
	if st.Error != "attempt 3 failed" {
		t.Errorf("error = %q, want the last attempt's", st.Error)
	}
	if _, ok := j.Result(); ok {
		t.Error("failed job must not expose a result")
	}
}

// Subscribers attached mid-run replay history, then receive live events,
// then exactly one done event before close. Late subscribers get the same
// logical stream from history alone.
func TestJobSubscribeReplayAndLive(t *testing.T) {
	m := NewManager(ManagerConfig{})
	release := make(chan struct{})
	started := make(chan struct{})
	j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		tap.Progress(Snapshot{Member: 0, Generation: 0, BestFitness: 2, Best: []float64{1}})
		close(started)
		<-release
		tap.Progress(Snapshot{Member: 0, Generation: 1, BestFitness: 1, Best: []float64{2}})
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	ch, cancel := j.Subscribe()
	defer cancel()
	close(release)
	events := drainEvents(t, ch)

	var progress, done int
	for _, ev := range events {
		switch ev.Type {
		case "progress":
			progress++
		case "done":
			done++
			if ev.State != JobDone {
				t.Errorf("done state = %s, want done", ev.State)
			}
		}
	}
	if progress != 2 || done != 1 {
		t.Fatalf("events = %d progress + %d done, want 2 + 1 (total %d)", progress, done, len(events))
	}

	waitDone(t, j)
	late, lateCancel := j.Subscribe()
	defer lateCancel()
	lateEvents := drainEvents(t, late)
	if len(lateEvents) != 3 || lateEvents[2].Type != "done" {
		t.Fatalf("late subscription = %d events (last %+v), want history + done", len(lateEvents), lateEvents[len(lateEvents)-1])
	}
}

// Admission is bounded: beyond MaxActive+MaxQueued concurrent jobs,
// Submit fails fast with ErrJobQueueFull instead of queueing unboundedly.
func TestJobQueueFull(t *testing.T) {
	m := NewManager(ManagerConfig{MaxActive: 1, MaxQueued: 1})
	block := make(chan struct{})
	run := func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		<-block
		return []byte("ok"), nil
	}
	j1, err1 := m.Submit("project", run)
	_, err2 := m.Submit("project", run)
	if err1 != nil || err2 != nil {
		t.Fatalf("first two submissions must admit: %v, %v", err1, err2)
	}
	if _, err := m.Submit("project", run); !errors.Is(err, ErrJobQueueFull) {
		t.Fatalf("third submission err = %v, want ErrJobQueueFull", err)
	}
	close(block)
	waitDone(t, j1)

	m.Close()
	if _, err := m.Submit("project", run); !errors.Is(err, ErrJobQueueFull) {
		t.Errorf("submit after Close err = %v, want ErrJobQueueFull", err)
	}
}

// Finished jobs beyond the retention bound are evicted oldest-first;
// running jobs are never evicted.
func TestJobRetentionEviction(t *testing.T) {
	m := NewManager(ManagerConfig{MaxActive: 1, MaxQueued: 8, Retain: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
			return []byte("ok"), nil
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrJobUnknown) {
		t.Errorf("oldest job should be evicted, Get err = %v", err)
	}
	if _, err := m.Get(ids[3]); err != nil {
		t.Errorf("newest job must survive retention: %v", err)
	}
}

// Concurrent progress reporting, subscription churn, and status polling
// must be race-free (this test earns its keep under -race).
func TestJobConcurrentProgressChaos(t *testing.T) {
	m := NewManager(ManagerConfig{HistoryCap: 32})
	const members, gens = 4, 50
	j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		var wg sync.WaitGroup
		for mem := 0; mem < members; mem++ {
			wg.Add(1)
			go func(mem int) {
				defer wg.Done()
				for gen := 0; gen < gens; gen++ {
					tap.Progress(Snapshot{Member: mem, Generation: gen, BestFitness: float64(gen), Best: []float64{float64(mem), float64(gen)}})
				}
			}(mem)
		}
		wg.Wait()
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel := j.Subscribe()
				select {
				case <-ch:
				default:
				}
				cancel()
				_ = j.Status()
			}
		}()
	}
	waitDone(t, j)
	close(stop)
	wg.Wait()

	st := j.Status()
	if st.State != JobDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.Snapshots != members*gens {
		t.Errorf("snapshots = %d, want %d", st.Snapshots, members*gens)
	}
	if len(st.Progress) != 32 {
		t.Errorf("retained history = %d, want HistoryCap 32", len(st.Progress))
	}
}
