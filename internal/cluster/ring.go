// Package cluster is the scale-out substrate behind a sharded swappd
// deployment: a consistent-hash ring that assigns normalised request
// groups to replicas, and an async job manager for expensive GA searches
// with per-generation progress snapshots and resumable checkpoints.
//
// The ring answers one question deterministically on every replica: which
// replica owns a (base, target) request group? All replicas are configured
// with the same peer list, so they all compute the same answer and a group's
// characterisation work concentrates on its owner — the owner's layered
// store fills once and every forwarded request reuses it (the peer cache
// fill). Ownership is a routing preference, not a correctness requirement:
// a replica that cannot reach a group's owner computes locally and stays
// byte-identical, because every projection is a pure function of its
// request.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// GroupKey is the normalised routing (and batch-grouping) key for one
// request: the (base, target) machine pair. Requests sharing it share the
// expensive characterisation artifacts, so both the batch planner and the
// ring route by it. Components are %q-quoted, so distinct pairs can never
// collapse onto one key.
func GroupKey(base, target string) string {
	return fmt.Sprintf("%q|%q", base, target)
}

// vnodesPerNode is the number of ring positions each node occupies.
// 64 keeps the ownership spread within a few percent of even for small
// clusters while the ring stays tiny (a 16-replica ring is 1024 points).
const vnodesPerNode = 64

// Ring is an immutable consistent-hash ring over replica addresses. Build
// with NewRing; share freely — all methods are safe for concurrent use.
//
// Hashing is sha256-based and endianness-pinned, so every replica — and
// every future process — computes identical ownership for identical
// membership. Adding or removing one node moves only the keys that node's
// arcs cover (about 1/n of the keyspace), never reshuffling the rest: the
// property that makes peer caches survive membership changes.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, deduplicated membership
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node addresses. Duplicates are
// collapsed and order is irrelevant: two rings built from permutations of
// the same membership are identical. An empty membership yields a ring
// that owns nothing (Owner returns "").
func NewRing(nodes []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions across nodes are astronomically unlikely but must
		// still order deterministically.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// hashPoint positions one virtual node: the first 8 bytes of
// sha256("node|vnode"), big-endian.
func hashPoint(node string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(node + "|" + strconv.Itoa(vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// hashKey positions a key on the ring.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte("key|" + key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node owning key: the first ring point at or after the
// key's hash, wrapping. "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// NextOwner returns the node that would own key if excluding were removed
// from the ring: the first ring point at or after the key's hash whose node
// differs from excluding, wrapping. It is the replication successor — the
// replica that inherits a group when its owner dies — and is "" when the
// ring holds no other node.
func (r *Ring) NextOwner(key, excluding string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(start+k)%len(r.points)]
		if p.node != excluding {
			return p.node
		}
	}
	return ""
}

// Nodes returns the ring's membership, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len reports the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Moved counts how many of the given keys change owner between two rings —
// the cluster.ring_moves accounting when membership (or reachability)
// changes. Either ring may be nil (owning nothing).
func Moved(from, to *Ring, keys []string) int {
	owner := func(r *Ring, k string) string {
		if r == nil {
			return ""
		}
		return r.Owner(k)
	}
	n := 0
	for _, k := range keys {
		if owner(from, k) != owner(to, k) {
			n++
		}
	}
	return n
}
