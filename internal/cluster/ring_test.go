package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = GroupKey("hydra", fmt.Sprintf("target-%d", i))
	}
	return keys
}

// Every replica must compute identical ownership from identical membership,
// regardless of the order the peer list was written in — that is the whole
// routing-determinism contract.
func TestRingDeterministicAcrossPermutations(t *testing.T) {
	a := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	b := NewRing([]string{"http://c:3", "http://a:1", "http://b:2", "http://a:1"})
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("membership = %d, %d; want 3, 3 (deduplicated)", a.Len(), b.Len())
	}
	for _, k := range testKeys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%q) differs across permutations: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// Removing one node must move only the keys that node owned; every other
// key keeps its owner (the consistent-hashing minimal-movement property).
func TestRingMinimalMovementOnNodeLoss(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	without := NewRing([]string{"http://a:1", "http://c:3"})
	keys := testKeys(500)
	moved := 0
	for _, k := range keys {
		before, after := full.Owner(k), without.Owner(k)
		if before == "http://b:2" {
			if after == "http://b:2" {
				t.Fatalf("key %q still owned by removed node", k)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no test keys; distribution is broken")
	}
	if got := Moved(full, without, keys); got != moved {
		t.Errorf("Moved = %d, want %d", got, moved)
	}
}

// The vnode spread must keep ownership roughly even: with 3 nodes no node
// should own more than half of a large keyset.
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for node, n := range counts {
		if n == 0 || n > len(keys)/2 {
			t.Errorf("node %s owns %d/%d keys; distribution badly skewed", node, n, len(keys))
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d nodes own keys, want 3", len(counts))
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(nil).Owner("k"); owner != "" {
		t.Errorf("empty ring owner = %q, want \"\"", owner)
	}
	one := NewRing([]string{"http://solo:1"})
	for _, k := range testKeys(10) {
		if one.Owner(k) != "http://solo:1" {
			t.Fatal("single-node ring must own everything")
		}
	}
}

// GroupKey must never collapse distinct (base, target) pairs.
func TestGroupKeyCollisionFree(t *testing.T) {
	a := GroupKey(`hy"dra`, "t")
	b := GroupKey("hy", `dra"|t`)
	if a == b {
		t.Fatalf("GroupKey collided: %q", a)
	}
	if GroupKey("a", "b") == GroupKey("b", "a") {
		t.Fatal("GroupKey must be order-sensitive")
	}
}
