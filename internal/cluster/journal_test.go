package cluster

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/durable"
	"repro/internal/ga"
	"repro/internal/obs"
)

// testCkpt builds a small, JSON-clean GA checkpoint.
func testCkpt(gen int) *ga.Checkpoint {
	return &ga.Checkpoint{
		Gen: gen, RNG: uint64(1000 + gen),
		Pop:  [][]float64{{1, 2}, {3, 4}},
		Best: []float64{1, 2}, BestFitness: float64(gen) / 10,
		History: []float64{0.9, 0.5},
	}
}

func openTestJournal(t *testing.T, dir string, scope *obs.Scope) *Journal {
	t.Helper()
	jl, err := OpenJournal(dir, durable.Options{Obs: scope})
	if err != nil {
		t.Fatal(err)
	}
	return jl
}

// TestJournalRecoverPendingJobs is the restart contract: replay returns
// exactly the jobs that were submitted but never finished, in submission
// order, each carrying the newest journalled checkpoint per member.
func TestJournalRecoverPendingJobs(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir, nil)
	jl.RecordSubmit(JobSpec{ID: "job-1", Op: "project", Group: "g1", Payload: []byte(`{"a":1}`)})
	jl.RecordSubmit(JobSpec{ID: "job-2", Op: "validate", Group: "g2"})
	jl.RecordSubmit(JobSpec{ID: "job-3", Op: "project", Group: "g1"})
	jl.RecordCheckpoint("job-1", 0, testCkpt(1))
	jl.RecordCheckpoint("job-1", 2, testCkpt(4))
	jl.RecordCheckpoint("job-1", 0, testCkpt(2)) // newer state for member 0
	jl.RecordCheckpoint("job-9", 0, testCkpt(9)) // unknown job: ignored
	jl.RecordDone("job-2", JobDone)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2 := openTestJournal(t, dir, nil)
	defer jl2.Close()
	pending, err := jl2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 || pending[0].ID != "job-1" || pending[1].ID != "job-3" {
		t.Fatalf("pending = %+v, want job-1 then job-3", pending)
	}
	j1 := pending[0]
	if j1.Op != "project" || j1.Group != "g1" || string(j1.Payload) != `{"a":1}` {
		t.Errorf("job-1 submission material lost: %+v", j1)
	}
	if len(j1.Checkpoints) != 3 || j1.Checkpoints[1] != nil {
		t.Fatalf("job-1 checkpoints = %+v, want members 0 and 2 with a nil gap", j1.Checkpoints)
	}
	if j1.Checkpoints[0].Gen != 2 || j1.Checkpoints[2].Gen != 4 {
		t.Errorf("checkpoint gens = %d, %d; want the newest per member (2, 4)",
			j1.Checkpoints[0].Gen, j1.Checkpoints[2].Gen)
	}
	// Replay is idempotent: a second recovery sees the same pending set.
	again, err := jl2.Recover()
	if err != nil || len(again) != 2 {
		t.Fatalf("second Recover = %d pending, %v; want the same 2", len(again), err)
	}
}

// TestJournalRecoverAfterTornTail: a crash mid-append must cost at most the
// torn record — the pending set reflects every intact record before it.
func TestJournalRecoverAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	scope := obs.New("test")
	jl := openTestJournal(t, dir, scope)
	jl.RecordSubmit(JobSpec{ID: "job-1", Op: "project"})
	jl.RecordDone("job-1", JobDone)
	jl.RecordSubmit(JobSpec{ID: "job-2", Op: "project"})
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	// Sever the log mid-way through the last record.
	seg := filepath.Join(dir, "wal-00000001.seg")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	jl2 := openTestJournal(t, dir, scope)
	defer jl2.Close()
	pending, err := jl2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Errorf("pending = %+v, want none (the torn record was the only live submit)", pending)
	}
	if st := jl2.Stats(); st.Truncated != 1 {
		t.Errorf("wal truncations = %d, want 1", st.Truncated)
	}
}

// TestJournalCompact folds history down to the pending submits so replay
// time stays bounded, preserving checkpoints through the rewrite.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir, nil)
	for i := 0; i < 6; i++ {
		id := "job-" + string(rune('1'+i))
		jl.RecordSubmit(JobSpec{ID: id, Op: "project"})
		jl.RecordDone(id, JobDone)
	}
	jl.RecordSubmit(JobSpec{ID: "job-live", Op: "project"})
	jl.RecordCheckpoint("job-live", 0, testCkpt(7))
	pending, err := jl.Recover()
	if err != nil || len(pending) != 1 {
		t.Fatalf("Recover = %+v, %v", pending, err)
	}
	if err := jl.Compact(pending); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	jl2 := openTestJournal(t, dir, nil)
	defer jl2.Close()
	after, err := jl2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0].ID != "job-live" {
		t.Fatalf("post-compact pending = %+v", after)
	}
	if len(after[0].Checkpoints) != 1 || after[0].Checkpoints[0].Gen != 7 {
		t.Errorf("checkpoint lost in compaction: %+v", after[0].Checkpoints)
	}
	if st := jl2.Stats(); st.Replayed != 1 {
		t.Errorf("compacted log replayed %d records, want exactly the 1 pending submit", st.Replayed)
	}
}

// TestJournalDropsUnmarshalableCheckpoint: a checkpoint carrying ±Inf has
// no JSON form; journalling must degrade to a counted drop, never an error
// on the job path, and recovery must still see the job (without the bad
// checkpoint).
func TestJournalDropsUnmarshalableCheckpoint(t *testing.T) {
	scope := obs.New("test")
	jl := openTestJournal(t, t.TempDir(), scope)
	defer jl.Close()
	jl.RecordSubmit(JobSpec{ID: "job-1", Op: "project"})
	bad := testCkpt(1)
	bad.BestFitness = math.Inf(1)
	jl.RecordCheckpoint("job-1", 0, bad)
	if n, _ := scope.Metrics().Counter("jobs.journal_drops"); n != 1 {
		t.Errorf("jobs.journal_drops = %d, want 1", n)
	}
	pending, err := jl.Recover()
	if err != nil || len(pending) != 1 {
		t.Fatalf("Recover = %+v, %v", pending, err)
	}
	if len(pending[0].Checkpoints) != 0 {
		t.Errorf("dropped checkpoint resurfaced: %+v", pending[0].Checkpoints)
	}
}

// TestJournalNilSafety: a nil journal (durability off) is a no-op sink.
func TestJournalNilSafety(t *testing.T) {
	var jl *Journal
	jl.RecordSubmit(JobSpec{ID: "job-1"})
	jl.RecordCheckpoint("job-1", 0, testCkpt(1))
	jl.RecordDone("job-1", JobDone)
	if pending, err := jl.Recover(); err != nil || pending != nil {
		t.Errorf("nil Recover = %+v, %v", pending, err)
	}
	if err := jl.Compact(nil); err != nil {
		t.Errorf("nil Compact: %v", err)
	}
	if err := jl.Sync(); err != nil {
		t.Errorf("nil Sync: %v", err)
	}
	if err := jl.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
