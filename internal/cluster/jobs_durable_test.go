package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ga"
	"repro/internal/obs"
)

// blockUntilCancelled is a job body that parks until the drain cancels it.
func blockUntilCancelled(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestJobHandedOffTerminalEventCarriesTarget pins the drain/SSE contract: a
// subscriber attached while the job is handed off must stay attached until
// the drain resolves the forwarding address, then receive exactly one
// terminal handed_off event carrying the target URL before the stream
// closes.
func TestJobHandedOffTerminalEventCarriesTarget(t *testing.T) {
	m := NewManager(ManagerConfig{})
	started := make(chan struct{})
	j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		tap.Progress(Snapshot{Member: 0, Generation: 0, BestFitness: 4, Best: []float64{1, 2}})
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	ch, cancel := j.Subscribe()
	defer cancel()

	if got := m.DrainForHandoff(); len(got) != 1 {
		t.Fatalf("DrainForHandoff = %d jobs, want 1", len(got))
	}
	waitDone(t, j)

	// The job is finished (handed off) but unmarked: no terminal event may
	// have gone out and the stream must still be open.
	for open := true; open; {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("stream closed before MarkHandoffTarget resolved the target")
			}
			if ev.Type != "progress" {
				t.Fatalf("premature terminal event %+v before the target was known", ev)
			}
		default:
			open = false
		}
	}

	const target = "http://peer-2:8080"
	m.MarkHandoffTarget(j.ID, target)
	events := drainEvents(t, ch)
	if len(events) != 1 {
		t.Fatalf("post-mark events = %+v, want exactly the terminal one", events)
	}
	term := events[0]
	if term.Type != "handed_off" || term.State != JobHandedOff || term.Target != target {
		t.Errorf("terminal = %+v, want handed_off/%s/%s", term, JobHandedOff, target)
	}
	if st := j.Status(); st.State != JobHandedOff || st.HandoffTarget != target {
		t.Errorf("status = %s target %q, want handed_off %q", st.State, st.HandoffTarget, target)
	}

	// A late subscriber sees the same logical stream: history, then the
	// terminal handed_off with the target.
	late, lateCancel := j.Subscribe()
	defer lateCancel()
	lateEvents := drainEvents(t, late)
	if n := len(lateEvents); n != 2 || lateEvents[n-1].Type != "handed_off" || lateEvents[n-1].Target != target {
		t.Errorf("late subscription = %+v, want progress + handed_off(%s)", lateEvents, target)
	}
}

// TestJobMarkHandoffEmptyTargetReleases: a drain that found no live peer
// must still release subscribers — the terminal event just carries no
// target.
func TestJobMarkHandoffEmptyTargetReleases(t *testing.T) {
	m := NewManager(ManagerConfig{})
	j, err := m.Submit("project", blockUntilCancelled)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ch, cancel := j.Subscribe()
	defer cancel()
	m.DrainForHandoff()
	waitDone(t, j)
	m.MarkHandoffTarget(j.ID, "")
	events := drainEvents(t, ch)
	if len(events) != 1 || events[0].Type != "handed_off" || events[0].Target != "" {
		t.Errorf("events = %+v, want one targetless handed_off", events)
	}
}

// TestJobRetainAgeSweep: the age janitor's sweep evicts finished jobs past
// RetainAge, never running jobs, and never handed-off jobs still waiting
// for their forwarding address.
func TestJobRetainAgeSweep(t *testing.T) {
	scope := obs.New("test")
	m := NewManager(ManagerConfig{RetainAge: time.Hour, Obs: scope})
	defer m.Close()
	base := time.Unix(1700000000, 0)
	var offset atomic.Int64
	m.now = func() time.Time { return base.Add(time.Duration(offset.Load())) }

	quick, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, quick)
	slow, err := m.Submit("project", blockUntilCancelled)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	if n := m.SweepAged(); n != 0 {
		t.Fatalf("sweep before aging evicted %d", n)
	}
	offset.Store(int64(2 * time.Hour))
	if n := m.SweepAged(); n != 1 {
		t.Fatalf("sweep after aging evicted %d, want 1 (the finished job)", n)
	}
	if _, err := m.Get(quick.ID); !errors.Is(err, ErrJobUnknown) {
		t.Errorf("aged finished job still present: %v", err)
	}
	if _, err := m.Get(slow.ID); err != nil {
		t.Errorf("running job must never age out: %v", err)
	}
	if n, _ := scope.Metrics().Counter("jobs.aged_out"); n != 1 {
		t.Errorf("jobs.aged_out = %d, want 1", n)
	}

	// Hand the running job off but do not resolve the target: it is
	// finished yet must survive the sweep until the mark releases it.
	m.DrainForHandoff()
	waitDone(t, slow)
	offset.Store(int64(4 * time.Hour))
	if n := m.SweepAged(); n != 0 {
		t.Fatalf("sweep evicted %d handed-off jobs awaiting their target", n)
	}
	m.MarkHandoffTarget(slow.ID, "")
	offset.Store(int64(8 * time.Hour))
	if n := m.SweepAged(); n != 1 {
		t.Errorf("sweep after mark evicted %d, want 1", n)
	}
}

// TestJobSpecIDPreservation: recovered and adopted jobs keep their IDs,
// duplicate live IDs are idempotent, and the ID counter jumps past
// resurrected numeric IDs so fresh submissions can never collide.
func TestJobSpecIDPreservation(t *testing.T) {
	m := NewManager(ManagerConfig{})
	quick := func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		return []byte("ok"), nil
	}
	j, err := m.SubmitJob(JobSpec{ID: "job-7", Op: "project"}, quick)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if j.ID != "job-7" {
		t.Fatalf("ID = %q, want the pinned job-7", j.ID)
	}
	waitDone(t, j)
	dup, err := m.SubmitJob(JobSpec{ID: "job-7", Op: "project"}, quick)
	if err != nil || dup != j {
		t.Errorf("duplicate ID returned %v, %v; want the existing job", dup, err)
	}
	fresh, err := m.Submit("project", quick)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if fresh.ID != "job-8" {
		t.Errorf("fresh ID = %q, want job-8 (counter advanced past job-7)", fresh.ID)
	}
	waitDone(t, fresh)
}

// TestJobFirstAttemptResumesFromSpecCheckpoints: preloaded full checkpoints
// (adopted handoffs, journal recoveries) reach the very first attempt.
func TestJobFirstAttemptResumesFromSpecCheckpoints(t *testing.T) {
	m := NewManager(ManagerConfig{})
	var got atomic.Int64
	j, err := m.SubmitJob(JobSpec{
		Op:          "project",
		Checkpoints: []*ga.Checkpoint{testCkpt(5)},
	}, func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		if len(resume.Checkpoints) == 1 && resume.Checkpoints[0] != nil {
			got.Store(int64(resume.Checkpoints[0].Gen))
		}
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	waitDone(t, j)
	if got.Load() != 5 {
		t.Errorf("first attempt saw checkpoint gen %d, want 5", got.Load())
	}
}

// TestDrainForHandoffCarriesCheckpoints: the handoff ships the newest full
// per-member evolution state alongside the legacy seeds.
func TestDrainForHandoffCarriesCheckpoints(t *testing.T) {
	m := NewManager(ManagerConfig{})
	recorded := make(chan struct{})
	j, err := m.Submit("project", func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		tap.Progress(Snapshot{Member: 0, Generation: 3, BestFitness: 1, Best: []float64{9, 9}})
		tap.Checkpoint(0, testCkpt(3))
		close(recorded)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-recorded
	hands := m.DrainForHandoff()
	if len(hands) != 1 {
		t.Fatalf("DrainForHandoff = %d, want 1", len(hands))
	}
	h := hands[0]
	if len(h.Checkpoints) != 1 || h.Checkpoints[0] == nil || h.Checkpoints[0].Gen != 3 {
		t.Errorf("handoff checkpoints = %+v, want member 0 at gen 3", h.Checkpoints)
	}
	if len(h.Seeds) != 1 || h.Seeds[0][0] != 9 {
		t.Errorf("handoff seeds = %+v, want the newest genome", h.Seeds)
	}
	m.MarkHandoffTarget(j.ID, "")
	waitDone(t, j)
}

// TestManagerJournalLifecycle wires a real journal through the manager: a
// submission and its checkpoints are journalled as they happen, recovery
// mid-run sees the pending job with its newest state, and the terminal
// record retires it.
func TestManagerJournalLifecycle(t *testing.T) {
	jl := openTestJournal(t, t.TempDir(), nil)
	defer jl.Close()
	m := NewManager(ManagerConfig{Journal: jl})
	recorded := make(chan struct{})
	release := make(chan struct{})
	j, err := m.SubmitJob(JobSpec{Op: "project", Group: "g1"}, func(ctx context.Context, resume Resume, tap Tap) ([]byte, error) {
		tap.Checkpoint(1, testCkpt(2))
		close(recorded)
		<-release
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	<-recorded

	pending, err := jl.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != j.ID || pending[0].Group != "g1" {
		t.Fatalf("mid-run recovery = %+v, want the live job", pending)
	}
	if len(pending[0].Checkpoints) != 2 || pending[0].Checkpoints[1] == nil || pending[0].Checkpoints[1].Gen != 2 {
		t.Errorf("recovered checkpoints = %+v, want member 1 at gen 2", pending[0].Checkpoints)
	}

	close(release)
	waitDone(t, j)
	after, err := jl.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Errorf("post-done recovery = %+v, want none", after)
	}
}
