package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeGossipNet scripts probe outcomes per target address and records the
// probes the detector issued, so each test is a pure table of rounds.
type fakeGossipNet struct {
	down     map[string]bool
	probes   []string        // "direct:addr" / "indirect:via>target"
	linkDown map[string]bool // direct-path-only failures (indirect still works)
}

func (f *fakeGossipNet) probe(_ context.Context, addr string) error {
	f.probes = append(f.probes, "direct:"+addr)
	if f.down[addr] || f.linkDown[addr] {
		return errors.New("unreachable")
	}
	return nil
}

func (f *fakeGossipNet) indirect(_ context.Context, via, target string) error {
	f.probes = append(f.probes, fmt.Sprintf("indirect:%s>%s", via, target))
	if f.down[via] || f.down[target] {
		return errors.New("unreachable")
	}
	return nil
}

// fakeClock is a settable protocol clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestGossip(t *testing.T, net *fakeGossipNet, clock *fakeClock, onChange func([]string)) *Gossip {
	t.Helper()
	return NewGossip(GossipConfig{
		Self:          "self",
		Peers:         []string{"b", "c"},
		ProbeInterval: time.Second,
		SuspectAfter:  3 * time.Second,
		IndirectPeers: 1,
		Now:           clock.now,
		Probe:         net.probe,
		IndirectProbe: net.indirect,
		OnChange:      onChange,
	})
}

// TestGossipStateTransitions walks one peer through the full lifecycle —
// alive → suspect → (still suspect inside the grace window) → dead →
// rejoin — on a fake clock, asserting the state and the alive view at
// every step.
func TestGossipStateTransitions(t *testing.T) {
	net := &fakeGossipNet{down: map[string]bool{}}
	clock := &fakeClock{t: time.Unix(1000, 0)}
	var changes [][]string
	g := newTestGossip(t, net, clock, func(alive []string) {
		changes = append(changes, alive)
	})
	ctx := context.Background()

	if got := g.Alive(); !reflect.DeepEqual(got, []string{"b", "c", "self"}) {
		t.Fatalf("initial alive view = %v", got)
	}

	// Healthy rounds: everyone stays alive, nothing changes.
	g.Tick(ctx) // probes b
	g.Tick(ctx) // probes c
	if len(changes) != 0 {
		t.Fatalf("healthy rounds produced %d membership changes", len(changes))
	}

	// b dies. Its next probe round (direct + indirect both fail) suspects
	// it — but suspicion is not eviction: the alive view is unchanged.
	net.down["b"] = true
	clock.advance(time.Second)
	g.Tick(ctx) // probes b: suspect
	if st := g.State("b"); st != PeerSuspect {
		t.Fatalf("after failed round, state(b) = %v, want suspect", st)
	}
	if got := g.Alive(); !reflect.DeepEqual(got, []string{"b", "c", "self"}) {
		t.Fatalf("suspect peer evicted early: alive = %v", got)
	}
	if len(changes) != 0 {
		t.Fatalf("suspicion alone changed membership: %v", changes)
	}

	// Inside the grace window the suspicion holds but does not kill.
	clock.advance(time.Second)
	g.Tick(ctx) // probes c (healthy)
	if st := g.State("b"); st != PeerSuspect {
		t.Fatalf("inside grace window, state(b) = %v, want suspect", st)
	}

	// Once SuspectAfter has elapsed, the next round declares b dead and the
	// alive view shrinks — exactly one change, delivered via OnChange.
	clock.advance(2 * time.Second)
	g.Tick(ctx)
	if st := g.State("b"); st != PeerDead {
		t.Fatalf("past grace window, state(b) = %v, want dead", st)
	}
	if want := []string{"c", "self"}; !reflect.DeepEqual(g.Alive(), want) {
		t.Fatalf("after death, alive = %v, want %v", g.Alive(), want)
	}
	if len(changes) != 1 || !reflect.DeepEqual(changes[0], []string{"c", "self"}) {
		t.Fatalf("death change stream = %v, want exactly [[c self]]", changes)
	}

	// b restarts. Dead peers stay in the probe rotation, so its next round
	// revives it — one more change, back to the full membership.
	net.down["b"] = false
	for g.State("b") != PeerAlive {
		clock.advance(time.Second)
		g.Tick(ctx)
	}
	if want := []string{"b", "c", "self"}; !reflect.DeepEqual(g.Alive(), want) {
		t.Fatalf("after rejoin, alive = %v, want %v", g.Alive(), want)
	}
	if len(changes) != 2 || !reflect.DeepEqual(changes[1], []string{"b", "c", "self"}) {
		t.Fatalf("rejoin change stream = %v", changes)
	}
}

// TestGossipIndirectProbeRescues proves a broken direct link does not kill
// a healthy peer: the direct probe fails, the indirect relay confirms the
// target is up, and the peer never even turns suspect.
func TestGossipIndirectProbeRescues(t *testing.T) {
	net := &fakeGossipNet{down: map[string]bool{}, linkDown: map[string]bool{"b": true}}
	clock := &fakeClock{t: time.Unix(1000, 0)}
	g := newTestGossip(t, net, clock, func([]string) {
		t.Error("membership changed for a peer reachable indirectly")
	})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		g.Tick(ctx)
		clock.advance(time.Second)
	}
	if st := g.State("b"); st != PeerAlive {
		t.Fatalf("indirectly-confirmed peer state = %v, want alive", st)
	}
	// The detector really did fall back to the relay.
	found := false
	for _, p := range net.probes {
		if p == "indirect:c>b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no indirect probe issued; probes = %v", net.probes)
	}
}

// TestGossipSuspectRecovers proves a transient outage shorter than
// SuspectAfter never reaches the dead state: suspect, then back to alive on
// the next successful probe, with no membership change at any point.
func TestGossipSuspectRecovers(t *testing.T) {
	net := &fakeGossipNet{down: map[string]bool{"b": true}}
	clock := &fakeClock{t: time.Unix(1000, 0)}
	g := newTestGossip(t, net, clock, func(alive []string) {
		t.Errorf("transient outage changed membership: %v", alive)
	})
	ctx := context.Background()
	g.Tick(ctx) // b: suspect
	if st := g.State("b"); st != PeerSuspect {
		t.Fatalf("state(b) = %v, want suspect", st)
	}
	net.down["b"] = false
	clock.advance(time.Second)
	g.Tick(ctx) // c
	clock.advance(time.Second)
	g.Tick(ctx) // b again: alive
	if st := g.State("b"); st != PeerAlive {
		t.Fatalf("recovered peer state = %v, want alive", st)
	}
}

// TestGossipMetrics pins the counter stream for one scripted
// death-and-rejoin: probes every round, one suspicion, one death, one
// rejoin, and a members gauge that tracks the alive view.
func TestGossipMetrics(t *testing.T) {
	scope := obs.New("test")
	defer scope.End()
	net := &fakeGossipNet{down: map[string]bool{"b": true}}
	clock := &fakeClock{t: time.Unix(1000, 0)}
	g := NewGossip(GossipConfig{
		Self: "self", Peers: []string{"b"},
		ProbeInterval: time.Second, SuspectAfter: 2 * time.Second,
		Now: clock.now, Probe: net.probe, IndirectProbe: net.indirect,
		Obs: scope,
	})
	ctx := context.Background()
	g.Tick(ctx) // suspect
	clock.advance(2 * time.Second)
	g.Tick(ctx) // dead
	net.down["b"] = false
	clock.advance(time.Second)
	g.Tick(ctx) // rejoin
	counter := func(name string) int64 {
		v, _ := scope.Metrics().Counter(name)
		return v
	}
	if n := counter("cluster.gossip_suspects"); n != 1 {
		t.Errorf("gossip_suspects = %d, want 1", n)
	}
	if n := counter("cluster.gossip_deaths"); n != 1 {
		t.Errorf("gossip_deaths = %d, want 1", n)
	}
	if n := counter("cluster.gossip_rejoins"); n != 1 {
		t.Errorf("gossip_rejoins = %d, want 1", n)
	}
	if n := counter("cluster.gossip_probes"); n != 3 {
		t.Errorf("gossip_probes = %d, want 3", n)
	}
}
