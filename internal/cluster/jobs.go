package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// JobState is one phase of a job's lifecycle.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	// JobHandedOff marks a job cancelled by a draining replica after its
	// checkpoint was shipped to the group's new owner: finished here,
	// resumed elsewhere.
	JobHandedOff JobState = "handed_off"
)

// Snapshot is one per-generation progress observation from a running GA
// search: which ensemble member, which generation, and the best fitness so
// far. The best genome travels with it internally as the job's resumable
// checkpoint but is not serialised — clients track convergence, the
// manager tracks restart state.
type Snapshot struct {
	Member      int     `json:"member"`
	Generation  int     `json:"generation"`
	BestFitness float64 `json:"best_fitness"`

	// Best is the member's best genome at this generation — the checkpoint
	// material. Must be safe for the manager to retain (cloned by the
	// producer).
	Best []float64 `json:"-"`
}

// Event is one item on a job's subscription stream.
type Event struct {
	// Type is "progress" while the job runs, then exactly one "done".
	Type string `json:"type"`
	// Snapshot accompanies progress events.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// State accompanies the done event.
	State JobState `json:"state,omitempty"`
}

// RunFunc executes one attempt of a job's evaluation. seeds is nil on the
// first attempt and the job's checkpoint genomes on resume attempts;
// progress receives per-generation snapshots and must be called from at
// most the attempt's own goroutines (it is safe for concurrent use). The
// returned bytes are the job's result document, served verbatim.
type RunFunc func(ctx context.Context, seeds [][]float64, progress func(Snapshot)) ([]byte, error)

// ErrJobQueueFull rejects a submission when the backlog is at capacity.
var ErrJobQueueFull = errors.New("cluster: job queue full")

// ErrJobUnknown reports a lookup for an absent (or evicted) job.
var ErrJobUnknown = errors.New("cluster: unknown job")

// ManagerConfig parameterises a job Manager. The zero value is usable.
type ManagerConfig struct {
	// MaxActive bounds concurrently running jobs (default 2 — jobs are
	// whole GA searches, each already internally parallel).
	MaxActive int
	// MaxQueued bounds jobs waiting beyond the running ones (default
	// 4×MaxActive): at most MaxActive+MaxQueued unfinished jobs exist at
	// once. Submissions beyond that fail with ErrJobQueueFull.
	MaxQueued int
	// MaxResumes bounds checkpoint-resume attempts after a failed run
	// (default 1). Each resume re-runs the evaluation with the latest
	// checkpoint genomes as GA seeds.
	MaxResumes int
	// Retain bounds finished jobs kept for polling (default 64; oldest
	// finished evicted first).
	Retain int
	// HistoryCap bounds retained progress snapshots per job (default 256,
	// oldest dropped). The checkpoint always reflects the newest snapshot
	// per member regardless of history eviction.
	HistoryCap int
	// Timeout bounds one job end to end, across resume attempts
	// (default 30m).
	Timeout time.Duration
	// Obs receives jobs.active / jobs.queued gauges and jobs.completed /
	// jobs.failed / jobs.resumed counters. nil disables metrics.
	Obs *obs.Scope
}

// Manager owns the replica's async jobs: bounded admission, background
// execution with panic containment, per-generation progress fan-out, and
// checkpoint resume built on the GA's warm-start seeds.
type Manager struct {
	cfg ManagerConfig
	obs *obs.Scope

	sem     chan struct{}
	queued  atomic.Int64
	active  atomic.Int64
	nextID  atomic.Int64
	closing atomic.Bool

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for eviction
}

// NewManager builds a Manager from cfg, applying defaults.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.MaxActive
	}
	if cfg.MaxResumes < 0 {
		cfg.MaxResumes = 0
	} else if cfg.MaxResumes == 0 {
		cfg.MaxResumes = 1
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Minute
	}
	return &Manager{
		cfg:  cfg,
		obs:  cfg.Obs,
		sem:  make(chan struct{}, cfg.MaxActive),
		jobs: map[string]*Job{},
	}
}

// Job is one asynchronous evaluation. All fields are guarded by mu; read
// through Status / WaitDone / Subscribe.
type Job struct {
	ID string
	Op string
	// Group is the job's (base, target) routing key and Payload its
	// original submission body — together the material a draining replica
	// ships so the group's new owner can resubmit the job verbatim.
	Group   string
	Payload []byte

	mu         sync.Mutex
	state      JobState
	history    []Snapshot
	snapshots  int               // total observed, including evicted
	checkpoint map[int][]float64 // member → newest best genome
	preSeeded  bool              // checkpoint preloaded at submit (adopted handoff)
	handedOff  bool              // drained: finish as JobHandedOff, never resume here
	handoffTo  string            // replica the checkpoint was shipped to
	cancel     context.CancelFunc
	attempts   int
	resumed    bool
	result     []byte
	errMsg     string
	done       chan struct{}
	subs       map[int]chan Event
	nextSub    int
}

// JobStatus is the JSON-ready view of a job, served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string   `json:"id"`
	Op       string   `json:"op"`
	State    JobState `json:"state"`
	Attempts int      `json:"attempts"`
	Resumed  bool     `json:"resumed,omitempty"`
	// Snapshots counts every progress observation; Progress is the
	// retained tail.
	Snapshots int        `json:"snapshots"`
	Progress  []Snapshot `json:"progress,omitempty"`
	Error     string     `json:"error,omitempty"`
	// HasResult reports a retrievable result document (see the manager's
	// Result accessor); the document itself is served by the jobs API.
	HasResult bool `json:"has_result"`
	// HandoffTarget names the replica a handed-off job's checkpoint was
	// shipped to — the place to poll for the resumed search.
	HandoffTarget string `json:"handoff_target,omitempty"`
}

// JobSpec describes one submission beyond its op: the routing group and
// original payload (handoff material), and optional preloaded checkpoint
// seeds — an adopted handoff resumes from them on its very first attempt
// instead of restarting the search.
type JobSpec struct {
	Op      string
	Group   string
	Payload []byte
	Seeds   [][]float64
}

// Submit enqueues one evaluation and returns its job immediately. The
// evaluation runs in the background: queued until a slot frees, resumed
// from its checkpoint on failure, finished exactly once.
func (m *Manager) Submit(op string, run RunFunc) (*Job, error) {
	return m.SubmitJob(JobSpec{Op: op}, run)
}

// SubmitJob is Submit with full job metadata (see JobSpec).
func (m *Manager) SubmitJob(spec JobSpec, run RunFunc) (*Job, error) {
	if m.closing.Load() {
		return nil, ErrJobQueueFull
	}
	if m.queued.Add(1) > int64(m.cfg.MaxQueued+m.cfg.MaxActive) {
		m.queued.Add(-1)
		return nil, ErrJobQueueFull
	}
	j := &Job{
		ID:         fmt.Sprintf("job-%d", m.nextID.Add(1)),
		Op:         spec.Op,
		Group:      spec.Group,
		Payload:    spec.Payload,
		state:      JobQueued,
		checkpoint: map[int][]float64{},
		done:       make(chan struct{}),
		subs:       map[int]chan Event{},
	}
	for i, s := range spec.Seeds {
		if len(s) > 0 {
			j.checkpoint[i] = append([]float64(nil), s...)
			j.preSeeded = true
		}
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.evictLocked()
	m.mu.Unlock()
	m.obs.Gauge("jobs.queued", float64(m.queued.Load()))

	go m.execute(j, run)
	return j, nil
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Running or queued jobs are never evicted.
func (m *Manager) evictLocked() {
	for len(m.order) > m.cfg.Retain {
		evicted := false
		for i, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			finished := j.state == JobDone || j.state == JobFailed || j.state == JobHandedOff
			j.mu.Unlock()
			if finished {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the backlog bound catch up
		}
	}
}

// execute runs one job to completion: take a slot, attempt the evaluation,
// resume from the checkpoint on failure, publish the outcome.
func (m *Manager) execute(j *Job, run RunFunc) {
	// The backlog counter decrements only when the job finishes, so the
	// admission bound (MaxActive+MaxQueued unfinished jobs) is exact — a
	// submission can never sneak past it by racing a slot acquisition.
	defer func() {
		m.queued.Add(-1)
		m.obs.Gauge("jobs.queued", float64(m.queued.Load()))
	}()
	m.sem <- struct{}{}
	defer func() { <-m.sem }()
	m.obs.Gauge("jobs.active", float64(m.active.Add(1)))
	defer func() { m.obs.Gauge("jobs.active", float64(m.active.Add(-1))) }()

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	defer cancel()

	j.mu.Lock()
	if j.handedOff {
		// Drained while still queued: the checkpoint (empty or preloaded)
		// has been shipped; never start the attempt here.
		j.mu.Unlock()
		m.finish(j, nil, context.Canceled)
		return
	}
	j.cancel = cancel
	j.state = JobRunning
	preSeeded := j.preSeeded
	j.mu.Unlock()

	progress := func(s Snapshot) { m.record(j, s) }
	var result []byte
	var err error
	for attempt := 0; ; attempt++ {
		var seeds [][]float64
		if attempt > 0 || preSeeded {
			// Resume attempts — and adopted handoffs on their first
			// attempt — search from the newest checkpoint genomes.
			seeds = j.checkpointSeeds()
		}
		j.mu.Lock()
		j.attempts = attempt + 1
		if attempt > 0 {
			j.resumed = true
		}
		j.mu.Unlock()
		result, err = m.attempt(ctx, run, seeds, progress)
		if err == nil || attempt >= m.cfg.MaxResumes || ctx.Err() != nil || j.isHandedOff() {
			break
		}
		m.obs.Count("jobs.resumed", 1)
	}
	m.finish(j, result, err)
}

// isHandedOff reports whether the job was drained for handoff.
func (j *Job) isHandedOff() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.handedOff
}

// finish publishes a job's terminal state and releases every subscriber.
func (m *Manager) finish(j *Job, result []byte, err error) {
	j.mu.Lock()
	switch {
	case j.handedOff:
		// The handoff wins even over a result that raced the cancellation:
		// the new owner recomputes deterministically, and two authorities
		// for one job would be worse than none.
		j.state = JobHandedOff
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
	default:
		j.state = JobDone
		j.result = result
	}
	// All subscriber sends and closes happen under j.mu (non-blocking on
	// buffered channels), so a concurrent Subscribe can never observe a
	// half-closed stream.
	state := j.state
	done := Event{Type: "done", State: state}
	for _, ch := range j.subs {
		// A full channel is a slow consumer; it gets the done event
		// best-effort before close.
		select {
		case ch <- done:
		default:
		}
		close(ch)
	}
	j.subs = map[int]chan Event{}
	j.mu.Unlock()

	switch state {
	case JobHandedOff:
		m.obs.Count("jobs.handed_off", 1)
	case JobFailed:
		m.obs.Count("jobs.failed", 1)
	default:
		m.obs.Count("jobs.completed", 1)
	}
	close(j.done)
}

// attempt runs one evaluation attempt with panic containment: a panicking
// worker becomes a failed attempt — and therefore a checkpoint resume —
// not a dead manager goroutine.
func (m *Manager) attempt(ctx context.Context, run RunFunc, seeds [][]float64, progress func(Snapshot)) (result []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			result, err = nil, fmt.Errorf("cluster: job worker panicked: %v", v)
		}
	}()
	return run(ctx, seeds, progress)
}

// record stores one progress snapshot: history tail, checkpoint update,
// live fan-out.
func (m *Manager) record(j *Job, s Snapshot) {
	j.mu.Lock()
	j.snapshots++
	j.history = append(j.history, s)
	if len(j.history) > m.cfg.HistoryCap {
		j.history = j.history[len(j.history)-m.cfg.HistoryCap:]
	}
	if len(s.Best) > 0 {
		j.checkpoint[s.Member] = s.Best
	}
	snap := s
	ev := Event{Type: "progress", Snapshot: &snap}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the search
		}
	}
	j.mu.Unlock()
}

// checkpointSeeds flattens the newest per-member best genomes, in member
// order — the ga.Config.Seeds payload for a resume attempt.
func (j *Job) checkpointSeeds() [][]float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpointSeedsLocked()
}

func (j *Job) checkpointSeedsLocked() [][]float64 {
	members := make([]int, 0, len(j.checkpoint))
	for m := range j.checkpoint {
		members = append(members, m)
	}
	// Insertion sort: member counts are tiny (the GA ensemble is 3).
	for i := 1; i < len(members); i++ {
		for k := i; k > 0 && members[k] < members[k-1]; k-- {
			members[k], members[k-1] = members[k-1], members[k]
		}
	}
	seeds := make([][]float64, 0, len(members))
	for _, m := range members {
		seeds = append(seeds, j.checkpoint[m])
	}
	return seeds
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrJobUnknown
	}
	return j, nil
}

// Status returns the JSON-ready view of a job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Op: j.Op, State: j.state,
		Attempts: j.attempts, Resumed: j.resumed,
		Snapshots: j.snapshots, Error: j.errMsg,
		HasResult:     j.result != nil,
		HandoffTarget: j.handoffTo,
	}
	st.Progress = append(st.Progress, j.history...)
	return st
}

// Result returns the finished result document, or false while the job has
// not succeeded.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil, false
	}
	return j.result, true
}

// Done returns a channel closed when the job finishes (either way).
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe attaches a live event stream: the retained history replays
// first (as progress events), then live snapshots, then exactly one done
// event before close — unless the job already finished, in which case the
// stream is history + done. cancel detaches early (the channel is closed).
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	replay := append([]Snapshot(nil), j.history...)
	finished := j.state == JobDone || j.state == JobFailed || j.state == JobHandedOff
	ch := make(chan Event, len(replay)+64)
	for i := range replay {
		ch <- Event{Type: "progress", Snapshot: &replay[i]}
	}
	if finished {
		ch <- Event{Type: "done", State: j.state}
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// Close stops accepting submissions. Running jobs finish on their own.
func (m *Manager) Close() { m.closing.Store(true) }

// Handoff is one drained job's transferable state: everything the group's
// new owner needs to resubmit the search and resume it from the newest
// checkpoint instead of generation zero.
type Handoff struct {
	ID      string      `json:"id"`
	Op      string      `json:"op"`
	Group   string      `json:"group,omitempty"`
	Payload []byte      `json:"payload,omitempty"`
	Seeds   [][]float64 `json:"seeds,omitempty"`
}

// DrainForHandoff prepares the manager for shutdown: submissions stop,
// every unfinished job is cancelled and marked handed off, and its
// transferable state — op, original payload, newest checkpoint seeds — is
// returned for the serving layer to ship to each group's new owner.
// Finished jobs are untouched; calling twice returns nothing the second
// time.
func (m *Manager) DrainForHandoff() []Handoff {
	m.closing.Store(true)
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	var out []Handoff
	for _, id := range ids {
		m.mu.Lock()
		j := m.jobs[id]
		m.mu.Unlock()
		if j == nil {
			continue
		}
		j.mu.Lock()
		if j.handedOff || (j.state != JobQueued && j.state != JobRunning) {
			j.mu.Unlock()
			continue
		}
		j.handedOff = true
		cancel := j.cancel
		out = append(out, Handoff{
			ID: j.ID, Op: j.Op, Group: j.Group,
			Payload: append([]byte(nil), j.Payload...),
			Seeds:   j.checkpointSeedsLocked(),
		})
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	return out
}

// MarkHandoffTarget records where a drained job's checkpoint was shipped,
// for the status document's handoff_target field.
func (m *Manager) MarkHandoffTarget(id, target string) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return
	}
	j.mu.Lock()
	j.handoffTo = target
	j.mu.Unlock()
}
