package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ga"
	"repro/internal/obs"
)

// JobState is one phase of a job's lifecycle.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	// JobHandedOff marks a job cancelled by a draining replica after its
	// checkpoint was shipped to the group's new owner: finished here,
	// resumed elsewhere.
	JobHandedOff JobState = "handed_off"
)

// Snapshot is one per-generation progress observation from a running GA
// search: which ensemble member, which generation, and the best fitness so
// far. The best genome travels with it internally as the job's resumable
// checkpoint but is not serialised — clients track convergence, the
// manager tracks restart state.
type Snapshot struct {
	Member      int     `json:"member"`
	Generation  int     `json:"generation"`
	BestFitness float64 `json:"best_fitness"`

	// Best is the member's best genome at this generation — the checkpoint
	// material. Must be safe for the manager to retain (cloned by the
	// producer).
	Best []float64 `json:"-"`
}

// Event is one item on a job's subscription stream.
type Event struct {
	// Type is "progress" while the job runs, then exactly one terminal
	// event: "done" for done/failed jobs, "handed_off" for jobs drained to
	// another replica.
	Type string `json:"type"`
	// Snapshot accompanies progress events.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// State accompanies the terminal event.
	State JobState `json:"state,omitempty"`
	// Target accompanies handed_off events: the URL of the replica the
	// job's checkpoint was shipped to, where the resumed search can be
	// followed. Empty when the drain found no live peer to ship to.
	Target string `json:"target,omitempty"`
}

// Resume carries a resumed attempt's starting state.
type Resume struct {
	// Seeds are the newest per-member best genomes, in member order — the
	// legacy warm-resume material (ga Seeds path; approximate, recorded as
	// a GAResume quality defect downstream).
	Seeds [][]float64
	// Checkpoints are the newest full per-member evolution states, indexed
	// by ensemble member (nil members start cold) — the exact-resume
	// material. When non-empty they take precedence over Seeds downstream
	// and reproduce the uninterrupted search bit for bit.
	Checkpoints []*ga.Checkpoint
}

// Tap receives a running attempt's observations. Both callbacks are safe
// for concurrent use and strictly passive.
type Tap struct {
	// Progress receives one snapshot per evolved GA generation per member.
	Progress func(Snapshot)
	// Checkpoint receives each member's full evolution state per
	// generation — the durable-journal material for kill -9 recovery.
	Checkpoint func(member int, cp *ga.Checkpoint)
}

// RunFunc executes one attempt of a job's evaluation. resume is zero on a
// cold first attempt and carries the job's checkpoint state on resume
// attempts (and on the first attempt of adopted or recovered jobs); tap's
// callbacks must be called from at most the attempt's own goroutines. The
// returned bytes are the job's result document, served verbatim.
type RunFunc func(ctx context.Context, resume Resume, tap Tap) ([]byte, error)

// ErrJobQueueFull rejects a submission when the backlog is at capacity.
var ErrJobQueueFull = errors.New("cluster: job queue full")

// ErrJobUnknown reports a lookup for an absent (or evicted) job.
var ErrJobUnknown = errors.New("cluster: unknown job")

// ManagerConfig parameterises a job Manager. The zero value is usable.
type ManagerConfig struct {
	// MaxActive bounds concurrently running jobs (default 2 — jobs are
	// whole GA searches, each already internally parallel).
	MaxActive int
	// MaxQueued bounds jobs waiting beyond the running ones (default
	// 4×MaxActive): at most MaxActive+MaxQueued unfinished jobs exist at
	// once. Submissions beyond that fail with ErrJobQueueFull.
	MaxQueued int
	// MaxResumes bounds checkpoint-resume attempts after a failed run
	// (default 1). Each resume re-runs the evaluation with the latest
	// checkpoint genomes as GA seeds.
	MaxResumes int
	// Retain bounds finished jobs kept for polling (default 64; oldest
	// finished evicted first).
	Retain int
	// RetainAge additionally bounds how long a finished job is kept: a
	// background janitor evicts finished jobs older than this. 0 — the
	// default — disables age-based eviction, keeping the pure count-based
	// retention behaviour.
	RetainAge time.Duration
	// Journal, when non-nil, receives one durable record per submission,
	// captured checkpoint, and terminal state, so a restarted process can
	// resurrect unfinished jobs (see Journal). nil disables journalling.
	Journal *Journal
	// HistoryCap bounds retained progress snapshots per job (default 256,
	// oldest dropped). The checkpoint always reflects the newest snapshot
	// per member regardless of history eviction.
	HistoryCap int
	// Timeout bounds one job end to end, across resume attempts
	// (default 30m).
	Timeout time.Duration
	// Obs receives jobs.active / jobs.queued gauges and jobs.completed /
	// jobs.failed / jobs.resumed counters. nil disables metrics.
	Obs *obs.Scope
}

// Manager owns the replica's async jobs: bounded admission, background
// execution with panic containment, per-generation progress fan-out, and
// checkpoint resume built on the GA's warm-start seeds.
type Manager struct {
	cfg ManagerConfig
	obs *obs.Scope

	sem     chan struct{}
	queued  atomic.Int64
	active  atomic.Int64
	nextID  atomic.Int64
	closing atomic.Bool

	// now is the clock (tests override); janitorStop ends the RetainAge
	// sweeper.
	now         func() time.Time
	janitorStop chan struct{}
	stopOnce    sync.Once

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for eviction
}

// NewManager builds a Manager from cfg, applying defaults.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.MaxActive
	}
	if cfg.MaxResumes < 0 {
		cfg.MaxResumes = 0
	} else if cfg.MaxResumes == 0 {
		cfg.MaxResumes = 1
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Minute
	}
	m := &Manager{
		cfg:         cfg,
		obs:         cfg.Obs,
		sem:         make(chan struct{}, cfg.MaxActive),
		jobs:        map[string]*Job{},
		now:         time.Now,
		janitorStop: make(chan struct{}),
	}
	if cfg.RetainAge > 0 {
		interval := cfg.RetainAge / 4
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
		go m.janitor(interval)
	}
	return m
}

// janitor periodically evicts finished jobs past RetainAge until Close.
func (m *Manager) janitor(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.SweepAged()
		}
	}
}

// SweepAged evicts finished jobs whose terminal state is older than
// RetainAge, returning how many were dropped (counted as jobs.aged_out).
// Running and queued jobs are never touched, nor are handed-off jobs still
// waiting for their forwarding address.
func (m *Manager) SweepAged() int {
	if m.cfg.RetainAge <= 0 {
		return 0
	}
	cutoff := m.now().Add(-m.cfg.RetainAge)
	m.mu.Lock()
	var evicted int
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		old := j.evictableLocked() && j.finishedAt.Before(cutoff)
		j.mu.Unlock()
		if old {
			delete(m.jobs, id)
			evicted++
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
	m.mu.Unlock()
	if evicted > 0 {
		m.obs.Count("jobs.aged_out", int64(evicted))
	}
	return evicted
}

// Job is one asynchronous evaluation. All fields are guarded by mu; read
// through Status / WaitDone / Subscribe.
type Job struct {
	ID string
	Op string
	// Group is the job's (base, target) routing key and Payload its
	// original submission body — together the material a draining replica
	// ships so the group's new owner can resubmit the job verbatim.
	Group   string
	Payload []byte

	mu         sync.Mutex
	state      JobState
	history    []Snapshot
	snapshots  int               // total observed, including evicted
	checkpoint map[int][]float64 // member → newest best genome
	ckpts      map[int]*ga.Checkpoint
	preSeeded  bool   // checkpoint preloaded at submit (adopted handoff)
	handedOff  bool   // drained: finish as JobHandedOff, never resume here
	handoffTo  string // replica the checkpoint was shipped to
	// handoffMarked reports the drain decided the forwarding address (it
	// may be empty — no live peer); until then a handed-off job's
	// subscribers stay attached, waiting for the terminal handed_off event
	// to carry the target.
	handoffMarked bool
	terminalSent  bool // the single terminal event went out, streams closed
	finished      bool
	finishedAt    time.Time
	cancel        context.CancelFunc
	attempts      int
	resumed       bool
	result        []byte
	errMsg        string
	done          chan struct{}
	subs          map[int]chan Event
	nextSub       int
}

// evictableLocked reports the job can leave the retention window: it is
// finished, and — if handed off — its terminal event has been released.
func (j *Job) evictableLocked() bool {
	return j.finished && (j.state != JobHandedOff || j.handoffMarked)
}

// JobStatus is the JSON-ready view of a job, served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string   `json:"id"`
	Op       string   `json:"op"`
	State    JobState `json:"state"`
	Attempts int      `json:"attempts"`
	Resumed  bool     `json:"resumed,omitempty"`
	// Snapshots counts every progress observation; Progress is the
	// retained tail.
	Snapshots int        `json:"snapshots"`
	Progress  []Snapshot `json:"progress,omitempty"`
	Error     string     `json:"error,omitempty"`
	// HasResult reports a retrievable result document (see the manager's
	// Result accessor); the document itself is served by the jobs API.
	HasResult bool `json:"has_result"`
	// HandoffTarget names the replica a handed-off job's checkpoint was
	// shipped to — the place to poll for the resumed search.
	HandoffTarget string `json:"handoff_target,omitempty"`
}

// JobSpec describes one submission beyond its op: the routing group and
// original payload (handoff material), and optional preloaded resume state
// — an adopted handoff or a journal-recovered job resumes from it on its
// very first attempt instead of restarting the search.
type JobSpec struct {
	// ID, when non-empty, pins the job's identity — recovered and adopted
	// jobs keep their original IDs so clients' job URLs survive. Empty for
	// fresh submissions (the manager assigns job-N).
	ID      string
	Op      string
	Group   string
	Payload []byte
	// Seeds are newest best genomes per member (approximate resume).
	Seeds [][]float64
	// Checkpoints are full per-member evolution states (exact resume),
	// indexed by member; they take precedence over Seeds downstream.
	Checkpoints []*ga.Checkpoint
}

// Submit enqueues one evaluation and returns its job immediately. The
// evaluation runs in the background: queued until a slot frees, resumed
// from its checkpoint on failure, finished exactly once.
func (m *Manager) Submit(op string, run RunFunc) (*Job, error) {
	return m.SubmitJob(JobSpec{Op: op}, run)
}

// SubmitJob is Submit with full job metadata (see JobSpec). Submitting a
// spec whose ID is already live returns the existing job unchanged — the
// idempotence journal recovery leans on.
func (m *Manager) SubmitJob(spec JobSpec, run RunFunc) (*Job, error) {
	if m.closing.Load() {
		return nil, ErrJobQueueFull
	}
	if m.queued.Add(1) > int64(m.cfg.MaxQueued+m.cfg.MaxActive) {
		m.queued.Add(-1)
		return nil, ErrJobQueueFull
	}
	id := spec.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", m.nextID.Add(1))
	} else if n, ok := numericJobID(id); ok {
		// Keep the counter ahead of recovered IDs so fresh submissions
		// can never collide with a resurrected job.
		for {
			cur := m.nextID.Load()
			if cur >= n || m.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	j := &Job{
		ID:         id,
		Op:         spec.Op,
		Group:      spec.Group,
		Payload:    spec.Payload,
		state:      JobQueued,
		checkpoint: map[int][]float64{},
		ckpts:      map[int]*ga.Checkpoint{},
		done:       make(chan struct{}),
		subs:       map[int]chan Event{},
	}
	for i, s := range spec.Seeds {
		if len(s) > 0 {
			j.checkpoint[i] = append([]float64(nil), s...)
			j.preSeeded = true
		}
	}
	for i, cp := range spec.Checkpoints {
		if cp != nil {
			j.ckpts[i] = cp
			j.preSeeded = true
		}
	}
	m.mu.Lock()
	if existing, ok := m.jobs[id]; ok {
		m.mu.Unlock()
		m.queued.Add(-1)
		return existing, nil
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.evictLocked()
	m.mu.Unlock()
	m.obs.Gauge("jobs.queued", float64(m.queued.Load()))
	m.cfg.Journal.RecordSubmit(JobSpec{
		ID: j.ID, Op: spec.Op, Group: spec.Group,
		Payload: spec.Payload, Seeds: spec.Seeds, Checkpoints: spec.Checkpoints,
	})

	go m.execute(j, run)
	return j, nil
}

// numericJobID extracts N from a manager-assigned "job-N" identifier.
func numericJobID(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	return n, err == nil && n > 0
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Running or queued jobs are never evicted.
func (m *Manager) evictLocked() {
	for len(m.order) > m.cfg.Retain {
		evicted := false
		for i, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			evictable := j.evictableLocked()
			j.mu.Unlock()
			if evictable {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the backlog bound catch up
		}
	}
}

// execute runs one job to completion: take a slot, attempt the evaluation,
// resume from the checkpoint on failure, publish the outcome.
func (m *Manager) execute(j *Job, run RunFunc) {
	// The backlog counter decrements only when the job finishes, so the
	// admission bound (MaxActive+MaxQueued unfinished jobs) is exact — a
	// submission can never sneak past it by racing a slot acquisition.
	defer func() {
		m.queued.Add(-1)
		m.obs.Gauge("jobs.queued", float64(m.queued.Load()))
	}()
	m.sem <- struct{}{}
	defer func() { <-m.sem }()
	m.obs.Gauge("jobs.active", float64(m.active.Add(1)))
	defer func() { m.obs.Gauge("jobs.active", float64(m.active.Add(-1))) }()

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	defer cancel()

	j.mu.Lock()
	if j.handedOff {
		// Drained while still queued: the checkpoint (empty or preloaded)
		// has been shipped; never start the attempt here.
		j.mu.Unlock()
		m.finish(j, nil, context.Canceled)
		return
	}
	j.cancel = cancel
	j.state = JobRunning
	preSeeded := j.preSeeded
	j.mu.Unlock()

	tap := Tap{
		Progress:   func(s Snapshot) { m.record(j, s) },
		Checkpoint: func(member int, cp *ga.Checkpoint) { m.recordCheckpoint(j, member, cp) },
	}
	var result []byte
	var err error
	for attempt := 0; ; attempt++ {
		var resume Resume
		if attempt > 0 || preSeeded {
			// Resume attempts — and adopted or recovered jobs on their
			// first attempt — search from the newest checkpoint state.
			resume = j.resumeState()
		}
		j.mu.Lock()
		j.attempts = attempt + 1
		if attempt > 0 {
			j.resumed = true
		}
		j.mu.Unlock()
		result, err = m.attempt(ctx, run, resume, tap)
		if err == nil || attempt >= m.cfg.MaxResumes || ctx.Err() != nil || j.isHandedOff() {
			break
		}
		m.obs.Count("jobs.resumed", 1)
	}
	m.finish(j, result, err)
}

// isHandedOff reports whether the job was drained for handoff.
func (j *Job) isHandedOff() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.handedOff
}

// finish publishes a job's terminal state and releases every subscriber —
// except that a handed-off job whose forwarding address is not yet decided
// keeps its subscribers attached: the terminal handed_off event must carry
// the target URL, so it waits for MarkHandoffTarget.
func (m *Manager) finish(j *Job, result []byte, err error) {
	j.mu.Lock()
	switch {
	case j.handedOff:
		// The handoff wins even over a result that raced the cancellation:
		// the new owner recomputes deterministically, and two authorities
		// for one job would be worse than none.
		j.state = JobHandedOff
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
	default:
		j.state = JobDone
		j.result = result
	}
	j.finished = true
	j.finishedAt = m.now()
	state := j.state
	if state != JobHandedOff || j.handoffMarked {
		j.emitTerminalLocked()
	}
	j.mu.Unlock()

	switch state {
	case JobHandedOff:
		m.obs.Count("jobs.handed_off", 1)
	case JobFailed:
		m.obs.Count("jobs.failed", 1)
	default:
		m.obs.Count("jobs.completed", 1)
	}
	m.cfg.Journal.RecordDone(j.ID, state)
	close(j.done)
}

// emitTerminalLocked sends the stream's single terminal event and closes
// every subscriber. All subscriber sends and closes happen under j.mu
// (non-blocking on buffered channels), so a concurrent Subscribe can never
// observe a half-closed stream. Idempotent; callers hold j.mu.
func (j *Job) emitTerminalLocked() {
	if j.terminalSent {
		return
	}
	j.terminalSent = true
	ev := j.terminalEventLocked()
	for _, ch := range j.subs {
		// A full channel is a slow consumer; it gets the terminal event
		// best-effort before close.
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	j.subs = map[int]chan Event{}
}

// terminalEventLocked builds the stream's terminal event for the job's
// current state. Callers hold j.mu.
func (j *Job) terminalEventLocked() Event {
	if j.state == JobHandedOff {
		return Event{Type: "handed_off", State: JobHandedOff, Target: j.handoffTo}
	}
	return Event{Type: "done", State: j.state}
}

// attempt runs one evaluation attempt with panic containment: a panicking
// worker becomes a failed attempt — and therefore a checkpoint resume —
// not a dead manager goroutine.
func (m *Manager) attempt(ctx context.Context, run RunFunc, resume Resume, tap Tap) (result []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			result, err = nil, fmt.Errorf("cluster: job worker panicked: %v", v)
		}
	}()
	return run(ctx, resume, tap)
}

// record stores one progress snapshot: history tail, checkpoint update,
// live fan-out.
func (m *Manager) record(j *Job, s Snapshot) {
	j.mu.Lock()
	j.snapshots++
	j.history = append(j.history, s)
	if len(j.history) > m.cfg.HistoryCap {
		j.history = j.history[len(j.history)-m.cfg.HistoryCap:]
	}
	if len(s.Best) > 0 {
		j.checkpoint[s.Member] = s.Best
	}
	snap := s
	ev := Event{Type: "progress", Snapshot: &snap}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the search
		}
	}
	j.mu.Unlock()
}

// recordCheckpoint stores one member's full evolution state (newest wins)
// and journals it. Checkpoints are immutable once produced (the GA clones
// them), so retaining the pointer is safe.
func (m *Manager) recordCheckpoint(j *Job, member int, cp *ga.Checkpoint) {
	if cp == nil || member < 0 {
		return
	}
	j.mu.Lock()
	j.ckpts[member] = cp
	j.mu.Unlock()
	m.cfg.Journal.RecordCheckpoint(j.ID, member, cp)
}

// resumeState assembles a resume attempt's starting state: the full
// checkpoints when the job has them, the legacy seeds always.
func (j *Job) resumeState() Resume {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Resume{Seeds: j.checkpointSeedsLocked(), Checkpoints: j.checkpointStatesLocked()}
}

// checkpointStatesLocked densifies the per-member checkpoints by member
// index (nil members cold); nil when the job has none.
func (j *Job) checkpointStatesLocked() []*ga.Checkpoint {
	if len(j.ckpts) == 0 {
		return nil
	}
	maxMember := 0
	for m := range j.ckpts {
		if m > maxMember {
			maxMember = m
		}
	}
	out := make([]*ga.Checkpoint, maxMember+1)
	for m, cp := range j.ckpts {
		out[m] = cp
	}
	return out
}

// checkpointSeedsLocked flattens the newest per-member best genomes, in
// member order — the ga.Config.Seeds payload for a resume attempt. Callers
// hold j.mu.
func (j *Job) checkpointSeedsLocked() [][]float64 {
	members := make([]int, 0, len(j.checkpoint))
	for m := range j.checkpoint {
		members = append(members, m)
	}
	// Insertion sort: member counts are tiny (the GA ensemble is 3).
	for i := 1; i < len(members); i++ {
		for k := i; k > 0 && members[k] < members[k-1]; k-- {
			members[k], members[k-1] = members[k-1], members[k]
		}
	}
	seeds := make([][]float64, 0, len(members))
	for _, m := range members {
		seeds = append(seeds, j.checkpoint[m])
	}
	return seeds
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrJobUnknown
	}
	return j, nil
}

// Status returns the JSON-ready view of a job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Op: j.Op, State: j.state,
		Attempts: j.attempts, Resumed: j.resumed,
		Snapshots: j.snapshots, Error: j.errMsg,
		HasResult:     j.result != nil,
		HandoffTarget: j.handoffTo,
	}
	st.Progress = append(st.Progress, j.history...)
	return st
}

// Result returns the finished result document, or false while the job has
// not succeeded.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil, false
	}
	return j.result, true
}

// Done returns a channel closed when the job finishes (either way).
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe attaches a live event stream: the retained history replays
// first (as progress events), then live snapshots, then exactly one
// terminal event ("done", or "handed_off" with the forwarding target)
// before close — unless the job already finished, in which case the stream
// is history + terminal. A handed-off job whose forwarding address is
// still being decided attaches live and gets the terminal event when the
// drain resolves it. cancel detaches early (the channel is closed).
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	replay := append([]Snapshot(nil), j.history...)
	released := j.finished && (j.state != JobHandedOff || j.handoffMarked)
	ch := make(chan Event, len(replay)+64)
	for i := range replay {
		ch <- Event{Type: "progress", Snapshot: &replay[i]}
	}
	if released {
		ch <- j.terminalEventLocked()
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// Close stops accepting submissions and the retention janitor. Running
// jobs finish on their own.
func (m *Manager) Close() {
	m.closing.Store(true)
	m.stopOnce.Do(func() { close(m.janitorStop) })
}

// Handoff is one drained job's transferable state: everything the group's
// new owner needs to resubmit the search and resume it from the newest
// checkpoint instead of generation zero. Checkpoints carry the exact
// evolution state when the search produced it; Seeds remain for peers that
// only support the approximate path.
type Handoff struct {
	ID          string           `json:"id"`
	Op          string           `json:"op"`
	Group       string           `json:"group,omitempty"`
	Payload     []byte           `json:"payload,omitempty"`
	Seeds       [][]float64      `json:"seeds,omitempty"`
	Checkpoints []*ga.Checkpoint `json:"checkpoints,omitempty"`
}

// DrainForHandoff prepares the manager for shutdown: submissions stop,
// every unfinished job is cancelled and marked handed off, and its
// transferable state — op, original payload, newest checkpoint seeds — is
// returned for the serving layer to ship to each group's new owner.
// Finished jobs are untouched; calling twice returns nothing the second
// time.
func (m *Manager) DrainForHandoff() []Handoff {
	m.closing.Store(true)
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	var out []Handoff
	for _, id := range ids {
		m.mu.Lock()
		j := m.jobs[id]
		m.mu.Unlock()
		if j == nil {
			continue
		}
		j.mu.Lock()
		if j.handedOff || (j.state != JobQueued && j.state != JobRunning) {
			j.mu.Unlock()
			continue
		}
		j.handedOff = true
		cancel := j.cancel
		out = append(out, Handoff{
			ID: j.ID, Op: j.Op, Group: j.Group,
			Payload:     append([]byte(nil), j.Payload...),
			Seeds:       j.checkpointSeedsLocked(),
			Checkpoints: j.checkpointStatesLocked(),
		})
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	return out
}

// MarkHandoffTarget records where a drained job's checkpoint was shipped —
// for the status document's handoff_target field — and releases the job's
// subscribers with the terminal handed_off event carrying that target. The
// drain MUST call this for every drained job, with an empty target when no
// peer adopted it, or handed-off jobs' event streams never close.
func (m *Manager) MarkHandoffTarget(id, target string) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return
	}
	j.mu.Lock()
	j.handoffTo = target
	j.handoffMarked = true
	if j.finished {
		j.emitTerminalLocked()
	}
	j.mu.Unlock()
}
