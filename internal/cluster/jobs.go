package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// JobState is one phase of a job's lifecycle.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Snapshot is one per-generation progress observation from a running GA
// search: which ensemble member, which generation, and the best fitness so
// far. The best genome travels with it internally as the job's resumable
// checkpoint but is not serialised — clients track convergence, the
// manager tracks restart state.
type Snapshot struct {
	Member      int     `json:"member"`
	Generation  int     `json:"generation"`
	BestFitness float64 `json:"best_fitness"`

	// Best is the member's best genome at this generation — the checkpoint
	// material. Must be safe for the manager to retain (cloned by the
	// producer).
	Best []float64 `json:"-"`
}

// Event is one item on a job's subscription stream.
type Event struct {
	// Type is "progress" while the job runs, then exactly one "done".
	Type string `json:"type"`
	// Snapshot accompanies progress events.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// State accompanies the done event.
	State JobState `json:"state,omitempty"`
}

// RunFunc executes one attempt of a job's evaluation. seeds is nil on the
// first attempt and the job's checkpoint genomes on resume attempts;
// progress receives per-generation snapshots and must be called from at
// most the attempt's own goroutines (it is safe for concurrent use). The
// returned bytes are the job's result document, served verbatim.
type RunFunc func(ctx context.Context, seeds [][]float64, progress func(Snapshot)) ([]byte, error)

// ErrJobQueueFull rejects a submission when the backlog is at capacity.
var ErrJobQueueFull = errors.New("cluster: job queue full")

// ErrJobUnknown reports a lookup for an absent (or evicted) job.
var ErrJobUnknown = errors.New("cluster: unknown job")

// ManagerConfig parameterises a job Manager. The zero value is usable.
type ManagerConfig struct {
	// MaxActive bounds concurrently running jobs (default 2 — jobs are
	// whole GA searches, each already internally parallel).
	MaxActive int
	// MaxQueued bounds jobs waiting beyond the running ones (default
	// 4×MaxActive): at most MaxActive+MaxQueued unfinished jobs exist at
	// once. Submissions beyond that fail with ErrJobQueueFull.
	MaxQueued int
	// MaxResumes bounds checkpoint-resume attempts after a failed run
	// (default 1). Each resume re-runs the evaluation with the latest
	// checkpoint genomes as GA seeds.
	MaxResumes int
	// Retain bounds finished jobs kept for polling (default 64; oldest
	// finished evicted first).
	Retain int
	// HistoryCap bounds retained progress snapshots per job (default 256,
	// oldest dropped). The checkpoint always reflects the newest snapshot
	// per member regardless of history eviction.
	HistoryCap int
	// Timeout bounds one job end to end, across resume attempts
	// (default 30m).
	Timeout time.Duration
	// Obs receives jobs.active / jobs.queued gauges and jobs.completed /
	// jobs.failed / jobs.resumed counters. nil disables metrics.
	Obs *obs.Scope
}

// Manager owns the replica's async jobs: bounded admission, background
// execution with panic containment, per-generation progress fan-out, and
// checkpoint resume built on the GA's warm-start seeds.
type Manager struct {
	cfg ManagerConfig
	obs *obs.Scope

	sem     chan struct{}
	queued  atomic.Int64
	active  atomic.Int64
	nextID  atomic.Int64
	closing atomic.Bool

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for eviction
}

// NewManager builds a Manager from cfg, applying defaults.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.MaxActive
	}
	if cfg.MaxResumes < 0 {
		cfg.MaxResumes = 0
	} else if cfg.MaxResumes == 0 {
		cfg.MaxResumes = 1
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Minute
	}
	return &Manager{
		cfg:  cfg,
		obs:  cfg.Obs,
		sem:  make(chan struct{}, cfg.MaxActive),
		jobs: map[string]*Job{},
	}
}

// Job is one asynchronous evaluation. All fields are guarded by mu; read
// through Status / WaitDone / Subscribe.
type Job struct {
	ID string
	Op string

	mu         sync.Mutex
	state      JobState
	history    []Snapshot
	snapshots  int               // total observed, including evicted
	checkpoint map[int][]float64 // member → newest best genome
	attempts   int
	resumed    bool
	result     []byte
	errMsg     string
	done       chan struct{}
	subs       map[int]chan Event
	nextSub    int
}

// JobStatus is the JSON-ready view of a job, served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string   `json:"id"`
	Op       string   `json:"op"`
	State    JobState `json:"state"`
	Attempts int      `json:"attempts"`
	Resumed  bool     `json:"resumed,omitempty"`
	// Snapshots counts every progress observation; Progress is the
	// retained tail.
	Snapshots int        `json:"snapshots"`
	Progress  []Snapshot `json:"progress,omitempty"`
	Error     string     `json:"error,omitempty"`
	// HasResult reports a retrievable result document (see the manager's
	// Result accessor); the document itself is served by the jobs API.
	HasResult bool `json:"has_result"`
}

// Submit enqueues one evaluation and returns its job immediately. The
// evaluation runs in the background: queued until a slot frees, resumed
// from its checkpoint on failure, finished exactly once.
func (m *Manager) Submit(op string, run RunFunc) (*Job, error) {
	if m.closing.Load() {
		return nil, ErrJobQueueFull
	}
	if m.queued.Add(1) > int64(m.cfg.MaxQueued+m.cfg.MaxActive) {
		m.queued.Add(-1)
		return nil, ErrJobQueueFull
	}
	j := &Job{
		ID:         fmt.Sprintf("job-%d", m.nextID.Add(1)),
		Op:         op,
		state:      JobQueued,
		checkpoint: map[int][]float64{},
		done:       make(chan struct{}),
		subs:       map[int]chan Event{},
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.evictLocked()
	m.mu.Unlock()
	m.obs.Gauge("jobs.queued", float64(m.queued.Load()))

	go m.execute(j, run)
	return j, nil
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Running or queued jobs are never evicted.
func (m *Manager) evictLocked() {
	for len(m.order) > m.cfg.Retain {
		evicted := false
		for i, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			finished := j.state == JobDone || j.state == JobFailed
			j.mu.Unlock()
			if finished {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the backlog bound catch up
		}
	}
}

// execute runs one job to completion: take a slot, attempt the evaluation,
// resume from the checkpoint on failure, publish the outcome.
func (m *Manager) execute(j *Job, run RunFunc) {
	// The backlog counter decrements only when the job finishes, so the
	// admission bound (MaxActive+MaxQueued unfinished jobs) is exact — a
	// submission can never sneak past it by racing a slot acquisition.
	defer func() {
		m.queued.Add(-1)
		m.obs.Gauge("jobs.queued", float64(m.queued.Load()))
	}()
	m.sem <- struct{}{}
	defer func() { <-m.sem }()
	m.obs.Gauge("jobs.active", float64(m.active.Add(1)))
	defer func() { m.obs.Gauge("jobs.active", float64(m.active.Add(-1))) }()

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	defer cancel()

	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()

	progress := func(s Snapshot) { m.record(j, s) }
	var result []byte
	var err error
	for attempt := 0; ; attempt++ {
		var seeds [][]float64
		if attempt > 0 {
			seeds = j.checkpointSeeds()
		}
		j.mu.Lock()
		j.attempts = attempt + 1
		if attempt > 0 {
			j.resumed = true
		}
		j.mu.Unlock()
		result, err = m.attempt(ctx, run, seeds, progress)
		if err == nil || attempt >= m.cfg.MaxResumes || ctx.Err() != nil {
			break
		}
		m.obs.Count("jobs.resumed", 1)
	}

	j.mu.Lock()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.result = result
	}
	// All subscriber sends and closes happen under j.mu (non-blocking on
	// buffered channels), so a concurrent Subscribe can never observe a
	// half-closed stream.
	done := Event{Type: "done", State: j.state}
	for _, ch := range j.subs {
		// A full channel is a slow consumer; it gets the done event
		// best-effort before close.
		select {
		case ch <- done:
		default:
		}
		close(ch)
	}
	j.subs = map[int]chan Event{}
	j.mu.Unlock()

	if err != nil {
		m.obs.Count("jobs.failed", 1)
	} else {
		m.obs.Count("jobs.completed", 1)
	}
	close(j.done)
}

// attempt runs one evaluation attempt with panic containment: a panicking
// worker becomes a failed attempt — and therefore a checkpoint resume —
// not a dead manager goroutine.
func (m *Manager) attempt(ctx context.Context, run RunFunc, seeds [][]float64, progress func(Snapshot)) (result []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			result, err = nil, fmt.Errorf("cluster: job worker panicked: %v", v)
		}
	}()
	return run(ctx, seeds, progress)
}

// record stores one progress snapshot: history tail, checkpoint update,
// live fan-out.
func (m *Manager) record(j *Job, s Snapshot) {
	j.mu.Lock()
	j.snapshots++
	j.history = append(j.history, s)
	if len(j.history) > m.cfg.HistoryCap {
		j.history = j.history[len(j.history)-m.cfg.HistoryCap:]
	}
	if len(s.Best) > 0 {
		j.checkpoint[s.Member] = s.Best
	}
	snap := s
	ev := Event{Type: "progress", Snapshot: &snap}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the search
		}
	}
	j.mu.Unlock()
}

// checkpointSeeds flattens the newest per-member best genomes, in member
// order — the ga.Config.Seeds payload for a resume attempt.
func (j *Job) checkpointSeeds() [][]float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	members := make([]int, 0, len(j.checkpoint))
	for m := range j.checkpoint {
		members = append(members, m)
	}
	// Insertion sort: member counts are tiny (the GA ensemble is 3).
	for i := 1; i < len(members); i++ {
		for k := i; k > 0 && members[k] < members[k-1]; k-- {
			members[k], members[k-1] = members[k-1], members[k]
		}
	}
	seeds := make([][]float64, 0, len(members))
	for _, m := range members {
		seeds = append(seeds, j.checkpoint[m])
	}
	return seeds
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrJobUnknown
	}
	return j, nil
}

// Status returns the JSON-ready view of a job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Op: j.Op, State: j.state,
		Attempts: j.attempts, Resumed: j.resumed,
		Snapshots: j.snapshots, Error: j.errMsg,
		HasResult: j.result != nil,
	}
	st.Progress = append(st.Progress, j.history...)
	return st
}

// Result returns the finished result document, or false while the job has
// not succeeded.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil, false
	}
	return j.result, true
}

// Done returns a channel closed when the job finishes (either way).
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe attaches a live event stream: the retained history replays
// first (as progress events), then live snapshots, then exactly one done
// event before close — unless the job already finished, in which case the
// stream is history + done. cancel detaches early (the channel is closed).
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	replay := append([]Snapshot(nil), j.history...)
	finished := j.state == JobDone || j.state == JobFailed
	ch := make(chan Event, len(replay)+64)
	for i := range replay {
		ch <- Event{Type: "progress", Snapshot: &replay[i]}
	}
	if finished {
		ch <- Event{Type: "done", State: j.state}
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// Close stops accepting submissions. Running jobs finish on their own.
func (m *Manager) Close() { m.closing.Store(true) }
