package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// PeerState is one peer's health as this replica sees it. Transitions
// follow the SWIM shape: alive → suspect on a failed (direct and indirect)
// probe round, suspect → dead once the suspicion outlives SuspectAfter
// without a successful probe, and any state → alive on a successful probe
// (rejoin).
type PeerState string

const (
	PeerAlive   PeerState = "alive"
	PeerSuspect PeerState = "suspect"
	PeerDead    PeerState = "dead"
)

// GossipConfig parameterises a Gossip instance. Self and Peers are
// required; everything else defaults sanely.
type GossipConfig struct {
	// Self is this replica's address; it is always part of the alive view.
	Self string
	// Peers are the other replicas' addresses (the configured membership).
	Peers []string
	// ProbeInterval is the cadence of protocol rounds (default 1s). The
	// production loop ticks at this rate; tests drive Tick directly.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one direct or indirect probe (default
	// ProbeInterval/2).
	ProbeTimeout time.Duration
	// SuspectAfter is how long a peer stays suspect before it is declared
	// dead (default 3×ProbeInterval). A successful probe at any point
	// cancels the suspicion.
	SuspectAfter time.Duration
	// IndirectPeers is how many other alive peers are asked to confirm a
	// failed direct probe before the target is suspected (default 2). The
	// indirect path distinguishes "the target is down" from "the link
	// between us is down".
	IndirectPeers int
	// Now is the protocol clock (default time.Now; injectable so state
	// transitions are deterministic in tests).
	Now func() time.Time
	// Probe performs one direct health check of addr. Required.
	Probe func(ctx context.Context, addr string) error
	// IndirectProbe asks via to health-check target on this replica's
	// behalf. nil disables the indirect round (a failed direct probe
	// suspects immediately).
	IndirectProbe func(ctx context.Context, via, target string) error
	// OnChange observes every change of the alive view: the sorted alive
	// membership, self included. Called synchronously from Tick, outside
	// the gossip lock.
	OnChange func(alive []string)
	// Obs receives cluster.gossip_probes / _suspects / _deaths / _rejoins
	// counters and the cluster.members gauge. nil disables metrics.
	Obs *obs.Scope
}

// Gossip is a lightweight SWIM-style failure detector over a fixed
// configured membership: each protocol round probes one peer round-robin,
// escalating failed probes through indirect confirmation, suspicion, and
// death, and feeding every alive-view change to OnChange — the hook the
// serving layer uses to rebuild its consistent-hash ring without restarts.
//
// Dead peers keep being probed at the same cadence, so a restarted replica
// rejoins on its first successful probe; no operator action and no process
// restart is needed on either side.
type Gossip struct {
	cfg GossipConfig
	obs *obs.Scope

	mu    sync.Mutex
	peers map[string]*peerHealth
	order []string // sorted probe rotation
	next  int      // rotation cursor
}

// peerHealth is one peer's detector state.
type peerHealth struct {
	state       PeerState
	suspectedAt time.Time
}

// NewGossip builds a detector from cfg, applying defaults. Every peer
// starts alive: a cold cluster assumes the configured membership is up and
// lets the first probe rounds correct it.
func NewGossip(cfg GossipConfig) *Gossip {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.ProbeInterval
	}
	if cfg.IndirectPeers <= 0 {
		cfg.IndirectPeers = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	g := &Gossip{cfg: cfg, obs: cfg.Obs, peers: map[string]*peerHealth{}}
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self {
			continue
		}
		if _, ok := g.peers[p]; !ok {
			g.peers[p] = &peerHealth{state: PeerAlive}
			g.order = append(g.order, p)
		}
	}
	sort.Strings(g.order)
	g.obs.Gauge("cluster.members", float64(len(g.order)+1))
	return g
}

// Alive returns the current alive membership, sorted, self included.
// Suspect peers still count as alive: suspicion is a grace period, not a
// verdict, and evicting a slow peer early would churn the ring twice.
func (g *Gossip) Alive() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.aliveLocked()
}

func (g *Gossip) aliveLocked() []string {
	alive := []string{g.cfg.Self}
	for addr, ph := range g.peers {
		if ph.state != PeerDead {
			alive = append(alive, addr)
		}
	}
	sort.Strings(alive)
	return alive
}

// State reports one peer's detector state (PeerDead for unknown peers).
func (g *Gossip) State(addr string) PeerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ph, ok := g.peers[addr]; ok {
		return ph.state
	}
	return PeerDead
}

// Tick runs one protocol round: expire overdue suspicions, then probe the
// next peer in the sorted rotation (direct, then indirect). Deterministic
// given the injected clock and probe outcomes — the production Run loop
// calls it on a ticker; tests call it directly.
func (g *Gossip) Tick(ctx context.Context) {
	g.mu.Lock()
	if len(g.order) == 0 {
		g.mu.Unlock()
		return
	}
	now := g.cfg.Now()
	changed := g.expireLocked(now)
	target := g.order[g.next%len(g.order)]
	g.next++
	// Indirect relays: other peers currently believed alive.
	var relays []string
	for _, addr := range g.order {
		if addr != target && g.peers[addr].state == PeerAlive {
			relays = append(relays, addr)
		}
	}
	if len(relays) > g.cfg.IndirectPeers {
		relays = relays[:g.cfg.IndirectPeers]
	}
	g.mu.Unlock()

	up := g.probe(ctx, target, relays)

	g.mu.Lock()
	now = g.cfg.Now()
	ph := g.peers[target]
	switch {
	case up && ph.state != PeerAlive:
		// Only a dead→alive rejoin changes the alive view: a recovering
		// suspect was still counted alive throughout its grace period.
		if ph.state == PeerDead {
			g.obs.Count("cluster.gossip_rejoins", 1)
			changed = true
		}
		ph.state = PeerAlive
	case !up && ph.state == PeerAlive:
		ph.state = PeerSuspect
		ph.suspectedAt = now
		g.obs.Count("cluster.gossip_suspects", 1)
	case !up && ph.state == PeerSuspect && now.Sub(ph.suspectedAt) >= g.cfg.SuspectAfter:
		ph.state = PeerDead
		g.obs.Count("cluster.gossip_deaths", 1)
		changed = true
	}
	var alive []string
	if changed {
		alive = g.aliveLocked()
	}
	g.mu.Unlock()

	if changed {
		g.obs.Gauge("cluster.members", float64(len(alive)))
		if g.cfg.OnChange != nil {
			g.cfg.OnChange(alive)
		}
	}
}

// expireLocked promotes overdue suspicions to death. Suspicion only ages
// out here — on the round's clock — so a fake-clock test can script the
// exact tick at which a peer dies.
func (g *Gossip) expireLocked(now time.Time) bool {
	changed := false
	for _, addr := range g.order {
		ph := g.peers[addr]
		if ph.state == PeerSuspect && now.Sub(ph.suspectedAt) >= g.cfg.SuspectAfter {
			ph.state = PeerDead
			g.obs.Count("cluster.gossip_deaths", 1)
			changed = true
		}
	}
	return changed
}

// probe health-checks target: direct first, then through each relay until
// one confirms. Any success means the target is up.
func (g *Gossip) probe(ctx context.Context, target string, relays []string) bool {
	g.obs.Count("cluster.gossip_probes", 1)
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	err := g.cfg.Probe(pctx, target)
	cancel()
	if err == nil {
		return true
	}
	if g.cfg.IndirectProbe == nil {
		return false
	}
	for _, via := range relays {
		g.obs.Count("cluster.gossip_indirect_probes", 1)
		pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
		err := g.cfg.IndirectProbe(pctx, via, target)
		cancel()
		if err == nil {
			return true
		}
	}
	return false
}

// Run drives protocol rounds at the configured cadence until ctx is
// cancelled — the production loop behind swappd's -gossip-interval flag.
func (g *Gossip) Run(ctx context.Context) {
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.Tick(ctx)
		}
	}
}
