package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/report"
)

// Client is a resilient caller of the swappd API: it retries transient
// failures (network errors and 429/502/503/504 responses) with capped
// exponential backoff plus jitter, honouring the server's Retry-After
// hint when one is sent — the hint is exactly what the overload and
// circuit-breaker paths use to pace clients. The zero value plus a
// BaseURL is usable.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxRetries bounds the retries after the first attempt (default 3,
	// so up to 4 attempts; negative disables retrying).
	MaxRetries int
	// BaseBackoff seeds the exponential backoff (default 100ms) and
	// MaxBackoff caps it (default 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter perturbs a computed backoff (default equal jitter:
	// half deterministic, half uniform). Injectable for tests.
	Jitter func(d time.Duration) time.Duration
	// Sleep waits between attempts (default a context-aware sleep).
	// Injectable for tests.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the clock used to convert an HTTP-date Retry-After into a
	// delay (default time.Now). Injectable for tests.
	Now func() time.Time
	// breaker, when non-nil, short-circuits calls to a destination that
	// keeps failing: while open, Do-style methods fail fast with a
	// breakerOpenError instead of attempting the network at all, until the
	// cooldown lets a probe through. The peer-forwarding layer arms one
	// per peer so a dead replica degrades to local computation without
	// paying connect timeouts on every request.
	breaker *breaker
}

// APIError is a non-retryable (or retries-exhausted) HTTP error response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

// Project calls /v1/project and decodes the projection.
func (c *Client) Project(ctx context.Context, req APIRequest) (*report.ProjectionJSON, error) {
	return c.eval(ctx, "/v1/project", req)
}

// Validate calls /v1/validate and decodes the projection with its
// validation section.
func (c *Client) Validate(ctx context.Context, req APIRequest) (*report.ProjectionJSON, error) {
	return c.eval(ctx, "/v1/validate", req)
}

func (c *Client) eval(ctx context.Context, path string, req APIRequest) (*report.ProjectionJSON, error) {
	body, err := c.do(ctx, path, req)
	if err != nil {
		return nil, err
	}
	var out report.ProjectionJSON
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("server: decoding %s response: %w", path, err)
	}
	return &out, nil
}

// do runs the retry loop for one JSON POST.
func (c *Client) do(ctx context.Context, path string, req APIRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	body, _, err := c.PostRaw(ctx, path, payload, nil)
	return body, err
}

// PostRaw POSTs a pre-marshalled JSON payload and returns the successful
// response's body and headers verbatim — the forwarding primitive: a
// replica relaying a request to a peer must pass the peer's rendered bytes
// through untouched to preserve byte-identity. header entries (e.g. the
// forwarded-loop guard) are copied onto every attempt. The same retry,
// backoff, Retry-After, and breaker machinery as the typed calls applies.
func (c *Client) PostRaw(ctx context.Context, path string, payload []byte, header http.Header) ([]byte, http.Header, error) {
	if c.breaker != nil {
		if ra, ok := c.breaker.allow(); !ok {
			return nil, nil, &breakerOpenError{retryAfter: ra}
		}
	}
	body, hdr, err := c.postRawAttempts(ctx, path, payload, header)
	c.breaker.record(err)
	return body, hdr, err
}

// postRawAttempts is the raw retry loop, without breaker accounting.
func (c *Client) postRawAttempts(ctx context.Context, path string, payload []byte, header http.Header) ([]byte, http.Header, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 3
	} else if retries < 0 {
		retries = 0
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
		if err != nil {
			return nil, nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		for k, vs := range header {
			for _, v := range vs {
				hreq.Header.Add(k, v)
			}
		}

		// retryAfter is THIS attempt's server hint only. It must reset every
		// iteration: a hint carried over from an earlier 503 would inflate
		// every later wait even after the server stopped asking for it.
		var retryAfter time.Duration
		resp, err := httpc.Do(hreq)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err
		default:
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
				break
			}
			// Any 2xx is success: /v1/jobs/handoff answers 202 Accepted.
			if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				return body, resp.Header, nil
			}
			apiErr := &APIError{Status: resp.StatusCode, Message: errorMessage(body)}
			if !retryableStatus(resp.StatusCode) {
				return nil, nil, apiErr
			}
			lastErr = apiErr
			retryAfter = c.retryAfterHint(resp.Header.Get("Retry-After"))
		}
		if attempt >= retries {
			return nil, nil, lastErr
		}
		wait := c.backoff(attempt)
		if retryAfter > wait {
			wait = retryAfter
		}
		if err := sleep(ctx, wait); err != nil {
			return nil, nil, err
		}
	}
}

// retryAfterHint parses a Retry-After header value into a delay. RFC 9110
// §10.2.3 allows two forms: delay-seconds ("120") and an HTTP-date ("Fri,
// 07 Aug 2026 12:00:00 GMT"), which is converted to a delay against the
// injected clock. Unparseable values and dates at-or-before now yield 0 —
// the caller falls back to its own backoff, never stalls on a bad hint.
func (c *Client) retryAfterHint(value string) time.Duration {
	if value == "" {
		return 0
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	when, err := http.ParseTime(value)
	if err != nil {
		return 0
	}
	now := time.Now
	if c.Now != nil {
		now = c.Now
	}
	if d := when.Sub(now()); d > 0 {
		return d
	}
	return 0
}

// backoff computes the jittered exponential delay before retry attempt+1.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	if c.Jitter != nil {
		return c.Jitter(d)
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// retryableStatus reports whether a response status is transient: the
// server's own overload (503), breaker (503), and stage-timeout (504)
// answers, plus the conventional upstream flavours of the same.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// errorMessage extracts the JSON error body, falling back to the raw text.
func errorMessage(body []byte) string {
	var ae apiError
	if err := json.Unmarshal(body, &ae); err == nil && ae.Error != "" {
		return ae.Error
	}
	return string(bytes.TrimSpace(body))
}

// sleepCtx waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
