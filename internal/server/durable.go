package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
)

// Durable state layout under Config.DataDir:
//
//	DataDir/journal/        WAL segments of the job journal
//	DataDir/store.snapshot  layered-store spill (JSON core.StoreSnapshot)
//
// The journal makes async jobs survive kill -9: every submission, GA
// checkpoint, and terminal state is one WAL record, so a restarted
// process replays the log, resubmits whatever never finished, and
// resumes each search from its newest checkpoints — byte-identical to
// the uninterrupted run. The snapshot is pure amortisation: a cache
// spill written at drain and imported (checksum-verified) at startup.

// snapshotFile is the layered-store spill under DataDir.
const snapshotFile = "store.snapshot"

// NewDurable builds a Server whose job state survives process death,
// rooted at cfg.DataDir. With an empty DataDir it is exactly New — the
// serving path stays byte-identical with durability off. Startup order:
// open (and torn-tail-recover) the journal, import the store snapshot if
// one exists, then replay the journal and resubmit every unfinished job
// with its original ID and newest checkpoints (counted jobs.recovered).
func NewDurable(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return New(cfg), nil
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create data dir: %w", err)
	}
	jl, err := cluster.OpenJournal(filepath.Join(cfg.DataDir, "journal"), durable.Options{
		SyncEvery: cfg.WALSyncEvery,
		Obs:       cfg.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("server: open job journal: %w", err)
	}
	cfg.journal = jl
	s := New(cfg)
	s.loadSnapshot()
	if err := s.recoverJobs(); err != nil {
		s.Close()
		_ = jl.Close()
		return nil, err
	}
	return s, nil
}

// recoverJobs replays the journal, compacts it down to the still-pending
// submissions, and resubmits each pending job with its original ID and
// newest per-member checkpoints. A job whose payload no longer parses —
// or that the admission bound rejects — is dropped and counted; recovery
// must never wedge startup on one bad record.
func (s *Server) recoverJobs() error {
	pending, err := s.journal.Recover()
	if err != nil {
		return fmt.Errorf("server: job recovery: %w", err)
	}
	if err := s.journal.Compact(pending); err != nil {
		// Compaction is housekeeping: a failure costs replay time on the
		// next start, not correctness.
		s.obs.Count("jobs.journal_compact_fails", 1)
	}
	for _, spec := range pending {
		if s.resubmitRecovered(spec) {
			s.obs.Count("jobs.recovered", 1)
		} else {
			s.obs.Count("jobs.recover_drops", 1)
		}
	}
	return nil
}

// resubmitRecovered turns one journalled pending job back into a live
// submission, reusing the handoff-adoption parse of its original payload.
func (s *Server) resubmitRecovered(spec cluster.JobSpec) bool {
	var jreq jobRequest
	if err := json.Unmarshal(spec.Payload, &jreq); err != nil {
		return false
	}
	op := jreq.Op
	if op == "" {
		op = "project"
	}
	epSpec, ok := endpoints[op]
	if !ok {
		return false
	}
	req, err := evalRequest(jreq.Request)
	if err != nil {
		return false
	}
	_, err = s.jobs.SubmitJob(spec, s.jobRun(epSpec, req))
	return err == nil
}

// loadSnapshot imports the layered-store spill left by a previous drain,
// if one exists. Every entry is checksum-verified on import (corrupt or
// mis-keyed entries are rejected and counted by the store); an unreadable
// snapshot file degrades to a cold cache, never a failed startup.
func (s *Server) loadSnapshot() {
	if s.store == nil {
		return
	}
	body, err := os.ReadFile(filepath.Join(s.cfg.DataDir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return
	}
	if err != nil {
		s.obs.Count("server.snapshot_load_fails", 1)
		return
	}
	var snap core.StoreSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		s.obs.Count("server.snapshot_load_fails", 1)
		return
	}
	stored, _ := s.store.ImportSnapshot(&snap)
	s.obs.Count("server.snapshot_loaded", int64(stored))
}

// SaveSnapshot exports the layered store to DataDir/store.snapshot,
// atomically (tmp file, fsync, rename) so a crash mid-save leaves the
// previous snapshot intact. A no-op without a DataDir or with the
// layered cache disabled.
func (s *Server) SaveSnapshot() error {
	if s.store == nil || s.cfg.DataDir == "" {
		return nil
	}
	body, err := json.Marshal(s.store.ExportSnapshot())
	if err != nil {
		return fmt.Errorf("server: marshal snapshot: %w", err)
	}
	path := filepath.Join(s.cfg.DataDir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: write snapshot: %w", err)
	}
	if _, err := f.Write(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: write snapshot: %w", err)
	}
	return nil
}
