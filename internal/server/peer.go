package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	swapp "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// forwardedHeader marks a request relayed by a peer replica. Its presence
// is the loop guard: a forwarded request is always computed locally, never
// re-forwarded, so a stale or disagreeing ring cannot bounce a request
// around the cluster.
const forwardedHeader = "X-Swapp-Forwarded"

// peerHeader, on a response, names the replica that actually computed it.
const peerHeader = "X-Swapp-Peer"

// maxTrackedGroups bounds the group keys retained for ring-movement
// accounting. Tracking is metrics-only; beyond the bound new groups are
// simply not counted in cluster.ring_moves.
const maxTrackedGroups = 4096

// peerSet is a replica's view of the cluster: the deterministic full ring
// every replica computes identically (routing preference), one breaker-
// guarded client per peer (failure isolation), and the reachability
// bookkeeping behind the cluster.* counters.
//
// Ownership is a preference, not a correctness requirement: when a group's
// owner is unreachable the request degrades to local computation — every
// projection is a pure function of its request, so the bytes are identical
// wherever they are computed. The owner's value is concentration: its
// layered store fills once per group and serves every forwarded request
// (the peer cache fill).
type peerSet struct {
	self  string
	obs   *obs.Scope
	full  *cluster.Ring // over the whole configured membership, self included
	nowFn func() time.Time

	mu        sync.Mutex
	clients   map[string]*peerClient
	routing   *cluster.Ring   // over the current (gossip-fed) membership; = full in static mode
	reachable *cluster.Ring   // over self + peers currently believed up
	tracked   map[string]bool // group keys seen, for ring_moves accounting
	keys      []string
}

// peerClient is the forwarding path to one peer, with its own breaker: a
// dead peer fails fast after a few attempts instead of charging connect
// timeouts to every request routed its way.
type peerClient struct {
	addr   string
	client *Client
	down   bool
}

// newPeerSet wires clients for every peer address except self. nowFn is the
// breaker clock (injectable in tests).
func newPeerSet(self string, peers []string, scope *obs.Scope, nowFn func() time.Time) *peerSet {
	p := &peerSet{
		self:    self,
		obs:     scope,
		full:    cluster.NewRing(append(append([]string(nil), peers...), self)),
		nowFn:   nowFn,
		clients: map[string]*peerClient{},
		tracked: map[string]bool{},
	}
	for _, addr := range p.full.Nodes() {
		if addr == self {
			continue
		}
		p.clients[addr] = p.newClient(addr)
	}
	p.routing = p.full
	p.reachable = p.full
	return p
}

// newClient wires the breaker-guarded forwarding path to one peer address.
func (p *peerSet) newClient(addr string) *peerClient {
	return &peerClient{
		addr: addr,
		client: &Client{
			BaseURL: addr,
			// Forwarding must degrade to local computation quickly: one
			// retry with short backoff, then the caller falls back.
			MaxRetries:  1,
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  500 * time.Millisecond,
			breaker:     newBreaker(3, 5*time.Second, p.nowFn),
		},
	}
}

// setMembership replaces the routing ring with one over the given alive
// membership (self always included) — the gossip detector's OnChange hook.
// Group keys whose owner moved under the rebuild are counted as
// cluster.ring_moves; clients for newly seen addresses are wired lazily,
// and clients for departed peers are kept (a rejoin reuses the breaker's
// recovery machinery instead of forgetting its history).
func (p *peerSet) setMembership(alive []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	next := cluster.NewRing(append(append([]string(nil), alive...), p.self))
	for _, addr := range next.Nodes() {
		if addr == p.self {
			continue
		}
		if _, ok := p.clients[addr]; !ok {
			p.clients[addr] = p.newClient(addr)
		}
	}
	if moved := cluster.Moved(p.routing, next, p.keys); moved > 0 {
		p.obs.Count("cluster.ring_moves", int64(moved))
	}
	p.routing = next
	p.obs.Gauge("cluster.ring_size", float64(next.Len()))
}

// membership reports the routing ring's current member addresses.
func (p *peerSet) membership() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.routing.Nodes()
}

// handoffTarget resolves where a draining replica ships a job for one
// group: the group's owner if that is someone else, otherwise the replica
// that inherits the group once this one leaves. nil when the ring has no
// other member.
func (p *peerSet) handoffTarget(groupKey string) *peerClient {
	p.mu.Lock()
	defer p.mu.Unlock()
	addr := p.routing.Owner(groupKey)
	if addr == p.self {
		addr = p.routing.NextOwner(groupKey, p.self)
	}
	if addr == "" || addr == p.self {
		return nil
	}
	if _, ok := p.clients[addr]; !ok {
		p.clients[addr] = p.newClient(addr)
	}
	return p.clients[addr]
}

// successor resolves the replication target for a locally owned group: the
// replica that would inherit the group if this one left the ring. nil when
// the ring has no other member.
func (p *peerSet) successor(groupKey string) *peerClient {
	p.mu.Lock()
	defer p.mu.Unlock()
	addr := p.routing.NextOwner(groupKey, p.self)
	if addr == "" || addr == p.self {
		return nil
	}
	if _, ok := p.clients[addr]; !ok {
		p.clients[addr] = p.newClient(addr)
	}
	return p.clients[addr]
}

// route resolves a group key: the owning address from the full ring, and
// the peer client to forward through — nil when the key is owned locally
// (or the membership is degenerate) and the caller should compute here.
func (p *peerSet) route(groupKey string) (owner string, pc *peerClient) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.tracked[groupKey] && len(p.keys) < maxTrackedGroups {
		p.tracked[groupKey] = true
		p.keys = append(p.keys, groupKey)
	}
	owner = p.routing.Owner(groupKey)
	if owner == "" || owner == p.self {
		return owner, nil
	}
	return owner, p.clients[owner]
}

// observe records a forwarding outcome for reachability accounting. An
// up↔down transition rebuilds the reachable ring and counts how many
// tracked group keys changed owner under it (cluster.ring_moves) — the
// fraction of the keyspace whose cache locality the transition disturbed.
// Context cancellations say nothing about the peer and are ignored.
func (p *peerSet) observe(addr string, err error) {
	if err != nil && (err == context.Canceled || err == context.DeadlineExceeded) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pc := p.clients[addr]
	if pc == nil {
		return
	}
	down := err != nil
	if pc.down == down {
		return
	}
	pc.down = down
	up := []string{p.self}
	for a, c := range p.clients {
		if !c.down {
			up = append(up, a)
		}
	}
	next := cluster.NewRing(up)
	if moved := cluster.Moved(p.reachable, next, p.keys); moved > 0 {
		p.obs.Count("cluster.ring_moves", int64(moved))
	}
	p.reachable = next
}

// timeoutFor resolves one request's evaluation deadline from its body,
// applying the server default and maximum.
func (s *Server) timeoutFor(body APIRequest) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if body.TimeoutMS > 0 {
		timeout = time.Duration(body.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// forwardEval relays one single-request evaluation to its group's owner,
// writing the peer's bytes verbatim. It reports whether the response was
// served; on any forwarding failure it counts a fallback and returns false
// so the caller computes locally — a dead peer degrades, never errors.
func (s *Server) forwardEval(w http.ResponseWriter, r *http.Request, endpoint string, body APIRequest, req swapp.Request) bool {
	owner, pc := s.peers.route(cluster.GroupKey(req.Base, req.Target))
	if pc == nil {
		return false
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(body))
	defer cancel()
	out, respHdr, err := pc.client.PostRaw(ctx, endpoint, payload, http.Header{forwardedHeader: []string{s.cfg.Self}})
	s.peers.observe(owner, err)
	if err != nil {
		s.obs.Count("cluster.fallbacks", 1)
		return false
	}
	s.obs.Count("cluster.forwards", 1)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set(peerHeader, owner)
	if xc := respHdr.Get("X-Cache"); xc != "" {
		if xc == "hit" {
			s.obs.Count("cluster.peer_hits", 1)
		}
		h.Set("X-Cache", xc)
	}
	_, _ = w.Write(out)
	return true
}

// Peers reports the configured cluster membership (empty when peer-aware
// mode is off) — diagnostics and tests.
func (s *Server) Peers() []string {
	if s.peers == nil {
		return nil
	}
	return s.peers.full.Nodes()
}
