package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, 10*time.Second, clk.now)
	boom := errors.New("pipeline broken")

	for i := 0; i < 2; i++ {
		if _, ok := b.allow(); !ok {
			t.Fatalf("breaker open after %d failures, threshold 3", i)
		}
		b.record(boom)
	}
	// A success resets the consecutive count.
	b.record(nil)
	for i := 0; i < 3; i++ {
		if _, ok := b.allow(); !ok {
			t.Fatalf("breaker open after reset + %d failures", i)
		}
		b.record(boom)
	}
	ra, ok := b.allow()
	if ok {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if ra <= 0 || ra > 10*time.Second {
		t.Errorf("retryAfter = %v, want within the 10s cooldown", ra)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, 10*time.Second, clk.now)
	b.record(errors.New("boom"))
	if _, ok := b.allow(); ok {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}

	clk.advance(11 * time.Second)
	if _, ok := b.allow(); !ok {
		t.Fatal("cooldown passed: first allow must become the probe")
	}
	// While the probe is in flight everyone else is rejected.
	if _, ok := b.allow(); ok {
		t.Fatal("second caller admitted during the probe")
	}
	// A failed probe re-opens immediately for a full cooldown.
	b.record(errors.New("still broken"))
	if _, ok := b.allow(); ok {
		t.Fatal("breaker closed after failed probe")
	}

	clk.advance(11 * time.Second)
	if _, ok := b.allow(); !ok {
		t.Fatal("second probe not admitted")
	}
	b.record(nil)
	// Healthy again: everyone passes.
	for i := 0; i < 5; i++ {
		if _, ok := b.allow(); !ok {
			t.Fatal("breaker not closed after successful probe")
		}
	}
}

func TestBreakerNeutralErrors(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, 10*time.Second, clk.now)
	// Cancellations, deadlines, and queue rejections never trip.
	for _, err := range []error{context.Canceled, context.DeadlineExceeded, errQueueFull} {
		b.record(err)
		if _, ok := b.allow(); !ok {
			t.Fatalf("neutral error %v tripped the breaker", err)
		}
	}
	// A neutral probe outcome releases the probe slot without a verdict.
	b.record(errors.New("boom"))
	clk.advance(11 * time.Second)
	if _, ok := b.allow(); !ok {
		t.Fatal("probe not admitted")
	}
	b.record(context.Canceled)
	if _, ok := b.allow(); !ok {
		t.Fatal("cancelled probe must free the probe slot for the next caller")
	}
}

func TestNilBreakerIsDisabled(t *testing.T) {
	var b *breaker
	for i := 0; i < 10; i++ {
		b.record(errors.New("boom"))
		if _, ok := b.allow(); !ok {
			t.Fatal("nil breaker rejected a request")
		}
	}
}
