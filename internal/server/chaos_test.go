package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	swapp "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// postEval sends one /v1/project request and returns the response.
func postEval(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/project", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

const chaosBody = `{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":16}`

// TestInjectedEvalPanicBecomes500 is the serving half of the acceptance
// scenario: a panic inside one evaluation becomes a clean 500, the panic
// is counted, the error is not cached, and the identical follow-up
// request succeeds — the daemon survives its pipeline blowing up.
func TestInjectedEvalPanicBecomes500(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("server.eval=panic#1"); err != nil {
		t.Fatal(err)
	}
	eval := &stubEval{}
	scope := obs.New("test")
	_, ts := newTestServer(t, Config{Workers: 2, Obs: scope}, eval)

	resp := postEval(t, ts.URL, chaosBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want 500", resp.StatusCode)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("500 body not JSON: %v", err)
	}
	if apiErr.Error == "" {
		t.Error("500 body carries no error message")
	}
	if got := metricValue(t, scope, "server.panics"); got != 1 {
		t.Errorf("server.panics = %v, want 1", got)
	}

	// The fault is exhausted (#1) and the error was not cached: the same
	// request now evaluates cleanly.
	resp2 := postEval(t, ts.URL, chaosBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up after panic: status %d, want 200", resp2.StatusCode)
	}
	if eval.calls.Load() != 1 {
		t.Errorf("eval ran %d times, want 1 (panic fired before the stub)", eval.calls.Load())
	}
}

// TestHandlerPanicRecovered proves the recovery middleware catches panics
// raised outside the evaluation path too.
func TestHandlerPanicRecovered(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("server.handler=panic#1"); err != nil {
		t.Fatal(err)
	}
	eval := &stubEval{}
	scope := obs.New("test")
	_, ts := newTestServer(t, Config{Workers: 1, Obs: scope}, eval)

	resp := postEval(t, ts.URL, chaosBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("handler panic: status %d, want 500", resp.StatusCode)
	}
	if got := metricValue(t, scope, "server.panics"); got != 1 {
		t.Errorf("server.panics = %v, want 1", got)
	}
	if resp2 := postEval(t, ts.URL, chaosBody); resp2.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the handler panic: %d", resp2.StatusCode)
	}
}

// TestPanickingLeaderReleasesFollowers pins the nastiest interaction:
// a singleflight leader whose evaluation panics must still release its
// worker slot and fail its joined followers — not strand them on a done
// channel that never closes.
func TestPanickingLeaderReleasesFollowers(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var first sync.Once
	evalFn := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		leader := false
		first.Do(func() { leader = true })
		if leader {
			close(started)
			<-release // hold the singleflight slot while followers join
			panic("leader evaluation dies")
		}
		return stubResult(req), nil
	}
	s := New(Config{Workers: 1, Eval: evalFn})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post := func() int {
		resp, err := http.Post(ts.URL+"/v1/project", "application/json", bytes.NewBufferString(chaosBody))
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	leaderCode := make(chan int, 1)
	go func() { leaderCode <- post() }()
	<-started
	const followers = 3
	var wg sync.WaitGroup
	codes := make([]int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post()
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let followers join the in-flight call
	close(release)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("followers stranded after leader panic")
	}
	if c := <-leaderCode; c != http.StatusInternalServerError {
		t.Errorf("leader: status %d, want 500", c)
	}
	for i, c := range codes {
		if c != http.StatusInternalServerError {
			t.Errorf("follower %d: status %d, want 500", i, c)
		}
	}
	// The worker slot was released: a fresh request evaluates fine.
	if c := post(); c != http.StatusOK {
		t.Errorf("post-panic request: status %d, want 200 (slot leaked?)", c)
	}
}

// TestBreakerOpensAfterRepeatedFailures drives the breaker through a
// full trip/probe/recover cycle over HTTP with an injected error fault
// and a fake clock.
func TestBreakerOpensAfterRepeatedFailures(t *testing.T) {
	defer faultinject.Disarm()
	if err := faultinject.Arm("server.eval=error#3"); err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	eval := &stubEval{}
	scope := obs.New("test")
	cfg := Config{
		Workers: 1, Obs: scope,
		BreakerThreshold: 3, BreakerCooldown: 10 * time.Second,
		nowFn: clk.now,
	}
	_, ts := newTestServer(t, cfg, eval)

	// Three injected failures trip the breaker. Distinct ranks dodge the
	// cache and singleflight.
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":%d}`, 16>>i)
		if resp := postEval(t, ts.URL, body); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	// Tripped: next request is rejected without evaluating.
	resp := postEval(t, ts.URL, chaosBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("open breaker Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
	}
	if eval.calls.Load() != 0 {
		t.Errorf("breaker-rejected request reached the evaluator")
	}

	// After the cooldown the probe passes; the fault is exhausted so it
	// succeeds and the circuit closes for everyone.
	clk.advance(11 * time.Second)
	if resp := postEval(t, ts.URL, chaosBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown: status %d, want 200", resp.StatusCode)
	}
	body := fmt.Sprintf(`{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":%d}`, 2)
	if resp := postEval(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request: status %d, want 200", resp.StatusCode)
	}
}

// TestStageTimeoutMapsTo504 proves a stage-budget overrun surfaces as a
// gateway timeout, distinct from a plain 500.
func TestStageTimeoutMapsTo504(t *testing.T) {
	slow := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		if req.StageTimeout != 20*time.Millisecond {
			return nil, fmt.Errorf("StageTimeout not forwarded: %v", req.StageTimeout)
		}
		// Emulate what swapp.Request.stage returns when a stage blows its
		// budget while the request deadline is still healthy.
		return nil, fmt.Errorf("swapp: stage %q exceeded its %v budget: %w", "project", req.StageTimeout, swapp.ErrStageTimeout)
	}
	s := New(Config{Workers: 1, StageTimeout: 20 * time.Millisecond, Eval: slow})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp := postEval(t, ts.URL, chaosBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stage timeout: status %d, want 504", resp.StatusCode)
	}
}

// metricValue reads one counter out of the scope's metrics snapshot.
func metricValue(t *testing.T, scope *obs.Scope, name string) int64 {
	t.Helper()
	v, _ := scope.Metrics().Counter(name)
	return v
}
