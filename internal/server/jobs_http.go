package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	swapp "repro"
	"repro/internal/cluster"
)

// jobRequest is the POST /v1/jobs body: an operation name plus the usual
// evaluation request.
type jobRequest struct {
	// Op selects the endpoint semantics: "project" (default), "validate",
	// or "surrogate".
	Op      string     `json:"op,omitempty"`
	Request APIRequest `json:"request"`
}

// handleJobSubmit serves POST /v1/jobs: validate the embedded request,
// enqueue it on the job manager, and answer 202 with the job's status
// document. The evaluation runs in the background with per-generation GA
// progress recorded as snapshots; a failed or panicked attempt resumes
// from the newest per-member checkpoint genomes.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.obs.Count("server.requests", 1)
	s.obs.Count("server.requests./v1/jobs", 1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("/v1/jobs requires POST"))
		return
	}
	var jreq jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jreq); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}
	op := jreq.Op
	if op == "" {
		op = "project"
	}
	spec, ok := endpoints[op]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown op %q", jreq.Op))
		return
	}
	req, err := evalRequest(jreq.Request)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The job carries its routing group and a re-marshalled submission body
	// so a draining replica can hand the search to the group's new owner.
	payload, err := json.Marshal(jobRequest{Op: op, Request: jreq.Request})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	job, err := s.jobs.SubmitJob(cluster.JobSpec{
		Op:      op,
		Group:   cluster.GroupKey(req.Base, req.Target),
		Payload: payload,
	}, s.jobRun(spec, req))
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	_ = enc.Encode(job.Status())
}

// jobRun builds the background attempt function for one submitted job:
// each attempt takes a worker slot (jobs share the admission pool with
// synchronous requests), runs the evaluation with the GA progress and
// checkpoint taps wired to the job's streams, and — on resume attempts —
// restores the surrogate search from the newest full checkpoints (exact,
// bit-identical to an uninterrupted run) when the job has them, falling
// back to checkpoint genomes as GA seeds otherwise. Job results bypass
// the result LRU: a seed-resumed search is not byte-comparable with a
// cold one, so its document must never shadow the deterministic cache.
func (s *Server) jobRun(spec endpointSpec, req swapp.Request) cluster.RunFunc {
	return func(ctx context.Context, resume cluster.Resume, tap cluster.Tap) ([]byte, error) {
		if err := s.admit(ctx); err != nil {
			return nil, err
		}
		defer func() { <-s.sem }()
		s.obs.Gauge("server.inflight", float64(s.inflight.Add(1)))
		defer func() { s.obs.Gauge("server.inflight", float64(s.inflight.Add(-1))) }()
		evalReq := req
		evalReq.Workers = s.cfg.EvalWorkers
		evalReq.StageTimeout = s.cfg.StageTimeout
		evalReq.Store = s.store
		evalReq.WarmStart = s.cfg.WarmStart
		evalReq.ResumeSeeds = resume.Seeds
		evalReq.ResumeCheckpoints = resume.Checkpoints
		if tap.Progress != nil {
			evalReq.OnGAProgress = func(member, gen int, best float64, genome []float64) {
				tap.Progress(cluster.Snapshot{Member: member, Generation: gen, BestFitness: best, Best: genome})
			}
		}
		evalReq.OnGACheckpoint = tap.Checkpoint
		res, err := s.runEval(ctx, spec.op, evalReq)
		if err != nil {
			return nil, err
		}
		return spec.render(res)
	}
}

// handleJobHandoff serves POST /v1/jobs/handoff: adopt a job drained by a
// shutting-down peer. The payload is the peer's original submission body
// and the seeds its newest checkpoint genomes — the adopted job's first
// attempt resumes the GA from them via the ResumeSeeds path instead of
// restarting at generation zero.
func (s *Server) handleJobHandoff(w http.ResponseWriter, r *http.Request) {
	s.obs.Count("server.requests", 1)
	s.obs.Count("server.requests./v1/jobs/handoff", 1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("/v1/jobs/handoff requires POST"))
		return
	}
	var h cluster.Handoff
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding handoff: %w", err))
		return
	}
	var jreq jobRequest
	if err := json.Unmarshal(h.Payload, &jreq); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding handoff payload: %w", err))
		return
	}
	op := jreq.Op
	if op == "" {
		op = "project"
	}
	spec, ok := endpoints[op]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown op %q", jreq.Op))
		return
	}
	req, err := evalRequest(jreq.Request)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.jobs.SubmitJob(cluster.JobSpec{
		Op:          op,
		Group:       h.Group,
		Payload:     h.Payload,
		Seeds:       h.Seeds,
		Checkpoints: h.Checkpoints,
	}, s.jobRun(spec, req))
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.obs.Count("cluster.jobs_adopted", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	_ = enc.Encode(job.Status())
}

// handleJob serves the per-job GETs:
//
//	GET /v1/jobs/{id}         status document
//	GET /v1/jobs/{id}/events  Server-Sent Events progress stream
//	GET /v1/jobs/{id}/result  the finished document, verbatim
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.obs.Count("server.requests", 1)
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("job endpoints require GET"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	job, err := s.jobs.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	switch sub {
	case "":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(job.Status())
	case "events":
		s.serveJobEvents(w, r, job)
	case "result":
		out, ok := job.Result()
		if !ok {
			st := job.Status()
			if st.State == cluster.JobFailed {
				writeError(w, http.StatusInternalServerError, fmt.Errorf("job %s failed: %s", id, st.Error))
				return
			}
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("job %s is %s", id, st.State))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job endpoint %q", sub))
	}
}

// serveJobEvents streams a job's progress as Server-Sent Events: the
// retained history replays first, then live snapshots, then exactly one
// terminal event — "done", or "handed_off" carrying the forwarding target
// for jobs drained to another replica — closes the stream. Each event is
// one `data:` line holding the cluster.Event JSON.
func (s *Server) serveJobEvents(w http.ResponseWriter, r *http.Request, job *cluster.Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	events, cancel := job.Subscribe()
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b)
			flusher.Flush()
			if ev.Type == "done" || ev.Type == "handed_off" {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
