package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newFlakyServer answers each request via script[i] (an HTTP status, 0 =
// drop the connection) until the script runs out, then serves the real
// stub result.
func newFlakyServer(t *testing.T, script []int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	eval := &stubEval{}
	s := New(Config{Workers: 2, Eval: eval.fn})
	inner := s.Handler()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(script) {
			switch code := script[n]; code {
			case 0:
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Fatal("recorder not hijackable")
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					t.Fatal(err)
				}
				conn.Close()
			default:
				if code == http.StatusServiceUnavailable {
					w.Header().Set("Retry-After", "1")
				}
				w.WriteHeader(code)
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// testClient builds a Client with instant, recorded sleeps.
func testClient(url string, slept *[]time.Duration) *Client {
	return &Client{
		BaseURL: url,
		Jitter:  func(d time.Duration) time.Duration { return d },
		Sleep: func(ctx context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return ctx.Err()
		},
	}
}

var clientReq = APIRequest{Target: "power6-575", Bench: "LU-MZ", Class: "C", Ranks: 16}

func TestClientRetriesTransientFailures(t *testing.T) {
	// Dropped connection, then 503, then 504, then success: all within
	// the default 3 retries.
	ts, calls := newFlakyServer(t, []int{0, http.StatusServiceUnavailable, http.StatusGatewayTimeout})
	var slept []time.Duration
	c := testClient(ts.URL, &slept)

	res, err := c.Project(context.Background(), clientReq)
	if err != nil {
		t.Fatalf("retryable failures not retried: %v", err)
	}
	if res.App != "LU-MZ.C" || res.TotalSeconds <= 0 {
		t.Errorf("bad decoded projection: %+v", res)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4", got)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	// Second wait honours the 503's Retry-After: 1s despite a 200ms
	// exponential schedule.
	if slept[1] < time.Second {
		t.Errorf("Retry-After ignored: waited %v, want >= 1s", slept[1])
	}
	// Backoff grows between non-hinted attempts.
	if slept[0] >= slept[2] {
		t.Errorf("backoff not growing: %v", slept)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	ts, calls := newFlakyServer(t, []int{http.StatusBadRequest})
	var slept []time.Duration
	c := testClient(ts.URL, &slept)

	_, err := c.Project(context.Background(), clientReq)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("400 retried: %d attempts", got)
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	ts, calls := newFlakyServer(t, []int{
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable,
	})
	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	c.MaxRetries = 2

	_, err := c.Project(context.Background(), clientReq)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the last APIError 503", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestClientStopsOnContextCancel(t *testing.T) {
	ts, _ := newFlakyServer(t, []int{http.StatusServiceUnavailable, http.StatusServiceUnavailable})
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		BaseURL: ts.URL,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	_, err := c.Project(ctx, clientReq)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClientValidateEndpoint(t *testing.T) {
	ts, _ := newFlakyServer(t, nil)
	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	res, err := c.Validate(context.Background(), clientReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "LU-MZ.C" {
		t.Errorf("bad decoded projection: %+v", res)
	}
}
