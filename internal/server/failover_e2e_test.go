package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	swapp "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// newGossipCluster starts n peer-wired replicas running the SWIM detector
// at test cadence: membership changes land in tens of milliseconds instead
// of seconds, which keeps the kill-failover tests fast and deterministic.
func newGossipCluster(t *testing.T, n int) []*clusterReplica {
	t.Helper()
	clock := &testClock{}
	reps := make([]*clusterReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = &clusterReplica{}
		ts := httptest.NewServer(reps[i])
		t.Cleanup(ts.Close)
		reps[i].url = ts.URL
		urls[i] = ts.URL
	}
	for i, rep := range reps {
		peers := make([]string, 0, n-1)
		for k, u := range urls {
			if k != i {
				peers = append(peers, u)
			}
		}
		rep.eval = &groupedEval{}
		rep.scope = obs.New("test")
		rep.srv = New(Config{Workers: 4, Obs: rep.scope, Eval: rep.eval.fn,
			Self: rep.url, Peers: peers, nowFn: clock.now,
			GossipInterval:     20 * time.Millisecond,
			GossipProbeTimeout: 10 * time.Millisecond,
			GossipSuspectAfter: 60 * time.Millisecond,
		})
		// Close stops the gossip loop; cleanups run LIFO so every loop dies
		// before its listener does.
		t.Cleanup(rep.srv.Close)
		rep.handler.Store(rep.srv.Handler())
	}
	return reps
}

// groupKeyOf resolves a request body's routing group key the way every
// replica does.
func groupKeyOf(t *testing.T, body string) string {
	t.Helper()
	var api APIRequest
	if err := json.Unmarshal([]byte(body), &api); err != nil {
		t.Fatal(err)
	}
	req, err := evalRequest(api)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.GroupKey(req.Base, req.Target)
}

// byURL finds the replica serving url.
func byURL(t *testing.T, reps []*clusterReplica, url string) *clusterReplica {
	t.Helper()
	for _, rep := range reps {
		if rep.url == url {
			return rep
		}
	}
	t.Fatalf("no replica at %s", url)
	return nil
}

// awaitMembershipWithout polls a replica's routing view until addr has been
// gossiped out of it.
func awaitMembershipWithout(t *testing.T, rep *clusterReplica, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		evicted := true
		for _, m := range rep.srv.Membership() {
			if m == addr {
				evicted = false
			}
		}
		if evicted {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip never evicted %s from %s's view: %v", addr, rep.url, rep.srv.Membership())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterWarmFailoverReplicaServes is the tentpole's proof: an owner
// computes a result and replicates the rendered bytes to its ring
// successor; the owner dies; gossip evicts it from the survivors' rings;
// and the successor — now the group's owner — serves the replicated bytes
// byte-identically without recomputing, from either entry point.
func TestClusterWarmFailoverReplicaServes(t *testing.T) {
	reps := newGossipCluster(t, 3)
	body := `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`
	gk := groupKeyOf(t, body)
	urls := make([]string, len(reps))
	for i, rep := range reps {
		urls[i] = rep.url
	}
	ring := cluster.NewRing(urls)
	owner := byURL(t, reps, ring.Owner(gk))
	succ := byURL(t, reps, ring.NextOwner(gk, owner.url))
	var third *clusterReplica
	for _, rep := range reps {
		if rep != owner && rep != succ {
			third = rep
		}
	}

	// Warm phase: the owner computes and pushes the rendered bytes to its
	// successor in the background; join the push before pulling the plug.
	code, _, reference := post(t, owner.url+"/v1/project", body)
	if code != 200 {
		t.Fatalf("warm request status = %d: %s", code, reference)
	}
	owner.srv.WaitReplication()
	if counter(owner.scope, "cluster.replica_pushes") != 1 {
		t.Fatalf("owner pushed %d replicas, want 1 (fails: %d)",
			counter(owner.scope, "cluster.replica_pushes"), counter(owner.scope, "cluster.replica_push_fails"))
	}
	if counter(succ.scope, "cluster.replica_stores") != 1 {
		t.Fatal("successor stored no replica")
	}

	// Kill the owner at the transport and wait for both survivors' gossip
	// to gossip it out of their rings.
	owner.killed.Store(true)
	awaitMembershipWithout(t, succ, owner.url)
	awaitMembershipWithout(t, third, owner.url)

	// The successor inherits the group and answers warm: the dead owner's
	// exact bytes, no evaluation.
	code, hdr, out := post(t, succ.url+"/v1/project", body)
	if code != 200 {
		t.Fatalf("failover request status = %d: %s", code, out)
	}
	if !bytes.Equal(out, reference) {
		t.Errorf("successor served different bytes than the dead owner:\nowner:     %s\nsuccessor: %s", reference, out)
	}
	if xc := hdr.Get("X-Cache"); xc != "replica" {
		t.Errorf("successor X-Cache = %q, want \"replica\"", xc)
	}

	// Entering through the third replica forwards to the successor and gets
	// the same bytes.
	code, hdr, out = post(t, third.url+"/v1/project", body)
	if code != 200 {
		t.Fatalf("forwarded failover request status = %d: %s", code, out)
	}
	if !bytes.Equal(out, reference) {
		t.Error("third replica relayed different bytes than the dead owner computed")
	}
	if p := hdr.Get(peerHeader); p != succ.url {
		t.Errorf("third replica forwarded to %q, want successor %q", p, succ.url)
	}

	if n := counter(succ.scope, "cluster.replica_hits"); n < 1 {
		t.Errorf("cluster.replica_hits = %d, want >= 1", n)
	}
	if n := succ.eval.calls.Load() + third.eval.calls.Load(); n != 0 {
		t.Errorf("survivors ran %d evaluations; warm failover should run none", n)
	}
}

// TestClusterJobHandoffResumesElsewhere drains a replica mid-search the way
// SIGTERM does: the blocked job's newest checkpoint genomes ship to the
// group's ring owner, whose adopted job resumes from exactly those seeds
// via the ResumeSeeds path — not from generation zero.
func TestClusterJobHandoffResumesElsewhere(t *testing.T) {
	started := make(chan struct{}, 1)
	adopted := make(chan [][]float64, 1)
	// First attempt: emit one checkpoint snapshot, then hold the search
	// until the drain cancels it. Resumed attempt (non-empty seeds): record
	// what the GA would have been seeded with and finish.
	evalFn := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		if len(req.ResumeSeeds) > 0 {
			seeds := make([][]float64, len(req.ResumeSeeds))
			for i, s := range req.ResumeSeeds {
				seeds[i] = append([]float64(nil), s...)
			}
			select {
			case adopted <- seeds:
			default:
			}
			return stubResult(req), nil
		}
		if req.OnGAProgress != nil {
			req.OnGAProgress(0, 1, 0.5, []float64{3.14, 2.71})
		}
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}

	clock := &testClock{}
	reps := make([]*clusterReplica, 3)
	urls := make([]string, len(reps))
	for i := range reps {
		reps[i] = &clusterReplica{}
		ts := httptest.NewServer(reps[i])
		t.Cleanup(ts.Close)
		reps[i].url = ts.URL
		urls[i] = ts.URL
	}
	for i, rep := range reps {
		peers := make([]string, 0, len(reps)-1)
		for k, u := range urls {
			if k != i {
				peers = append(peers, u)
			}
		}
		rep.scope = obs.New("test")
		rep.srv = New(Config{Workers: 4, Obs: rep.scope, Eval: evalFn,
			Self: rep.url, Peers: peers, nowFn: clock.now})
		rep.handler.Store(rep.srv.Handler())
	}

	body := `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`
	gk := groupKeyOf(t, body)
	drainer := reps[0]
	ring := cluster.NewRing(urls)
	targetURL := ring.Owner(gk)
	if targetURL == drainer.url {
		targetURL = ring.NextOwner(gk, drainer.url)
	}
	target := byURL(t, reps, targetURL)

	code, _, out := post(t, drainer.url+"/v1/jobs", `{"request":`+body+`}`)
	if code != 202 {
		t.Fatalf("job submit status = %d: %s", code, out)
	}
	var st cluster.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}

	// Drain: exactly one job ships, to the group's ring owner.
	if n := drainer.srv.Handoff(context.Background()); n != 1 {
		t.Fatalf("Handoff moved %d jobs, want 1", n)
	}
	var seeds [][]float64
	select {
	case seeds = <-adopted:
	case <-time.After(5 * time.Second):
		t.Fatal("no replica resumed the handed-off job")
	}
	if want := [][]float64{{3.14, 2.71}}; !reflect.DeepEqual(seeds, want) {
		t.Errorf("resumed with seeds %v, want the exact handed-off checkpoint %v", seeds, want)
	}

	// The drainer's status names both the outcome and the forwarding
	// address; the terminal state lands once the cancelled attempt unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		js := jobStatusOf(t, drainer, st.ID)
		if js.State == cluster.JobHandedOff {
			if js.HandoffTarget != targetURL {
				t.Errorf("handoff_target = %q, want %q", js.HandoffTarget, targetURL)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained job state = %q, want %q", js.State, cluster.JobHandedOff)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := counter(drainer.scope, "cluster.job_handoffs"); n != 1 {
		t.Errorf("cluster.job_handoffs = %d, want 1", n)
	}
	if n := counter(target.scope, "cluster.jobs_adopted"); n != 1 {
		t.Errorf("cluster.jobs_adopted on the target = %d, want 1", n)
	}
	// And the adopted search runs to completion on the new owner.
	deadline = time.Now().Add(5 * time.Second)
	for counter(target.scope, "jobs.completed") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("adopted job never completed on the target")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// jobStatusOf fetches one job's status document from a replica.
func jobStatusOf(t *testing.T, rep *clusterReplica, id string) cluster.JobStatus {
	t.Helper()
	resp, err := http.Get(rep.url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("job status fetch = %d: %s", resp.StatusCode, body)
	}
	var js cluster.JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	return js
}

// TestReplicateIdempotent drives the wire contract of POST /v1/replicate:
// the first push stores, an identical re-push is a counted no-op that
// leaves the vault size alone, and a corrupted push is rejected without
// landing.
func TestReplicateIdempotent(t *testing.T) {
	scope := obs.New("test")
	s := New(Config{Workers: 2, Obs: scope, Eval: (&stubEval{}).fn})
	ts := newHTTPServer(t, s)

	resultBody := []byte(`{"projection":42}` + "\n")
	sum := sha256.Sum256(resultBody)
	msg := replicaMsg{
		Key:      strings.Repeat("ab", sha256.Size),
		Endpoint: "/v1/project",
		Sum:      hex.EncodeToString(sum[:]),
		Body:     resultBody,
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}

	code, _, out := post(t, ts.URL+"/v1/replicate", string(payload))
	if code != 200 || string(out) != "{\"stored\":true}\n" {
		t.Fatalf("first push: %d %s, want 200 {\"stored\":true}", code, out)
	}
	code, _, out = post(t, ts.URL+"/v1/replicate", string(payload))
	if code != 200 || string(out) != "{\"stored\":false}\n" {
		t.Fatalf("duplicate push: %d %s, want 200 {\"stored\":false}", code, out)
	}
	if n := counter(scope, "cluster.replica_stores"); n != 1 {
		t.Errorf("cluster.replica_stores = %d, want 1", n)
	}
	if n := counter(scope, "cluster.replica_dups"); n != 1 {
		t.Errorf("cluster.replica_dups = %d, want 1", n)
	}
	if n := s.store.ArtifactCount(); n != 1 {
		t.Errorf("vault holds %d entries after a double push, want 1", n)
	}

	// A checksum mismatch must never land.
	bad := msg
	bad.Sum = hex.EncodeToString(make([]byte, sha256.Size))
	payload, _ = json.Marshal(bad)
	if code, _, out = post(t, ts.URL+"/v1/replicate", string(payload)); code != 400 {
		t.Fatalf("corrupted push: %d %s, want 400", code, out)
	}
	if n := counter(scope, "cluster.replica_rejects"); n != 1 {
		t.Errorf("cluster.replica_rejects = %d, want 1", n)
	}
	// Nor a malformed key.
	short := msg
	short.Key = "abc"
	payload, _ = json.Marshal(short)
	if code, _, _ = post(t, ts.URL+"/v1/replicate", string(payload)); code != 400 {
		t.Fatalf("short-key push accepted with status %d", code)
	}
	if n := s.store.ArtifactCount(); n != 1 {
		t.Errorf("rejected pushes changed the vault: %d entries, want 1", n)
	}
}
