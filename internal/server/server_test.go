package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	swapp "repro"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// stubResult fabricates a small but fully-populated result for a request,
// so handlers render every section without running the pipeline.
func stubResult(req swapp.Request) *swapp.Result {
	comm := &core.CommProjection{
		Ranks:     req.Ranks,
		WaitScale: 1.25,
		Routines: []*core.RoutineProjection{
			{Routine: mpi.RoutineBcast, Class: mpi.ClassCollective, Calls: 2,
				BaseElapsed: 0.2, BaseTransfer: 0.15, BaseWait: 0.05, TargetTransfer: 0.1, TargetWait: 0.06},
		},
	}
	proj := &core.Projection{
		App:    fmt.Sprintf("%s.%c", req.Bench, req.Class),
		Target: req.Target,
		Ck:     req.Ranks,
		Compute: &core.ComputeProjection{
			Surrogate: []core.SurrogateTerm{{Bench: "437.leslie3d", Weight: 1}},
			CharCount: req.Ranks, BaseTime: 2, TargetTime: 1,
			Ranking: [6]int{1, 2, 3, 4, 5, 6},
		},
		Gamma:       1,
		ComputeTime: 1,
		Comm:        comm,
		CommTime:    comm.TargetTotal(),
	}
	proj.Total = proj.ComputeTime + proj.CommTime
	return &swapp.Result{Request: req, Projection: proj}
}

// stubEval counts evaluations and optionally blocks until released (or the
// request context dies).
type stubEval struct {
	calls atomic.Int64
	gate  chan struct{} // nil: return immediately; else wait for close/ctx
}

func (e *stubEval) fn(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
	e.calls.Add(1)
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return stubResult(req), nil
}

// newTestServer wires a stub-backed Server into an httptest listener.
func newTestServer(t *testing.T, cfg Config, eval *stubEval) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Eval = eval.fn
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one API request and returns status, headers and body.
func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

const reqBT = `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`

func TestCacheHitSecondRequest(t *testing.T) {
	eval := &stubEval{}
	scope := obs.New("test")
	_, ts := newTestServer(t, Config{Workers: 2, Obs: scope}, eval)

	code1, hdr1, body1 := post(t, ts.URL+"/v1/project", reqBT)
	code2, hdr2, body2 := post(t, ts.URL+"/v1/project", reqBT)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("status = %d, %d; want 200, 200", code1, code2)
	}
	if n := eval.calls.Load(); n != 1 {
		t.Errorf("identical back-to-back requests ran %d evaluations, want 1", n)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response differs from the original")
	}
	if hdr1.Get("X-Cache") != "miss" || hdr2.Get("X-Cache") != "hit" {
		t.Errorf("X-Cache = %q, %q; want miss, hit", hdr1.Get("X-Cache"), hdr2.Get("X-Cache"))
	}
	m := scope.Metrics()
	if hits, _ := m.Counter("server.cache.result_hits"); hits != 1 {
		t.Errorf("server.cache.result_hits = %d, want 1", hits)
	}
	if misses, _ := m.Counter("server.cache.result_misses"); misses != 1 {
		t.Errorf("server.cache.result_misses = %d, want 1", misses)
	}
	if reqs, _ := m.Counter("server.requests"); reqs != 2 {
		t.Errorf("server.requests = %d, want 2", reqs)
	}

	// A defaulted base and the explicit equivalent share a cache entry.
	code3, _, _ := post(t, ts.URL+"/v1/project",
		`{"base":"hydra","target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`)
	if code3 != 200 {
		t.Fatalf("explicit-base request: status %d", code3)
	}
	if n := eval.calls.Load(); n != 1 {
		t.Errorf("normalised request missed the cache: %d evaluations", n)
	}
	// The validate op caches separately from project.
	post(t, ts.URL+"/v1/validate", reqBT)
	if n := eval.calls.Load(); n != 2 {
		t.Errorf("validate after project ran %d evaluations, want 2", n)
	}
}

func TestSurrogateEndpointSharesProjectCache(t *testing.T) {
	eval := &stubEval{}
	_, ts := newTestServer(t, Config{Workers: 2}, eval)
	code, _, body := post(t, ts.URL+"/v1/surrogate", reqBT)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var sr struct {
		App     string          `json:"app"`
		Compute json.RawMessage `json:"compute"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("surrogate body: %v", err)
	}
	if sr.App != "BT-MZ.C" || len(sr.Compute) == 0 {
		t.Errorf("surrogate body incomplete: %s", body)
	}
	if bytes.Contains(body, []byte(`"comm"`)) {
		t.Error("surrogate response must not carry the comm section")
	}
	// Same op and key as /v1/project: no second evaluation.
	post(t, ts.URL+"/v1/project", reqBT)
	if n := eval.calls.Load(); n != 1 {
		t.Errorf("project after surrogate ran %d evaluations, want 1", n)
	}
}

func TestSingleflightCollapsesConcurrentDuplicates(t *testing.T) {
	eval := &stubEval{gate: make(chan struct{})}
	_, ts := newTestServer(t, Config{Workers: 2}, eval)

	const n = 4
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/project", "application/json", strings.NewReader(reqBT))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	// Wait until the leader is inside the evaluation, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for eval.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(eval.gate)
	wg.Wait()

	if n := eval.calls.Load(); n != 1 {
		t.Errorf("concurrent duplicates ran %d evaluations, want 1", n)
	}
	for i := range codes {
		if codes[i] != 200 {
			t.Errorf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: body differs from leader's", i)
		}
	}
}

func TestDeadlineExpiryReturnsPromptly(t *testing.T) {
	eval := &stubEval{gate: make(chan struct{})} // never released in time
	scope := obs.New("test")
	_, ts := newTestServer(t, Config{Workers: 1, Obs: scope}, eval)

	start := time.Now()
	code, _, body := post(t, ts.URL+"/v1/project",
		`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16,"timeout_ms":50}`)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", code, body)
	}
	if !bytes.Contains(body, []byte("deadline")) {
		t.Errorf("error body should name the deadline: %s", body)
	}
	if elapsed > 3*time.Second {
		t.Errorf("expired deadline took %v to surface", elapsed)
	}
	close(eval.gate)
	// The failed evaluation must not have poisoned the cache: the next
	// request re-evaluates and succeeds.
	code, _, _ = post(t, ts.URL+"/v1/project", reqBT)
	if code != 200 {
		t.Errorf("request after timeout: status %d", code)
	}
	if n := eval.calls.Load(); n != 2 {
		t.Errorf("evaluations = %d, want 2 (errors are not cached)", n)
	}
}

func TestQueueSaturationReturns503(t *testing.T) {
	eval := &stubEval{gate: make(chan struct{})}
	scope := obs.New("test")
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Obs: scope}, eval)

	// Distinct requests so the singleflight table cannot collapse them:
	// one running, then fill the admission bound (Workers+QueueDepth=2
	// concurrent admissions), then overflow.
	body := func(r int) string {
		return fmt.Sprintf(`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":%d}`, r)
	}
	results := make(chan int, 8)
	launch := func(r int) {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/project", "application/json", strings.NewReader(body(r)))
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	// Occupy the worker, then fill the admission bound: with Workers=1 and
	// QueueDepth=1 the admission counter tolerates 2 concurrent admissions
	// (one transiently taking the free slot plus one true waiter), so two
	// parked requests saturate it while the first evaluates.
	launch(16)
	waitFor(t, func() bool { return eval.calls.Load() == 1 })
	launch(32)
	waitFor(t, func() bool { return s.queued.Load() >= 1 })
	launch(48)
	waitFor(t, func() bool { return s.queued.Load() >= 2 })

	// The next arrival must be rejected immediately — not parked.
	code, hdr, rbody := post(t, ts.URL+"/v1/project", body(64))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated queue: status %d, want 503 (body %s)", code, rbody)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}
	if rej, _ := scope.Metrics().Counter("server.rejected"); rej < 1 {
		t.Errorf("server.rejected = %d, want >= 1", rej)
	}

	// In-flight work is not wedged: release the gate and all three
	// admitted requests complete with 200.
	close(eval.gate)
	for i := 0; i < 3; i++ {
		select {
		case code := <-results:
			if code != 200 {
				t.Errorf("admitted request finished with %d, want 200", code)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("admitted request never completed after release")
		}
	}
}

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBadRequests(t *testing.T) {
	eval := &stubEval{}
	_, ts := newTestServer(t, Config{Workers: 1}, eval)
	cases := []struct {
		name, body string
	}{
		{"unknown target", `{"target":"cray-1","bench":"BT-MZ","class":"C","ranks":16}`},
		{"zero ranks", `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":0}`},
		{"bad class", `{"target":"power6-575","bench":"BT-MZ","class":"CD","ranks":16}`},
		{"unknown bench", `{"target":"power6-575","bench":"CG-MZ","class":"C","ranks":16}`},
		{"ranks beyond limit", `{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":512}`},
		{"base equals target", `{"base":"power6-575","target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`},
		{"unknown field", `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16,"bogus":1}`},
		{"malformed json", `{`},
	}
	for _, tc := range cases {
		code, _, body := post(t, ts.URL+"/v1/project", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, code, body)
		}
		var e apiError
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
	if n := eval.calls.Load(); n != 0 {
		t.Errorf("bad requests reached the evaluator %d times", n)
	}
	if code, _, _ := post(t, ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Error("healthz should tolerate POST via mux default — expected 200")
	}
	resp, err := http.Get(ts.URL + "/v1/project")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/project: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	eval := &stubEval{}
	s, ts := newTestServer(t, Config{Workers: 1}, eval)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/healthz"); c != 200 {
		t.Errorf("/healthz = %d", c)
	}
	if c := get("/readyz"); c != 200 {
		t.Errorf("/readyz = %d", c)
	}
	s.SetDraining(true)
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", c)
	}
	if c := get("/healthz"); c != 200 {
		t.Errorf("/healthz while draining = %d, want 200", c)
	}
}

func TestDebugSurfaceMounted(t *testing.T) {
	eval := &stubEval{}
	_, ts := newTestServer(t, Config{Workers: 1, Obs: obs.New("swappd")}, eval)
	post(t, ts.URL+"/v1/project", reqBT)
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics.json = %d", resp.StatusCode)
	}
	var m obs.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Counter("server.requests"); !ok || v < 1 {
		t.Errorf("debug surface does not see server.requests: %+v", m.Counters)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	eval := &stubEval{}
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: 2}, eval)
	body := func(r int) string {
		return fmt.Sprintf(`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":%d}`, r)
	}
	post(t, ts.URL+"/v1/project", body(16)) // cache: 16
	post(t, ts.URL+"/v1/project", body(32)) // cache: 32,16
	post(t, ts.URL+"/v1/project", body(16)) // hit; cache: 16,32
	post(t, ts.URL+"/v1/project", body(64)) // evicts 32; cache: 64,16
	if got := s.CacheLen(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
	post(t, ts.URL+"/v1/project", body(16)) // still hit
	if n := eval.calls.Load(); n != 3 {
		t.Errorf("evaluations = %d, want 3 (16 stayed resident)", n)
	}
	post(t, ts.URL+"/v1/project", body(32)) // evicted: re-evaluates
	if n := eval.calls.Load(); n != 4 {
		t.Errorf("evaluations = %d, want 4 (32 was evicted)", n)
	}
}
