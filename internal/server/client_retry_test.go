package server

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

// TestClientBackoffSchedule pins the retry schedule deterministically:
// identity jitter and recorded sleeps turn the backoff policy into a pure
// table of expected waits.
func TestClientBackoffSchedule(t *testing.T) {
	cases := []struct {
		name       string
		configure  func(*Client)
		script     []int // per-attempt response status; 0 drops the connection
		wantErr    bool
		wantSleeps []time.Duration
	}{
		{
			name:       "exponential doubling from the default base",
			script:     []int{0, 0, 0},
			wantSleeps: []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond},
		},
		{
			name: "cap bounds the exponent",
			configure: func(c *Client) {
				c.MaxRetries = 4
				c.BaseBackoff = time.Second
				c.MaxBackoff = 2 * time.Second
			},
			script:     []int{0, 0, 0, 0},
			wantSleeps: []time.Duration{time.Second, 2 * time.Second, 2 * time.Second, 2 * time.Second},
		},
		{
			name:   "Retry-After overrides a shorter computed backoff",
			script: []int{http.StatusServiceUnavailable}, // flaky server sends Retry-After: 1
			wantSleeps: []time.Duration{
				time.Second, // not the 100ms the schedule would pick
			},
		},
		{
			name:       "negative MaxRetries disables retrying",
			configure:  func(c *Client) { c.MaxRetries = -1 },
			script:     []int{0},
			wantErr:    true,
			wantSleeps: []time.Duration{},
		},
		{
			name:       "exhausted retries surface the last error",
			configure:  func(c *Client) { c.MaxRetries = 2 },
			script:     []int{0, 0, 0},
			wantErr:    true,
			wantSleeps: []time.Duration{100 * time.Millisecond, 200 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, calls := newFlakyServer(t, tc.script)
			var slept []time.Duration
			c := testClient(ts.URL, &slept)
			if tc.configure != nil {
				tc.configure(c)
			}
			_, err := c.Project(context.Background(), clientReq)
			if tc.wantErr != (err != nil) {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if len(slept) != len(tc.wantSleeps) {
				t.Fatalf("slept %v (%d times), want %d", slept, len(slept), len(tc.wantSleeps))
			}
			for i, want := range tc.wantSleeps {
				if slept[i] != want {
					t.Errorf("sleep %d = %v, want %v", i, slept[i], want)
				}
			}
			wantCalls := int64(len(tc.script))
			if !tc.wantErr {
				wantCalls++ // the final, successful attempt
			}
			if calls.Load() != wantCalls {
				t.Errorf("server saw %d attempts, want %d", calls.Load(), wantCalls)
			}
		})
	}
}

// TestClientSeededJitterBounds proves an injected seeded jitter flows
// through unchanged and that the default (nil Jitter) equal-jitter policy
// stays inside [d/2, d] — the backoff never collapses to zero and never
// overshoots its schedule.
func TestClientSeededJitterBounds(t *testing.T) {
	// Two clients with the same seed produce the same schedule.
	runOnce := func() []time.Duration {
		r := rand.New(rand.NewSource(7))
		c := &Client{BaseBackoff: 100 * time.Millisecond, Jitter: func(d time.Duration) time.Duration {
			return d/2 + time.Duration(r.Int63n(int64(d/2)+1))
		}}
		out := make([]time.Duration, 4)
		for i := range out {
			out[i] = c.backoff(i)
		}
		return out
	}
	first, second := runOnce(), runOnce()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("seeded jitter not reproducible: attempt %d gave %v then %v", i, first[i], second[i])
		}
	}
	// Default jitter bounds.
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second}
	for attempt := 0; attempt < 8; attempt++ {
		full := 100 * time.Millisecond << uint(attempt)
		if full > 5*time.Second || full <= 0 {
			full = 5 * time.Second
		}
		for i := 0; i < 32; i++ {
			got := c.backoff(attempt)
			if got < full/2 || got > full {
				t.Fatalf("attempt %d: default jitter gave %v, outside [%v, %v]", attempt, got, full/2, full)
			}
		}
	}
}

// TestClientBreakerOpenShortCircuit proves a client-side breaker fails
// fast: after the threshold of failures the next call never reaches the
// network, and once the cooldown passes a half-open probe restores
// service.
func TestClientBreakerOpenShortCircuit(t *testing.T) {
	ts, calls := newFlakyServer(t, []int{http.StatusInternalServerError})
	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	now := time.Now()
	c.breaker = newBreaker(1, 10*time.Second, func() time.Time { return now })

	// 500 is non-retryable: one attempt, one recorded failure, breaker
	// trips at threshold 1.
	if _, err := c.Project(context.Background(), clientReq); err == nil {
		t.Fatal("500 did not surface")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d attempts, want 1", calls.Load())
	}

	// While open: short-circuit with a retry hint, zero network attempts.
	var boe *breakerOpenError
	if _, err := c.Project(context.Background(), clientReq); !errors.As(err, &boe) {
		t.Fatalf("open breaker returned %v, want breakerOpenError", err)
	} else if boe.retryAfter <= 0 {
		t.Errorf("breakerOpenError carries no retry hint: %v", boe.retryAfter)
	}
	if calls.Load() != 1 {
		t.Errorf("open breaker still hit the network (%d attempts)", calls.Load())
	}

	// After the cooldown the probe goes through; the script is exhausted
	// so the server now answers properly and the breaker closes.
	now = now.Add(11 * time.Second)
	if _, err := c.Project(context.Background(), clientReq); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.Project(context.Background(), clientReq); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d attempts, want 3", calls.Load())
	}
}
