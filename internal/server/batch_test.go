package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	swapp "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// newHTTPServer exposes an already-built Server over an httptest listener.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// httpGet returns the status of a GET, draining the body.
func httpGet(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// groupedEval is an EvalFunc that routes its characterisation through the
// layered store's grouped-fill hook, the way the real pipeline shares
// per-machine characterisations: every request for one (base, target)
// group resolves the same store key, so the per-layer hit/miss counters
// expose exactly how many times the expensive stage actually ran.
type groupedEval struct {
	calls atomic.Int64
	fills atomic.Int64
}

func (e *groupedEval) fn(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
	e.calls.Add(1)
	if req.Store != nil {
		key := cluster.GroupKey(req.Base, req.Target)
		if _, err := req.Store.CharacterisationFill(ctx, key, func() (any, error) {
			e.fills.Add(1)
			return "characterisation:" + key, nil
		}); err != nil {
			return nil, err
		}
	}
	return stubResult(req), nil
}

// batchBody builds a /v1/batch payload from items.
func batchBody(t *testing.T, items ...string) string {
	t.Helper()
	return fmt.Sprintf(`{"requests":[%s]}`, strings.Join(items, ","))
}

// decodeBatch parses a /v1/batch response body.
func decodeBatch(t *testing.T, body []byte) batchResponse {
	t.Helper()
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, body)
	}
	return resp
}

// TestBatchAmortisesCharacterisation is the tentpole's proof: K requests
// sharing a (base, target) group, submitted as one batch, run the
// characterisation stage exactly once — one miss on the store's
// characterisation layer, K-1 hits — while each response stays
// byte-identical to the one its own endpoint serves for the same request.
func TestBatchAmortisesCharacterisation(t *testing.T) {
	eval := &groupedEval{}
	scope := obs.New("test")
	s := New(Config{Workers: 4, Obs: scope, Eval: eval.fn})
	ts := newHTTPServer(t, s)

	// An individually-served control server with an identical stub, for
	// the byte-identity comparison.
	ctlEval := &groupedEval{}
	ctl := New(Config{Workers: 4, Eval: ctlEval.fn})
	ctlTS := newHTTPServer(t, ctl)

	// Group A: three benches on one (base, target). Group B: one more
	// target. Plus one explicit validate on group A.
	items := []struct {
		op   string
		body string
	}{
		{"project", `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`},
		{"project", `{"target":"power6-575","bench":"SP-MZ","class":"C","ranks":16}`},
		{"project", `{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":16}`},
		{"validate", `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":32}`},
		{"surrogate", `{"target":"bgp","bench":"BT-MZ","class":"C","ranks":16}`},
	}
	reqs := make([]string, len(items))
	for i, it := range items {
		reqs[i] = fmt.Sprintf(`{"op":%q,%s`, it.op, it.body[1:])
	}
	code, _, body := post(t, ts.URL+"/v1/batch", batchBody(t, reqs...))
	if code != 200 {
		t.Fatalf("batch status = %d: %s", code, body)
	}
	resp := decodeBatch(t, body)
	if len(resp.Results) != len(items) {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), len(items))
	}
	if resp.Groups != 2 {
		t.Errorf("batch decomposed into %d groups, want 2", resp.Groups)
	}

	// Amortisation: one characterisation fill per group, ever.
	if n := eval.fills.Load(); n != 2 {
		t.Errorf("characterisation ran %d times for 2 groups (amortisation broken)", n)
	}
	m := scope.Metrics()
	if misses, _ := m.Counter("server.cache.characterisation_misses"); misses != 2 {
		t.Errorf("characterisation layer misses = %d, want exactly 2 (one per group)", misses)
	}
	if hits, _ := m.Counter("server.cache.characterisation_hits"); hits != int64(len(items)-2) {
		t.Errorf("characterisation layer hits = %d, want %d", hits, len(items)-2)
	}

	// Byte-identity: each entry matches its own endpoint's document on the
	// control server (modulo the endpoint's trailing newline, which JSON
	// embedding cannot carry).
	for i, it := range items {
		e := resp.Results[i]
		if e.Index != i || e.Status != 200 {
			t.Fatalf("entry %d = index %d status %d (%s)", i, e.Index, e.Status, e.Error)
		}
		_, _, individual := post(t, ctlTS.URL+"/v1/"+it.op, it.body)
		if want := bytes.TrimSuffix(individual, []byte("\n")); !bytes.Equal(e.Body, want) {
			t.Errorf("entry %d differs from its endpoint:\nbatch:      %s\nindividual: %s", i, e.Body, want)
		}
	}
}

// TestBatchSharesResultCacheWithEndpoints proves the batch path addresses
// the same result cache as the single endpoints: a batch after an
// individual request is all hits, and vice versa.
func TestBatchSharesResultCacheWithEndpoints(t *testing.T) {
	eval := &groupedEval{}
	s := New(Config{Workers: 2, Eval: eval.fn})
	ts := newHTTPServer(t, s)

	_, hdr, individual := post(t, ts.URL+"/v1/project", reqBT)
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first individual request X-Cache = %q", hdr.Get("X-Cache"))
	}
	code, _, body := post(t, ts.URL+"/v1/batch", batchBody(t, reqBT))
	if code != 200 {
		t.Fatalf("batch status = %d: %s", code, body)
	}
	resp := decodeBatch(t, body)
	if n := eval.calls.Load(); n != 1 {
		t.Errorf("batch after identical individual request ran %d evaluations, want 1", n)
	}
	if !bytes.Equal(resp.Results[0].Body, bytes.TrimSuffix(individual, []byte("\n"))) {
		t.Error("cached batch entry differs from the individual response")
	}
}

// TestBatchItemErrorsAreEntries proves item failures stay per-entry: a
// malformed item reports its own 400 without failing the batch or its
// healthy neighbours.
func TestBatchItemErrorsAreEntries(t *testing.T) {
	eval := &groupedEval{}
	s := New(Config{Workers: 2, Eval: eval.fn})
	ts := newHTTPServer(t, s)

	code, _, body := post(t, ts.URL+"/v1/batch", batchBody(t,
		reqBT,
		`{"target":"power6-575","bench":"BT-MZ","class":"CD","ranks":16}`, // bad class
		`{"op":"teleport",`+reqBT[1:],                                     // unknown op
	))
	if code != 200 {
		t.Fatalf("batch status = %d: %s", code, body)
	}
	resp := decodeBatch(t, body)
	if resp.Results[0].Status != 200 {
		t.Errorf("healthy entry status = %d (%s)", resp.Results[0].Status, resp.Results[0].Error)
	}
	for _, i := range []int{1, 2} {
		if resp.Results[i].Status != 400 || resp.Results[i].Error == "" {
			t.Errorf("entry %d = status %d error %q, want a 400 with a message", i, resp.Results[i].Status, resp.Results[i].Error)
		}
	}
}

// TestBatchEnvelopeValidation proves only malformed envelopes fail the
// whole request.
func TestBatchEnvelopeValidation(t *testing.T) {
	eval := &groupedEval{}
	s := New(Config{Workers: 2, Eval: eval.fn})
	ts := newHTTPServer(t, s)

	for name, body := range map[string]string{
		"empty":         `{"requests":[]}`,
		"unknown field": `{"requests":[` + reqBT + `],"mode":"fast"}`,
		"not json":      `{"requests":`,
	} {
		if code, _, _ := post(t, ts.URL+"/v1/batch", body); code != 400 {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	big := make([]string, maxBatchItems+1)
	for i := range big {
		big[i] = reqBT
	}
	if code, _, _ := post(t, ts.URL+"/v1/batch", batchBody(t, big...)); code != 400 {
		t.Errorf("oversized batch accepted")
	}
	resp, err := httpGet(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	if resp != 405 {
		t.Errorf("GET /v1/batch = %d, want 405", resp)
	}
}
