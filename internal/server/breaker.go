package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// breakerOpenError rejects a request while the circuit breaker is open:
// the pipeline has failed repeatedly and hammering it helps nobody.
// RetryAfter is the suggested client backoff, surfaced as a Retry-After
// header on the 503.
type breakerOpenError struct {
	retryAfter time.Duration
}

func (e *breakerOpenError) Error() string {
	return fmt.Sprintf("server: circuit breaker open, retry in %v", e.retryAfter.Round(time.Second))
}

// breaker is a consecutive-failure circuit breaker around the evaluation
// pipeline. Closed, it passes everything and counts consecutive failures;
// at threshold it opens and rejects for cooldown; after cooldown it
// half-opens and lets exactly one probe through — the probe's outcome
// re-closes or re-opens the circuit. Context cancellations, client
// deadlines, and admission-queue rejections are breaker-neutral: they say
// nothing about the pipeline's health.
//
// A nil *breaker is a disabled breaker: allow always passes, record is a
// no-op.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive, while closed
	openedAt time.Time // while open
	probing  bool      // while half-open: a probe is in flight
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// newBreaker builds a breaker tripping after threshold consecutive
// failures, rejecting for cooldown before each probe. now is injectable
// for tests.
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may proceed. When it may not, retryAfter
// suggests how long the client should wait. The transition open→half-open
// happens here: the first allow after the cooldown becomes the probe.
func (b *breaker) allow() (retryAfter time.Duration, ok bool) {
	if b == nil {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return 0, true
	case breakerOpen:
		if remaining := b.openedAt.Add(b.cooldown).Sub(b.now()); remaining > 0 {
			return remaining, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return 0, true
	default: // half-open
		if b.probing {
			return b.cooldown, false
		}
		b.probing = true
		return 0, true
	}
}

// record reports one evaluation outcome. Neutral errors (cancellation,
// deadline, queue-full) release a probe without a verdict; success closes
// the circuit; a real failure counts toward the threshold and re-opens a
// half-open circuit immediately.
func (b *breaker) record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case err == nil:
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
	case neutralErr(err):
		b.probing = false
	default:
		b.probing = false
		b.failures++
		if b.state == breakerHalfOpen || b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.failures = 0
		}
	}
}

// neutralErr reports whether an evaluation error says nothing about the
// pipeline's health and must not move the breaker.
func neutralErr(err error) bool {
	var boe *breakerOpenError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errQueueFull) ||
		errors.As(err, &boe)
}
