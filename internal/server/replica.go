package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	swapp "repro"
	"repro/internal/cluster"
	"repro/internal/core"
)

// Warm failover: when an owner finishes a fill it pushes the rendered
// result bytes to its ring successor (the replica that inherits the group
// if the owner leaves), content-addressed so a duplicate push is a no-op.
// When gossip later removes the dead owner and the ring reassigns the
// group, the successor serves the replicated bytes — byte-identical, no
// recomputation — counted as cluster.replica_hits against the cold-path
// cluster.fallbacks.

// replicatePushTimeout bounds one background replication push. Replication
// is an optimisation: a push that cannot land quickly is dropped (counted)
// rather than retried forever — the fallback is plain recomputation.
const replicatePushTimeout = 5 * time.Second

// replicaMsg is the POST /v1/replicate body: the result-cache key (hex),
// the producing endpoint, a sha256 of the body, and the rendered bytes.
type replicaMsg struct {
	Key      string `json:"key"`
	Endpoint string `json:"endpoint"`
	Sum      string `json:"sum"`
	Body     []byte `json:"body"`
}

// replicaVaultKey namespaces one replicated result in the store's artifact
// vault.
func replicaVaultKey(keyHex, endpoint string) string {
	return fmt.Sprintf("replica|%s|%q", keyHex, endpoint)
}

// replicaBytes looks up the replicated wire bytes for (key, endpoint) in
// the local vault, counting a replica hit when found.
func (s *Server) replicaBytes(key cacheKey, endpoint string) ([]byte, bool) {
	if s.peers == nil || s.store == nil {
		return nil, false
	}
	body, ok := s.store.GetArtifact(replicaVaultKey(hex.EncodeToString(key[:]), endpoint))
	if !ok {
		return nil, false
	}
	s.obs.Count("cluster.replica_hits", 1)
	return body, true
}

// replicaServe writes a replicated result verbatim, reporting whether one
// was found. The bytes are exactly what the dead owner rendered, so the
// response is byte-identical to the owner's — the warm-failover contract.
func (s *Server) replicaServe(w http.ResponseWriter, key cacheKey, endpoint string) bool {
	body, ok := s.replicaBytes(key, endpoint)
	if !ok {
		return false
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", "replica")
	_, _ = w.Write(body)
	return true
}

// maybeReplicate pushes a freshly computed result's rendered bytes to the
// group's ring successor. Only locally owned groups replicate — a fallback
// computation on a non-owner is already a degraded path and its successor
// would be wrong. The push runs in the background (WaitReplication joins
// it); rendering reuses the cache's memoised bytes, so the hot path pays
// one map lookup.
func (s *Server) maybeReplicate(key cacheKey, ep int, endpoint string, res *swapp.Result, req swapp.Request, render func(*swapp.Result) ([]byte, error)) {
	if s.peers == nil || s.store == nil {
		return
	}
	gk := cluster.GroupKey(req.Base, req.Target)
	if owner, pc := s.peers.route(gk); pc != nil || owner == "" {
		return
	}
	succ := s.peers.successor(gk)
	if succ == nil {
		return
	}
	body, err := s.cache.renderedBytes(key, ep, res, render)
	if err != nil {
		return
	}
	sum := sha256.Sum256(body)
	payload, err := json.Marshal(replicaMsg{
		Key:      hex.EncodeToString(key[:]),
		Endpoint: endpoint,
		Sum:      hex.EncodeToString(sum[:]),
		Body:     body,
	})
	if err != nil {
		return
	}
	s.replWG.Add(1)
	go func() {
		defer s.replWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), replicatePushTimeout)
		defer cancel()
		if _, _, err := succ.client.PostRaw(ctx, "/v1/replicate", payload, nil); err != nil {
			s.obs.Count("cluster.replica_push_fails", 1)
			return
		}
		s.obs.Count("cluster.replica_pushes", 1)
	}()
}

// WaitReplication blocks until every in-flight replication push has
// completed (tests; the pushes are otherwise fire-and-forget).
func (s *Server) WaitReplication() { s.replWG.Wait() }

// handleReplicate serves POST /v1/replicate: verify the checksum and store
// the pushed bytes in the artifact vault. Idempotent by construction — a
// duplicate of a resident artifact changes neither counters' meaning nor
// the vault size (counted as cluster.replica_dups); a checksum mismatch is
// rejected so a corrupted push can never poison the serving path.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	s.obs.Count("server.requests", 1)
	s.obs.Count("server.requests./v1/replicate", 1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("/v1/replicate requires POST"))
		return
	}
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("layered cache disabled; not accepting replicas"))
		return
	}
	var msg replicaMsg
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&msg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding replica: %w", err))
		return
	}
	if len(msg.Key) != 2*sha256.Size || msg.Endpoint == "" || len(msg.Body) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("replica needs key, endpoint, and body"))
		return
	}
	stored, err := s.store.ImportArtifact(core.Artifact{
		Key:  replicaVaultKey(msg.Key, msg.Endpoint),
		Sum:  msg.Sum,
		Body: msg.Body,
	})
	if err != nil {
		s.obs.Count("cluster.replica_rejects", 1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if stored {
		s.obs.Count("cluster.replica_stores", 1)
	} else {
		s.obs.Count("cluster.replica_dups", 1)
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"stored\":%t}\n", stored)
}

// probeHealthz is the gossip direct probe: GET addr/healthz must answer
// 200 within the probe context.
func probeHealthz(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// indirectPing is the gossip indirect probe: ask via to health-check
// target on our behalf (GET via/v1/gossip/ping?target=...). Distinguishes
// a dead target from a broken direct link.
func indirectPing(ctx context.Context, via, target string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		via+"/v1/gossip/ping?target="+url.QueryEscape(target), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gossip ping via %s: HTTP %d", via, resp.StatusCode)
	}
	return nil
}

// handleGossipPing serves GET /v1/gossip/ping?target=...: health-check the
// target for a peer whose own direct link may be broken, answering 200 if
// the target's /healthz responds and 502 otherwise.
func (s *Server) handleGossipPing(w http.ResponseWriter, r *http.Request) {
	target := r.URL.Query().Get("target")
	if target == "" {
		writeError(w, http.StatusBadRequest, errors.New("gossip ping needs a target"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), replicatePushTimeout)
	defer cancel()
	if err := probeHealthz(ctx, target); err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Membership reports the routing ring's current member addresses (gossip
// view in gossip mode, configured membership otherwise); nil when
// peer-aware mode is off.
func (s *Server) Membership() []string {
	if s.peers == nil {
		return nil
	}
	return s.peers.membership()
}

// SetMembership rebuilds the routing ring over the given alive membership
// — the gossip OnChange hook, also callable directly by tests.
func (s *Server) SetMembership(alive []string) {
	if s.peers == nil {
		return
	}
	s.peers.setMembership(alive)
}

// Handoff drains the async job manager for shutdown: every unfinished job
// is cancelled and its transferable state — op, original payload, newest
// checkpoint seeds — shipped to the replica that now owns its group, which
// resumes the search from the seeds via the ResumeSeeds path instead of
// restarting it. Returns how many jobs were handed off successfully.
func (s *Server) Handoff(ctx context.Context) int {
	hands := s.jobs.DrainForHandoff()
	sent := 0
	for _, h := range hands {
		// Every drained job must resolve its forwarding address — possibly
		// to "none" — so its subscribers' terminal handed_off event can go
		// out and their streams close.
		target := ""
		if s.peers != nil {
			if pc := s.peers.handoffTarget(h.Group); pc != nil {
				if err := s.shipHandoff(ctx, pc, h); err != nil {
					s.obs.Count("cluster.job_handoff_fails", 1)
				} else {
					target = pc.addr
					s.obs.Count("cluster.job_handoffs", 1)
					sent++
				}
			} else {
				s.obs.Count("cluster.job_handoff_drops", 1)
			}
		}
		s.jobs.MarkHandoffTarget(h.ID, target)
	}
	return sent
}

// shipHandoff posts one drained job's transferable state to its new owner.
func (s *Server) shipHandoff(ctx context.Context, pc *peerClient, h cluster.Handoff) error {
	payload, err := json.Marshal(h)
	if err != nil {
		return err
	}
	hctx, cancel := context.WithTimeout(ctx, replicatePushTimeout)
	defer cancel()
	_, _, err = pc.client.PostRaw(hctx, "/v1/jobs/handoff", payload, nil)
	return err
}
