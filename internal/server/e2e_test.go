package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	swapp "repro"
	"repro/internal/report"
)

// TestAPIMatchesCLIProjection is the end-to-end parity check: for each
// NAS-MZ benchmark, the JSON served by /v1/project must be byte-identical
// to the wire form of the projection the library (and therefore the swapp
// CLI) computes for the same request — the cache and the serving path must
// never perturb a number.
func TestAPIMatchesCLIProjection(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline evaluations; skipped in -short")
	}
	s := New(Config{Workers: 2, DefaultTimeout: 5 * time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		bench swapp.Request
		body  string
	}{
		{swapp.Request{Target: swapp.TargetPower6, Bench: swapp.BT, Class: swapp.ClassC, Ranks: 16},
			`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`},
		{swapp.Request{Target: swapp.TargetPower6, Bench: swapp.SP, Class: swapp.ClassC, Ranks: 16},
			`{"target":"power6-575","bench":"SP-MZ","class":"C","ranks":16}`},
		{swapp.Request{Target: swapp.TargetPower6, Bench: swapp.LU, Class: swapp.ClassC, Ranks: 16},
			`{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":16}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.bench.Bench), func(t *testing.T) {
			res, err := swapp.Project(tc.bench)
			if err != nil {
				t.Fatalf("library projection: %v", err)
			}
			want, err := report.MarshalProjection(res.Projection, nil)
			if err != nil {
				t.Fatal(err)
			}
			get := func() (string, []byte) {
				resp, err := http.Post(ts.URL+"/v1/project", "application/json", strings.NewReader(tc.body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				b, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != 200 {
					t.Fatalf("status %d: %s", resp.StatusCode, b)
				}
				return resp.Header.Get("X-Cache"), b
			}
			cache1, body1 := get()
			if !bytes.Equal(body1, want) {
				t.Errorf("API body differs from the library projection:\nAPI: %s\nCLI: %s", body1, want)
			}
			if cache1 != "miss" {
				t.Errorf("first request X-Cache = %q, want miss", cache1)
			}
			cache2, body2 := get()
			if cache2 != "hit" {
				t.Errorf("second request X-Cache = %q, want hit", cache2)
			}
			if !bytes.Equal(body2, want) {
				t.Error("cached API body differs from the library projection")
			}
		})
	}
}
