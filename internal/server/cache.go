package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	swapp "repro"
)

// digest returns the content-addressed cache key for one evaluation: a
// sha256 over the operation and every request field that influences the
// numbers. Workers and Obs are excluded (the projection is byte-identical
// across them, by the engine's determinism contract), as is the caller's
// deadline — a request that times out for one client must still be
// serveable from cache for the next. Requests must be normalised first so
// that a defaulted and an explicit base share an entry.
func digest(op string, req swapp.Request) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%s|%c|%d",
		op, req.Base, req.Target, req.Bench, req.Class, req.Ranks)))
	return hex.EncodeToString(h[:])
}

// call is one in-flight evaluation, shared by every request that arrived
// while it ran. done closes exactly once, after res/err are set.
type call struct {
	done chan struct{}
	res  *swapp.Result
	err  error
}

// cache is the result store: an LRU over finished evaluations plus a
// singleflight table collapsing duplicate in-flight ones. Entries hold
// *swapp.Result values, which are immutable once published.
type cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key → element; element value is *entry
	inflight map[string]*call
}

// entry is one LRU element's payload.
type entry struct {
	key string
	res *swapp.Result
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{
		max:      max,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*call{},
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *cache) get(key string) (*swapp.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// join returns the in-flight call for key, creating it if absent. leader
// is true for the creator, who must run the evaluation and finish it;
// everyone else waits on call.done.
func (c *cache) join(key string) (cl *call, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.inflight[key]; ok {
		return cl, false
	}
	cl = &call{done: make(chan struct{})}
	c.inflight[key] = cl
	return cl, true
}

// finish publishes the leader's outcome: successful results enter the LRU,
// the in-flight slot is cleared either way, and every waiter is released.
func (c *cache) finish(key string, cl *call, res *swapp.Result, err error) {
	c.mu.Lock()
	cl.res, cl.err = res, err
	delete(c.inflight, key)
	if err == nil {
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			el.Value.(*entry).res = res
		} else {
			c.entries[key] = c.ll.PushFront(&entry{key: key, res: res})
			for c.ll.Len() > c.max {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.entries, oldest.Value.(*entry).key)
			}
		}
	}
	c.mu.Unlock()
	close(cl.done)
}

// len reports the number of cached results.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
