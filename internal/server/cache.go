package server

import (
	"container/list"
	"crypto/sha256"
	"strconv"
	"sync"

	swapp "repro"
)

// cacheKey is the content address of one evaluation result: a raw sha256.
// Using the array itself as the map key (instead of a hex string) keeps
// key derivation allocation-free on the serving hot path.
type cacheKey [sha256.Size]byte

// digest returns the content-addressed cache key for one evaluation: a
// sha256 over the operation and every request field that influences the
// numbers. Workers and Obs are excluded (the projection is byte-identical
// across them, by the engine's determinism contract), as is the caller's
// deadline — a request that times out for one client must still be
// serveable from cache for the next. warm IS included: a warm-started
// search explores from a different generation 0 and may produce different
// bytes, so warm and cold results never share an entry. Requests must be
// normalised first so that a defaulted and an explicit base share an
// entry.
func digest(op string, req swapp.Request, warm bool) cacheKey {
	var buf [96]byte
	b := buf[:0]
	b = append(b, op...)
	b = append(b, '|')
	b = append(b, req.Base...)
	b = append(b, '|')
	b = append(b, req.Target...)
	b = append(b, '|')
	b = append(b, string(req.Bench)...)
	b = append(b, '|')
	b = append(b, byte(req.Class))
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(req.Ranks), 10)
	if warm {
		b = append(b, "|warm"...)
	}
	return sha256.Sum256(b)
}

// Endpoint indices for the per-endpoint rendered-bytes slots. /v1/project
// and /v1/surrogate share one result entry (same op) but render it
// differently, so each endpoint owns a slot.
const (
	epProject = iota
	epValidate
	epSurrogate
	numEndpoints
)

// call is one in-flight evaluation, shared by every request that arrived
// while it ran. done closes exactly once, after res/err are set.
type call struct {
	done chan struct{}
	res  *swapp.Result
	err  error
}

// cache is the result store: an LRU over finished evaluations plus a
// singleflight table collapsing duplicate in-flight ones. Entries hold
// *swapp.Result values, which are immutable once published, plus the
// rendered wire bytes per endpoint — rendered at most once per (entry,
// endpoint) and served as-is on every later hit, so the hot path never
// re-marshals a projection.
type cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List                 // front = most recently used
	entries  map[cacheKey]*list.Element // key → element; element value is *entry
	inflight map[cacheKey]*call
}

// entry is one LRU element's payload.
type entry struct {
	key      cacheKey
	res      *swapp.Result
	rendered [numEndpoints][]byte
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{
		max:      max,
		ll:       list.New(),
		entries:  map[cacheKey]*list.Element{},
		inflight: map[cacheKey]*call{},
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *cache) get(key cacheKey) (*swapp.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// renderedBytes returns the wire bytes for (key, ep), rendering via render
// at most once per slot: a hit serves the stored bytes with zero
// marshalling work. Rendering runs outside the lock (it is a pure function
// of the immutable result); concurrent first-renders produce identical
// bytes, so last-write-wins is benign. When the entry has been evicted the
// bytes are rendered and returned uncached.
func (c *cache) renderedBytes(key cacheKey, ep int, res *swapp.Result, render func(*swapp.Result) ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		if b := el.Value.(*entry).rendered[ep]; b != nil {
			c.mu.Unlock()
			return b, nil
		}
	}
	c.mu.Unlock()
	b, err := render(res)
	if err != nil || !ok {
		return b, err
	}
	c.mu.Lock()
	if el, still := c.entries[key]; still {
		el.Value.(*entry).rendered[ep] = b
	}
	c.mu.Unlock()
	return b, nil
}

// join returns the in-flight call for key, creating it if absent. leader
// is true for the creator, who must run the evaluation and finish it;
// everyone else waits on call.done.
func (c *cache) join(key cacheKey) (cl *call, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.inflight[key]; ok {
		return cl, false
	}
	cl = &call{done: make(chan struct{})}
	c.inflight[key] = cl
	return cl, true
}

// finish publishes the leader's outcome: successful results enter the LRU,
// the in-flight slot is cleared either way, and every waiter is released.
// It returns the resulting entry count (for the size gauge).
func (c *cache) finish(key cacheKey, cl *call, res *swapp.Result, err error) int {
	c.mu.Lock()
	cl.res, cl.err = res, err
	delete(c.inflight, key)
	if err == nil {
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			e := el.Value.(*entry)
			e.res = res
			e.rendered = [numEndpoints][]byte{}
		} else {
			c.entries[key] = c.ll.PushFront(&entry{key: key, res: res})
			for c.ll.Len() > c.max {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.entries, oldest.Value.(*entry).key)
			}
		}
	}
	n := c.ll.Len()
	c.mu.Unlock()
	close(cl.done)
	return n
}

// len reports the number of cached results.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
