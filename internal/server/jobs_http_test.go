package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	swapp "repro"
	"repro/internal/cluster"
)

// submitJob POSTs one job and returns its decoded status document.
func submitJob(t *testing.T, url, body string) cluster.JobStatus {
	t.Helper()
	code, _, out := post(t, url+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("job submit status = %d: %s", code, out)
	}
	var st cluster.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("decoding job status: %v\n%s", err, out)
	}
	if st.ID == "" || st.State == "" {
		t.Fatalf("job status missing id/state: %s", out)
	}
	return st
}

// jobStatus GETs one job's status document.
func jobStatus(t *testing.T, url, id string) cluster.JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding job status: %v", err)
	}
	return st
}

// waitJobDone polls a job until it leaves the queued/running states.
func waitJobDone(t *testing.T, url, id string) cluster.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := jobStatus(t, url, id)
		if st.State == cluster.JobDone || st.State == cluster.JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 10s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobsSubmitProgressSSEResult is the async round-trip: submit a
// projection job whose evaluation reports per-generation GA progress, watch
// the SSE stream replay and finish with exactly one done event, then fetch
// the result document and find it byte-identical to the synchronous
// endpoint's body.
func TestJobsSubmitProgressSSEResult(t *testing.T) {
	const gens = 4
	eval := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		for g := 0; g < gens; g++ {
			if req.OnGAProgress != nil {
				req.OnGAProgress(0, g, float64(10-g), []float64{float64(g), 1})
			}
		}
		return stubResult(req), nil
	}
	s := New(Config{Workers: 2, Eval: eval})
	ts := newHTTPServer(t, s)

	st := submitJob(t, ts.URL, `{"request":`+reqBT+`}`)
	final := waitJobDone(t, ts.URL, st.ID)
	if final.State != cluster.JobDone {
		t.Fatalf("job state = %s (%s), want done", final.State, final.Error)
	}
	if final.Snapshots != gens || len(final.Progress) != gens {
		t.Errorf("job recorded %d snapshots (%d retained), want %d", final.Snapshots, len(final.Progress), gens)
	}
	for g, snap := range final.Progress {
		if snap.Member != 0 || snap.Generation != g || snap.BestFitness != float64(10-g) {
			t.Errorf("snapshot %d = %+v", g, snap)
		}
	}
	if final.Attempts != 1 || final.Resumed {
		t.Errorf("clean job reports attempts=%d resumed=%v", final.Attempts, final.Resumed)
	}

	// SSE on a finished job: history replay then one done event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var progress, done int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev cluster.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		switch ev.Type {
		case "progress":
			progress++
			if ev.Snapshot == nil {
				t.Error("progress event without snapshot")
			}
		case "done":
			done++
			if ev.State != cluster.JobDone {
				t.Errorf("done event state = %s", ev.State)
			}
		}
	}
	if progress != gens || done != 1 {
		t.Errorf("SSE stream had %d progress + %d done events, want %d + 1", progress, done, gens)
	}

	// The result document is the endpoint's body, verbatim.
	_, _, want := post(t, ts.URL+"/v1/project", reqBT)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !bytes.Equal(got.Bytes(), want) {
		t.Errorf("job result (status %d) differs from the synchronous endpoint:\njob:  %s\nsync: %s",
			resp.StatusCode, got.Bytes(), want)
	}
}

// TestJobPanicCheckpointResume is the resilience satellite: the first
// attempt reports checkpoints then panics mid-search; the manager resumes
// the job with those genomes as the surrogate seeds and the second attempt
// completes. The job finishes done, marked resumed, with the worker panic
// contained.
func TestJobPanicCheckpointResume(t *testing.T) {
	var attempts atomic.Int64
	var gotSeeds atomic.Value // [][]float64 seen by the resume attempt
	eval := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		switch attempts.Add(1) {
		case 1:
			if len(req.ResumeSeeds) != 0 {
				t.Errorf("first attempt carried %d resume seeds", len(req.ResumeSeeds))
			}
			req.OnGAProgress(1, 0, 9, []float64{1, 0})
			req.OnGAProgress(0, 0, 8, []float64{0, 0})
			req.OnGAProgress(0, 1, 7, []float64{0, 7})
			panic("injected worker fault")
		default:
			gotSeeds.Store(req.ResumeSeeds)
			return stubResult(req), nil
		}
	}
	s := New(Config{Workers: 2, Eval: eval})
	ts := newHTTPServer(t, s)

	st := submitJob(t, ts.URL, `{"op":"project","request":`+reqBT+`}`)
	final := waitJobDone(t, ts.URL, st.ID)
	if final.State != cluster.JobDone {
		t.Fatalf("job state = %s (%s), want done after resume", final.State, final.Error)
	}
	if final.Attempts != 2 || !final.Resumed {
		t.Errorf("job reports attempts=%d resumed=%v, want 2/true", final.Attempts, final.Resumed)
	}
	seeds, _ := gotSeeds.Load().([][]float64)
	want := [][]float64{{0, 7}, {1, 0}} // newest genome per member, member order
	if fmt.Sprint(seeds) != fmt.Sprint(want) {
		t.Errorf("resume attempt seeded with %v, want %v", seeds, want)
	}
	if attempts.Load() != 2 {
		t.Errorf("evaluation ran %d times, want 2", attempts.Load())
	}
	// The resumed result is served, and the deterministic result cache was
	// never polluted by the job path.
	if code, err := httpGet(ts.URL + "/v1/jobs/" + st.ID + "/result"); err != nil || code != 200 {
		t.Errorf("result fetch = %d, %v", code, err)
	}
	if n := s.CacheLen(); n != 0 {
		t.Errorf("job execution left %d entries in the synchronous result cache", n)
	}
}

// TestJobsAPIValidation covers the edges: bad ops and bodies are rejected
// up front, unknown jobs 404, and a result is not servable before it
// exists.
func TestJobsAPIValidation(t *testing.T) {
	gate := make(chan struct{})
	eval := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(req), nil
	}
	s := New(Config{Workers: 2, Eval: eval})
	ts := newHTTPServer(t, s)
	defer close(gate)

	if code, _, _ := post(t, ts.URL+"/v1/jobs", `{"op":"teleport","request":`+reqBT+`}`); code != 400 {
		t.Errorf("unknown op accepted with %d", code)
	}
	if code, _, _ := post(t, ts.URL+"/v1/jobs", `{"request":{"target":"power6-575","bench":"BT-MZ","class":"CD","ranks":16}}`); code != 400 {
		t.Errorf("bad class accepted with %d", code)
	}
	if code, err := httpGet(ts.URL + "/v1/jobs/job-999"); err != nil || code != 404 {
		t.Errorf("unknown job = %d, %v", code, err)
	}
	st := submitJob(t, ts.URL, `{"request":`+reqBT+`}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("unfinished result = %d (Retry-After %q), want 503 with a hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, err := httpGet(ts.URL + "/v1/jobs/" + st.ID + "/confetti"); err != nil || code != 404 {
		t.Errorf("unknown sub-resource = %d, %v", code, err)
	}
}

// TestJobsQueueFullRejects proves the jobs API has the same explicit
// overload behaviour as the synchronous path: submissions beyond the
// active+queued budget answer 503 with Retry-After.
func TestJobsQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	eval := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(req), nil
	}
	s := New(Config{Workers: 4, Eval: eval, JobsMaxActive: 1, JobsMaxQueued: 1})
	ts := newHTTPServer(t, s)
	defer close(gate)

	submitJob(t, ts.URL, `{"request":`+reqBT+`}`)
	submitJob(t, ts.URL, `{"request":`+reqBT+`}`)
	code, hdr, _ := post(t, ts.URL+"/v1/jobs", `{"request":`+reqBT+`}`)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("over-budget submit = %d (Retry-After %q), want 503 with a hint", code, hdr.Get("Retry-After"))
	}
}
