package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	swapp "repro"
	"repro/internal/cluster"
	"repro/internal/faultinject"
)

// maxBatchItems bounds one /v1/batch submission. The batch endpoint is an
// amortisation device, not a bulk loader: a bigger sweep should be split so
// each piece fits the admission machinery.
const maxBatchItems = 256

// endpointSpec describes one evaluation endpoint for dispatch by name —
// the batch and jobs APIs select op, cache slot, and renderer from it.
type endpointSpec struct {
	op       string
	endpoint string
	ep       int
	render   func(*swapp.Result) ([]byte, error)
}

// endpoints maps a batch/job "op" name to its endpoint. "project" and
// "surrogate" share an evaluation op (and thus a result-cache entry) but
// render differently.
var endpoints = map[string]endpointSpec{
	"project":   {opProject, "/v1/project", epProject, renderProject},
	"validate":  {opValidate, "/v1/validate", epValidate, renderValidate},
	"surrogate": {opProject, "/v1/surrogate", epSurrogate, renderSurrogate},
}

// batchItem is one request inside a batch: an operation name plus the
// usual single-endpoint body.
type batchItem struct {
	// Op selects the endpoint: "project" (default), "validate", or
	// "surrogate".
	Op string `json:"op,omitempty"`
	APIRequest
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Requests []batchItem `json:"requests"`
}

// batchEntry is one item's outcome, positionally matched to the submission
// by Index. Body carries the same JSON document the item's own endpoint
// would have served (modulo the endpoint's trailing newline, which JSON
// embedding cannot represent).
type batchEntry struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// batchResponse is the /v1/batch reply. Groups reports how many distinct
// (base, target) characterisation groups the batch decomposed into — the
// amortisation denominator.
type batchResponse struct {
	Results []batchEntry `json:"results"`
	Groups  int          `json:"groups"`
}

// batchWork is one validated item awaiting evaluation.
type batchWork struct {
	idx  int
	spec endpointSpec
	body APIRequest
	req  swapp.Request
}

// handleBatch serves POST /v1/batch: decode every item, group them by
// normalised (base, target) key, and evaluate group by group — each group
// forwarded whole to its owning replica in peer-aware mode, or run locally
// with its members sharing one characterisation fill through the layered
// store. Item failures are per-entry statuses; the batch itself only fails
// on malformed envelopes.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.obs.Count("server.requests", 1)
	s.obs.Count("server.requests./v1/batch", 1)
	if err := faultinject.Fire("server.handler"); err != nil {
		s.obs.Count("server.errors", 1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("/v1/batch requires POST"))
		return
	}
	var breq batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding batch: %w", err))
		return
	}
	if len(breq.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch has no requests"))
		return
	}
	if len(breq.Requests) > maxBatchItems {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch has %d requests, limit is %d", len(breq.Requests), maxBatchItems))
		return
	}

	entries := make([]batchEntry, len(breq.Requests))
	groups := map[string][]batchWork{}
	for i, item := range breq.Requests {
		op := item.Op
		if op == "" {
			op = "project"
		}
		spec, ok := endpoints[op]
		if !ok {
			entries[i] = batchEntry{Index: i, Status: http.StatusBadRequest, Error: fmt.Sprintf("unknown op %q", item.Op)}
			continue
		}
		req, err := evalRequest(item.APIRequest)
		if err != nil {
			entries[i] = batchEntry{Index: i, Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		key := cluster.GroupKey(req.Base, req.Target)
		groups[key] = append(groups[key], batchWork{idx: i, spec: spec, body: item.APIRequest, req: req})
	}

	// Evaluate group by group, members concurrently: concurrent members of
	// one group collapse onto a single characterisation fill (store
	// singleflight), which is the point of batching. The batch-level
	// semaphore keeps one batch from flooding the admission queue and
	// rejecting itself.
	forwarded := r.Header.Get(forwardedHeader) != ""
	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for gkey, members := range groups {
		wg.Add(1)
		go func(gkey string, members []batchWork) {
			defer wg.Done()
			if s.peers != nil && !forwarded && s.forwardBatchGroup(r, gkey, members, entries) {
				return
			}
			var mwg sync.WaitGroup
			for _, wk := range members {
				mwg.Add(1)
				go func(wk batchWork) {
					defer mwg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					entries[wk.idx] = s.runBatchItem(r.Context(), wk)
				}(wk)
			}
			mwg.Wait()
		}(gkey, members)
	}
	wg.Wait()

	for i := range entries {
		entries[i].Index = i
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(batchResponse{Results: entries, Groups: len(groups)})
}

// runBatchItem evaluates one batch member locally, mirroring its endpoint's
// semantics: same cache key, same rendered bytes, same error statuses.
func (s *Server) runBatchItem(parent context.Context, wk batchWork) batchEntry {
	key := digest(wk.spec.op, wk.req, s.cfg.WarmStart)
	// Warm failover, same order as the single endpoints: a replicated
	// result from a (possibly dead) owner serves before any computation.
	if body, ok := s.replicaBytes(key, wk.spec.endpoint); ok {
		return batchEntry{Index: wk.idx, Status: http.StatusOK, Body: json.RawMessage(bytes.TrimSuffix(body, []byte("\n")))}
	}
	ctx, cancel := context.WithTimeout(parent, s.timeoutFor(wk.body))
	defer cancel()
	res, hit, err := s.evaluate(ctx, wk.spec.op, key, wk.req)
	if err != nil {
		status, _ := s.errorStatus(err)
		return batchEntry{Index: wk.idx, Status: status, Error: err.Error()}
	}
	if hit {
		s.obs.Count("server.cache.result_hits", 1)
	} else {
		s.obs.Count("server.cache.result_misses", 1)
	}
	out, err := s.cache.renderedBytes(key, wk.spec.ep, res, wk.spec.render)
	if err != nil {
		s.obs.Count("server.errors", 1)
		return batchEntry{Index: wk.idx, Status: http.StatusInternalServerError, Error: err.Error()}
	}
	if !hit {
		s.maybeReplicate(key, wk.spec.ep, wk.spec.endpoint, res, wk.req, wk.spec.render)
	}
	// The endpoints terminate their documents with '\n'; embedded JSON
	// cannot carry it, so entries hold the document body alone.
	return batchEntry{Index: wk.idx, Status: http.StatusOK, Body: json.RawMessage(bytes.TrimSuffix(out, []byte("\n")))}
}

// forwardBatchGroup relays one whole group to its owning replica as a
// nested /v1/batch call, mapping the peer's positional results back to this
// batch's indexes. It reports whether the group was served; any failure
// counts a fallback and sends the group to local computation.
func (s *Server) forwardBatchGroup(r *http.Request, gkey string, members []batchWork, entries []batchEntry) bool {
	owner, pc := s.peers.route(gkey)
	if pc == nil {
		return false
	}
	sub := batchRequest{Requests: make([]batchItem, len(members))}
	timeout := time.Duration(0)
	for i, wk := range members {
		op := wk.spec.endpoint[len("/v1/"):]
		sub.Requests[i] = batchItem{Op: op, APIRequest: wk.body}
		if t := s.timeoutFor(wk.body); t > timeout {
			timeout = t
		}
	}
	payload, err := json.Marshal(sub)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	out, _, err := pc.client.PostRaw(ctx, "/v1/batch", payload, http.Header{forwardedHeader: []string{s.cfg.Self}})
	s.peers.observe(owner, err)
	if err != nil {
		s.obs.Count("cluster.fallbacks", 1)
		return false
	}
	var resp batchResponse
	if err := json.Unmarshal(out, &resp); err != nil || len(resp.Results) != len(members) {
		s.obs.Count("cluster.fallbacks", 1)
		return false
	}
	s.obs.Count("cluster.forwards", int64(len(members)))
	for i, wk := range members {
		e := resp.Results[i]
		e.Index = wk.idx
		entries[wk.idx] = e
	}
	return true
}
