package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newHintedServer scripts one response per attempt, each with its own
// Retry-After header value ("" omits the header), then succeeds. Unlike
// newFlakyServer it controls the hint per attempt, which is what the
// staleness tests need.
func newHintedServer(t *testing.T, script []struct {
	status     int
	retryAfter string
}) *httptest.Server {
	t.Helper()
	eval := &stubEval{}
	s := New(Config{Workers: 2, Eval: eval.fn})
	inner := s.Handler()
	n := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n < len(script) {
			step := script[n]
			n++
			if step.retryAfter != "" {
				w.Header().Set("Retry-After", step.retryAfter)
			}
			w.WriteHeader(step.status)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClientRetryAfterNotCarriedAcrossAttempts pins the per-attempt reset:
// a Retry-After from one 503 must govern only the wait directly after it.
// Later attempts without the header fall back to the exponential schedule —
// a stale hint must never inflate them.
func TestClientRetryAfterNotCarriedAcrossAttempts(t *testing.T) {
	cases := []struct {
		name   string
		script []struct {
			status     int
			retryAfter string
		}
		wantSleeps []time.Duration
	}{
		{
			name: "hint on the first 503 only",
			script: []struct {
				status     int
				retryAfter string
			}{
				{http.StatusServiceUnavailable, "5"},
				{http.StatusServiceUnavailable, ""},
				{http.StatusServiceUnavailable, ""},
			},
			// 5s for the hinted attempt, then the plain 200ms/400ms
			// schedule — NOT 5s/5s/5s.
			wantSleeps: []time.Duration{5 * time.Second, 200 * time.Millisecond, 400 * time.Millisecond},
		},
		{
			name: "hint shrinks back when a later 503 sends a smaller one",
			script: []struct {
				status     int
				retryAfter string
			}{
				{http.StatusServiceUnavailable, "5"},
				{http.StatusServiceUnavailable, "1"},
			},
			wantSleeps: []time.Duration{5 * time.Second, time.Second},
		},
		{
			name: "unparseable hint falls back to backoff",
			script: []struct {
				status     int
				retryAfter string
			}{
				{http.StatusServiceUnavailable, "soon"},
			},
			wantSleeps: []time.Duration{100 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := newHintedServer(t, tc.script)
			var slept []time.Duration
			c := testClient(ts.URL, &slept)
			c.MaxRetries = len(tc.script)
			if _, err := c.Project(context.Background(), clientReq); err != nil {
				t.Fatalf("retries did not recover: %v", err)
			}
			if len(slept) != len(tc.wantSleeps) {
				t.Fatalf("slept %v (%d times), want %d", slept, len(slept), len(tc.wantSleeps))
			}
			for i, want := range tc.wantSleeps {
				if slept[i] != want {
					t.Errorf("sleep %d = %v, want %v", i, slept[i], want)
				}
			}
		})
	}
}

// TestRetryAfterHint covers both RFC 9110 forms against an injected clock:
// delay-seconds and HTTP-date, with garbage and expired dates degrading to
// zero (caller falls back to its own backoff).
func TestRetryAfterHint(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	c := &Client{Now: func() time.Time { return now }}
	cases := []struct {
		name  string
		value string
		want  time.Duration
	}{
		{"empty", "", 0},
		{"seconds", "120", 120 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds", "-3", 0},
		{"http date in the future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date in the past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http date exactly now", now.Format(http.TimeFormat), 0},
		{"rfc850 date form", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second},
		{"garbage", "soon", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := c.retryAfterHint(tc.value); got != tc.want {
				t.Errorf("retryAfterHint(%q) = %v, want %v", tc.value, got, tc.want)
			}
		})
	}
	// The nil-Now default uses the real clock: a far-future date yields a
	// positive delay without panicking.
	var def Client
	far := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	if got := def.retryAfterHint(far); got <= 0 {
		t.Errorf("default-clock hint for a future date = %v, want > 0", got)
	}
}

// TestClientRetryAfterHTTPDateEndToEnd proves the HTTP-date form steers a
// real retry loop: a 503 carrying a date 3 seconds ahead of the injected
// clock makes the client wait exactly those 3 seconds.
func TestClientRetryAfterHTTPDateEndToEnd(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	ts := newHintedServer(t, []struct {
		status     int
		retryAfter string
	}{
		{http.StatusServiceUnavailable, now.Add(3 * time.Second).Format(http.TimeFormat)},
	})
	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	c.Now = func() time.Time { return now }
	if _, err := c.Project(context.Background(), clientReq); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Errorf("slept %v, want exactly [3s]", slept)
	}
}
