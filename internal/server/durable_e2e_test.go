package server

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	swapp "repro"
	"repro/internal/cluster"
	"repro/internal/ga"
	"repro/internal/obs"
)

// jobBody is the async-job submission used by the durability tests: a real
// (small) projection whose GA search produces per-generation checkpoints.
const jobBodyLU = `{"op":"project","request":{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":16}}`

// resultBytes fetches a finished job's result document.
func resultBytes(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d: %s", resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// TestDurableCrashRecoveryByteIdentical is the kill -9 acceptance arc, in
// process: a real projection job is interrupted mid-GA-search with its
// journal already holding early checkpoints (the eval wedges, which is what
// a SIGKILL looks like to the WAL — records stop, no terminal state), a
// fresh server opens the same data dir, resurrects the job under its
// original ID, resumes each ensemble member from its journalled checkpoint,
// and produces a result document byte-identical to an uninterrupted run.
func TestDurableCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real GA searches")
	}
	// Control: the same job on a plain in-memory server, uninterrupted.
	ctrl := New(Config{Workers: 2, EvalWorkers: 8})
	tsCtrl := newHTTPServer(t, ctrl)
	ctrlSt := submitJob(t, tsCtrl.URL, jobBodyLU)
	if final := waitJobDone(t, tsCtrl.URL, ctrlSt.ID); final.State != cluster.JobDone {
		t.Fatalf("control job state = %s (%s)", final.State, final.Error)
	}
	want := resultBytes(t, tsCtrl.URL, ctrlSt.ID)

	// Crash run: every ensemble member wedges forever right after its
	// second checkpoint is journalled.
	dir := t.TempDir()
	block := make(chan struct{})
	defer close(block)
	wedged := make(chan struct{}, 8)
	var counts sync.Map
	crashEval := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		inner := req.OnGACheckpoint
		req.OnGACheckpoint = func(member int, cp *ga.Checkpoint) {
			if inner != nil {
				inner(member, cp)
			}
			v, _ := counts.LoadOrStore(member, new(atomic.Int32))
			if v.(*atomic.Int32).Add(1) == 2 {
				wedged <- struct{}{}
				<-block
			}
		}
		return swapp.ProjectContext(ctx, req)
	}
	s1, err := NewDurable(Config{Workers: 2, EvalWorkers: 8, DataDir: dir, Eval: crashEval})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newHTTPServer(t, s1)
	st := submitJob(t, ts1.URL, jobBodyLU)
	for i := 0; i < 3; i++ { // the GA ensemble is 3 members
		select {
		case <-wedged:
		case <-time.After(30 * time.Second):
			t.Fatalf("only %d/3 ensemble members reached their checkpoint", i)
		}
	}
	// s1 is now "dead": its evaluation goroutines are wedged and will never
	// write another journal record or terminal state. No drain, no handoff.

	// Restart on the same data dir with the production eval.
	scope := obs.New("test")
	s2, err := NewDurable(Config{Workers: 2, EvalWorkers: 8, DataDir: dir, Obs: scope})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := scope.Metrics().Counter("jobs.recovered"); n != 1 {
		t.Fatalf("jobs.recovered = %d, want 1", n)
	}
	ts2 := newHTTPServer(t, s2)
	if got := jobStatus(t, ts2.URL, st.ID); got.ID != st.ID {
		t.Fatalf("recovered job lost its ID: %+v", got)
	}
	final := waitJobDone(t, ts2.URL, st.ID)
	if final.State != cluster.JobDone {
		t.Fatalf("recovered job state = %s (%s), want done", final.State, final.Error)
	}
	got := resultBytes(t, ts2.URL, st.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("recovered result differs from the uninterrupted run:\nrecovered: %s\ncontrol:   %s", got, want)
	}
}

// TestNewDurableWithoutDataDirIsNew: an empty DataDir must degrade to the
// plain in-memory constructor — no journal, no files, same serving path.
func TestNewDurableWithoutDataDirIsNew(t *testing.T) {
	s, err := NewDurable(Config{Workers: 1, Eval: func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		return stubResult(req), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.journal != nil {
		t.Fatal("DataDir-less server grew a journal")
	}
	ts := newHTTPServer(t, s)
	if code, _, _ := post(t, ts.URL+"/v1/project", reqBT); code != 200 {
		t.Errorf("project status = %d", code)
	}
}

// TestDurableSnapshotRoundTrip: SaveSnapshot spills the layered store to
// DataDir and a fresh NewDurable on the same dir imports it — the artifact
// vault survives the restart, checksum-verified.
func TestDurableSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	stub := func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		return stubResult(req), nil
	}
	s1, err := NewDurable(Config{Workers: 1, DataDir: dir, Eval: stub})
	if err != nil {
		t.Fatal(err)
	}
	s1.store.PutArtifact("result|smoke-1", []byte(`{"cached":true}`))
	if err := s1.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	scope := obs.New("test")
	s2, err := NewDurable(Config{Workers: 1, DataDir: dir, Eval: stub, Obs: scope})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	body, ok := s2.store.GetArtifact("result|smoke-1")
	if !ok || string(body) != `{"cached":true}` {
		t.Fatalf("artifact after restart = %q, %v", body, ok)
	}
	if n, _ := scope.Metrics().Counter("server.snapshot_loaded"); n < 1 {
		t.Errorf("server.snapshot_loaded = %d, want >= 1", n)
	}

	// A corrupted snapshot file degrades to a cold cache, not a failed
	// startup.
	snapPath := filepath.Join(dir, snapshotFile)
	if err := os.WriteFile(snapPath, []byte(`{"version":1,"artifa`), 0o644); err != nil {
		t.Fatal(err)
	}
	failScope := obs.New("test")
	s3, err := NewDurable(Config{Workers: 1, DataDir: dir, Eval: stub, Obs: failScope})
	if err != nil {
		t.Fatalf("corrupt snapshot failed startup: %v", err)
	}
	defer s3.Close()
	if _, ok := s3.store.GetArtifact("result|smoke-1"); ok {
		t.Error("artifact served from a corrupt snapshot")
	}
	if n, _ := failScope.Metrics().Counter("server.snapshot_load_fails"); n != 1 {
		t.Errorf("server.snapshot_load_fails = %d, want 1", n)
	}
}
