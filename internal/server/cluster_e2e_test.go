package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// testClock is a real clock with an adjustable forward offset, so tests can
// age peer breakers past their cooldown without sleeping.
type testClock struct{ offset atomic.Int64 }

func (c *testClock) now() time.Time { return time.Now().Add(time.Duration(c.offset.Load())) }

func (c *testClock) advance(d time.Duration) { c.offset.Add(int64(d)) }

// clusterReplica is one in-process peer-aware replica: a real Server wired
// to real peers over loopback HTTP, plus a kill switch that drops every
// connection at the transport — the failure mode a crashed replica
// presents to the survivors.
type clusterReplica struct {
	url   string
	srv   *Server
	eval  *groupedEval
	scope *obs.Scope

	killed  atomic.Bool
	handler atomic.Value // http.Handler
}

func (c *clusterReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.killed.Load() {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test listener not hijackable")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close()
		return
	}
	c.handler.Load().(http.Handler).ServeHTTP(w, r)
}

// newCluster starts n peer-wired replicas. Listeners come up first (their
// URLs are the ring's node names), then each Server is built knowing the
// full membership.
func newCluster(t *testing.T, n int) ([]*clusterReplica, *testClock) {
	t.Helper()
	clock := &testClock{}
	reps := make([]*clusterReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = &clusterReplica{}
		ts := httptest.NewServer(reps[i])
		t.Cleanup(ts.Close)
		reps[i].url = ts.URL
		urls[i] = ts.URL
	}
	for i, rep := range reps {
		peers := make([]string, 0, n-1)
		for k, u := range urls {
			if k != i {
				peers = append(peers, u)
			}
		}
		rep.eval = &groupedEval{}
		rep.scope = obs.New("test")
		rep.srv = New(Config{Workers: 4, Obs: rep.scope, Eval: rep.eval.fn,
			Self: rep.url, Peers: peers, nowFn: clock.now})
		rep.handler.Store(rep.srv.Handler())
	}
	return reps, clock
}

// owner resolves which replica URL owns a request body's group, the same
// way every replica does.
func ownerOf(t *testing.T, reps []*clusterReplica, body string) string {
	t.Helper()
	var api APIRequest
	if err := json.Unmarshal([]byte(body), &api); err != nil {
		t.Fatal(err)
	}
	req, err := evalRequest(api)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.url
	}
	return cluster.NewRing(urls).Owner(cluster.GroupKey(req.Base, req.Target))
}

// counter reads one obs counter, defaulting to 0.
func counter(scope *obs.Scope, name string) int64 {
	v, _ := scope.Metrics().Counter(name)
	return v
}

// TestClusterRoutingDeterminism proves every replica resolves the same
// owner for every group: a request lands on the owner's evaluator no
// matter which replica receives it, responses are byte-identical from
// every entry point, and the X-Swapp-Peer header names the owner exactly
// when the receiver forwarded.
func TestClusterRoutingDeterminism(t *testing.T) {
	reps, _ := newCluster(t, 3)
	requests := []string{
		`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`,
		`{"target":"bgp","bench":"SP-MZ","class":"C","ranks":16}`,
		`{"target":"westmere-x5670","bench":"LU-MZ","class":"C","ranks":16}`,
		`{"base":"bgp","target":"hydra","bench":"BT-MZ","class":"C","ranks":16}`,
	}
	for _, body := range requests {
		owner := ownerOf(t, reps, body)
		var reference []byte
		for i, rep := range reps {
			code, hdr, out := post(t, rep.url+"/v1/project", body)
			if code != 200 {
				t.Fatalf("replica %d: status %d: %s", i, code, out)
			}
			if reference == nil {
				reference = out
			} else if !bytes.Equal(out, reference) {
				t.Errorf("replica %d served different bytes for %s", i, body)
			}
			peer := hdr.Get(peerHeader)
			if rep.url == owner && peer != "" {
				t.Errorf("owner replica %d forwarded to %q", i, peer)
			}
			if rep.url != owner && peer != owner {
				t.Errorf("replica %d: X-Swapp-Peer = %q, want owner %q", i, peer, owner)
			}
		}
	}
	// Every evaluation ran on exactly one replica: distinct requests ==
	// total evaluations across the cluster.
	var total int64
	for _, rep := range reps {
		total += rep.eval.calls.Load()
	}
	if total != int64(len(requests)) {
		t.Errorf("cluster ran %d evaluations for %d distinct requests", total, len(requests))
	}
	// And the memberships agree.
	want := fmt.Sprint(reps[0].srv.Peers())
	for i, rep := range reps[1:] {
		if fmt.Sprint(rep.srv.Peers()) != want {
			t.Errorf("replica %d sees membership %v, replica 0 sees %v", i+1, rep.srv.Peers(), want)
		}
	}
}

// TestClusterPeerCacheFill proves forwarding fills the owner's cache for
// everyone: the second forward of one request is a peer cache hit,
// surfaced through X-Cache and the cluster.peer_hits counter.
func TestClusterPeerCacheFill(t *testing.T) {
	reps, _ := newCluster(t, 3)
	body := `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`
	owner := ownerOf(t, reps, body)
	var sender *clusterReplica
	for _, rep := range reps {
		if rep.url != owner {
			sender = rep
			break
		}
	}
	_, hdr1, _ := post(t, sender.url+"/v1/project", body)
	_, hdr2, _ := post(t, sender.url+"/v1/project", body)
	if hdr1.Get("X-Cache") != "miss" || hdr2.Get("X-Cache") != "hit" {
		t.Errorf("forwarded X-Cache = %q then %q, want miss then hit", hdr1.Get("X-Cache"), hdr2.Get("X-Cache"))
	}
	if n := counter(sender.scope, "cluster.forwards"); n != 2 {
		t.Errorf("cluster.forwards = %d, want 2", n)
	}
	if n := counter(sender.scope, "cluster.peer_hits"); n != 1 {
		t.Errorf("cluster.peer_hits = %d, want 1", n)
	}
}

// TestClusterForwardedRequestNotBounced proves the loop guard: a request
// already carrying the forwarded header is computed where it lands, even
// when its group's owner is elsewhere — no multi-hop routing, no cycles.
func TestClusterForwardedRequestNotBounced(t *testing.T) {
	reps, _ := newCluster(t, 3)
	body := `{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`
	owner := ownerOf(t, reps, body)
	var nonOwner *clusterReplica
	for _, rep := range reps {
		if rep.url != owner {
			nonOwner = rep
			break
		}
	}
	req, err := http.NewRequest(http.MethodPost, nonOwner.url+"/v1/project", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded request status = %d", resp.StatusCode)
	}
	if p := resp.Header.Get(peerHeader); p != "" {
		t.Errorf("forwarded request was re-forwarded to %q", p)
	}
	if n := nonOwner.eval.calls.Load(); n != 1 {
		t.Errorf("non-owner ran %d evaluations for a forwarded request, want 1", n)
	}
}

// TestClusterBatchFaultInjectionFailover is the kill-one-mid-batch
// satellite: three replicas serve a batch spanning groups owned across the
// cluster; then one replica dies at the transport and the same workload —
// resubmitted to a survivor — completes with every projection
// byte-identical to a single-process run. The dead peer costs fallbacks
// and ring movement, never correctness.
func TestClusterBatchFaultInjectionFailover(t *testing.T) {
	reps, clock := newCluster(t, 3)
	// A single-process control server for byte-identity.
	ctl := New(Config{Workers: 4, Eval: (&groupedEval{}).fn})
	ctlTS := newHTTPServer(t, ctl)

	bodies := []string{
		`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`,
		`{"target":"bgp","bench":"BT-MZ","class":"C","ranks":16}`,
		`{"target":"westmere-x5670","bench":"BT-MZ","class":"C","ranks":16}`,
		`{"base":"bgp","target":"hydra","bench":"SP-MZ","class":"C","ranks":16}`,
		`{"base":"power6-575","target":"bgp","bench":"LU-MZ","class":"C","ranks":16}`,
	}
	// Receiver: replica 0. Victim: the owner of some group that is not the
	// receiver, so its groups genuinely needed forwarding.
	receiver := reps[0]
	var victim *clusterReplica
	for _, body := range bodies {
		if owner := ownerOf(t, reps, body); owner != receiver.url {
			for _, rep := range reps {
				if rep.url == owner {
					victim = rep
				}
			}
			break
		}
	}
	if victim == nil {
		t.Fatal("no group hashed off the receiver; add targets")
	}

	// Healthy pass: the batch spreads across the ring.
	code, _, out := post(t, receiver.url+"/v1/batch", batchBody(t, bodies...))
	if code != 200 {
		t.Fatalf("healthy batch status = %d: %s", code, out)
	}
	for i, e := range decodeBatch(t, out).Results {
		if e.Status != 200 {
			t.Fatalf("healthy batch entry %d failed: %d %s", i, e.Status, e.Error)
		}
	}
	if counter(receiver.scope, "cluster.forwards") == 0 {
		t.Error("healthy batch forwarded nothing; victim selection is wrong")
	}

	// Kill the victim and resubmit: every group it owned degrades to local
	// computation on the receiver.
	victim.killed.Store(true)
	code, _, out = post(t, receiver.url+"/v1/batch", batchBody(t, bodies...))
	if code != 200 {
		t.Fatalf("post-kill batch status = %d: %s", code, out)
	}
	resp := decodeBatch(t, out)
	for i, e := range resp.Results {
		if e.Status != 200 {
			t.Fatalf("post-kill batch entry %d failed: %d %s", i, e.Status, e.Error)
		}
		_, _, individual := post(t, ctlTS.URL+"/v1/project", bodies[i])
		if want := bytes.TrimSuffix(individual, []byte("\n")); !bytes.Equal(e.Body, want) {
			t.Errorf("entry %d differs from the single-process run:\ncluster: %s\nsingle:  %s", i, e.Body, want)
		}
	}
	if counter(receiver.scope, "cluster.fallbacks") == 0 {
		t.Error("dead peer produced no fallbacks")
	}
	if counter(receiver.scope, "cluster.ring_moves") == 0 {
		t.Error("losing a replica moved no tracked groups on the reachable ring")
	}

	// Rejoin: the next forward to the recovered replica succeeds again and
	// the reachable ring heals (another movement count). Ageing the clock
	// past the peer breaker's cooldown lets its half-open probe through.
	victim.killed.Store(false)
	clock.advance(time.Minute)
	moves := counter(receiver.scope, "cluster.ring_moves")
	code, _, out = post(t, receiver.url+"/v1/batch", batchBody(t, bodies...))
	if code != 200 {
		t.Fatalf("post-rejoin batch status = %d: %s", code, out)
	}
	for i, e := range decodeBatch(t, out).Results {
		if e.Status != 200 {
			t.Fatalf("post-rejoin batch entry %d failed: %d %s", i, e.Status, e.Error)
		}
	}
	if counter(receiver.scope, "cluster.ring_moves") <= moves {
		t.Error("rejoin did not heal the reachable ring")
	}
}
