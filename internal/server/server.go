// Package server turns the SWAPP pipeline into a shared, concurrent
// projection service: an HTTP JSON API over swapp.Project and
// swapp.ProjectAndValidate with a content-addressed result cache,
// singleflight collapsing of duplicate in-flight queries, a bounded
// worker pool with an admission queue, and per-request deadlines.
//
// Endpoints:
//
//	POST /v1/project    full projection (compute + communication), JSON
//	POST /v1/validate   projection plus the measured run and signed errors
//	POST /v1/surrogate  the Eq. 2 compute surrogate only
//	GET  /healthz       liveness (always 200 while the process serves)
//	GET  /readyz        readiness (503 once draining)
//
// A projection is deterministic in its request, so results are cached
// under a sha256 of the request's semantic fields (see digest) and
// served byte-identical to what the evaluation produced. Overload is
// explicit: when the admission queue is full the server answers 503 with
// a Retry-After header instead of queueing unboundedly, and a request
// whose deadline expires — waiting or evaluating — returns 504 promptly.
//
// Caching is layered to match the pipeline's reuse structure. The result
// LRU (above) answers exact repeats, including the rendered wire bytes so
// a hit never re-marshals. Beneath it a core.Store — shared across every
// evaluation — caches per-machine benchmark characterisations, per-app
// profiles, and finished compute surrogates, so requests that differ only
// in target machine or core count ("shared-base warm" traffic) skip the
// expensive stages they have in common instead of recomputing the world.
// The store is purely an amortisation: projections stay byte-identical
// with it on, off, cold, or warm.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	swapp "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/report"
)

// EvalFunc runs one evaluation. op is "project" (shared by /v1/project and
// /v1/surrogate) or "validate". The production function dispatches to
// swapp.ProjectContext / swapp.ProjectAndValidateContext; tests inject
// stubs to exercise the serving machinery without the pipeline's cost.
type EvalFunc func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error)

// defaultEval is the production EvalFunc.
func defaultEval(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
	if op == opValidate {
		return swapp.ProjectAndValidateContext(ctx, req)
	}
	return swapp.ProjectContext(ctx, req)
}

// Operations (and cache-key prefixes).
const (
	opProject  = "project"
	opValidate = "validate"
)

// Config parameterises a Server. The zero value is usable: every field
// defaults sanely in New.
type Config struct {
	// Workers bounds concurrent evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds evaluations waiting for a worker beyond the
	// running ones (default 2×Workers). Arrivals beyond the queue are
	// rejected with 503 + Retry-After.
	QueueDepth int
	// CacheSize bounds the result LRU, in entries (default 128).
	CacheSize int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 5m). MaxTimeout caps client-requested deadlines
	// (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// EvalWorkers is the per-evaluation engine pool size passed through
	// to swapp.Request.Workers (0 = GOMAXPROCS). It does not enter the
	// cache key: the projection is byte-identical at any value.
	EvalWorkers int
	// DisableLayeredCache turns off the shared core.Store, so every
	// evaluation recomputes its characterisations, profiles, and
	// surrogates from scratch. The result LRU still applies. Useful for
	// cache-cold benchmarking and as an escape hatch; off (store enabled)
	// by default.
	DisableLayeredCache bool
	// WarmStart opts evaluations into GA warm-starting from the layered
	// store's nearest cached surrogate (see swapp.Request.WarmStart).
	// Warm-started projections can differ from cold ones, so the flag
	// enters the cache key: warm and cold results never share an entry.
	// Off by default; requires the layered cache.
	WarmStart bool
	// Obs receives the serving metrics (server.requests, server.inflight,
	// per-layer cache counters server.cache.result_hits /
	// server.cache.characterisation_hits / server.cache.profile_hits /
	// server.cache.surrogate_hits with their _misses and _size twins, …)
	// and, with TraceRequests, a child span per evaluation. nil disables
	// both.
	Obs *obs.Scope
	// TraceRequests attaches a span per evaluation under Obs. Off by
	// default: a long-running server would grow the span tree without
	// bound.
	TraceRequests bool
	// StageTimeout bounds each pipeline stage of an evaluation
	// separately from the request deadline, so one wedged stage cannot
	// consume a whole generous request budget (0 disables; surfaces as
	// 504 with swapp.ErrStageTimeout in the body).
	StageTimeout time.Duration
	// BreakerThreshold is the consecutive evaluation failures that trip
	// the circuit breaker (default 5; negative disables the breaker).
	// Cancellations, client deadlines, and queue rejections never count.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects with 503
	// before letting a single probe through (default 10s).
	BreakerCooldown time.Duration
	// Self is this replica's advertised base URL (e.g.
	// "http://127.0.0.1:8080") and Peers the other replicas' base URLs.
	// When both are set the server runs peer-aware: a consistent-hash ring
	// over the full membership assigns each (base, target) group an owning
	// replica, and requests whose group hashes elsewhere are forwarded
	// there — concentrating each group's layered-store fills on one
	// replica — falling back to local computation when the owner is
	// unreachable. Forwarded requests carry X-Swapp-Forwarded and are
	// always computed locally (no multi-hop routing).
	Self  string
	Peers []string
	// GossipInterval, when positive in peer-aware mode, runs a SWIM-style
	// failure detector over the configured membership: each interval one
	// peer is probed (direct /healthz, then indirect via other peers), and
	// alive-view changes rebuild the routing ring without restarts — dead
	// replicas leave the ring, rejoining ones return. Zero keeps the
	// static-membership behaviour (the documented fallback).
	GossipInterval time.Duration
	// GossipProbeTimeout bounds one probe (default GossipInterval/2) and
	// GossipSuspectAfter is the suspicion grace period before a peer is
	// declared dead (default 3×GossipInterval).
	GossipProbeTimeout time.Duration
	GossipSuspectAfter time.Duration
	// JobsMaxActive / JobsMaxQueued / JobsMaxResumes / JobsTimeout /
	// JobsRetain / JobsRetainAge parameterise the async jobs API (zero
	// values take the cluster.ManagerConfig defaults; JobsRetainAge 0
	// keeps the pure count-based retention).
	JobsMaxActive  int
	JobsMaxQueued  int
	JobsMaxResumes int
	JobsTimeout    time.Duration
	JobsRetain     int
	JobsRetainAge  time.Duration
	// DataDir roots the server's durable state: a WAL-backed job journal
	// under DataDir/journal plus the layered store's snapshot file. Only
	// NewDurable honours it — with DataDir set it replays the journal at
	// startup, resurrecting jobs a crashed process left unfinished
	// (counted as jobs.recovered) and resuming them from their newest
	// journalled checkpoints. Empty (the default) keeps the fully
	// in-memory behaviour, byte-identical to pre-durability builds.
	DataDir string
	// WALSyncEvery batches the journal's fsyncs (see durable.Options);
	// 0 — the default — syncs every record, the safe choice for kill -9
	// recovery.
	WALSyncEvery time.Duration
	// SnapshotOnDrain exports the layered store (characterisations and
	// artifact vault) to DataDir on drain, so a restarted replica warms
	// up from disk instead of recomputing the world.
	SnapshotOnDrain bool
	// Eval overrides the evaluation function (tests).
	Eval EvalFunc
	// nowFn overrides the breaker's clock (tests).
	nowFn func() time.Time
	// journal is plumbed by NewDurable into the job manager; New leaves
	// it nil (journalling off).
	journal *cluster.Journal
}

// Server is the projection service. Create with New, expose via Handler.
type Server struct {
	cfg     Config
	obs     *obs.Scope
	eval    EvalFunc
	cache   *cache
	store   *core.Store      // shared layered artifact cache; nil when disabled
	breaker *breaker         // nil when disabled
	peers   *peerSet         // nil when peer-aware mode is off
	jobs    *cluster.Manager // async jobs API

	journal *cluster.Journal // durable job journal; nil without DataDir

	gossip       *cluster.Gossip    // nil in static-membership mode
	gossipCancel context.CancelFunc // stops the gossip loop (Close)
	replWG       sync.WaitGroup     // in-flight replication pushes

	sem      chan struct{} // worker slots
	queued   atomic.Int64  // arrivals between admission and a slot
	inflight atomic.Int64  // running evaluations
	draining atomic.Bool
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.Eval == nil {
		cfg.Eval = defaultEval
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.nowFn == nil {
		cfg.nowFn = time.Now
	}
	s := &Server{
		cfg:   cfg,
		obs:   cfg.Obs,
		eval:  cfg.Eval,
		cache: newCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.Workers),
	}
	if !cfg.DisableLayeredCache {
		s.store = core.NewStore(core.StoreConfig{Obs: cfg.Obs, MetricPrefix: "server.cache"})
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.nowFn)
	}
	if cfg.Self != "" && len(cfg.Peers) > 0 {
		s.peers = newPeerSet(cfg.Self, cfg.Peers, cfg.Obs, cfg.nowFn)
		if cfg.GossipInterval > 0 {
			s.gossip = cluster.NewGossip(cluster.GossipConfig{
				Self:          cfg.Self,
				Peers:         cfg.Peers,
				ProbeInterval: cfg.GossipInterval,
				ProbeTimeout:  cfg.GossipProbeTimeout,
				SuspectAfter:  cfg.GossipSuspectAfter,
				Probe:         probeHealthz,
				IndirectProbe: indirectPing,
				OnChange:      s.peers.setMembership,
				Obs:           cfg.Obs,
			})
			gctx, cancel := context.WithCancel(context.Background())
			s.gossipCancel = cancel
			go s.gossip.Run(gctx)
		}
	}
	s.journal = cfg.journal
	s.jobs = cluster.NewManager(cluster.ManagerConfig{
		MaxActive:  cfg.JobsMaxActive,
		MaxQueued:  cfg.JobsMaxQueued,
		MaxResumes: cfg.JobsMaxResumes,
		Timeout:    cfg.JobsTimeout,
		Retain:     cfg.JobsRetain,
		RetainAge:  cfg.JobsRetainAge,
		Journal:    cfg.journal,
		Obs:        cfg.Obs,
	})
	return s
}

// Close stops the gossip loop and accepting async job submissions, and
// flushes the durable job journal; running jobs finish on their own.
// Serving endpoints are unaffected (the HTTP listener's Shutdown handles
// those).
func (s *Server) Close() {
	if s.gossipCancel != nil {
		s.gossipCancel()
	}
	s.jobs.Close()
	_ = s.journal.Sync()
}

// SetDraining flips the readiness state: once draining, /readyz answers
// 503 so load balancers stop routing here while in-flight work finishes
// (the listener's graceful Shutdown does the actual waiting).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the API mux. The obs debug surface (pprof, expvar,
// /metrics, /trace.json) is mounted alongside the API when Obs is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/project", s.handleEval(opProject, "/v1/project", epProject, renderProject))
	mux.HandleFunc("/v1/validate", s.handleEval(opValidate, "/v1/validate", epValidate, renderValidate))
	mux.HandleFunc("/v1/surrogate", s.handleEval(opProject, "/v1/surrogate", epSurrogate, renderSurrogate))
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/jobs/handoff", s.handleJobHandoff)
	mux.HandleFunc("/v1/replicate", s.handleReplicate)
	mux.HandleFunc("/v1/gossip/ping", s.handleGossipPing)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.obs.Enabled() {
		debug := obs.DebugHandler(s.obs)
		for _, p := range []string{"/debug/", "/metrics", "/metrics.json", "/trace.json"} {
			mux.Handle(p, debug)
		}
	}
	return s.recovered(mux)
}

// recovered converts a panic escaping any handler into a 500 with a JSON
// body and a server.panics count, instead of net/http's default of killing
// the connection with an empty reply. If the handler already wrote its
// status line the 500 cannot be sent; the count still registers.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.obs.Count("server.panics", 1)
				writeError(w, http.StatusInternalServerError, fmt.Errorf("server: internal panic: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// APIRequest is the JSON body of the /v1 endpoints, shared with Client.
type APIRequest struct {
	Base   string `json:"base,omitempty"`
	Target string `json:"target"`
	Bench  string `json:"bench"`
	Class  string `json:"class"`
	Ranks  int    `json:"ranks"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 means the
	// server default, and values above the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// errQueueFull rejects an arrival when the admission queue is at depth.
var errQueueFull = errors.New("server: admission queue full")

// handleEval builds the handler for one evaluation endpoint: decode,
// normalise, cache/singleflight/admit, evaluate, render. endpoint is the
// registered path and ep its rendered-bytes slot; both are fixed at
// registration so the hot path never rebuilds counter names per request.
func (s *Server) handleEval(op, endpoint string, ep int, render func(*swapp.Result) ([]byte, error)) http.HandlerFunc {
	reqCounter := "server.requests." + endpoint
	return func(w http.ResponseWriter, r *http.Request) {
		s.obs.Count("server.requests", 1)
		s.obs.Count(reqCounter, 1)
		if err := faultinject.Fire("server.handler"); err != nil {
			s.obs.Count("server.errors", 1)
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", endpoint))
			return
		}
		var body APIRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		req, err := evalRequest(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}

		// Fast path: a finished result needs no deadline machinery — serve
		// the memoised bytes without allocating a timer context.
		key := digest(op, req, s.cfg.WarmStart)
		start := time.Now()
		if res, ok := s.cache.get(key); ok {
			s.obs.Observe("server.request_seconds", time.Since(start).Seconds())
			s.writeResult(w, key, ep, res, true, render)
			return
		}

		// Peer-aware mode: a group owned by another replica is forwarded
		// there (unless this request was itself forwarded — the loop
		// guard). A failed forward falls through to local computation.
		if s.peers != nil && r.Header.Get(forwardedHeader) == "" {
			if s.forwardEval(w, r, endpoint, body, req) {
				s.obs.Observe("server.request_seconds", time.Since(start).Seconds())
				return
			}
		}

		// Warm failover: before computing, serve bytes a (possibly dead)
		// owner replicated here — byte-identical by construction.
		if s.replicaServe(w, key, endpoint) {
			s.obs.Observe("server.request_seconds", time.Since(start).Seconds())
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(body))
		defer cancel()

		res, hit, err := s.evaluate(ctx, op, key, req)
		s.obs.Observe("server.request_seconds", time.Since(start).Seconds())
		if err != nil {
			status, retryAfter := s.errorStatus(err)
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			writeError(w, status, err)
			return
		}
		s.writeResult(w, key, ep, res, hit, render)
		if !hit {
			s.maybeReplicate(key, ep, endpoint, res, req, render)
		}
	}
}

// evalRequest validates and normalises one API body into an engine request.
func evalRequest(body APIRequest) (swapp.Request, error) {
	if len(body.Class) != 1 {
		return swapp.Request{}, errors.New("class must be a single letter (C or D)")
	}
	return swapp.Request{
		Base:   body.Base,
		Target: body.Target,
		Bench:  nas.Benchmark(body.Bench),
		Class:  nas.Class(body.Class[0]),
		Ranks:  body.Ranks,
	}.Normalized()
}

// errorStatus maps an evaluation error to its HTTP status and Retry-After
// hint (empty when none), counting the rejection/error metrics as a side
// effect — shared by the single-request endpoints and the batch entries.
func (s *Server) errorStatus(err error) (status int, retryAfter string) {
	var boe *breakerOpenError
	switch {
	case errors.Is(err, errQueueFull):
		s.obs.Count("server.rejected", 1)
		return http.StatusServiceUnavailable, "1"
	case errors.As(err, &boe):
		s.obs.Count("server.breaker_rejected", 1)
		return http.StatusServiceUnavailable, retryAfterSeconds(boe.retryAfter)
	case errors.Is(err, swapp.ErrStageTimeout), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, ""
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for the log line only.
		return statusClientClosedRequest, ""
	default:
		s.obs.Count("server.errors", 1)
		return http.StatusInternalServerError, ""
	}
}

// writeResult serves one finished result: per-layer hit/miss accounting,
// memoised rendering, headers, body.
func (s *Server) writeResult(w http.ResponseWriter, key cacheKey, ep int, res *swapp.Result, hit bool, render func(*swapp.Result) ([]byte, error)) {
	if hit {
		s.obs.Count("server.cache.result_hits", 1)
	} else {
		s.obs.Count("server.cache.result_misses", 1)
	}
	out, err := s.cache.renderedBytes(key, ep, res, render)
	if err != nil {
		s.obs.Count("server.errors", 1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if hit {
		h.Set("X-Cache", "hit")
	} else {
		h.Set("X-Cache", "miss")
	}
	_, _ = w.Write(out)
}

// statusClientClosedRequest is nginx's conventional code for a request
// cancelled by its client; net/http has no named constant for it.
const statusClientClosedRequest = 499

// retryAfterSeconds renders a backoff hint as a Retry-After header value:
// whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// evaluate resolves one (op, request) under its precomputed cache key:
// serve a finished result, join an in-flight evaluation, or become the
// leader — pass admission control and run the evaluation through the
// shared layered store. hit reports a result-cache hit.
func (s *Server) evaluate(ctx context.Context, op string, key cacheKey, req swapp.Request) (res *swapp.Result, hit bool, err error) {
	if res, ok := s.cache.get(key); ok {
		return res, true, nil
	}
	cl, leader := s.cache.join(key)
	if !leader {
		// Someone is already computing this result; wait for them under
		// our own deadline.
		select {
		case <-cl.done:
			return cl.res, false, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	if ra, ok := s.breaker.allow(); !ok {
		err := &breakerOpenError{retryAfter: ra}
		s.cache.finish(key, cl, nil, err)
		return nil, false, err
	}
	if err := s.admit(ctx); err != nil {
		s.breaker.record(err) // queue-full and ctx errors are neutral
		s.cache.finish(key, cl, nil, err)
		return nil, false, err
	}
	s.obs.Gauge("server.inflight", float64(s.inflight.Add(1)))
	evalReq := req
	evalReq.Workers = s.cfg.EvalWorkers
	evalReq.StageTimeout = s.cfg.StageTimeout
	evalReq.Store = s.store
	evalReq.WarmStart = s.cfg.WarmStart
	if s.cfg.TraceRequests {
		sp := s.obs.Child(fmt.Sprintf("server.%s.%s.%c@%d:%s", op, evalReq.Bench, evalReq.Class, evalReq.Ranks, evalReq.Target))
		evalReq.Obs = sp
		defer sp.End()
	}
	res, err = s.runEval(ctx, op, evalReq)
	s.obs.Gauge("server.inflight", float64(s.inflight.Add(-1)))
	<-s.sem
	s.breaker.record(err)
	n := s.cache.finish(key, cl, res, err)
	s.obs.Gauge("server.cache.result_size", float64(n))
	return res, false, err
}

// runEval runs one evaluation with panic isolation: a panic anywhere in
// the pipeline becomes an error here, before the worker slot is released
// and the singleflight call is finished — a panicking leader must not
// leak its slot or leave joined waiters blocked forever.
func (s *Server) runEval(ctx context.Context, op string, req swapp.Request) (res *swapp.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.obs.Count("server.panics", 1)
			res, err = nil, fmt.Errorf("server: evaluation panicked: %v", v)
		}
	}()
	if err := faultinject.Fire("server.eval"); err != nil {
		return nil, err
	}
	return s.eval(ctx, op, req)
}

// admit takes a worker slot, waiting in the bounded admission queue. The
// queue bound covers transiently-admitting requests plus QueueDepth true
// waiters; beyond it arrivals fail fast with errQueueFull so saturation
// surfaces as 503 instead of unbounded queueing.
func (s *Server) admit(ctx context.Context) error {
	q := s.queued.Add(1)
	defer s.queued.Add(-1)
	if q > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		return errQueueFull
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// renderProject is the /v1/project body: the projection's wire form.
func renderProject(res *swapp.Result) ([]byte, error) {
	return report.MarshalProjection(res.Projection, nil)
}

// renderValidate is the /v1/validate body: projection plus measured run.
func renderValidate(res *swapp.Result) ([]byte, error) {
	return report.MarshalProjection(res.Projection, res.Validation)
}

// surrogateResponse is the /v1/surrogate body: request identity plus the
// Eq. 2 compute component only.
type surrogateResponse struct {
	App     string              `json:"app"`
	Target  string              `json:"target"`
	Ranks   int                 `json:"ranks"`
	Compute *report.ComputeJSON `json:"compute"`
}

// renderSurrogate extracts the compute section from a projection.
func renderSurrogate(res *swapp.Result) ([]byte, error) {
	j := report.NewProjectionJSON(res.Projection, nil)
	return report.MarshalJSONLine(surrogateResponse{
		App: j.App, Target: j.Target, Ranks: j.Ranks, Compute: j.Compute,
	})
}

// writeError emits the JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, merr := json.Marshal(apiError{Error: err.Error()})
	if merr != nil {
		return
	}
	_, _ = w.Write(append(b, '\n'))
}

// CacheLen reports the number of cached results (tests, /readyz probes).
func (s *Server) CacheLen() int { return s.cache.len() }

// StoreSizes reports the layered store's per-layer entry counts
// (characterisations, profiles, surrogates). All zero when the layered
// cache is disabled.
func (s *Server) StoreSizes() (chars, profiles, surrogates int) {
	if s.store == nil {
		return 0, 0, 0
	}
	return s.store.Sizes()
}
