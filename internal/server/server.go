// Package server turns the SWAPP pipeline into a shared, concurrent
// projection service: an HTTP JSON API over swapp.Project and
// swapp.ProjectAndValidate with a content-addressed result cache,
// singleflight collapsing of duplicate in-flight queries, a bounded
// worker pool with an admission queue, and per-request deadlines.
//
// Endpoints:
//
//	POST /v1/project    full projection (compute + communication), JSON
//	POST /v1/validate   projection plus the measured run and signed errors
//	POST /v1/surrogate  the Eq. 2 compute surrogate only
//	GET  /healthz       liveness (always 200 while the process serves)
//	GET  /readyz        readiness (503 once draining)
//
// A projection is deterministic in its request, so results are cached
// under a sha256 of the request's semantic fields (see digest) and
// served byte-identical to what the evaluation produced. Overload is
// explicit: when the admission queue is full the server answers 503 with
// a Retry-After header instead of queueing unboundedly, and a request
// whose deadline expires — waiting or evaluating — returns 504 promptly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	swapp "repro"
	"repro/internal/faultinject"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/report"
)

// EvalFunc runs one evaluation. op is "project" (shared by /v1/project and
// /v1/surrogate) or "validate". The production function dispatches to
// swapp.ProjectContext / swapp.ProjectAndValidateContext; tests inject
// stubs to exercise the serving machinery without the pipeline's cost.
type EvalFunc func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error)

// defaultEval is the production EvalFunc.
func defaultEval(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
	if op == opValidate {
		return swapp.ProjectAndValidateContext(ctx, req)
	}
	return swapp.ProjectContext(ctx, req)
}

// Operations (and cache-key prefixes).
const (
	opProject  = "project"
	opValidate = "validate"
)

// Config parameterises a Server. The zero value is usable: every field
// defaults sanely in New.
type Config struct {
	// Workers bounds concurrent evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds evaluations waiting for a worker beyond the
	// running ones (default 2×Workers). Arrivals beyond the queue are
	// rejected with 503 + Retry-After.
	QueueDepth int
	// CacheSize bounds the result LRU, in entries (default 128).
	CacheSize int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 5m). MaxTimeout caps client-requested deadlines
	// (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// EvalWorkers is the per-evaluation engine pool size passed through
	// to swapp.Request.Workers (0 = GOMAXPROCS). It does not enter the
	// cache key: the projection is byte-identical at any value.
	EvalWorkers int
	// Obs receives the serving metrics (server.requests, server.cache_hits,
	// server.inflight, …) and, with TraceRequests, a child span per
	// evaluation. nil disables both.
	Obs *obs.Scope
	// TraceRequests attaches a span per evaluation under Obs. Off by
	// default: a long-running server would grow the span tree without
	// bound.
	TraceRequests bool
	// StageTimeout bounds each pipeline stage of an evaluation
	// separately from the request deadline, so one wedged stage cannot
	// consume a whole generous request budget (0 disables; surfaces as
	// 504 with swapp.ErrStageTimeout in the body).
	StageTimeout time.Duration
	// BreakerThreshold is the consecutive evaluation failures that trip
	// the circuit breaker (default 5; negative disables the breaker).
	// Cancellations, client deadlines, and queue rejections never count.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects with 503
	// before letting a single probe through (default 10s).
	BreakerCooldown time.Duration
	// Eval overrides the evaluation function (tests).
	Eval EvalFunc
	// nowFn overrides the breaker's clock (tests).
	nowFn func() time.Time
}

// Server is the projection service. Create with New, expose via Handler.
type Server struct {
	cfg     Config
	obs     *obs.Scope
	eval    EvalFunc
	cache   *cache
	breaker *breaker // nil when disabled

	sem      chan struct{} // worker slots
	queued   atomic.Int64  // arrivals between admission and a slot
	inflight atomic.Int64  // running evaluations
	draining atomic.Bool
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.Eval == nil {
		cfg.Eval = defaultEval
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.nowFn == nil {
		cfg.nowFn = time.Now
	}
	s := &Server{
		cfg:   cfg,
		obs:   cfg.Obs,
		eval:  cfg.Eval,
		cache: newCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.Workers),
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.nowFn)
	}
	return s
}

// SetDraining flips the readiness state: once draining, /readyz answers
// 503 so load balancers stop routing here while in-flight work finishes
// (the listener's graceful Shutdown does the actual waiting).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the API mux. The obs debug surface (pprof, expvar,
// /metrics, /trace.json) is mounted alongside the API when Obs is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/project", s.handleEval(opProject, renderProject))
	mux.HandleFunc("/v1/validate", s.handleEval(opValidate, renderValidate))
	mux.HandleFunc("/v1/surrogate", s.handleEval(opProject, renderSurrogate))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.obs.Enabled() {
		debug := obs.DebugHandler(s.obs)
		for _, p := range []string{"/debug/", "/metrics", "/metrics.json", "/trace.json"} {
			mux.Handle(p, debug)
		}
	}
	return s.recovered(mux)
}

// recovered converts a panic escaping any handler into a 500 with a JSON
// body and a server.panics count, instead of net/http's default of killing
// the connection with an empty reply. If the handler already wrote its
// status line the 500 cannot be sent; the count still registers.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.obs.Count("server.panics", 1)
				writeError(w, http.StatusInternalServerError, fmt.Errorf("server: internal panic: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// APIRequest is the JSON body of the /v1 endpoints, shared with Client.
type APIRequest struct {
	Base   string `json:"base,omitempty"`
	Target string `json:"target"`
	Bench  string `json:"bench"`
	Class  string `json:"class"`
	Ranks  int    `json:"ranks"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 means the
	// server default, and values above the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// errQueueFull rejects an arrival when the admission queue is at depth.
var errQueueFull = errors.New("server: admission queue full")

// handleEval builds the handler for one evaluation endpoint: decode,
// normalise, cache/singleflight/admit, evaluate, render.
func (s *Server) handleEval(op string, render func(*swapp.Result) ([]byte, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		endpoint := r.URL.Path
		s.obs.Count("server.requests", 1)
		s.obs.Count("server.requests."+endpoint, 1)
		if err := faultinject.Fire("server.handler"); err != nil {
			s.obs.Count("server.errors", 1)
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", endpoint))
			return
		}
		var body APIRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if len(body.Class) != 1 {
			writeError(w, http.StatusBadRequest, errors.New("class must be a single letter (C or D)"))
			return
		}
		req, err := swapp.Request{
			Base:   body.Base,
			Target: body.Target,
			Bench:  nas.Benchmark(body.Bench),
			Class:  nas.Class(body.Class[0]),
			Ranks:  body.Ranks,
		}.Normalized()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}

		timeout := s.cfg.DefaultTimeout
		if body.TimeoutMS > 0 {
			timeout = time.Duration(body.TimeoutMS) * time.Millisecond
		}
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		start := time.Now()
		res, hit, err := s.evaluate(ctx, op, req)
		s.obs.Observe("server.request_seconds", time.Since(start).Seconds())
		if err != nil {
			var boe *breakerOpenError
			switch {
			case errors.Is(err, errQueueFull):
				s.obs.Count("server.rejected", 1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err)
			case errors.As(err, &boe):
				s.obs.Count("server.breaker_rejected", 1)
				w.Header().Set("Retry-After", retryAfterSeconds(boe.retryAfter))
				writeError(w, http.StatusServiceUnavailable, err)
			case errors.Is(err, swapp.ErrStageTimeout):
				writeError(w, http.StatusGatewayTimeout, err)
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, err)
			case errors.Is(err, context.Canceled):
				// Client went away; the status is for the log line only.
				writeError(w, statusClientClosedRequest, err)
			default:
				s.obs.Count("server.errors", 1)
				writeError(w, http.StatusInternalServerError, err)
			}
			return
		}
		if hit {
			s.obs.Count("server.cache_hits", 1)
		} else {
			s.obs.Count("server.cache_misses", 1)
		}
		out, err := render(res)
		if err != nil {
			s.obs.Count("server.errors", 1)
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", map[bool]string{true: "hit", false: "miss"}[hit])
		_, _ = w.Write(out)
	}
}

// statusClientClosedRequest is nginx's conventional code for a request
// cancelled by its client; net/http has no named constant for it.
const statusClientClosedRequest = 499

// retryAfterSeconds renders a backoff hint as a Retry-After header value:
// whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// evaluate resolves one (op, request) through the cache: serve a finished
// result, join an in-flight evaluation, or become the leader — pass
// admission control and run the evaluation. hit reports a cache hit.
func (s *Server) evaluate(ctx context.Context, op string, req swapp.Request) (res *swapp.Result, hit bool, err error) {
	key := digest(op, req)
	if res, ok := s.cache.get(key); ok {
		return res, true, nil
	}
	cl, leader := s.cache.join(key)
	if !leader {
		// Someone is already computing this result; wait for them under
		// our own deadline.
		select {
		case <-cl.done:
			return cl.res, false, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	if ra, ok := s.breaker.allow(); !ok {
		err := &breakerOpenError{retryAfter: ra}
		s.cache.finish(key, cl, nil, err)
		return nil, false, err
	}
	if err := s.admit(ctx); err != nil {
		s.breaker.record(err) // queue-full and ctx errors are neutral
		s.cache.finish(key, cl, nil, err)
		return nil, false, err
	}
	s.obs.Gauge("server.inflight", float64(s.inflight.Add(1)))
	evalReq := req
	evalReq.Workers = s.cfg.EvalWorkers
	evalReq.StageTimeout = s.cfg.StageTimeout
	if s.cfg.TraceRequests {
		sp := s.obs.Child(fmt.Sprintf("server.%s.%s.%c@%d:%s", op, evalReq.Bench, evalReq.Class, evalReq.Ranks, evalReq.Target))
		evalReq.Obs = sp
		defer sp.End()
	}
	res, err = s.runEval(ctx, op, evalReq)
	s.obs.Gauge("server.inflight", float64(s.inflight.Add(-1)))
	<-s.sem
	s.breaker.record(err)
	s.cache.finish(key, cl, res, err)
	return res, false, err
}

// runEval runs one evaluation with panic isolation: a panic anywhere in
// the pipeline becomes an error here, before the worker slot is released
// and the singleflight call is finished — a panicking leader must not
// leak its slot or leave joined waiters blocked forever.
func (s *Server) runEval(ctx context.Context, op string, req swapp.Request) (res *swapp.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.obs.Count("server.panics", 1)
			res, err = nil, fmt.Errorf("server: evaluation panicked: %v", v)
		}
	}()
	if err := faultinject.Fire("server.eval"); err != nil {
		return nil, err
	}
	return s.eval(ctx, op, req)
}

// admit takes a worker slot, waiting in the bounded admission queue. The
// queue bound covers transiently-admitting requests plus QueueDepth true
// waiters; beyond it arrivals fail fast with errQueueFull so saturation
// surfaces as 503 instead of unbounded queueing.
func (s *Server) admit(ctx context.Context) error {
	q := s.queued.Add(1)
	defer s.queued.Add(-1)
	if q > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		return errQueueFull
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// renderProject is the /v1/project body: the projection's wire form.
func renderProject(res *swapp.Result) ([]byte, error) {
	return report.MarshalProjection(res.Projection, nil)
}

// renderValidate is the /v1/validate body: projection plus measured run.
func renderValidate(res *swapp.Result) ([]byte, error) {
	return report.MarshalProjection(res.Projection, res.Validation)
}

// surrogateResponse is the /v1/surrogate body: request identity plus the
// Eq. 2 compute component only.
type surrogateResponse struct {
	App     string              `json:"app"`
	Target  string              `json:"target"`
	Ranks   int                 `json:"ranks"`
	Compute *report.ComputeJSON `json:"compute"`
}

// renderSurrogate extracts the compute section from a projection.
func renderSurrogate(res *swapp.Result) ([]byte, error) {
	j := report.NewProjectionJSON(res.Projection, nil)
	b, err := json.Marshal(surrogateResponse{
		App: j.App, Target: j.Target, Ranks: j.Ranks, Compute: j.Compute,
	})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeError emits the JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, merr := json.Marshal(apiError{Error: err.Error()})
	if merr != nil {
		return
	}
	_, _ = w.Write(append(b, '\n'))
}

// CacheLen reports the number of cached results (tests, /readyz probes).
func (s *Server) CacheLen() int { return s.cache.len() }
