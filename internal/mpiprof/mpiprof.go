// Package mpiprof is the MPI profiling library of the simulation: an
// mpi.Observer that builds the paper's per-task MPI profile (§2.2):
//
//  1. a summary of all MPI routines called, with aggregate timing;
//  2. the message-size distribution per routine (calls and aggregate time
//     per size);
//  3. the compute/communication breakdown of each task's execution time.
//
// The paper's profiler cost the application at most 0.05 % of its runtime;
// this one costs nothing in simulated time (observation is outside the
// virtual clock) and its host-time overhead is measured by a bench.
package mpiprof

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/units"
)

// SizeEntry aggregates calls of one routine at one message size on one
// task.
type SizeEntry struct {
	Bytes    units.Bytes
	Calls    int
	Messages int // requests involved (Waitall counts each waited request)
	Elapsed  units.Seconds
	// Offsets histograms the ring distance |peer − rank| (wrapped) of the
	// messages — the communication pattern. A projection combines it with
	// a target machine's node geometry to split intra-node from
	// inter-node traffic.
	Offsets map[int]int
}

// RoutineProfile aggregates one routine on one task.
type RoutineProfile struct {
	Routine mpi.Routine
	Sizes   map[units.Bytes]*SizeEntry
	Calls   int
	Elapsed units.Seconds
}

// SortedSizes returns the message sizes in ascending order.
func (rp *RoutineProfile) SortedSizes() []units.Bytes {
	out := make([]units.Bytes, 0, len(rp.Sizes))
	for s := range rp.Sizes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MeanMessagesPerCall is the average number of requests per call — the
// paper's x in Eq. 1 for Waitall entries (1 for plain routines).
func (rp *RoutineProfile) MeanMessagesPerCall() float64 {
	if rp.Calls == 0 {
		return 0
	}
	var msgs int
	for _, e := range rp.Sizes {
		msgs += e.Messages
	}
	return float64(msgs) / float64(rp.Calls)
}

// TaskProfile is the full profile of one rank.
type TaskProfile struct {
	Rank     int
	Compute  units.Seconds
	Comm     units.Seconds
	Routines map[mpi.Routine]*RoutineProfile
}

// Total is the task's profiled busy time.
func (tp *TaskProfile) Total() units.Seconds { return tp.Compute + tp.Comm }

// CommFraction is the share of task time spent in MPI (including waits).
func (tp *TaskProfile) CommFraction() float64 {
	if tp.Total() == 0 {
		return 0
	}
	return tp.Comm / tp.Total()
}

// Profiler is the mpi.Observer that accumulates the job profile.
type Profiler struct {
	tasks []*TaskProfile
}

// New creates a profiler for a job of the given rank count.
func New(ranks int) *Profiler {
	p := &Profiler{tasks: make([]*TaskProfile, ranks)}
	for i := range p.tasks {
		p.tasks[i] = &TaskProfile{Rank: i, Routines: map[mpi.Routine]*RoutineProfile{}}
	}
	return p
}

// OnCompute implements mpi.Observer.
func (p *Profiler) OnCompute(rank int, dt units.Seconds) {
	p.tasks[rank].Compute += dt
}

// OnRoutine implements mpi.Observer.
func (p *Profiler) OnRoutine(rank int, ev mpi.RoutineEvent) {
	tp := p.tasks[rank]
	tp.Comm += ev.Elapsed
	rp := tp.Routines[ev.Routine]
	if rp == nil {
		rp = &RoutineProfile{Routine: ev.Routine, Sizes: map[units.Bytes]*SizeEntry{}}
		tp.Routines[ev.Routine] = rp
	}
	rp.Calls++
	rp.Elapsed += ev.Elapsed
	se := rp.Sizes[ev.Bytes]
	if se == nil {
		se = &SizeEntry{Bytes: ev.Bytes}
		rp.Sizes[ev.Bytes] = se
	}
	se.Calls++
	se.Messages += ev.Count
	se.Elapsed += ev.Elapsed
	for _, peer := range ev.Peers {
		off := peer - rank
		if off < 0 {
			off = -off
		}
		if wrapped := len(p.tasks) - off; wrapped < off {
			off = wrapped
		}
		if se.Offsets == nil {
			se.Offsets = map[int]int{}
		}
		se.Offsets[off]++
	}
}

// Profile freezes the accumulated data into the job-level profile.
func (p *Profiler) Profile(app, machine string, makespan units.Seconds) *Profile {
	return &Profile{App: app, Machine: machine, Makespan: makespan, Tasks: p.tasks}
}

// Profile is the complete job profile: what the paper's projection pipeline
// consumes from the base machine.
type Profile struct {
	App      string
	Machine  string
	Makespan units.Seconds
	Tasks    []*TaskProfile
}

// Ranks returns the task count.
func (pf *Profile) Ranks() int { return len(pf.Tasks) }

// MeanCompute is the mean per-task compute time.
func (pf *Profile) MeanCompute() units.Seconds {
	var s units.Seconds
	for _, tp := range pf.Tasks {
		s += tp.Compute
	}
	return s / units.Seconds(len(pf.Tasks))
}

// MeanComm is the mean per-task communication time.
func (pf *Profile) MeanComm() units.Seconds {
	var s units.Seconds
	for _, tp := range pf.Tasks {
		s += tp.Comm
	}
	return s / units.Seconds(len(pf.Tasks))
}

// CommFraction is the job-wide share of busy time spent in MPI.
func (pf *Profile) CommFraction() float64 {
	var comm, total units.Seconds
	for _, tp := range pf.Tasks {
		comm += tp.Comm
		total += tp.Total()
	}
	if total == 0 {
		return 0
	}
	return comm / total
}

// Routines lists every routine appearing in any task, in deterministic
// (class, name) order.
func (pf *Profile) Routines() []mpi.Routine {
	set := map[mpi.Routine]bool{}
	for _, tp := range pf.Tasks {
		for rt := range tp.Routines {
			set[rt] = true
		}
	}
	out := make([]mpi.Routine, 0, len(set))
	for rt := range set {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := mpi.ClassOf(out[i]), mpi.ClassOf(out[j])
		if ci != cj {
			return ci < cj
		}
		return out[i] < out[j]
	})
	return out
}

// RoutineAggregate sums a routine's profile across all tasks.
func (pf *Profile) RoutineAggregate(rt mpi.Routine) *RoutineProfile {
	agg := &RoutineProfile{Routine: rt, Sizes: map[units.Bytes]*SizeEntry{}}
	for _, tp := range pf.Tasks {
		rp := tp.Routines[rt]
		if rp == nil {
			continue
		}
		agg.Calls += rp.Calls
		agg.Elapsed += rp.Elapsed
		for b, se := range rp.Sizes {
			dst := agg.Sizes[b]
			if dst == nil {
				dst = &SizeEntry{Bytes: b}
				agg.Sizes[b] = dst
			}
			dst.Calls += se.Calls
			dst.Messages += se.Messages
			dst.Elapsed += se.Elapsed
			for off, n := range se.Offsets {
				if dst.Offsets == nil {
					dst.Offsets = map[int]int{}
				}
				dst.Offsets[off] += n
			}
		}
	}
	return agg
}

// RoutineShare is a routine's share of total busy time, in percent — the
// quantity Table 1 reports per routine.
func (pf *Profile) RoutineShare(rt mpi.Routine) float64 {
	var total units.Seconds
	for _, tp := range pf.Tasks {
		total += tp.Total()
	}
	if total == 0 {
		return 0
	}
	return 100 * pf.RoutineAggregate(rt).Elapsed / total
}

// ClassElapsed sums MPI time per routine class across tasks. Routines are
// visited in the deterministic Routines() order so that the per-class
// float accumulation never depends on map iteration order.
func (pf *Profile) ClassElapsed() map[mpi.Class]units.Seconds {
	out := map[mpi.Class]units.Seconds{}
	for _, rt := range pf.Routines() {
		cls := mpi.ClassOf(rt)
		for _, tp := range pf.Tasks {
			if rp, ok := tp.Routines[rt]; ok {
				out[cls] += rp.Elapsed
			}
		}
	}
	return out
}

// String renders the profile in the three-section layout of §2.2.
func (pf *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MPI profile: %s on %s, %d tasks, makespan %s\n",
		pf.App, pf.Machine, pf.Ranks(), units.FormatSeconds(pf.Makespan))
	fmt.Fprintf(&b, "compute %s (%.1f%%), communication %s (%.1f%%)\n",
		units.FormatSeconds(pf.MeanCompute()), 100*(1-pf.CommFraction()),
		units.FormatSeconds(pf.MeanComm()), 100*pf.CommFraction())
	fmt.Fprintf(&b, "%-14s %-10s %10s %12s %12s\n", "routine", "class", "calls", "elapsed", "share")
	for _, rt := range pf.Routines() {
		agg := pf.RoutineAggregate(rt)
		fmt.Fprintf(&b, "%-14s %-10s %10d %12s %11.3f%%\n",
			rt, mpi.ClassOf(rt), agg.Calls, units.FormatSeconds(agg.Elapsed), pf.RoutineShare(rt))
		for _, size := range agg.SortedSizes() {
			se := agg.Sizes[size]
			fmt.Fprintf(&b, "    %-12s %8d calls %12s\n",
				units.FormatBytes(se.Bytes), se.Calls, units.FormatSeconds(se.Elapsed))
		}
	}
	return b.String()
}
