package mpiprof

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/mpi"
	"repro/internal/units"
)

// runProfiled executes a small job with profiling and returns the profile.
func runProfiled(t *testing.T, ranks int, program func(r *mpi.Rank)) *Profile {
	t.Helper()
	w, err := mpi.NewWorld(arch.MustGet(arch.Hydra), ranks)
	if err != nil {
		t.Fatal(err)
	}
	p := New(ranks)
	w.SetObserver(p)
	ms, err := w.Run(program)
	if err != nil {
		t.Fatal(err)
	}
	return p.Profile("test-app", arch.Hydra, ms)
}

func ringProgram(r *mpi.Rank) {
	next := (r.ID() + 1) % r.Size()
	prev := (r.ID() + r.Size() - 1) % r.Size()
	for step := 0; step < 4; step++ {
		r.Compute(1e-3)
		s := r.Isend(next, 8*units.KiB, step)
		v := r.Irecv(prev, 8*units.KiB, step)
		r.Waitall(s, v)
	}
	r.Reduce(0, 64)
	r.Bcast(0, 8)
}

func TestProfileStructure(t *testing.T) {
	pf := runProfiled(t, 8, ringProgram)
	if pf.Ranks() != 8 {
		t.Fatalf("ranks = %d", pf.Ranks())
	}
	if pf.App != "test-app" || pf.Machine != arch.Hydra {
		t.Error("labels lost")
	}
	routines := pf.Routines()
	want := []mpi.Routine{
		mpi.RoutineBcast, mpi.RoutineReduce, // collectives sort first
		mpi.RoutineIrecv, mpi.RoutineIsend, mpi.RoutineWaitall,
	}
	if len(routines) != len(want) {
		t.Fatalf("routines = %v", routines)
	}
	for i := range want {
		if routines[i] != want[i] {
			t.Fatalf("routines = %v, want %v", routines, want)
		}
	}
}

func TestComputeCommSplit(t *testing.T) {
	pf := runProfiled(t, 8, ringProgram)
	// Each task computed exactly 4 ms.
	if math.Abs(pf.MeanCompute()-4e-3) > 1e-12 {
		t.Errorf("mean compute = %v, want 4ms", pf.MeanCompute())
	}
	if pf.MeanComm() <= 0 {
		t.Error("communication time missing")
	}
	cf := pf.CommFraction()
	if cf <= 0 || cf >= 1 {
		t.Errorf("comm fraction = %v", cf)
	}
	for _, tp := range pf.Tasks {
		if math.Abs(tp.Compute+tp.Comm-tp.Total()) > 1e-15 {
			t.Error("task total must be compute+comm")
		}
	}
}

func TestRoutineAggregate(t *testing.T) {
	pf := runProfiled(t, 8, ringProgram)
	isend := pf.RoutineAggregate(mpi.RoutineIsend)
	if isend.Calls != 8*4 {
		t.Errorf("Isend calls = %d, want 32", isend.Calls)
	}
	se := isend.Sizes[8*units.KiB]
	if se == nil || se.Calls != 32 || se.Messages != 32 {
		t.Errorf("Isend size entry wrong: %+v", se)
	}
	wa := pf.RoutineAggregate(mpi.RoutineWaitall)
	if wa.Calls != 32 {
		t.Errorf("Waitall calls = %d", wa.Calls)
	}
	if got := wa.MeanMessagesPerCall(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Waitall x = %v, want 2 (one send + one recv per call)", got)
	}
	// Unknown routine aggregates to empty, not nil.
	if agg := pf.RoutineAggregate(mpi.RoutineAlltoall); agg.Calls != 0 {
		t.Error("absent routine must aggregate empty")
	}
}

func TestSortedSizes(t *testing.T) {
	pf := runProfiled(t, 4, func(r *mpi.Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		for _, size := range []units.Bytes{1024, 64, 512 * units.KiB} {
			s := r.Isend(next, size, int(size))
			v := r.Irecv(prev, size, int(size))
			r.Waitall(s, v)
		}
	})
	sizes := pf.RoutineAggregate(mpi.RoutineIsend).SortedSizes()
	if len(sizes) != 3 || sizes[0] != 64 || sizes[2] != 512*units.KiB {
		t.Errorf("sorted sizes = %v", sizes)
	}
}

func TestClassElapsed(t *testing.T) {
	pf := runProfiled(t, 8, ringProgram)
	ce := pf.ClassElapsed()
	if ce[mpi.ClassP2PNB] <= 0 {
		t.Error("P2P-NB time missing")
	}
	if ce[mpi.ClassCollective] <= 0 {
		t.Error("collective time missing")
	}
	if ce[mpi.ClassP2PB] != 0 {
		t.Error("no blocking p2p was issued")
	}
	var total units.Seconds
	for _, v := range ce {
		total += v
	}
	var comm units.Seconds
	for _, tp := range pf.Tasks {
		comm += tp.Comm
	}
	if math.Abs(total-comm) > 1e-12 {
		t.Errorf("class sums %v != comm total %v", total, comm)
	}
}

func TestRoutineShareSumsBelowTotal(t *testing.T) {
	pf := runProfiled(t, 8, ringProgram)
	var sum float64
	for _, rt := range pf.Routines() {
		share := pf.RoutineShare(rt)
		if share < 0 || share > 100 {
			t.Errorf("%s share = %v", rt, share)
		}
		sum += share
	}
	commPct := 100 * pf.CommFraction()
	if math.Abs(sum-commPct) > 0.1 {
		t.Errorf("routine shares sum to %v, comm%% is %v", sum, commPct)
	}
}

func TestStringRendersSections(t *testing.T) {
	pf := runProfiled(t, 4, ringProgram)
	s := pf.String()
	for _, frag := range []string{"test-app", "compute", "communication", "MPI_Waitall", "8KiB", "calls"} {
		if !strings.Contains(s, frag) {
			t.Errorf("profile text missing %q:\n%s", frag, s)
		}
	}
}

func TestWaitTimeVisibleUnderImbalance(t *testing.T) {
	// Rank 1 computes longer; rank 0's Waitall elapsed must absorb the
	// imbalance — this is the WaitTime the paper models.
	pf := runProfiled(t, 2, func(r *mpi.Rank) {
		if r.ID() == 1 {
			r.Compute(0.25)
		}
		s := r.Isend(1-r.ID(), 256, 0)
		v := r.Irecv(1-r.ID(), 256, 0)
		r.Waitall(s, v)
	})
	wa0 := pf.Tasks[0].Routines[mpi.RoutineWaitall]
	if wa0 == nil || wa0.Elapsed < 0.2 {
		t.Fatalf("rank 0 Waitall should contain ~0.25s of wait, got %+v", wa0)
	}
	wa1 := pf.Tasks[1].Routines[mpi.RoutineWaitall]
	if wa1.Elapsed > 0.01 {
		t.Errorf("rank 1 (the late one) should barely wait, got %v", wa1.Elapsed)
	}
}
