// Package quality is SWAPP's data-fidelity ledger. The framework's whole
// premise is producing projections from imperfect, externally-sourced
// inputs — published SPEC tables, IMB sweeps, hardware-counter profiles —
// that in practice arrive truncated, partially missing, or noisy. Instead
// of failing on the first defect, the engine records what was wrong and
// which documented fallback it substituted, and every projection carries
// the resulting Report so a caller can tell a full-fidelity answer from a
// degraded one.
//
// A Defect names one concrete problem (a taxonomy Code), the projection
// component it degrades (compute, communication, or the shared input
// data), a severity, and a human-readable detail. A Report aggregates
// defects — deduplicated, concurrency-safe, and rendered in a fixed sort
// order so reports are deterministic — and grades each component:
//
//	A  full fidelity: no defects touch the component
//	B  documented minor fallbacks only (e.g. grid-edge extrapolation)
//	C  at least one major fallback (e.g. a routine priced as pure wait)
//
// The zero-defect path costs nothing at render time: an empty Report is
// omitted from the wire form entirely, so full-fidelity output is
// byte-identical to an engine without this package.
package quality

import (
	"fmt"
	"sort"
	"sync"
)

// Code names one defect class in the taxonomy (DESIGN.md §11).
type Code string

// The defect taxonomy. Codes are part of the wire format: once published
// they may gain siblings but must not be renamed.
const (
	// MissingSpecBench: a benchmark present in the base-machine SPEC pool
	// has no counterpart on the target. Fallback: the surrogate pool
	// shrinks to the intersection.
	MissingSpecBench Code = "missing-spec-bench"
	// MissingCounterGroup: a counter observation lacked a group (e.g. the
	// SMT column of a SPEC row). Fallback: the ST observation substitutes.
	MissingCounterGroup Code = "missing-counter-group"
	// IMBGridGap: an IMB size grid has holes or a truncated tail, so a
	// message-size lookup extrapolated from the nearest covered samples.
	IMBGridGap Code = "imb-grid-gap"
	// IMBSinglePointGrid: an IMB table carries a single size sample; all
	// size dependence is lost and every lookup returns that sample.
	IMBSinglePointGrid Code = "imb-single-point-grid"
	// MissingIMBRoutine: a routine sweep was absent or empty in a loaded
	// IMB table.
	MissingIMBRoutine Code = "missing-imb-routine"
	// MissingIMBCount: one side of the machine pair has no IMB table at a
	// core count the other side covers.
	MissingIMBCount Code = "missing-imb-count"
	// IMBCountFallback: the projection needed IMB tables at a core count
	// the pipeline does not hold and substituted the nearest held count.
	IMBCountFallback Code = "imb-count-fallback"
	// DroppedMPIRoutine: a profiled MPI routine could not be priced on the
	// benchmark tables. Fallback: its elapsed time is treated as pure
	// WaitTime and scaled by the wait-scale factor.
	DroppedMPIRoutine Code = "dropped-mpi-routine"
	// GAQuarantine: one or more surrogate-search fitness evaluations
	// panicked (or were fault-injected) and were quarantined with worst
	// fitness instead of killing the run.
	GAQuarantine Code = "ga-quarantine"
	// GAWarmStart: the surrogate search was warm-started from a cached
	// neighbouring surrogate instead of a purely random initial
	// population — an opt-in serving-mode optimisation whose outcome
	// depends on which prior requests populated the store.
	GAWarmStart Code = "ga-warm-start"
	// GAResume: the surrogate search was resumed from an async job's
	// per-generation checkpoint genomes after a failed attempt, instead of
	// starting from a purely random initial population. Resumed searches
	// bypass the clean content-addressed surrogate store.
	GAResume Code = "ga-resume"
	// WaitScaleDefault: the wait-scale blend had no usable compute ratio
	// and defaulted to 1 (base WaitTime carried over unscaled).
	WaitScaleDefault Code = "wait-scale-default"
	// DuplicateEntry: a loaded artifact repeated a key (benchmark,
	// routine); the first occurrence won.
	DuplicateEntry Code = "duplicate-entry"
	// CorruptEntry: a loaded artifact entry carried non-finite or negative
	// values and was dropped.
	CorruptEntry Code = "corrupt-entry"
)

// Component names the projection component a defect degrades.
type Component string

const (
	// Data defects live in the shared inputs and degrade both components.
	Data Component = "data"
	// Compute defects degrade the §2.3 compute projection.
	Compute Component = "compute"
	// Comm defects degrade the §2.4 communication projection.
	Comm Component = "comm"
)

// Severity ranks how far a fallback strays from full fidelity.
type Severity string

const (
	// Minor: a documented interpolation-class fallback; the answer is
	// still anchored to measured data.
	Minor Severity = "minor"
	// Major: a whole input was substituted or dropped; treat the affected
	// component's numbers as indicative only.
	Major Severity = "major"
)

// Grade is a per-component confidence grade derived from the defect list.
type Grade string

const (
	GradeA Grade = "A" // full fidelity
	GradeB Grade = "B" // minor fallbacks only
	GradeC Grade = "C" // at least one major fallback
)

// Defect is one recorded data problem plus the fallback the engine used.
type Defect struct {
	Code      Code      `json:"code"`
	Component Component `json:"component"`
	Severity  Severity  `json:"severity"`
	Detail    string    `json:"detail"`
}

// String renders the defect as a one-line ledger entry.
func (d Defect) String() string {
	return fmt.Sprintf("[%s/%s] %s: %s", d.Component, d.Severity, d.Code, d.Detail)
}

// Report aggregates the defects of one projection (or one loaded data
// set). The zero value is not usable; create with NewReport. A nil
// *Report is valid everywhere and records nothing, so code paths that do
// not care about quality can pass nil.
type Report struct {
	mu      sync.Mutex
	defects []Defect
	seen    map[string]bool
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{seen: map[string]bool{}}
}

// Add records a defect, deduplicating exact repeats (same code, component
// and detail) so per-lookup recording cannot balloon the report. Safe for
// concurrent use; a nil receiver drops the defect.
func (r *Report) Add(d Defect) {
	if r == nil {
		return
	}
	key := string(d.Code) + "|" + string(d.Component) + "|" + d.Detail
	r.mu.Lock()
	if !r.seen[key] {
		r.seen[key] = true
		r.defects = append(r.defects, d)
	}
	r.mu.Unlock()
}

// AddAll records a batch of defects.
func (r *Report) AddAll(ds []Defect) {
	for _, d := range ds {
		r.Add(d)
	}
}

// Empty reports whether nothing was recorded (true for nil).
func (r *Report) Empty() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.defects) == 0
}

// Defects returns a sorted copy of the recorded defects: by component,
// then severity (major first), code, detail. The sort — not insertion
// order, which may be concurrent — is what makes rendered reports
// deterministic.
func (r *Report) Defects() []Defect {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Defect(nil), r.defects...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		if out[i].Severity != out[j].Severity {
			// "major" < "minor" lexically, so major sorts first for free.
			return out[i].Severity < out[j].Severity
		}
		if out[i].Code != out[j].Code {
			return out[i].Code < out[j].Code
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// Grade is the overall confidence grade: the worst component grade.
func (r *Report) Grade() Grade {
	return gradeOf(r.Defects(), "")
}

// ComponentGrade grades one projection component. Data defects count
// against every component: corrupt shared inputs degrade whatever is
// computed from them.
func (r *Report) ComponentGrade(c Component) Grade {
	return gradeOf(r.Defects(), c)
}

// gradeOf folds defects relevant to component (all of them when
// component is "") into a grade.
func gradeOf(ds []Defect, component Component) Grade {
	g := GradeA
	for _, d := range ds {
		if component != "" && d.Component != component && d.Component != Data {
			continue
		}
		if d.Severity == Major {
			return GradeC
		}
		g = GradeB
	}
	return g
}
