package quality

import (
	"sync"
	"testing"
)

func TestNilReportIsSafeAndEmpty(t *testing.T) {
	var r *Report
	r.Add(Defect{Code: GAQuarantine, Component: Compute, Severity: Minor})
	r.AddAll([]Defect{{Code: IMBGridGap}})
	if !r.Empty() {
		t.Error("nil report must be empty")
	}
	if got := r.Defects(); got != nil {
		t.Errorf("nil report defects = %v, want nil", got)
	}
	if g := r.Grade(); g != GradeA {
		t.Errorf("nil report grade = %s, want A", g)
	}
}

func TestAddDeduplicates(t *testing.T) {
	r := NewReport()
	d := Defect{Code: IMBGridGap, Component: Comm, Severity: Minor, Detail: "Bcast at 2MiB"}
	for i := 0; i < 100; i++ {
		r.Add(d)
	}
	if n := len(r.Defects()); n != 1 {
		t.Errorf("100 identical Adds left %d defects, want 1", n)
	}
	// A different detail is a distinct defect.
	d.Detail = "Bcast at 4MiB"
	r.Add(d)
	if n := len(r.Defects()); n != 2 {
		t.Errorf("distinct detail deduplicated away: %d defects, want 2", n)
	}
}

func TestDefectsSortedDeterministically(t *testing.T) {
	// Insert in a scrambled order; Defects must sort by component, then
	// severity (major first), code, detail.
	r := NewReport()
	r.Add(Defect{Code: WaitScaleDefault, Component: Comm, Severity: Minor, Detail: "z"})
	r.Add(Defect{Code: DroppedMPIRoutine, Component: Comm, Severity: Major, Detail: "a"})
	r.Add(Defect{Code: MissingSpecBench, Component: Data, Severity: Minor, Detail: "m"})
	r.Add(Defect{Code: GAQuarantine, Component: Compute, Severity: Minor, Detail: "q"})
	// Components sort lexically (comm < compute < data), severity major
	// first within a component.
	ds := r.Defects()
	want := []Code{DroppedMPIRoutine, WaitScaleDefault, GAQuarantine, MissingSpecBench}
	if len(ds) != len(want) {
		t.Fatalf("got %d defects, want %d", len(ds), len(want))
	}
	for i, c := range want {
		if ds[i].Code != c {
			t.Errorf("position %d: code %s, want %s (full order: %v)", i, ds[i].Code, c, ds)
		}
	}
	// Within a component, major sorts before minor.
	r2 := NewReport()
	r2.Add(Defect{Code: IMBGridGap, Component: Comm, Severity: Minor, Detail: "a"})
	r2.Add(Defect{Code: MissingIMBRoutine, Component: Comm, Severity: Major, Detail: "b"})
	ds2 := r2.Defects()
	if ds2[0].Severity != Major {
		t.Errorf("major must sort first within a component, got %v", ds2)
	}
}

func TestGrades(t *testing.T) {
	clean := NewReport()
	if clean.Grade() != GradeA || clean.ComponentGrade(Compute) != GradeA {
		t.Error("empty report must grade A everywhere")
	}

	minorComm := NewReport()
	minorComm.Add(Defect{Code: IMBGridGap, Component: Comm, Severity: Minor})
	if g := minorComm.ComponentGrade(Comm); g != GradeB {
		t.Errorf("comm grade = %s, want B", g)
	}
	if g := minorComm.ComponentGrade(Compute); g != GradeA {
		t.Errorf("compute untouched by comm defect: grade %s, want A", g)
	}
	if g := minorComm.Grade(); g != GradeB {
		t.Errorf("overall grade = %s, want B", g)
	}

	majorData := NewReport()
	majorData.Add(Defect{Code: CorruptEntry, Component: Data, Severity: Major})
	// Data defects degrade every component.
	for _, c := range []Component{Compute, Comm} {
		if g := majorData.ComponentGrade(c); g != GradeC {
			t.Errorf("data major must grade %s as C, got %s", c, g)
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := NewReport()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Add(Defect{Code: IMBGridGap, Component: Comm, Severity: Minor, Detail: "same"})
				r.Add(Defect{Code: GAQuarantine, Component: Compute, Severity: Minor, Detail: "same"})
			}
		}()
	}
	wg.Wait()
	if n := len(r.Defects()); n != 2 {
		t.Errorf("concurrent duplicate adds left %d defects, want 2", n)
	}
}

func TestDefectString(t *testing.T) {
	d := Defect{Code: DroppedMPIRoutine, Component: Comm, Severity: Major, Detail: "MPI_Bcast not in base table"}
	want := "[comm/major] dropped-mpi-routine: MPI_Bcast not in base table"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
