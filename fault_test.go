package swapp

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/quality"
	"repro/internal/report"
)

// TestProjectSurvivesInjectedFaults is the engine half of the acceptance
// scenario from DESIGN.md §11: with a corrupted SPEC row (dropped target
// benchmark), a truncated target IMB size grid, and a panic in one GA
// fitness evaluation all armed at once, a projection still completes and
// reports the damage in its Quality block instead of failing or crashing.
func TestProjectSurvivesInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	defer faultinject.Disarm()
	if err := faultinject.Arm("core.spec.target=drop#1,core.imb.target=drop#1,ga.eval=panic#1"); err != nil {
		t.Fatal(err)
	}

	res, err := Project(Request{
		Target: TargetPower6,
		Bench:  LU, Class: ClassC, Ranks: 16,
	})
	if err != nil {
		t.Fatalf("degraded projection must complete, got: %v", err)
	}
	if res.TotalSeconds() <= 0 {
		t.Fatal("non-positive degraded projection")
	}

	q := res.Projection.Quality
	if q.Empty() {
		t.Fatal("three armed faults left an empty Quality block")
	}
	codes := map[quality.Code]bool{}
	for _, d := range q.Defects() {
		codes[d.Code] = true
	}
	if !codes[quality.MissingSpecBench] {
		t.Errorf("dropped SPEC benchmark not recorded: %v", q.Defects())
	}
	if !codes[quality.GAQuarantine] {
		t.Errorf("quarantined GA evaluation not recorded: %v", q.Defects())
	}
	if g := q.Grade(); g == quality.GradeA {
		t.Errorf("overall grade = %s with major defects present", g)
	}

	// The degradation surfaces to the operator at both report layers.
	if s := res.String(); !strings.Contains(s, "quality grade") {
		t.Errorf("result summary missing the quality grade:\n%s", s)
	}
	if full := report.Projection(res.Projection, nil); !strings.Contains(full, "quality: grade") {
		t.Errorf("full report missing the quality section:\n%s", full)
	}

	// Disarmed, the same request runs clean again: injection leaves no
	// residue in package state.
	faultinject.Disarm()
	clean, err := Project(Request{
		Target: TargetPower6,
		Bench:  LU, Class: ClassC, Ranks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Projection.Quality.Empty() {
		t.Errorf("clean run after disarm carries defects: %v", clean.Projection.Quality.Defects())
	}
	if strings.Contains(clean.String(), "quality:") {
		t.Error("clean run prints a quality section")
	}
}
