GO ?= go

.PHONY: check build vet test race bench bench-serve bench-kernel-baseline fuzz cover serve-smoke cluster-smoke crash-smoke chaos

## check: everything CI runs — vet, build, full tests, race tests.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomises test (and subtest) execution order, so hidden
# inter-test dependencies surface in CI instead of in a refactor.
test:
	$(GO) test -shuffle=on ./...

# The race detector slows the simulator ~10x; -short keeps the heaviest
# figure-grid cases out while still exercising every parallel path
# (the ga/core/figures parallel-vs-serial tests all run in -short mode
# except the full figures grid). A generous -timeout covers slow CI boxes.
race:
	$(GO) test -race -short -timeout 1800s ./...

bench:
	$(GO) test -run '^$$' -bench 'Speedup|EnforceSparsity|TopK' -benchtime 1x ./...

# Serving-layer regression gate: the GA evaluation-kernel microbenchmarks
# (Benchmark{Kernel,ScoreAll} vs BENCH_kernel.json, via cmd/benchstatgate),
# then the cheap swappbench scenarios (cache-hot, shared-base-warm) — both
# fail on >20% regressions vs their committed baselines. Regenerate the
# serving baseline with: go run ./cmd/swappbench -out BENCH_swappd.json
bench-serve:
	./scripts/bench_gate.sh

# Rewrite BENCH_kernel.json from a fresh (longer, steadier) benchmark run
# on this host. Commit the result.
bench-kernel-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkKernel$$|BenchmarkScoreAll' -benchmem -benchtime 1s -count 3 \
		./internal/core ./internal/ga > /tmp/kernel_bench.txt
	$(GO) run ./cmd/benchstatgate -baseline BENCH_kernel.json -update /tmp/kernel_bench.txt

# Short mutation pass over the persistence decoders (CI runs the same).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalIMB$$' -fuzztime 10s ./internal/persist
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalSpec$$' -fuzztime 10s ./internal/persist

# End-to-end smoke of the swappd service: start it, health-check, one
# real cached /v1/project round-trip (second call must hit), clean drain —
# then again with -faults arming an evaluation panic: 500, stay up, retry.
serve-smoke:
	./scripts/serve_smoke.sh

# Peer-aware smoke: 3 swappd replicas on one consistent-hash ring, a
# grouped /v1/batch round-trip, two peers crashed (survivor must answer
# byte-identically via local fallback), rejoin, SIGTERM clean drain.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Durability smoke: swappd with -data-dir, async job SIGKILLed mid-GA-search,
# restart on the same dir must replay the journal, resume from checkpoints,
# and finish byte-identical to an uninterrupted control run.
crash-smoke:
	./scripts/crash_smoke.sh

# Fault-tolerance suite under the race detector with shuffled order:
# injected faults, recovered panics, breaker trips, GA quarantine,
# degraded-input projections. Fast — the heavy grids are elsewhere.
chaos:
	$(GO) test -race -shuffle=on -timeout 600s \
		-run 'Chaos|Fault|Inject|Panic|Breaker|Quarantine|Degraded|Lenient|Dropped|GridGap' ./...

# Statement coverage of the -short suite; CI enforces a 72% floor.
cover:
	$(GO) test -short -count=1 -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
