GO ?= go

.PHONY: check build vet test race bench

## check: everything CI runs — vet, build, full tests, race tests.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector slows the simulator ~10x; -short keeps the heaviest
# figure-grid cases out while still exercising every parallel path
# (the ga/core/figures parallel-vs-serial tests all run in -short mode
# except the full figures grid). A generous -timeout covers slow CI boxes.
race:
	$(GO) test -race -short -timeout 1800s ./...

bench:
	$(GO) test -run '^$$' -bench 'Speedup|EnforceSparsity|TopK' -benchtime 1x ./...
