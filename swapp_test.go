package swapp

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/ga"
)

func TestMachines(t *testing.T) {
	if len(Machines()) != 4 || len(MachineNames()) != 4 {
		t.Fatalf("expected the four Table 2 machines, got %v", MachineNames())
	}
}

func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown target", Request{Target: "cray", Bench: BT, Class: ClassC, Ranks: 16}},
		{"unknown base", Request{Base: "x", Target: TargetPower6, Bench: BT, Class: ClassC, Ranks: 16}},
		{"target equals base", Request{Base: BaseHydra, Target: BaseHydra, Bench: BT, Class: ClassC, Ranks: 16}},
		{"zero ranks", Request{Target: TargetPower6, Bench: BT, Class: ClassC, Ranks: 0}},
		{"too many ranks", Request{Target: TargetPower6, Bench: LU, Class: ClassC, Ranks: 64}},
		{"unknown bench", Request{Target: TargetPower6, Bench: "FT-MZ", Class: ClassC, Ranks: 16}},
	}
	for _, c := range cases {
		if _, err := Project(c.req); err == nil {
			t.Errorf("%s: invalid request accepted", c.name)
		}
	}
}

func TestProjectEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	res, err := Project(Request{
		Target: TargetPower6,
		Bench:  LU, Class: ClassC, Ranks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds() <= 0 {
		t.Fatal("non-positive projection")
	}
	if res.Validation != nil {
		t.Error("Project must not validate")
	}
	s := res.String()
	for _, frag := range []string{"LU-MZ.C", "power6-575", "projected"} {
		if !strings.Contains(s, frag) {
			t.Errorf("result string %q missing %q", s, frag)
		}
	}
	p := res.Projection
	if p.Compute == nil || p.Comm == nil {
		t.Fatal("projection components missing")
	}
	if p.Total != p.ComputeTime+p.CommTime {
		t.Error("total must be the component sum")
	}
}

// TestProjectCheckpointResumeByteIdentical pins the crash-recovery arc at
// the public API: a request tapped with OnGACheckpoint projects the same
// bytes as an untapped one, and a request resumed from mid-evolution
// checkpoints reproduces the uninterrupted projection exactly — the
// property swappd's kill -9 recovery rests on.
func TestProjectCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	var mu sync.Mutex
	latest := map[int]*ga.Checkpoint{}
	ref, err := Project(Request{
		Target: TargetPower6,
		Bench:  LU, Class: ClassC, Ranks: 16,
		OnGACheckpoint: func(member int, cp *ga.Checkpoint) {
			mu.Lock()
			latest[member] = cp
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(latest) == 0 {
		t.Fatal("OnGACheckpoint never fired")
	}
	maxMember := 0
	for m := range latest {
		if m > maxMember {
			maxMember = m
		}
	}
	cps := make([]*ga.Checkpoint, maxMember+1)
	for m, cp := range latest {
		cps[m] = cp
	}
	res, err := Project(Request{
		Target: TargetPower6,
		Bench:  LU, Class: ClassC, Ranks: 16,
		ResumeCheckpoints: cps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Projection, ref.Projection) {
		t.Errorf("resumed projection diverged:\n got %+v\nwant %+v", res.Projection, ref.Projection)
	}
	if res.String() != ref.String() {
		t.Errorf("rendered result diverged:\n got %s\nwant %s", res, ref)
	}
}

func TestProjectAndValidateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	res, err := ProjectAndValidate(Request{
		Target: TargetWestmere,
		Bench:  LU, Class: ClassC, Ranks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Validation
	if v == nil {
		t.Fatal("validation missing")
	}
	if v.MeasuredTotal <= 0 {
		t.Fatal("measured run missing")
	}
	// The reproduction's acceptance envelope: well inside the paper's
	// error regime (they report ≤15 % max; we allow slack for this
	// single case).
	if v.AbsErrCombined() > 30 {
		t.Errorf("projection error %.1f%% outside the acceptable regime", v.AbsErrCombined())
	}
	if !strings.Contains(res.String(), "measured") {
		t.Error("validated result string must mention the measurement")
	}
}

func TestCharCountsFor(t *testing.T) {
	counts := charCountsFor(BT, ClassC, 96)
	want := map[int]bool{16: true, 32: true, 64: true, 96: true, 128: true}
	if len(counts) != len(want) {
		t.Fatalf("charCountsFor = %v", counts)
	}
	for _, c := range counts {
		if !want[c] {
			t.Fatalf("unexpected count %d in %v", c, counts)
		}
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatal("counts must be ascending")
		}
	}
	lu := charCountsFor(LU, ClassC, 16)
	for _, c := range lu {
		if c > 16 {
			t.Errorf("LU-MZ cannot profile at %d ranks", c)
		}
	}
}

func TestNewEvaluation(t *testing.T) {
	if NewEvaluation() == nil {
		t.Fatal("NewEvaluation returned nil")
	}
}
