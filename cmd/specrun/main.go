// Command specrun runs the synthetic SPEC CPU2006 suite on a simulated
// machine in throughput mode and prints runtimes and headline counters —
// the "published benchmark data" side of SWAPP.
//
// Usage:
//
//	specrun -machine westmere-x5670
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/spec"
	"repro/internal/units"
)

func main() {
	var (
		machine = flag.String("machine", arch.Hydra, "machine: "+strings.Join(arch.Names(), ", "))
		noise   = flag.Bool("noise", false, "add measurement noise to the counters")
	)
	flag.Parse()

	m, err := arch.Get(*machine)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("SPEC CPU2006 (throughput mode) on %s\n\n", m)
	results, err := spec.RunSuite(m, *noise)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%-18s %6s %10s %8s %8s %10s %10s\n",
		"benchmark", "suite", "runtime", "CPI", "stall%", "L3/instr", "BW GB/s")
	for _, name := range spec.SortedNames(results) {
		r := results[name]
		b, _ := spec.ByName(name)
		fmt.Printf("%-18s %6s %10s %8.2f %7.1f%% %10.4f %10.2f\n",
			name, suiteTag(b.Group), units.FormatSeconds(r.ST.Runtime),
			r.ST.CPI, 100*r.ST.CPIStallTotal/r.ST.CPI, r.ST.DataFromL3, r.ST.MemBWGBs)
	}
}

func suiteTag(g spec.SuiteGroup) string {
	if g == spec.CINT {
		return "int"
	}
	return "fp"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "specrun: "+format+"\n", args...)
	os.Exit(1)
}
