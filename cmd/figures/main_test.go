package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadInvocations pins the CLI error contract: bad output paths and
// malformed selections fail fast — before any generation work — with a
// one-line actionable message and a non-zero exit.
func TestBadInvocations(t *testing.T) {
	dir := t.TempDir()
	plainFile := filepath.Join(dir, "plain.txt")
	if err := os.WriteFile(plainFile, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		code int
		frag string // must appear on stderr
	}{
		{"no selection", nil, 2, "Usage"},
		{"figure out of range", []string{"-fig", "12"}, 2, "3–9"},
		{"figure not a number", []string{"-fig", "six"}, 2, "fig"},
		{"unwritable trace", []string{"-table2", "-trace", filepath.Join(dir, "no", "such", "t.json")}, 1, "trace"},
		{"csv dir under a file", []string{"-table2", "-csv", filepath.Join(plainFile, "sub")}, 1, "CSV"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %q)", code, tc.code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("stdout not empty on failure: %q", stdout.String())
			}
			if !strings.Contains(stderr.String(), tc.frag) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.frag)
			}
		})
	}
}

// TestTable2Succeeds keeps the happy path honest: the one artifact that
// needs no evaluation renders to stdout with exit 0.
func TestTable2Succeeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-table2", "-q"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d (stderr: %q)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 2") {
		t.Errorf("stdout does not contain Table 2:\n%s", stdout.String())
	}
}
